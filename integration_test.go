package nocsched_test

// Integration tests: the full pipeline — generate workload, schedule
// with every scheduler, validate the schedule against the Sec. 4
// formulation, replay it on the flit-level wormhole simulator — across
// randomized graphs, platform sizes, topologies and routing schemes.
// These are the repository's strongest invariant checks: whatever the
// heuristics decide, the result must always be a physically realizable,
// contention-free schedule whose promised timings the simulator
// confirms.

import (
	"bytes"
	"math/rand"
	"testing"

	"nocsched"
)

// pipelineCase is one randomized end-to-end scenario.
type pipelineCase struct {
	name     string
	platform *nocsched.Platform
	graph    *nocsched.Graph
}

func randomCases(t *testing.T, count int, seed int64) []pipelineCase {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var cases []pipelineCase
	for i := 0; i < count; i++ {
		var (
			topo nocsched.Topology
			err  error
		)
		switch rng.Intn(4) {
		case 0:
			topo, err = nocsched.NewMesh(2+rng.Intn(3), 2+rng.Intn(3), nocsched.RouteXY)
		case 1:
			topo, err = nocsched.NewMesh(2+rng.Intn(3), 2+rng.Intn(3), nocsched.RouteYX)
		case 2:
			topo, err = nocsched.NewTorus(3+rng.Intn(2), 3+rng.Intn(2))
		default:
			topo, err = nocsched.NewHoneycomb(2+rng.Intn(3), 2+rng.Intn(3))
		}
		if err != nil {
			t.Fatal(err)
		}
		classes := make([]nocsched.PEClass, topo.NumTiles())
		lib := []nocsched.PEClass{
			nocsched.ClassCPU, nocsched.ClassDSP, nocsched.ClassRISC, nocsched.ClassARM,
		}
		for k := range classes {
			classes[k] = lib[rng.Intn(len(lib))]
		}
		platform, err := nocsched.NewPlatform(topo, classes, int64(64<<rng.Intn(3)))
		if err != nil {
			t.Fatal(err)
		}
		shape := nocsched.ShapeLayered
		if rng.Intn(2) == 0 {
			shape = nocsched.ShapeSeriesParallel
		}
		g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
			Name:                "pipe",
			Seed:                rng.Int63(),
			Shape:               shape,
			NumTasks:            20 + rng.Intn(120),
			MaxInDegree:         1 + rng.Intn(3),
			LocalityWindow:      8 + rng.Intn(24),
			TaskTypes:           4 + rng.Intn(12),
			ExecMin:             10,
			ExecMax:             300,
			HeteroSpread:        rng.Float64(),
			VolumeMin:           128,
			VolumeMax:           int64(1024 << rng.Intn(5)),
			ControlEdgeFraction: rng.Float64() * 0.3,
			DeadlineLaxity:      0.8 + rng.Float64()*1.5,
			DeadlineFraction:    rng.Float64(),
			Platform:            platform,
		})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, pipelineCase{
			name:     topo.Name(),
			platform: platform,
			graph:    g,
		})
	}
	return cases
}

// TestPipelineInvariants: for every randomized scenario and every
// scheduler, the schedule must validate and its replay must show no
// stalls beyond router pipeline fill and no data arriving later than
// its consumer's start plus the per-hop allowance.
func TestPipelineInvariants(t *testing.T) {
	count := 12
	if testing.Short() {
		count = 4
	}
	for _, tc := range randomCases(t, count, 20260706) {
		acg, err := nocsched.BuildACG(tc.platform, nocsched.DefaultEnergyModel())
		if err != nil {
			t.Fatal(err)
		}

		type run struct {
			name string
			s    *nocsched.Schedule
		}
		var runs []run

		easRes, err := nocsched.EAS(tc.graph, acg, nocsched.EASOptions{})
		if err != nil {
			t.Fatalf("%s: EAS: %v", tc.name, err)
		}
		runs = append(runs, run{"eas", easRes.Schedule})

		baseRes, err := nocsched.EAS(tc.graph, acg, nocsched.EASOptions{DisableRepair: true})
		if err != nil {
			t.Fatalf("%s: EAS-base: %v", tc.name, err)
		}
		runs = append(runs, run{"eas-base", baseRes.Schedule})

		edfSched, err := nocsched.EDF(tc.graph, acg)
		if err != nil {
			t.Fatalf("%s: EDF: %v", tc.name, err)
		}
		runs = append(runs, run{"edf", edfSched})

		dlsSched, err := nocsched.DLS(tc.graph, acg)
		if err != nil {
			t.Fatalf("%s: DLS: %v", tc.name, err)
		}
		runs = append(runs, run{"dls", dlsSched})

		for _, r := range runs {
			if err := r.s.Validate(); err != nil {
				t.Errorf("%s/%s: invalid schedule: %v", tc.name, r.name, err)
				continue
			}
			replay, err := nocsched.Replay(r.s, nocsched.SimOptions{})
			if err != nil {
				t.Errorf("%s/%s: replay: %v", tc.name, r.name, err)
				continue
			}
			if late := replay.LateDeliveries(r.s); len(late) != 0 {
				t.Errorf("%s/%s: %d late deliveries (first: edge %d delivered %d, hops %d)",
					tc.name, r.name, len(late), late[0].Edge, late[0].Delivered, late[0].Hops)
			}
			// Energy cross-check: flit-level accounting equals the
			// analytic model up to the last-flit rounding (the sim
			// charges whole flits).
			analytic := r.s.CommunicationEnergy()
			if analytic > 0 {
				ratio := replay.MeasuredCommEnergy / analytic
				if ratio < 1.0-1e-9 || ratio > 1.5 {
					t.Errorf("%s/%s: sim energy %.1f vs analytic %.1f (ratio %.3f)",
						tc.name, r.name, replay.MeasuredCommEnergy, analytic, ratio)
				}
			}
		}

		// EAS with repair must never be worse than EAS-base on
		// deadline behavior.
		if len(easRes.Schedule.DeadlineMisses()) > len(baseRes.Schedule.DeadlineMisses()) {
			t.Errorf("%s: repair increased misses %d -> %d", tc.name,
				len(baseRes.Schedule.DeadlineMisses()), len(easRes.Schedule.DeadlineMisses()))
		}
	}
}

// TestScheduleSerializationPipeline round-trips EAS schedules through
// JSON for randomized scenarios.
func TestScheduleSerializationPipeline(t *testing.T) {
	for _, tc := range randomCases(t, 4, 77) {
		acg, err := nocsched.BuildACG(tc.platform, nocsched.DefaultEnergyModel())
		if err != nil {
			t.Fatal(err)
		}
		res, err := nocsched.EAS(tc.graph, acg, nocsched.EASOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Schedule.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := nocsched.ReadScheduleJSON(&buf, tc.graph, acg)
		if err != nil {
			t.Fatalf("%s: re-import: %v", tc.name, err)
		}
		if back.TotalEnergy() != res.Schedule.TotalEnergy() {
			t.Errorf("%s: energy changed through serialization", tc.name)
		}
	}
}
