// Command batchbench is the batch-engine throughput harness: for every
// (mesh, tasks) cell it generates a stream of TGFF-style scheduling
// instances, times a fresh-builder serial loop as the baseline, then
// runs the same stream through the internal/batch engine at each
// requested worker count, reporting instances/sec, p50/p99 per-instance
// latency, and the speedup over the serial loop. Every engine run is
// gated on bit-identity (sched.Diff) against the serial references —
// a report with any non-identical cell is never written; the command
// fails instead.
//
// Usage:
//
//	batchbench [-tasks 100,250] [-meshes 3x3,4x4] [-workers 1,2,4,8]
//	           [-instances 24] [-scheds eas,edf,dls] [-laxity 1.3]
//	           [-seed 1] [-o BENCH_batch.json] [-hold 0s]
//	           [-cpuprofile f] [-memprofile f] [-trace f]
//	           [-metrics] [-metrics-out f] [-trace-out f]
//	           [-serve addr] [-metrics-stream f]
//
// The latency percentiles are nearest-rank quantiles over the batch
// engine's fixed latency histogram layout (batch.LatencyBuckets), so
// the reported p50/p99 are the same values a dashboard computes from
// the scraped batch_instance_latency_us series. With -serve the sweep
// exposes its metrics live (/metrics, /readyz flips once the sweep
// starts admitting work); -hold keeps the process — and the ops
// server — alive that long after the report is written, giving an
// external scraper a quiescent window.
//
// See BENCH_batch.json at the repo root for a committed baseline; on a
// single-core host the worker sweep measures the engine's overhead and
// the builder-reuse gain rather than parallel speedup (gomaxprocs in
// the report says which reading applies).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"strconv"
	"strings"
	"time"

	"nocsched/internal/batch"
	"nocsched/internal/diag"
	"nocsched/internal/dls"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
	"nocsched/internal/tgff"
)

// report is the top-level JSON document.
type report struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Seed       int64   `json:"seed"`
	Laxity     float64 `json:"laxity"`
	Instances  int     `json:"instances"`
	Scheds     string  `json:"scheds"`
	Cells      []cell  `json:"cells"`
}

// cell is one sweep point: a (mesh, tasks) instance stream run at one
// worker count.
type cell struct {
	Mesh      string `json:"mesh"`
	Tasks     int    `json:"tasks"`
	Workers   int    `json:"workers"`
	Instances int    `json:"instances"`

	SerialMS        float64 `json:"serial_ms"`
	BatchMS         float64 `json:"batch_ms"`
	InstancesPerSec float64 `json:"instances_per_sec"`
	Speedup         float64 `json:"speedup"`
	P50LatencyUS    float64 `json:"p50_latency_us"`
	P99LatencyUS    float64 `json:"p99_latency_us"`
	Identical       bool    `json:"identical"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "batchbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("batchbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tasksSpec   = fs.String("tasks", "100,250", "comma-separated task counts")
		meshSpec    = fs.String("meshes", "3x3,4x4", "comma-separated mesh sizes, WIDTHxHEIGHT")
		workersSpec = fs.String("workers", "1,2,4,8", "comma-separated batch worker counts")
		instances   = fs.Int("instances", 24, "instances per (mesh, tasks) stream")
		schedSpec   = fs.String("scheds", "eas,edf,dls", "comma-separated schedulers the stream cycles through")
		laxity      = fs.Float64("laxity", 1.3, "deadline laxity of the generated graphs")
		seed        = fs.Int64("seed", 1, "base RNG seed for graph generation")
		out         = fs.String("o", "", "write the JSON report to this file (default stdout)")
		hold        = fs.Duration("hold", 0, "stay alive this long after the report is written (for external -serve scrapers)")
	)
	dflags := diag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	taskCounts, err := parseInts(*tasksSpec)
	if err != nil {
		return fmt.Errorf("bad -tasks: %w", err)
	}
	workerCounts, err := parseInts(*workersSpec)
	if err != nil {
		return fmt.Errorf("bad -workers: %w", err)
	}
	scheds := strings.Split(*schedSpec, ",")
	for _, s := range scheds {
		switch s {
		case batch.AlgoEAS, batch.AlgoEDF, batch.AlgoDLS:
		default:
			return fmt.Errorf("bad -scheds entry %q (want eas, edf or dls)", s)
		}
	}
	if *instances < 1 {
		return errors.New("-instances must be >= 1")
	}
	if url := sess.ObsURL(); url != "" {
		fmt.Fprintf(stderr, "batchbench: serving metrics on %s\n", url)
	}
	// Inputs are validated and the sweep is about to admit work: flip
	// /readyz for external probes.
	sess.MarkReady()

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
		Laxity:     *laxity,
		Instances:  *instances,
		Scheds:     *schedSpec,
	}
	for _, mesh := range strings.Split(*meshSpec, ",") {
		var w, h int
		if _, err := fmt.Sscanf(mesh, "%dx%d", &w, &h); err != nil {
			return fmt.Errorf("bad mesh %q (want WIDTHxHEIGHT): %w", mesh, err)
		}
		platform, err := noc.NewHeterogeneousMesh(w, h, noc.RouteXY, 256)
		if err != nil {
			return err
		}
		acg, err := energy.BuildACG(platform, energy.DefaultModel())
		if err != nil {
			return err
		}
		for _, ntasks := range taskCounts {
			stream, err := buildStream(platform, acg, scheds, *instances, ntasks, *laxity, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "batchbench: %s %d tasks: serial baseline...\n", mesh, ntasks)
			refs, serial, err := serialBaseline(stream)
			if err != nil {
				return err
			}
			for _, workers := range workerCounts {
				fmt.Fprintf(stderr, "batchbench: %s %d tasks, %d workers...\n", mesh, ntasks, workers)
				c, err := benchCell(stream, refs, workers, sess)
				if err != nil {
					return err
				}
				c.Mesh, c.Tasks = mesh, ntasks
				c.SerialMS = ms(serial)
				c.Speedup = float64(serial) / (c.BatchMS * float64(time.Millisecond))
				if !c.Identical {
					return fmt.Errorf("%s %d tasks, %d workers: schedules diverge from serial references",
						mesh, ntasks, workers)
				}
				rep.Cells = append(rep.Cells, c)
			}
		}
	}

	var sink io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if err := sess.WriteReport(stderr); err != nil {
		return err
	}
	if *hold > 0 {
		fmt.Fprintf(stderr, "batchbench: holding for %s (metrics still live)\n", *hold)
		time.Sleep(*hold)
	}
	return nil
}

// buildStream generates the cell's instance list: distinct seeded
// graphs on one platform, cycling through the requested schedulers so
// consecutive instances on one worker exercise Builder.Reset across
// both graph shapes and algorithms.
func buildStream(platform *noc.Platform, acg *energy.ACG, scheds []string, n, ntasks int, laxity float64, seed int64) ([]batch.Instance, error) {
	stream := make([]batch.Instance, 0, n)
	for i := 0; i < n; i++ {
		p := tgff.SuiteParams(tgff.CategoryI, i%tgff.SuiteSize, platform)
		p.Name = fmt.Sprintf("batchbench-%d-%02d", ntasks, i)
		p.Seed = seed + int64(i)*131
		p.NumTasks = ntasks
		p.DeadlineLaxity = laxity
		g, err := tgff.Generate(p)
		if err != nil {
			return nil, err
		}
		stream = append(stream, batch.Instance{
			Name:      p.Name,
			Graph:     g,
			ACG:       acg,
			Algorithm: scheds[i%len(scheds)],
		})
	}
	return stream, nil
}

// serialBaseline schedules the stream the pre-batch way — a plain loop
// over the serial entry points, a fresh builder per instance — and
// returns the reference schedules plus the loop's wall time.
func serialBaseline(stream []batch.Instance) ([]*sched.Schedule, time.Duration, error) {
	refs := make([]*sched.Schedule, len(stream))
	started := time.Now()
	for i, inst := range stream {
		var s *sched.Schedule
		var err error
		switch inst.Algorithm {
		case batch.AlgoEAS:
			var r *eas.Result
			r, err = eas.Schedule(inst.Graph, inst.ACG, inst.EAS)
			if r != nil {
				s = r.Schedule
			}
		case batch.AlgoEDF:
			s, err = edf.Schedule(inst.Graph, inst.ACG)
		case batch.AlgoDLS:
			s, err = dls.Schedule(inst.Graph, inst.ACG)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", inst.Name, err)
		}
		refs[i] = s
	}
	return refs, time.Since(started), nil
}

// benchCell runs the stream through the engine at one worker count and
// gates every schedule against its serial reference.
func benchCell(stream []batch.Instance, refs []*sched.Schedule, workers int, sess *diag.Session) (cell, error) {
	c := cell{Workers: workers, Instances: len(stream), Identical: true}
	eng := batch.New(batch.Options{Workers: workers, Telemetry: sess.Collector()})
	started := time.Now()
	results, err := eng.Run(context.Background(), stream)
	elapsed := time.Since(started)
	if err != nil {
		return c, err
	}
	// The percentiles come from the same fixed bucket layout the engine
	// exposes as batch_instance_latency_us, so the report and a scraped
	// dashboard agree on what "p99" means.
	hist := telemetry.NewRegistry().Histogram(batch.MetricLatency, batch.LatencyBuckets())
	for i, r := range results {
		if r.Err != nil {
			return c, fmt.Errorf("%s: %w", r.Name, r.Err)
		}
		if sched.Diff(refs[i], r.Schedule) != "" {
			c.Identical = false
		}
		hist.Observe(r.Latency.Microseconds())
	}
	sample := hist.Sample(batch.MetricLatency)
	c.BatchMS = ms(elapsed)
	c.InstancesPerSec = float64(len(results)) / elapsed.Seconds()
	c.P50LatencyUS = sample.Quantile(0.50)
	c.P99LatencyUS = sample.Quantile(0.99)
	return c, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func parseInts(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("empty list")
	}
	return out, nil
}

// checkReport validates the report invariants the committed
// BENCH_batch.json and the CI smoke lane are held to.
func checkReport(r *report) error {
	if r.GOMAXPROCS < 1 {
		return fmt.Errorf("gomaxprocs %d", r.GOMAXPROCS)
	}
	if len(r.Cells) == 0 {
		return errors.New("no cells")
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		tag := fmt.Sprintf("cell %s/%d tasks/%d workers", c.Mesh, c.Tasks, c.Workers)
		switch {
		case c.Workers < 1 || c.Tasks < 1 || c.Instances < 1:
			return fmt.Errorf("%s: non-positive dimensions", tag)
		case c.SerialMS <= 0 || c.BatchMS <= 0:
			return fmt.Errorf("%s: non-positive timings", tag)
		case c.InstancesPerSec <= 0:
			return fmt.Errorf("%s: non-positive throughput", tag)
		case c.P50LatencyUS < 0 || c.P99LatencyUS < c.P50LatencyUS:
			return fmt.Errorf("%s: inconsistent latency percentiles", tag)
		case c.Speedup <= 0:
			return fmt.Errorf("%s: non-positive speedup", tag)
		case !c.Identical:
			return fmt.Errorf("%s: non-identical schedules", tag)
		}
	}
	return nil
}
