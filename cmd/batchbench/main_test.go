package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nocsched/internal/batch"
	"nocsched/internal/obs"
	"nocsched/internal/telemetry"
)

func TestRunSweep(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-tasks", "30", "-meshes", "3x3", "-workers", "1,2",
		"-instances", "6", "-scheds", "eas,edf,dls", "-seed", "7", "-o", out},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if err := checkReport(&rep); err != nil {
		t.Fatalf("report schema: %v", err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("want 1 mesh x 1 task count x 2 worker counts = 2 cells, got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Instances != 6 {
			t.Errorf("cell %+v: instances %d, want 6", c, c.Instances)
		}
		if !c.Identical {
			t.Errorf("cell %+v: schedules not bit-identical", c)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{"-scheds", "sa"},
		{"-meshes", "3by3"},
		{"-tasks", "0"},
		{"-workers", "x"},
		{"-instances", "0"},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// TestQuantileMatchesEngineBuckets: the report percentiles are the
// nearest-rank quantiles of the engine's fixed latency bucket layout —
// same code path (telemetry.HistogramSample.Quantile), same buckets.
func TestQuantileMatchesEngineBuckets(t *testing.T) {
	bounds := batch.LatencyBuckets()
	hist := telemetry.NewRegistry().Histogram(batch.MetricLatency, bounds)
	for _, us := range []int64{30, 60, 120, 300, 600, 1200, 3000, 6000, 12000, 30000} {
		hist.Observe(us)
	}
	s := hist.Sample(batch.MetricLatency)
	// 10 observations, one per bucket: p50 is the 5th bucket's bound,
	// p99 the 10th's.
	if p := s.Quantile(0.50); p != float64(bounds[4]) {
		t.Errorf("p50 = %g, want %d", p, bounds[4])
	}
	if p := s.Quantile(0.99); p != float64(bounds[9]) {
		t.Errorf("p99 = %g, want %d", p, bounds[9])
	}
}

// TestServeAndStream: the diag live-plane flags work end to end on a
// tiny sweep — /metrics valid and carrying the batch series while the
// -hold window keeps the server up, stream artifact valid.
func TestServeAndStream(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	stream := filepath.Join(dir, "stream.jsonl")
	var stdout bytes.Buffer
	stderrR, stderrW := io.Pipe()

	done := make(chan error, 1)
	go func() {
		err := run([]string{"-tasks", "20", "-meshes", "3x3", "-workers", "1",
			"-instances", "3", "-seed", "7", "-o", out, "-hold", "5s",
			"-serve", "127.0.0.1:0", "-metrics-stream", stream, "-stream-interval", "10ms"},
			&stdout, stderrW)
		stderrW.CloseWithError(err) //nolint:errcheck
		done <- err
	}()

	// The serving line reports the bound address; the holding line
	// means the report is written and the server is quiescent.
	var base string
	sc := bufio.NewScanner(stderrR)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "batchbench: serving metrics on "); ok {
			base = rest
		}
		if strings.Contains(line, "holding for") {
			break
		}
	}
	if base == "" {
		t.Fatal("no serving line on stderr")
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d during hold, want 200", path, resp.StatusCode)
		}
	}
	// Two quiescent scrapes are byte-identical, valid, and carry the
	// batch series.
	scrape := func() []byte {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	// Back-to-back scrapes only differ if a runtime-collector tick
	// lands between them; retry the pair instead of flaking on that
	// 1 s window.
	var a, b []byte
	for attempt := 0; attempt < 5; attempt++ {
		a, b = scrape(), scrape()
		if bytes.Equal(a, b) {
			break
		}
	}
	if !bytes.Equal(a, b) {
		t.Error("quiescent scrapes differ on every attempt")
	}
	if _, err := obs.ValidateExposition(bytes.NewReader(a)); err != nil {
		t.Errorf("scrape invalid: %v", err)
	}
	for _, want := range []string{batch.MetricInstances, batch.MetricLatency + "_bucket", "runtime_goroutines"} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("scrape missing %s", want)
		}
	}

	// Don't wait out the hold: the test has what it needs. Drain
	// stderr so the run goroutine never blocks on the pipe.
	go io.Copy(io.Discard, stderrR) //nolint:errcheck
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish")
	}

	raw, err := os.ReadFile(stream)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateSnapshotStream(bytes.NewReader(raw)); err != nil {
		t.Errorf("stream artifact: %v", err)
	}
}

// TestCommittedBaseline validates the committed BENCH_batch.json when
// NOCSCHED_BATCH_FILE points at it (the CI smoke lane sets it), so the
// checked-in baseline can never drift from the schema or carry a
// non-deterministic cell.
func TestCommittedBaseline(t *testing.T) {
	path := os.Getenv("NOCSCHED_BATCH_FILE")
	if path == "" {
		t.Skip("NOCSCHED_BATCH_FILE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if err := checkReport(&rep); err != nil {
		t.Fatalf("%s schema: %v", path, err)
	}
}
