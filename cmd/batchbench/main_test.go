package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunSweep(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-tasks", "30", "-meshes", "3x3", "-workers", "1,2",
		"-instances", "6", "-scheds", "eas,edf,dls", "-seed", "7", "-o", out},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if err := checkReport(&rep); err != nil {
		t.Fatalf("report schema: %v", err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("want 1 mesh x 1 task count x 2 worker counts = 2 cells, got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Instances != 6 {
			t.Errorf("cell %+v: instances %d, want 6", c, c.Instances)
		}
		if !c.Identical {
			t.Errorf("cell %+v: schedules not bit-identical", c)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, args := range [][]string{
		{"-scheds", "sa"},
		{"-meshes", "3by3"},
		{"-tasks", "0"},
		{"-workers", "x"},
		{"-instances", "0"},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lat, 50); p != 5 {
		t.Errorf("p50 = %d, want 5", p)
	}
	if p := percentile(lat, 99); p != 10 {
		t.Errorf("p99 = %d, want 10", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Errorf("p50 of empty = %d, want 0", p)
	}
}

// TestCommittedBaseline validates the committed BENCH_batch.json when
// NOCSCHED_BATCH_FILE points at it (the CI smoke lane sets it), so the
// checked-in baseline can never drift from the schema or carry a
// non-deterministic cell.
func TestCommittedBaseline(t *testing.T) {
	path := os.Getenv("NOCSCHED_BATCH_FILE")
	if path == "" {
		t.Skip("NOCSCHED_BATCH_FILE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if err := checkReport(&rep); err != nil {
		t.Fatalf("%s schema: %v", path, err)
	}
}
