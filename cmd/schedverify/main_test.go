package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
)

// writeArtifacts builds a small instance on the CLI's default platform
// (4x4 XY mesh, bandwidth 256, default energy model), schedules it with
// EDF, and writes both JSON artifacts into dir.
func writeArtifacts(t *testing.T, dir string) (graphPath, schedPath string) {
	t.Helper()
	platform, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("cli-rig")
	exec := make([]int64, platform.NumPEs())
	eng := make([]float64, platform.NumPEs())
	for k := range exec {
		exec[k] = int64(10 + k)
		eng[k] = float64(2 + k)
	}
	var ids []ctg.TaskID
	for _, name := range []string{"a", "b", "c"} {
		id, err := g.AddTask(name, exec, eng, ctg.NoDeadline)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := g.AddEdge(ids[0], ids[1], 512); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(ids[1], ids[2], 256); err != nil {
		t.Fatal(err)
	}
	s, err := edf.Schedule(g, acg)
	if err != nil {
		t.Fatal(err)
	}

	graphPath = filepath.Join(dir, "graph.json")
	gf, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(gf); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	schedPath = filepath.Join(dir, "sched.json")
	sf, err := os.Create(schedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	return graphPath, schedPath
}

func TestRunCleanSchedule(t *testing.T) {
	graphPath, schedPath := writeArtifacts(t, t.TempDir())
	var out, errBuf bytes.Buffer
	err := run([]string{"-graph", graphPath, "-schedule", schedPath}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Fatalf("expected ok output, got %q", out.String())
	}
}

func TestRunTamperedScheduleExitsWithFindings(t *testing.T) {
	dir := t.TempDir()
	graphPath, schedPath := writeArtifacts(t, dir)
	raw, err := os.ReadFile(schedPath)
	if err != nil {
		t.Fatal(err)
	}
	// The entry task starts at 0; drag it negative so the oracle must
	// flag it regardless of where the scheduler placed anything.
	tampered := bytes.Replace(raw, []byte(`"start": 0`), []byte(`"start": -5`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tampering had no effect; adjust the mutation")
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	err = run([]string{"-graph", graphPath, "-schedule", badPath}, &out, &errBuf)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run = %v, want errFindings\nstdout: %s", err, out.String())
	}
	if !strings.Contains(out.String(), "findings") {
		t.Fatalf("expected findings output, got %q", out.String())
	}
}

func TestRunJSONReport(t *testing.T) {
	graphPath, schedPath := writeArtifacts(t, t.TempDir())
	var out, errBuf bytes.Buffer
	err := run([]string{"-graph", graphPath, "-schedule", schedPath, "-json"}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), `"findings"`) {
		t.Fatalf("expected JSON report, got %q", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	graphPath, schedPath := writeArtifacts(t, t.TempDir())
	var out, errBuf bytes.Buffer
	if err := run(nil, &out, &errBuf); err == nil {
		t.Fatal("missing required flags accepted")
	}
	if err := run([]string{"-graph", graphPath, "-schedule", schedPath, "-mesh", "banana"}, &out, &errBuf); err == nil {
		t.Fatal("bad mesh spec accepted")
	}
	if err := run([]string{"-graph", graphPath, "-schedule", schedPath, "-routing", "zz"}, &out, &errBuf); err == nil {
		t.Fatal("bad routing scheme accepted")
	}
}
