// Command schedverify checks a schedule JSON artifact (see easched
// -json-out or Schedule.WriteJSON) against the problem instance it was
// built for, using the independent conformance oracle in
// internal/verify: task precedence with communication delays along the
// recorded routes, PE mutual exclusion (Definition 4), per-link slot
// capacity (Definition 3), route validity, hard deadlines, and
// bit-exact Eq. (2)/(3) energy accounting.
//
// Usage:
//
//	schedverify -graph app.json -schedule sched.json
//	            [-mesh 4x4] [-routing xy] [-bandwidth 256]
//	            [-platform spec.json]
//	            [-json] [-horizon N] [-max N] [-ignore-deadlines]
//
// The schedule is loaded leniently: malformed placements are reported
// as typed findings rather than load errors. -horizon marks a hybrid
// schedule's checkpoint time (see fault.ReplayStream): placements
// starting before it are verified as committed history. With
// -ignore-deadlines, deadline findings are still printed but do not
// affect the exit status (mirroring Validate vs. Feasible: EAS-base
// legitimately emits deadline-missing but well-formed schedules).
//
// The exit status is 0 for a conformant schedule, 1 when the oracle
// reports findings, and 2 on usage or I/O errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"nocsched/internal/ctg"
	"nocsched/internal/diag"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/verify"
)

// errFindings marks a completed verification that found violations
// (exit status 1, not an error message).
var errFindings = errors.New("schedule has findings")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "schedverify:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("schedverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "path to the CTG JSON file (required)")
		schedPath = fs.String("schedule", "", "path to the schedule JSON file (required)")
		platSpec  = fs.String("platform", "", "platform spec JSON file (overrides -mesh/-routing/-bandwidth)")
		meshSpec  = fs.String("mesh", "4x4", "mesh dimensions, WIDTHxHEIGHT")
		routing   = fs.String("routing", "xy", "routing scheme: xy or yx")
		bandwidth = fs.Int64("bandwidth", 256, "link bandwidth in bits per time unit")
		jsonOut   = fs.Bool("json", false, "print the report as JSON instead of text")
		horizon   = fs.Int64("horizon", 0, "frozen-checkpoint horizon for hybrid (post-fault) schedules")
		maxFind   = fs.Int("max", 0, "cap on reported findings (0 = default)")
		ignoreDl  = fs.Bool("ignore-deadlines", false, "report deadline misses but do not fail on them")
	)
	dflags := diag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// The diagnostics session is live: flip /readyz for -serve probes.
	sess.MarkReady()
	if *graphPath == "" || *schedPath == "" {
		fs.Usage()
		return errors.New("missing -graph or -schedule")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := ctg.ReadJSON(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *graphPath, err)
	}

	var platform *noc.Platform
	if *platSpec != "" {
		pf, err := os.Open(*platSpec)
		if err != nil {
			return err
		}
		platform, err = noc.ReadPlatformSpec(pf)
		pf.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", *platSpec, err)
		}
	} else {
		var w, h int
		if _, err := fmt.Sscanf(*meshSpec, "%dx%d", &w, &h); err != nil {
			return fmt.Errorf("bad -mesh %q (want WIDTHxHEIGHT): %w", *meshSpec, err)
		}
		scheme := noc.RouteXY
		switch *routing {
		case "xy":
		case "yx":
			scheme = noc.RouteYX
		default:
			return fmt.Errorf("bad -routing %q (want xy or yx)", *routing)
		}
		platform, err = noc.NewHeterogeneousMesh(w, h, scheme, *bandwidth)
		if err != nil {
			return err
		}
	}
	if g.NumPEs() != platform.NumPEs() {
		return fmt.Errorf("graph %q is characterized for %d PEs but the %s platform has %d",
			g.Name, g.NumPEs(), platform.Topo.Name(), platform.NumPEs())
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		return err
	}

	sf, err := os.Open(*schedPath)
	if err != nil {
		return err
	}
	s, err := sched.ReadJSONLenient(sf, g, acg)
	sf.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *schedPath, err)
	}

	rep := verify.CheckOptions(s, verify.Options{FrozenHorizon: *horizon, MaxFindings: *maxFind})
	if *jsonOut {
		if err := rep.WriteJSON(stdout); err != nil {
			return err
		}
	} else if rep.OK() {
		fmt.Fprintf(stdout, "ok: %q conforms (%d tasks, %d transactions)\n",
			*schedPath, len(s.Tasks), len(s.Transactions))
	} else {
		fmt.Fprintf(stdout, "%d findings:\n%s", len(rep.Findings), rep)
	}
	failing := len(rep.Findings)
	if *ignoreDl {
		failing -= rep.Count(verify.ClassDeadline)
	}
	if failing > 0 {
		return errFindings
	}
	return nil
}
