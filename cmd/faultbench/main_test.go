package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-graphs", "1", "-tasks", "24", "-mesh", "3x3",
		"-kmax", "2", "-trials", "4", "-seed", "7", "-o", out}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "recovered") {
		t.Errorf("summary table missing:\n%s", stdout.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.PerK) != 2 || rep.PerK[0].K != 1 || rep.PerK[1].K != 2 {
		t.Fatalf("per-k rows wrong: %+v", rep.PerK)
	}
	for _, kr := range rep.PerK {
		if kr.Trials != 4 {
			t.Errorf("k=%d trials %d, want 4", kr.K, kr.Trials)
		}
		if kr.Recovered+kr.Infeasible+kr.Disconnected+kr.NoCapablePE != kr.Trials {
			t.Errorf("k=%d outcomes do not sum to trials: %+v", kr.K, kr)
		}
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	args := []string{"-graphs", "1", "-tasks", "24", "-mesh", "3x3",
		"-kmax", "1", "-trials", "4", "-seed", "3"}
	var a, b, stderr bytes.Buffer
	if err := run(args, &a, &stderr); err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	if err := run(args, &b, &stderr); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed diverged:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for name, args := range map[string][]string{
		"bad mesh":   {"-mesh", "abc"},
		"bad graphs": {"-graphs", "0"},
		"bad kmax":   {"-kmax", "0"},
		"bad trials": {"-trials", "-1"},
		"bad flag":   {"-nonsense"},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
