// Command faultbench sweeps random k-fault scenarios over TGFF-style
// benchmarks and measures how well fault recovery (internal/fault)
// holds up: how often a scenario is recoverable at all, how often the
// recovered schedule still meets every deadline, and what the recovery
// costs in energy and task migrations.
//
// Usage:
//
//	faultbench [-graphs 3] [-tasks 120] [-mesh 4x4] [-kmax 3]
//	           [-trials 20] [-seed 1] [-laxity 1.6] [-o BENCH_fault.json]
//	           [-cpuprofile f] [-memprofile f] [-trace f]
//	           [-metrics] [-metrics-out f] [-trace-out f]
//
// Every trial draws a fresh random scenario of k faults (PE, router and
// link failures, uniform over the platform's resources), recovers the
// benchmark's fault-free EAS schedule from it, and classifies the
// outcome. The sweep is deterministic in -seed.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"nocsched/internal/diag"
	"nocsched/internal/eas"
	"nocsched/internal/energy"
	"nocsched/internal/fault"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "faultbench:", err)
		os.Exit(1)
	}
}

// kReport aggregates outcomes of all trials at one fault count.
type kReport struct {
	K      int `json:"k"`
	Trials int `json:"trials"`
	// Recovered counts trials whose recovery produced a schedule
	// meeting every deadline; Infeasible those whose best recovered
	// schedule still misses at least one.
	Recovered  int `json:"recovered"`
	Infeasible int `json:"infeasible"`
	// Disconnected / NoCapablePE count the typed unrecoverable
	// outcomes.
	Disconnected int `json:"disconnected"`
	NoCapablePE  int `json:"no_capable_pe"`
	// RecoveryRate is Recovered over Trials.
	RecoveryRate float64 `json:"recovery_rate"`
	// MeanEnergyOverhead / MeanTasksMigrated / FullReschedules
	// aggregate over the recovered (feasible) trials only.
	MeanEnergyOverhead float64 `json:"mean_energy_overhead"`
	MeanTasksMigrated  float64 `json:"mean_tasks_migrated"`
	FullReschedules    int     `json:"full_reschedules"`
}

// report is the JSON document faultbench emits.
type report struct {
	Mesh      string    `json:"mesh"`
	Graphs    int       `json:"graphs"`
	Tasks     int       `json:"tasks"`
	TrialsPeK int       `json:"trials_per_k_per_graph"`
	Seed      int64     `json:"seed"`
	Laxity    float64   `json:"laxity"`
	PerK      []kReport `json:"per_k"`
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("faultbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphs   = fs.Int("graphs", 3, "number of TGFF benchmarks to sweep")
		tasks    = fs.Int("tasks", 120, "tasks per benchmark")
		meshSpec = fs.String("mesh", "4x4", "mesh dimensions, WIDTHxHEIGHT")
		kmax     = fs.Int("kmax", 3, "sweep fault counts 1..kmax")
		trials   = fs.Int("trials", 20, "random scenarios per fault count per benchmark")
		seed     = fs.Int64("seed", 1, "root seed for graphs and scenarios")
		laxity   = fs.Float64("laxity", 1.6, "deadline laxity of the generated benchmarks")
		outPath  = fs.String("o", "", "write the sweep report as JSON to this file")
	)
	dflags := diag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// The diagnostics session is live: flip /readyz for -serve probes.
	sess.MarkReady()
	telem := sess.Collector()
	var w, h int
	if _, err := fmt.Sscanf(*meshSpec, "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q (want WIDTHxHEIGHT): %w", *meshSpec, err)
	}
	if *graphs < 1 || *kmax < 1 || *trials < 1 {
		return errors.New("-graphs, -kmax and -trials must be >= 1")
	}
	platform, err := noc.NewHeterogeneousMesh(w, h, noc.RouteXY, 256)
	if err != nil {
		return err
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		return err
	}

	rep := report{
		Mesh: *meshSpec, Graphs: *graphs, Tasks: *tasks,
		TrialsPeK: *trials, Seed: *seed, Laxity: *laxity,
		PerK: make([]kReport, *kmax),
	}
	for k := range rep.PerK {
		rep.PerK[k].K = k + 1
	}

	// One rng drives the whole sweep (satisfying reproducibility); the
	// graph seeds derive from the root seed so -graphs extends rather
	// than reshuffles the benchmark list.
	rng := rand.New(rand.NewSource(*seed))
	for gi := 0; gi < *graphs; gi++ {
		g, err := tgff.Generate(tgff.Params{
			Name: fmt.Sprintf("faultbench-%02d", gi), Seed: *seed*1000 + int64(gi),
			NumTasks: *tasks, MaxInDegree: 3, LocalityWindow: 16,
			TaskTypes: 8, ExecMin: 20, ExecMax: 200, HeteroSpread: 0.5,
			VolumeMin: 256, VolumeMax: 8192, ControlEdgeFraction: 0.1,
			DeadlineLaxity: *laxity, DeadlineFraction: 1, Platform: platform,
		})
		if err != nil {
			return err
		}
		base, err := eas.Schedule(g, acg, eas.Options{Telemetry: telem})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "benchmark %s: %d tasks, %d transactions, fault-free misses %d\n",
			g.Name, g.NumTasks(), g.NumEdges(), len(base.Schedule.DeadlineMisses()))

		for k := 1; k <= *kmax; k++ {
			kr := &rep.PerK[k-1]
			for trial := 0; trial < *trials; trial++ {
				sc := fault.Random(rng, platform, k)
				kr.Trials++
				rec, err := fault.Recover(base.Schedule, sc, fault.Options{EAS: eas.Options{Telemetry: telem}})
				switch {
				case errors.Is(err, fault.ErrDisconnected):
					kr.Disconnected++
				case errors.Is(err, fault.ErrNoCapablePE):
					kr.NoCapablePE++
				case err != nil:
					return fmt.Errorf("benchmark %s scenario %+v: %w", g.Name, sc, err)
				case rec.Feasible():
					kr.Recovered++
					kr.MeanEnergyOverhead += rec.Stats.EnergyOverhead()
					kr.MeanTasksMigrated += float64(rec.Stats.TasksMigrated)
					if rec.Stats.FullReschedule {
						kr.FullReschedules++
					}
				default:
					kr.Infeasible++
				}
			}
		}
	}

	fmt.Fprintf(stdout, "\n%4s %7s %9s %10s %12s %11s %10s %9s\n",
		"k", "trials", "recovered", "infeasible", "disconnected", "no-cap-pe", "overhead", "migrated")
	for i := range rep.PerK {
		kr := &rep.PerK[i]
		if kr.Recovered > 0 {
			kr.MeanEnergyOverhead /= float64(kr.Recovered)
			kr.MeanTasksMigrated /= float64(kr.Recovered)
		}
		kr.RecoveryRate = float64(kr.Recovered) / float64(kr.Trials)
		fmt.Fprintf(stdout, "%4d %7d %9d %10d %12d %11d %9.1f%% %9.1f\n",
			kr.K, kr.Trials, kr.Recovered, kr.Infeasible, kr.Disconnected,
			kr.NoCapablePE, 100*kr.MeanEnergyOverhead, kr.MeanTasksMigrated)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nreport written to %s\n", *outPath)
	}
	return sess.WriteReport(stdout)
}
