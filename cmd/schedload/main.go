// Command schedload is the load generator for the schedd scheduling
// daemon: it builds a fixed set of distinct TGFF-style workloads,
// waits for the daemon's /readyz, solves each workload once (the cold
// phase), then replays them in a concurrent warm burst that should be
// answered almost entirely from the daemon's content-addressed cache.
// The report (BENCH_serve.json schema) carries throughput, p50/p99
// latency, the cache hit ratio, and the cold-vs-warm speedup.
//
// Usage:
//
//	schedload [-url http://127.0.0.1:9821] [-mesh 4x4] [-tasks 60]
//	          [-workloads 8] [-requests 200] [-concurrency 8]
//	          [-scheds eas,edf,dls] [-seed 1] [-wait 30s]
//	          [-o BENCH_serve.json]
//
// The report is gated the same way batchbench gates its cells: every
// response for a workload must be bit-identical to that workload's
// cold solve (byte equality plus sched.Diff on the re-loaded
// schedules), every schedule must pass the internal/verify oracle,
// and any 5xx fails the run. A report that exists is therefore a
// correctness witness, not just a timing record. 429s do not fail the
// run — they are the daemon's documented retryable backpressure and
// are retried with backoff and counted in status_429_retries.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/serve"
	"nocsched/internal/tgff"
	"nocsched/internal/verify"
)

// report is the top-level BENCH_serve.json document.
type report struct {
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Seed        int64  `json:"seed"`
	Concurrency int    `json:"concurrency"`
	Scheds      string `json:"scheds"`
	Cells       []cell `json:"cells"`
}

// cell is one load run against one (mesh, tasks) workload set.
type cell struct {
	Mesh      string `json:"mesh"`
	Tasks     int    `json:"tasks"`
	Requests  int    `json:"requests"`
	Workloads int    `json:"workloads"`

	Status2xx int `json:"status_2xx"`
	Status429 int `json:"status_429_retries"`
	Status5xx int `json:"status_5xx"`
	Solves    int `json:"solves"`

	HitRatio      float64 `json:"hit_ratio"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	ColdMS        float64 `json:"cold_ms"`
	WarmMS        float64 `json:"warm_ms"`
	WarmSpeedup   float64 `json:"warm_speedup"`

	Identical bool `json:"identical"`
	Verified  bool `json:"verified"`
}

// workload is one distinct submission the burst cycles through.
type workload struct {
	body  []byte
	graph *ctg.Graph

	mu       sync.Mutex
	digest   string
	schedule []byte // cold-phase schedule bytes, the bit-identity reference
	warm     []byte // first warm-burst schedule for this workload
	diverged bool
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseURL     = fs.String("url", "http://127.0.0.1:9821", "schedd base URL")
		meshSpec    = fs.String("mesh", "4x4", "mesh size, WIDTHxHEIGHT")
		tasks       = fs.Int("tasks", 60, "tasks per workload graph")
		nWorkloads  = fs.Int("workloads", 8, "distinct workloads the burst cycles through")
		nRequests   = fs.Int("requests", 200, "warm-burst request count")
		concurrency = fs.Int("concurrency", 8, "concurrent warm-burst clients")
		schedSpec   = fs.String("scheds", "eas,edf,dls", "comma-separated algorithms the workloads cycle through")
		seed        = fs.Int64("seed", 1, "base RNG seed for graph generation")
		wait        = fs.Duration("wait", 30*time.Second, "how long to wait for /readyz")
		out         = fs.String("o", "", "write the JSON report to this file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var w, h int
	if _, err := fmt.Sscanf(*meshSpec, "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q (want WIDTHxHEIGHT): %w", *meshSpec, err)
	}
	scheds := strings.Split(*schedSpec, ",")
	for _, s := range scheds {
		switch s {
		case serve.AlgoEAS, serve.AlgoEASBase, serve.AlgoEDF, serve.AlgoDLS:
		default:
			return fmt.Errorf("bad -scheds entry %q", s)
		}
	}
	if *nWorkloads < 1 || *nRequests < 1 || *concurrency < 1 {
		return errors.New("-workloads, -requests and -concurrency must be >= 1")
	}

	spec := noc.PlatformSpec{Topology: "mesh", Width: w, Height: h, Routing: "xy", Bandwidth: 256}
	platform, err := spec.Build()
	if err != nil {
		return err
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		return err
	}
	workloads := make([]*workload, *nWorkloads)
	for i := range workloads {
		p := tgff.SuiteParams(tgff.CategoryI, i%tgff.SuiteSize, platform)
		p.Name = fmt.Sprintf("schedload-%d", i)
		p.Seed = *seed + int64(i)
		p.NumTasks = *tasks
		g, err := tgff.Generate(p)
		if err != nil {
			return err
		}
		body, err := json.Marshal(serve.Request{Graph: g, Platform: &spec, Algorithm: scheds[i%len(scheds)]})
		if err != nil {
			return err
		}
		workloads[i] = &workload{body: body, graph: g}
	}

	client := &http.Client{Timeout: 60 * time.Second}
	if err := awaitReady(client, *baseURL, *wait); err != nil {
		return err
	}

	c := cell{
		Mesh:      *meshSpec,
		Tasks:     *tasks,
		Requests:  2**nWorkloads + *nRequests,
		Workloads: *nWorkloads,
	}

	// Cold phase: solve each workload once, sequentially, recording the
	// bit-identity reference for the burst.
	fmt.Fprintf(stderr, "schedload: cold phase: %d workloads...\n", *nWorkloads)
	var coldMS []float64
	for _, wl := range workloads {
		r, latency, retries, err := submit(client, *baseURL, wl.body)
		c.Status429 += retries
		if err != nil {
			c.Status5xx++
			return fmt.Errorf("cold solve: %w", err)
		}
		c.Status2xx++
		coldMS = append(coldMS, latency)
		wl.digest = r.Digest
		wl.schedule = r.Schedule
		if r.Cache == serve.CacheMiss {
			c.Solves++
		}
	}

	// Warm latency pass: replay each workload once, sequentially, so
	// warm_ms is measured under the same (unloaded) conditions as
	// cold_ms and warm_speedup isolates the cache's benefit rather
	// than burst-phase queueing.
	fmt.Fprintf(stderr, "schedload: warm latency pass: %d workloads...\n", *nWorkloads)
	var warmSeqMS []float64
	for _, wl := range workloads {
		r, latency, retries, err := submit(client, *baseURL, wl.body)
		c.Status429 += retries
		if err != nil {
			c.Status5xx++
			return fmt.Errorf("warm pass: %w", err)
		}
		c.Status2xx++
		warmSeqMS = append(warmSeqMS, latency)
		if r.Cache == serve.CacheMiss {
			c.Solves++
		}
		wl.mu.Lock()
		if r.Digest != wl.digest || !bytes.Equal(r.Schedule, wl.schedule) {
			wl.diverged = true
		}
		if wl.warm == nil {
			wl.warm = r.Schedule
		}
		wl.mu.Unlock()
	}

	// Warm burst: request i replays workload i%W concurrently; the
	// daemon should answer from its cache.
	fmt.Fprintf(stderr, "schedload: warm burst: %d requests at concurrency %d...\n", *nRequests, *concurrency)
	var (
		mu       sync.Mutex
		warmMS   []float64
		burstErr error
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	burstStart := time.Now()
	for g := 0; g < *concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				wl := workloads[i%len(workloads)]
				r, latency, retries, err := submit(client, *baseURL, wl.body)
				mu.Lock()
				c.Status429 += retries
				if err != nil {
					c.Status5xx++
					if burstErr == nil {
						burstErr = err
					}
					mu.Unlock()
					continue
				}
				c.Status2xx++
				warmMS = append(warmMS, latency)
				if r.Cache == serve.CacheMiss {
					c.Solves++
				}
				mu.Unlock()
				wl.mu.Lock()
				if r.Digest != wl.digest || !bytes.Equal(r.Schedule, wl.schedule) {
					wl.diverged = true
				}
				if wl.warm == nil {
					wl.warm = r.Schedule
				}
				wl.mu.Unlock()
			}
		}()
	}
	for i := 0; i < *nRequests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	burstWall := time.Since(burstStart)
	if burstErr != nil {
		return fmt.Errorf("warm burst: %w", burstErr)
	}

	// Gates: every burst response matched its cold reference byte for
	// byte, and every cold schedule re-loads bit-identically (sched.Diff)
	// and passes the conformance oracle.
	c.Identical = true
	c.Verified = true
	for _, wl := range workloads {
		if wl.diverged {
			c.Identical = false
			continue
		}
		s1, err := sched.ReadJSON(bytes.NewReader(wl.schedule), wl.graph, acg)
		if err != nil {
			return fmt.Errorf("re-load %s: %w", wl.digest, err)
		}
		if wl.warm != nil {
			s2, err := sched.ReadJSON(bytes.NewReader(wl.warm), wl.graph, acg)
			if err != nil {
				return fmt.Errorf("re-load warm %s: %w", wl.digest, err)
			}
			if sched.Diff(s1, s2) != "" {
				c.Identical = false
			}
		}
		if rep := verify.Check(s1); !structurallyClean(rep) {
			c.Verified = false
		}
	}
	if !c.Identical {
		return errors.New("burst responses diverged from their cold references; refusing to write a report")
	}
	if !c.Verified {
		return errors.New("a served schedule failed verification; refusing to write a report")
	}

	c.HitRatio = 1 - float64(c.Solves)/float64(c.Status2xx)
	c.ThroughputRPS = float64(len(warmMS)) / burstWall.Seconds()
	c.P50MS = quantile(warmMS, 0.50)
	c.P99MS = quantile(warmMS, 0.99)
	c.ColdMS = mean(coldMS)
	c.WarmMS = mean(warmSeqMS)
	if c.WarmMS > 0 {
		c.WarmSpeedup = c.ColdMS / c.WarmMS
	}

	rep := report{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        *seed,
		Concurrency: *concurrency,
		Scheds:      *schedSpec,
		Cells:       []cell{c},
	}
	var sink io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// awaitReady polls /readyz until the daemon reports ready.
func awaitReady(client *http.Client, baseURL string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(baseURL + "/readyz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon not ready after %v: %w", wait, err)
			}
			return fmt.Errorf("daemon not ready after %v", wait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// submit posts one request, retrying 429s with backoff. It returns the
// decoded response, the final attempt's latency in ms, and how many
// retries backpressure cost.
func submit(client *http.Client, baseURL string, body []byte) (*serve.Response, float64, int, error) {
	backoff := 5 * time.Millisecond
	for retries := 0; ; retries++ {
		start := time.Now()
		resp, err := client.Post(baseURL+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, 0, retries, err
		}
		raw, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, 0, retries, err
		}
		latency := float64(time.Since(start).Microseconds()) / 1e3
		switch {
		case resp.StatusCode == http.StatusOK:
			var r serve.Response
			if err := json.Unmarshal(raw, &r); err != nil {
				return nil, 0, retries, fmt.Errorf("decode response: %w", err)
			}
			return &r, latency, retries, nil
		case resp.StatusCode == http.StatusTooManyRequests && retries < 50:
			time.Sleep(backoff)
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
		default:
			return nil, 0, retries, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
	}
}

// structurallyClean reports whether a verify report carries only
// deadline findings (a legitimate outcome) or none at all.
func structurallyClean(rep *verify.Report) bool {
	for i := range rep.Findings {
		if rep.Findings[i].Class != verify.ClassDeadline {
			return false
		}
	}
	return true
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// quantile is the nearest-rank quantile of xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
