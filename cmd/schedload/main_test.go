package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"nocsched/internal/serve"
	"nocsched/internal/telemetry"
)

// TestLoadAgainstInProcessDaemon runs the full generator loop — readyz
// poll, cold phase, warm pass, concurrent burst, bit-identity and
// verify gates — against an in-process serve.Server.
func TestLoadAgainstInProcessDaemon(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2, Telemetry: telemetry.NewCollector(nil)})
	if err := s.Warmup(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() { _ = s.Close() }()

	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-url", ts.URL, "-mesh", "3x3", "-tasks", "20",
		"-workloads", "3", "-requests", "18", "-concurrency", "4",
		"-seed", "5", "-o", out}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if err := checkReport(&rep); err != nil {
		t.Fatalf("report schema: %v", err)
	}
	c := rep.Cells[0]
	if c.Requests != 2*3+18 {
		t.Errorf("requests = %d, want 24", c.Requests)
	}
	if c.Solves != 3 {
		t.Errorf("solves = %d, want one per distinct workload", c.Solves)
	}
	if c.Status2xx != c.Requests {
		t.Errorf("status_2xx = %d, want all %d requests to succeed", c.Status2xx, c.Requests)
	}
}

// TestBadFlags: input validation fails fast, before any HTTP traffic.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-mesh", "4by4"},
		{"-scheds", "eas,annealer"},
		{"-workloads", "0"},
		{"-requests", "0"},
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestCommittedBaseline validates the committed BENCH_serve.json when
// NOCSCHED_SERVE_FILE points at it (the CI service lane sets it), so
// the checked-in baseline can never drift from the schema, record a
// 5xx, or lose its correctness gates.
func TestCommittedBaseline(t *testing.T) {
	path := os.Getenv("NOCSCHED_SERVE_FILE")
	if path == "" {
		t.Skip("NOCSCHED_SERVE_FILE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if err := checkReport(&rep); err != nil {
		t.Fatalf("%s schema: %v", path, err)
	}
}

// checkReport enforces the BENCH_serve.json invariants shared by the
// in-process test and the committed-baseline validator.
func checkReport(rep *report) error {
	if rep.GOMAXPROCS < 1 {
		return fmt.Errorf("gomaxprocs = %d", rep.GOMAXPROCS)
	}
	if len(rep.Cells) == 0 {
		return fmt.Errorf("no cells")
	}
	for i, c := range rep.Cells {
		switch {
		case c.Mesh == "" || c.Tasks < 1:
			return fmt.Errorf("cell %d: bad workload key %q/%d", i, c.Mesh, c.Tasks)
		case c.Requests < 1 || c.Workloads < 1:
			return fmt.Errorf("cell %d: empty run", i)
		case c.Status5xx != 0:
			return fmt.Errorf("cell %d: %d server errors", i, c.Status5xx)
		case c.Status2xx != c.Requests:
			return fmt.Errorf("cell %d: %d of %d requests succeeded", i, c.Status2xx, c.Requests)
		case c.Solves < 1 || c.Solves > c.Requests:
			return fmt.Errorf("cell %d: solves = %d", i, c.Solves)
		case c.HitRatio <= 0 || c.HitRatio >= 1:
			return fmt.Errorf("cell %d: hit_ratio = %g, want within (0,1)", i, c.HitRatio)
		case c.ThroughputRPS <= 0:
			return fmt.Errorf("cell %d: throughput_rps = %g", i, c.ThroughputRPS)
		case c.P50MS <= 0 || c.P99MS < c.P50MS:
			return fmt.Errorf("cell %d: p50/p99 = %g/%g", i, c.P50MS, c.P99MS)
		case c.ColdMS <= 0 || c.WarmMS <= 0 || c.WarmSpeedup <= 0:
			return fmt.Errorf("cell %d: cold/warm/speedup = %g/%g/%g", i, c.ColdMS, c.WarmMS, c.WarmSpeedup)
		case !c.Identical:
			return fmt.Errorf("cell %d: responses were not bit-identical", i)
		case !c.Verified:
			return fmt.Errorf("cell %d: schedules failed verification", i)
		}
	}
	return nil
}
