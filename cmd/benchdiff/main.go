// Command benchdiff compares a freshly generated benchmark report
// (schedbench -json, batchbench -json, resilbench -json) against a
// committed baseline and fails when a metric regressed — the
// bench-regression watchdog behind the CI benchdiff lane.
//
// Usage:
//
//	benchdiff -baseline BENCH_batch.json -candidate fresh.json
//	          [-kind sched|batch|resilience]
//	          [-timing-threshold 0.2] [-det-threshold 1e-9]
//	          [-o report.json]
//
// Metrics are classed per internal/benchcmp: deterministic metrics
// (probe counts, energy, identical bits — seed-reproducible) gate at
// -det-threshold always; timing metrics (wall-clock, throughput,
// latency quantiles — host-dependent) gate only when -timing-threshold
// is set, and only in the worse direction. A cell present in the
// baseline but missing from the candidate is a coverage regression.
// The kind is auto-detected from the baseline's shape unless -kind is
// given.
//
// The exit status is 0 for a clean comparison, 1 when regressions were
// found, and 2 on usage or I/O errors. With -o the full typed report
// (benchcmp.Report) is written as JSON regardless of the outcome.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"nocsched/internal/benchcmp"
)

// errRegressions marks a completed comparison that found regressions
// (exit status 1, not an error message).
var errRegressions = errors.New("benchmark regressions found")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errRegressions):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "committed baseline report JSON (required)")
	candidate := fs.String("candidate", "", "freshly generated report JSON (required)")
	kindFlag := fs.String("kind", "", "report kind: sched, batch or resilience (default: auto-detect)")
	timingThr := fs.Float64("timing-threshold", 0, "gate timing metrics at this relative worsening (0 = informational only)")
	detThr := fs.Float64("det-threshold", 0, "gate deterministic metrics at this relative delta (default 1e-9)")
	reportOut := fs.String("o", "", "write the typed comparison report as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || *candidate == "" {
		fs.Usage()
		return errors.New("-baseline and -candidate are required")
	}

	baseRaw, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	candRaw, err := os.ReadFile(*candidate)
	if err != nil {
		return err
	}

	kind := benchcmp.Kind(*kindFlag)
	if kind == "" {
		kind, err = benchcmp.DetectKind(baseRaw)
		if err != nil {
			return fmt.Errorf("%s: %w (set -kind explicitly)", *baseline, err)
		}
	}

	rep, err := benchcmp.Compare(kind, baseRaw, candRaw, benchcmp.Options{
		DeterministicThreshold: *detThr,
		TimingThreshold:        *timingThr,
	})
	if err != nil {
		return err
	}

	if *reportOut != "" {
		f, err := os.Create(*reportOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close() //nolint:errcheck // the encode error is the one to report
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	printReport(stdout, rep)
	if rep.Failed() {
		return errRegressions
	}
	return nil
}

// printReport writes the human-readable comparison: the summary line,
// coverage changes, then every regressed delta with its values.
func printReport(w io.Writer, rep *benchcmp.Report) {
	fmt.Fprintln(w, rep.Summary())
	for _, key := range rep.MissingCells {
		fmt.Fprintf(w, "  MISSING cell %s (in baseline, not in candidate)\n", key)
	}
	for _, key := range rep.ExtraCells {
		fmt.Fprintf(w, "  extra cell %s (in candidate only; informational)\n", key)
	}
	for _, d := range rep.Deltas {
		if !d.Regressed {
			continue
		}
		if d.Note != "" {
			fmt.Fprintf(w, "  REGRESSED %s %s [%s]: %s\n", d.Key, d.Metric, d.Class, d.Note)
			continue
		}
		fmt.Fprintf(w, "  REGRESSED %s %s [%s]: %g -> %g (%+.2f%%, threshold %.2f%%)\n",
			d.Key, d.Metric, d.Class, d.Base, d.New, 100*d.RelDelta, 100*d.Threshold)
	}
}
