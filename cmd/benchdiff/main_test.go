package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsched/internal/benchcmp"
)

// writeFile drops raw into dir under name and returns the path.
func writeFile(t *testing.T, dir, name string, raw []byte) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// readBaseline loads a committed repo-root benchmark report.
func readBaseline(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCommittedBaselinesSelfCompare: every committed baseline compared
// against itself exits clean, with the kind auto-detected.
func TestCommittedBaselinesSelfCompare(t *testing.T) {
	for _, name := range []string{"BENCH_sched.json", "BENCH_batch.json", "BENCH_resilience.json"} {
		p := filepath.Join("..", "..", name)
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var out bytes.Buffer
		err := run([]string{"-baseline", p, "-candidate", p, "-timing-threshold", "0.01"}, &out, &out)
		if err != nil {
			t.Errorf("%s self-compare: %v\n%s", name, err, out.String())
		}
		if !strings.Contains(out.String(), "PASS") {
			t.Errorf("%s: output lacks PASS: %s", name, out.String())
		}
	}
}

// TestDegradedBaselineFails: synthetically degrading a committed
// baseline's deterministic metrics makes the watchdog exit non-zero.
func TestDegradedBaselineFails(t *testing.T) {
	raw := readBaseline(t, "BENCH_batch.json")
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	cells, ok := doc["cells"].([]any)
	if !ok || len(cells) == 0 {
		t.Fatal("BENCH_batch.json has no cells")
	}
	// Flip the bit-identity flag on the first cell: a deterministic
	// regression no threshold can excuse.
	cells[0].(map[string]any)["identical"] = false
	degraded, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", raw)
	cand := writeFile(t, dir, "cand.json", degraded)
	report := filepath.Join(dir, "report.json")

	var out bytes.Buffer
	err = run([]string{"-baseline", base, "-candidate", cand, "-o", report}, &out, &out)
	if !errors.Is(err, errRegressions) {
		t.Fatalf("degraded candidate: err = %v, want errRegressions\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "identical") {
		t.Errorf("output does not name the regression: %s", out.String())
	}

	// The -o report is written even on failure and is a typed
	// benchcmp.Report naming the regression.
	repRaw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchcmp.Report
	if err := json.Unmarshal(repRaw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || rep.Kind != benchcmp.KindBatch {
		t.Errorf("report = kind %q, %d regressions; want batch with failures", rep.Kind, rep.Regressions)
	}
	var found bool
	for _, d := range rep.Deltas {
		if d.Metric == "identical" && d.Regressed {
			found = true
		}
	}
	if !found {
		t.Error("report deltas do not flag the identical bit")
	}
}

// TestMissingCellFails: a candidate that silently drops a sweep cell
// is a coverage regression.
func TestMissingCellFails(t *testing.T) {
	raw := readBaseline(t, "BENCH_resilience.json")
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	cells := doc["cells"].([]any)
	if len(cells) < 2 {
		t.Skip("resilience baseline has a single cell")
	}
	doc["cells"] = cells[:len(cells)-1]
	shrunk, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", raw)
	cand := writeFile(t, dir, "cand.json", shrunk)
	var out bytes.Buffer
	err = run([]string{"-baseline", base, "-candidate", cand}, &out, &out)
	if !errors.Is(err, errRegressions) {
		t.Fatalf("shrunk candidate: err = %v, want errRegressions\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "MISSING cell") {
		t.Errorf("output does not report the missing cell: %s", out.String())
	}
}

// TestExplicitKindAndErrors covers flag validation and I/O failures
// (exit status 2 paths).
func TestExplicitKindAndErrors(t *testing.T) {
	dir := t.TempDir()
	raw := readBaseline(t, "BENCH_batch.json")
	base := writeFile(t, dir, "base.json", raw)
	var out bytes.Buffer

	// Explicit -kind bypasses detection.
	if err := run([]string{"-baseline", base, "-candidate", base, "-kind", "batch"}, &out, &out); err != nil {
		t.Errorf("-kind batch self-compare: %v", err)
	}
	// Wrong explicit kind is a hard error (schema mismatch), not a pass.
	if err := run([]string{"-baseline", base, "-candidate", base, "-kind", "sched"}, &out, &out); err == nil || errors.Is(err, errRegressions) {
		t.Errorf("-kind sched on a batch report: err = %v, want a usage error", err)
	}
	// Unknown kind.
	if err := run([]string{"-baseline", base, "-candidate", base, "-kind", "nope"}, &out, &out); err == nil {
		t.Error("unknown -kind accepted")
	}
	// Missing required flags.
	if err := run([]string{"-baseline", base}, &out, &out); err == nil {
		t.Error("missing -candidate accepted")
	}
	// Unreadable inputs.
	if err := run([]string{"-baseline", filepath.Join(dir, "absent.json"), "-candidate", base}, &out, &out); err == nil {
		t.Error("absent baseline accepted")
	}
	if err := run([]string{"-baseline", base, "-candidate", filepath.Join(dir, "absent.json")}, &out, &out); err == nil {
		t.Error("absent candidate accepted")
	}
	// Undetectable kind without -kind.
	junk := writeFile(t, dir, "junk.json", []byte(`{"rows":[]}`))
	if err := run([]string{"-baseline", junk, "-candidate", junk}, &out, &out); err == nil {
		t.Error("undetectable kind accepted")
	}
}
