// Command schedbench is the scheduler performance harness: it sweeps
// task count x mesh size x algorithm over TGFF-style graphs and, for
// each configuration, times three probe paths against each other —
//
//   - legacy:       the journal-based reserve/rollback probe path,
//   - readonly-seq: the read-only overlay path, one worker,
//   - readonly-par: the read-only overlay path, GOMAXPROCS workers,
//
// verifying that all three produce bit-identical schedules, and writes
// a machine-readable JSON report (see BENCH_sched.json at the repo
// root for a committed baseline).
//
// Usage:
//
//	schedbench [-tasks 100,250,500] [-meshes 4x4] [-scheds eas,edf]
//	           [-laxity 1.3] [-reps 3] [-seed 1] [-o BENCH_sched.json]
//	           [-cpuprofile f] [-memprofile f] [-trace f]
//	           [-metrics] [-metrics-out f] [-trace-out f]
//
// Timing is best-of -reps per path. Allocation counts come from
// runtime.MemStats deltas around a whole scheduling run, normalized by
// the number of F(i,k) probes.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/diag"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/tgff"
)

// Report is the top-level JSON document.
type Report struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	Seed       int64    `json:"seed"`
	Laxity     float64  `json:"laxity"`
	Reps       int      `json:"reps"`
	Configs    []Config `json:"configs"`
}

// Config is one cell of the sweep.
type Config struct {
	Mesh      string `json:"mesh"`
	Tasks     int    `json:"tasks"`
	Edges     int    `json:"edges"`
	Algorithm string `json:"algorithm"`
	Workers   int    `json:"workers"`

	LegacyProbeMS  float64 `json:"legacy_probe_ms"`
	ReadonlySeqMS  float64 `json:"readonly_seq_ms"`
	ReadonlyParMS  float64 `json:"readonly_par_ms"`
	SpeedupSeq     float64 `json:"speedup_seq"`
	SpeedupPar     float64 `json:"speedup_par"`
	Probes         int64   `json:"probes"`
	ProbesPerSec   float64 `json:"probes_per_sec"`
	AllocsPerProbe struct {
		Legacy   float64 `json:"legacy"`
		Readonly float64 `json:"readonly"`
	} `json:"allocs_per_probe"`
	EnergyNJ       float64 `json:"energy_nj"`
	DeadlineMisses int     `json:"deadline_misses"`
	Identical      bool    `json:"identical"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "schedbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("schedbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tasksSpec = fs.String("tasks", "100,250,500", "comma-separated task counts")
		meshSpec  = fs.String("meshes", "4x4", "comma-separated mesh sizes, WIDTHxHEIGHT")
		schedSpec = fs.String("scheds", "eas,edf", "comma-separated schedulers: eas, edf")
		laxity    = fs.Float64("laxity", 1.3, "deadline laxity of the generated graphs")
		reps      = fs.Int("reps", 3, "repetitions per path; best time wins")
		seed      = fs.Int64("seed", 1, "base RNG seed for graph generation")
		out       = fs.String("o", "", "write the JSON report to this file (default stdout)")
	)
	dflags := diag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// The diagnostics session is live: flip /readyz for -serve probes.
	sess.MarkReady()

	taskCounts, err := parseInts(*tasksSpec)
	if err != nil {
		return fmt.Errorf("bad -tasks: %w", err)
	}
	meshes := strings.Split(*meshSpec, ",")
	scheds := strings.Split(*schedSpec, ",")
	for _, s := range scheds {
		if s != "eas" && s != "edf" {
			return fmt.Errorf("bad -scheds entry %q (want eas or edf)", s)
		}
	}
	if *reps < 1 {
		return errors.New("-reps must be >= 1")
	}

	report := Report{GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: *seed, Laxity: *laxity, Reps: *reps}
	for _, mesh := range meshes {
		var w, h int
		if _, err := fmt.Sscanf(mesh, "%dx%d", &w, &h); err != nil {
			return fmt.Errorf("bad mesh %q (want WIDTHxHEIGHT): %w", mesh, err)
		}
		platform, err := noc.NewHeterogeneousMesh(w, h, noc.RouteXY, 256)
		if err != nil {
			return err
		}
		acg, err := energy.BuildACG(platform, energy.DefaultModel())
		if err != nil {
			return err
		}
		for _, ntasks := range taskCounts {
			g, err := benchGraph(platform, ntasks, *laxity, *seed)
			if err != nil {
				return err
			}
			for _, algo := range scheds {
				fmt.Fprintf(stderr, "schedbench: %s %d tasks %s...\n", mesh, ntasks, algo)
				cfg, err := benchConfig(g, acg, mesh, algo, *reps, sess)
				if err != nil {
					return err
				}
				report.Configs = append(report.Configs, cfg)
			}
		}
	}

	var sink io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	// The metrics report goes to stderr so stdout stays valid JSON.
	return sess.WriteReport(stderr)
}

// benchGraph generates the sweep's graph for one task count: the
// paper's Category-I shape (SuiteParams index 0) scaled to ntasks with
// the requested laxity.
func benchGraph(platform *noc.Platform, ntasks int, laxity float64, seed int64) (*ctg.Graph, error) {
	p := tgff.SuiteParams(tgff.CategoryI, 0, platform)
	p.Name = fmt.Sprintf("schedbench-%d", ntasks)
	p.Seed = seed
	p.NumTasks = ntasks
	p.DeadlineLaxity = laxity
	return tgff.Generate(p)
}

// runOnce executes one scheduling run and returns the schedule plus the
// wall time and Mallocs delta of the run.
func runOnce(g *ctg.Graph, acg *energy.ACG, algo string, opts eas.Options) (*sched.Schedule, time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	started := time.Now()
	var s *sched.Schedule
	var err error
	if algo == "edf" {
		s, err = edf.ScheduleOpts(g, acg, edf.Options{Workers: opts.Workers, LegacyProbe: opts.LegacyProbe, Telemetry: opts.Telemetry})
	} else {
		var r *eas.Result
		r, err = eas.Schedule(g, acg, opts)
		if r != nil {
			s = r.Schedule
		}
	}
	elapsed := time.Since(started)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, 0, err
	}
	return s, elapsed, after.Mallocs - before.Mallocs, nil
}

// benchConfig measures one sweep cell: best-of-reps wall time for the
// three probe paths, the schedule diff across them, and the derived
// throughput metrics. Telemetry from the session (if enabled) is
// attached to the timed runs on purpose — the harness then measures
// what users with -metrics pay, and the zero-alloc guarantee holds in
// both states.
func benchConfig(g *ctg.Graph, acg *energy.ACG, mesh, algo string, reps int, sess *diag.Session) (Config, error) {
	cfg := Config{
		Mesh:      mesh,
		Tasks:     g.NumTasks(),
		Edges:     g.NumEdges(),
		Algorithm: algo,
		Workers:   runtime.GOMAXPROCS(0),
	}
	type path struct {
		opts   eas.Options
		bestMS *float64
		allocs *float64
	}
	var legacyAllocs, roAllocs float64
	telem := sess.Collector()
	paths := []path{
		{eas.Options{LegacyProbe: true, Telemetry: telem}, &cfg.LegacyProbeMS, &legacyAllocs},
		{eas.Options{Workers: 1, Telemetry: telem}, &cfg.ReadonlySeqMS, &roAllocs},
		{eas.Options{Workers: 0, Telemetry: telem}, &cfg.ReadonlyParMS, nil},
	}
	var ref *sched.Schedule
	cfg.Identical = true
	for pi, p := range paths {
		best := time.Duration(0)
		var allocs uint64
		var s *sched.Schedule
		for r := 0; r < reps; r++ {
			got, elapsed, mallocs, err := runOnce(g, acg, algo, p.opts)
			if err != nil {
				return cfg, err
			}
			if r == 0 || elapsed < best {
				best, allocs, s = elapsed, mallocs, got
			}
		}
		*p.bestMS = float64(best.Microseconds()) / 1000
		if p.allocs != nil && s.Probes > 0 {
			*p.allocs = float64(allocs) / float64(s.Probes)
		}
		if pi == 0 {
			ref = s
			cfg.Probes = s.Probes
			cfg.EnergyNJ = s.TotalEnergy()
			cfg.DeadlineMisses = len(s.DeadlineMisses())
		} else if d := sched.Diff(ref, s); d != "" {
			cfg.Identical = false
			return cfg, fmt.Errorf("%s %s %d tasks: probe paths disagree: %s", mesh, algo, g.NumTasks(), d)
		}
		if pi == 2 && best > 0 {
			cfg.ProbesPerSec = float64(s.Probes) / best.Seconds()
		}
	}
	cfg.AllocsPerProbe.Legacy = legacyAllocs
	cfg.AllocsPerProbe.Readonly = roAllocs
	if cfg.ReadonlySeqMS > 0 {
		cfg.SpeedupSeq = cfg.LegacyProbeMS / cfg.ReadonlySeqMS
	}
	if cfg.ReadonlyParMS > 0 {
		cfg.SpeedupPar = cfg.LegacyProbeMS / cfg.ReadonlyParMS
	}
	return cfg, nil
}

func parseInts(spec string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("task count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}
