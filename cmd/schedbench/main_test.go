package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestSweepSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stderr bytes.Buffer
	err := run([]string{
		"-tasks", "30,40", "-meshes", "3x3", "-scheds", "eas,edf",
		"-reps", "1", "-o", out,
	}, io.Discard, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	var rep Report
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 4 {
		t.Fatalf("got %d configs, want 4", len(rep.Configs))
	}
	for _, c := range rep.Configs {
		if !c.Identical {
			t.Errorf("%s %s %d tasks: schedules not identical", c.Mesh, c.Algorithm, c.Tasks)
		}
		if c.Probes <= 0 {
			t.Errorf("%s %s %d tasks: no probes recorded", c.Mesh, c.Algorithm, c.Tasks)
		}
		if c.LegacyProbeMS <= 0 || c.ReadonlyParMS <= 0 {
			t.Errorf("%s %s %d tasks: missing timings: %+v", c.Mesh, c.Algorithm, c.Tasks, c)
		}
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-tasks", "abc"},
		{"-meshes", "4by4"},
		{"-scheds", "dls"},
		{"-reps", "0"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
