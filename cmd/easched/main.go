// Command easched schedules a Communication Task Graph (JSON, see
// cmd/tgffgen or Graph.WriteJSON) onto a heterogeneous mesh NoC using
// the EAS, EAS-base or EDF scheduler, and reports energy, deadline and
// timing results.
//
// Usage:
//
//	easched -graph app.json [-mesh 4x4] [-routing xy] [-bandwidth 256]
//	        [-sched eas] [-gantt] [-verify] [-util]
//	        [-faults scenario.json]
//	        [-json-out sched.json] [-dot-out graph.dot]
//	        [-metrics] [-metrics-out metrics.json] [-trace-out trace.json]
//
// -metrics appends a telemetry report (probe counts, ready-list depth,
// energy breakdown, link occupancy) to the output; -metrics-out writes
// the same data as JSON. -trace-out writes a Chrome trace_event file —
// scheduler phase spans plus the committed schedule as one track per PE
// and per link — loadable in Perfetto (see README, "Observability").
//
// With -faults, the fault scenario (see internal/fault) is applied after
// the fault-free schedule is built: the schedule is recovered onto the
// degraded platform and the recovery is reported (and replayed, with the
// faults injected, under -verify).
//
// The exit status is 0 when all deadlines are met, 1 otherwise.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"nocsched/internal/ctg"
	"nocsched/internal/diag"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/fault"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/sim"
)

// errDeadlineMiss marks a successful run whose schedule misses
// deadlines (exit status 1, not an error message).
var errDeadlineMiss = errors.New("schedule misses deadlines")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errDeadlineMiss):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "easched:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("easched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphPath = fs.String("graph", "", "path to the CTG JSON file (required)")
		platSpec  = fs.String("platform", "", "platform spec JSON file (overrides -mesh/-routing/-bandwidth)")
		meshSpec  = fs.String("mesh", "4x4", "mesh dimensions, WIDTHxHEIGHT")
		routing   = fs.String("routing", "xy", "routing scheme: xy or yx")
		bandwidth = fs.Int64("bandwidth", 256, "link bandwidth in bits per time unit")
		scheduler = fs.String("sched", "eas", "scheduler: eas, eas-base or edf")
		gantt     = fs.Bool("gantt", false, "print a per-PE Gantt chart")
		verify    = fs.Bool("verify", false, "replay the schedule on the flit-level wormhole simulator")
		util      = fs.Bool("util", false, "print per-PE and per-link utilization")
		jsonOut   = fs.String("json-out", "", "write the schedule placements as JSON to this file")
		dotOut    = fs.String("dot-out", "", "write the task graph in Graphviz DOT format to this file")
		svgOut    = fs.String("svg-out", "", "write the schedule as an SVG Gantt chart to this file")
		buffers   = fs.Bool("buffers", false, "print per-PE message buffer requirements")
		faultsIn  = fs.String("faults", "", "fault scenario JSON file: recover the schedule onto the degraded platform")
		workers   = fs.Int("workers", 0, "probe worker pool size (0 = GOMAXPROCS); any value gives bit-identical schedules")
	)
	dflags := diag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// The diagnostics session is live: flip /readyz for -serve probes.
	sess.MarkReady()
	telem := sess.Collector()
	if *graphPath == "" {
		fs.Usage()
		return errors.New("missing -graph")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := ctg.ReadJSON(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *graphPath, err)
	}

	var platform *noc.Platform
	if *platSpec != "" {
		pf, err := os.Open(*platSpec)
		if err != nil {
			return err
		}
		platform, err = noc.ReadPlatformSpec(pf)
		pf.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", *platSpec, err)
		}
	} else {
		var w, h int
		if _, err := fmt.Sscanf(*meshSpec, "%dx%d", &w, &h); err != nil {
			return fmt.Errorf("bad -mesh %q (want WIDTHxHEIGHT): %w", *meshSpec, err)
		}
		scheme := noc.RouteXY
		switch *routing {
		case "xy":
		case "yx":
			scheme = noc.RouteYX
		default:
			return fmt.Errorf("bad -routing %q (want xy or yx)", *routing)
		}
		platform, err = noc.NewHeterogeneousMesh(w, h, scheme, *bandwidth)
		if err != nil {
			return err
		}
	}
	if g.NumPEs() != platform.NumPEs() {
		return fmt.Errorf("graph %q is characterized for %d PEs but the %s platform has %d",
			g.Name, g.NumPEs(), platform.Topo.Name(), platform.NumPEs())
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		return err
	}

	var s *sched.Schedule
	switch *scheduler {
	case "eas":
		r, err := eas.Schedule(g, acg, eas.Options{Workers: *workers, Telemetry: telem})
		if err != nil {
			return err
		}
		s = r.Schedule
		if r.RepairStats.Ran {
			fmt.Fprintf(stdout, "search-and-repair: %d misses -> %d (swaps %d, migrations %d, %d moves tried)\n",
				r.RepairStats.InitialMisses, r.RepairStats.FinalMisses,
				r.RepairStats.SwapsAccepted, r.RepairStats.MigrationsAccepted, r.RepairStats.MovesTried)
		}
	case "eas-base":
		r, err := eas.Schedule(g, acg, eas.Options{DisableRepair: true, Workers: *workers, Telemetry: telem})
		if err != nil {
			return err
		}
		s = r.Schedule
	case "edf":
		s, err = edf.ScheduleOpts(g, acg, edf.Options{Workers: *workers, Telemetry: telem})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("bad -sched %q (want eas, eas-base or edf)", *scheduler)
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("scheduler produced an invalid schedule: %w", err)
	}

	var simFaults []sim.Fault
	if *faultsIn != "" {
		ff, err := os.Open(*faultsIn)
		if err != nil {
			return err
		}
		sc, err := fault.ReadScenario(ff)
		ff.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", *faultsIn, err)
		}
		rec, err := fault.Recover(s, sc, fault.Options{EAS: eas.Options{Telemetry: telem}})
		if err != nil {
			return fmt.Errorf("fault recovery: %w", err)
		}
		st := rec.Stats
		fmt.Fprintf(stdout, "faults:        %s (%d faults): %d tasks stranded, %d transactions severed\n",
			scenarioName(sc), sc.NumFaults(), st.StrandedTasks, st.SeveredTransactions)
		fmt.Fprintf(stdout, "recovery:      %d tasks migrated, misses %d -> %d, energy overhead %+.1f%%%s\n",
			st.TasksMigrated, st.MissesBefore, st.MissesAfter, 100*st.EnergyOverhead(),
			map[bool]string{true: " (full reschedule)", false: ""}[st.FullReschedule])
		s = rec.Schedule
		simFaults = sc.SimFaults()
	}

	b := s.Breakdown()
	fmt.Fprintf(stdout, "graph:         %s (%d tasks, %d transactions)\n", g.Name, g.NumTasks(), g.NumEdges())
	fmt.Fprintf(stdout, "platform:      %s, bandwidth %d bit/tu\n", platform.Topo.Name(), platform.LinkBandwidth)
	fmt.Fprintf(stdout, "scheduler:     %s (%.1f ms)\n", s.Algorithm, float64(s.Elapsed.Microseconds())/1000)
	fmt.Fprintf(stdout, "energy:        %.1f nJ total = %.1f computation + %.1f communication\n",
		b.Total, b.Computation, b.Communication)
	fmt.Fprintf(stdout, "makespan:      %d time units\n", b.Makespan)
	fmt.Fprintf(stdout, "avg hops/pkt:  %.2f\n", b.AvgHops)
	fmt.Fprintf(stdout, "deadline miss: %d\n", b.Misses)
	if *gantt {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, s.Gantt())
	}
	if *util {
		fmt.Fprintln(stdout)
		s.RenderUtilization(stdout, 10)
	}
	if *verify {
		res, err := sim.Replay(s, sim.Options{Faults: simFaults, Telemetry: telem})
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		late := res.LateDeliveries(s)
		fmt.Fprintf(stdout, "replay:        %d packets, %d stall cycles, %d late deliveries, %d lost to faults, measured comm energy %.1f nJ\n",
			len(res.Packets), res.TotalStalls, len(late), res.Failures, res.MeasuredCommEnergy)
		if res.TraceErr != nil {
			return fmt.Errorf("replay trace: %w", res.TraceErr)
		}
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, s.WriteJSON); err != nil {
			return err
		}
	}
	if *dotOut != "" {
		if err := writeTo(*dotOut, g.WriteDOT); err != nil {
			return err
		}
	}
	if *svgOut != "" {
		if err := writeTo(*svgOut, s.WriteSVG); err != nil {
			return err
		}
	}
	if *buffers {
		fmt.Fprintln(stdout)
		s.RenderBufferRequirements(stdout)
	}
	// Telemetry artifacts cover the final schedule (post fault
	// recovery) and are written even when deadlines are missed.
	s.EmitChromeTrace(sess.ChromeSink())
	if dflags.Metrics {
		fmt.Fprintln(stdout)
		if rerr := sess.WriteReport(stdout); rerr != nil {
			return rerr
		}
	}
	if b.Misses > 0 {
		return errDeadlineMiss
	}
	return nil
}

// scenarioName labels a scenario for output, defaulting unnamed ones.
func scenarioName(sc *fault.Scenario) string {
	if sc.Name == "" {
		return "unnamed"
	}
	return sc.Name
}

// writeTo creates path and streams write into it, closing cleanly.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
