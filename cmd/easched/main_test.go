package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
	"nocsched/internal/tgff"
)

// writeTestGraph generates a small benchmark characterized for a 2x2
// platform and writes it to dir.
func writeTestGraph(t *testing.T, dir string, laxity float64) string {
	t.Helper()
	platform, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	g, err := tgff.Generate(tgff.Params{
		Name: "clitest", Seed: 9, NumTasks: 30, MaxInDegree: 2,
		LocalityWindow: 8, TaskTypes: 5, ExecMin: 20, ExecMax: 150,
		HeteroSpread: 0.4, VolumeMin: 256, VolumeMax: 4096,
		ControlEdgeFraction: 0.1, DeadlineLaxity: laxity, DeadlineFraction: 1,
		Platform: platform,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "graph.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSchedulers(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 1.6)
	for _, sched := range []string{"eas", "eas-base", "edf"} {
		var out, errb bytes.Buffer
		err := run([]string{"-graph", graph, "-mesh", "2x2", "-sched", sched, "-gantt", "-verify", "-util"},
			&out, &errb)
		if err != nil {
			t.Fatalf("%s: %v\nstderr: %s", sched, err, errb.String())
		}
		for _, want := range []string{"graph:", "energy:", "replay:", "utilization", "clitest"} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("%s: output missing %q", sched, want)
			}
		}
	}
}

func TestRunExports(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 1.6)
	jsonOut := filepath.Join(dir, "sched.json")
	dotOut := filepath.Join(dir, "graph.dot")
	var out, errb bytes.Buffer
	if err := run([]string{"-graph", graph, "-mesh", "2x2",
		"-json-out", jsonOut, "-dot-out", dotOut}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	sj, err := os.ReadFile(jsonOut)
	if err != nil || !strings.Contains(string(sj), "\"algorithm\"") {
		t.Errorf("schedule JSON not written: %v", err)
	}
	dot, err := os.ReadFile(dotOut)
	if err != nil || !strings.Contains(string(dot), "digraph") {
		t.Errorf("DOT not written: %v", err)
	}
}

func TestRunSVGAndBuffers(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 1.6)
	svgOut := filepath.Join(dir, "sched.svg")
	var out, errb bytes.Buffer
	if err := run([]string{"-graph", graph, "-mesh", "2x2",
		"-svg-out", svgOut, "-buffers"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(svgOut)
	if err != nil || !strings.Contains(string(svg), "<svg") {
		t.Errorf("SVG not written: %v", err)
	}
	if !strings.Contains(out.String(), "buffer requirements") {
		t.Error("buffer report missing")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 1.6)
	cases := map[string][]string{
		"missing graph": {},
		"bad file":      {"-graph", filepath.Join(dir, "nope.json")},
		"bad mesh":      {"-graph", graph, "-mesh", "abc"},
		"bad routing":   {"-graph", graph, "-routing", "zigzag"},
		"bad sched":     {"-graph", graph, "-mesh", "2x2", "-sched", "magic"},
		"pe mismatch":   {"-graph", graph, "-mesh", "4x4"},
		"bad flag":      {"-nonsense"},
	}
	for name, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunDeadlineMissExit(t *testing.T) {
	dir := t.TempDir()
	// Hopeless deadlines: laxity far below anything achievable.
	graph := writeTestGraph(t, dir, 0.05)
	var out, errb bytes.Buffer
	err := run([]string{"-graph", graph, "-mesh", "2x2", "-sched", "edf"}, &out, &errb)
	if !errors.Is(err, errDeadlineMiss) {
		t.Fatalf("err = %v, want errDeadlineMiss", err)
	}
}

// TestJSONRoundTripThroughCLI ensures the graph format the CLI reads is
// the same one the library writes.
func TestJSONRoundTripThroughCLI(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 1.6)
	f, err := os.Open(graph)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ctg.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 30 {
		t.Errorf("tasks = %d", g.NumTasks())
	}
}

func TestRunWithFaults(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 3.0)
	scen := filepath.Join(dir, "faults.json")
	// Kill PE 3 on the 2x2 mesh; the router keeps forwarding so the
	// scenario is always recoverable topologically.
	if err := os.WriteFile(scen, []byte(`{"name":"pe3-down","pes":[3]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	err := run([]string{"-graph", graph, "-mesh", "2x2",
		"-faults", scen, "-verify"}, &out, &errb)
	if err != nil && !errors.Is(err, errDeadlineMiss) {
		t.Fatalf("%v\n%s", err, errb.String())
	}
	for _, want := range []string{"faults:", "pe3-down", "recovery:", "replay:", "lost to faults"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "1 lost to faults") {
		t.Errorf("recovered schedule lost packets:\n%s", out.String())
	}

	// A disconnecting scenario must produce a typed CLI error, not a
	// panic or a bogus schedule.
	island := filepath.Join(dir, "island.json")
	// Routers 1 and 2 isolate corner tile 0 on the 2x2 mesh.
	os.WriteFile(island, []byte(`{"routers":[1,2]}`), 0o644)
	if err := run([]string{"-graph", graph, "-mesh", "2x2", "-faults", island}, &out, &errb); err == nil {
		t.Error("disconnecting scenario accepted")
	}
	// Broken scenario file.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"pes":"zero"}`), 0o644)
	if err := run([]string{"-graph", graph, "-mesh", "2x2", "-faults", bad}, &out, &errb); err == nil {
		t.Error("malformed scenario accepted")
	}
	if err := run([]string{"-graph", graph, "-mesh", "2x2", "-faults", filepath.Join(dir, "nope.json")}, &out, &errb); err == nil {
		t.Error("missing scenario file accepted")
	}
}

func TestRunWithPlatformSpec(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 1.6)
	spec := filepath.Join(dir, "platform.json")
	if err := os.WriteFile(spec, []byte(
		`{"topology":"mesh","width":2,"height":2,"routing":"yx","bandwidth":256}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-graph", graph, "-platform", spec}, &out, &errb); err != nil {
		t.Fatalf("%v\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "mesh2x2-yx") {
		t.Errorf("platform spec not used:\n%s", out.String())
	}
	// A spec whose tile count mismatches the graph must be rejected.
	big := filepath.Join(dir, "big.json")
	os.WriteFile(big, []byte(`{"topology":"mesh","width":4,"height":4,"bandwidth":256}`), 0o644)
	if err := run([]string{"-graph", graph, "-platform", big}, &out, &errb); err == nil {
		t.Error("PE-count mismatch accepted")
	}
	// Broken spec file.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"topology":"hypercube"}`), 0o644)
	if err := run([]string{"-graph", graph, "-platform", bad}, &out, &errb); err == nil {
		t.Error("bad spec accepted")
	}
}

// TestRunTelemetryFlags drives -metrics/-metrics-out/-trace-out end to
// end: the run report lands in stdout, and both artifacts validate
// against their schemas.
func TestRunTelemetryFlags(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 1.6)
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-graph", graph, "-mesh", "2x2", "-verify",
		"-metrics", "-metrics-out", metricsPath, "-trace-out", tracePath},
		&out, &errb); err != nil {
		t.Fatalf("%v\n%s", err, errb.String())
	}
	for _, want := range []string{"run metrics", "sched_probes_total", "energy_total_nj"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	n, err := telemetry.ValidateChromeTrace(tf)
	if err != nil {
		t.Fatalf("trace artifact invalid: %v", err)
	}
	if n == 0 {
		t.Error("trace artifact has no events")
	}
	mf, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	snap, err := telemetry.ValidateSnapshot(mf)
	if err != nil {
		t.Fatalf("metrics artifact invalid: %v", err)
	}
	probes := int64(-1)
	for _, c := range snap.Counters {
		if c.Name == sched.MetricProbes {
			probes = c.Value
		}
	}
	if probes <= 0 {
		t.Errorf("%s = %d in artifact, want > 0", sched.MetricProbes, probes)
	}
}

// TestRunTelemetryOffByDefault checks that without -metrics the run
// report never appears (telemetry is strictly opt-in).
func TestRunTelemetryOffByDefault(t *testing.T) {
	dir := t.TempDir()
	graph := writeTestGraph(t, dir, 1.6)
	var out, errb bytes.Buffer
	if err := run([]string{"-graph", graph, "-mesh", "2x2"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "run metrics") {
		t.Errorf("unrequested metrics report:\n%s", out.String())
	}
}
