// Command tgffgen generates pseudo-TGFF random Communication Task
// Graphs as JSON, either one-off with explicit knobs or as a member of
// the paper's category I / II benchmark suites.
//
// Usage:
//
//	tgffgen [-o graph.json] [-category I|II -index 0] |
//	        [-tasks 500 -seed 7 -laxity 1.3 -shape layered ...]
//
// The per-PE tables are characterized for a heterogeneous mesh platform
// (-mesh, default 4x4).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nocsched/internal/diag"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tgffgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("tgffgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "", "output file (default stdout)")
		meshSpec = fs.String("mesh", "4x4", "mesh dimensions the graph is characterized for")
		category = fs.String("category", "", "generate a paper suite benchmark: I or II")
		index    = fs.Int("index", 0, "suite benchmark index (0-9)")

		seed    = fs.Int64("seed", 1, "RNG seed")
		tasks   = fs.Int("tasks", 500, "number of tasks")
		indeg   = fs.Int("indeg", 3, "max in-degree")
		window  = fs.Int("window", 32, "predecessor locality window (0 = unbounded)")
		types   = fs.Int("types", 20, "number of task types")
		execMin = fs.Int64("exec-min", 40, "min reference execution time")
		execMax = fs.Int64("exec-max", 400, "max reference execution time")
		volMin  = fs.Int64("vol-min", 512, "min edge volume (bits)")
		volMax  = fs.Int64("vol-max", 16384, "max edge volume (bits)")
		laxity  = fs.Float64("laxity", 1.3, "deadline laxity over the longest mean path")
		spread  = fs.Float64("spread", 0.5, "per-type heterogeneity spread")
		shape   = fs.String("shape", "layered", "graph shape: layered or sp (series-parallel)")
	)
	dflags := diag.RegisterProfiling(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var w, h int
	if _, err := fmt.Sscanf(*meshSpec, "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q: %w", *meshSpec, err)
	}
	platform, err := noc.NewHeterogeneousMesh(w, h, noc.RouteXY, 256)
	if err != nil {
		return err
	}

	graphShape := tgff.ShapeLayered
	switch *shape {
	case "layered":
	case "sp":
		graphShape = tgff.ShapeSeriesParallel
	default:
		return fmt.Errorf("bad -shape %q (want layered or sp)", *shape)
	}

	var params tgff.Params
	switch *category {
	case "":
		params = tgff.Params{
			Name:                fmt.Sprintf("tgff-seed%d", *seed),
			Seed:                *seed,
			Shape:               graphShape,
			NumTasks:            *tasks,
			MaxInDegree:         *indeg,
			LocalityWindow:      *window,
			TaskTypes:           *types,
			ExecMin:             *execMin,
			ExecMax:             *execMax,
			HeteroSpread:        *spread,
			VolumeMin:           *volMin,
			VolumeMax:           *volMax,
			ControlEdgeFraction: 0.1,
			DeadlineLaxity:      *laxity,
			DeadlineFraction:    1.0,
			Platform:            platform,
		}
	case "I":
		params = tgff.SuiteParams(tgff.CategoryI, *index, platform)
	case "II":
		params = tgff.SuiteParams(tgff.CategoryII, *index, platform)
	default:
		return fmt.Errorf("bad -category %q (want I or II)", *category)
	}

	g, err := tgff.Generate(params)
	if err != nil {
		return err
	}
	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := g.WriteJSON(dst); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "tgffgen: %s: %d tasks, %d transactions, %d deadline tasks\n",
		g.Name, g.NumTasks(), g.NumEdges(), len(g.DeadlineTasks()))
	return nil
}
