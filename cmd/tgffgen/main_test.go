package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsched/internal/ctg"
)

func TestRunDefault(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-tasks", "40", "-seed", "5"}, &out, &errb); err != nil {
		t.Fatalf("%v\n%s", err, errb.String())
	}
	g, err := ctg.ReadJSON(&out)
	if err != nil {
		t.Fatalf("output is not a valid CTG: %v", err)
	}
	if g.NumTasks() != 40 {
		t.Errorf("tasks = %d", g.NumTasks())
	}
	if !strings.Contains(errb.String(), "40 tasks") {
		t.Errorf("summary missing: %s", errb.String())
	}
}

func TestRunSuiteBenchmark(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-category", "II", "-index", "4"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	g, err := ctg.ReadJSON(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "tgff-catII-04" {
		t.Errorf("graph name %q", g.Name)
	}
}

func TestRunSPToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sp.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-tasks", "50", "-shape", "sp", "-o", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ctg.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Error("SP graph shape wrong")
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"bad mesh":     {"-mesh", "x"},
		"bad shape":    {"-shape", "spiral"},
		"bad category": {"-category", "III"},
		"bad tasks":    {"-tasks", "0"},
		"bad flag":     {"-bogus"},
	}
	for name, args := range cases {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
