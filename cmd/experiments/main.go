// Command experiments regenerates the tables and figures of the paper's
// evaluation (Sec. 6) plus this repository's ablation studies.
//
// Usage:
//
//	experiments [-run name[,name...]] [-quick]
//	            [-cpuprofile f] [-memprofile f] [-trace f]
//
// The profiler flags are the shared diagnostics set (internal/diag).
// The per-run telemetry flags (-metrics, -trace-out) live on easched,
// schedbench and faultbench, whose scheduler options are reachable from
// the command line; the experiment suites fix their options internally.
//
// where name is one of: fig5, fig6, table1, table2, table3, fig7, hops,
// repair, weights, contention, routing, honeycomb, scaling, laxity, all
// (default all). -quick trims suite sizes and sweep resolution for a
// fast smoke run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nocsched/internal/ctg"
	"nocsched/internal/diag"
	"nocsched/internal/experiments"
	"nocsched/internal/msb"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runSel := fs.String("run", "all", "experiments to run (comma separated): fig5 fig6 table1 table2 table3 fig7 hops repair weights contention routing honeycomb scaling laxity baselines pipeline mapping all")
	quick := fs.Bool("quick", false, "reduced suite sizes for a fast smoke run")
	csvDir := fs.String("csv", "", "also write each experiment's data as CSV into this directory")
	dflags := diag.RegisterProfiling(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	count := 0 // full suites
	if *quick {
		count = 3
	}
	selected := strings.Split(*runSel, ",")
	known := map[string]bool{
		"all": true, "fig5": true, "fig6": true, "table1": true, "table2": true,
		"table3": true, "fig7": true, "hops": true, "repair": true, "weights": true,
		"contention": true, "routing": true, "honeycomb": true, "scaling": true,
		"laxity": true, "baselines": true, "pipeline": true, "mapping": true,
	}
	for _, s := range selected {
		if !known[s] {
			return fmt.Errorf("unknown experiment %q", s)
		}
	}

	// csvOut opens <csvDir>/<name>.csv when -csv is set and hands it to
	// write; a missing -csv makes it a no-op.
	csvOut := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	want := func(name string) bool {
		for _, s := range selected {
			if s == "all" || s == name {
				return true
			}
		}
		return false
	}

	if want("fig5") {
		res, err := experiments.RunRandomSuite(tgff.CategoryI, count)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "== Fig. 5 ==")
		res.Render(stdout)
		fmt.Fprintln(stdout)
		if err := csvOut("fig5", res.WriteCSV); err != nil {
			return err
		}
	}
	if want("fig6") {
		res, err := experiments.RunRandomSuite(tgff.CategoryII, count)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "== Fig. 6 ==")
		res.Render(stdout)
		fmt.Fprintln(stdout)
		if err := csvOut("fig6", res.WriteCSV); err != nil {
			return err
		}
	}
	for _, tbl := range []struct {
		name   string
		system experiments.MSBSystem
		label  string
	}{
		{"table1", experiments.MSBEncoder, "Table 1"},
		{"table2", experiments.MSBDecoder, "Table 2"},
		{"table3", experiments.MSBIntegrated, "Table 3"},
	} {
		if !want(tbl.name) {
			continue
		}
		res, err := experiments.RunMSB(tbl.system)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== %s ==\n", tbl.label)
		res.Render(stdout)
		fmt.Fprintln(stdout)
		if err := csvOut(tbl.name, res.WriteCSV); err != nil {
			return err
		}
	}
	if want("fig7") {
		var ratios []float64
		if *quick {
			ratios = []float64{1.0, 1.4, 1.8}
		}
		points, err := experiments.RunTradeoff(ratios)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "== Fig. 7 ==")
		experiments.RenderTradeoff(stdout, points)
		fmt.Fprintln(stdout)
		if err := csvOut("fig7", func(w io.Writer) error {
			return experiments.TradeoffCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if want("hops") {
		d, err := experiments.RunDecomposition("foreman")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "== E7: energy decomposition and average hops ==")
		d.Render(stdout)
		fmt.Fprintln(stdout)
	}
	if want("repair") {
		for _, cat := range []tgff.Category{tgff.CategoryI, tgff.CategoryII} {
			study, err := experiments.RunRepairStudy(cat, count)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, "== E8: search-and-repair ==")
			study.Render(stdout)
			fmt.Fprintln(stdout)
		}
	}
	small := count
	if small == 0 {
		small = 5
	}
	if want("weights") {
		rows, err := experiments.RunWeightAblation(small)
		if err != nil {
			return err
		}
		experiments.RenderWeightAblation(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if want("contention") {
		rows, err := experiments.RunContentionAblation(small)
		if err != nil {
			return err
		}
		experiments.RenderContentionAblation(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if want("routing") {
		rows, err := experiments.RunRoutingAblation(small)
		if err != nil {
			return err
		}
		experiments.RenderRoutingAblation(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if want("baselines") {
		rows, err := experiments.RunBaselines(small)
		if err != nil {
			return err
		}
		experiments.RenderBaselines(stdout, rows)
		fmt.Fprintln(stdout)
		if err := csvOut("baselines", func(w io.Writer) error {
			return experiments.BaselinesCSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if want("mapping") {
		rows, err := experiments.RunMappingStudy(small)
		if err != nil {
			return err
		}
		experiments.RenderMappingStudy(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if want("pipeline") {
		var periods []int64
		if *quick {
			periods = []int64{10000, 5000}
		}
		points, err := experiments.RunPipelining(periods)
		if err != nil {
			return err
		}
		experiments.RenderPipelining(stdout, points)
		fmt.Fprintln(stdout)
		if err := csvOut("pipeline", func(w io.Writer) error {
			return experiments.PipeliningCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if want("laxity") {
		samples := 3
		var ladder []float64
		if *quick {
			samples = 2
			ladder = []float64{0.9, 1.3}
		}
		points, err := experiments.RunLaxitySweep(ladder, samples)
		if err != nil {
			return err
		}
		experiments.RenderLaxitySweep(stdout, points)
		fmt.Fprintln(stdout)
		if err := csvOut("laxity", func(w io.Writer) error {
			return experiments.LaxityCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if want("scaling") {
		var sizes []int
		if *quick {
			sizes = []int{50, 100}
		}
		rows, err := experiments.RunScaling(sizes)
		if err != nil {
			return err
		}
		experiments.RenderScaling(stdout, rows)
		fmt.Fprintln(stdout)
		if err := csvOut("scaling", func(w io.Writer) error {
			return experiments.ScalingCSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if want("honeycomb") {
		clip, err := msb.ClipByName("foreman")
		if err != nil {
			return err
		}
		rows, err := experiments.RunHoneycomb(func(p *noc.Platform) (*ctg.Graph, error) {
			return msb.Integrated(clip, p)
		}, 3, 3)
		if err != nil {
			return err
		}
		experiments.RenderHoneycomb(stdout, rows)
		fmt.Fprintln(stdout)
	}
	return nil
}
