package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "table2"}, &out, &errb); err != nil {
		t.Fatalf("%v\n%s", err, errb.String())
	}
	for _, want := range []string{"Table 2", "A/V decoder", "Energy Savings"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunMultipleSelections(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "hops,honeycomb"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "decomposition") ||
		!strings.Contains(out.String(), "honeycomb") {
		t.Error("selection did not run both experiments")
	}
}

func TestRunQuickSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "fig7,laxity,scaling", "-quick"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 7", "laxity", "runtime scaling"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &out, &errb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "table1", "-csv", dir}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if !strings.Contains(string(data), "savings_pct") {
		t.Errorf("CSV content: %s", data)
	}
}
