// Command schedd is the scheduling daemon: a long-running JSON-over-
// HTTP service (internal/serve) that answers POST /v1/schedule with
// energy-aware NoC schedules, backed by the internal/batch engine, a
// content-addressed schedule cache with singleflight collapse, and
// typed backpressure (429 queue-full, 503 draining, 504 deadline).
// The ops surface — /metrics with the serve_*, batch_*, sched_*,
// energy_* and runtime_* series, /healthz, /readyz, /snapshot,
// /debug/pprof/ — is mounted on the same listener.
//
// Usage:
//
//	schedd [-addr 127.0.0.1:9821] [-workers N] [-queue-depth N]
//	       [-cache-entries N] [-cache-bytes N] [-default-timeout 30s]
//	       [-max-body-bytes N] [-drain-timeout 30s] [-no-warmup]
//
// Lifecycle: the daemon warms up (one miniature workload through the
// full solve path) before flipping /readyz to ready, and "schedd:
// ready on http://ADDR" on stderr marks the moment it accepts traffic.
// SIGTERM or SIGINT begins a graceful drain: /readyz flips to
// not-ready immediately, new submissions are answered 503, in-flight
// solves finish and deliver, then the HTTP listener shuts down. After
// the drain the daemon audits itself for leaked goroutines and exits
// non-zero with a "goroutine-leak" report on stderr if the engine or
// handlers left anything running — so a clean exit 0 doubles as a
// leak check in CI.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nocsched/internal/obs"
	"nocsched/internal/serve"
	"nocsched/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body. ready, when non-nil, receives the
// listener's base URL once /readyz is serving ready (tests use it; the
// CLI announces on stderr instead).
func run(args []string, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:9821", "listen address")
		workers      = fs.Int("workers", 0, "batch engine workers (0 = GOMAXPROCS)")
		queueDepth   = fs.Int("queue-depth", 0, "admission queue bound (0 = 2*workers)")
		cacheEntries = fs.Int("cache-entries", 0, "schedule cache entry bound (0 = 1024)")
		cacheBytes   = fs.Int64("cache-bytes", 0, "schedule cache byte bound (0 = 64 MiB)")
		defTimeout   = fs.Duration("default-timeout", 30*time.Second, "per-request deadline when the request carries no timeout_ms")
		maxBody      = fs.Int64("max-body-bytes", 0, "request body bound (0 = 8 MiB)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a graceful drain may take before giving up")
		noWarmup     = fs.Bool("no-warmup", false, "skip the warmup solve and become ready immediately")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Install the signal handler before taking the goroutine baseline:
	// the runtime's signal-delivery goroutine outlives signal.Stop by
	// design and must not read as a leak.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	baseline := runtime.NumGoroutine()
	col := telemetry.NewCollector(nil)
	rt := obs.StartRuntime(col.R(), time.Second)
	s := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		DefaultTimeout: *defTimeout,
		MaxBodyBytes:   *maxBody,
		Telemetry:      col,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if *noWarmup {
		s.MarkReady()
	} else if err := s.Warmup(); err != nil {
		_ = srv.Close()
		_ = s.Close()
		return err
	}
	url := "http://" + ln.Addr().String()
	fmt.Fprintf(stderr, "schedd: ready on %s\n", url)
	if ready != nil {
		ready <- url
	}

	select {
	case got := <-sig:
		fmt.Fprintf(stderr, "schedd: %s: draining...\n", got)
	case err := <-serveErr:
		_ = s.Close()
		return fmt.Errorf("listener: %w", err)
	}

	// Graceful drain: stop admission first (in-flight solves finish and
	// their waiters get answers), then close the HTTP side.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "schedd: drain incomplete: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "schedd: http shutdown: %v\n", err)
	}
	if err := s.Close(); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("listener: %w", err)
	}
	rt.Close()

	if leaked := settleGoroutines(baseline, 2*time.Second); leaked > 0 {
		fmt.Fprintf(stderr, "schedd: goroutine-leak: %d goroutines above the startup baseline of %d\n",
			leaked, baseline)
		return errors.New("goroutine leak after drain")
	}
	fmt.Fprintln(stderr, "schedd: drained cleanly")
	return nil
}

// settleGoroutines waits for the goroutine count to return to the
// startup baseline (idle HTTP keep-alive conns and timer goroutines
// need a beat to unwind) and returns how many remain above it.
func settleGoroutines(baseline int, window time.Duration) int {
	deadline := time.Now().Add(window)
	for {
		n := runtime.NumGoroutine() - baseline
		if n <= 0 || time.Now().After(deadline) {
			if n < 0 {
				n = 0
			}
			return n
		}
		time.Sleep(20 * time.Millisecond)
	}
}
