package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"nocsched/internal/noc"
	"nocsched/internal/serve"
	"nocsched/internal/tgff"
)

// syncBuffer makes the daemon's stderr safe to read while run() is
// still writing to it from its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonLifecycle drives the whole daemon contract in-process:
// warmup flips /readyz, a request solves and its repeat hits the
// cache, SIGTERM drains cleanly with exit success and no
// goroutine-leak report.
func TestDaemonLifecycle(t *testing.T) {
	var stderr syncBuffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}, &stderr, ready) }()

	var url string
	select {
	case url = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\n%s", err, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	if code := getCode(t, url+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d after warmup", code)
	}

	body := workloadBody(t)
	first := postSchedule(t, url, body)
	if first.Cache != serve.CacheMiss {
		t.Errorf("first response cache = %q, want miss", first.Cache)
	}
	second := postSchedule(t, url, body)
	if second.Cache != serve.CacheHit {
		t.Errorf("second response cache = %q, want hit", second.Cache)
	}
	if !bytes.Equal(first.Schedule, second.Schedule) {
		t.Error("repeat submission returned different schedule bytes")
	}

	// SIGTERM → graceful drain → clean exit with no leak report.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	log := stderr.String()
	if strings.Contains(log, "goroutine-leak") {
		t.Errorf("drain leaked goroutines:\n%s", log)
	}
	if !strings.Contains(log, "drained cleanly") {
		t.Errorf("missing clean-drain marker:\n%s", log)
	}
}

func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func postSchedule(t *testing.T, url string, body []byte) *serve.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/schedule = %d: %s", resp.StatusCode, raw)
	}
	var r serve.Response
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &r
}

func workloadBody(t *testing.T) []byte {
	t.Helper()
	spec := noc.PlatformSpec{Topology: "mesh", Width: 3, Height: 3, Routing: "xy", Bandwidth: 256}
	platform, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := tgff.SuiteParams(tgff.CategoryI, 2, platform)
	p.Name = "schedd-test"
	p.Seed = 9
	p.NumTasks = 20
	g, err := tgff.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.Request{Graph: g, Platform: &spec})
	if err != nil {
		t.Fatal(err)
	}
	return body
}
