package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-graphs", "1", "-tasks", "30", "-mesh", "3x3",
		"-rates", "0.1,0.2", "-retries", "0,2", "-trials", "3",
		"-seed", "7", "-o", out}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "hit-ratio") {
		t.Errorf("summary table missing:\n%s", stdout.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if err := checkReport(&rep); err != nil {
		t.Fatalf("report schema: %v", err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("want 2 rates x 2 budgets = 4 cells, got %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Trials != 3 {
			t.Errorf("cell %+v: trials %d, want 3", c, c.Trials)
		}
	}
}

// TestRetryImprovesHitRatio pins the PR's acceptance criterion at bench
// scale: the very same corrupted traffic yields a strictly better
// deadline-hit ratio under a nonzero retry budget than under the drop
// baseline, and the recovery is not free (retry energy shows up).
func TestRetryImprovesHitRatio(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-graphs", "1", "-tasks", "40", "-mesh", "3x3",
		"-rates", "0.2", "-retries", "0,2", "-trials", "4",
		"-seed", "3", "-o", out}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Improved {
		t.Fatalf("retry budget did not improve the hit ratio: zero %v, best %v",
			rep.ZeroRetryHitRatio, rep.BestRetryHitRatio)
	}
	var retryEnergy float64
	for _, c := range rep.Cells {
		if c.Retries > 0 {
			retryEnergy += c.MeanRetryEnergyFrac
		}
	}
	if retryEnergy <= 0 {
		t.Error("nonzero retry budgets burned no retry energy")
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	args := []string{"-graphs", "1", "-tasks", "30", "-mesh", "3x3",
		"-rates", "0.1", "-retries", "0,1", "-trials", "3", "-seed", "5"}
	var a, b, stderr bytes.Buffer
	if err := run(args, &a, &stderr); err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}
	if err := run(args, &b, &stderr); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed diverged:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for name, args := range map[string][]string{
		"bad mesh":       {"-mesh", "abc"},
		"bad graphs":     {"-graphs", "0"},
		"bad rate":       {"-rates", "0"},
		"rate too big":   {"-rates", "1.5"},
		"no zero retry":  {"-retries", "1,2"},
		"no live retry":  {"-retries", "0"},
		"negative retry": {"-retries", "0,-1"},
		"empty rates":    {"-rates", ""},
		"bad flag":       {"-nonsense"},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestArtifactValidates is the CI smoke lane's schema gate: point
// NOCSCHED_RESIL_FILE at a resilbench -o artifact and it checks the
// document structure and the campaign's headline acceptance criterion
// (nonzero retry budgets strictly beat the drop baseline).
func TestArtifactValidates(t *testing.T) {
	path := os.Getenv("NOCSCHED_RESIL_FILE")
	if path == "" {
		t.Skip("NOCSCHED_RESIL_FILE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a resilbench report: %v", err)
	}
	if err := checkReport(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Improved {
		t.Fatalf("campaign did not improve: zero %v best %v",
			rep.ZeroRetryHitRatio, rep.BestRetryHitRatio)
	}
}

// checkReport validates the report's invariants: full rate x budget
// grid, probabilities in range, per-cell consistency.
func checkReport(rep *report) error {
	if len(rep.Rates) == 0 || len(rep.Retries) == 0 {
		return errBad("empty rates or retries")
	}
	if len(rep.Cells) != len(rep.Rates)*len(rep.Retries) {
		return errBad("cells do not cover the rate x budget grid")
	}
	for i, c := range rep.Cells {
		want := rep.Rates[i/len(rep.Retries)]
		if c.Rate != want || c.Retries != rep.Retries[i%len(rep.Retries)] {
			return errBad("cell grid out of order")
		}
		if c.Trials <= 0 {
			return errBad("cell with no trials")
		}
		if c.MeanHitRatio < 0 || c.MeanHitRatio > 1 {
			return errBad("hit ratio outside [0,1]")
		}
		if c.MeanRetryEnergyFrac < 0 || c.MeanRetryEnergyFrac > 1 {
			return errBad("retry energy fraction outside [0,1]")
		}
		if c.Retries == 0 && c.MeanRetransmitted != 0 {
			return errBad("zero-retry cell reports retransmissions")
		}
	}
	if rep.ZeroRetryHitRatio < 0 || rep.ZeroRetryHitRatio > 1 ||
		rep.BestRetryHitRatio < 0 || rep.BestRetryHitRatio > 1 {
		return errBad("summary hit ratios outside [0,1]")
	}
	if rep.Improved != (rep.BestRetryHitRatio > rep.ZeroRetryHitRatio) {
		return errBad("improved flag inconsistent with summary ratios")
	}
	return nil
}

type errBad string

func (e errBad) Error() string { return string(e) }
