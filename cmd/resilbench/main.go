// Command resilbench sweeps transient-fault campaigns over TGFF-style
// benchmarks and measures how the end-to-end retransmission protocol
// (internal/sim) trades energy for deadline hits: for each fault rate it
// replays the same corrupted traffic under every retry budget and
// reports deadline-hit-ratio and retry-energy-overhead curves.
//
// Usage:
//
//	resilbench [-graphs 2] [-tasks 80] [-mesh 4x4]
//	           [-rates 0.05,0.1,0.2] [-retries 0,1,2,4]
//	           [-trials 10] [-seed 1] [-laxity 2.0]
//	           [-o BENCH_resilience.json]
//	           [-cpuprofile f] [-memprofile f] [-trace f]
//	           [-metrics] [-metrics-out f] [-trace-out f]
//
// A fault rate r corrupts a fraction r of the schedule's routed
// transactions: each trial draws that many transient link-drop windows,
// each window covering one transaction's transfer on one link of its
// route. The windows for a given (graph, rate, trial) derive from the
// root seed alone — they are identical across retry budgets — so the
// per-budget curves differ only in how the protocol recovers the same
// losses. Deadline outcomes come from sim.AssessImpact: a dropped
// packet starves its consumer and everything downstream, a late
// retransmission delays it.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"nocsched/internal/diag"
	"nocsched/internal/eas"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/sim"
	"nocsched/internal/tgff"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "resilbench:", err)
		os.Exit(1)
	}
}

// cell aggregates all trials of one (fault rate, retry budget) point.
type cell struct {
	Rate    float64 `json:"rate"`
	Retries int     `json:"retries"`
	Trials  int     `json:"trials"`
	// MeanHitRatio is the mean fraction of deadline-carrying tasks
	// still meeting their deadline after the campaign's losses and
	// retransmission delays — the headline resilience metric.
	MeanHitRatio float64 `json:"mean_hit_ratio"`
	// MeanDropped / MeanRetransmitted count packet fates per trial.
	MeanDropped       float64 `json:"mean_dropped"`
	MeanRetransmitted float64 `json:"mean_retransmitted"`
	// MeanRetryEnergyFrac is the recovery share of the measured
	// communication energy (Eq. 2 accounting of corrupted attempts
	// plus successful reinjections).
	MeanRetryEnergyFrac float64 `json:"mean_retry_energy_frac"`
	// MeanAddedLatency is the mean total latency the protocol added to
	// traffic that still made it through, in cycles per trial.
	MeanAddedLatency float64 `json:"mean_added_latency"`
}

// report is the JSON document resilbench emits (BENCH_resilience.json).
type report struct {
	Mesh          string    `json:"mesh"`
	Graphs        int       `json:"graphs"`
	Tasks         int       `json:"tasks"`
	TrialsPerRate int       `json:"trials_per_rate_per_graph"`
	Seed          int64     `json:"seed"`
	Laxity        float64   `json:"laxity"`
	Rates         []float64 `json:"rates"`
	Retries       []int     `json:"retries"`
	// Cells holds one row per (rate, retry budget) pair, rates outer.
	Cells []cell `json:"cells"`
	// ZeroRetryHitRatio / BestRetryHitRatio summarize the campaign:
	// the mean hit ratio with retransmission disabled versus the best
	// mean over the nonzero retry budgets. Improved reports the strict
	// win of retransmission over dropping.
	ZeroRetryHitRatio float64 `json:"zero_retry_hit_ratio"`
	BestRetryHitRatio float64 `json:"best_retry_hit_ratio"`
	Improved          bool    `json:"improved"`
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("resilbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		graphs   = fs.Int("graphs", 2, "number of TGFF benchmarks to sweep")
		tasks    = fs.Int("tasks", 80, "tasks per benchmark")
		meshSpec = fs.String("mesh", "4x4", "mesh dimensions, WIDTHxHEIGHT")
		rateSpec = fs.String("rates", "0.05,0.1,0.2", "fault rates: fraction of routed transactions hit by a transient window")
		retrSpec = fs.String("retries", "0,1,2,4", "retry budgets to sweep (0 disables retransmission)")
		trials   = fs.Int("trials", 10, "fault draws per rate per benchmark")
		seed     = fs.Int64("seed", 1, "root seed for graphs and fault draws")
		laxity   = fs.Float64("laxity", 2.0, "deadline laxity of the generated benchmarks")
		outPath  = fs.String("o", "", "write the sweep report as JSON to this file")
	)
	dflags := diag.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sess, err := dflags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// The diagnostics session is live: flip /readyz for -serve probes.
	sess.MarkReady()
	telem := sess.Collector()
	var w, h int
	if _, err := fmt.Sscanf(*meshSpec, "%dx%d", &w, &h); err != nil {
		return fmt.Errorf("bad -mesh %q (want WIDTHxHEIGHT): %w", *meshSpec, err)
	}
	if *graphs < 1 || *trials < 1 {
		return errors.New("-graphs and -trials must be >= 1")
	}
	rates, err := parseFloats(*rateSpec)
	if err != nil {
		return fmt.Errorf("bad -rates: %w", err)
	}
	for _, r := range rates {
		if r <= 0 || r > 1 {
			return fmt.Errorf("bad -rates: rate %v outside (0,1]", r)
		}
	}
	budgets, err := parseInts(*retrSpec)
	if err != nil {
		return fmt.Errorf("bad -retries: %w", err)
	}
	hasZero, hasNonzero := false, false
	for _, b := range budgets {
		if b < 0 {
			return fmt.Errorf("bad -retries: negative budget %d", b)
		}
		if b == 0 {
			hasZero = true
		} else {
			hasNonzero = true
		}
	}
	if !hasZero || !hasNonzero {
		return errors.New("-retries must include 0 (the drop baseline) and at least one nonzero budget")
	}
	platform, err := noc.NewHeterogeneousMesh(w, h, noc.RouteXY, 256)
	if err != nil {
		return err
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		return err
	}

	rep := report{
		Mesh: *meshSpec, Graphs: *graphs, Tasks: *tasks,
		TrialsPerRate: *trials, Seed: *seed, Laxity: *laxity,
		Rates: rates, Retries: budgets,
	}
	for _, r := range rates {
		for _, b := range budgets {
			rep.Cells = append(rep.Cells, cell{Rate: r, Retries: b})
		}
	}
	at := func(ri, bi int) *cell { return &rep.Cells[ri*len(budgets)+bi] }

	for gi := 0; gi < *graphs; gi++ {
		g, err := tgff.Generate(tgff.Params{
			Name: fmt.Sprintf("resilbench-%02d", gi), Seed: *seed*1000 + int64(gi),
			NumTasks: *tasks, MaxInDegree: 3, LocalityWindow: 16,
			TaskTypes: 8, ExecMin: 20, ExecMax: 200, HeteroSpread: 0.5,
			VolumeMin: 256, VolumeMax: 8192, ControlEdgeFraction: 0.1,
			DeadlineLaxity: *laxity, DeadlineFraction: 1, Platform: platform,
		})
		if err != nil {
			return err
		}
		base, err := eas.Schedule(g, acg, eas.Options{Telemetry: telem})
		if err != nil {
			return err
		}
		s := base.Schedule
		routed := routedTransactions(s)
		fmt.Fprintf(stdout, "benchmark %s: %d tasks, %d routed transactions, fault-free misses %d\n",
			g.Name, g.NumTasks(), len(routed), len(s.DeadlineMisses()))
		if len(routed) == 0 {
			return fmt.Errorf("benchmark %s has no routed transactions to corrupt", g.Name)
		}

		for ri, rate := range rates {
			windows := int(rate*float64(len(routed)) + 0.5)
			if windows < 1 {
				windows = 1
			}
			for trial := 0; trial < *trials; trial++ {
				// The fault draw depends only on (seed, graph, rate,
				// trial): every retry budget replays the very same
				// corrupted traffic.
				rng := rand.New(rand.NewSource(*seed*1_000_003 +
					int64(gi)*10_007 + int64(ri)*101 + int64(trial)))
				faults := drawTransients(rng, s, routed, windows)
				for bi, budget := range budgets {
					res, err := sim.Replay(s, sim.Options{
						Faults:    faults,
						Retx:      sim.RetxOptions{MaxRetries: budget},
						Telemetry: telem,
					})
					if err != nil {
						return fmt.Errorf("benchmark %s rate %v retries %d: %w",
							g.Name, rate, budget, err)
					}
					im, err := sim.AssessImpact(s, res)
					if err != nil {
						return err
					}
					c := at(ri, bi)
					c.Trials++
					c.MeanHitRatio += im.HitRatio()
					c.MeanDropped += float64(res.Failures)
					c.MeanRetransmitted += float64(res.Retransmitted)
					if res.MeasuredCommEnergy > 0 {
						c.MeanRetryEnergyFrac += res.RetryEnergy / res.MeasuredCommEnergy
					}
					c.MeanAddedLatency += float64(res.RetryAddedLatency)
				}
			}
		}
	}

	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Trials > 0 {
			n := float64(c.Trials)
			c.MeanHitRatio /= n
			c.MeanDropped /= n
			c.MeanRetransmitted /= n
			c.MeanRetryEnergyFrac /= n
			c.MeanAddedLatency /= n
		}
	}
	// Campaign summary: drop baseline versus the best retry budget,
	// averaged over rates (every cell has the same trial count).
	var zero, best float64
	bestSet := false
	for bi, b := range budgets {
		var sum float64
		for ri := range rates {
			sum += at(ri, bi).MeanHitRatio
		}
		sum /= float64(len(rates))
		if b == 0 {
			zero = sum
		} else if !bestSet || sum > best {
			best, bestSet = sum, true
		}
	}
	rep.ZeroRetryHitRatio = zero
	rep.BestRetryHitRatio = best
	rep.Improved = best > zero

	fmt.Fprintf(stdout, "\n%6s %8s %7s %10s %9s %8s %11s %9s\n",
		"rate", "retries", "trials", "hit-ratio", "dropped", "retx", "retry-en%", "latency")
	for i := range rep.Cells {
		c := &rep.Cells[i]
		fmt.Fprintf(stdout, "%6.2f %8d %7d %9.1f%% %9.1f %8.1f %10.1f%% %9.0f\n",
			c.Rate, c.Retries, c.Trials, 100*c.MeanHitRatio, c.MeanDropped,
			c.MeanRetransmitted, 100*c.MeanRetryEnergyFrac, c.MeanAddedLatency)
	}
	fmt.Fprintf(stdout, "\nzero-retry hit ratio %.1f%%, best retry budget %.1f%% (improved: %v)\n",
		100*rep.ZeroRetryHitRatio, 100*rep.BestRetryHitRatio, rep.Improved)

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *outPath)
	}
	return sess.WriteReport(stdout)
}

// routedTransactions returns the indices of schedule transactions that
// actually cross the network (non-local, non-empty route) — the traffic
// a transient link window can corrupt.
func routedTransactions(s *sched.Schedule) []int {
	var routed []int
	for i := range s.Transactions {
		if len(s.Transactions[i].Route) > 0 {
			routed = append(routed, i)
		}
	}
	return routed
}

// drawTransients draws one trial's transient windows: each targets a
// routed transaction, opening a drop window on one link of its route
// that covers the whole scheduled transfer (plus the wormhole pipeline
// fill), so the first attempt is corrupted and only retransmission can
// save the packet. Windows never duplicate a (link, cycle) pair — the
// simulator rejects duplicate fault entries.
func drawTransients(rng *rand.Rand, s *sched.Schedule, routed []int, n int) []sim.Fault {
	faults := make([]sim.Fault, 0, n)
	type key struct {
		link  noc.LinkID
		cycle int64
	}
	seen := make(map[key]bool, n)
	for drawn, attempts := 0, 0; drawn < n && attempts < 16*n+64; attempts++ {
		tr := &s.Transactions[routed[rng.Intn(len(routed))]]
		l := tr.Route[rng.Intn(len(tr.Route))]
		k := key{l, tr.Start}
		if seen[k] {
			continue
		}
		seen[k] = true
		faults = append(faults, sim.Fault{
			Kind:     sim.FaultTransientLink,
			Link:     l,
			Cycle:    tr.Start,
			Duration: tr.Finish - tr.Start + int64(len(tr.Route)) + 4,
		})
		drawn++
	}
	return faults
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("empty list")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("empty list")
	}
	return out, nil
}
