package nocsched_test

// Godoc examples for the public API. These run under `go test` and
// render on the package documentation page.

import (
	"fmt"
	"log"

	"nocsched"
)

// Example_schedule builds a two-task application, schedules it on a
// 2x2 heterogeneous NoC with EAS, and prints the energy verdict.
func Example_schedule() {
	g := nocsched.NewGraph("demo")
	producer, err := g.AddTask("producer",
		[]int64{50, 70, 100, 180},
		[]float64{200, 91, 100, 63},
		nocsched.NoDeadline)
	if err != nil {
		log.Fatal(err)
	}
	consumer, err := g.AddTask("consumer",
		[]int64{60, 84, 120, 216},
		[]float64{240, 109, 120, 76},
		100000) // very loose deadline: energy wins
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.AddEdge(producer, consumer, 8192); err != nil {
		log.Fatal(err)
	}

	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}
	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// With this much slack both tasks land on the frugal ARM tile and
	// communicate locally: no network energy at all.
	fmt.Printf("feasible: %v\n", res.Schedule.Feasible())
	fmt.Printf("communication energy: %.0f nJ\n", res.Schedule.CommunicationEnergy())
	fmt.Printf("PEs used: %d -> %d\n", res.Schedule.Tasks[producer].PE, res.Schedule.Tasks[consumer].PE)
	// Output:
	// feasible: true
	// communication energy: 0 nJ
	// PEs used: 3 -> 3
}

// Example_topologyEnergy shows the Architecture Characterization Graph:
// per-pair hop counts and bit energies under Eq. (2).
func Example_topologyEnergy() {
	platform, err := nocsched.NewHeterogeneousMesh(4, 4, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	model := nocsched.EnergyModel{ESbit: 1, ELbit: 2}
	acg, err := nocsched.BuildACG(platform, model)
	if err != nil {
		log.Fatal(err)
	}
	// Tile 0 -> tile 15 on a 4x4 mesh: Manhattan distance 6, so 7
	// routers and 6 links: 7*1 + 6*2 = 19 per bit.
	fmt.Printf("hops: %d\n", acg.Hops(0, 15))
	fmt.Printf("bit energy: %.0f\n", acg.BitEnergy(0, 15))
	fmt.Printf("1 kbit transfer: %.0f\n", acg.CommEnergy(1000, 0, 15))
	// Output:
	// hops: 7
	// bit energy: 19
	// 1 kbit transfer: 19000
}

// Example_wormholeReplay validates a schedule with the flit-level
// simulator.
func Example_wormholeReplay() {
	g := nocsched.NewGraph("replay")
	a, _ := g.AddTask("a", []int64{10, 10, 10, 10}, []float64{1, 1, 1, 1}, nocsched.NoDeadline)
	b, _ := g.AddTask("b", []int64{10, 10, 10, 10}, []float64{1, 1, 1, 1}, nocsched.NoDeadline)
	g.AddEdge(a, b, 1024)

	platform, _ := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}
	res, err := nocsched.EDF(g, acg)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := nocsched.Replay(res, nocsched.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stalls: %d\n", replay.TotalStalls)
	fmt.Printf("late deliveries: %d\n", len(replay.LateDeliveries(res)))
	// Output:
	// stalls: 0
	// late deliveries: 0
}
