package nocsched_test

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"nocsched"
)

// TestPublicAPIQuickstart exercises the facade the README documents:
// build a graph, build a platform, schedule with EAS and EDF, validate,
// serialize, replay.
func TestPublicAPIQuickstart(t *testing.T) {
	g := nocsched.NewGraph("api")
	a, err := g.AddTask("a",
		[]int64{50, 70, 100, 180},
		[]float64{200, 91, 100, 63}, nocsched.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AddTask("b",
		[]int64{60, 84, 120, 216},
		[]float64{240, 109, 120, 76}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a, b, 8192); err != nil {
		t.Fatal(err)
	}

	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}

	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("EAS schedule invalid: %v", err)
	}
	if !res.Schedule.Feasible() {
		t.Error("EAS missed the deadline")
	}

	edfSched, err := nocsched.EDF(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.TotalEnergy() > edfSched.TotalEnergy() {
		t.Errorf("EAS energy %v above EDF %v on a loose instance",
			res.Schedule.TotalEnergy(), edfSched.TotalEnergy())
	}

	// JSON round trip through the facade.
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := nocsched.ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() {
		t.Error("JSON round trip lost tasks")
	}

	// Flit-level replay through the facade.
	replay, err := nocsched.Replay(res.Schedule, nocsched.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(replay.LateDeliveries(res.Schedule)); got != 0 {
		t.Errorf("%d late deliveries in replay", got)
	}
}

// TestPublicAPITopologies exercises the mesh/honeycomb/custom topology
// constructors.
func TestPublicAPITopologies(t *testing.T) {
	mesh, err := nocsched.NewMesh(3, 3, nocsched.RouteYX)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.NumTiles() != 9 {
		t.Error("mesh size wrong")
	}
	honey, err := nocsched.NewHoneycomb(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if honey.NumTiles() != 12 {
		t.Error("honeycomb size wrong")
	}
	ring, err := nocsched.NewGraphTopology("ring", [][]nocsched.TileID{{1}, {2}, {3}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	classes := []nocsched.PEClass{
		nocsched.ClassCPU, nocsched.ClassDSP, nocsched.ClassRISC, nocsched.ClassARM,
	}
	if _, err := nocsched.NewPlatform(ring, classes, 128); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIMSB exercises the multimedia benchmark constructors and
// TGFF generator through the facade.
func TestPublicAPIMSB(t *testing.T) {
	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, clip := range nocsched.MSBClips {
		g, err := nocsched.MSBEncoder(clip, platform)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumTasks() != 24 {
			t.Errorf("%s: encoder task count %d", clip.Name, g.NumTasks())
		}
	}
	g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
		Name: "api-tgff", Seed: 3, NumTasks: 50, MaxInDegree: 2,
		LocalityWindow: 8, TaskTypes: 5, ExecMin: 10, ExecMax: 100,
		HeteroSpread: 0.4, VolumeMin: 128, VolumeMax: 1024,
		DeadlineLaxity: 1.5, DeadlineFraction: 1, Platform: platform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIBaselinesAndAnalysis exercises the remaining facade
// surface: the DLS baseline, the deadlock-freedom checker, platform
// specs, and the weighted ACG.
func TestPublicAPIBaselinesAndAnalysis(t *testing.T) {
	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	g := nocsched.NewGraph("facade")
	a, _ := g.AddTask("a", []int64{50, 70, 100, 180}, []float64{200, 91, 100, 63}, nocsched.NoDeadline)
	b, _ := g.AddTask("b", []int64{50, 70, 100, 180}, []float64{200, 91, 100, 63}, 5000)
	g.AddEdge(a, b, 2048)

	s, err := nocsched.DLS(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	report, err := nocsched.CheckDeadlockFree(platform.Topo)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Free {
		t.Error("XY mesh reported deadlocking")
	}

	weighted, err := nocsched.BuildACGWeighted(platform,
		nocsched.DefaultEnergyModel(), nocsched.UniformLinkScale(platform.Topo))
	if err != nil {
		t.Fatal(err)
	}
	if weighted.BitEnergy(0, 1) != acg.BitEnergy(0, 1) {
		t.Error("uniform weighted ACG differs from plain ACG")
	}

	spec := nocsched.PlatformSpec{Topology: "honeycomb", Width: 3, Height: 3, Bandwidth: 64}
	hp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if hp.NumPEs() != 9 {
		t.Errorf("spec platform PEs = %d", hp.NumPEs())
	}

	// Unroll through the facade.
	u, err := nocsched.Unroll(g, 2, 6000, []nocsched.CrossDep{{From: b, To: a, Volume: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumTasks() != 4 {
		t.Errorf("unrolled tasks = %d", u.NumTasks())
	}
}

// TestPublicAPIFaultTolerance exercises the fault-tolerance facade:
// write/read a scenario, degrade a platform, recover a schedule, replay
// it with the faults injected.
func TestPublicAPIFaultTolerance(t *testing.T) {
	platform, err := nocsched.NewHeterogeneousMesh(3, 3, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
		Name: "api-fault", Seed: 3, NumTasks: 24, MaxInDegree: 3,
		LocalityWindow: 8, TaskTypes: 5, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 4096,
		DeadlineLaxity: 3, DeadlineFraction: 1, Platform: platform,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Scenario JSON round trip through the facade.
	sc := &nocsched.FaultScenario{Name: "api", PEs: []nocsched.TileID{4}}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc2, err := nocsched.ReadFaultScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}

	d, err := nocsched.DegradePlatform(platform, nocsched.DefaultEnergyModel(), sc2)
	if err != nil {
		t.Fatal(err)
	}
	if d.AlivePEs() != 8 {
		t.Errorf("AlivePEs = %d, want 8", d.AlivePEs())
	}

	rec, err := nocsched.RecoverSchedule(res.Schedule, sc2, nocsched.FaultRecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Schedule.Validate(); err != nil {
		t.Fatalf("recovered schedule invalid: %v", err)
	}
	sim, err := nocsched.Replay(rec.Schedule, nocsched.SimOptions{Faults: sc2.SimFaults()})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Failures != 0 {
		t.Errorf("recovered schedule lost %d packets", sim.Failures)
	}

	// Typed errors are visible through the facade.
	island := &nocsched.FaultScenario{Routers: []nocsched.TileID{1, 3}}
	if _, err := nocsched.RecoverSchedule(res.Schedule, island, nocsched.FaultRecoverOptions{}); !errors.Is(err, nocsched.ErrFaultDisconnected) {
		t.Errorf("error %v does not wrap ErrFaultDisconnected", err)
	}
}

// TestPublicAPIResilience exercises the resilience facade: transient
// faults with retransmission and impact assessment, an online fault
// stream, and graceful degradation of an unrecoverable scenario.
func TestPublicAPIResilience(t *testing.T) {
	platform, err := nocsched.NewHeterogeneousMesh(3, 3, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
		Name: "api-resil", Seed: 5, NumTasks: 24, MaxInDegree: 3,
		LocalityWindow: 8, TaskTypes: 5, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 4096,
		DeadlineLaxity: 2, DeadlineFraction: 1, Platform: platform,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schedule

	// A transient window over one routed transaction: dropped without
	// retries, recovered (and visible in the impact) with them.
	var f nocsched.SimFault
	for i := range s.Transactions {
		if tr := &s.Transactions[i]; len(tr.Route) > 0 {
			f = nocsched.SimFault{
				Kind: nocsched.SimFaultTransientLink, Link: tr.Route[0],
				Cycle:    tr.Start,
				Duration: tr.Finish - tr.Start + int64(len(tr.Route)) + 4,
			}
			break
		}
	}
	dropped, err := nocsched.Replay(s, nocsched.SimOptions{Faults: []nocsched.SimFault{f}})
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Failures == 0 {
		t.Fatal("transient window corrupted nothing")
	}
	retried, err := nocsched.Replay(s, nocsched.SimOptions{
		Faults: []nocsched.SimFault{f},
		Retx:   nocsched.RetxOptions{MaxRetries: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if retried.Failures != 0 || retried.Retransmitted == 0 || retried.RetryEnergy <= 0 {
		t.Fatalf("retransmission did not recover: %d failed, %d retx, retry energy %v",
			retried.Failures, retried.Retransmitted, retried.RetryEnergy)
	}
	imDrop, err := nocsched.AssessImpact(s, dropped)
	if err != nil {
		t.Fatal(err)
	}
	imRetry, err := nocsched.AssessImpact(s, retried)
	if err != nil {
		t.Fatal(err)
	}
	if imRetry.HitRatio() <= imDrop.HitRatio() {
		t.Errorf("retry hit ratio %v not above drop baseline %v",
			imRetry.HitRatio(), imDrop.HitRatio())
	}

	// Online fault stream: a PE dies mid-run, the prefix survives
	// verbatim and the suffix is rescheduled off the dead tile.
	mid := s.Makespan() / 2
	stream := nocsched.FaultStream{{Time: mid, PEs: []nocsched.TileID{4}}}
	sr, err := nocsched.ReplayFaultStream(s, stream, nocsched.FaultStreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Steps) != 1 || sr.Steps[0].Rescheduled == 0 {
		t.Fatalf("stream steps = %+v", sr.Steps)
	}
	if err := sr.Schedule.Validate(); err != nil {
		t.Fatalf("stream schedule invalid: %v", err)
	}
	for i := range sr.Schedule.Tasks {
		tp := &sr.Schedule.Tasks[i]
		if tp.PE == 4 && tp.Start >= mid {
			t.Fatalf("task %d scheduled on the dead PE after the event", i)
		}
	}

	// Graceful degradation of a fabric split: the island restriction
	// succeeds where plain recovery returns the typed error.
	split := &nocsched.FaultScenario{Name: "split", Routers: []nocsched.TileID{3, 4, 5}}
	if _, err := nocsched.RecoverSchedule(s, split, nocsched.FaultRecoverOptions{}); !errors.Is(err, nocsched.ErrFaultDisconnected) {
		t.Fatalf("error %v does not wrap ErrFaultDisconnected", err)
	}
	deg, err := nocsched.RecoverDegradedSchedule(s, split,
		nocsched.FaultRecoverOptions{}, nocsched.FaultShedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if deg.Recovery.Degraded.AlivePEs() != 3 {
		t.Errorf("island size = %d, want 3", deg.Recovery.Degraded.AlivePEs())
	}
	if err := deg.Recovery.Schedule.Validate(); err != nil {
		t.Fatalf("degraded schedule invalid: %v", err)
	}
}

// TestPublicAPIVerification exercises the conformance-oracle facade: a
// scheduler-built schedule verifies clean, a tampered JSON artifact
// loaded leniently yields typed findings, and the analytic flit-energy
// prediction matches the simulator's measured accounting.
func TestPublicAPIVerification(t *testing.T) {
	g := nocsched.NewGraph("verify-api")
	a, err := g.AddTask("a",
		[]int64{50, 70, 100, 180},
		[]float64{200, 91, 100, 63}, nocsched.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AddTask("b",
		[]int64{60, 84, 120, 216},
		[]float64{240, 109, 120, 76}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a, b, 8192); err != nil {
		t.Fatal(err)
	}
	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if rep := nocsched.VerifySchedule(res.Schedule); !rep.OK() {
		t.Fatalf("oracle flags the EAS schedule:\n%s", rep)
	}

	// Tamper through the lenient JSON path: pull a task backwards in
	// time so the oracle must object, whatever the placement was.
	var buf bytes.Buffer
	if err := res.Schedule.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw := bytes.Replace(buf.Bytes(), []byte(`"start": 0`), []byte(`"start": -3`), 1)
	if bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("tampering had no effect; adjust the mutation")
	}
	bad, err := nocsched.ReadScheduleJSONLenient(bytes.NewReader(raw), g, acg)
	if err != nil {
		t.Fatal(err)
	}
	rep := nocsched.VerifyScheduleOptions(bad, nocsched.VerifyOptions{})
	if rep.OK() {
		t.Fatal("oracle accepted a tampered schedule")
	}
	if rep.Count(nocsched.VerifyClassTask) == 0 {
		t.Fatalf("no task-placement finding for a negative start:\n%s", rep)
	}

	// Analytic flit-energy prediction vs. simulator accounting.
	replay, err := nocsched.Replay(res.Schedule, nocsched.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := nocsched.ExpectedFlitEnergy(res.Schedule)
	if got := replay.MeasuredCommEnergy; got < want*0.999999 || got > want*1.000001 {
		t.Fatalf("measured comm energy %v, analytic prediction %v", got, want)
	}
}

// TestPublicAPIObservability exercises the live-plane facade: serve a
// registry, scrape and validate it, runtime metrics, a snapshot
// stream, and the bench-regression comparator.
func TestPublicAPIObservability(t *testing.T) {
	col := nocsched.NewTelemetry(nil)
	col.Registry.Counter("api_obs_total").Add(5)
	rt := nocsched.StartRuntimeMetrics(col.Registry, time.Hour)
	defer rt.Close()

	var ready atomic.Bool
	srv, err := nocsched.ServeObservability("127.0.0.1:0", nocsched.ObsOptions{
		Registry: col.Registry,
		Ready:    ready.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if resp, err := http.Get(srv.URL() + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz = %d before ready, want 503", resp.StatusCode)
		}
	}
	ready.Store(true)
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples, err := nocsched.ValidatePrometheus(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scrape invalid: %v", err)
	}
	if samples == 0 || !bytes.Contains(body, []byte("api_obs_total 5")) {
		t.Errorf("scrape (%d samples) missing the counter:\n%s", samples, body)
	}
	if !bytes.Contains(body, []byte("runtime_goroutines")) {
		t.Error("scrape missing the runtime series")
	}

	// WritePrometheus renders the same snapshot the server serves.
	var direct bytes.Buffer
	if err := nocsched.WritePrometheus(&direct, col.Registry.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(direct.Bytes(), []byte("api_obs_total 5")) {
		t.Error("WritePrometheus missing the counter")
	}

	// The snapshot stream leaves a valid JSONL time-series.
	var stream bytes.Buffer
	st := nocsched.StartMetricsStream(&stream, col.Registry, time.Hour)
	st.Sample()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := nocsched.ValidateMetricsStream(bytes.NewReader(stream.Bytes())); err != nil || n < 2 {
		t.Errorf("stream = %d lines, %v", n, err)
	}
}

// TestPublicAPIBenchDiff exercises the watchdog facade on a synthetic
// batch report pair.
func TestPublicAPIBenchDiff(t *testing.T) {
	base := []byte(`{"cells":[{"mesh":"3x3","tasks":10,"workers":1,
		"serial_ms":70,"batch_ms":54,"instances_per_sec":430,"speedup":1.3,
		"p50_latency_us":1000,"p99_latency_us":5000,"identical":true}]}`)
	kind, err := nocsched.DetectBenchKind(base)
	if err != nil || kind != nocsched.BenchKindBatch {
		t.Fatalf("DetectBenchKind = %q, %v", kind, err)
	}
	rep, err := nocsched.BenchDiff(kind, base, base, nocsched.BenchDiffOptions{TimingThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("self-compare failed: %s", rep.Summary())
	}
	degraded := bytes.Replace(base, []byte(`"identical":true`), []byte(`"identical":false`), 1)
	rep, err = nocsched.BenchDiff(kind, base, degraded, nocsched.BenchDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Error("identical-bit regression not flagged through the facade")
	}
}
