package nocsched_test

import (
	"bytes"
	"errors"
	"testing"

	"nocsched"
)

// TestPublicAPIQuickstart exercises the facade the README documents:
// build a graph, build a platform, schedule with EAS and EDF, validate,
// serialize, replay.
func TestPublicAPIQuickstart(t *testing.T) {
	g := nocsched.NewGraph("api")
	a, err := g.AddTask("a",
		[]int64{50, 70, 100, 180},
		[]float64{200, 91, 100, 63}, nocsched.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.AddTask("b",
		[]int64{60, 84, 120, 216},
		[]float64{240, 109, 120, 76}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a, b, 8192); err != nil {
		t.Fatal(err)
	}

	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}

	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("EAS schedule invalid: %v", err)
	}
	if !res.Schedule.Feasible() {
		t.Error("EAS missed the deadline")
	}

	edfSched, err := nocsched.EDF(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.TotalEnergy() > edfSched.TotalEnergy() {
		t.Errorf("EAS energy %v above EDF %v on a loose instance",
			res.Schedule.TotalEnergy(), edfSched.TotalEnergy())
	}

	// JSON round trip through the facade.
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := nocsched.ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() {
		t.Error("JSON round trip lost tasks")
	}

	// Flit-level replay through the facade.
	replay, err := nocsched.Replay(res.Schedule, nocsched.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(replay.LateDeliveries(res.Schedule)); got != 0 {
		t.Errorf("%d late deliveries in replay", got)
	}
}

// TestPublicAPITopologies exercises the mesh/honeycomb/custom topology
// constructors.
func TestPublicAPITopologies(t *testing.T) {
	mesh, err := nocsched.NewMesh(3, 3, nocsched.RouteYX)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.NumTiles() != 9 {
		t.Error("mesh size wrong")
	}
	honey, err := nocsched.NewHoneycomb(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if honey.NumTiles() != 12 {
		t.Error("honeycomb size wrong")
	}
	ring, err := nocsched.NewGraphTopology("ring", [][]nocsched.TileID{{1}, {2}, {3}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	classes := []nocsched.PEClass{
		nocsched.ClassCPU, nocsched.ClassDSP, nocsched.ClassRISC, nocsched.ClassARM,
	}
	if _, err := nocsched.NewPlatform(ring, classes, 128); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIMSB exercises the multimedia benchmark constructors and
// TGFF generator through the facade.
func TestPublicAPIMSB(t *testing.T) {
	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, clip := range nocsched.MSBClips {
		g, err := nocsched.MSBEncoder(clip, platform)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumTasks() != 24 {
			t.Errorf("%s: encoder task count %d", clip.Name, g.NumTasks())
		}
	}
	g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
		Name: "api-tgff", Seed: 3, NumTasks: 50, MaxInDegree: 2,
		LocalityWindow: 8, TaskTypes: 5, ExecMin: 10, ExecMax: 100,
		HeteroSpread: 0.4, VolumeMin: 128, VolumeMax: 1024,
		DeadlineLaxity: 1.5, DeadlineFraction: 1, Platform: platform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIBaselinesAndAnalysis exercises the remaining facade
// surface: the DLS baseline, the deadlock-freedom checker, platform
// specs, and the weighted ACG.
func TestPublicAPIBaselinesAndAnalysis(t *testing.T) {
	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	g := nocsched.NewGraph("facade")
	a, _ := g.AddTask("a", []int64{50, 70, 100, 180}, []float64{200, 91, 100, 63}, nocsched.NoDeadline)
	b, _ := g.AddTask("b", []int64{50, 70, 100, 180}, []float64{200, 91, 100, 63}, 5000)
	g.AddEdge(a, b, 2048)

	s, err := nocsched.DLS(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	report, err := nocsched.CheckDeadlockFree(platform.Topo)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Free {
		t.Error("XY mesh reported deadlocking")
	}

	weighted, err := nocsched.BuildACGWeighted(platform,
		nocsched.DefaultEnergyModel(), nocsched.UniformLinkScale(platform.Topo))
	if err != nil {
		t.Fatal(err)
	}
	if weighted.BitEnergy(0, 1) != acg.BitEnergy(0, 1) {
		t.Error("uniform weighted ACG differs from plain ACG")
	}

	spec := nocsched.PlatformSpec{Topology: "honeycomb", Width: 3, Height: 3, Bandwidth: 64}
	hp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if hp.NumPEs() != 9 {
		t.Errorf("spec platform PEs = %d", hp.NumPEs())
	}

	// Unroll through the facade.
	u, err := nocsched.Unroll(g, 2, 6000, []nocsched.CrossDep{{From: b, To: a, Volume: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumTasks() != 4 {
		t.Errorf("unrolled tasks = %d", u.NumTasks())
	}
}

// TestPublicAPIFaultTolerance exercises the fault-tolerance facade:
// write/read a scenario, degrade a platform, recover a schedule, replay
// it with the faults injected.
func TestPublicAPIFaultTolerance(t *testing.T) {
	platform, err := nocsched.NewHeterogeneousMesh(3, 3, nocsched.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
		Name: "api-fault", Seed: 3, NumTasks: 24, MaxInDegree: 3,
		LocalityWindow: 8, TaskTypes: 5, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 4096,
		DeadlineLaxity: 3, DeadlineFraction: 1, Platform: platform,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Scenario JSON round trip through the facade.
	sc := &nocsched.FaultScenario{Name: "api", PEs: []nocsched.TileID{4}}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc2, err := nocsched.ReadFaultScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}

	d, err := nocsched.DegradePlatform(platform, nocsched.DefaultEnergyModel(), sc2)
	if err != nil {
		t.Fatal(err)
	}
	if d.AlivePEs() != 8 {
		t.Errorf("AlivePEs = %d, want 8", d.AlivePEs())
	}

	rec, err := nocsched.RecoverSchedule(res.Schedule, sc2, nocsched.FaultRecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Schedule.Validate(); err != nil {
		t.Fatalf("recovered schedule invalid: %v", err)
	}
	sim, err := nocsched.Replay(rec.Schedule, nocsched.SimOptions{Faults: sc2.SimFaults()})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Failures != 0 {
		t.Errorf("recovered schedule lost %d packets", sim.Failures)
	}

	// Typed errors are visible through the facade.
	island := &nocsched.FaultScenario{Routers: []nocsched.TileID{1, 3}}
	if _, err := nocsched.RecoverSchedule(res.Schedule, island, nocsched.FaultRecoverOptions{}); !errors.Is(err, nocsched.ErrFaultDisconnected) {
		t.Errorf("error %v does not wrap ErrFaultDisconnected", err)
	}
}
