// Resilience: survive faults that strike while the system is running.
// Three escalating stories on one 3x3 benchmark:
//
//  1. Transient link glitches corrupt packets in flight; the
//     end-to-end retransmission protocol buys the deadlines back for a
//     measurable energy premium (retry energy, Eq. 2 accounting).
//  2. A router dies mid-run: the online fault stream checkpoints the
//     committed prefix of the schedule and incrementally reschedules
//     only the work that has not started yet.
//  3. The fabric splits so badly that no full recovery exists; graceful
//     degradation restricts execution to the largest surviving island
//     and sheds the least-critical tasks until the rest is feasible.
//
// Run with: go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"nocsched"
)

func main() {
	platform, err := nocsched.NewHeterogeneousMesh(3, 3, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}
	g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
		Name: "resil-demo", Seed: 11, NumTasks: 36, MaxInDegree: 3,
		LocalityWindow: 12, TaskTypes: 8, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 8192,
		ControlEdgeFraction: 0.1, DeadlineLaxity: 2.0, DeadlineFraction: 1,
		Platform: platform,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Schedule
	fmt.Printf("fault-free: %d tasks, %.0f nJ, makespan %d, misses %d\n\n",
		g.NumTasks(), s.TotalEnergy(), s.Makespan(), len(s.DeadlineMisses()))

	// --- 1. Transient glitches and retransmission ---------------------
	// Open a drop window over the first few routed transactions: every
	// flit crossing that link during the window is corrupted, so the
	// first attempt of each targeted packet is lost.
	var storm []nocsched.SimFault
	for _, tr := range s.Transactions {
		if len(tr.Route) == 0 || len(storm) >= 4 {
			continue
		}
		storm = append(storm, nocsched.SimFault{
			Kind:     nocsched.SimFaultTransientLink,
			Link:     tr.Route[0],
			Cycle:    tr.Start,
			Duration: tr.Finish - tr.Start + int64(len(tr.Route)) + 4,
		})
	}
	for _, budget := range []int{0, 3} {
		sim, err := nocsched.Replay(s, nocsched.SimOptions{
			Faults: storm,
			Retx:   nocsched.RetxOptions{MaxRetries: budget},
		})
		if err != nil {
			log.Fatal(err)
		}
		im, err := nocsched.AssessImpact(s, sim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("transient storm, retries=%d: dropped %d, retransmitted %d, "+
			"hit ratio %.0f%%, retry energy %.1f%% of comm\n",
			budget, sim.Failures, sim.Retransmitted, 100*im.HitRatio(),
			100*sim.RetryEnergy/sim.MeasuredCommEnergy)
	}

	// --- 2. A router dies mid-run --------------------------------------
	// The stream event freezes everything already started at the fault
	// instant and reschedules only the suffix; tasks interrupted on the
	// dead tile re-run elsewhere.
	stream := nocsched.FaultStream{{
		Time:    s.Makespan() / 2,
		Routers: []nocsched.TileID{4},
	}}
	sr, err := nocsched.ReplayFaultStream(s, stream, nocsched.FaultStreamOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, step := range sr.Steps {
		fmt.Printf("\nt=%d router 4 dies: %d tasks frozen, %d rescheduled "+
			"(%d interrupted, %d migrated), %d shed\n", step.Time, step.Frozen,
			step.Rescheduled, step.Interrupted, step.Migrated, len(step.Shed))
	}
	fmt.Printf("stream outcome: feasible=%v, energy %+.1f%%\n",
		sr.Feasible(), 100*sr.EnergyOverhead())

	// --- 3. Graceful degradation ---------------------------------------
	// Killing the middle router row splits the mesh; a full recovery is
	// impossible (typed error), so degrade: keep the biggest island and
	// shed the least-critical tasks until the rest fits.
	split := &nocsched.FaultScenario{Name: "mid-row", Routers: []nocsched.TileID{3, 4, 5}}
	if _, err := nocsched.RecoverSchedule(s, split, nocsched.FaultRecoverOptions{}); err != nil {
		fmt.Printf("\nfull recovery: %v\n", err)
	}
	deg, err := nocsched.RecoverDegradedSchedule(s, split,
		nocsched.FaultRecoverOptions{}, nocsched.FaultShedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded: island of %d PEs, %d tasks shed, feasible=%v, "+
		"energy %+.1f nJ\n", deg.Recovery.Degraded.AlivePEs(), len(deg.Shed),
		deg.Feasible(), deg.EnergyDelta())
}
