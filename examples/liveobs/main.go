// Liveobs: stand up the live observability plane around a batch
// scheduling run — a telemetry registry exposed over HTTP in the
// Prometheus text format, Go runtime series riding along, and a
// readiness probe that flips once the engine is accepting work — then
// scrape it like a monitoring system would and verify the exposition.
//
// The plane is read-only: the schedules computed while being scraped
// are bit-identical to an unobserved run (the repo's differential
// tests hold this guarantee; here we just enjoy it).
//
// Run with: go run ./examples/liveobs
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"nocsched"
)

func main() {
	// A 4x4 heterogeneous mesh and its energy characterization, shared
	// by every instance in the batch.
	platform, err := nocsched.NewHeterogeneousMesh(4, 4, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}

	// One registry behind everything: the batch engine's queue and
	// latency series, the schedulers' probe and energy series, and the
	// Go runtime collector all publish here.
	col := nocsched.NewTelemetry(nil)
	rt := nocsched.StartRuntimeMetrics(col.Registry, time.Second)
	defer rt.Close()

	var ready atomic.Bool
	srv, err := nocsched.ServeObservability("127.0.0.1:0", nocsched.ObsOptions{
		Registry: col.Registry,
		Ready:    ready.Load,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("ops server: %s (try /metrics, /healthz, /readyz, /snapshot, /debug/pprof/)\n", srv.URL())

	// Before MarkReady-equivalent: /readyz answers 503, so a rollout
	// controller would hold traffic.
	fmt.Printf("readyz before engine start: %s\n", httpStatus(srv.URL()+"/readyz"))

	// A stream of generated instances cycling through the schedulers.
	algos := []string{nocsched.BatchAlgoEAS, nocsched.BatchAlgoEDF, nocsched.BatchAlgoDLS}
	insts := make([]nocsched.BatchInstance, 12)
	for i := range insts {
		name := fmt.Sprintf("liveobs-%02d", i)
		g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
			Name:                name,
			Seed:                int64(i + 1),
			NumTasks:            40,
			MaxInDegree:         3,
			LocalityWindow:      16,
			TaskTypes:           12,
			ExecMin:             40,
			ExecMax:             400,
			HeteroSpread:        0.5,
			VolumeMin:           512,
			VolumeMax:           16384,
			ControlEdgeFraction: 0.1,
			DeadlineLaxity:      1.4,
			DeadlineFraction:    1.0,
			Platform:            platform,
		})
		if err != nil {
			log.Fatal(err)
		}
		insts[i] = nocsched.BatchInstance{Name: name, Graph: g, ACG: acg, Algorithm: algos[i%len(algos)]}
	}

	eng := nocsched.NewBatchEngine(nocsched.BatchOptions{Workers: 2, Telemetry: col})
	ready.Store(true)
	fmt.Printf("readyz with engine accepting:  %s\n", httpStatus(srv.URL()+"/readyz"))

	results, err := eng.Run(context.Background(), insts)
	if err != nil {
		log.Fatal(err)
	}
	var energy float64
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Name, r.Err)
		}
		energy += r.Schedule.CommunicationEnergy()
	}
	fmt.Printf("scheduled %d instances, total comm energy %.1f nJ\n", len(results), energy)

	// Scrape like Prometheus would, and validate the exposition with
	// the same checker the CI observability lane uses.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	samples, err := nocsched.ValidatePrometheus(bytes.NewReader(body))
	if err != nil {
		log.Fatalf("scrape failed validation: %v", err)
	}
	fmt.Printf("scrape: %d samples, %d bytes; a few series:\n", samples, len(body))
	for _, line := range bytes.Split(body, []byte("\n")) {
		for _, prefix := range []string{
			"batch_instances_total ", "batch_instance_latency_us_count ",
			"sched_probes_total ", "runtime_goroutines ", "process_uptime_seconds ",
		} {
			if bytes.HasPrefix(line, []byte(prefix)) {
				fmt.Printf("  %s\n", line)
			}
		}
	}

	// Two scrapes with no traffic in between are byte-identical —
	// snapshots are deterministic, so diffing scrapes is meaningful.
	again, _ := scrape(srv.URL() + "/metrics")
	if bytes.Equal(body, again) {
		fmt.Println("quiescent scrapes are byte-identical")
	}
}

func httpStatus(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		return err.Error()
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return resp.Status
}

func scrape(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
