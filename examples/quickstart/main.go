// Quickstart: build a small Communication Task Graph by hand, schedule
// it on a 2x2 heterogeneous NoC with the EAS scheduler, and print the
// resulting placement, timings and energy figures.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nocsched"
)

func main() {
	// A five-task diamond: a source fans out to two parallel workers
	// whose results are merged and post-processed under a deadline.
	//
	//        split
	//       /     \
	//   filterA  filterB
	//       \     /
	//        merge ── emit (deadline)
	g := nocsched.NewGraph("quickstart")

	// Per-PE characterization: the 2x2 platform below has tiles
	// [cpu-hp, dsp, risc, arm-lp], so each task carries four execution
	// times and four energies. The CPU is fast but hungry; the ARM is
	// slow but frugal — exactly the trade-off EAS exploits.
	addTask := func(name string, ref int64, deadline int64) nocsched.TaskID {
		times := []int64{ref / 2, ref * 7 / 10, ref, ref * 9 / 5}
		energy := []float64{float64(ref) * 2.0, float64(ref) * 0.91, float64(ref), float64(ref) * 0.63}
		id, err := g.AddTask(name, times, energy, deadline)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	split := addTask("split", 200, nocsched.NoDeadline)
	filterA := addTask("filterA", 900, nocsched.NoDeadline)
	filterB := addTask("filterB", 700, nocsched.NoDeadline)
	merge := addTask("merge", 300, nocsched.NoDeadline)
	emit := addTask("emit", 150, 4200)

	edge := func(src, dst nocsched.TaskID, bits int64) {
		if _, err := g.AddEdge(src, dst, bits); err != nil {
			log.Fatal(err)
		}
	}
	edge(split, filterA, 16384)
	edge(split, filterB, 16384)
	edge(filterA, merge, 8192)
	edge(filterB, merge, 8192)
	edge(merge, emit, 4096)

	// Platform: 2x2 mesh, XY routing, 256 bits per time unit per link.
	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}

	// Schedule with EAS and with the EDF baseline.
	easRes, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		log.Fatal(err)
	}
	edfSched, err := nocsched.EDF(g, acg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- EAS ---")
	fmt.Print(easRes.Schedule.Gantt())
	fmt.Println("--- EDF ---")
	fmt.Print(edfSched.Gantt())
	fmt.Printf("\nEAS saves %.1f%% energy vs EDF while meeting the deadline.\n",
		100*(edfSched.TotalEnergy()-easRes.Schedule.TotalEnergy())/edfSched.TotalEnergy())

	// Independently verify the EAS schedule on the flit-level
	// wormhole simulator.
	replay, err := nocsched.Replay(easRes.Schedule, nocsched.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: %d packets delivered, %d stall cycles, %d late\n",
		len(replay.Packets), replay.TotalStalls, len(replay.LateDeliveries(easRes.Schedule)))
}
