// Customtopo: the paper's conclusion claims EAS "can be adapted to
// other regular architectures with different network topologies or
// different deterministic routing schemes". This example schedules the
// same series-parallel workload on four 9-tile platforms — XY mesh,
// YX mesh, torus, and the honeycomb lattice the paper names — and on a
// hand-built ring via the generic deterministic-routing topology, then
// compares energy, hops and makespan.
//
// Run with: go run ./examples/customtopo
package main

import (
	"fmt"
	"log"

	"nocsched"
)

func main() {
	// Build the candidate topologies, all with 9 tiles.
	meshXY, err := nocsched.NewMesh(3, 3, nocsched.RouteXY)
	must(err)
	meshYX, err := nocsched.NewMesh(3, 3, nocsched.RouteYX)
	must(err)
	torus, err := nocsched.NewTorus(3, 3)
	must(err)
	honey, err := nocsched.NewHoneycomb(3, 3)
	must(err)
	// A bidirectional 9-ring through the generic topology constructor.
	adj := make([][]nocsched.TileID, 9)
	for i := range adj {
		next := nocsched.TileID((i + 1) % 9)
		prev := nocsched.TileID((i + 8) % 9)
		adj[i] = []nocsched.TileID{next, prev}
	}
	ring, err := nocsched.NewGraphTopology("ring9", adj)
	must(err)

	topologies := []nocsched.Topology{meshXY, meshYX, torus, honey, ring}

	fmt.Printf("%-16s %12s %10s %8s %10s %6s\n",
		"topology", "energy (nJ)", "comm (nJ)", "hops", "makespan", "miss")
	for _, topo := range topologies {
		// Same heterogeneous tile mix on every topology.
		classes := make([]nocsched.PEClass, topo.NumTiles())
		for i := range classes {
			classes[i] = []nocsched.PEClass{
				nocsched.ClassCPU, nocsched.ClassDSP, nocsched.ClassRISC, nocsched.ClassARM,
			}[i%4]
		}
		platform, err := nocsched.NewPlatform(topo, classes, 256)
		must(err)
		acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
		must(err)

		// Identical workload seed on every platform (per-PE tables are
		// derived from the same class mix, so the problem instances
		// match).
		g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
			Name: "sp-workload", Seed: 42,
			Shape:    nocsched.ShapeSeriesParallel,
			NumTasks: 120, MaxInDegree: 3, TaskTypes: 12,
			ExecMin: 50, ExecMax: 400, HeteroSpread: 0.5,
			VolumeMin: 1024, VolumeMax: 32768,
			ControlEdgeFraction: 0.1,
			DeadlineLaxity:      1.4, DeadlineFraction: 1,
			Platform: platform,
		})
		must(err)

		res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
		must(err)
		s := res.Schedule
		if err := s.Validate(); err != nil {
			log.Fatalf("%s: invalid schedule: %v", topo.Name(), err)
		}
		fmt.Printf("%-16s %12.1f %10.1f %8.2f %10d %6d\n",
			topo.Name(), s.TotalEnergy(), s.CommunicationEnergy(),
			s.AvgHopsPerPacket(), s.Makespan(), len(s.DeadlineMisses()))
	}
	fmt.Println("\nSame scheduler, same workload, five deterministic-routing fabrics —")
	fmt.Println("the ACG abstraction carries all topology-specific detail.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
