// Multimedia: schedule the paper's MP3/H.263 A/V encoder, decoder and
// integrated system benchmarks (Sec. 6.2) for each of the three clips,
// comparing EAS against the EDF baseline and decomposing where the
// savings come from.
//
// Run with: go run ./examples/multimedia
package main

import (
	"fmt"
	"log"

	"nocsched"
)

func main() {
	p2, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	p3, err := nocsched.NewHeterogeneousMesh(3, 3, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg2, err := nocsched.BuildACG(p2, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}
	acg3, err := nocsched.BuildACG(p3, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}

	systems := []struct {
		name  string
		build func(clip nocsched.Clip, p *nocsched.Platform) (*nocsched.Graph, error)
		plat  *nocsched.Platform
		acg   *nocsched.ACG
	}{
		{"A/V encoder (24 tasks, 2x2)", nocsched.MSBEncoder, p2, acg2},
		{"A/V decoder (16 tasks, 2x2)", nocsched.MSBDecoder, p2, acg2},
		{"A/V enc+dec (40 tasks, 3x3)", nocsched.MSBIntegrated, p3, acg3},
	}

	for _, sys := range systems {
		fmt.Printf("== %s ==\n", sys.name)
		fmt.Printf("%-10s %12s %12s %9s %10s %10s\n",
			"clip", "EAS (nJ)", "EDF (nJ)", "save", "EAS hops", "EDF hops")
		for _, clip := range nocsched.MSBClips {
			g, err := sys.build(clip, sys.plat)
			if err != nil {
				log.Fatal(err)
			}
			eas, err := nocsched.EAS(g, sys.acg, nocsched.EASOptions{})
			if err != nil {
				log.Fatal(err)
			}
			edf, err := nocsched.EDF(g, sys.acg)
			if err != nil {
				log.Fatal(err)
			}
			if !eas.Schedule.Feasible() {
				log.Fatalf("%s/%s: EAS missed a deadline", sys.name, clip.Name)
			}
			fmt.Printf("%-10s %12.1f %12.1f %8.1f%% %10.2f %10.2f\n",
				clip.Name,
				eas.Schedule.TotalEnergy(), edf.TotalEnergy(),
				100*(edf.TotalEnergy()-eas.Schedule.TotalEnergy())/edf.TotalEnergy(),
				eas.Schedule.AvgHopsPerPacket(), edf.AvgHopsPerPacket())
		}
		fmt.Println()
	}

	// Decompose the foreman integrated run, echoing the paper's
	// Sec. 6.2 discussion of computation vs communication savings.
	clip := nocsched.MSBClips[1] // foreman
	g, err := nocsched.MSBIntegrated(clip, p3)
	if err != nil {
		log.Fatal(err)
	}
	eas, err := nocsched.EAS(g, acg3, nocsched.EASOptions{})
	if err != nil {
		log.Fatal(err)
	}
	edf, err := nocsched.EDF(g, acg3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== foreman decomposition (integrated system) ==")
	fmt.Printf("computation energy:   EAS %10.1f nJ   EDF %10.1f nJ\n",
		eas.Schedule.ComputationEnergy(), edf.ComputationEnergy())
	fmt.Printf("communication energy: EAS %10.1f nJ   EDF %10.1f nJ\n",
		eas.Schedule.CommunicationEnergy(), edf.CommunicationEnergy())
	fmt.Printf("avg hops per packet:  EAS %10.2f      EDF %10.2f\n",
		eas.Schedule.AvgHopsPerPacket(), edf.AvgHopsPerPacket())
}
