// Randombench: generate pseudo-TGFF random task graphs of growing size,
// schedule each on a 4x4 heterogeneous NoC with EAS-base, EAS and EDF,
// and print the energy/feasibility/runtime comparison — a miniature of
// the paper's Sec. 6.1 experiment that also shows the scheduler's
// scaling behavior.
//
// Run with: go run ./examples/randombench
package main

import (
	"fmt"
	"log"
	"time"

	"nocsched"
)

func main() {
	platform, err := nocsched.NewHeterogeneousMesh(4, 4, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-6s %12s %12s %12s %7s %7s %10s\n",
		"tasks", "edges", "EAS-base", "EAS", "EDF", "mEAS", "mEDF", "EAS time")
	for _, n := range []int{50, 100, 200, 400} {
		g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
			Name:                fmt.Sprintf("rand-%d", n),
			Seed:                int64(n),
			NumTasks:            n,
			MaxInDegree:         3,
			LocalityWindow:      24,
			TaskTypes:           16,
			ExecMin:             40,
			ExecMax:             400,
			HeteroSpread:        0.5,
			VolumeMin:           512,
			VolumeMax:           16384,
			ControlEdgeFraction: 0.1,
			DeadlineLaxity:      1.3,
			DeadlineFraction:    1.0,
			Platform:            platform,
		})
		if err != nil {
			log.Fatal(err)
		}

		base, err := nocsched.EAS(g, acg, nocsched.EASOptions{DisableRepair: true})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		full, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
		if err != nil {
			log.Fatal(err)
		}
		easTime := time.Since(start)
		edf, err := nocsched.EDF(g, acg)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-6d %-6d %12.1f %12.1f %12.1f %7d %7d %10s\n",
			g.NumTasks(), g.NumEdges(),
			base.Schedule.TotalEnergy(), full.Schedule.TotalEnergy(), edf.TotalEnergy(),
			len(full.Schedule.DeadlineMisses()), len(edf.DeadlineMisses()),
			easTime.Round(time.Millisecond))
	}
}
