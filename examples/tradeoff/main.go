// Tradeoff: reproduce the shape of the paper's Fig. 7 — as the required
// encoding/decoding rates of the integrated multimedia system grow
// (deadlines tighten), the EAS schedule is forced onto faster,
// hungrier PEs and its energy climbs toward the EDF baseline.
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"strings"

	"nocsched"
)

func main() {
	platform, err := nocsched.NewHeterogeneousMesh(3, 3, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}
	clip := nocsched.MSBClips[1] // foreman
	base, err := nocsched.MSBIntegrated(clip, platform)
	if err != nil {
		log.Fatal(err)
	}

	type point struct {
		ratio    float64
		eas, edf float64
		misses   int
	}
	var points []point
	maxEnergy := 0.0
	for ratio := 1.0; ratio <= 1.8001; ratio += 0.1 {
		// The paper's X axis: required performance relative to the
		// 40 fps / 67 fps baseline; deadlines scale inversely.
		g := base.ScaleDeadlines(1 / ratio)
		easRes, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
		if err != nil {
			log.Fatal(err)
		}
		edfSched, err := nocsched.EDF(g, acg)
		if err != nil {
			log.Fatal(err)
		}
		p := point{
			ratio:  ratio,
			eas:    easRes.Schedule.TotalEnergy(),
			edf:    edfSched.TotalEnergy(),
			misses: len(easRes.Schedule.DeadlineMisses()),
		}
		points = append(points, p)
		if p.edf > maxEnergy {
			maxEnergy = p.edf
		}
		if p.eas > maxEnergy {
			maxEnergy = p.eas
		}
	}

	fmt.Println("Energy vs unified performance ratio (integrated MSB, foreman)")
	fmt.Printf("%-8s %12s %12s %6s  %s\n", "ratio", "EAS (nJ)", "EDF (nJ)", "miss", "EAS energy bar")
	for _, p := range points {
		bar := strings.Repeat("#", int(40*p.eas/maxEnergy))
		fmt.Printf("%-8.1f %12.1f %12.1f %6d  %s\n", p.ratio, p.eas, p.edf, p.misses, bar)
	}
	fmt.Println("\nAs the performance requirement tightens, the scheduler has less")
	fmt.Println("freedom to place tasks on slow low-power PEs and the EAS energy")
	fmt.Println("rises toward the (performance-greedy) EDF level.")
}
