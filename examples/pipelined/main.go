// Pipelined: schedule several consecutive frames of the A/V encoder as
// one unrolled task graph, letting the scheduler overlap frames across
// PEs while honoring the cross-frame recurrence (the reconstructed
// reference frame feeds the next frame's motion estimation). Sweeps the
// required frame rate and writes an SVG Gantt chart of the pipelined
// schedule at the highest sustainable rate.
//
// Run with: go run ./examples/pipelined
package main

import (
	"fmt"
	"log"
	"os"

	"nocsched"
	"nocsched/internal/msb"
)

func main() {
	platform, err := nocsched.NewHeterogeneousMesh(2, 2, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}
	clip := nocsched.MSBClips[1] // foreman

	const frames = 4
	fmt.Printf("%-8s %-6s %14s %8s %10s\n", "period", "fps", "energy/frame", "misses", "makespan")
	var bestFeasible *nocsched.Schedule
	for _, period := range []int64{10000, 7000, 5600, 5000, 4500, 4000} {
		base, err := nocsched.MSBEncoder(clip, platform)
		if err != nil {
			log.Fatal(err)
		}
		// Rescale the per-frame deadline to the requested period, then
		// unroll with the encoder's frame-to-frame dependencies.
		scaled := base.ScaleDeadlines(float64(period) / float64(msb.EncoderPeriod))
		cross, err := msb.EncoderCrossDeps(scaled, "")
		if err != nil {
			log.Fatal(err)
		}
		unrolled, err := nocsched.Unroll(scaled, frames, period, cross)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nocsched.EAS(unrolled, acg, nocsched.EASOptions{})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Schedule
		if err := s.Validate(); err != nil {
			log.Fatal(err)
		}
		misses := len(s.DeadlineMisses())
		fmt.Printf("%-8d %-6.0f %14.1f %8d %10d\n",
			period, 40*float64(msb.EncoderPeriod)/float64(period),
			s.TotalEnergy()/frames, misses, s.Makespan())
		if misses == 0 {
			bestFeasible = s
		}
	}

	if bestFeasible != nil {
		const out = "pipelined-gantt.svg"
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := bestFeasible.WriteSVG(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s — frames overlap across PEs; the recurrence\n", out)
		fmt.Println("(recon -> next frame's motion estimation) bounds the sustainable rate.")
	}
}
