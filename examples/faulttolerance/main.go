// Fault tolerance: schedule a random benchmark on a 3x3 heterogeneous
// NoC, kill a router at the heart of the mesh, and recover the schedule
// onto the surviving hardware. The program shows the triage (what the
// fault invalidated), the recovery cost, and verifies the result by
// replaying both schedules in the wormhole simulator with the fault
// injected: the original loses packets, the recovered one loses none.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"nocsched"
)

func main() {
	platform, err := nocsched.NewHeterogeneousMesh(3, 3, nocsched.RouteXY, 256)
	if err != nil {
		log.Fatal(err)
	}
	acg, err := nocsched.BuildACG(platform, nocsched.DefaultEnergyModel())
	if err != nil {
		log.Fatal(err)
	}
	g, err := nocsched.GenerateTGFF(nocsched.TGFFParams{
		Name: "ft-demo", Seed: 42, NumTasks: 40, MaxInDegree: 3,
		LocalityWindow: 12, TaskTypes: 8, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 8192,
		ControlEdgeFraction: 0.1, DeadlineLaxity: 2.5, DeadlineFraction: 1,
		Platform: platform,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := nocsched.EAS(g, acg, nocsched.EASOptions{})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Schedule
	fmt.Printf("fault-free: %d tasks on %s, %.0f nJ, makespan %d, misses %d\n",
		g.NumTasks(), platform.Topo.Name(), s.TotalEnergy(), s.Makespan(),
		len(s.DeadlineMisses()))

	// Tile 3's router dies: the tile hosts a low-power ARM that EAS
	// loads up under loose deadlines, so the fault both strands tasks
	// and severs routes along the mesh's west edge.
	sc := &nocsched.FaultScenario{Name: "router3-down", Routers: []nocsched.TileID{3}}
	if err := sc.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The original schedule, replayed with the fault injected, loses
	// every packet that depended on the dead router.
	broken, err := nocsched.Replay(s, nocsched.SimOptions{Faults: sc.SimFaults()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original under fault: %d of %d packets lost\n",
		broken.Failures, len(broken.Packets))

	rec, err := nocsched.RecoverSchedule(s, sc, nocsched.FaultRecoverOptions{})
	if err != nil {
		log.Fatal(err)
	}
	st := rec.Stats
	fmt.Printf("triage: %d tasks stranded, %d transactions severed\n",
		st.StrandedTasks, st.SeveredTransactions)
	fmt.Printf("recovery: %d tasks migrated, misses %d -> %d, energy %+.1f%%\n",
		st.TasksMigrated, st.MissesBefore, st.MissesAfter, 100*st.EnergyOverhead())

	// The recovered schedule routes around the dead router, so the same
	// fault injection no longer touches it.
	fixed, err := nocsched.Replay(rec.Schedule, nocsched.SimOptions{Faults: sc.SimFaults()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered under fault: %d of %d packets lost, %d late\n",
		fixed.Failures, len(fixed.Packets), len(fixed.LateDeliveries(rec.Schedule)))

	// Random scenarios need not be recoverable; typed errors say why.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		sc := nocsched.RandomFaultScenario(rng, platform, 3)
		_, err := nocsched.RecoverSchedule(s, sc, nocsched.FaultRecoverOptions{})
		switch {
		case err == nil:
			fmt.Printf("random 3-fault #%d: recovered\n", i)
		default:
			fmt.Printf("random 3-fault #%d: %v\n", i, err)
		}
	}
}
