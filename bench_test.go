package nocsched_test

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Sec. 6), plus the ablation benches DESIGN.md
// calls out. Each benchmark regenerates its experiment end to end —
// workload generation, EAS-base/EAS/EDF scheduling, comparison — and
// reports the headline quantities as custom metrics so `go test
// -bench=. -benchmem` reproduces the paper's numbers alongside the
// runtime costs.
//
// The full suites (10 x ~500-task graphs) run in a few seconds per
// scheduler; benchmarks use modest suite prefixes per iteration to keep
// `-bench=.` runs pleasant, while `cmd/experiments` renders the complete
// tables. Set -benchtime=1x for a single full pass.

import (
	"testing"

	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/experiments"
	"nocsched/internal/msb"
	"nocsched/internal/noc"
	"nocsched/internal/sim"
	"nocsched/internal/tgff"

	root "nocsched"
)

// benchSuiteSize bounds the random-suite prefix used per benchmark
// iteration (the full 10-graph suite is exercised by cmd/experiments).
const benchSuiteSize = 3

// BenchmarkFig5CategoryI regenerates Fig. 5: EAS-base vs EAS vs EDF
// energy on category-I random benchmarks (4x4 heterogeneous NoC).
func BenchmarkFig5CategoryI(b *testing.B) {
	benchRandomSuite(b, tgff.CategoryI)
}

// BenchmarkFig6CategoryII regenerates Fig. 6: the same comparison under
// category II's tighter deadlines.
func BenchmarkFig6CategoryII(b *testing.B) {
	benchRandomSuite(b, tgff.CategoryII)
}

func benchRandomSuite(b *testing.B, c tgff.Category) {
	b.ReportAllocs()
	var overhead float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRandomSuite(c, benchSuiteSize)
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.AvgEDFOverheadPct()
		for _, bench := range res.Benchmarks {
			if bench.EASMisses != 0 {
				b.Fatalf("%s: EAS missed %d deadlines", bench.Name, bench.EASMisses)
			}
		}
	}
	b.ReportMetric(overhead, "EDF-overhead-%")
}

// BenchmarkTable1Encoder regenerates Table 1: the 24-task A/V encoder
// on a 2x2 NoC over the three clips.
func BenchmarkTable1Encoder(b *testing.B) {
	benchMSB(b, experiments.MSBEncoder)
}

// BenchmarkTable2Decoder regenerates Table 2: the 16-task A/V decoder.
func BenchmarkTable2Decoder(b *testing.B) {
	benchMSB(b, experiments.MSBDecoder)
}

// BenchmarkTable3Integrated regenerates Table 3: the 40-task combined
// system on a 3x3 NoC.
func BenchmarkTable3Integrated(b *testing.B) {
	benchMSB(b, experiments.MSBIntegrated)
}

func benchMSB(b *testing.B, system experiments.MSBSystem) {
	b.ReportAllocs()
	var avgSavings float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMSB(system)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, row := range res.Rows {
			if row.EASMisses != 0 {
				b.Fatalf("clip %s: EAS missed deadlines", row.Clip)
			}
			sum += row.SavingsPct
		}
		avgSavings = sum / float64(len(res.Rows))
	}
	b.ReportMetric(avgSavings, "savings-%")
}

// BenchmarkFig7Tradeoff regenerates Fig. 7: EAS and EDF energy as the
// required performance ratio of the integrated system sweeps 1.0-1.8.
func BenchmarkFig7Tradeoff(b *testing.B) {
	b.ReportAllocs()
	var rise float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunTradeoff([]float64{1.0, 1.2, 1.4, 1.6, 1.8})
		if err != nil {
			b.Fatal(err)
		}
		first, last := points[0], points[len(points)-1]
		if last.EASMisses != 0 {
			b.Fatalf("EAS infeasible at ratio %.1f", last.Ratio)
		}
		rise = 100 * (last.EASEnergy - first.EASEnergy) / first.EASEnergy
	}
	b.ReportMetric(rise, "EAS-energy-rise-%")
}

// BenchmarkHopsDecomposition regenerates the Sec. 6.2 prose experiment
// (E7): computation/communication energy split and average hops per
// packet for the foreman clip, cross-checked by the wormhole replay.
func BenchmarkHopsDecomposition(b *testing.B) {
	b.ReportAllocs()
	var easHops, edfHops float64
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunDecomposition("foreman")
		if err != nil {
			b.Fatal(err)
		}
		easHops, edfHops = d.EASAvgHops, d.EDFAvgHops
	}
	b.ReportMetric(easHops, "EAS-hops")
	b.ReportMetric(edfHops, "EDF-hops")
}

// BenchmarkSearchRepair regenerates E8: scheduler run time and energy
// cost of fixing EAS-base deadline misses via search-and-repair on the
// tight category.
func BenchmarkSearchRepair(b *testing.B) {
	b.ReportAllocs()
	var fixed, residual int
	for i := 0; i < b.N; i++ {
		study, err := experiments.RunRepairStudy(tgff.CategoryII, benchSuiteSize)
		if err != nil {
			b.Fatal(err)
		}
		fixed, residual = 0, 0
		for _, r := range study.Rows {
			fixed += r.BaseMisses - r.FinalMisses
			residual += r.FinalMisses
		}
	}
	b.ReportMetric(float64(fixed), "misses-fixed")
	b.ReportMetric(float64(residual), "misses-left")
}

// BenchmarkAblationWeights measures the paper's W = VAR_e*VAR_r weight
// against VAR_e-only and uniform slack splitting.
func BenchmarkAblationWeights(b *testing.B) {
	b.ReportAllocs()
	var paperE, uniformE float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunWeightAblation(2)
		if err != nil {
			b.Fatal(err)
		}
		paperE, uniformE = 0, 0
		for _, r := range rows {
			paperE += r.VarEVarR
			uniformE += r.Uniform
		}
	}
	b.ReportMetric(100*(uniformE-paperE)/paperE, "uniform-vs-paper-%")
}

// BenchmarkAblationContention measures the cost of ignoring link
// contention: naive-model schedules replayed at flit level collide.
func BenchmarkAblationContention(b *testing.B) {
	b.ReportAllocs()
	var latePkts float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunContentionAblation(2)
		if err != nil {
			b.Fatal(err)
		}
		latePkts = 0
		for _, r := range rows {
			latePkts += float64(r.NaiveLatePackets)
		}
	}
	b.ReportMetric(latePkts, "naive-late-packets")
}

// BenchmarkAblationRouting compares XY and YX dimension-ordered routing
// under EAS.
func BenchmarkAblationRouting(b *testing.B) {
	b.ReportAllocs()
	var dE float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRoutingAblation(2)
		if err != nil {
			b.Fatal(err)
		}
		dE = 0
		for _, r := range rows {
			dE += 100 * (r.YXEnergy - r.XYEnergy) / r.XYEnergy
		}
		dE /= float64(len(rows))
	}
	b.ReportMetric(dE, "YX-vs-XY-%")
}

// BenchmarkLaxityFrontier measures the feasibility/energy frontier
// sweep (this repository's extension of Figs. 5/6 into a curve).
func BenchmarkLaxityFrontier(b *testing.B) {
	b.ReportAllocs()
	var tightOverhead float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunLaxitySweep([]float64{0.8, 1.3}, 2)
		if err != nil {
			b.Fatal(err)
		}
		tightOverhead = points[0].AvgOverheadPct
	}
	b.ReportMetric(tightOverhead, "tight-overhead-%")
}

// BenchmarkScaling measures end-to-end scheduling across problem sizes.
func BenchmarkScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScaling([]int{100, 400}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the scheduler itself ------------------------

// BenchmarkEASScheduler measures EAS scheduling throughput on one
// ~500-task category-I benchmark (the paper reports 1.7-3.2 s on 2004
// hardware).
func BenchmarkEASScheduler(b *testing.B) {
	platform, acg, err := experiments.RandomPlatform()
	if err != nil {
		b.Fatal(err)
	}
	g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryI, 0, platform))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eas.Schedule(g, acg, eas.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEASSchedulerLegacyProbe measures the same workload through
// the journal-based reserve/rollback probe path — the historical
// implementation, kept as the baseline the read-only path (default,
// BenchmarkEASScheduler above) is compared against. Schedules are
// bit-identical; only probe evaluation differs.
func BenchmarkEASSchedulerLegacyProbe(b *testing.B) {
	platform, acg, err := experiments.RandomPlatform()
	if err != nil {
		b.Fatal(err)
	}
	g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryI, 0, platform))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eas.Schedule(g, acg, eas.Options{LegacyProbe: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEASSchedulerSequential pins the read-only path to one
// worker, isolating the probe-path gain from the fan-out gain.
func BenchmarkEASSchedulerSequential(b *testing.B) {
	platform, acg, err := experiments.RandomPlatform()
	if err != nil {
		b.Fatal(err)
	}
	g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryI, 0, platform))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eas.Schedule(g, acg, eas.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEDFScheduler measures the EDF baseline on the same workload.
func BenchmarkEDFScheduler(b *testing.B) {
	platform, acg, err := experiments.RandomPlatform()
	if err != nil {
		b.Fatal(err)
	}
	g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryI, 0, platform))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := edf.Schedule(g, acg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWormholeReplay measures the flit-level simulator replaying
// the integrated multimedia schedule.
func BenchmarkWormholeReplay(b *testing.B) {
	p3, err := msb.DefaultPlatform3x3()
	if err != nil {
		b.Fatal(err)
	}
	acg, err := root.BuildACG(p3, root.DefaultEnergyModel())
	if err != nil {
		b.Fatal(err)
	}
	clip, err := msb.ClipByName("foreman")
	if err != nil {
		b.Fatal(err)
	}
	g, err := msb.Integrated(clip, p3)
	if err != nil {
		b.Fatal(err)
	}
	res, err := eas.Schedule(g, acg, eas.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Replay(res.Schedule, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTGFFGenerate measures random benchmark generation.
func BenchmarkTGFFGenerate(b *testing.B) {
	platform, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		b.Fatal(err)
	}
	params := tgff.SuiteParams(tgff.CategoryI, 0, platform)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tgff.Generate(params); err != nil {
			b.Fatal(err)
		}
	}
}
