// Package mapping implements an energy-aware *mapping* baseline in the
// spirit of the paper's own predecessor, reference [13] (Hu &
// Marculescu, "Energy-aware mapping for tile-based NoC architectures
// under performance constraints", ASP-DAC 2003): choose the assignment
// of tasks to PEs that minimizes the Eq. (3) energy — computation
// energy plus volume-weighted route energy — *without* co-scheduling
// communication, then derive start times afterwards with a list
// scheduler over the fixed assignment.
//
// Comparing EAS against mapping-then-scheduling isolates the paper's
// core claim: that interleaving the communication/computation
// scheduling with the assignment decisions (rather than mapping first
// and scheduling second) is what buys the extra energy and feasibility.
package mapping

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
)

// Options tunes the mapper.
type Options struct {
	// MaxSwapRounds bounds the pairwise-improvement phase; 0 selects
	// a default of 20 full rounds.
	MaxSwapRounds int
}

// Result couples the chosen assignment with the derived schedule.
type Result struct {
	// Assign[t] is the PE chosen for task t.
	Assign []int
	// MappingEnergy is the Eq. (3) energy of the assignment (timing
	// independent).
	MappingEnergy float64
	Schedule      *sched.Schedule
}

// Map runs the baseline: greedy constructive assignment in descending
// task-weight order (energy variance, matching the intuition of [13]
// that high-impact tasks choose first), followed by steepest-descent
// single-task moves and pairwise swaps on the Eq. (3) objective, then
// list scheduling over the fixed assignment.
func Map(g *ctg.Graph, acg *energy.ACG, opts Options) (*Result, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumPEs() != acg.NumPEs() {
		return nil, fmt.Errorf("mapping: CTG characterized for %d PEs, platform has %d",
			g.NumPEs(), acg.NumPEs())
	}
	if opts.MaxSwapRounds <= 0 {
		opts.MaxSwapRounds = 20
	}
	npe := acg.NumPEs()
	n := g.NumTasks()

	// Order tasks by descending assignment impact: the spread between
	// their cheapest and most expensive runnable placement.
	order := make([]ctg.TaskID, n)
	for i := range order {
		order[i] = ctg.TaskID(i)
	}
	spread := make([]float64, n)
	for i := 0; i < n; i++ {
		task := g.Task(ctg.TaskID(i))
		lo, hi := math.Inf(1), math.Inf(-1)
		for k, r := range task.ExecTime {
			if r < 0 {
				continue
			}
			if task.Energy[k] < lo {
				lo = task.Energy[k]
			}
			if task.Energy[k] > hi {
				hi = task.Energy[k]
			}
		}
		spread[i] = hi - lo
	}
	sort.Slice(order, func(a, b int) bool {
		if spread[order[a]] != spread[order[b]] {
			return spread[order[a]] > spread[order[b]]
		}
		return order[a] < order[b]
	})

	// Greedy construction: each task takes the placement minimizing
	// its computation energy plus communication with already-placed
	// neighbors.
	assign := make([]int, n)
	placed := make([]bool, n)
	for i := range assign {
		assign[i] = -1
	}
	commWith := func(t ctg.TaskID, k int) float64 {
		cost := 0.0
		for _, eid := range g.In(t) {
			e := g.Edge(eid)
			if placed[e.Src] {
				cost += acg.CommEnergy(e.Volume, assign[e.Src], k)
			}
		}
		for _, eid := range g.Out(t) {
			e := g.Edge(eid)
			if placed[e.Dst] {
				cost += acg.CommEnergy(e.Volume, k, assign[e.Dst])
			}
		}
		return cost
	}
	for _, t := range order {
		task := g.Task(t)
		best, bestCost := -1, math.Inf(1)
		for k := 0; k < npe; k++ {
			if !task.RunnableOn(k) {
				continue
			}
			cost := task.Energy[k] + commWith(t, k)
			if cost < bestCost {
				bestCost, best = cost, k
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("mapping: task %d runnable nowhere", t)
		}
		assign[t] = best
		placed[t] = true
	}

	// Improvement: steepest-descent single moves and adjacent-pair
	// swaps, evaluated with incremental deltas so the phase stays
	// O(rounds * (n*npe + m)) and scales to ~500-task graphs.
	//
	// localCost(t, k) = computation energy of t on k plus the full
	// communication energy of every arc incident to t (with all other
	// tasks at their current placement).
	localCost := func(t ctg.TaskID, k int) float64 {
		cost := g.Task(t).Energy[k]
		for _, eid := range g.In(t) {
			e := g.Edge(eid)
			cost += acg.CommEnergy(e.Volume, assign[e.Src], k)
		}
		for _, eid := range g.Out(t) {
			e := g.Edge(eid)
			cost += acg.CommEnergy(e.Volume, k, assign[e.Dst])
		}
		return cost
	}
	for round := 0; round < opts.MaxSwapRounds; round++ {
		improved := false
		// Single-task moves: the objective change of moving t from
		// its PE to k is localCost(t,k) - localCost(t,cur) because
		// only t's own computation term and incident arcs change.
		for i := 0; i < n; i++ {
			t := ctg.TaskID(i)
			task := g.Task(t)
			curCost := localCost(t, assign[i])
			bestK, bestCost := assign[i], curCost
			for k := 0; k < npe; k++ {
				if k == assign[i] || !task.RunnableOn(k) {
					continue
				}
				if c := localCost(t, k); c < bestCost {
					bestCost, bestK = c, k
				}
			}
			if bestK != assign[i] {
				assign[i] = bestK
				improved = true
			}
		}
		// Pairwise swaps between communicating tasks (the pairs whose
		// joint move single-task descent cannot evaluate). The delta
		// is computed exactly by temporarily applying the swap; only
		// arcs incident to the pair change, and arcs between the two
		// are counted once on each side, identically before and
		// after, so the comparison is exact.
		for _, e := range g.Edges() {
			i, j := e.Src, e.Dst
			if assign[i] == assign[j] {
				continue
			}
			ti, tj := g.Task(i), g.Task(j)
			if !ti.RunnableOn(assign[j]) || !tj.RunnableOn(assign[i]) {
				continue
			}
			before := localCost(i, assign[i]) + localCost(j, assign[j])
			assign[i], assign[j] = assign[j], assign[i]
			after := localCost(i, assign[i]) + localCost(j, assign[j])
			if after < before-1e-12 {
				improved = true
			} else {
				assign[i], assign[j] = assign[j], assign[i]
			}
		}
		if !improved {
			break
		}
	}
	// Final objective value.
	cur := 0.0
	for i := 0; i < n; i++ {
		cur += g.Task(ctg.TaskID(i)).Energy[assign[i]]
	}
	for _, e := range g.Edges() {
		cur += acg.CommEnergy(e.Volume, assign[e.Src], assign[e.Dst])
	}

	s, err := listScheduleFixed(g, acg, assign)
	if err != nil {
		return nil, err
	}
	s.Elapsed = time.Since(started)
	return &Result{Assign: assign, MappingEnergy: cur, Schedule: s}, nil
}

// listScheduleFixed derives start times for a fixed assignment: ready
// tasks are committed in ascending data-ready order onto their mapped
// PE, with the exact Fig. 3 communication placement.
func listScheduleFixed(g *ctg.Graph, acg *energy.ACG, assign []int) (*sched.Schedule, error) {
	b := sched.NewBuilder(g, acg, "map+ls")
	for b.Committed() < g.NumTasks() {
		rtl := b.ReadyTasks()
		if len(rtl) == 0 {
			return nil, fmt.Errorf("mapping: no ready tasks")
		}
		// Earliest max-predecessor-finish first keeps the derived
		// order close to the dataflow.
		best := rtl[0]
		bestKey := int64(math.MaxInt64)
		for _, t := range rtl {
			key := int64(0)
			for _, p := range g.Pred(t) {
				if f := b.TaskPlacement(p).Finish; f > key {
					key = f
				}
			}
			if key < bestKey || (key == bestKey && t < best) {
				best, bestKey = t, key
			}
		}
		if _, err := b.Commit(best, assign[best]); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}
