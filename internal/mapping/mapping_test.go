package mapping

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

func rig(t *testing.T) *energy.ACG {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return acg
}

func het(t *testing.T, g *ctg.Graph, name string, ref int64) ctg.TaskID {
	t.Helper()
	id, err := g.AddTask(name,
		[]int64{ref / 2, ref * 7 / 10, ref, ref * 9 / 5},
		[]float64{float64(ref) * 2.0, float64(ref) * 0.91, float64(ref), float64(ref) * 0.63},
		ctg.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestMapSingleTaskPicksCheapest(t *testing.T) {
	acg := rig(t)
	g := ctg.New("one")
	id := het(t, g, "a", 100)
	res, err := Map(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[id] != 3 { // arm-lp is the cheapest
		t.Errorf("assigned to PE %d, want 3", res.Assign[id])
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapCoLocatesHeavyCommunicators(t *testing.T) {
	// Two tasks exchanging a huge message: any sane mapping puts them
	// on the same tile (zero communication energy) despite the
	// slightly higher computation cost of sharing a PE being free in
	// the timing-free objective.
	acg := rig(t)
	g := ctg.New("pair")
	a := het(t, g, "a", 100)
	b := het(t, g, "b", 100)
	if _, err := g.AddEdge(a, b, 1<<20); err != nil { // 1 Mbit
		t.Fatal(err)
	}
	res, err := Map(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[a] != res.Assign[b] {
		t.Errorf("heavy communicators split: %d vs %d", res.Assign[a], res.Assign[b])
	}
	if res.Schedule.CommunicationEnergy() != 0 {
		t.Errorf("communication energy %v", res.Schedule.CommunicationEnergy())
	}
}

func TestMapMatchesEASEnergyObjective(t *testing.T) {
	// On deadline-free instances the mapping baseline optimizes
	// exactly Eq. (3); its greedy local search should land in EAS's
	// energy ballpark (either may win by some margin depending on
	// which local optimum each heuristic reaches).
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g, err := tgff.Generate(tgff.Params{
		Name: "nodl", Seed: 3, NumTasks: 80, MaxInDegree: 3,
		LocalityWindow: 12, TaskTypes: 8, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 512, VolumeMax: 8192,
		ControlEdgeFraction: 0.1, DeadlineLaxity: 10, DeadlineFraction: 0,
		Platform: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	easRes, err := eas.Schedule(g, acg, eas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.TotalEnergy() > 1.3*easRes.Schedule.TotalEnergy() {
		t.Errorf("mapping energy %.1f far above EAS %.1f on a deadline-free instance",
			res.Schedule.TotalEnergy(), easRes.Schedule.TotalEnergy())
	}
	// The reported objective must equal the schedule's energy (timing
	// doesn't change Eq. (3)).
	if diff := res.MappingEnergy - res.Schedule.TotalEnergy(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("objective %.3f != schedule energy %.3f", res.MappingEnergy, res.Schedule.TotalEnergy())
	}
}

func TestMapRejectsBadInput(t *testing.T) {
	acg := rig(t)
	g := ctg.New("bad")
	g.AddTask("a", []int64{1}, []float64{1}, ctg.NoDeadline)
	if _, err := Map(g, acg, Options{}); err == nil {
		t.Error("PE mismatch accepted")
	}
}
