package edf

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

func rig(t *testing.T) *energy.ACG {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return acg
}

func het(t *testing.T, g *ctg.Graph, name string, ref int64, deadline int64) ctg.TaskID {
	t.Helper()
	id, err := g.AddTask(name,
		[]int64{ref / 2, ref * 7 / 10, ref, ref * 9 / 5},
		[]float64{float64(ref) * 2.0, float64(ref) * 0.91, float64(ref), float64(ref) * 0.63},
		deadline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestEffectiveDeadlinesPropagation(t *testing.T) {
	g := ctg.New("prop")
	a := het(t, g, "a", 100, ctg.NoDeadline)
	b := het(t, g, "b", 100, ctg.NoDeadline)
	c := het(t, g, "c", 100, 1000)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)

	d, err := EffectiveDeadlines(g)
	if err != nil {
		t.Fatal(err)
	}
	// minExec(c) = 50, so dEff(b) = 950; minExec(b) = 50 -> dEff(a) = 900.
	if d[c] != 1000 || d[b] != 950 || d[a] != 900 {
		t.Errorf("effective deadlines = %v", d)
	}
}

func TestEffectiveDeadlinesMinOverBranches(t *testing.T) {
	g := ctg.New("branch")
	a := het(t, g, "a", 100, ctg.NoDeadline)
	b := het(t, g, "b", 100, 500)
	c := het(t, g, "c", 100, 2000)
	g.AddEdge(a, b, 0)
	g.AddEdge(a, c, 0)
	d, err := EffectiveDeadlines(g)
	if err != nil {
		t.Fatal(err)
	}
	if d[a] != 450 { // min(500-50, 2000-50)
		t.Errorf("dEff[a] = %d, want 450", d[a])
	}
}

func TestEffectiveDeadlinesUnconstrained(t *testing.T) {
	g := ctg.New("free")
	a := het(t, g, "a", 100, ctg.NoDeadline)
	d, err := EffectiveDeadlines(g)
	if err != nil {
		t.Fatal(err)
	}
	if d[a] != ctg.NoDeadline {
		t.Errorf("dEff = %d", d[a])
	}
}

func TestEDFPicksMostUrgent(t *testing.T) {
	// Two independent tasks, very different deadlines, on a platform
	// with a single dominant fast PE. EDF must start the urgent one
	// first on the fastest PE.
	acg := rig(t)
	g := ctg.New("urgent")
	lax := het(t, g, "lax", 100, 100000)
	urg := het(t, g, "urg", 100, 60)
	s, err := Schedule(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Feasible() {
		t.Fatalf("EDF missed a feasible deadline:\n%s", s.Gantt())
	}
	// The urgent task must not start after the lax one on the same PE.
	pu, pl := s.Tasks[urg], s.Tasks[lax]
	if pu.PE == pl.PE && pu.Start > pl.Start {
		t.Errorf("urgent task scheduled after lax one: %+v vs %+v", pu, pl)
	}
}

func TestEDFPerformanceGreedy(t *testing.T) {
	// A single unconstrained task: EDF picks the earliest-finish PE,
	// which is the CPU, regardless of its energy cost.
	acg := rig(t)
	g := ctg.New("greedy")
	id := het(t, g, "a", 100, ctg.NoDeadline)
	s, err := Schedule(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if pe := s.Tasks[id].PE; pe != 0 {
		t.Errorf("task on PE %d, want 0 (cpu-hp)", pe)
	}
}

func TestEDFSchedulesRandomGraphValidly(t *testing.T) {
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g, err := tgff.Generate(tgff.Params{
		Name: "edf-rand", Seed: 11, NumTasks: 120, MaxInDegree: 3,
		LocalityWindow: 16, TaskTypes: 10, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 8192,
		ControlEdgeFraction: 0.1, DeadlineLaxity: 1.4, DeadlineFraction: 1,
		Platform: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Schedule(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid EDF schedule: %v", err)
	}
	if !s.Feasible() {
		t.Error("EDF missed deadlines at laxity 1.4")
	}
}

func TestEDFRejectsBadInput(t *testing.T) {
	acg := rig(t)
	g := ctg.New("bad")
	g.AddTask("a", []int64{1}, []float64{1}, ctg.NoDeadline) // 1 PE vs 4
	if _, err := Schedule(g, acg); err == nil {
		t.Error("PE mismatch accepted")
	}
}

func TestEffectiveDeadlinesCycleRejected(t *testing.T) {
	g := ctg.New("cyc")
	a, _ := g.AddTask("a", []int64{1}, []float64{1}, ctg.NoDeadline)
	b, _ := g.AddTask("b", []int64{1}, []float64{1}, ctg.NoDeadline)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 0)
	if _, err := EffectiveDeadlines(g); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestMinExecSkipsIncapablePEs(t *testing.T) {
	g := ctg.New("cap")
	id, err := g.AddTask("a", []int64{-1, 40, 60, -1}, []float64{0, 1, 1, 0}, ctg.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if got := minExec(g.Task(id)); got != 40 {
		t.Errorf("minExec = %d, want 40", got)
	}
}

func TestEDFValidatesGraph(t *testing.T) {
	acg := rig(t)
	g := ctg.New("cyc")
	a := het(t, g, "a", 10, ctg.NoDeadline)
	b := het(t, g, "b", 10, ctg.NoDeadline)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 0)
	if _, err := Schedule(g, acg); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}
