// Package edf implements the baseline the paper compares against: "a
// standard Earliest Deadline First (EDF) scheduler". It is a
// communication-aware multiprocessor list scheduler — transactions are
// placed on links with the same exact contention model as EAS, so its
// schedules are physically valid — but its decisions are classic EDF:
// the most urgent ready task goes first, onto the PE that finishes it
// earliest, with no regard for energy.
package edf

import (
	"fmt"
	"math"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
)

// Options tune how the EDF baseline evaluates its probes. The zero
// value (read-only probe path, one worker per available CPU) is the
// fast default; every setting produces bit-identical schedules.
type Options struct {
	// Workers caps the probe worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// LegacyProbe routes every F(i,k) probe through the journal-based
	// reserve/rollback path instead of the read-only overlay path. The
	// schedules are identical; the option exists as the performance
	// baseline of cmd/schedbench.
	LegacyProbe bool
	// Telemetry collects scheduler metrics and phase spans; nil (the
	// default) disables all collection. Telemetry never influences
	// scheduling decisions.
	Telemetry *telemetry.Collector
}

// Schedule runs the EDF baseline on graph g against architecture acg
// with default options.
func Schedule(g *ctg.Graph, acg *energy.ACG) (*sched.Schedule, error) {
	return ScheduleOpts(g, acg, Options{})
}

// ScheduleOpts runs the EDF baseline with explicit probe options.
func ScheduleOpts(g *ctg.Graph, acg *energy.ACG, opts Options) (*sched.Schedule, error) {
	return ScheduleWith(sched.NewWorkspace(opts.Workers, opts.LegacyProbe), g, acg, opts)
}

// ScheduleWith runs the EDF baseline through a reusable workspace (see
// eas.ScheduleWith): batch drivers reuse one workspace across many
// instances, amortizing the builder's table and route-cache
// allocations. Schedules are bit-identical to ScheduleOpts'. The
// workspace's pool configuration overrides opts.Workers and
// opts.LegacyProbe.
func ScheduleWith(ws *sched.Workspace, g *ctg.Graph, acg *energy.ACG, opts Options) (*sched.Schedule, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumPEs() != acg.NumPEs() {
		return nil, fmt.Errorf("edf: CTG characterized for %d PEs, platform has %d",
			g.NumPEs(), acg.NumPEs())
	}
	dEff, err := EffectiveDeadlines(g)
	if err != nil {
		return nil, err
	}
	b, pool, err := ws.Prepare(g, acg, "edf")
	if err != nil {
		return nil, err
	}
	b.SetMetrics(sched.NewMetrics(opts.Telemetry.R(), acg.NumPEs()))
	endDrive := opts.Telemetry.T().Span("edf:drive", "edf phases")
	err = Drive(b, pool, dEff)
	endDrive()
	if err != nil {
		return nil, err
	}
	s, err := b.Finish()
	if err != nil {
		return nil, err
	}
	s.Probes = pool.Probes()
	s.Elapsed = time.Since(started)
	sched.PublishSchedule(opts.Telemetry.R(), s)
	return s, nil
}

// Drive runs the EDF decision loop on a prepared builder until every
// task is committed: pick the ready task with the earliest effective
// deadline (ties to the lower task ID), place it on the PE that
// finishes it earliest (ties to the lower PE index). It is shared with
// the EAS scheduler's deadline-first fallback, which is exactly this
// policy on a different builder.
func Drive(b *sched.Builder, pool *sched.ProbePool, dEff []int64) error {
	g := b.Graph()
	var rtl []ctg.TaskID
	for b.Committed() < g.NumTasks() {
		rtl = b.AppendReady(rtl[:0])
		if len(rtl) == 0 {
			return fmt.Errorf("edf: no ready tasks with %d of %d committed",
				b.Committed(), g.NumTasks())
		}
		b.Metrics().ObserveReadyDepth(len(rtl))
		// Earliest effective deadline first; ties to the lower ID.
		pick := rtl[0]
		for _, t := range rtl[1:] {
			if dEff[t] < dEff[pick] {
				pick = t
			}
		}
		best, err := pool.EarliestFinishPE(pick)
		if err != nil {
			return err
		}
		if _, err := b.Commit(pick, best.PE); err != nil {
			return err
		}
	}
	return nil
}

// EffectiveDeadlines propagates specified deadlines backwards through
// the graph so that every task inherits the urgency of its most
// constrained descendant: dEff(t) = min(d(t), min over successors s of
// dEff(s) - minExec(s)). minExec is the optimistic (fastest-PE)
// execution time; communication latency is ignored, as a "standard" EDF
// would. Tasks constrained by no deadline keep ctg.NoDeadline.
func EffectiveDeadlines(g *ctg.Graph) ([]int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	dEff := make([]int64, g.NumTasks())
	for i := range dEff {
		dEff[i] = g.Task(ctg.TaskID(i)).Deadline
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		for _, s := range g.Succ(t) {
			if dEff[s] == ctg.NoDeadline {
				continue
			}
			bound := dEff[s] - minExec(g.Task(s))
			if bound < dEff[t] {
				dEff[t] = bound
			}
		}
	}
	return dEff, nil
}

func minExec(t *ctg.Task) int64 {
	m := int64(math.MaxInt64)
	for _, r := range t.ExecTime {
		if r >= 0 && r < m {
			m = r
		}
	}
	return m
}
