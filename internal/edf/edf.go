// Package edf implements the baseline the paper compares against: "a
// standard Earliest Deadline First (EDF) scheduler". It is a
// communication-aware multiprocessor list scheduler — transactions are
// placed on links with the same exact contention model as EAS, so its
// schedules are physically valid — but its decisions are classic EDF:
// the most urgent ready task goes first, onto the PE that finishes it
// earliest, with no regard for energy.
package edf

import (
	"fmt"
	"math"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
)

// Schedule runs the EDF baseline on graph g against architecture acg.
func Schedule(g *ctg.Graph, acg *energy.ACG) (*sched.Schedule, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumPEs() != acg.NumPEs() {
		return nil, fmt.Errorf("edf: CTG characterized for %d PEs, platform has %d",
			g.NumPEs(), acg.NumPEs())
	}
	dEff, err := EffectiveDeadlines(g)
	if err != nil {
		return nil, err
	}
	b := sched.NewBuilder(g, acg, "edf")
	npe := acg.NumPEs()
	for b.Committed() < g.NumTasks() {
		rtl := b.ReadyTasks()
		if len(rtl) == 0 {
			return nil, fmt.Errorf("edf: no ready tasks with %d of %d committed",
				b.Committed(), g.NumTasks())
		}
		// Earliest effective deadline first; ties to the lower ID.
		pick := rtl[0]
		for _, t := range rtl[1:] {
			if dEff[t] < dEff[pick] {
				pick = t
			}
		}
		// Assign to the PE with the earliest finish (performance
		// greedy, energy oblivious).
		task := g.Task(pick)
		bestPE := -1
		bestFinish := int64(math.MaxInt64)
		for k := 0; k < npe; k++ {
			if !task.RunnableOn(k) {
				continue
			}
			p, err := b.Probe(pick, k)
			if err != nil {
				return nil, err
			}
			if p.Finish < bestFinish {
				bestFinish, bestPE = p.Finish, k
			}
		}
		if bestPE < 0 {
			return nil, fmt.Errorf("edf: task %d runnable on no PE", pick)
		}
		if _, err := b.Commit(pick, bestPE); err != nil {
			return nil, err
		}
	}
	s, err := b.Finish()
	if err != nil {
		return nil, err
	}
	s.Elapsed = time.Since(started)
	return s, nil
}

// EffectiveDeadlines propagates specified deadlines backwards through
// the graph so that every task inherits the urgency of its most
// constrained descendant: dEff(t) = min(d(t), min over successors s of
// dEff(s) - minExec(s)). minExec is the optimistic (fastest-PE)
// execution time; communication latency is ignored, as a "standard" EDF
// would. Tasks constrained by no deadline keep ctg.NoDeadline.
func EffectiveDeadlines(g *ctg.Graph) ([]int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	dEff := make([]int64, g.NumTasks())
	for i := range dEff {
		dEff[i] = g.Task(ctg.TaskID(i)).Deadline
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		for _, s := range g.Succ(t) {
			if dEff[s] == ctg.NoDeadline {
				continue
			}
			bound := dEff[s] - minExec(g.Task(s))
			if bound < dEff[t] {
				dEff[t] = bound
			}
		}
	}
	return dEff, nil
}

func minExec(t *ctg.Task) int64 {
	m := int64(math.MaxInt64)
	for _, r := range t.ExecTime {
		if r >= 0 && r < m {
			m = r
		}
	}
	return m
}
