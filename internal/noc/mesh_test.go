package noc

import (
	"testing"
	"testing/quick"
)

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(0, 4, RouteXY); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewMesh(4, -1, RouteXY); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := NewMesh(2, 2, RoutingScheme(42)); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestMeshStructure(t *testing.T) {
	m := mustMesh(t, 4, 3, RouteXY)
	if m.NumTiles() != 12 {
		t.Errorf("NumTiles = %d", m.NumTiles())
	}
	// Directed links: horizontal 2*(w-1)*h = 18, vertical 2*w*(h-1) = 16.
	if m.NumLinks() != 34 {
		t.Errorf("NumLinks = %d, want 34", m.NumLinks())
	}
	// Coordinate round trip.
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			id := m.TileAt(x, y)
			gx, gy := m.Coords(id)
			if gx != x || gy != y {
				t.Errorf("Coords(TileAt(%d,%d)) = (%d,%d)", x, y, gx, gy)
			}
		}
	}
	// Every link connects Manhattan-adjacent tiles.
	for i := 0; i < m.NumLinks(); i++ {
		l := m.Link(LinkID(i))
		fx, fy := m.Coords(l.From)
		tx, ty := m.Coords(l.To)
		if abs(fx-tx)+abs(fy-ty) != 1 {
			t.Errorf("link %d connects non-adjacent tiles %v->%v", i, l.From, l.To)
		}
	}
}

func TestXYRouteShape(t *testing.T) {
	m := mustMesh(t, 4, 4, RouteXY)
	// From (0,0) to (2,3): XY goes east twice, then north three times.
	route, err := m.Route(m.TileAt(0, 0), m.TileAt(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 5 {
		t.Fatalf("route length %d, want 5", len(route))
	}
	// The first two hops must change x only.
	for i, lid := range route {
		l := m.Link(lid)
		fx, fy := m.Coords(l.From)
		tx, ty := m.Coords(l.To)
		if i < 2 {
			if fy != ty || tx != fx+1 {
				t.Errorf("hop %d not an eastward X move: (%d,%d)->(%d,%d)", i, fx, fy, tx, ty)
			}
		} else {
			if fx != tx || ty != fy+1 {
				t.Errorf("hop %d not a northward Y move: (%d,%d)->(%d,%d)", i, fx, fy, tx, ty)
			}
		}
	}
}

func TestYXRouteShape(t *testing.T) {
	m := mustMesh(t, 4, 4, RouteYX)
	route, err := m.Route(m.TileAt(0, 0), m.TileAt(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 5 {
		t.Fatalf("route length %d, want 5", len(route))
	}
	l := m.Link(route[0])
	fx, fy := m.Coords(l.From)
	tx, ty := m.Coords(l.To)
	if fx != tx || ty != fy+1 {
		t.Errorf("YX routing must move in Y first: (%d,%d)->(%d,%d)", fx, fy, tx, ty)
	}
}

func TestRouteSelfAndErrors(t *testing.T) {
	m := mustMesh(t, 2, 2, RouteXY)
	r, err := m.Route(1, 1)
	if err != nil || len(r) != 0 {
		t.Errorf("self route = %v, %v", r, err)
	}
	if _, err := m.Route(-1, 0); err == nil {
		t.Error("negative tile accepted")
	}
	if _, err := m.Route(0, 99); err == nil {
		t.Error("out-of-range tile accepted")
	}
	if m.Hops(2, 2) != 0 {
		t.Error("Hops(self) != 0")
	}
}

func TestHopsIsManhattanPlusOne(t *testing.T) {
	m := mustMesh(t, 4, 4, RouteXY)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			sx, sy := m.Coords(TileID(s))
			dx, dy := m.Coords(TileID(d))
			want := abs(dx-sx) + abs(dy-sy) + 1
			if got := m.Hops(TileID(s), TileID(d)); got != want {
				t.Errorf("Hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

// Property: for random mesh sizes and tile pairs, the XY route is
// contiguous (each link starts where the previous ended), starts at src,
// ends at dst, and has length Hops-1.
func TestQuickRouteContiguity(t *testing.T) {
	f := func(w8, h8, s16, d16 uint8, yx bool) bool {
		w := int(w8%6) + 1
		h := int(h8%6) + 1
		scheme := RouteXY
		if yx {
			scheme = RouteYX
		}
		m := mustMesh(t, w, h, scheme)
		src := TileID(int(s16) % m.NumTiles())
		dst := TileID(int(d16) % m.NumTiles())
		route, err := m.Route(src, dst)
		if err != nil {
			return false
		}
		if src == dst {
			return len(route) == 0
		}
		if len(route) != m.Hops(src, dst)-1 {
			return false
		}
		cur := src
		for _, lid := range route {
			l := m.Link(lid)
			if l.From != cur {
				return false
			}
			cur = l.To
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteIntersects(t *testing.T) {
	if RouteIntersects(nil, []LinkID{1}) {
		t.Error("empty route intersects")
	}
	if !RouteIntersects([]LinkID{1, 2, 3}, []LinkID{5, 3}) {
		t.Error("shared link 3 not detected")
	}
	if RouteIntersects([]LinkID{1, 2}, []LinkID{3, 4}) {
		t.Error("disjoint routes reported intersecting")
	}
}
