package noc

import "testing"

// mustMesh is the test-side replacement for the removed MustMesh
// constructor: geometry errors fail the test instead of panicking.
func mustMesh(t *testing.T, width, height int, scheme RoutingScheme) *Mesh {
	t.Helper()
	m, err := NewMesh(width, height, scheme)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDegradedPreservesIntactRoutes(t *testing.T) {
	m := mustMesh(t, 4, 4, RouteXY)
	// Kill one link far away from the 0 -> 3 XY route (the link between
	// tiles 12 and 13 on the top row).
	l, err := m.LinkBetween(12, 13)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDegradedTopology(m, nil, []LinkID{l})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.UnreachablePairs(); len(got) != 0 {
		t.Fatalf("one dead mesh link must not disconnect anything, got %v", got)
	}
	want, err := m.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("intact pair rerouted: got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intact pair deviates from base XY route at hop %d", i)
		}
	}
	if d.Hops(0, 3) != m.Hops(0, 3) {
		t.Fatalf("intact pair hops %d, want base %d", d.Hops(0, 3), m.Hops(0, 3))
	}
}

func TestDegradedReroutesAroundDeadLink(t *testing.T) {
	m := mustMesh(t, 4, 4, RouteXY)
	// Kill the first link of the 0 -> 3 XY route (0 -> 1 eastbound).
	l, err := m.LinkBetween(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDegradedTopology(m, nil, []LinkID{l})
	if err != nil {
		t.Fatal(err)
	}
	route, err := d.Route(0, 3)
	if err != nil {
		t.Fatalf("severed pair must reroute, got error: %v", err)
	}
	if len(route) == 0 {
		t.Fatal("empty reroute")
	}
	cur := TileID(0)
	for _, id := range route {
		if id == l {
			t.Fatal("reroute uses the dead link")
		}
		link := d.Link(id)
		if link.From != cur {
			t.Fatalf("discontinuous route at link %d: from %d, at %d", id, link.From, cur)
		}
		cur = link.To
	}
	if cur != 3 {
		t.Fatalf("route ends at %d, want 3", cur)
	}
	// Shortest detour on a mesh adds exactly 2 links (down, across, up).
	if want := 5; len(route) != want {
		t.Fatalf("detour length %d, want %d", len(route), want)
	}
	if d.Hops(0, 3) != len(route)+1 {
		t.Fatalf("Hops %d inconsistent with route length %d", d.Hops(0, 3), len(route))
	}
}

func TestDegradedDeadRouter(t *testing.T) {
	m := mustMesh(t, 3, 3, RouteXY)
	// Kill the center router (tile 4). All alive pairs must still
	// route — around the center — and routes to/from the center fail.
	d, err := NewDegradedTopology(m, []TileID{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.UnreachablePairs(); len(got) != 0 {
		t.Fatalf("alive pairs disconnected: %v", got)
	}
	if !d.DeadRouter(4) || d.DeadRouter(3) {
		t.Fatal("DeadRouter bookkeeping wrong")
	}
	for src := TileID(0); src < 9; src++ {
		for dst := TileID(0); dst < 9; dst++ {
			route, err := d.Route(src, dst)
			switch {
			case src == 4 || dst == 4:
				if src != dst && err == nil {
					t.Fatalf("route %d->%d through dead endpoint succeeded", src, dst)
				}
				continue
			case err != nil:
				t.Fatalf("alive pair %d->%d unroutable: %v", src, dst, err)
			}
			for _, id := range route {
				link := d.Link(id)
				if link.From == 4 || link.To == 4 {
					t.Fatalf("route %d->%d transits the dead router", src, dst)
				}
			}
		}
	}
	if d.Hops(0, 4) != -1 || d.Hops(4, 8) != -1 {
		t.Fatal("pairs involving the dead router must report Hops -1")
	}
	// The 0 -> 8 XY route (east, east, north, north) transits tile 2,
	// not the center: it must survive verbatim.
	want, _ := m.Route(0, 8)
	got, err := d.Route(0, 8)
	if err != nil || len(got) != len(want) {
		t.Fatalf("0->8 should keep its base route: %v vs %v (err %v)", got, want, err)
	}
}

func TestDegradedDisconnection(t *testing.T) {
	m := mustMesh(t, 3, 1, RouteXY)
	// Cut both directions between tiles 0 and 1: tile 0 is alive but
	// unreachable.
	l01, _ := m.LinkBetween(0, 1)
	l10, _ := m.LinkBetween(1, 0)
	d, err := NewDegradedTopology(m, nil, []LinkID{l01, l10})
	if err != nil {
		t.Fatal(err)
	}
	pairs := d.UnreachablePairs()
	if len(pairs) != 4 { // 0->1, 0->2, 1->0, 2->0
		t.Fatalf("unreachable pairs = %v, want 4 entries", pairs)
	}
	if _, err := d.Route(0, 2); err == nil {
		t.Fatal("disconnected pair routed")
	}
}

func TestDegradedRejectsBadIDs(t *testing.T) {
	m := mustMesh(t, 2, 2, RouteXY)
	if _, err := NewDegradedTopology(m, []TileID{99}, nil); err == nil {
		t.Fatal("out-of-range router accepted")
	}
	if _, err := NewDegradedTopology(m, nil, []LinkID{-1}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if _, err := NewDegradedTopology(nil, nil, nil); err == nil {
		t.Fatal("nil base accepted")
	}
}

func TestDegradedNoFaultsEqualsBase(t *testing.T) {
	m := mustMesh(t, 4, 3, RouteXY)
	d, err := NewDegradedTopology(m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for src := TileID(0); src < TileID(m.NumTiles()); src++ {
		for dst := TileID(0); dst < TileID(m.NumTiles()); dst++ {
			want, _ := m.Route(src, dst)
			got, err := d.Route(src, dst)
			if err != nil {
				t.Fatalf("route %d->%d: %v", src, dst, err)
			}
			if len(got) != len(want) {
				t.Fatalf("route %d->%d differs from base", src, dst)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("route %d->%d deviates at hop %d", src, dst, i)
				}
			}
			if d.Hops(src, dst) != m.Hops(src, dst) {
				t.Fatalf("hops %d->%d differ", src, dst)
			}
		}
	}
}
