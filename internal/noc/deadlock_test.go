package noc

import "testing"

func TestMeshRoutingDeadlockFree(t *testing.T) {
	// Dimension-ordered routing on meshes is the textbook
	// deadlock-free case, in both orders.
	for _, scheme := range []RoutingScheme{RouteXY, RouteYX} {
		m := mustMesh(t, 4, 4, scheme)
		report, err := CheckDeadlockFree(m)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Free {
			t.Errorf("%s reported deadlock cycle %v", m.Name(), report.Cycle)
		}
		if report.Dependencies == 0 {
			t.Errorf("%s: no dependencies analyzed", m.Name())
		}
	}
}

func TestTorusRoutingHasCDGCycles(t *testing.T) {
	// Wrap-around rings without virtual channels violate the Dally &
	// Seitz condition: the checker must find a cycle.
	tor, err := NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	report, err := CheckDeadlockFree(tor)
	if err != nil {
		t.Fatal(err)
	}
	if report.Free {
		t.Fatal("torus wrap routing reported deadlock-free")
	}
	if len(report.Cycle) < 2 {
		t.Fatalf("degenerate cycle %v", report.Cycle)
	}
	// The reported cycle must be a real CDG cycle: consecutive links
	// chain head-to-tail through some route. Verify each consecutive
	// pair is physically chainable (link i ends where link i+1 starts).
	for i := range report.Cycle {
		cur := tor.Link(report.Cycle[i])
		next := tor.Link(report.Cycle[(i+1)%len(report.Cycle)])
		if cur.To != next.From {
			t.Errorf("cycle hop %d not chainable: %v -> %v", i, cur, next)
		}
	}
}

func TestRingRoutingHasCDGCycles(t *testing.T) {
	// A unidirectional ring is the minimal deadlocking example.
	adj := [][]TileID{{1}, {2}, {3}, {0}}
	ring, err := NewGraphTopology("ring4", adj)
	if err != nil {
		t.Fatal(err)
	}
	report, err := CheckDeadlockFree(ring)
	if err != nil {
		t.Fatal(err)
	}
	if report.Free {
		t.Fatal("unidirectional ring reported deadlock-free")
	}
}

func TestLinearArrayDeadlockFree(t *testing.T) {
	// A 1xN mesh (linear array) trivially satisfies the condition.
	m := mustMesh(t, 6, 1, RouteXY)
	report, err := CheckDeadlockFree(m)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Free {
		t.Errorf("linear array cycle: %v", report.Cycle)
	}
}

func TestHoneycombDeadlockReportConsistent(t *testing.T) {
	// BFS shortest-path routing on the honeycomb may or may not be
	// cycle-free; whatever the verdict, the report must be internally
	// consistent (cycle chainable when present).
	h, err := NewHoneycomb(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	report, err := CheckDeadlockFree(h)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Free {
		for i := range report.Cycle {
			cur := h.Link(report.Cycle[i])
			next := h.Link(report.Cycle[(i+1)%len(report.Cycle)])
			if cur.To != next.From {
				t.Errorf("cycle hop %d not chainable", i)
			}
		}
	}
}
