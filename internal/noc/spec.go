package noc

import (
	"encoding/json"
	"fmt"
	"io"
)

// PlatformSpec is the JSON description of a platform, for CLI use:
//
//	{
//	  "topology": "mesh",            // mesh | torus | honeycomb
//	  "width": 4, "height": 4,
//	  "routing": "xy",               // xy | yx (mesh only)
//	  "bandwidth": 256,              // bits per time unit
//	  "classes": [                   // optional; cycled over tiles.
//	    {"name": "cpu-hp", "speed": 0.5, "power": 4.0},
//	    {"name": "arm-lp", "speed": 1.8, "power": 0.35}
//	  ]
//	}
//
// An omitted classes list selects the standard heterogeneous library.
type PlatformSpec struct {
	Topology  string      `json:"topology"`
	Width     int         `json:"width"`
	Height    int         `json:"height"`
	Routing   string      `json:"routing,omitempty"`
	Bandwidth int64       `json:"bandwidth"`
	Classes   []ClassSpec `json:"classes,omitempty"`
}

// ClassSpec is one PE class row of a PlatformSpec.
type ClassSpec struct {
	Name  string  `json:"name"`
	Speed float64 `json:"speed"`
	Power float64 `json:"power"`
}

// Build constructs the platform the spec describes.
func (spec *PlatformSpec) Build() (*Platform, error) {
	var (
		topo Topology
		err  error
	)
	scheme := RouteXY
	switch spec.Routing {
	case "", "xy":
	case "yx":
		scheme = RouteYX
	default:
		return nil, fmt.Errorf("noc: spec: unknown routing %q", spec.Routing)
	}
	switch spec.Topology {
	case "", "mesh":
		topo, err = NewMesh(spec.Width, spec.Height, scheme)
	case "torus":
		if spec.Routing == "yx" {
			return nil, fmt.Errorf("noc: spec: torus supports xy routing only")
		}
		topo, err = NewTorus(spec.Width, spec.Height)
	case "honeycomb":
		if spec.Routing == "yx" {
			return nil, fmt.Errorf("noc: spec: honeycomb has no yx routing")
		}
		topo, err = NewHoneycomb(spec.Width, spec.Height)
	default:
		return nil, fmt.Errorf("noc: spec: unknown topology %q", spec.Topology)
	}
	if err != nil {
		return nil, err
	}
	lib := StandardClasses
	if len(spec.Classes) > 0 {
		lib = make([]PEClass, len(spec.Classes))
		for i, c := range spec.Classes {
			lib[i] = PEClass{Name: c.Name, SpeedFactor: c.Speed, PowerFactor: c.Power}
		}
	}
	classes := make([]PEClass, topo.NumTiles())
	for i := range classes {
		classes[i] = lib[i%len(lib)]
	}
	return NewPlatform(topo, classes, spec.Bandwidth)
}

// ReadPlatformSpec decodes and builds a platform from JSON.
func ReadPlatformSpec(r io.Reader) (*Platform, error) {
	var spec PlatformSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("noc: spec: decode: %w", err)
	}
	return spec.Build()
}
