package noc

import (
	"testing"
	"testing/quick"
)

func TestGraphTopologyErrors(t *testing.T) {
	if _, err := NewGraphTopology("empty", nil); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := NewGraphTopology("self", [][]TileID{{0}}); err == nil {
		t.Error("self-link accepted")
	}
	if _, err := NewGraphTopology("oob", [][]TileID{{5}, {0}}); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	// Disconnected: 0->1 but no way back.
	if _, err := NewGraphTopology("oneway", [][]TileID{{1}, nil}); err == nil {
		t.Error("unreachable pair accepted")
	}
}

func TestGraphTopologyRing(t *testing.T) {
	// A directed 4-ring: 0->1->2->3->0.
	adj := [][]TileID{{1}, {2}, {3}, {0}}
	g, err := NewGraphTopology("ring4", adj)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 4 {
		t.Fatalf("NumLinks = %d", g.NumLinks())
	}
	// 0 -> 3 must go the long way: 3 links, 4 routers.
	route, err := g.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 3 || g.Hops(0, 3) != 4 {
		t.Errorf("route len %d hops %d", len(route), g.Hops(0, 3))
	}
}

func TestGraphTopologyDeterministicTieBreak(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3, both paths length 2. The next hop from
	// 0 toward 3 must always be tile 1 (lowest ID).
	adj := [][]TileID{{1, 2}, {3, 0}, {3, 0}, {1, 2}}
	g, err := NewGraphTopology("diamond", adj)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		route, err := g.Route(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if first := g.Link(route[0]).To; first != 1 {
			t.Fatalf("tie-break chose tile %d, want 1", first)
		}
	}
}

func TestHoneycombStructure(t *testing.T) {
	h, err := NewHoneycomb(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumTiles() != 16 {
		t.Fatalf("NumTiles = %d", h.NumTiles())
	}
	// Honeycomb degree is at most 3 (east, west, one vertical).
	outDeg := make(map[TileID]int)
	for i := 0; i < h.NumLinks(); i++ {
		outDeg[h.Link(LinkID(i)).From]++
	}
	for tile, d := range outDeg {
		if d > 3 {
			t.Errorf("tile %d has degree %d > 3", tile, d)
		}
	}
	// All pairs routable with contiguous routes matching Hops.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			route, err := h.Route(TileID(s), TileID(d))
			if err != nil {
				t.Fatalf("route %d->%d: %v", s, d, err)
			}
			if s == d {
				if len(route) != 0 {
					t.Fatalf("self route non-empty")
				}
				continue
			}
			if len(route) != h.Hops(TileID(s), TileID(d))-1 {
				t.Fatalf("route %d->%d: len %d, hops %d", s, d, len(route), h.Hops(TileID(s), TileID(d)))
			}
			cur := TileID(s)
			for _, lid := range route {
				l := h.Link(lid)
				if l.From != cur {
					t.Fatalf("route %d->%d not contiguous", s, d)
				}
				cur = l.To
			}
			if cur != TileID(d) {
				t.Fatalf("route %d->%d ends at %d", s, d, cur)
			}
		}
	}
	if _, err := NewHoneycomb(1, 4); err == nil {
		t.Error("degenerate honeycomb accepted")
	}
}

// Property: honeycomb hop counts are at least the mesh-free lower bound
// (straight-line steps) and routes are shortest (hops equals BFS depth,
// checked indirectly by len(route)+1 == Hops which NewGraphTopology
// guarantees only if the next-hop tables are consistent).
func TestQuickHoneycombRoutes(t *testing.T) {
	f := func(c8, r8, s16, d16 uint8) bool {
		cols := int(c8%4) + 2
		rows := int(r8%4) + 1
		h, err := NewHoneycomb(cols, rows)
		if err != nil {
			return false
		}
		n := h.NumTiles()
		src := TileID(int(s16) % n)
		dst := TileID(int(d16) % n)
		route, err := h.Route(src, dst)
		if err != nil {
			return false
		}
		if src == dst {
			return len(route) == 0 && h.Hops(src, dst) == 0
		}
		return len(route)+1 == h.Hops(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
