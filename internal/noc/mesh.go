package noc

import "fmt"

// RoutingScheme selects one of the deterministic dimension-ordered
// routing functions supported by Mesh.
type RoutingScheme int

const (
	// RouteXY routes packets fully along the X dimension first, then
	// along Y. This is the scheme the paper uses ("for the sake of
	// simplicity, the XY routing scheme is used").
	RouteXY RoutingScheme = iota
	// RouteYX routes along Y first, then X. Deadlock-free like XY and
	// useful for ablating the routing-scheme sensitivity of the
	// scheduler.
	RouteYX
)

// String returns "xy" or "yx".
func (s RoutingScheme) String() string {
	switch s {
	case RouteXY:
		return "xy"
	case RouteYX:
		return "yx"
	default:
		return fmt.Sprintf("routing(%d)", int(s))
	}
}

// Mesh is a Width x Height 2-D mesh of tiles with minimal
// dimension-ordered routing. Tile (x, y) has ID y*Width + x; x grows
// eastward, y grows northward, matching the paper's Fig. 1 coordinates
// (row, column) = (y, x).
type Mesh struct {
	width, height int
	scheme        RoutingScheme

	links []Link
	// linkAt[from][to] for adjacent pairs; -1 otherwise.
	linkIndex map[[2]TileID]LinkID
}

// NewMesh builds a width x height mesh with the given routing scheme.
func NewMesh(width, height int, scheme RoutingScheme) (*Mesh, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("noc: invalid mesh dimensions %dx%d", width, height)
	}
	if scheme != RouteXY && scheme != RouteYX {
		return nil, fmt.Errorf("noc: unknown routing scheme %v", scheme)
	}
	m := &Mesh{
		width:     width,
		height:    height,
		scheme:    scheme,
		linkIndex: make(map[[2]TileID]LinkID),
	}
	addLink := func(from, to TileID) {
		id := LinkID(len(m.links))
		m.links = append(m.links, Link{ID: id, From: from, To: to})
		m.linkIndex[[2]TileID{from, to}] = id
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			from := m.TileAt(x, y)
			if x+1 < width {
				addLink(from, m.TileAt(x+1, y))
				addLink(m.TileAt(x+1, y), from)
			}
			if y+1 < height {
				addLink(from, m.TileAt(x, y+1))
				addLink(m.TileAt(x, y+1), from)
			}
		}
	}
	return m, nil
}

// Name implements Topology.
func (m *Mesh) Name() string {
	return fmt.Sprintf("mesh%dx%d-%s", m.width, m.height, m.scheme)
}

// Width returns the mesh width (number of columns).
func (m *Mesh) Width() int { return m.width }

// Height returns the mesh height (number of rows).
func (m *Mesh) Height() int { return m.height }

// Scheme returns the mesh's routing scheme.
func (m *Mesh) Scheme() RoutingScheme { return m.scheme }

// NumTiles implements Topology.
func (m *Mesh) NumTiles() int { return m.width * m.height }

// NumLinks implements Topology.
func (m *Mesh) NumLinks() int { return len(m.links) }

// Link implements Topology.
func (m *Mesh) Link(id LinkID) Link { return m.links[id] }

// TileAt returns the ID of the tile at column x, row y.
func (m *Mesh) TileAt(x, y int) TileID { return TileID(y*m.width + x) }

// Coords returns the (x, y) coordinates of tile id.
func (m *Mesh) Coords(id TileID) (x, y int) {
	return int(id) % m.width, int(id) / m.width
}

// LinkBetween returns the directed link from one tile to an adjacent
// tile, or an error if the tiles are not neighbors.
func (m *Mesh) LinkBetween(from, to TileID) (LinkID, error) {
	if id, ok := m.linkIndex[[2]TileID{from, to}]; ok {
		return id, nil
	}
	return -1, fmt.Errorf("noc: %s: no link %d->%d", m.Name(), from, to)
}

// Route implements Topology using minimal dimension-ordered routing.
func (m *Mesh) Route(src, dst TileID) ([]LinkID, error) {
	if err := checkTile(src, m.NumTiles(), m.Name()); err != nil {
		return nil, err
	}
	if err := checkTile(dst, m.NumTiles(), m.Name()); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, nil
	}
	sx, sy := m.Coords(src)
	dx, dy := m.Coords(dst)
	route := make([]LinkID, 0, abs(dx-sx)+abs(dy-sy))
	x, y := sx, sy
	stepX := func() error {
		for x != dx {
			nx := x + sign(dx-x)
			id, err := m.LinkBetween(m.TileAt(x, y), m.TileAt(nx, y))
			if err != nil {
				return err
			}
			route = append(route, id)
			x = nx
		}
		return nil
	}
	stepY := func() error {
		for y != dy {
			ny := y + sign(dy-y)
			id, err := m.LinkBetween(m.TileAt(x, y), m.TileAt(x, ny))
			if err != nil {
				return err
			}
			route = append(route, id)
			y = ny
		}
		return nil
	}
	var err error
	if m.scheme == RouteXY {
		if err = stepX(); err == nil {
			err = stepY()
		}
	} else {
		if err = stepY(); err == nil {
			err = stepX()
		}
	}
	if err != nil {
		return nil, err
	}
	return route, nil
}

// Hops implements Topology: the Manhattan distance plus one (source and
// destination routers are both traversed), or 0 for src == dst.
func (m *Mesh) Hops(src, dst TileID) int {
	if src == dst {
		return 0
	}
	sx, sy := m.Coords(src)
	dx, dy := m.Coords(dst)
	return abs(dx-sx) + abs(dy-sy) + 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
