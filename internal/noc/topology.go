// Package noc models the target Network-on-Chip architecture of the
// paper: a set of tiles, each holding one processing element (PE) and one
// router, interconnected by directed links, with a deterministic routing
// function. The reference platform is the n x n 2-D mesh with XY routing
// (Sec. 3.1); the honeycomb topology sketched as future work in the
// paper's conclusion is provided as well, as is YX routing, to exercise
// the "other deterministic routing schemes" extension point.
package noc

import "fmt"

// TileID identifies a tile (and therefore its PE and router). IDs are
// dense in [0, NumTiles).
type TileID int

// LinkID identifies a directed inter-tile link. IDs are dense in
// [0, NumLinks).
type LinkID int

// Link is a directed physical channel between the routers of two
// adjacent tiles.
type Link struct {
	ID   LinkID
	From TileID
	To   TileID
}

// Topology describes the tile interconnect and its deterministic routing
// function. Implementations must be immutable after construction and safe
// for concurrent readers.
type Topology interface {
	// Name identifies the topology (for reports), e.g. "mesh4x4-xy".
	Name() string

	// NumTiles returns the number of tiles.
	NumTiles() int

	// NumLinks returns the number of directed links.
	NumLinks() int

	// Link returns the directed link with the given ID.
	Link(LinkID) Link

	// Route returns the ordered sequence of link IDs a packet from src
	// to dst traverses under the topology's deterministic routing
	// function. The route is empty when src == dst (intra-tile
	// communication never enters the network).
	Route(src, dst TileID) ([]LinkID, error)

	// Hops returns n_hops of the paper's Eq. (2): the number of
	// routers a bit passes on its way from src to dst. For a minimal
	// route it equals len(Route(src,dst))+1; it is 0 when src == dst.
	Hops(src, dst TileID) int
}

// checkTile validates a tile ID against a tile count.
func checkTile(id TileID, n int, topo string) error {
	if id < 0 || int(id) >= n {
		return fmt.Errorf("noc: %s: tile %d out of range [0,%d)", topo, id, n)
	}
	return nil
}

// RouteIntersects reports whether two routes (ordered link-ID slices)
// share at least one directed link. It implements the "routing paths
// intersect" half of the paper's Definition 3 (transaction compatibility).
func RouteIntersects(a, b []LinkID) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := make(map[LinkID]struct{}, len(a))
	for _, l := range a {
		set[l] = struct{}{}
	}
	for _, l := range b {
		if _, ok := set[l]; ok {
			return true
		}
	}
	return false
}
