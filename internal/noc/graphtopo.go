package noc

import (
	"fmt"
	"sort"
)

// GraphTopology is an arbitrary tile interconnect with deterministic
// shortest-path routing. Routes are precomputed with breadth-first
// search; ties between equal-length paths are broken toward the
// lowest-numbered next-hop tile, so the routing function is a pure
// function of (current, destination) — exactly the class of
// deterministic routing schemes the paper's algorithm supports.
//
// It is the extension point the paper's conclusion calls for: "our
// algorithm can be adapted to other regular architectures with different
// network topologies or different deterministic routing schemes".
type GraphTopology struct {
	name  string
	n     int
	links []Link
	// nextHop[src*n+dst] is the link to take at src toward dst, or -1.
	nextHop []LinkID
	// hops[src*n+dst] is n_hops (routers traversed), or -1 if
	// unreachable.
	hops []int
}

// NewGraphTopology builds a topology from a directed adjacency list:
// adj[i] lists the tiles reachable from tile i over one link. The
// adjacency is used as given (callers wanting bidirectional channels
// list both directions). Every tile must be able to reach every other
// tile, otherwise an error is returned.
func NewGraphTopology(name string, adj [][]TileID) (*GraphTopology, error) {
	n := len(adj)
	if n == 0 {
		return nil, fmt.Errorf("noc: %s: empty topology", name)
	}
	g := &GraphTopology{
		name:    name,
		n:       n,
		nextHop: make([]LinkID, n*n),
		hops:    make([]int, n*n),
	}
	linkAt := make(map[[2]TileID]LinkID)
	for from, outs := range adj {
		// Deterministic link numbering: sorted neighbor order.
		sorted := append([]TileID(nil), outs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, to := range sorted {
			if err := checkTile(to, n, name); err != nil {
				return nil, err
			}
			if TileID(from) == to {
				return nil, fmt.Errorf("noc: %s: self-link on tile %d", name, from)
			}
			key := [2]TileID{TileID(from), to}
			if _, dup := linkAt[key]; dup {
				continue // collapse duplicate adjacency entries
			}
			id := LinkID(len(g.links))
			g.links = append(g.links, Link{ID: id, From: TileID(from), To: to})
			linkAt[key] = id
		}
	}
	// Reverse-BFS from every destination to fill next-hop tables. At
	// each settled tile we know the distance to dst; a tile's next hop
	// is its lowest-numbered neighbor whose distance is one less.
	succ := make([][]TileID, n)
	for _, l := range g.links {
		succ[l.From] = append(succ[l.From], l.To)
	}
	pred := make([][]TileID, n)
	for _, l := range g.links {
		pred[l.To] = append(pred[l.To], l.From)
	}
	dist := make([]int, n)
	for dst := 0; dst < n; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue := []TileID{TileID(dst)}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, p := range pred[cur] {
				if dist[p] < 0 {
					dist[p] = dist[cur] + 1
					queue = append(queue, p)
				}
			}
		}
		for src := 0; src < n; src++ {
			idx := src*n + dst
			g.nextHop[idx] = -1
			if src == dst {
				g.hops[idx] = 0
				continue
			}
			if dist[src] < 0 {
				g.hops[idx] = -1
				return nil, fmt.Errorf("noc: %s: tile %d cannot reach tile %d", name, src, dst)
			}
			// n_hops counts routers: links on the path + 1.
			g.hops[idx] = dist[src] + 1
			best := TileID(-1)
			for _, nb := range succ[src] {
				if dist[nb] == dist[src]-1 && (best < 0 || nb < best) {
					best = nb
				}
			}
			g.nextHop[idx] = linkAt[[2]TileID{TileID(src), best}]
		}
	}
	return g, nil
}

// Name implements Topology.
func (g *GraphTopology) Name() string { return g.name }

// NumTiles implements Topology.
func (g *GraphTopology) NumTiles() int { return g.n }

// NumLinks implements Topology.
func (g *GraphTopology) NumLinks() int { return len(g.links) }

// Link implements Topology.
func (g *GraphTopology) Link(id LinkID) Link { return g.links[id] }

// Route implements Topology by following the precomputed next-hop table.
func (g *GraphTopology) Route(src, dst TileID) ([]LinkID, error) {
	if err := checkTile(src, g.n, g.name); err != nil {
		return nil, err
	}
	if err := checkTile(dst, g.n, g.name); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, nil
	}
	var route []LinkID
	cur := src
	for cur != dst {
		l := g.nextHop[int(cur)*g.n+int(dst)]
		if l < 0 {
			return nil, fmt.Errorf("noc: %s: no route %d->%d", g.name, src, dst)
		}
		route = append(route, l)
		cur = g.links[l].To
	}
	return route, nil
}

// Hops implements Topology.
func (g *GraphTopology) Hops(src, dst TileID) int {
	return g.hops[int(src)*g.n+int(dst)]
}

// NewHoneycomb builds the honeycomb (hexagonal-lattice) topology the
// paper's conclusion names as a candidate extension, in its standard
// brick-wall embedding: tiles form a cols x rows grid; every tile links
// to its east and west neighbors, and to exactly one vertical neighbor —
// upward when (x+y) is even, downward when odd — giving each interior
// tile degree 3. All channels are bidirectional.
func NewHoneycomb(cols, rows int) (*GraphTopology, error) {
	if cols < 2 || rows < 1 {
		return nil, fmt.Errorf("noc: invalid honeycomb dimensions %dx%d", cols, rows)
	}
	n := cols * rows
	adj := make([][]TileID, n)
	at := func(x, y int) TileID { return TileID(y*cols + x) }
	connect := func(a, b TileID) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if x+1 < cols {
				connect(at(x, y), at(x+1, y))
			}
			if (x+y)%2 == 0 && y+1 < rows {
				connect(at(x, y), at(x, y+1))
			}
		}
	}
	return NewGraphTopology(fmt.Sprintf("honeycomb%dx%d", cols, rows), adj)
}
