package noc

import (
	"testing"
	"testing/quick"
)

func TestNewTorusValidation(t *testing.T) {
	if _, err := NewTorus(2, 3); err == nil {
		t.Error("degenerate torus accepted")
	}
	if _, err := NewTorus(3, 2); err == nil {
		t.Error("degenerate torus accepted")
	}
}

func TestTorusStructure(t *testing.T) {
	tor, err := NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tor.NumTiles() != 16 {
		t.Errorf("NumTiles = %d", tor.NumTiles())
	}
	// Every tile has 4 outgoing links (E, W, N, S with wrap): 64 total.
	if tor.NumLinks() != 64 {
		t.Errorf("NumLinks = %d, want 64", tor.NumLinks())
	}
}

func TestTorusWrapAroundShortens(t *testing.T) {
	tor, _ := NewTorus(4, 4)
	// (0,0) to (3,0): 1 hop west via wrap, not 3 east.
	route, err := tor.Route(tor.TileAt(0, 0), tor.TileAt(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 1 {
		t.Errorf("wrap route length %d, want 1", len(route))
	}
	if tor.Hops(tor.TileAt(0, 0), tor.TileAt(3, 0)) != 2 {
		t.Errorf("wrap hops = %d, want 2", tor.Hops(0, 3))
	}
	// Maximum distance on a 4x4 torus is 2+2.
	if got := tor.Hops(tor.TileAt(0, 0), tor.TileAt(2, 2)); got != 5 {
		t.Errorf("diagonal hops = %d, want 5", got)
	}
}

func TestTorusTieBreakDeterministic(t *testing.T) {
	tor, _ := NewTorus(4, 4)
	// Distance 2 both ways around: ties go positive. (0,0)->(2,0)
	// must route east.
	route, err := tor.Route(tor.TileAt(0, 0), tor.TileAt(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	first := tor.Link(route[0])
	if first.To != tor.TileAt(1, 0) {
		t.Errorf("tie-break direction: first hop to tile %d", first.To)
	}
}

// Property: torus routes are contiguous, minimal (length == Hops-1) and
// XY-ordered (all X moves precede all Y moves).
func TestQuickTorusRoutes(t *testing.T) {
	f := func(w8, h8, s8, d8 uint8) bool {
		w := int(w8%4) + 3
		h := int(h8%4) + 3
		tor, err := NewTorus(w, h)
		if err != nil {
			return false
		}
		src := TileID(int(s8) % tor.NumTiles())
		dst := TileID(int(d8) % tor.NumTiles())
		route, err := tor.Route(src, dst)
		if err != nil {
			return false
		}
		if src == dst {
			return len(route) == 0
		}
		if len(route) != tor.Hops(src, dst)-1 {
			return false
		}
		cur := src
		seenY := false
		for _, lid := range route {
			l := tor.Link(lid)
			if l.From != cur {
				return false
			}
			fx, _ := tor.Coords(l.From)
			tx, _ := tor.Coords(l.To)
			if fx == tx {
				seenY = true
			} else if seenY {
				return false // X move after a Y move violates XY order
			}
			cur = l.To
		}
		return cur == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusAsPlatform(t *testing.T) {
	tor, _ := NewTorus(3, 3)
	classes := make([]PEClass, tor.NumTiles())
	for i := range classes {
		classes[i] = StandardClasses[i%len(StandardClasses)]
	}
	if _, err := NewPlatform(tor, classes, 128); err != nil {
		t.Fatal(err)
	}
}
