package noc

import "fmt"

// PEClass characterizes one kind of processing element in the
// heterogeneous tile library (the paper's examples: "one tile can be a
// DSP, another tile can be a high performance, energy-hungry CPU, yet
// another one a low-power ARM processor"). Factors are relative to a
// reference RISC core: a task with reference execution time r and
// reference energy e runs in r*SpeedFactor time units and consumes
// e*PowerFactor*SpeedFactor nanojoules on a PE of this class (energy =
// power x time).
type PEClass struct {
	Name string
	// SpeedFactor scales execution time; < 1 is faster than the
	// reference core.
	SpeedFactor float64
	// PowerFactor scales power draw; > 1 is hungrier than the
	// reference core.
	PowerFactor float64
}

// EnergyFactor returns the energy multiplier of the class relative to
// the reference core (power x time).
func (c PEClass) EnergyFactor() float64 { return c.PowerFactor * c.SpeedFactor }

// The standard tile library used by the benchmark generators. The
// factors span the order-of-magnitude heterogeneity the paper assumes;
// absolute silicon parameters are irrelevant to the scheduler, only the
// spread matters (it drives the VAR_e and VAR_r task weights).
var (
	// ClassRISC is the reference general-purpose core.
	ClassRISC = PEClass{Name: "risc", SpeedFactor: 1.0, PowerFactor: 1.0}
	// ClassCPU is a high-performance, energy-hungry CPU.
	ClassCPU = PEClass{Name: "cpu-hp", SpeedFactor: 0.5, PowerFactor: 4.0}
	// ClassDSP is a DSP: fast and reasonably efficient on kernels.
	ClassDSP = PEClass{Name: "dsp", SpeedFactor: 0.7, PowerFactor: 1.3}
	// ClassARM is a low-power embedded core: slow but frugal.
	ClassARM = PEClass{Name: "arm-lp", SpeedFactor: 1.8, PowerFactor: 0.35}
)

// StandardClasses is the default heterogeneous library, cycled over
// tiles by the platform constructors.
var StandardClasses = []PEClass{ClassCPU, ClassDSP, ClassRISC, ClassARM}

// Platform couples a topology with the per-tile PE classes and the link
// bandwidth, forming the complete target architecture a CTG is scheduled
// onto. Tile k hosts PE k; the CTG's per-PE arrays are indexed by tile
// ID.
type Platform struct {
	Topo Topology
	// Classes[k] is the PE class of tile k.
	Classes []PEClass
	// LinkBandwidth is b(r_ij) of Definition 2 for every route, in
	// bits per time unit. The paper's regular NoC has uniform link
	// bandwidth; per-route bandwidth falls out of the uniform link
	// value because wormhole routing pipelines flits across hops.
	LinkBandwidth int64
}

// NewPlatform builds a platform, validating that classes matches the
// tile count and the bandwidth is positive.
func NewPlatform(topo Topology, classes []PEClass, linkBandwidth int64) (*Platform, error) {
	if topo == nil {
		return nil, fmt.Errorf("noc: nil topology")
	}
	if len(classes) != topo.NumTiles() {
		return nil, fmt.Errorf("noc: %s has %d tiles but %d PE classes given",
			topo.Name(), topo.NumTiles(), len(classes))
	}
	for i, c := range classes {
		if c.SpeedFactor <= 0 || c.PowerFactor <= 0 {
			return nil, fmt.Errorf("noc: tile %d: invalid PE class %+v", i, c)
		}
	}
	if linkBandwidth <= 0 {
		return nil, fmt.Errorf("noc: non-positive link bandwidth %d", linkBandwidth)
	}
	return &Platform{
		Topo:          topo,
		Classes:       append([]PEClass(nil), classes...),
		LinkBandwidth: linkBandwidth,
	}, nil
}

// NewHeterogeneousMesh builds a width x height mesh platform whose tiles
// cycle through the standard PE library, giving the mixed DSP / CPU /
// RISC / ARM fabric the paper's experiments assume. The cycle order is
// deterministic so experiments are reproducible.
func NewHeterogeneousMesh(width, height int, scheme RoutingScheme, linkBandwidth int64) (*Platform, error) {
	mesh, err := NewMesh(width, height, scheme)
	if err != nil {
		return nil, err
	}
	classes := make([]PEClass, mesh.NumTiles())
	for i := range classes {
		classes[i] = StandardClasses[i%len(StandardClasses)]
	}
	return NewPlatform(mesh, classes, linkBandwidth)
}

// NumPEs returns the number of processing elements (= tiles).
func (p *Platform) NumPEs() int { return p.Topo.NumTiles() }

// TransferTime returns the time to transfer volume bits over any route,
// i.e. volume / bandwidth rounded up, and 0 for zero-volume (control)
// dependencies. Same-tile transfers cost no network time either; callers
// check the mapping before asking.
func (p *Platform) TransferTime(volume int64) int64 {
	if volume <= 0 {
		return 0
	}
	return (volume + p.LinkBandwidth - 1) / p.LinkBandwidth
}
