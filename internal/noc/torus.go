package noc

import "fmt"

// Torus is a width x height 2-D torus: a mesh with wrap-around channels
// in both dimensions. Routing is dimension-ordered (X first, then Y)
// and minimal: each dimension travels around the shorter arc of its
// ring, breaking exact ties toward the positive direction, so the
// routing function stays a pure deterministic function of (src, dst) —
// the class of schemes the paper's scheduler supports.
type Torus struct {
	width, height int
	links         []Link
	linkIndex     map[[2]TileID]LinkID
}

// NewTorus builds a width x height torus. Dimensions must be at least 3
// for the wrap links to be distinct from the mesh links.
func NewTorus(width, height int) (*Torus, error) {
	if width < 3 || height < 3 {
		return nil, fmt.Errorf("noc: torus dimensions %dx%d too small (need >= 3x3)", width, height)
	}
	t := &Torus{
		width:     width,
		height:    height,
		linkIndex: make(map[[2]TileID]LinkID),
	}
	addLink := func(from, to TileID) {
		id := LinkID(len(t.links))
		t.links = append(t.links, Link{ID: id, From: from, To: to})
		t.linkIndex[[2]TileID{from, to}] = id
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			from := t.TileAt(x, y)
			east := t.TileAt((x+1)%width, y)
			north := t.TileAt(x, (y+1)%height)
			addLink(from, east)
			addLink(east, from)
			addLink(from, north)
			addLink(north, from)
		}
	}
	return t, nil
}

// Name implements Topology.
func (t *Torus) Name() string { return fmt.Sprintf("torus%dx%d-xy", t.width, t.height) }

// NumTiles implements Topology.
func (t *Torus) NumTiles() int { return t.width * t.height }

// NumLinks implements Topology.
func (t *Torus) NumLinks() int { return len(t.links) }

// Link implements Topology.
func (t *Torus) Link(id LinkID) Link { return t.links[id] }

// TileAt returns the tile at column x, row y.
func (t *Torus) TileAt(x, y int) TileID { return TileID(y*t.width + x) }

// Coords returns the coordinates of a tile.
func (t *Torus) Coords(id TileID) (x, y int) {
	return int(id) % t.width, int(id) / t.width
}

// ringStep returns the per-move delta (+1 or -1) and the number of
// steps for traveling from a to b on a ring of size n along the shorter
// arc (ties toward +1).
func ringStep(a, b, n int) (delta, steps int) {
	fwd := (b - a + n) % n
	bwd := (a - b + n) % n
	if fwd <= bwd {
		return 1, fwd
	}
	return -1, bwd
}

// Route implements Topology.
func (t *Torus) Route(src, dst TileID) ([]LinkID, error) {
	if err := checkTile(src, t.NumTiles(), t.Name()); err != nil {
		return nil, err
	}
	if err := checkTile(dst, t.NumTiles(), t.Name()); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, nil
	}
	sx, sy := t.Coords(src)
	dx, dy := t.Coords(dst)
	var route []LinkID
	x, y := sx, sy
	step := func(nx, ny int) error {
		id, ok := t.linkIndex[[2]TileID{t.TileAt(x, y), t.TileAt(nx, ny)}]
		if !ok {
			return fmt.Errorf("noc: %s: missing link (%d,%d)->(%d,%d)", t.Name(), x, y, nx, ny)
		}
		route = append(route, id)
		x, y = nx, ny
		return nil
	}
	if deltaX, steps := ringStep(sx, dx, t.width); steps > 0 {
		for i := 0; i < steps; i++ {
			if err := step((x+deltaX+t.width)%t.width, y); err != nil {
				return nil, err
			}
		}
	}
	if deltaY, steps := ringStep(sy, dy, t.height); steps > 0 {
		for i := 0; i < steps; i++ {
			if err := step(x, (y+deltaY+t.height)%t.height); err != nil {
				return nil, err
			}
		}
	}
	return route, nil
}

// Hops implements Topology: the torus distance (sum of the two ring
// distances) plus one, or 0 for src == dst.
func (t *Torus) Hops(src, dst TileID) int {
	if src == dst {
		return 0
	}
	sx, sy := t.Coords(src)
	dx, dy := t.Coords(dst)
	_, xs := ringStep(sx, dx, t.width)
	_, ys := ringStep(sy, dy, t.height)
	return xs + ys + 1
}
