package noc

import (
	"fmt"
	"sort"
)

// DeadlockReport is the result of analyzing a topology's routing
// function for wormhole deadlock freedom.
type DeadlockReport struct {
	// Free is true when the channel dependency graph is acyclic.
	Free bool
	// Cycle holds one offending link cycle when Free is false (the
	// first found, closed: Cycle[0] depends on Cycle[1], ..., last
	// depends on Cycle[0]).
	Cycle []LinkID
	// Dependencies counts the CDG arcs analyzed.
	Dependencies int
}

// CheckDeadlockFree builds the channel dependency graph of a topology's
// deterministic routing function — link A depends on link B when some
// route traverses A immediately followed by B — and reports whether it
// is acyclic. Acyclicity is Dally & Seitz's classical sufficient
// condition for wormhole routing to be deadlock-free without virtual
// channels; dimension-ordered XY/YX on a mesh satisfies it, while
// wrap-around tori and many shortest-path functions on irregular
// graphs do not (they need virtual channels, which the reference
// platform of the paper does not have).
//
// A failing report does not make scheduling unsound — the EAS schedule
// tables keep transactions from overlapping on links, so the statically
// scheduled traffic cannot form the hold-and-wait pattern — but it
// flags topologies whose runtime behavior under unscheduled traffic
// would depend on virtual channels.
func CheckDeadlockFree(topo Topology) (DeadlockReport, error) {
	n := topo.NumTiles()
	nl := topo.NumLinks()
	adj := make(map[LinkID]map[LinkID]bool, nl)
	report := DeadlockReport{}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			route, err := topo.Route(TileID(s), TileID(d))
			if err != nil {
				return report, fmt.Errorf("noc: deadlock check: route %d->%d: %w", s, d, err)
			}
			for i := 1; i < len(route); i++ {
				from, to := route[i-1], route[i]
				if adj[from] == nil {
					adj[from] = make(map[LinkID]bool)
				}
				if !adj[from][to] {
					adj[from][to] = true
					report.Dependencies++
				}
			}
		}
	}
	// Cycle detection with iterative DFS over the CDG (deterministic
	// neighbor order).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[LinkID]int, nl)
	parent := make(map[LinkID]LinkID, nl)
	sortedNeighbors := func(l LinkID) []LinkID {
		out := make([]LinkID, 0, len(adj[l]))
		for nb := range adj[l] {
			out = append(out, nb)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	var cycleAt func(start LinkID) []LinkID
	cycleAt = func(start LinkID) []LinkID {
		type frame struct {
			link LinkID
			next []LinkID
		}
		stack := []frame{{link: start, next: sortedNeighbors(start)}}
		color[start] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if len(top.next) == 0 {
				color[top.link] = black
				stack = stack[:len(stack)-1]
				continue
			}
			nb := top.next[0]
			top.next = top.next[1:]
			switch color[nb] {
			case white:
				color[nb] = gray
				parent[nb] = top.link
				stack = append(stack, frame{link: nb, next: sortedNeighbors(nb)})
			case gray:
				// Found a cycle: walk parents from top.link back to nb.
				cycle := []LinkID{nb}
				for cur := top.link; cur != nb; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				// Reverse to dependency order nb -> ... -> top.link.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return cycle
			}
		}
		return nil
	}
	for l := 0; l < nl; l++ {
		if color[LinkID(l)] == white {
			if cyc := cycleAt(LinkID(l)); cyc != nil {
				report.Free = false
				report.Cycle = cyc
				return report, nil
			}
		}
	}
	report.Free = true
	return report, nil
}
