package noc

import (
	"strings"
	"testing"
)

func TestPlatformSpecMeshDefaults(t *testing.T) {
	p, err := ReadPlatformSpec(strings.NewReader(
		`{"topology":"mesh","width":3,"height":2,"bandwidth":128}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPEs() != 6 || p.LinkBandwidth != 128 {
		t.Errorf("platform %+v", p)
	}
	if p.Classes[0].Name != StandardClasses[0].Name {
		t.Error("default class library not applied")
	}
	if p.Topo.Name() != "mesh3x2-xy" {
		t.Errorf("topology %q", p.Topo.Name())
	}
}

func TestPlatformSpecCustomClasses(t *testing.T) {
	p, err := ReadPlatformSpec(strings.NewReader(`{
		"topology":"mesh","width":2,"height":2,"routing":"yx","bandwidth":64,
		"classes":[
			{"name":"big","speed":0.5,"power":3},
			{"name":"little","speed":2,"power":0.3}
		]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Classes[0].Name != "big" || p.Classes[1].Name != "little" || p.Classes[2].Name != "big" {
		t.Errorf("class cycling wrong: %+v", p.Classes)
	}
	if p.Topo.Name() != "mesh2x2-yx" {
		t.Errorf("topology %q", p.Topo.Name())
	}
}

func TestPlatformSpecTorusAndHoneycomb(t *testing.T) {
	p, err := ReadPlatformSpec(strings.NewReader(
		`{"topology":"torus","width":3,"height":3,"bandwidth":64}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Topo.Name() != "torus3x3-xy" {
		t.Errorf("topology %q", p.Topo.Name())
	}
	p, err = ReadPlatformSpec(strings.NewReader(
		`{"topology":"honeycomb","width":4,"height":3,"bandwidth":64}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Topo.Name() != "honeycomb4x3" {
		t.Errorf("topology %q", p.Topo.Name())
	}
}

func TestPlatformSpecErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{`,
		"bad topology":   `{"topology":"hypercube","width":2,"height":2,"bandwidth":1}`,
		"bad routing":    `{"topology":"mesh","width":2,"height":2,"routing":"zig","bandwidth":1}`,
		"torus yx":       `{"topology":"torus","width":3,"height":3,"routing":"yx","bandwidth":1}`,
		"honeycomb yx":   `{"topology":"honeycomb","width":3,"height":3,"routing":"yx","bandwidth":1}`,
		"zero bandwidth": `{"topology":"mesh","width":2,"height":2,"bandwidth":0}`,
		"bad size":       `{"topology":"mesh","width":0,"height":2,"bandwidth":1}`,
		"bad class":      `{"topology":"mesh","width":2,"height":2,"bandwidth":1,"classes":[{"name":"x","speed":0,"power":1}]}`,
	}
	for name, payload := range cases {
		if _, err := ReadPlatformSpec(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
