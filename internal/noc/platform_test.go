package noc

import "testing"

func TestNewPlatformValidation(t *testing.T) {
	m := mustMesh(t, 2, 2, RouteXY)
	classes := []PEClass{ClassCPU, ClassDSP, ClassRISC, ClassARM}
	if _, err := NewPlatform(nil, classes, 64); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewPlatform(m, classes[:3], 64); err == nil {
		t.Error("class count mismatch accepted")
	}
	if _, err := NewPlatform(m, classes, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad := append([]PEClass(nil), classes...)
	bad[0].SpeedFactor = 0
	if _, err := NewPlatform(m, bad, 64); err == nil {
		t.Error("zero speed factor accepted")
	}
	p, err := NewPlatform(m, classes, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPEs() != 4 {
		t.Errorf("NumPEs = %d", p.NumPEs())
	}
	// Classes are copied, not aliased.
	classes[0].Name = "mutated"
	if p.Classes[0].Name == "mutated" {
		t.Error("platform aliases caller's class slice")
	}
}

func TestTransferTime(t *testing.T) {
	p, err := NewHeterogeneousMesh(2, 2, RouteXY, 100)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		volume, want int64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{100, 1},
		{101, 2},
		{1000, 10},
	}
	for _, c := range cases {
		if got := p.TransferTime(c.volume); got != c.want {
			t.Errorf("TransferTime(%d) = %d, want %d", c.volume, got, c.want)
		}
	}
}

func TestHeterogeneousMeshCycle(t *testing.T) {
	p, err := NewHeterogeneousMesh(4, 4, RouteXY, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Tiles cycle deterministically through the standard library.
	for i := 0; i < 16; i++ {
		want := StandardClasses[i%len(StandardClasses)].Name
		if p.Classes[i].Name != want {
			t.Errorf("tile %d class %s, want %s", i, p.Classes[i].Name, want)
		}
	}
}

func TestEnergyFactor(t *testing.T) {
	c := PEClass{Name: "x", SpeedFactor: 2, PowerFactor: 0.5}
	if got := c.EnergyFactor(); got != 1 {
		t.Errorf("EnergyFactor = %v", got)
	}
}
