package noc

import "fmt"

// DegradedTopology is a base topology with a set of permanently failed
// routers and links removed from service. It preserves the base
// numbering — NumTiles, NumLinks, Link and tile IDs are unchanged — so
// schedules, energy tables and the simulator can keep indexing by the
// base IDs; dead links simply never appear in any route.
//
// Routing is deterministic in two layers:
//
//   - pairs whose base route survives intact keep the base route (XY on
//     a mesh), so an unaffected region of the chip schedules exactly as
//     before the fault;
//   - severed pairs fall back to BFS shortest-path routing over the
//     surviving links with the same lowest-numbered-next-hop tie break
//     GraphTopology uses, which is again a pure function of
//     (current, destination).
//
// Pairs involving a dead router are unreachable: Route returns an error
// and Hops returns -1. Pairs of *alive* tiles left mutually unreachable
// by the fault set are recorded and reported by UnreachablePairs; it is
// the caller's job to decide whether a disconnected surviving fabric is
// an error (the fault package treats it as unrecoverable).
type DegradedTopology struct {
	base Topology
	name string

	deadTile []bool // router at tile failed
	deadLink []bool // link failed (directly or via an adjacent dead router)

	// nextHop[src*n+dst] is the fallback next-hop link over surviving
	// links, or -1.
	nextHop []LinkID
	// hops[src*n+dst] is the router count of the route Route returns
	// (base if intact, BFS otherwise), or -1 if unreachable.
	hops []int
	// baseIntact[src*n+dst] records that the base route survived.
	baseIntact []bool

	unreachable [][2]TileID
}

// NewDegradedTopology removes the given routers and links from base.
// A dead router takes its tile out of service entirely: every link
// entering or leaving the tile is dead too. Duplicate IDs are allowed;
// out-of-range IDs are an error. The constructor never fails on a
// disconnecting fault set — inspect UnreachablePairs for that.
func NewDegradedTopology(base Topology, deadRouters []TileID, deadLinks []LinkID) (*DegradedTopology, error) {
	if base == nil {
		return nil, fmt.Errorf("noc: degraded: nil base topology")
	}
	n := base.NumTiles()
	nl := base.NumLinks()
	d := &DegradedTopology{
		base:       base,
		deadTile:   make([]bool, n),
		deadLink:   make([]bool, nl),
		nextHop:    make([]LinkID, n*n),
		hops:       make([]int, n*n),
		baseIntact: make([]bool, n*n),
	}
	for _, t := range deadRouters {
		if err := checkTile(t, n, base.Name()); err != nil {
			return nil, err
		}
		d.deadTile[t] = true
	}
	for _, l := range deadLinks {
		if l < 0 || int(l) >= nl {
			return nil, fmt.Errorf("noc: degraded: %s: link %d out of range [0,%d)", base.Name(), l, nl)
		}
		d.deadLink[l] = true
	}
	for l := 0; l < nl; l++ {
		link := base.Link(LinkID(l))
		if d.deadTile[link.From] || d.deadTile[link.To] {
			d.deadLink[l] = true
		}
	}
	d.name = fmt.Sprintf("%s-degraded", base.Name())

	// Surviving adjacency for the BFS fallback.
	succ := make([][]Link, n)
	pred := make([][]Link, n)
	for l := 0; l < nl; l++ {
		if d.deadLink[l] {
			continue
		}
		link := base.Link(LinkID(l))
		succ[link.From] = append(succ[link.From], link)
		pred[link.To] = append(pred[link.To], link)
	}

	// Reverse BFS from every destination (as in GraphTopology): at each
	// settled tile the next hop toward dst is the lowest-numbered alive
	// neighbor whose distance is one less.
	dist := make([]int, n)
	for dst := 0; dst < n; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		if !d.deadTile[dst] {
			dist[dst] = 0
			queue := []TileID{TileID(dst)}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for _, l := range pred[cur] {
					if dist[l.From] < 0 {
						dist[l.From] = dist[cur] + 1
						queue = append(queue, l.From)
					}
				}
			}
		}
		for src := 0; src < n; src++ {
			idx := src*n + dst
			d.nextHop[idx] = -1
			switch {
			case src == dst:
				d.hops[idx] = 0
				continue
			case d.deadTile[src] || d.deadTile[dst] || dist[src] < 0:
				d.hops[idx] = -1
				if !d.deadTile[src] && !d.deadTile[dst] {
					d.unreachable = append(d.unreachable, [2]TileID{TileID(src), TileID(dst)})
				}
				continue
			}
			var best Link
			found := false
			for _, l := range succ[src] {
				if dist[l.To] == dist[src]-1 && (!found || l.To < best.To) {
					best, found = l, true
				}
			}
			d.nextHop[idx] = best.ID
			if d.routeIntact(TileID(src), TileID(dst)) {
				d.baseIntact[idx] = true
				d.hops[idx] = base.Hops(TileID(src), TileID(dst))
			} else {
				d.hops[idx] = dist[src] + 1
			}
		}
	}
	return d, nil
}

// routeIntact reports whether the base route between two alive tiles
// avoids every dead link (dead intermediate routers imply dead links, so
// checking links suffices).
func (d *DegradedTopology) routeIntact(src, dst TileID) bool {
	route, err := d.base.Route(src, dst)
	if err != nil {
		return false
	}
	for _, l := range route {
		if d.deadLink[l] {
			return false
		}
	}
	return true
}

// Base returns the underlying fault-free topology.
func (d *DegradedTopology) Base() Topology { return d.base }

// DeadRouter reports whether the router at tile t failed.
func (d *DegradedTopology) DeadRouter(t TileID) bool { return d.deadTile[t] }

// DeadLink reports whether link l is out of service (failed directly or
// attached to a dead router).
func (d *DegradedTopology) DeadLink(l LinkID) bool { return d.deadLink[l] }

// UnreachablePairs returns the ordered pairs of *alive* tiles with no
// surviving route, i.e. the witnesses that the fault set disconnected
// the surviving fabric. Empty means every alive pair still routes.
func (d *DegradedTopology) UnreachablePairs() [][2]TileID { return d.unreachable }

// Name implements Topology.
func (d *DegradedTopology) Name() string { return d.name }

// NumTiles implements Topology (base numbering is preserved).
func (d *DegradedTopology) NumTiles() int { return d.base.NumTiles() }

// NumLinks implements Topology (dead links keep their IDs; they are
// never routed over).
func (d *DegradedTopology) NumLinks() int { return d.base.NumLinks() }

// Link implements Topology.
func (d *DegradedTopology) Link(id LinkID) Link { return d.base.Link(id) }

// Route implements Topology: the base route when it survived, otherwise
// the BFS shortest path over surviving links. Routes from, to, or
// between dead routers (and disconnected alive pairs) are errors.
func (d *DegradedTopology) Route(src, dst TileID) ([]LinkID, error) {
	n := d.NumTiles()
	if err := checkTile(src, n, d.name); err != nil {
		return nil, err
	}
	if err := checkTile(dst, n, d.name); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, nil
	}
	idx := int(src)*n + int(dst)
	if d.baseIntact[idx] {
		return d.base.Route(src, dst)
	}
	if d.nextHop[idx] < 0 {
		return nil, fmt.Errorf("noc: %s: no surviving route %d->%d", d.name, src, dst)
	}
	var route []LinkID
	cur := src
	for cur != dst {
		l := d.nextHop[int(cur)*n+int(dst)]
		if l < 0 {
			return nil, fmt.Errorf("noc: %s: no surviving route %d->%d", d.name, src, dst)
		}
		route = append(route, l)
		cur = d.Link(l).To
	}
	return route, nil
}

// Hops implements Topology; -1 marks unreachable pairs.
func (d *DegradedTopology) Hops(src, dst TileID) int {
	return d.hops[int(src)*d.NumTiles()+int(dst)]
}
