package fault

import (
	"testing"

	"nocsched/internal/noc"
	"nocsched/internal/verify"
)

// checkOracle feeds a stream hybrid through the independent
// conformance oracle with the last checkpoint as the frozen horizon.
// Structural findings (placement, precedence, PE/link overlap, routes,
// energy accounting) are always fatal; deadline findings must agree
// exactly with the schedule's own DeadlineMisses accounting — a
// degraded replay is allowed to miss deadlines, but not to misreport
// them.
func checkOracle(t *testing.T, res *StreamResult) {
	t.Helper()
	horizon := int64(0)
	if n := len(res.Steps); n > 0 {
		horizon = res.Steps[n-1].Time
	}
	s := res.Schedule
	rep := verify.CheckOptions(s, verify.Options{FrozenHorizon: horizon})
	deadline := rep.ByClass(verify.ClassDeadline)
	if structural := len(rep.Findings) - len(deadline); structural > 0 {
		t.Fatalf("oracle flags the hybrid schedule (horizon %d):\n%s", horizon, rep)
	}
	misses := s.DeadlineMisses()
	if len(deadline) != len(misses) {
		t.Fatalf("oracle reports %d deadline findings, schedule reports %d misses:\n%s",
			len(deadline), len(misses), rep)
	}
	for i := range deadline {
		if deadline[i].Task != misses[i] {
			t.Fatalf("deadline finding %d on task %d, schedule miss on task %d",
				i, deadline[i].Task, misses[i])
		}
	}
}

// TestStreamOracleConformance replays every stream scenario family from
// stream_test.go and runs the committed-prefix + rebuilt-suffix hybrid
// through the oracle with the checkpoint as the frozen horizon. This is
// the independent re-check the hand-written invariant assertions in
// those tests cannot give: full Definition 3/4 sweeps, route-chain
// validity on the degraded fabric, and bit-exact energy accounting.
func TestStreamOracleConformance(t *testing.T) {
	t.Run("start-tick", func(t *testing.T) {
		s := streamChain(t)
		res, err := ReplayStream(s, Stream{{Time: s.Tasks[1].Start, PEs: []noc.TileID{4}}}, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkOracle(t, res)
	})
	t.Run("mid-execution", func(t *testing.T) {
		s := streamChain(t)
		res, err := ReplayStream(s, Stream{{Time: s.Tasks[1].Start + 1, PEs: []noc.TileID{4}}}, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkOracle(t, res)
	})
	t.Run("marooned-producer", func(t *testing.T) {
		s := streamChain(t)
		res, err := ReplayStream(s, Stream{{Time: s.Tasks[0].Finish + 1, PEs: []noc.TileID{0}}}, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkOracle(t, res)
	})
	t.Run("multi-event", func(t *testing.T) {
		s := faultRig(t, 7, 30)
		mk := s.Makespan()
		res, err := ReplayStream(s, Stream{
			{Time: mk / 3, PEs: []noc.TileID{noc.TileID(s.Tasks[len(s.Tasks)-1].PE)}},
			{Time: 2 * mk / 3, Links: []noc.LinkID{0}},
		}, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkOracle(t, res)
	})
	t.Run("shedding", func(t *testing.T) {
		s := faultRig(t, 11, 24)
		mk := s.Makespan()
		// Middle-row router kill forces island restriction and usually
		// sheds: the harshest hybrid the stream path produces.
		res, err := ReplayStream(s, Stream{{Time: mk / 2, Routers: []noc.TileID{3, 4, 5}}}, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkOracle(t, res)
	})
}

// TestStreamOracleSweep replays one mid-schedule PE kill per seed over
// TGFF instances and oracle-checks every hybrid. A cheap randomized
// sweep for frozen-placement overlaps the targeted tests above might
// miss.
func TestStreamOracleSweep(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 13} {
		s := faultRig(t, seed, 20)
		mk := s.Makespan()
		// Kill the PE hosting the first task that starts after mk/2, so
		// the event always bites.
		pe := -1
		for i := range s.Tasks {
			if s.Tasks[i].Start > mk/2 {
				pe = s.Tasks[i].PE
				break
			}
		}
		if pe < 0 {
			continue
		}
		res, err := ReplayStream(s, Stream{{Time: mk / 2, PEs: []noc.TileID{noc.TileID(pe)}}}, StreamOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkOracle(t, res)
	}
}

// TestRecoverOracleConformance runs the offline recovery gauntlet and
// strict-checks each recovered schedule: Recover rebuilds the whole
// timeline on the degraded platform, so no frozen horizon applies.
func TestRecoverOracleConformance(t *testing.T) {
	s := faultRig(t, 7, 30)
	tr := routedTransaction(t, s)
	scenarios := []*Scenario{
		{Name: "1-pe", PEs: []noc.TileID{noc.TileID(tr.SrcPE)}},
		{Name: "1-router", Routers: []noc.TileID{noc.TileID(tr.SrcPE)}},
		{Name: "1-link", Links: []noc.LinkID{tr.Route[0]}},
		{Name: "2-pes", PEs: []noc.TileID{noc.TileID(tr.SrcPE), noc.TileID(tr.DstPE)}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rec, err := Recover(s, sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rep := verify.Check(rec.Schedule)
			deadline := rep.ByClass(verify.ClassDeadline)
			if structural := len(rep.Findings) - len(deadline); structural > 0 {
				t.Fatalf("oracle flags the recovered schedule:\n%s", rep)
			}
			if len(deadline) != rec.Stats.MissesAfter {
				t.Fatalf("oracle reports %d deadline findings, recovery reports %d misses",
					len(deadline), rec.Stats.MissesAfter)
			}
		})
	}
}
