// Package fault models permanent hardware failures of a NoC platform —
// dead processing elements, routers and links — and recovers static
// schedules from them.
//
// The paper schedules a CTG onto a fault-free mesh; this package turns
// its own machinery into a survival story. A Scenario describes which
// resources died; Degrade applies it to a platform, producing a
// degraded topology whose deterministic routes avoid the dead hardware
// (base XY routes where they survive, BFS shortest-path fallback where
// they are severed) and a degraded CTG with the dead PEs marked
// incapable; Recover triages which placements a scenario invalidates
// and re-maps them with the existing EAS search-and-repair moves, with
// a full EAS re-run as fallback.
//
// Unrecoverable scenarios are typed errors, never panics:
// ErrDisconnected when the surviving fabric is no longer connected,
// ErrNoCapablePE when some task has no surviving PE that can run it.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"nocsched/internal/noc"
	"nocsched/internal/sim"
)

// Typed unrecoverability causes. Errors returned by Degrade and Recover
// wrap these; test with errors.Is.
var (
	// ErrDisconnected marks a scenario that splits the surviving tiles
	// into mutually unreachable islands.
	ErrDisconnected = errors.New("fault: scenario disconnects the surviving network")
	// ErrNoCapablePE marks a scenario that leaves some task with no
	// surviving PE able to execute it.
	ErrNoCapablePE = errors.New("fault: task has no surviving capable PE")
)

// Scenario is one JSON-serializable fault set: the permanent failures
// to apply to a platform. The zero value is the fault-free scenario.
//
//	{
//	  "name": "corner-blast",
//	  "pes": [5],          // dead processing elements (router survives)
//	  "routers": [10],     // dead routers (tile fully out of service)
//	  "links": [3, 17],    // dead directed links
//	  "cycle": 0           // simulator injection time (recovery treats
//	}                      // all faults as permanent regardless)
type Scenario struct {
	Name string `json:"name,omitempty"`
	// PEs lists tiles whose processing element died. The tile's router
	// keeps forwarding through traffic, so routes crossing the tile
	// survive; only computation on it is lost.
	PEs []noc.TileID `json:"pes,omitempty"`
	// Routers lists tiles whose router died, taking the whole tile out
	// of service: its PE and every adjacent link are lost.
	Routers []noc.TileID `json:"routers,omitempty"`
	// Links lists dead directed links (base-topology link IDs).
	Links []noc.LinkID `json:"links,omitempty"`
	// Cycle is the activation time used when the scenario is injected
	// into the flit-level simulator (SimFaults). Recovery is static and
	// treats every fault as permanent from time zero.
	Cycle int64 `json:"cycle,omitempty"`
}

// NumFaults returns the number of failed resources in the scenario.
func (sc *Scenario) NumFaults() int {
	return len(sc.PEs) + len(sc.Routers) + len(sc.Links)
}

// Validate checks the scenario against a platform: every named tile and
// link must exist and the cycle must be non-negative. Duplicates are
// permitted (fault sets are sets).
func (sc *Scenario) Validate(p *noc.Platform) error {
	if p == nil {
		return fmt.Errorf("fault: nil platform")
	}
	n, nl := p.Topo.NumTiles(), p.Topo.NumLinks()
	for _, t := range sc.PEs {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("fault: scenario %q: PE tile %d out of range [0,%d)", sc.Name, t, n)
		}
	}
	for _, t := range sc.Routers {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("fault: scenario %q: router tile %d out of range [0,%d)", sc.Name, t, n)
		}
	}
	for _, l := range sc.Links {
		if l < 0 || int(l) >= nl {
			return fmt.Errorf("fault: scenario %q: link %d out of range [0,%d)", sc.Name, l, nl)
		}
	}
	if sc.Cycle < 0 {
		return fmt.Errorf("fault: scenario %q: negative cycle %d", sc.Name, sc.Cycle)
	}
	return nil
}

// DeadPE reports whether the scenario kills computation on tile t,
// either directly (PE fault) or via the tile's router.
func (sc *Scenario) DeadPE(t noc.TileID) bool {
	for _, d := range sc.PEs {
		if d == t {
			return true
		}
	}
	for _, d := range sc.Routers {
		if d == t {
			return true
		}
	}
	return false
}

// SimFaults converts the scenario into simulator fault injections
// activating at the scenario's Cycle, for replaying a schedule against
// the failure (see sim.Options.Faults). Scenario fault sets tolerate
// duplicate entries but the simulator rejects duplicate injections, so
// the conversion dedupes.
func (sc *Scenario) SimFaults() []sim.Fault {
	faults := make([]sim.Fault, 0, sc.NumFaults())
	seen := make(map[sim.Fault]bool, sc.NumFaults())
	add := func(f sim.Fault) {
		if !seen[f] {
			seen[f] = true
			faults = append(faults, f)
		}
	}
	for _, t := range sc.PEs {
		add(sim.Fault{Kind: sim.FaultPE, Tile: t, Cycle: sc.Cycle})
	}
	for _, t := range sc.Routers {
		add(sim.Fault{Kind: sim.FaultRouter, Tile: t, Cycle: sc.Cycle})
	}
	for _, l := range sc.Links {
		add(sim.Fault{Kind: sim.FaultLink, Link: l, Cycle: sc.Cycle})
	}
	return faults
}

// WriteJSON serializes the scenario.
func (sc *Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// ReadScenario decodes a scenario from JSON. Callers validate against
// their platform with Scenario.Validate (Degrade does so itself).
func ReadScenario(r io.Reader) (*Scenario, error) {
	var sc Scenario
	if err := json.NewDecoder(r).Decode(&sc); err != nil {
		return nil, fmt.Errorf("fault: decode scenario: %w", err)
	}
	return &sc, nil
}

// Random draws a k-fault scenario over the platform's resources from
// the injected random stream: each fault is a PE, router or link
// failure with equal probability per resource. The same rng state
// yields the same scenario, so sweeps are reproducible from a seed.
//
// Draws are without replacement (every fault names a distinct
// resource), k is capped at the resource population, and a draw that
// would kill the last surviving PE is rejected — a scenario that
// strands the entire workload sweeps nothing. Scenarios drawn this way
// may still be unrecoverable in subtler ways (that is the point of
// sweeping them).
func Random(rng *rand.Rand, p *noc.Platform, k int) *Scenario {
	sc := &Scenario{Name: fmt.Sprintf("random-%dfault", k)}
	n, nl := p.Topo.NumTiles(), p.Topo.NumLinks()
	population := 2*n + nl
	if k > population {
		k = population
	}
	used := make(map[int]bool, k)
	deadPE := make([]bool, n)
	alive := n
	for drawn, attempts := 0, 0; drawn < k && attempts < 16*population; attempts++ {
		r := rng.Intn(population)
		if used[r] {
			continue
		}
		kills := -1
		if r < 2*n {
			if tile := r % n; !deadPE[tile] {
				kills = tile
			}
		}
		if kills >= 0 && alive == 1 {
			continue
		}
		used[r] = true
		if kills >= 0 {
			deadPE[kills] = true
			alive--
		}
		switch {
		case r < n:
			sc.PEs = append(sc.PEs, noc.TileID(r))
		case r < 2*n:
			sc.Routers = append(sc.Routers, noc.TileID(r-n))
		default:
			sc.Links = append(sc.Links, noc.LinkID(r-2*n))
		}
		drawn++
	}
	return sc
}
