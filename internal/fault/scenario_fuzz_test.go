package fault

import (
	"bytes"
	"testing"
)

// FuzzReadScenario throws arbitrary bytes at the scenario decoder: it
// must never panic, and every scenario it accepts must re-serialize to
// a stable fixpoint (decode -> encode -> decode -> encode yields
// identical bytes, so stored scenario files are canonical).
func FuzzReadScenario(f *testing.F) {
	f.Add([]byte(`{"name":"x","pes":[1],"routers":[2],"links":[3,4],"cycle":9}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"pes":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"pes":[-1,99999999]}`))
	f.Add([]byte(`{"cycle":-7,"links":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ReadScenario(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		var once bytes.Buffer
		if err := sc.WriteJSON(&once); err != nil {
			t.Fatalf("accepted scenario failed to serialize: %v", err)
		}
		sc2, err := ReadScenario(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("serialized scenario rejected on re-read: %v\n%s", err, once.Bytes())
		}
		var twice bytes.Buffer
		if err := sc2.WriteJSON(&twice); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("serialization not a fixpoint:\n%s\nvs\n%s", once.Bytes(), twice.Bytes())
		}
		if sc.NumFaults() != sc2.NumFaults() {
			t.Fatalf("round-trip changed fault count: %d vs %d", sc.NumFaults(), sc2.NumFaults())
		}
	})
}
