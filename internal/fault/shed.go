package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/sched"
)

// ShedOptions configures graceful degradation: when recovery cannot
// restore feasibility, tasks are abandoned (shed) by criticality until
// the surviving workload fits the surviving hardware.
type ShedOptions struct {
	// MaxShed caps the number of tasks abandoned, counting the
	// downstream closure each shed drags along; <= 0 means unbounded
	// (shedding may consume the whole graph before giving up).
	MaxShed int
}

// DegradedResult is the outcome of recovery with graceful degradation:
// the best schedule found, which tasks were sacrificed to get it, and
// what the fault cost in deadlines and energy.
type DegradedResult struct {
	// Shed lists the abandoned tasks in shedding order, including the
	// downstream closures (a consumer of a shed producer has no input
	// and is shed with it). Empty when plain recovery sufficed.
	Shed []ctg.TaskID
	// Recovery is the final accepted recovery; its Schedule is bound to
	// Graph below, with shed tasks reduced to zero-cost no-ops.
	Recovery *Recovery
	// Graph is the degraded CTG the final schedule was built against:
	// dead PEs marked incapable and shed tasks zeroed out (no exec
	// time, no energy, no deadline, no traffic on adjacent edges).
	Graph *ctg.Graph
	// ResidualMisses counts deadline misses the degradation could not
	// eliminate (0 when graceful degradation succeeded).
	ResidualMisses int
	// EnergyBefore / EnergyAfter compare total schedule energy across
	// the fault (nJ); shedding can push the delta negative.
	EnergyBefore, EnergyAfter float64
}

// Feasible reports whether the degraded schedule meets every remaining
// deadline.
func (r *DegradedResult) Feasible() bool { return r.ResidualMisses == 0 }

// EnergyDelta returns EnergyAfter - EnergyBefore in nJ.
func (r *DegradedResult) EnergyDelta() float64 { return r.EnergyAfter - r.EnergyBefore }

// RecoverDegraded recovers a schedule from a scenario like Recover, but
// never gives up on a typed infeasibility:
//
//   - a disconnected fabric (ErrDisconnected) restricts execution to
//     the largest surviving island (DegradeRestricted);
//   - tasks with no surviving capable PE (ErrNoCapablePE) are shed
//     outright, together with their downstream closures;
//   - residual deadline misses trigger criticality-ordered shedding —
//     soft subgraphs first (no deadline anywhere downstream, smallest
//     collateral first), then deadline subgraphs by ascending slack —
//     where each shed must strictly improve the schedule metric to be
//     accepted.
//
// The result reports the shed set, residual misses and the energy
// delta. An error is returned only for ill-formed inputs or when not a
// single PE survives.
func RecoverDegraded(s *sched.Schedule, sc *Scenario, opts Options, sopts ShedOptions) (*DegradedResult, error) {
	if s == nil {
		return nil, fmt.Errorf("fault: nil schedule")
	}
	d, err := Degrade(s.ACG.Platform(), s.ACG.Model(), sc)
	if errors.Is(err, ErrDisconnected) {
		d, err = DegradeRestricted(s.ACG.Platform(), s.ACG.Model(), sc)
	}
	if err != nil {
		return nil, err
	}
	g := s.Graph.Clone()
	shedMask := make([]bool, g.NumTasks())
	res := &DegradedResult{EnergyBefore: s.TotalEnergy()}
	maxShed := sopts.MaxShed
	if maxShed <= 0 {
		maxShed = g.NumTasks()
	}

	// Forced sheds: tasks the surviving hardware cannot run at all.
	for i := 0; i < g.NumTasks(); i++ {
		t := ctg.TaskID(i)
		if shedMask[t] || hasAlivePE(g, d, t) {
			continue
		}
		res.Shed = append(res.Shed, shedApply(g, t, shedMask, nil)...)
	}

	best, err := recoverOn(d, s, g, opts)
	if err != nil {
		return nil, err
	}

	// Voluntary sheds: trade workload for feasibility, cheapest
	// sacrifice first, accepting only sheds that strictly improve the
	// deadline metric.
	for !best.Feasible() && len(res.Shed) < maxShed {
		progressed := false
		for _, c := range shedCandidates(g, best.Schedule, shedMask, nil) {
			gTry := g.Clone()
			maskTry := append([]bool(nil), shedMask...)
			newly := shedApply(gTry, c, maskTry, nil)
			if len(newly) == 0 {
				continue
			}
			recTry, rerr := recoverOn(d, s, gTry, opts)
			if rerr != nil {
				continue
			}
			if !eas.MetricBetter(recTry.Schedule, best.Schedule) {
				continue
			}
			g, shedMask, best = gTry, maskTry, recTry
			res.Shed = append(res.Shed, newly...)
			progressed = true
			break
		}
		if !progressed {
			break
		}
	}

	res.Recovery = best
	res.Graph = best.Graph
	res.ResidualMisses = best.Stats.MissesAfter
	res.EnergyAfter = best.Stats.EnergyAfter
	return res, nil
}

// hasAlivePE reports whether any surviving PE can run task t.
func hasAlivePE(g *ctg.Graph, d *Degraded, t ctg.TaskID) bool {
	task := g.Task(t)
	for k := range task.ExecTime {
		if k < len(d.DeadPE) && d.DeadPE[k] {
			continue
		}
		if task.ExecTime[k] >= 0 {
			return true
		}
	}
	return false
}

// shedApply abandons task t and its not-yet-shed downstream closure in
// g: execution becomes a free no-op runnable anywhere, the deadline is
// lifted, and every adjacent edge stops carrying traffic. The include
// filter (nil = all) restricts which tasks may be zeroed — the stream
// path uses it to keep already-executed prefix tasks untouched. Returns
// the newly shed tasks, root first.
func shedApply(g *ctg.Graph, t ctg.TaskID, shed []bool, include func(ctg.TaskID) bool) []ctg.TaskID {
	var newly []ctg.TaskID
	zero := func(x ctg.TaskID) {
		if shed[x] || (include != nil && !include(x)) {
			return
		}
		shed[x] = true
		task := g.Task(x)
		for k := range task.ExecTime {
			task.ExecTime[k] = 0
			task.Energy[k] = 0
		}
		task.Deadline = ctg.NoDeadline
		for _, eid := range g.In(x) {
			g.Edge(eid).Volume = 0
		}
		for _, eid := range g.Out(x) {
			g.Edge(eid).Volume = 0
		}
		newly = append(newly, x)
	}
	zero(t)
	if len(newly) == 0 {
		return nil
	}
	for _, dsc := range g.Descendants(t) {
		zero(dsc)
	}
	return newly
}

// shedCandidates ranks the not-yet-shed tasks in shedding order. Soft
// subgraphs go first — tasks with no deadline on themselves or any live
// descendant, cheapest collateral (fewest live descendants) first —
// because abandoning them frees PEs and links without forfeiting a
// deadline. Then deadline subgraphs by ascending slack (most-blown
// deadline first: those are the tasks feasibility has already lost).
// The eligible filter (nil = all) restricts candidacy; finish times for
// slack come from s, which must be indexed by the same task IDs as g.
func shedCandidates(g *ctg.Graph, s *sched.Schedule, shed []bool, eligible func(ctg.TaskID) bool) []ctg.TaskID {
	type cand struct {
		t      ctg.TaskID
		soft   bool
		slack  int64
		fanout int
	}
	var cs []cand
	for i := 0; i < g.NumTasks(); i++ {
		t := ctg.TaskID(i)
		if shed[t] || (eligible != nil && !eligible(t)) {
			continue
		}
		c := cand{t: t, slack: math.MaxInt64}
		consider := func(x ctg.TaskID) {
			if shed[x] {
				return
			}
			task := g.Task(x)
			if !task.HasDeadline() {
				if x != t {
					c.fanout++
				}
				return
			}
			if sl := task.Deadline - s.Tasks[x].Finish; sl < c.slack {
				c.slack = sl
			}
			if x != t {
				c.fanout++
			}
		}
		consider(t)
		for _, dsc := range g.Descendants(t) {
			consider(dsc)
		}
		c.soft = c.slack == math.MaxInt64
		cs = append(cs, c)
	}
	sort.SliceStable(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.soft != b.soft {
			return a.soft
		}
		if a.soft {
			if a.fanout != b.fanout {
				return a.fanout < b.fanout
			}
			return a.t < b.t
		}
		if a.slack != b.slack {
			return a.slack < b.slack
		}
		if a.fanout != b.fanout {
			return a.fanout < b.fanout
		}
		return a.t < b.t
	})
	out := make([]ctg.TaskID, len(cs))
	for i, c := range cs {
		out[i] = c.t
	}
	return out
}
