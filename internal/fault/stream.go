package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
)

// Metric names published into opts.EAS.Telemetry's registry by
// ReplayStream (counts, accumulated across events).
const (
	MetricStreamEvents      = "fault_stream_events_total"
	MetricStreamFrozenTasks = "fault_stream_frozen_tasks_total"
	MetricStreamRescheduled = "fault_stream_rescheduled_tasks_total"
	MetricStreamShed        = "fault_stream_shed_tasks_total"
)

// DefaultStreamRepairBudget caps attempted suffix-repair migrations per
// stream event when StreamOptions.RepairBudget is zero.
const DefaultStreamRepairBudget = 64

// StreamEvent is one burst of permanent faults revealed at Time (in
// schedule time units): the named PEs, routers and links die at that
// instant and stay dead.
type StreamEvent struct {
	Time    int64        `json:"time"`
	PEs     []noc.TileID `json:"pes,omitempty"`
	Routers []noc.TileID `json:"routers,omitempty"`
	Links   []noc.LinkID `json:"links,omitempty"`
}

// Stream is an online fault trace: timestamped permanent-fault events
// revealed to the scheduler one at a time, in contrast to the Scenario
// model where the whole fault set is known before rescheduling.
type Stream []StreamEvent

// Validate rejects ill-formed streams (negative times, empty events).
// Range checks against a platform happen per event inside ReplayStream.
func (st Stream) Validate() error {
	for i, ev := range st {
		if ev.Time < 0 {
			return fmt.Errorf("fault: stream event %d at negative time %d", i, ev.Time)
		}
		if len(ev.PEs)+len(ev.Routers)+len(ev.Links) == 0 {
			return fmt.Errorf("fault: stream event %d (t=%d) names no hardware", i, ev.Time)
		}
	}
	return nil
}

// StreamOptions configures ReplayStream.
type StreamOptions struct {
	// EAS supplies the telemetry sink and contention model for the
	// suffix rebuilds (weight and full-reschedule options do not apply:
	// the committed prefix is frozen, so there is no from-scratch pass).
	EAS eas.Options
	// RepairBudget caps attempted suffix-repair migrations per event;
	// 0 selects DefaultStreamRepairBudget.
	RepairBudget int
	// Shed configures graceful degradation when an event leaves the
	// suffix infeasible.
	Shed ShedOptions
	// DisableShedding turns graceful degradation off: infeasible
	// hardware loss surfaces as ErrDisconnected / ErrNoCapablePE and
	// residual deadline misses are reported as-is.
	DisableShedding bool
}

// StreamStep reports what one event did to the schedule.
type StreamStep struct {
	// Time is the event instant; Event the coalesced faults applied.
	Time  int64
	Event StreamEvent
	// Frozen counts tasks kept verbatim: they started before the event
	// and their delivered outputs survive on alive hardware.
	Frozen int
	// Rescheduled counts suffix tasks re-placed and re-timed.
	Rescheduled int
	// Interrupted counts tasks that had already started but must
	// re-run: their PE died mid-execution, or they finished on a PE
	// that died before a not-yet-started consumer could be fed from it.
	Interrupted int
	// Migrated counts suffix tasks whose PE changed at this event.
	Migrated int
	// RepairMoves counts accepted suffix-repair migrations.
	RepairMoves int
	// Shed lists tasks abandoned at this event (with closures).
	Shed []ctg.TaskID
	// MissesAfter / EnergyAfter describe the post-event hybrid.
	MissesAfter int
	EnergyAfter float64
}

// StreamResult is the outcome of replaying an online fault stream.
type StreamResult struct {
	// Schedule is the final hybrid: the committed prefix of the last
	// event verbatim plus the incrementally rebuilt suffix. Its frozen
	// placements may reference hardware that is now dead (they describe
	// the past); only the suffix is guaranteed to run on survivors, so
	// the hybrid is not Validate-clean against the degraded platform.
	Schedule *sched.Schedule
	// Graph is the CTG the final suffix was built against (dead PEs
	// incapable, shed tasks zeroed).
	Graph *ctg.Graph
	// Degraded is the cumulative degraded platform after the last
	// event.
	Degraded *Degraded
	// Steps has one entry per distinct event time, in order.
	Steps []StreamStep
	// Shed accumulates every task abandoned across the stream.
	Shed []ctg.TaskID
	// MissesBefore / EnergyBefore describe the fault-free input.
	MissesBefore int
	EnergyBefore float64
}

// Feasible reports whether the final hybrid meets every surviving
// deadline.
func (r *StreamResult) Feasible() bool {
	if len(r.Steps) == 0 {
		return r.MissesBefore == 0
	}
	return r.Steps[len(r.Steps)-1].MissesAfter == 0
}

// EnergyOverhead returns the fractional energy cost of surviving the
// stream: (after - before) / before; negative when shedding freed more
// energy than the detours cost.
func (r *StreamResult) EnergyOverhead() float64 {
	if len(r.Steps) == 0 || r.EnergyBefore == 0 {
		return 0
	}
	return (r.Steps[len(r.Steps)-1].EnergyAfter - r.EnergyBefore) / r.EnergyBefore
}

// errStreamOrderCycle marks a suffix whose inherited per-PE order
// contradicts the task graph; it should be unreachable (the order is
// derived from a valid schedule) and is surfaced rather than repaired.
var errStreamOrderCycle = errors.New("fault: stream suffix order conflicts with task dependencies")

// streamState is the evolving picture ReplayStream threads between
// events.
type streamState struct {
	cur  *sched.Schedule // current hybrid (the input schedule initially)
	g    *ctg.Graph      // working CTG: shed tasks zeroed, history-only edges drained
	shed []bool          // shed mask over g
	d    *Degraded       // cumulative degraded platform
}

// ReplayStream plays an online fault trace against a committed
// schedule. Events are coalesced by time and applied in order; at each
// event time t the schedule is checkpointed: every task that started
// before t is frozen exactly as committed, and only the not-yet-started
// suffix is re-placed and re-timed on the surviving hardware — recovery
// never re-plans the past.
//
// A task that had started but whose PE died mid-execution is
// interrupted and rejoins the suffix, as does a finished task whose
// outputs are marooned on a dead tile while a suffix consumer still
// needs them (the producer re-runs on a survivor to regenerate the
// data). When the loss is infeasible — the fabric splits, a task loses
// its last capable PE, or deadline misses survive the suffix repair —
// graceful degradation sheds suffix tasks by criticality until the
// remainder fits, unless DisableShedding asks for the typed errors
// instead.
func ReplayStream(s *sched.Schedule, stream Stream, opts StreamOptions) (*StreamResult, error) {
	if s == nil {
		return nil, fmt.Errorf("fault: nil schedule")
	}
	if err := stream.Validate(); err != nil {
		return nil, err
	}
	endSpan := opts.EAS.Telemetry.T().Span("fault-stream", "online fault stream replay")
	defer endSpan()

	res := &StreamResult{
		Schedule:     s,
		Graph:        s.Graph,
		MissesBefore: len(s.DeadlineMisses()),
		EnergyBefore: s.TotalEnergy(),
	}
	st := &streamState{
		cur:  s,
		g:    s.Graph.Clone(),
		shed: make([]bool, s.Graph.NumTasks()),
	}
	cum := &Scenario{Name: "stream"}
	for _, ev := range coalesceStream(stream) {
		cum.PEs = append(cum.PEs, ev.PEs...)
		cum.Routers = append(cum.Routers, ev.Routers...)
		cum.Links = append(cum.Links, ev.Links...)
		step, err := applyStreamEvent(st, s, cum, ev, opts)
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, *step)
		res.Shed = append(res.Shed, step.Shed...)
		if r := opts.EAS.Telemetry.R(); r != nil {
			r.Counter(MetricStreamEvents).Inc()
			r.Counter(MetricStreamFrozenTasks).Add(int64(step.Frozen))
			r.Counter(MetricStreamRescheduled).Add(int64(step.Rescheduled))
			r.Counter(MetricStreamShed).Add(int64(len(step.Shed)))
		}
	}
	res.Schedule = st.cur
	res.Graph = st.cur.Graph
	res.Degraded = st.d
	return res, nil
}

// applyStreamEvent advances the state across one coalesced event.
func applyStreamEvent(st *streamState, base *sched.Schedule, cum *Scenario, ev StreamEvent, opts StreamOptions) (*StreamStep, error) {
	t := ev.Time
	sc := &Scenario{
		Name:    fmt.Sprintf("stream@%d", t),
		PEs:     append([]noc.TileID(nil), cum.PEs...),
		Routers: append([]noc.TileID(nil), cum.Routers...),
		Links:   append([]noc.LinkID(nil), cum.Links...),
		Cycle:   t,
	}
	d, err := Degrade(base.ACG.Platform(), base.ACG.Model(), sc)
	if errors.Is(err, ErrDisconnected) && !opts.DisableShedding {
		d, err = DegradeRestricted(base.ACG.Platform(), base.ACG.Model(), sc)
	}
	if err != nil {
		return nil, err
	}

	step := &StreamStep{Time: t, Event: ev}
	cur, g := st.cur, st.g
	n := g.NumTasks()

	// Checkpoint: freeze the committed prefix. A task is frozen when it
	// started before t, unless it was cut down mid-execution (its PE
	// died under it) or it is marooned: finished on a now-dead tile with
	// a suffix consumer still owed data from it. Unfreezing a marooned
	// producer can maroon its own producers, so iterate to fixpoint.
	frozen := make([]bool, n)
	for i := range frozen {
		frozen[i] = cur.Tasks[i].Start < t
	}
	for i := range frozen {
		if frozen[i] && cur.Tasks[i].Finish > t && d.DeadPE[cur.Tasks[i].PE] {
			frozen[i] = false
			step.Interrupted++
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if frozen[i] {
				continue
			}
			for _, eid := range g.In(ctg.TaskID(i)) {
				e := g.Edge(eid)
				if e.Volume > 0 && frozen[e.Src] && d.DeadPE[cur.Tasks[e.Src].PE] {
					frozen[e.Src] = false
					step.Interrupted++
					changed = true
				}
			}
		}
	}

	// Transactions delivered into the frozen prefix are history. When
	// the degraded ACG can no longer price one (its source tile lost
	// routing), drain the edge: the data arrived before the fault and
	// will never be re-sent, so it must not poison the energy account
	// with an unroutable-pair infinity.
	for i := 0; i < n; i++ {
		if !frozen[i] {
			continue
		}
		for _, eid := range g.In(ctg.TaskID(i)) {
			e := g.Edge(eid)
			tr := &cur.Transactions[eid]
			if e.Volume > 0 && tr.SrcPE != tr.DstPE && !d.ACG.Reachable(tr.SrcPE, tr.DstPE) {
				e.Volume = 0
			}
		}
	}

	// Suffix tasks the survivors cannot run at all are shed outright
	// (with their not-yet-run closures), or surfaced when shedding is
	// off.
	notFrozen := func(x ctg.TaskID) bool { return !frozen[x] }
	for i := 0; i < n; i++ {
		tid := ctg.TaskID(i)
		if frozen[i] || st.shed[i] || hasAlivePE(g, d, tid) {
			continue
		}
		if opts.DisableShedding {
			return nil, fmt.Errorf("%w: task %d (%q) at stream event t=%d",
				ErrNoCapablePE, tid, g.Task(tid).Name, t)
		}
		step.Shed = append(step.Shed, shedApply(g, tid, st.shed, notFrozen)...)
	}

	dg, err := degradeGraphSuffix(d, g, frozen)
	if err != nil {
		return nil, err
	}

	// Inherit the current assignment; evict suffix tasks stranded on
	// dead or incapable PEs to their cheapest surviving home.
	assign := make([]int, n)
	for i := range assign {
		assign[i] = cur.Tasks[i].PE
	}
	for i := 0; i < n; i++ {
		tid := ctg.TaskID(i)
		if frozen[i] {
			continue
		}
		if !d.DeadPE[assign[i]] && dg.Task(tid).RunnableOn(assign[i]) {
			continue
		}
		dst, derr := cheapestAlivePE(dg, d, assign, tid)
		if derr != nil {
			return nil, derr
		}
		assign[i] = dst
	}
	order := suffixOrder(cur, frozen, assign, d.ACG.NumPEs())

	hyb, err := rebuildSuffix(dg, d, cur, frozen, t, order, cur.Algorithm)
	if err != nil {
		return nil, err
	}

	// Claw back deadlines with bounded suffix migrations, then — if
	// misses survive and shedding is allowed — abandon suffix work by
	// criticality until the remainder fits.
	budget := opts.RepairBudget
	if budget <= 0 {
		budget = DefaultStreamRepairBudget
	}
	hyb, step.RepairMoves, err = repairSuffix(dg, d, cur, frozen, t, assign, order, hyb, budget)
	if err != nil {
		return nil, err
	}
	maxShed := opts.Shed.MaxShed
	if maxShed <= 0 {
		maxShed = n
	}
	for !opts.DisableShedding && len(hyb.DeadlineMisses()) > 0 && shedCount(st.shed) < maxShed {
		progressed := false
		for _, c := range shedCandidates(g, hyb, st.shed, notFrozen) {
			gTry := g.Clone()
			maskTry := append([]bool(nil), st.shed...)
			newly := shedApply(gTry, c, maskTry, notFrozen)
			if len(newly) == 0 {
				continue
			}
			dgTry, derr := degradeGraphSuffix(d, gTry, frozen)
			if derr != nil {
				continue
			}
			hybTry, herr := rebuildSuffix(dgTry, d, cur, frozen, t, order, cur.Algorithm)
			if herr != nil {
				continue
			}
			if !eas.MetricBetter(hybTry, hyb) {
				continue
			}
			g, dg, hyb = gTry, dgTry, hybTry
			st.g, st.shed = gTry, maskTry
			step.Shed = append(step.Shed, newly...)
			progressed = true
			break
		}
		if !progressed {
			break
		}
	}

	for i := 0; i < n; i++ {
		if frozen[i] {
			step.Frozen++
			continue
		}
		step.Rescheduled++
		if hyb.Tasks[i].PE != cur.Tasks[i].PE {
			step.Migrated++
		}
	}
	step.MissesAfter = len(hyb.DeadlineMisses())
	step.EnergyAfter = hyb.TotalEnergy()
	st.cur, st.d = hyb, d
	return step, nil
}

// degradeGraphSuffix is Degraded.DegradeGraph restricted to the tasks
// that still need a PE: dead PEs are marked incapable for suffix tasks
// only, and only suffix tasks must stay runnable somewhere — a frozen
// task that completed on since-dead hardware is history, not an error.
func degradeGraphSuffix(d *Degraded, g *ctg.Graph, frozen []bool) (*ctg.Graph, error) {
	cp := g.Clone()
	for i := 0; i < cp.NumTasks(); i++ {
		if frozen[i] {
			continue
		}
		task := cp.Task(ctg.TaskID(i))
		alive := false
		for k := range task.ExecTime {
			if k < len(d.DeadPE) && d.DeadPE[k] {
				task.ExecTime[k] = -1
				continue
			}
			if task.ExecTime[k] >= 0 {
				alive = true
			}
		}
		if !alive {
			return nil, fmt.Errorf("%w: task %d (%q) under scenario %q",
				ErrNoCapablePE, task.ID, task.Name, d.Scenario.Name)
		}
	}
	return cp, nil
}

// suffixOrder distributes the suffix tasks over their assigned PEs in
// ascending previous-start order, the local execution order the repair
// machinery perturbs.
func suffixOrder(cur *sched.Schedule, frozen []bool, assign []int, npes int) [][]ctg.TaskID {
	var suffix []ctg.TaskID
	for i := range frozen {
		if !frozen[i] {
			suffix = append(suffix, ctg.TaskID(i))
		}
	}
	sort.Slice(suffix, func(a, b int) bool {
		sa, sb := cur.Tasks[suffix[a]].Start, cur.Tasks[suffix[b]].Start
		if sa != sb {
			return sa < sb
		}
		return suffix[a] < suffix[b]
	})
	order := make([][]ctg.TaskID, npes)
	for _, tid := range suffix {
		order[assign[tid]] = append(order[assign[tid]], tid)
	}
	return order
}

// rebuildSuffix derives the hybrid schedule for one event: the blocked
// prefix [0, t) is reserved everywhere, frozen placements are committed
// verbatim (in-flight tails extend their PE reservations past t), and
// the suffix is committed in the repair pipeline's order-respecting
// fashion with every start floored at t — the floor, not the block, is
// what pins zero-width tasks past the checkpoint.
func rebuildSuffix(dg *ctg.Graph, d *Degraded, prev *sched.Schedule, frozen []bool, t int64, order [][]ctg.TaskID, algorithm string) (*sched.Schedule, error) {
	b := sched.NewBuilder(dg, d.ACG, algorithm)
	if err := b.BlockPast(t); err != nil {
		return nil, err
	}
	lastFinish := make([]int64, len(order))
	for k := range lastFinish {
		lastFinish[k] = t
	}
	for i := range frozen {
		if !frozen[i] {
			continue
		}
		tp := prev.Tasks[i]
		var trans []sched.TransactionPlacement
		for _, eid := range dg.In(ctg.TaskID(i)) {
			trans = append(trans, prev.Transactions[eid])
		}
		if err := b.CommitFrozen(tp, trans); err != nil {
			return nil, err
		}
		if !d.DeadPE[tp.PE] && tp.Finish > lastFinish[tp.PE] {
			lastFinish[tp.PE] = tp.Finish
		}
	}
	pos := make([]int, len(order))
	for b.Committed() < dg.NumTasks() {
		best := ctg.TaskID(-1)
		bestPE := -1
		bestKey := int64(math.MaxInt64)
		for pe := range order {
			if pos[pe] >= len(order[pe]) {
				continue
			}
			tid := order[pe][pos[pe]]
			if !b.Ready(tid) {
				continue
			}
			key := int64(0)
			for _, p := range dg.Pred(tid) {
				if f := b.TaskPlacement(p).Finish; f > key {
					key = f
				}
			}
			if key < bestKey || (key == bestKey && tid < best) {
				best, bestPE, bestKey = tid, pe, key
			}
		}
		if best < 0 {
			return nil, errStreamOrderCycle
		}
		if _, err := b.CommitAfter(best, bestPE, lastFinish[bestPE]); err != nil {
			return nil, err
		}
		lastFinish[bestPE] = b.TaskPlacement(best).Finish
		pos[bestPE]++
	}
	return b.Finish()
}

// repairSuffix claws back deadline misses with suffix-only migrations:
// missed tasks and their suffix ancestors, latest start first, are
// offered alternative surviving PEs in ascending energy order; a move
// is kept only when the rebuilt hybrid strictly improves the deadline
// metric. Budget caps attempted (not accepted) moves. The inherited
// assign/order are updated in place for accepted moves.
func repairSuffix(dg *ctg.Graph, d *Degraded, prev *sched.Schedule, frozen []bool, t int64, assign []int, order [][]ctg.TaskID, hyb *sched.Schedule, budget int) (*sched.Schedule, int, error) {
	moves := 0
	for budget > 0 && len(hyb.DeadlineMisses()) > 0 {
		improved := false
	search:
		for _, c := range suffixRepairCandidates(dg, hyb, frozen) {
			for _, k := range alivePEsByEnergy(dg, d, assign, c) {
				if k == assign[c] {
					continue
				}
				if budget <= 0 {
					break search
				}
				budget--
				oldPE := assign[c]
				moveTask(hyb, order, assign, c, k)
				cand, err := rebuildSuffix(dg, d, prev, frozen, t, order, hyb.Algorithm)
				if err == nil && eas.MetricBetter(cand, hyb) {
					hyb = cand
					moves++
					improved = true
					break search
				}
				moveTask(hyb, order, assign, c, oldPE)
			}
		}
		if !improved {
			break
		}
	}
	return hyb, moves, nil
}

// suffixRepairCandidates returns the suffix tasks worth migrating:
// every missed-deadline task and its suffix ancestors, latest previous
// start first (the repair pipeline's critical-task order).
func suffixRepairCandidates(dg *ctg.Graph, hyb *sched.Schedule, frozen []bool) []ctg.TaskID {
	seen := make(map[ctg.TaskID]bool)
	var cands []ctg.TaskID
	add := func(x ctg.TaskID) {
		if !frozen[x] && !seen[x] {
			seen[x] = true
			cands = append(cands, x)
		}
	}
	for _, m := range hyb.DeadlineMisses() {
		add(m)
		for _, a := range dg.Ancestors(m) {
			add(a)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return hyb.Tasks[cands[i]].Start > hyb.Tasks[cands[j]].Start
	})
	return cands
}

// alivePEsByEnergy returns the surviving capable PEs for task c in
// ascending execution-plus-communication energy under the current
// assignment (the GTM destination order).
func alivePEsByEnergy(dg *ctg.Graph, d *Degraded, assign []int, c ctg.TaskID) []int {
	task := dg.Task(c)
	type cost struct {
		k int
		e float64
	}
	var cs []cost
	for k := 0; k < d.ACG.NumPEs(); k++ {
		if d.DeadPE[k] || !task.RunnableOn(k) {
			continue
		}
		e := task.Energy[k]
		for _, eid := range dg.In(c) {
			edge := dg.Edge(eid)
			if !d.DeadPE[assign[edge.Src]] {
				e += d.ACG.CommEnergy(edge.Volume, assign[edge.Src], k)
			}
		}
		for _, eid := range dg.Out(c) {
			edge := dg.Edge(eid)
			if !d.DeadPE[assign[edge.Dst]] {
				e += d.ACG.CommEnergy(edge.Volume, k, assign[edge.Dst])
			}
		}
		cs = append(cs, cost{k, e})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].e != cs[j].e {
			return cs[i].e < cs[j].e
		}
		return cs[i].k < cs[j].k
	})
	out := make([]int, len(cs))
	for i := range cs {
		out[i] = cs[i].k
	}
	return out
}

// coalesceStream sorts the stream by time and merges same-instant
// events, copying the fault lists so the caller's stream is never
// aliased.
func coalesceStream(st Stream) []StreamEvent {
	evs := append(Stream(nil), st...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	var out []StreamEvent
	for _, ev := range evs {
		if len(out) > 0 && out[len(out)-1].Time == ev.Time {
			last := &out[len(out)-1]
			last.PEs = append(last.PEs, ev.PEs...)
			last.Routers = append(last.Routers, ev.Routers...)
			last.Links = append(last.Links, ev.Links...)
			continue
		}
		out = append(out, StreamEvent{
			Time:    ev.Time,
			PEs:     append([]noc.TileID(nil), ev.PEs...),
			Routers: append([]noc.TileID(nil), ev.Routers...),
			Links:   append([]noc.LinkID(nil), ev.Links...),
		})
	}
	return out
}

// shedCount counts set bits in a shed mask.
func shedCount(shed []bool) int {
	n := 0
	for _, s := range shed {
		if s {
			n++
		}
	}
	return n
}
