package fault

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"nocsched/internal/noc"
	"nocsched/internal/sim"
)

func testPlatform(t *testing.T, w, h int) *noc.Platform {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(w, h, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := &Scenario{
		Name:    "corner-blast",
		PEs:     []noc.TileID{5},
		Routers: []noc.TileID{1, 7},
		Links:   []noc.LinkID{3, 17},
		Cycle:   42,
	}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sc) {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}
	if _, err := ReadScenario(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	p := testPlatform(t, 3, 3)
	good := &Scenario{PEs: []noc.TileID{0}, Routers: []noc.TileID{8}, Links: []noc.LinkID{0}}
	if err := good.Validate(p); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := []*Scenario{
		{PEs: []noc.TileID{9}},
		{PEs: []noc.TileID{-1}},
		{Routers: []noc.TileID{99}},
		{Links: []noc.LinkID{1000}},
		{Links: []noc.LinkID{-2}},
		{Cycle: -1},
	}
	for _, sc := range bad {
		if err := sc.Validate(p); err == nil {
			t.Errorf("scenario %+v accepted", sc)
		}
	}
	if err := good.Validate(nil); err == nil {
		t.Error("nil platform accepted")
	}
}

func TestScenarioDeadPE(t *testing.T) {
	sc := &Scenario{PEs: []noc.TileID{2}, Routers: []noc.TileID{5}}
	if !sc.DeadPE(2) {
		t.Error("direct PE fault not dead")
	}
	if !sc.DeadPE(5) {
		t.Error("router fault must kill the tile's PE too")
	}
	if sc.DeadPE(0) {
		t.Error("healthy tile reported dead")
	}
}

func TestScenarioSimFaults(t *testing.T) {
	sc := &Scenario{
		PEs:     []noc.TileID{1},
		Routers: []noc.TileID{2},
		Links:   []noc.LinkID{3},
		Cycle:   7,
	}
	faults := sc.SimFaults()
	if len(faults) != 3 {
		t.Fatalf("len = %d, want 3", len(faults))
	}
	kinds := map[sim.FaultKind]int{}
	for _, f := range faults {
		kinds[f.Kind]++
		if f.Cycle != 7 {
			t.Errorf("fault %+v has cycle %d, want 7", f, f.Cycle)
		}
	}
	if kinds[sim.FaultPE] != 1 || kinds[sim.FaultRouter] != 1 || kinds[sim.FaultLink] != 1 {
		t.Errorf("kind histogram %v", kinds)
	}
}

func TestRandomScenarioDeterministic(t *testing.T) {
	p := testPlatform(t, 4, 4)
	a := Random(rand.New(rand.NewSource(11)), p, 3)
	b := Random(rand.New(rand.NewSource(11)), p, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.NumFaults() != 3 {
		t.Fatalf("NumFaults = %d, want 3", a.NumFaults())
	}
	if err := a.Validate(p); err != nil {
		t.Fatalf("random scenario invalid: %v", err)
	}
	// Different seeds should explore different fault sets eventually.
	diverged := false
	for seed := int64(0); seed < 20; seed++ {
		if !reflect.DeepEqual(a, Random(rand.New(rand.NewSource(seed)), p, 3)) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("20 seeds produced identical scenarios")
	}
}
