package fault

import (
	"errors"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

func TestDegradeFaultFree(t *testing.T) {
	p := testPlatform(t, 3, 3)
	d, err := Degrade(p, energy.DefaultModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.AlivePEs() != 9 {
		t.Fatalf("AlivePEs = %d, want 9", d.AlivePEs())
	}
	for i, dead := range d.DeadPE {
		if dead {
			t.Fatalf("PE %d dead under the empty scenario", i)
		}
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if !d.ACG.Reachable(i, j) {
				t.Fatalf("pair %d->%d unreachable on a fault-free mesh", i, j)
			}
		}
	}
}

func TestDegradeDeadFlags(t *testing.T) {
	p := testPlatform(t, 3, 3)
	sc := &Scenario{PEs: []noc.TileID{2}, Routers: []noc.TileID{4}}
	d, err := Degrade(p, energy.DefaultModel(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !d.DeadPE[2] || !d.DeadPE[4] {
		t.Fatal("dead flags not set for PE and router faults")
	}
	if d.AlivePEs() != 7 {
		t.Fatalf("AlivePEs = %d, want 7", d.AlivePEs())
	}
	// A dead PE keeps its router: pairs through tile 2 stay reachable.
	if !d.ACG.Reachable(0, 2) {
		t.Error("PE fault must not make its tile unroutable")
	}
	// A dead router poisons every pair touching tile 4.
	if d.ACG.Reachable(0, 4) || d.ACG.Reachable(4, 8) {
		t.Error("router fault left its tile routable")
	}
}

func TestDegradeDisconnected(t *testing.T) {
	p := testPlatform(t, 3, 3)
	// Killing routers 1 and 3 strands the alive corner tile 0.
	sc := &Scenario{Name: "island", Routers: []noc.TileID{1, 3}}
	_, err := Degrade(p, energy.DefaultModel(), sc)
	if err == nil {
		t.Fatal("disconnecting scenario accepted")
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("error %v does not wrap ErrDisconnected", err)
	}
}

func TestDegradeInvalidScenario(t *testing.T) {
	p := testPlatform(t, 3, 3)
	if _, err := Degrade(p, energy.DefaultModel(), &Scenario{PEs: []noc.TileID{42}}); err == nil {
		t.Fatal("out-of-range scenario accepted")
	}
}

func TestDegradeGraph(t *testing.T) {
	p := testPlatform(t, 2, 2)
	d, err := Degrade(p, energy.DefaultModel(), &Scenario{PEs: []noc.TileID{3}})
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("dg")
	id, err := g.AddTask("t", []int64{10, 10, 10, 10}, []float64{1, 1, 1, 1}, ctg.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := d.DegradeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Task(id).RunnableOn(3) {
		t.Error("task still runnable on the dead PE")
	}
	if !dg.Task(id).RunnableOn(0) {
		t.Error("task lost a surviving PE")
	}
	// The original graph must be untouched.
	if !g.Task(id).RunnableOn(3) {
		t.Error("DegradeGraph mutated its input")
	}
}

func TestDegradeGraphNoCapablePE(t *testing.T) {
	p := testPlatform(t, 2, 2)
	d, err := Degrade(p, energy.DefaultModel(), &Scenario{PEs: []noc.TileID{1}})
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("pinned")
	// Runnable only on PE 1, which the scenario kills.
	if _, err := g.AddTask("pin", []int64{-1, 10, -1, -1}, []float64{0, 1, 0, 0}, ctg.NoDeadline); err != nil {
		t.Fatal(err)
	}
	_, err = d.DegradeGraph(g)
	if err == nil {
		t.Fatal("stranded task accepted")
	}
	if !errors.Is(err, ErrNoCapablePE) {
		t.Fatalf("error %v does not wrap ErrNoCapablePE", err)
	}
}

func TestTriage(t *testing.T) {
	p := testPlatform(t, 3, 3)
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g, err := tgff.Generate(tgff.Params{
		Name: "triage", Seed: 5, NumTasks: 30, MaxInDegree: 3,
		LocalityWindow: 10, TaskTypes: 6, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 4096,
		DeadlineLaxity: 3, DeadlineFraction: 1, Platform: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eas.Schedule(g, acg, eas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schedule

	// Kill the PE hosting task 0 and the first link of the first routed
	// transaction: triage must flag both.
	deadPE := noc.TileID(s.Tasks[0].PE)
	var deadLink noc.LinkID = -1
	for i := range s.Transactions {
		if len(s.Transactions[i].Route) > 0 {
			deadLink = s.Transactions[i].Route[0]
			break
		}
	}
	if deadLink < 0 {
		t.Skip("schedule has no routed transactions")
	}
	sc := &Scenario{PEs: []noc.TileID{deadPE}, Links: []noc.LinkID{deadLink}}
	d, err := Degrade(p, energy.DefaultModel(), sc)
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Triage(s)
	if !tr.Affected() {
		t.Fatal("triage found nothing despite targeted faults")
	}
	found := false
	for _, id := range tr.StrandedTasks {
		if id == 0 {
			found = true
		}
		if s.Tasks[id].PE != int(deadPE) {
			t.Errorf("task %d stranded but lives on PE %d", id, s.Tasks[id].PE)
		}
	}
	if !found {
		t.Error("task 0 not flagged stranded")
	}
	if len(tr.SeveredTransactions) == 0 {
		t.Error("no transaction flagged severed")
	}
	for _, eid := range tr.SeveredTransactions {
		hit := false
		for _, l := range s.Transactions[eid].Route {
			if d.Topology.DeadLink(l) {
				hit = true
			}
		}
		if !hit {
			t.Errorf("transaction %d severed without a dead link on its route", eid)
		}
	}

	// The empty scenario triages nothing.
	d0, err := Degrade(p, energy.DefaultModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr := d0.Triage(s); tr.Affected() {
		t.Errorf("empty scenario triaged %+v", tr)
	}
}
