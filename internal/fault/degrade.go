package fault

import (
	"fmt"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
)

// Degraded is a platform with a scenario applied: the same tiles and
// link IDs as the base platform, but with dead hardware removed from
// routing and dead PEs flagged. Schedules produced against a Degraded
// (via its ACG and a graph from DegradeGraph) validate and replay on
// the surviving hardware.
type Degraded struct {
	// Scenario is the applied fault set.
	Scenario *Scenario
	// Base is the fault-free platform the scenario was applied to.
	Base *noc.Platform
	// Platform is the degraded platform: the base PE classes and link
	// bandwidth over the degraded topology.
	Platform *noc.Platform
	// Topology is Platform.Topo, typed.
	Topology *noc.DegradedTopology
	// ACG is the partial architecture characterization graph of the
	// degraded platform (pairs involving dead routers are unroutable).
	ACG *energy.ACG
	// DeadPE[k] is true when tile k can no longer execute tasks
	// (its PE or its router died).
	DeadPE []bool
}

// Degrade applies a scenario to a platform under an energy model. It
// returns an error wrapping ErrDisconnected when the surviving tiles
// are no longer mutually reachable; a validation error reports an
// ill-formed scenario (unknown tiles or links). A scenario that kills
// every PE is reported via ErrNoCapablePE at DegradeGraph time.
func Degrade(p *noc.Platform, m energy.Model, sc *Scenario) (*Degraded, error) {
	if sc == nil {
		sc = &Scenario{}
	}
	if err := sc.Validate(p); err != nil {
		return nil, err
	}
	topo, err := noc.NewDegradedTopology(p.Topo, sc.Routers, sc.Links)
	if err != nil {
		return nil, err
	}
	if pairs := topo.UnreachablePairs(); len(pairs) > 0 {
		return nil, fmt.Errorf("%w: scenario %q leaves %d tile pairs unreachable (e.g. %d->%d)",
			ErrDisconnected, sc.Name, len(pairs), pairs[0][0], pairs[0][1])
	}
	platform, err := noc.NewPlatform(topo, p.Classes, p.LinkBandwidth)
	if err != nil {
		return nil, err
	}
	acg, err := energy.BuildACGPartial(platform, m)
	if err != nil {
		return nil, err
	}
	d := &Degraded{
		Scenario: sc,
		Base:     p,
		Platform: platform,
		Topology: topo,
		ACG:      acg,
		DeadPE:   make([]bool, p.NumPEs()),
	}
	for k := range d.DeadPE {
		d.DeadPE[k] = sc.DeadPE(noc.TileID(k))
	}
	return d, nil
}

// DegradeRestricted applies a scenario like Degrade but survives a
// disconnected fabric: instead of failing with ErrDisconnected it
// restricts execution to the largest surviving island — the mutually-
// reachable component of alive routers holding the most alive PEs —
// and marks every PE outside it dead. Mutual reachability is an
// equivalence here (routes are symmetric compositions of bidirectional
// links), so the islands partition the alive tiles. It still returns an
// error wrapping ErrNoCapablePE when the fabric split but no island
// retains a single PE; a scenario that kills every PE without
// splitting anything is, like Degrade, reported at DegradeGraph time.
func DegradeRestricted(p *noc.Platform, m energy.Model, sc *Scenario) (*Degraded, error) {
	if sc == nil {
		sc = &Scenario{}
	}
	if err := sc.Validate(p); err != nil {
		return nil, err
	}
	topo, err := noc.NewDegradedTopology(p.Topo, sc.Routers, sc.Links)
	if err != nil {
		return nil, err
	}
	platform, err := noc.NewPlatform(topo, p.Classes, p.LinkBandwidth)
	if err != nil {
		return nil, err
	}
	acg, err := energy.BuildACGPartial(platform, m)
	if err != nil {
		return nil, err
	}
	d := &Degraded{
		Scenario: sc,
		Base:     p,
		Platform: platform,
		Topology: topo,
		ACG:      acg,
		DeadPE:   make([]bool, p.NumPEs()),
	}
	for k := range d.DeadPE {
		d.DeadPE[k] = sc.DeadPE(noc.TileID(k))
	}
	if len(topo.UnreachablePairs()) == 0 {
		return d, nil // fabric intact: identical to Degrade
	}
	n := p.NumPEs()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	for i := 0; i < n; i++ {
		if topo.DeadRouter(noc.TileID(i)) || comp[i] >= 0 {
			continue
		}
		comp[i] = nc
		for j := i + 1; j < n; j++ {
			if topo.DeadRouter(noc.TileID(j)) || comp[j] >= 0 {
				continue
			}
			if topo.Hops(noc.TileID(i), noc.TileID(j)) >= 0 &&
				topo.Hops(noc.TileID(j), noc.TileID(i)) >= 0 {
				comp[j] = nc
			}
		}
		nc++
	}
	counts := make([]int, nc)
	for i := 0; i < n; i++ {
		if comp[i] >= 0 && !d.DeadPE[i] {
			counts[comp[i]]++
		}
	}
	bestC, bestAlive := -1, 0
	for c, cnt := range counts {
		if cnt > bestAlive {
			bestC, bestAlive = c, cnt
		}
	}
	if bestC < 0 {
		return nil, fmt.Errorf("%w: scenario %q leaves no island with an alive PE",
			ErrNoCapablePE, sc.Name)
	}
	for i := 0; i < n; i++ {
		if comp[i] != bestC {
			d.DeadPE[i] = true
		}
	}
	return d, nil
}

// AlivePEs returns the number of tiles that can still execute tasks.
func (d *Degraded) AlivePEs() int {
	alive := 0
	for _, dead := range d.DeadPE {
		if !dead {
			alive++
		}
	}
	return alive
}

// DegradeGraph returns a copy of g with every dead PE marked incapable
// in each task's per-PE table, so no scheduler can place work on dead
// hardware. It returns an error wrapping ErrNoCapablePE when a task is
// left with no PE at all.
func (d *Degraded) DegradeGraph(g *ctg.Graph) (*ctg.Graph, error) {
	cp := g.Clone()
	for i := 0; i < cp.NumTasks(); i++ {
		task := cp.Task(ctg.TaskID(i))
		alive := false
		for k := range task.ExecTime {
			if k < len(d.DeadPE) && d.DeadPE[k] {
				task.ExecTime[k] = -1
				continue
			}
			if task.ExecTime[k] >= 0 {
				alive = true
			}
		}
		if !alive {
			return nil, fmt.Errorf("%w: task %d (%q) under scenario %q",
				ErrNoCapablePE, task.ID, task.Name, d.Scenario.Name)
		}
	}
	return cp, nil
}

// Triage classifies what a scenario invalidates in a schedule.
type Triage struct {
	// StrandedTasks are tasks mapped on PEs the scenario killed; they
	// must migrate.
	StrandedTasks []ctg.TaskID
	// SeveredTransactions are data transactions whose scheduled route
	// uses a dead link or transits a dead router; their endpoints may
	// survive but the traffic must be re-routed and re-timed.
	SeveredTransactions []ctg.EdgeID
}

// Affected reports whether the scenario invalidates anything at all.
func (t Triage) Affected() bool {
	return len(t.StrandedTasks) > 0 || len(t.SeveredTransactions) > 0
}

// Triage inspects a fault-free schedule against the degraded platform
// and reports which of its placements the scenario invalidates.
func (d *Degraded) Triage(s *sched.Schedule) Triage {
	var tr Triage
	for i := range s.Tasks {
		if d.DeadPE[s.Tasks[i].PE] {
			tr.StrandedTasks = append(tr.StrandedTasks, s.Tasks[i].Task)
		}
	}
	for i := range s.Transactions {
		t := &s.Transactions[i]
		for _, l := range t.Route {
			if d.Topology.DeadLink(l) {
				tr.SeveredTransactions = append(tr.SeveredTransactions, t.Edge)
				break
			}
		}
	}
	return tr
}
