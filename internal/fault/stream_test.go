package fault

import (
	"errors"
	"reflect"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
)

// mkStreamTask adds a task runnable everywhere (or only on the listed
// tiles) with unit energy.
func mkStreamTask(t *testing.T, g *ctg.Graph, npes int, exec, deadline int64, only ...int) ctg.TaskID {
	t.Helper()
	execs := make([]int64, npes)
	en := make([]float64, npes)
	for i := range execs {
		execs[i] = exec
		en[i] = 1
	}
	if len(only) > 0 {
		for i := range execs {
			execs[i] = -1
		}
		for _, k := range only {
			execs[k] = exec
		}
	}
	id, err := g.AddTask("t", execs, en, deadline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// streamChain hand-builds a -> b -> c on tiles 0, 4, 8 of a 3x3 mesh
// with a generous deadline on the sink.
func streamChain(t *testing.T) *sched.Schedule {
	t.Helper()
	p := testPlatform(t, 3, 3)
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("stream-chain")
	a := mkStreamTask(t, g, 9, 20, ctg.NoDeadline)
	b := mkStreamTask(t, g, 9, 20, ctg.NoDeadline)
	c := mkStreamTask(t, g, 9, 20, 100000)
	if _, err := g.AddEdge(a, b, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, c, 1024); err != nil {
		t.Fatal(err)
	}
	bld := sched.NewBuilder(g, acg, "test")
	for i, pe := range []int{0, 4, 8} {
		if _, err := bld.Commit(ctg.TaskID(i), pe); err != nil {
			t.Fatal(err)
		}
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStreamEmpty(t *testing.T) {
	s := streamChain(t)
	res, err := ReplayStream(s, nil, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule != s || len(res.Steps) != 0 || len(res.Shed) != 0 {
		t.Fatalf("empty stream perturbed the schedule: %+v", res)
	}
	if !res.Feasible() {
		t.Fatal("feasible input reported infeasible")
	}
}

func TestStreamValidation(t *testing.T) {
	s := streamChain(t)
	if _, err := ReplayStream(s, Stream{{Time: -1, PEs: []noc.TileID{0}}}, StreamOptions{}); err == nil {
		t.Error("negative event time accepted")
	}
	if _, err := ReplayStream(s, Stream{{Time: 5}}, StreamOptions{}); err == nil {
		t.Error("empty event accepted")
	}
	if _, err := ReplayStream(s, Stream{{Time: 5, PEs: []noc.TileID{99}}}, StreamOptions{}); err == nil {
		t.Error("out-of-range tile accepted")
	}
}

// TestStreamFaultAtTaskStartTick pins the checkpoint boundary: a fault
// landing exactly on a task's start tick reschedules that task (the
// frozen prefix is Start < t, strictly).
func TestStreamFaultAtTaskStartTick(t *testing.T) {
	s := streamChain(t)
	tB := s.Tasks[1].Start
	res, err := ReplayStream(s, Stream{{Time: tB, PEs: []noc.TileID{4}}}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hyb := res.Schedule
	if !reflect.DeepEqual(hyb.Tasks[0], s.Tasks[0]) {
		t.Fatalf("finished prefix task perturbed: %+v vs %+v", hyb.Tasks[0], s.Tasks[0])
	}
	if hyb.Tasks[1].PE == 4 {
		t.Fatal("task left on the PE that died at its start tick")
	}
	if hyb.Tasks[1].Start < tB {
		t.Fatalf("rescheduled task starts at %d, before the event at %d", hyb.Tasks[1].Start, tB)
	}
	if hyb.Tasks[2].Start < hyb.Tasks[1].Finish {
		t.Fatalf("precedence broken: consumer at %d, producer finishes %d",
			hyb.Tasks[2].Start, hyb.Tasks[1].Finish)
	}
	step := res.Steps[0]
	if step.Frozen != 1 || step.Rescheduled != 2 {
		t.Fatalf("partition: frozen %d rescheduled %d, want 1/2", step.Frozen, step.Rescheduled)
	}
	if step.Interrupted != 0 {
		t.Fatalf("start-tick fault counted as interruption: %+v", step)
	}
	if !res.Feasible() {
		t.Fatalf("generous deadline missed: %d misses", step.MissesAfter)
	}
}

// TestStreamInterruptedTaskReruns kills a PE strictly mid-execution:
// the started task is torn down and re-run on a survivor at or after
// the event.
func TestStreamInterruptedTaskReruns(t *testing.T) {
	s := streamChain(t)
	tMid := s.Tasks[1].Start + 1
	if tMid >= s.Tasks[1].Finish {
		t.Fatalf("rig: task 1 too short to interrupt: %+v", s.Tasks[1])
	}
	res, err := ReplayStream(s, Stream{{Time: tMid, PEs: []noc.TileID{4}}}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hyb := res.Schedule
	step := res.Steps[0]
	if step.Interrupted != 1 {
		t.Fatalf("mid-execution kill not counted interrupted: %+v", step)
	}
	if hyb.Tasks[1].PE == 4 || hyb.Tasks[1].Start < tMid {
		t.Fatalf("interrupted task not re-run on a survivor after the event: %+v", hyb.Tasks[1])
	}
	if !reflect.DeepEqual(hyb.Tasks[0], s.Tasks[0]) {
		t.Fatalf("finished prefix task perturbed: %+v", hyb.Tasks[0])
	}
	if !res.Feasible() {
		t.Fatalf("generous deadline missed: %+v", step)
	}
}

// TestStreamMaroonedProducerReruns kills the producer's tile after it
// finished but before its consumer started: the outputs are marooned on
// dead hardware, so the producer must re-run on a survivor even though
// it completed.
func TestStreamMaroonedProducerReruns(t *testing.T) {
	s := streamChain(t)
	tEv := s.Tasks[0].Finish + 1
	if tEv >= s.Tasks[1].Start {
		t.Fatalf("rig: no gap between producer finish and consumer start: %+v %+v",
			s.Tasks[0], s.Tasks[1])
	}
	res, err := ReplayStream(s, Stream{{Time: tEv, PEs: []noc.TileID{0}}}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hyb := res.Schedule
	step := res.Steps[0]
	if step.Interrupted != 1 {
		t.Fatalf("marooned producer not counted interrupted: %+v", step)
	}
	if hyb.Tasks[0].PE == 0 || hyb.Tasks[0].Start < tEv {
		t.Fatalf("marooned producer not re-run on a survivor: %+v", hyb.Tasks[0])
	}
	if hyb.Tasks[1].Start < hyb.Tasks[0].Finish {
		t.Fatalf("consumer at %d precedes re-run producer finishing %d",
			hyb.Tasks[1].Start, hyb.Tasks[0].Finish)
	}
	if step.Frozen != 0 || step.Rescheduled != 3 {
		t.Fatalf("partition: %+v", step)
	}
}

// TestStreamMultiEventCumulative replays two events on a realistic EAS
// schedule and checks the checkpoint and placement invariants hold
// across the cumulative degradation.
func TestStreamMultiEventCumulative(t *testing.T) {
	s := faultRig(t, 7, 30)
	mk := s.Makespan()
	t1, t2 := mk/3, 2*mk/3
	// Kill PEs that actually host post-event work so both events bite.
	pe1, pe2 := -1, -1
	for i := range s.Tasks {
		if s.Tasks[i].Start > t1 && pe1 < 0 {
			pe1 = s.Tasks[i].PE
		}
	}
	for i := range s.Tasks {
		if s.Tasks[i].Start > t2 && s.Tasks[i].PE != pe1 && pe2 < 0 {
			pe2 = s.Tasks[i].PE
		}
	}
	if pe1 < 0 || pe2 < 0 {
		t.Fatalf("rig: no post-event work found (pe1=%d pe2=%d)", pe1, pe2)
	}
	res, err := ReplayStream(s, Stream{
		{Time: t2, PEs: []noc.TileID{noc.TileID(pe2)}},
		{Time: t1, PEs: []noc.TileID{noc.TileID(pe1)}},
	}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 || res.Steps[0].Time != t1 || res.Steps[1].Time != t2 {
		t.Fatalf("events not replayed in time order: %+v", res.Steps)
	}
	hyb := res.Schedule
	shed := make(map[ctg.TaskID]bool)
	for _, x := range res.Shed {
		shed[x] = true
	}
	for i := range hyb.Tasks {
		// The committed prefix of the first event is inviolable.
		if s.Tasks[i].Start < t1 && hyb.Tasks[i].Start < t1 {
			if !reflect.DeepEqual(hyb.Tasks[i], s.Tasks[i]) {
				t.Fatalf("task %d inside the first checkpoint changed: %+v vs %+v",
					i, hyb.Tasks[i], s.Tasks[i])
			}
		}
		// Post-event work never lands on dead hardware.
		if hyb.Tasks[i].Start >= t1 && hyb.Tasks[i].PE == pe1 {
			t.Fatalf("task %d runs on PE %d after it died at %d: %+v", i, pe1, t1, hyb.Tasks[i])
		}
		if hyb.Tasks[i].Start >= t2 && hyb.Tasks[i].PE == pe2 {
			t.Fatalf("task %d runs on PE %d after it died at %d: %+v", i, pe2, t2, hyb.Tasks[i])
		}
	}
	last := res.Steps[1]
	if last.Frozen+last.Rescheduled != len(hyb.Tasks) {
		t.Fatalf("partition does not cover the graph: %+v", last)
	}
}

// TestStreamCoalescesSameInstant merges same-time events into one step.
func TestStreamCoalescesSameInstant(t *testing.T) {
	s := streamChain(t)
	tB := s.Tasks[1].Start
	res, err := ReplayStream(s, Stream{
		{Time: tB, PEs: []noc.TileID{4}},
		{Time: tB, Links: []noc.LinkID{0}},
	}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Fatalf("same-instant events not coalesced: %d steps", len(res.Steps))
	}
	ev := res.Steps[0].Event
	if len(ev.PEs) != 1 || len(ev.Links) != 1 {
		t.Fatalf("coalesced event lost faults: %+v", ev)
	}
}

// TestStreamShedsWhenInfeasible: the only PE capable of running a task
// dies before the task starts. With shedding the task and its
// downstream closure are abandoned and the rest of the schedule
// survives; without, the typed error surfaces.
func TestStreamShedsWhenInfeasible(t *testing.T) {
	p := testPlatform(t, 3, 3)
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("shed-chain")
	a := mkStreamTask(t, g, 9, 20, ctg.NoDeadline)
	b := mkStreamTask(t, g, 9, 20, ctg.NoDeadline, 4) // tile 4 only
	c := mkStreamTask(t, g, 9, 20, 100000)
	if _, err := g.AddEdge(a, b, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, c, 1024); err != nil {
		t.Fatal(err)
	}
	bld := sched.NewBuilder(g, acg, "test")
	for i, pe := range []int{0, 4, 8} {
		if _, err := bld.Commit(ctg.TaskID(i), pe); err != nil {
			t.Fatal(err)
		}
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	ev := Stream{{Time: s.Tasks[1].Start, PEs: []noc.TileID{4}}}

	if _, err := ReplayStream(s, ev, StreamOptions{DisableShedding: true}); !errors.Is(err, ErrNoCapablePE) {
		t.Fatalf("DisableShedding err = %v, want ErrNoCapablePE", err)
	}

	res, err := ReplayStream(s, ev, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[ctg.TaskID]bool{b: true, c: true}
	if len(res.Shed) != 2 || !want[res.Shed[0]] || !want[res.Shed[1]] {
		t.Fatalf("shed set = %v, want {b, c}", res.Shed)
	}
	if !res.Feasible() {
		t.Fatalf("shedding left misses: %+v", res.Steps[0])
	}
	// The shed tasks are zero-cost no-ops in the final graph.
	for _, x := range res.Shed {
		task := res.Graph.Task(x)
		if task.HasDeadline() {
			t.Fatalf("shed task %d kept its deadline", x)
		}
		for _, eid := range res.Graph.In(x) {
			if res.Graph.Edge(eid).Volume != 0 {
				t.Fatalf("shed task %d still receives traffic on edge %d", x, eid)
			}
		}
	}
	// The untouched producer is frozen or at least unharmed.
	if !reflect.DeepEqual(res.Schedule.Tasks[a], s.Tasks[a]) {
		t.Fatalf("surviving producer perturbed: %+v", res.Schedule.Tasks[a])
	}
}

// TestStreamDisconnectRestrictsIsland: a stream event that splits the
// mesh falls back to the largest island instead of failing.
func TestStreamDisconnectRestrictsIsland(t *testing.T) {
	s := faultRig(t, 7, 20)
	mk := s.Makespan()
	// Killing the middle-row routers of the 3x3 mesh splits top from
	// bottom; the stream must keep going on one island.
	ev := Stream{{Time: mk / 2, Routers: []noc.TileID{3, 4, 5}}}
	if _, err := ReplayStream(s, ev, StreamOptions{DisableShedding: true}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("DisableShedding err = %v, want ErrDisconnected", err)
	}
	res, err := ReplayStream(s, ev, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Degraded
	for _, tile := range []int{3, 4, 5} {
		if !d.DeadPE[tile] {
			t.Fatalf("dead router %d not marked DeadPE", tile)
		}
	}
	// Exactly one island executes: either {0,1,2} or {6,7,8} is all dead.
	top := d.DeadPE[0] || d.DeadPE[1] || d.DeadPE[2]
	bottom := d.DeadPE[6] || d.DeadPE[7] || d.DeadPE[8]
	if top == bottom {
		t.Fatalf("island restriction did not pick one side: DeadPE=%v", d.DeadPE)
	}
	hyb := res.Schedule
	for i := range hyb.Tasks {
		if hyb.Tasks[i].Start >= mk/2 && d.DeadPE[hyb.Tasks[i].PE] {
			t.Fatalf("post-event task %d on out-of-island PE %d", i, hyb.Tasks[i].PE)
		}
	}
}

// TestStreamTelemetry checks the stream counters accumulate.
func TestStreamTelemetry(t *testing.T) {
	s := streamChain(t)
	col := telemetry.NewCollector(nil)
	opts := StreamOptions{}
	opts.EAS.Telemetry = col
	if _, err := ReplayStream(s, Stream{{Time: s.Tasks[1].Start, PEs: []noc.TileID{4}}}, opts); err != nil {
		t.Fatal(err)
	}
	if got := col.R().Counter(MetricStreamEvents).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricStreamEvents, got)
	}
	if got := col.R().Counter(MetricStreamFrozenTasks).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricStreamFrozenTasks, got)
	}
	if got := col.R().Counter(MetricStreamRescheduled).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", MetricStreamRescheduled, got)
	}
}
