package fault

import (
	"errors"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
)

// restrictedRig builds a schedule where task b runs only on tile 4, so
// killing tile 4 makes plain recovery impossible.
func restrictedRig(t *testing.T) (*sched.Schedule, [3]ctg.TaskID) {
	t.Helper()
	p := testPlatform(t, 3, 3)
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("restricted")
	a := mkStreamTask(t, g, 9, 20, ctg.NoDeadline)
	b := mkStreamTask(t, g, 9, 20, ctg.NoDeadline, 4)
	c := mkStreamTask(t, g, 9, 20, 100000)
	if _, err := g.AddEdge(a, b, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, c, 1024); err != nil {
		t.Fatal(err)
	}
	bld := sched.NewBuilder(g, acg, "test")
	for i, pe := range []int{0, 4, 8} {
		if _, err := bld.Commit(ctg.TaskID(i), pe); err != nil {
			t.Fatal(err)
		}
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s, [3]ctg.TaskID{a, b, c}
}

// TestRecoverDegradedShedsNoCapablePE: plain Recover fails typed when a
// task loses its last capable PE; RecoverDegraded sheds the task and
// its downstream closure instead and keeps the rest feasible.
func TestRecoverDegradedShedsNoCapablePE(t *testing.T) {
	s, ids := restrictedRig(t)
	sc := &Scenario{Name: "kill-only-home", PEs: []noc.TileID{4}}
	if _, err := Recover(s, sc, Options{}); !errors.Is(err, ErrNoCapablePE) {
		t.Fatalf("Recover err = %v, want ErrNoCapablePE", err)
	}
	res, err := RecoverDegraded(s, sc, Options{}, ShedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[ctg.TaskID]bool{ids[1]: true, ids[2]: true}
	if len(res.Shed) != 2 || !want[res.Shed[0]] || !want[res.Shed[1]] {
		t.Fatalf("shed = %v, want {b, c}", res.Shed)
	}
	if !res.Feasible() || res.ResidualMisses != 0 {
		t.Fatalf("degradation left misses: %+v", res)
	}
	if res.Recovery == nil || res.Recovery.Schedule == nil {
		t.Fatal("no final recovery attached")
	}
	if err := res.Recovery.Schedule.Validate(); err != nil {
		t.Fatalf("degraded schedule invalid: %v", err)
	}
	// Shedding b and c forfeits their execution and traffic energy.
	if res.EnergyDelta() >= 0 {
		t.Fatalf("shedding two tasks did not reduce energy: delta %v", res.EnergyDelta())
	}
	for i := range res.Recovery.Schedule.Tasks {
		if res.Recovery.Degraded.DeadPE[res.Recovery.Schedule.Tasks[i].PE] {
			t.Fatalf("task %d on dead PE: %+v", i, res.Recovery.Schedule.Tasks[i])
		}
	}
}

// TestRecoverDegradedPlainWhenRecoverable: on a recoverable scenario
// RecoverDegraded sheds nothing and matches plain recovery.
func TestRecoverDegradedPlainWhenRecoverable(t *testing.T) {
	s := faultRig(t, 7, 30)
	tr := routedTransaction(t, s)
	sc := &Scenario{Name: "1-pe", PEs: []noc.TileID{noc.TileID(tr.SrcPE)}}
	res, err := RecoverDegraded(s, sc, Options{}, ShedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shed) != 0 {
		t.Fatalf("recoverable scenario shed tasks: %v", res.Shed)
	}
	if !res.Feasible() {
		t.Fatalf("recoverable scenario left %d misses", res.ResidualMisses)
	}
}

// TestRecoverDegradedDisconnected: a fabric split restricts execution
// to the largest island instead of failing.
func TestRecoverDegradedDisconnected(t *testing.T) {
	s := faultRig(t, 7, 20)
	sc := &Scenario{Name: "split", Routers: []noc.TileID{3, 4, 5}}
	if _, err := Recover(s, sc, Options{}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Recover err = %v, want ErrDisconnected", err)
	}
	res, err := RecoverDegraded(s, sc, Options{}, ShedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Recovery.Degraded
	top := d.DeadPE[0] || d.DeadPE[1] || d.DeadPE[2]
	bottom := d.DeadPE[6] || d.DeadPE[7] || d.DeadPE[8]
	if top == bottom {
		t.Fatalf("island restriction did not pick one side: %v", d.DeadPE)
	}
	for i := range res.Recovery.Schedule.Tasks {
		if d.DeadPE[res.Recovery.Schedule.Tasks[i].PE] {
			t.Fatalf("task %d scheduled outside the island", i)
		}
	}
}

// TestDegradeRestrictedIslands pins the island choice: isolating one
// corner keeps the big component, balanced splits pick deterministically.
func TestDegradeRestrictedIslands(t *testing.T) {
	p := testPlatform(t, 3, 3)
	m := energy.DefaultModel()

	// Killing routers 1 and 3 isolates tile 0 from the other six tiles.
	d, err := DegradeRestricted(p, m, &Scenario{Name: "corner", Routers: []noc.TileID{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	wantDead := map[int]bool{0: true, 1: true, 3: true}
	for k, dead := range d.DeadPE {
		if dead != wantDead[k] {
			t.Fatalf("DeadPE[%d] = %v, want %v (full: %v)", k, dead, wantDead[k], d.DeadPE)
		}
	}
	if d.AlivePEs() != 6 {
		t.Fatalf("AlivePEs = %d, want 6", d.AlivePEs())
	}

	// A balanced split (middle row of routers) picks one side, not both.
	d, err = DegradeRestricted(p, m, &Scenario{Name: "split", Routers: []noc.TileID{3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if d.AlivePEs() != 3 {
		t.Fatalf("AlivePEs = %d, want 3", d.AlivePEs())
	}

	// An intact fabric is untouched (identical to Degrade).
	d, err = DegradeRestricted(p, m, &Scenario{Name: "pe-only", PEs: []noc.TileID{4}})
	if err != nil {
		t.Fatal(err)
	}
	if d.AlivePEs() != 8 {
		t.Fatalf("AlivePEs = %d, want 8", d.AlivePEs())
	}

	// Killing every router kills every PE without splitting any alive
	// pair; like Degrade, the hopelessness is reported at DegradeGraph
	// time rather than here.
	all := make([]noc.TileID, 9)
	for i := range all {
		all[i] = noc.TileID(i)
	}
	d, err = DegradeRestricted(p, m, &Scenario{Name: "total", Routers: all})
	if err != nil {
		t.Fatal(err)
	}
	if d.AlivePEs() != 0 {
		t.Fatalf("AlivePEs = %d, want 0", d.AlivePEs())
	}

	// A split whose every island is PE-dead is typed: tiles 0 and 8
	// keep routing but lose their PEs, everything between dies.
	if _, err := DegradeRestricted(p, m, &Scenario{
		Name:    "pe-dead-islands",
		PEs:     []noc.TileID{0, 8},
		Routers: []noc.TileID{1, 2, 3, 4, 5, 6, 7},
	}); !errors.Is(err, ErrNoCapablePE) {
		t.Fatalf("PE-dead islands err = %v, want ErrNoCapablePE", err)
	}
}

// TestRecoverAllPEsDead: killing every PE is typed, in both entries.
func TestRecoverAllPEsDead(t *testing.T) {
	s := faultRig(t, 7, 20)
	all := make([]noc.TileID, 9)
	for i := range all {
		all[i] = noc.TileID(i)
	}
	sc := &Scenario{Name: "total-pe-loss", PEs: all}
	if _, err := Recover(s, sc, Options{}); !errors.Is(err, ErrNoCapablePE) {
		t.Fatalf("Recover err = %v, want ErrNoCapablePE", err)
	}
	if _, err := RecoverDegraded(s, sc, Options{}, ShedOptions{}); !errors.Is(err, ErrNoCapablePE) {
		t.Fatalf("RecoverDegraded err = %v, want ErrNoCapablePE", err)
	}
}

// TestRecoverSingleSurvivor: eight of nine PEs die (routers survive, so
// the fabric stays connected) and the whole workload lands on the one
// survivor, serialized.
func TestRecoverSingleSurvivor(t *testing.T) {
	s := faultRig(t, 7, 12)
	var dead []noc.TileID
	for i := 0; i < 9; i++ {
		if i != 4 {
			dead = append(dead, noc.TileID(i))
		}
	}
	rec, err := Recover(s, &Scenario{Name: "sole-survivor", PEs: dead}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec.Schedule.Tasks {
		if rec.Schedule.Tasks[i].PE != 4 {
			t.Fatalf("task %d not on the sole survivor: %+v", i, rec.Schedule.Tasks[i])
		}
	}
	if err := rec.Schedule.Validate(); err != nil {
		t.Fatalf("survivor schedule invalid: %v", err)
	}
}

// TestShedCandidatesOrder pins the criticality ranking: soft subgraphs
// (no deadline downstream) before deadline work, smallest collateral
// first, then most-blown slack first.
func TestShedCandidatesOrder(t *testing.T) {
	p := testPlatform(t, 3, 3)
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("rank")
	soft1 := mkStreamTask(t, g, 9, 10, ctg.NoDeadline) // soft, no descendants
	soft2 := mkStreamTask(t, g, 9, 10, ctg.NoDeadline) // soft, one descendant
	soft3 := mkStreamTask(t, g, 9, 10, ctg.NoDeadline)
	hard := mkStreamTask(t, g, 9, 10, 5) // deadline 5: hopeless
	if _, err := g.AddEdge(soft2, soft3, 64); err != nil {
		t.Fatal(err)
	}
	bld := sched.NewBuilder(g, acg, "test")
	for i, pe := range []int{0, 1, 2, 3} {
		if _, err := bld.Commit(ctg.TaskID(i), pe); err != nil {
			t.Fatal(err)
		}
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := shedCandidates(g, s, make([]bool, 4), nil)
	// soft1 and soft3 have zero collateral, soft2 drags soft3 along;
	// the hopeless deadline task comes last.
	want := []ctg.TaskID{soft1, soft3, soft2, hard}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate order = %v, want %v", got, want)
		}
	}
}
