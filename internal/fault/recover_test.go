package fault

import (
	"errors"
	"math/rand"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/sim"
	"nocsched/internal/tgff"
)

// faultRig builds a 3x3 heterogeneous platform, a loose-deadline TGFF
// graph and its fault-free (feasible) EAS schedule.
func faultRig(t *testing.T, seed int64, tasks int) *sched.Schedule {
	t.Helper()
	p := testPlatform(t, 3, 3)
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g, err := tgff.Generate(tgff.Params{
		Name: "fault-rig", Seed: seed, NumTasks: tasks, MaxInDegree: 3,
		LocalityWindow: 10, TaskTypes: 6, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 4096,
		DeadlineLaxity: 3, DeadlineFraction: 1, Platform: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eas.Schedule(g, acg, eas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Feasible() {
		t.Fatalf("fault-free instance infeasible (seed %d)", seed)
	}
	return res.Schedule
}

// routedTransaction returns a transaction of s with a non-empty route.
func routedTransaction(t *testing.T, s *sched.Schedule) *sched.TransactionPlacement {
	t.Helper()
	for i := range s.Transactions {
		if len(s.Transactions[i].Route) > 0 {
			return &s.Transactions[i]
		}
	}
	t.Fatal("schedule has no routed transactions")
	return nil
}

// TestRecoverScenarios is the acceptance gauntlet: for each recoverable
// 1- and 2-fault scenario, the recovered schedule must validate on the
// degraded platform and replay under the injected faults with zero
// failures and zero late deliveries — while the pre-fault schedule
// injected with the same scenario loses at least one packet.
func TestRecoverScenarios(t *testing.T) {
	s := faultRig(t, 7, 30)
	tr := routedTransaction(t, s)

	scenarios := []*Scenario{
		{Name: "1-pe", PEs: []noc.TileID{noc.TileID(tr.SrcPE)}},
		{Name: "1-router", Routers: []noc.TileID{noc.TileID(tr.SrcPE)}},
		{Name: "1-link", Links: []noc.LinkID{tr.Route[0]}},
		{Name: "2-pe-link",
			PEs:   []noc.TileID{noc.TileID(tr.DstPE)},
			Links: []noc.LinkID{tr.Route[0]}},
		{Name: "2-pes",
			PEs: []noc.TileID{noc.TileID(tr.SrcPE), noc.TileID(tr.DstPE)}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			// The fault must actually hurt: the pre-fault schedule
			// replayed under it loses at least one packet.
			broken, err := sim.Replay(s, sim.Options{Faults: sc.SimFaults()})
			if err != nil {
				t.Fatal(err)
			}
			if broken.Failures == 0 {
				t.Fatalf("scenario %q does not touch the schedule", sc.Name)
			}

			rec, err := Recover(s, sc, Options{})
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if err := rec.Schedule.Validate(); err != nil {
				t.Fatalf("recovered schedule invalid on degraded platform: %v", err)
			}
			if !rec.Feasible() || rec.Stats.MissesAfter != 0 {
				t.Fatalf("recovery left %d deadline misses", rec.Stats.MissesAfter)
			}
			// No recovered task sits on dead hardware.
			for i := range rec.Schedule.Tasks {
				if rec.Degraded.DeadPE[rec.Schedule.Tasks[i].PE] {
					t.Fatalf("task %d recovered onto dead PE %d", i, rec.Schedule.Tasks[i].PE)
				}
			}
			// Replay the recovered schedule with the same faults
			// injected: nothing fails, nothing is late.
			res, err := sim.Replay(rec.Schedule, sim.Options{Faults: sc.SimFaults()})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failures != 0 {
				t.Fatalf("recovered schedule lost %d packets to the fault it recovered from", res.Failures)
			}
			if late := res.LateDeliveries(rec.Schedule); len(late) != 0 {
				t.Fatalf("recovered schedule has %d late deliveries", len(late))
			}
			// Stats coherence.
			if rec.Stats.MissesBefore != 0 {
				t.Errorf("MissesBefore = %d on a feasible input", rec.Stats.MissesBefore)
			}
			if rec.Stats.EnergyBefore <= 0 || rec.Stats.EnergyAfter <= 0 {
				t.Errorf("non-positive energies: %+v", rec.Stats)
			}
			if len(sc.PEs)+len(sc.Routers) > 0 && rec.Stats.StrandedTasks == 0 {
				t.Errorf("PE-killing scenario stranded no tasks")
			}
			if rec.Stats.TasksMigrated < rec.Stats.StrandedTasks {
				t.Errorf("migrated %d < stranded %d", rec.Stats.TasksMigrated, rec.Stats.StrandedTasks)
			}
		})
	}
}

func TestRecoverEmptyScenario(t *testing.T) {
	s := faultRig(t, 7, 30)
	rec, err := Recover(s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Triage.Affected() {
		t.Fatalf("empty scenario triaged %+v", rec.Triage)
	}
	if rec.Stats.TasksMigrated != 0 {
		t.Fatalf("empty scenario migrated %d tasks", rec.Stats.TasksMigrated)
	}
	if !rec.Feasible() {
		t.Fatal("feasible schedule became infeasible under the empty scenario")
	}
}

func TestRecoverDisconnected(t *testing.T) {
	s := faultRig(t, 7, 30)
	sc := &Scenario{Name: "island", Routers: []noc.TileID{1, 3}}
	_, err := Recover(s, sc, Options{})
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("error %v does not wrap ErrDisconnected", err)
	}
}

func TestRecoverNoCapablePE(t *testing.T) {
	p := testPlatform(t, 2, 2)
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("pinned")
	// Only PE 1 can run the task; the scenario kills PE 1.
	if _, err := g.AddTask("pin", []int64{-1, 10, -1, -1}, []float64{0, 1, 0, 0}, ctg.NoDeadline); err != nil {
		t.Fatal(err)
	}
	res, err := eas.Schedule(g, acg, eas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Recover(res.Schedule, &Scenario{PEs: []noc.TileID{1}}, Options{})
	if !errors.Is(err, ErrNoCapablePE) {
		t.Fatalf("error %v does not wrap ErrNoCapablePE", err)
	}
}

func TestRecoverNilSchedule(t *testing.T) {
	if _, err := Recover(nil, &Scenario{}, Options{}); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

// TestRecoverRandomSweep drives Recover across random 1- and 2-fault
// scenarios: every outcome must be either a validated schedule or a
// typed unrecoverability error — never a panic, never an untyped error.
func TestRecoverRandomSweep(t *testing.T) {
	s := faultRig(t, 11, 24)
	p := s.ACG.Platform()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		k := 1 + i%2
		sc := Random(rng, p, k)
		rec, err := Recover(s, sc, Options{})
		if err != nil {
			if !errors.Is(err, ErrDisconnected) && !errors.Is(err, ErrNoCapablePE) {
				t.Fatalf("scenario %+v: untyped error %v", sc, err)
			}
			continue
		}
		if err := rec.Schedule.Validate(); err != nil {
			t.Fatalf("scenario %+v: recovered schedule invalid: %v", sc, err)
		}
	}
}
