package fault

import (
	"fmt"
	"math"
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/sched"
)

// Metric names published into opts.EAS.Telemetry's registry by Recover
// (all counts, accumulated across recoveries on a shared registry).
const (
	MetricRecoveries      = "fault_recoveries_total"
	MetricStranded        = "fault_stranded_tasks_total"
	MetricSevered         = "fault_severed_transactions_total"
	MetricMigrated        = "fault_tasks_migrated_total"
	MetricFullReschedules = "fault_full_reschedules_total"
)

// Options configures Recover. The zero value re-maps with the layout
// repair pipeline and falls back to a full EAS re-run when misses
// survive.
type Options struct {
	// EAS configures the repair moves and the full-reschedule fallback
	// (weight, repair budget, contention model).
	EAS eas.Options
	// DisableFullFallback keeps recovery incremental: when the
	// layout-repair pipeline cannot eliminate every deadline miss, the
	// best repaired schedule is returned as-is instead of re-running
	// EAS from scratch on the degraded instance.
	DisableFullFallback bool
}

// Stats reports what recovery did and what it cost.
type Stats struct {
	// StrandedTasks / SeveredTransactions are the triage counts: tasks
	// mapped on dead PEs and transactions routed over dead hardware.
	StrandedTasks       int
	SeveredTransactions int
	// TasksMigrated counts tasks whose PE differs between the fault-
	// free and the recovered schedule (>= StrandedTasks when repair
	// moved extra tasks to claw back deadlines).
	TasksMigrated int
	// FullReschedule is true when the full EAS re-run fallback
	// produced the returned schedule.
	FullReschedule bool
	// MissesBefore / MissesAfter are deadline-miss counts of the
	// fault-free input schedule and of the recovered schedule.
	MissesBefore, MissesAfter int
	// EnergyBefore / EnergyAfter compare total schedule energy across
	// the fault (nJ).
	EnergyBefore, EnergyAfter float64
	// RepairStats reports the search-and-repair work of the chosen
	// pipeline.
	RepairStats eas.RepairStats
}

// EnergyOverhead returns the fractional energy cost of surviving the
// fault: (after - before) / before. Zero when the input schedule had
// zero energy.
func (st Stats) EnergyOverhead() float64 {
	if st.EnergyBefore == 0 {
		return 0
	}
	return (st.EnergyAfter - st.EnergyBefore) / st.EnergyBefore
}

// Recovery is the outcome of recovering a schedule from a scenario.
type Recovery struct {
	// Schedule is the recovered schedule, bound to Graph and
	// Degraded.ACG (not to the fault-free originals).
	Schedule *sched.Schedule
	// Graph is the degraded CTG the schedule was built against (dead
	// PEs marked incapable).
	Graph *ctg.Graph
	// Degraded is the platform the schedule runs on.
	Degraded *Degraded
	// Triage is what the scenario invalidated in the input schedule.
	Triage Triage
	// Stats summarizes the recovery.
	Stats Stats
}

// Feasible reports whether the recovered schedule meets every deadline.
func (r *Recovery) Feasible() bool { return r.Stats.MissesAfter == 0 }

// Recover re-maps a fault-free schedule onto the platform degraded by
// the scenario:
//
//  1. the scenario is applied (Degrade) and the schedule triaged;
//  2. stranded tasks are migrated off dead PEs onto their cheapest
//     surviving capable PE (execution plus communication energy, the
//     GTM destination order), keeping every other placement;
//  3. the amended layout is re-timed on the degraded platform —
//     severed transactions pick up their detour routes here — and
//     Step-3 search-and-repair (LTS swaps + GTM migrations) runs if
//     the fault introduced deadline misses;
//  4. if misses survive repair, a full EAS re-run on the degraded
//     instance is tried and the better schedule wins.
//
// Unrecoverable scenarios return typed errors: ErrDisconnected when
// the surviving fabric is split, ErrNoCapablePE when a task has no
// surviving PE. A recoverable scenario always yields a schedule valid
// on the degraded platform; Stats.MissesAfter reports whether it also
// meets every deadline.
func Recover(s *sched.Schedule, sc *Scenario, opts Options) (*Recovery, error) {
	if s == nil {
		return nil, fmt.Errorf("fault: nil schedule")
	}
	scName := ""
	if sc != nil {
		scName = sc.Name
	}
	endSpan := opts.EAS.Telemetry.T().Span("recover:"+scName, "fault recovery")
	defer endSpan()
	d, err := Degrade(s.ACG.Platform(), s.ACG.Model(), sc)
	if err != nil {
		return nil, err
	}
	return recoverOn(d, s, s.Graph, opts)
}

// recoverOn runs steps 2-4 of Recover against an already-degraded
// platform and a caller-chosen graph (possibly with tasks shed), so
// graceful degradation can retry recovery without re-applying the
// scenario.
func recoverOn(d *Degraded, s *sched.Schedule, g *ctg.Graph, opts Options) (*Recovery, error) {
	sc := d.Scenario
	dg, err := d.DegradeGraph(g)
	if err != nil {
		return nil, err
	}
	triage := d.Triage(s)
	rec := &Recovery{Graph: dg, Degraded: d, Triage: triage}
	rec.Stats = Stats{
		StrandedTasks:       len(triage.StrandedTasks),
		SeveredTransactions: len(triage.SeveredTransactions),
		MissesBefore:        len(s.DeadlineMisses()),
		EnergyBefore:        s.TotalEnergy(),
	}

	// Step 2: evict stranded tasks. Destinations in increasing
	// execution-plus-communication energy (the paper's GTM order),
	// communication priced against neighbors' current homes; edges to
	// neighbors that are themselves stranded are skipped — they move
	// too, so their old coordinates carry no information.
	assign := make([]int, dg.NumTasks())
	for i := range s.Tasks {
		assign[i] = s.Tasks[i].PE
	}
	order := s.PEOrder()
	for _, t := range triage.StrandedTasks {
		dst, err := cheapestAlivePE(dg, d, assign, t)
		if err != nil {
			return nil, err
		}
		moveTask(s, order, assign, t, dst)
	}

	// Step 3: re-time the amended layout on the degraded platform and
	// repair; an inconsistent layout (cross-PE ordering cycle created
	// by the evictions) just forces the full fallback.
	best, berr := eas.RescheduleLayout(dg, d.ACG, assign, order, opts.EAS)
	if berr == nil {
		rec.Stats.RepairStats = best.RepairStats
	}

	// Step 4: full EAS re-run when incremental recovery failed or
	// still misses deadlines.
	needFull := berr != nil || !best.Schedule.Feasible()
	if needFull && !opts.DisableFullFallback {
		if full, ferr := eas.Schedule(dg, d.ACG, opts.EAS); ferr == nil {
			if berr != nil || eas.MetricBetter(full.Schedule, best.Schedule) {
				best, berr = full, nil
				rec.Stats.FullReschedule = true
				rec.Stats.RepairStats = full.RepairStats
			}
		}
	}
	if berr != nil {
		return nil, fmt.Errorf("fault: recovery from scenario %q failed: %w", sc.Name, berr)
	}

	rec.Schedule = best.Schedule
	rec.Stats.MissesAfter = len(best.Schedule.DeadlineMisses())
	rec.Stats.EnergyAfter = best.Schedule.TotalEnergy()
	for i := range best.Schedule.Tasks {
		if best.Schedule.Tasks[i].PE != s.Tasks[i].PE {
			rec.Stats.TasksMigrated++
		}
	}
	if r := opts.EAS.Telemetry.R(); r != nil {
		r.Counter(MetricRecoveries).Inc()
		r.Counter(MetricStranded).Add(int64(rec.Stats.StrandedTasks))
		r.Counter(MetricSevered).Add(int64(rec.Stats.SeveredTransactions))
		r.Counter(MetricMigrated).Add(int64(rec.Stats.TasksMigrated))
		if rec.Stats.FullReschedule {
			r.Counter(MetricFullReschedules).Inc()
		}
	}
	return rec, nil
}

// cheapestAlivePE picks the surviving capable PE with the lowest
// execution-plus-communication energy for task t under the current
// (partially amended) assignment. Edges to neighbors still sitting on
// dead PEs are ignored: those neighbors are later in the eviction
// order and their old coordinates carry no information.
func cheapestAlivePE(g *ctg.Graph, d *Degraded, assign []int, t ctg.TaskID) (int, error) {
	task := g.Task(t)
	bestPE, bestCost := -1, math.Inf(1)
	for k := 0; k < d.ACG.NumPEs(); k++ {
		if d.DeadPE[k] || !task.RunnableOn(k) {
			continue
		}
		cost := task.Energy[k]
		for _, eid := range g.In(t) {
			e := g.Edge(eid)
			if !d.DeadPE[assign[e.Src]] {
				cost += d.ACG.CommEnergy(e.Volume, assign[e.Src], k)
			}
		}
		for _, eid := range g.Out(t) {
			e := g.Edge(eid)
			if !d.DeadPE[assign[e.Dst]] {
				cost += d.ACG.CommEnergy(e.Volume, k, assign[e.Dst])
			}
		}
		if cost < bestCost {
			bestPE, bestCost = k, cost
		}
	}
	if bestPE < 0 {
		return -1, fmt.Errorf("%w: task %d (%q) under scenario %q",
			ErrNoCapablePE, t, task.Name, d.Scenario.Name)
	}
	return bestPE, nil
}

// moveTask reassigns task t to dstPE, inserting it into the destination
// order at the position matching its fault-free start time so the local
// execution order stays plausible (mirrors the GTM move).
func moveTask(s *sched.Schedule, order [][]ctg.TaskID, assign []int, t ctg.TaskID, dstPE int) {
	srcPE := assign[t]
	src := order[srcPE]
	for i, o := range src {
		if o == t {
			order[srcPE] = append(src[:i], src[i+1:]...)
			break
		}
	}
	start := s.Tasks[t].Start
	dst := order[dstPE]
	insert := sort.Search(len(dst), func(i int) bool { return s.Tasks[dst[i]].Start > start })
	dst = append(dst, 0)
	copy(dst[insert+1:], dst[insert:])
	dst[insert] = t
	order[dstPE] = dst
	assign[t] = dstPE
}
