package sched

import (
	"testing"

	"nocsched/internal/ctg"
)

// driveEF schedules every task with a deterministic earliest-finish
// policy through the journal probe path: lowest ready task ID first,
// onto the PE that finishes it earliest (ties to the lower PE index).
// The ready slice is caller-owned scratch so steady-state allocation
// tests can hoist it out of the measured loop.
func driveEF(tb testing.TB, b *Builder, ready []ctg.TaskID) *Schedule {
	tb.Helper()
	g := b.Graph()
	npe := b.ACG().NumPEs()
	for b.Committed() < g.NumTasks() {
		ready = b.AppendReady(ready[:0])
		if len(ready) == 0 {
			tb.Fatal("no ready tasks before completion")
		}
		pick := ready[0]
		for _, t := range ready[1:] {
			if t < pick {
				pick = t
			}
		}
		bestPE, bestFinish := -1, int64(0)
		for k := 0; k < npe; k++ {
			if !g.Task(pick).RunnableOn(k) {
				continue
			}
			p, err := b.Probe(pick, k)
			if err != nil {
				tb.Fatalf("probe task %d PE %d: %v", pick, k, err)
			}
			if bestPE < 0 || p.Finish < bestFinish {
				bestPE, bestFinish = k, p.Finish
			}
		}
		if bestPE < 0 {
			tb.Fatalf("task %d runnable nowhere", pick)
		}
		if _, err := b.Commit(pick, bestPE); err != nil {
			tb.Fatalf("commit task %d PE %d: %v", pick, bestPE, err)
		}
	}
	s, err := b.Finish()
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestResetMatchesFresh is the builder-level half of the reuse
// determinism oracle: a builder that already scheduled one graph and is
// Reset onto another must produce a schedule bit-identical (Diff) to a
// fresh builder's — on the same-ACG fast path and on the
// platform-change rebuild path alike.
func TestResetMatchesFresh(t *testing.T) {
	gA, acg := proberRig(t, 11, 50)
	gB, _ := proberRig(t, 12, 35)
	gB2, acg2 := proberRig(t, 13, 40)

	var ready []ctg.TaskID
	refA := driveEF(t, NewBuilder(gA, acg, "test"), ready)
	refB := driveEF(t, NewBuilder(gB, acg, "test"), ready)
	refB2 := driveEF(t, NewBuilder(gB2, acg2, "test"), ready)

	// Same-ACG reuse: schedule gA, reset onto gB, reset back onto gA.
	b := NewBuilder(gA, acg, "test")
	driveEF(t, b, ready)
	b.Reset(gB, acg)
	if d := Diff(refB, driveEF(t, b, ready)); d != "" {
		t.Errorf("reset onto gB diverges from fresh:\n%s", d)
	}
	b.Reset(gA, acg)
	if d := Diff(refA, driveEF(t, b, ready)); d != "" {
		t.Errorf("reset back onto gA diverges from fresh:\n%s", d)
	}

	// Platform change: rebuild path.
	b.Reset(gB2, acg2)
	if d := Diff(refB2, driveEF(t, b, ready)); d != "" {
		t.Errorf("reset onto new ACG diverges from fresh:\n%s", d)
	}
	// And back again onto the original platform.
	b.Reset(gA, acg)
	if d := Diff(refA, driveEF(t, b, ready)); d != "" {
		t.Errorf("reset back after platform change diverges from fresh:\n%s", d)
	}
}

// TestResetRestoresDefaults pins the state Reset must not leak between
// instances: the naive contention model and a stale algorithm label.
func TestResetRestoresDefaults(t *testing.T) {
	g, acg := proberRig(t, 21, 20)
	b := NewBuilder(g, acg, "first")
	b.SetContentionAware(false)
	b.Reset(g, acg)
	if !b.contention {
		t.Error("Reset kept the naive contention model")
	}
	b.SetAlgorithm("second")
	b.Reset(g, acg)
	var ready []ctg.TaskID
	if s := driveEF(t, b, ready); s.Algorithm != "second" {
		t.Errorf("schedule algorithm = %q, want %q", s.Algorithm, "second")
	}
}

// TestResetSteadyStateAllocs bounds the steady-state allocation of the
// reuse loop: after warm-up, Reset + a full schedule through the
// journal probe path allocates only the escaping Schedule shell (the
// struct and its two placement slices) — the tables, journal, route
// cache, and probe scratch are all reused.
func TestResetSteadyStateAllocs(t *testing.T) {
	g, acg := proberRig(t, 31, 40)
	b := NewBuilder(g, acg, "test")
	ready := make([]ctg.TaskID, 0, g.NumTasks())
	driveEF(t, b, ready)
	b.Reset(g, acg) // warm-up: grows journal/scratch to steady state
	driveEF(t, b, ready)

	avg := testing.AllocsPerRun(10, func() {
		b.Reset(g, acg)
		driveEF(t, b, ready)
	})
	// 3 = Schedule struct + Tasks + Transactions.
	if avg > 3 {
		t.Errorf("steady-state Reset+schedule allocates %.1f objects/run, want <= 3", avg)
	}
}

// TestWorkspacePrepareReuse pins Workspace.Prepare's two paths: the
// same ACG reuses builder and pool in place; a different ACG rebuilds
// both and attaches the workspace's route plan when it matches.
func TestWorkspacePrepareReuse(t *testing.T) {
	gA, acg := proberRig(t, 41, 30)
	gB, _ := proberRig(t, 42, 25)
	gC, acg2 := proberRig(t, 43, 20)

	ws := NewWorkspace(1, false)
	b1, p1, err := ws.Prepare(gA, acg, "x")
	if err != nil {
		t.Fatal(err)
	}
	b2, p2, err := ws.Prepare(gB, acg, "y")
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 || p1 != p2 {
		t.Error("same-ACG Prepare rebuilt the builder or pool")
	}
	ws.SetRoutePlan(NewRoutePlan(acg2))
	b3, p3, err := ws.Prepare(gC, acg2, "z")
	if err != nil {
		t.Fatal(err)
	}
	if b3 == b2 || p3 == p2 {
		t.Error("platform-change Prepare reused the builder or pool")
	}
	if b3.plan == nil {
		t.Error("Prepare did not attach the matching route plan")
	}
	var ready []ctg.TaskID
	if d := Diff(driveEF(t, NewBuilder(gC, acg2, "z"), ready), driveEF(t, b3, ready)); d != "" {
		t.Errorf("plan-attached workspace builder diverges from fresh:\n%s", d)
	}
}
