package sched

import (
	"fmt"
	"io"
	"sort"
)

// BufferStats reports the message storage one PE needs under a
// schedule. The paper notes that application granularity "directly
// affects the storage space requirements in the PEs as the messages
// need to be buffered": a message arrives when its transaction finishes
// and occupies local memory until its consumer task completes (the
// consumer reads it throughout execution). This analysis computes, per
// PE, the peak of the sum of in-flight message volumes under that
// lifetime model.
type BufferStats struct {
	PE int
	// PeakBits is the maximum simultaneous buffered volume.
	PeakBits int64
	// PeakAt is the earliest time the peak is reached.
	PeakAt int64
	// Messages is the number of buffered (inter-task data) messages
	// consumed on the PE.
	Messages int
}

// BufferRequirements computes per-PE peak buffer occupancy. Messages
// with zero volume and intra-PE dependencies whose producer finishes
// exactly when the consumer starts still occupy storage between
// arrival and consumer completion; only genuinely zero-volume control
// arcs are free.
func (s *Schedule) BufferRequirements() []BufferStats {
	type event struct {
		at    int64
		delta int64 // +volume at arrival, -volume at consumption
	}
	perPE := make([][]event, s.ACG.NumPEs())
	counts := make([]int, s.ACG.NumPEs())
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		e := s.Graph.Edge(tr.Edge)
		if e.Volume <= 0 {
			continue
		}
		consumer := &s.Tasks[e.Dst]
		pe := consumer.PE
		perPE[pe] = append(perPE[pe],
			event{at: tr.Finish, delta: e.Volume},
			event{at: consumer.Finish, delta: -e.Volume})
		counts[pe]++
	}
	stats := make([]BufferStats, s.ACG.NumPEs())
	for pe := range perPE {
		stats[pe] = BufferStats{PE: pe, Messages: counts[pe]}
		evs := perPE[pe]
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].at != evs[b].at {
				return evs[a].at < evs[b].at
			}
			// Consume before arrive at the same instant: a message
			// freed at t does not overlap one arriving at t.
			return evs[a].delta < evs[b].delta
		})
		var cur, peak int64
		peakAt := int64(0)
		for _, ev := range evs {
			cur += ev.delta
			if cur > peak {
				peak = cur
				peakAt = ev.at
			}
		}
		stats[pe].PeakBits = peak
		stats[pe].PeakAt = peakAt
	}
	return stats
}

// TotalPeakBufferBits returns the sum of per-PE peak buffer
// requirements — a quick figure of merit for the schedule's memory
// pressure.
func (s *Schedule) TotalPeakBufferBits() int64 {
	var sum int64
	for _, b := range s.BufferRequirements() {
		sum += b.PeakBits
	}
	return sum
}

// RenderBufferRequirements prints the per-PE buffer analysis.
func (s *Schedule) RenderBufferRequirements(w io.Writer) {
	fmt.Fprintf(w, "message buffer requirements (%s)\n", s.Algorithm)
	fmt.Fprintf(w, "%-4s %10s %12s %10s\n", "PE", "messages", "peak (bits)", "peak at")
	for _, b := range s.BufferRequirements() {
		fmt.Fprintf(w, "%-4d %10d %12d %10d\n", b.PE, b.Messages, b.PeakBits, b.PeakAt)
	}
	fmt.Fprintf(w, "total peak: %d bits\n", s.TotalPeakBufferBits())
}
