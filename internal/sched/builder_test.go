package sched

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
)

func builderRig(t *testing.T) (*ctg.Graph, *energy.ACG) {
	t.Helper()
	platform, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 100)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(platform, energy.Model{ESbit: 1, ELbit: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ctg.New("b"), acg
}

func addTask(t *testing.T, g *ctg.Graph, name string, exec int64) ctg.TaskID {
	t.Helper()
	id, err := g.AddTask(name,
		[]int64{exec, exec, exec, exec},
		[]float64{1, 1, 1, 1}, ctg.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestProbeRestoresTables(t *testing.T) {
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 10)
	if _, err := g.AddEdge(a, b, 500); err != nil {
		t.Fatal(err)
	}
	bld := NewBuilder(g, acg, "test")
	if _, err := bld.Commit(a, 0); err != nil {
		t.Fatal(err)
	}
	// Probe b on every PE twice; identical results prove rollback.
	for k := 0; k < 4; k++ {
		p1, err := bld.Probe(b, k)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := bld.Probe(b, k)
		if err != nil {
			t.Fatal(err)
		}
		if p1.Start != p2.Start || p1.Finish != p2.Finish || p1.DRT != p2.DRT {
			t.Errorf("PE %d: probes differ: %+v vs %+v (tables not restored)", k, p1, p2)
		}
	}
	// Probing must not mark the task placed.
	if bld.Placed(b) {
		t.Error("Probe marked task placed")
	}
}

func TestProbeBeforePredecessorFails(t *testing.T) {
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 10)
	g.AddEdge(a, b, 100)
	bld := NewBuilder(g, acg, "test")
	if _, err := bld.Probe(b, 0); err == nil {
		t.Fatal("probing a task with uncommitted predecessor must fail")
	}
}

func TestCommitSemantics(t *testing.T) {
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 20)
	g.AddEdge(a, b, 500) // 5 time units across the NoC

	bld := NewBuilder(g, acg, "test")
	if got := bld.ReadyTasks(); len(got) != 1 || got[0] != a {
		t.Fatalf("initial RTL = %v", got)
	}
	pa, err := bld.Commit(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Start != 0 || pa.Finish != 10 {
		t.Errorf("a placed at [%d,%d)", pa.Start, pa.Finish)
	}
	if _, err := bld.Commit(a, 0); err == nil {
		t.Error("double commit allowed")
	}
	if got := bld.ReadyTasks(); len(got) != 1 || got[0] != b {
		t.Fatalf("RTL after commit = %v", got)
	}
	// Commit b on a different tile: the transaction takes 5 units
	// starting at a's finish, so DRT = 15.
	pb, err := bld.Commit(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pb.DRT != 15 || pb.Start != 15 || pb.Finish != 35 {
		t.Errorf("b placement = %+v, want DRT 15, [15,35)", pb)
	}
	if pb.CommEnergy <= 0 {
		t.Error("inter-tile commit has zero communication energy")
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("built schedule invalid: %v", err)
	}
}

func TestCommitSameTileNoNetwork(t *testing.T) {
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 20)
	g.AddEdge(a, b, 500)

	bld := NewBuilder(g, acg, "test")
	if _, err := bld.Commit(a, 2); err != nil {
		t.Fatal(err)
	}
	pb, err := bld.Commit(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pb.DRT != 10 || pb.CommEnergy != 0 {
		t.Errorf("same-tile delivery should be instant and free: %+v", pb)
	}
	if len(pb.Trans) != 1 || len(pb.Trans[0].Route) != 0 {
		t.Errorf("same-tile transaction has a route: %+v", pb.Trans)
	}
}

func TestLinkContentionSerializesTransactions(t *testing.T) {
	// Two senders on the same tile, same receiver tile: their
	// transactions share the whole route and must serialize.
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 10)
	c := addTask(t, g, "c", 10)
	g.AddEdge(a, c, 500) // 5 units
	g.AddEdge(b, c, 500) // 5 units

	bld := NewBuilder(g, acg, "test")
	if _, err := bld.Commit(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := bld.Commit(b, 0); err != nil { // same tile, so b runs [10,20)
		t.Fatal(err)
	}
	pc, err := bld.Commit(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Transactions: a->c can start at 10 ([10,15)); b->c not before
	// b's finish (20), so [20,25). DRT = 25.
	if pc.DRT != 25 {
		t.Errorf("DRT = %d, want 25", pc.DRT)
	}
	tr := pc.Trans
	if len(tr) != 2 {
		t.Fatalf("transactions = %+v", tr)
	}
	// Sorted by sender finish: a's first.
	if tr[0].Start != 10 || tr[0].Finish != 15 || tr[1].Start != 20 || tr[1].Finish != 25 {
		t.Errorf("transaction windows: %+v", tr)
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkContentionWithConcurrentSenders(t *testing.T) {
	// Senders on different tiles whose routes to the same destination
	// share the final link: windows must not overlap even though both
	// sources are free simultaneously.
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 10)
	c := addTask(t, g, "c", 10)
	g.AddEdge(a, c, 500)
	g.AddEdge(b, c, 500)

	bld := NewBuilder(g, acg, "test")
	// Tiles 0 and 2 both route to tile 3 via... XY: 0->1->3 and 2->3.
	// Use destination 3 and sources 1 and 2: routes 1->3 and 2->3
	// share no link, so pick sources 0 and 1 -> destination 3:
	// 0->1->3 and 1->3 share link 1->3.
	if _, err := bld.Commit(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := bld.Commit(b, 1); err != nil {
		t.Fatal(err)
	}
	pc, err := bld.Commit(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := pc.Trans
	if len(tr) != 2 {
		t.Fatalf("transactions = %+v", tr)
	}
	if tr[0].Start < tr[1].Finish && tr[1].Start < tr[0].Finish {
		// Overlap is only allowed if the routes are disjoint.
		if noc.RouteIntersects(tr[0].Route, tr[1].Route) {
			t.Errorf("overlapping windows on intersecting routes: %+v", tr)
		}
	}
	s, _ := bld.Finish()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitAfterFloor(t *testing.T) {
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	bld := NewBuilder(g, acg, "test")
	p, err := bld.CommitAfter(a, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.Start != 50 {
		t.Errorf("floor ignored: start = %d", p.Start)
	}
}

func TestGapFillingWithoutFloor(t *testing.T) {
	// A later-committed task may slot into an earlier gap when no
	// floor is given — the level scheduler's behavior.
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 5)
	bld := NewBuilder(g, acg, "test")
	if _, err := bld.CommitAfter(a, 0, 100); err != nil { // a at [100,110)
		t.Fatal(err)
	}
	p, err := bld.Commit(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Start != 0 {
		t.Errorf("gap not used: start = %d", p.Start)
	}
}

func TestNaiveContentionModel(t *testing.T) {
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 10)
	c := addTask(t, g, "c", 10)
	g.AddEdge(a, c, 500)
	g.AddEdge(b, c, 500)

	bld := NewBuilder(g, acg, "test")
	bld.SetContentionAware(false)
	if _, err := bld.Commit(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := bld.Commit(b, 1); err != nil {
		t.Fatal(err)
	}
	pc, err := bld.Commit(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	// In the naive model every transaction departs at its sender's
	// finish regardless of link conflicts.
	for _, tr := range pc.Trans {
		if tr.Start != 10 {
			t.Errorf("naive transaction delayed: %+v", tr)
		}
	}
}

func TestFinishIncomplete(t *testing.T) {
	g, acg := builderRig(t)
	addTask(t, g, "a", 10)
	bld := NewBuilder(g, acg, "test")
	if _, err := bld.Finish(); err == nil {
		t.Fatal("Finish with uncommitted tasks succeeded")
	}
}

func TestRunnableConstraint(t *testing.T) {
	g, acg := builderRig(t)
	id, err := g.AddTask("dsp-only", []int64{-1, 10, -1, -1}, []float64{0, 1, 0, 0}, ctg.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	bld := NewBuilder(g, acg, "test")
	if _, err := bld.Probe(id, 0); err == nil {
		t.Error("probe on incapable PE succeeded")
	}
	if _, err := bld.Commit(id, 1); err != nil {
		t.Errorf("commit on capable PE failed: %v", err)
	}
}

func TestBlockPastReservesPrefix(t *testing.T) {
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	bld := NewBuilder(g, acg, "test")
	if err := bld.BlockPast(50); err != nil {
		t.Fatal(err)
	}
	if bld.Blocked() != 50 {
		t.Fatalf("Blocked() = %d, want 50", bld.Blocked())
	}
	p, err := bld.Commit(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Start < 50 {
		t.Fatalf("commit landed at %d inside the blocked prefix [0,50)", p.Start)
	}
	// Blocking a builder already in use must fail.
	if err := bld.BlockPast(60); err == nil {
		t.Fatal("BlockPast on a used builder succeeded")
	}
	bld2 := NewBuilder(g, acg, "test")
	if err := bld2.BlockPast(10); err != nil {
		t.Fatal(err)
	}
	if err := bld2.BlockPast(20); err == nil {
		t.Fatal("double BlockPast succeeded")
	}
	// BlockPast(0) and negative are no-ops.
	bld3 := NewBuilder(g, acg, "test")
	if err := bld3.BlockPast(0); err != nil {
		t.Fatal(err)
	}
	if bld3.Blocked() != 0 {
		t.Fatalf("Blocked() = %d after no-op block", bld3.Blocked())
	}
}

func TestCommitFrozenSemantics(t *testing.T) {
	g, acg := builderRig(t)
	a := addTask(t, g, "a", 10)
	b := addTask(t, g, "b", 10)
	c := addTask(t, g, "c", 10)
	if _, err := g.AddEdge(a, b, 500); err != nil {
		t.Fatal(err)
	}
	bld := NewBuilder(g, acg, "test")
	if err := bld.BlockPast(40); err != nil {
		t.Fatal(err)
	}
	// Frozen completed task: recorded verbatim, no extra reservations.
	if err := bld.CommitFrozen(TaskPlacement{Task: a, PE: 0, Start: 0, Finish: 10}, nil); err != nil {
		t.Fatal(err)
	}
	if got := bld.TaskPlacement(a); got.Start != 0 || got.Finish != 10 || got.PE != 0 {
		t.Fatalf("frozen placement mangled: %+v", got)
	}
	// Frozen in-flight task: the tail past the block is reserved on its
	// PE, so a later commit on PE 1 cannot overlap it.
	if err := bld.CommitFrozen(TaskPlacement{Task: b, PE: 1, Start: 30, Finish: 70},
		[]TransactionPlacement{{Edge: 0, SrcPE: 0, DstPE: 1, Start: 10, Finish: 15}}); err != nil {
		t.Fatal(err)
	}
	p, err := bld.Commit(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Start < 70 {
		t.Fatalf("commit on PE 1 at %d overlaps the frozen in-flight tail [40,70)", p.Start)
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tr := s.Transactions[0]; tr.Start != 10 || tr.Finish != 15 {
		t.Fatalf("frozen transaction mangled: %+v", tr)
	}
	// Freezing a task at or past the block is rejected.
	bld2 := NewBuilder(g, acg, "test")
	if err := bld2.BlockPast(40); err != nil {
		t.Fatal(err)
	}
	if err := bld2.CommitFrozen(TaskPlacement{Task: a, PE: 0, Start: 40, Finish: 50}, nil); err == nil {
		t.Fatal("froze a task starting at the block boundary")
	}
	if err := bld2.CommitFrozen(TaskPlacement{Task: ctg.TaskID(99), PE: 0, Start: 0, Finish: 5}, nil); err == nil {
		t.Fatal("froze an unknown task")
	}
}
