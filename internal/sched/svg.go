package sched

import (
	"fmt"
	"io"
	"strings"
)

// svgPalette assigns stable, readable colors by PE class name, with a
// fallback cycle for unknown classes.
var svgPalette = map[string]string{
	"cpu-hp": "#d1495b",
	"dsp":    "#edae49",
	"risc":   "#00798c",
	"arm-lp": "#30638e",
}

var svgFallback = []string{"#66a182", "#8d6a9f", "#c06e52", "#5b8e7d"}

// WriteSVG renders the schedule as a self-contained SVG Gantt chart:
// one row per PE, task boxes labeled with names, deadline-missing tasks
// outlined in red, and transaction windows drawn as thin bars under the
// sender's row. Intended for documentation and visual inspection.
func (s *Schedule) WriteSVG(w io.Writer) error {
	const (
		rowH     = 34
		barH     = 22
		trH      = 4
		leftPad  = 90
		topPad   = 30
		rightPad = 20
		width    = 1000
	)
	makespan := s.Makespan()
	if makespan == 0 {
		makespan = 1
	}
	scale := float64(width) / float64(makespan)
	npe := s.ACG.NumPEs()
	height := topPad + npe*rowH + 30

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">`+"\n",
		leftPad+width+rightPad, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s — %.1f nJ, makespan %d</text>`+"\n",
		leftPad, s.Algorithm, s.TotalEnergy(), s.Makespan())

	platform := s.ACG.Platform()
	for pe := 0; pe < npe; pe++ {
		y := topPad + pe*rowH
		cls := platform.Classes[pe].Name
		fmt.Fprintf(&b, `<text x="4" y="%d">PE %d (%s)</text>`+"\n", y+barH-6, pe, cls)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			leftPad, y+rowH-4, leftPad+width, y+rowH-4)
	}

	colorOf := func(pe int) string {
		cls := platform.Classes[pe].Name
		if c, ok := svgPalette[cls]; ok {
			return c
		}
		return svgFallback[pe%len(svgFallback)]
	}

	// Transactions as thin bars below the sender row.
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		if tr.Finish == tr.Start {
			continue
		}
		y := topPad + tr.SrcPE*rowH + barH + 2
		x := leftPad + int(float64(tr.Start)*scale)
		wpx := int(float64(tr.Finish-tr.Start) * scale)
		if wpx < 1 {
			wpx = 1
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#999" opacity="0.7"><title>edge %d: PE %d → PE %d [%d,%d)</title></rect>`+"\n",
			x, y, wpx, trH, tr.Edge, tr.SrcPE, tr.DstPE, tr.Start, tr.Finish)
	}

	// Tasks.
	for i := range s.Tasks {
		p := &s.Tasks[i]
		t := s.Graph.Task(p.Task)
		y := topPad + p.PE*rowH
		x := leftPad + int(float64(p.Start)*scale)
		wpx := int(float64(p.Finish-p.Start) * scale)
		if wpx < 2 {
			wpx = 2
		}
		stroke := "none"
		if t.HasDeadline() && p.Finish > t.Deadline {
			stroke = `red" stroke-width="2`
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" rx="2" fill="%s" stroke="%s"><title>%s [%d,%d) on PE %d</title></rect>`+"\n",
			x, y, wpx, barH, colorOf(p.PE), stroke, svgEscape(t.Name), p.Start, p.Finish, p.PE)
		if wpx > 30 {
			fmt.Fprintf(&b, `<text x="%d" y="%d" fill="white">%s</text>`+"\n",
				x+3, y+barH-7, svgEscape(truncate(t.Name, wpx/6)))
		}
	}

	// Deadline markers.
	for _, id := range s.Graph.DeadlineTasks() {
		t := s.Graph.Task(id)
		if t.Deadline > makespan {
			continue
		}
		x := leftPad + int(float64(t.Deadline)*scale)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="red" stroke-dasharray="3,3"><title>d(%s)=%d</title></line>`+"\n",
			x, topPad-4, x, height-20, svgEscape(t.Name), t.Deadline)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func truncate(s string, n int) string {
	if n < 1 || len(s) <= n {
		return s
	}
	return s[:n]
}
