package sched

import (
	"fmt"

	"nocsched/internal/energy"
	"nocsched/internal/schedtable"
)

// RoutePlan is the immutable, precomputed per-pair route table of one
// platform: for every ordered PE pair, the link indices of the ACG
// route, flattened into a single backing array. It exists so that the
// per-builder lazy route cache (routeTabs/routeIDs/routeSet in Builder)
// can be computed once per ACG and then shared read-only by every
// builder and prober scheduling on that platform — the batch engine
// builds one plan per distinct ACG and hands it to all of its workers.
//
// A RoutePlan is never mutated after NewRoutePlan returns, so any
// number of goroutines may consult it concurrently without
// synchronization. Builders attach it with Builder.SetRoutePlan; with a
// plan attached the lazy fill path is bypassed entirely (no routeSet
// writes), which the no-lazy-fill regression test pins down.
type RoutePlan struct {
	acg *energy.ACG
	n   int
	// off[idx] .. off[idx+1] delimit the link IDs of pair idx =
	// src*n+dst inside ids. Unroutable pairs of a partial (degraded)
	// ACG have empty ranges, mirroring the nil route.
	off []int
	ids []int
}

// NewRoutePlan precomputes the route plan of every ordered PE pair of
// the ACG. Cost is one pass over the ACG's already-precomputed routes;
// the result is shared, so in a batch setting this replaces one lazy
// cache fill per builder per pair with one plan per platform.
func NewRoutePlan(acg *energy.ACG) *RoutePlan {
	n := acg.NumPEs()
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			total += len(acg.Route(i, j))
		}
	}
	p := &RoutePlan{
		acg: acg,
		n:   n,
		off: make([]int, n*n+1),
		ids: make([]int, 0, total),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for _, l := range acg.Route(i, j) {
				p.ids = append(p.ids, int(l))
			}
			p.off[i*n+j+1] = len(p.ids)
		}
	}
	return p
}

// ACG returns the architecture characterization graph the plan was
// computed for. Builders refuse plans computed for a different ACG.
func (p *RoutePlan) ACG() *energy.ACG { return p.acg }

// NumPEs returns the number of PEs the plan covers.
func (p *RoutePlan) NumPEs() int { return p.n }

// Links returns the link indices of the route from PE src to PE dst.
// The slice aliases plan storage and must not be mutated; unroutable
// pairs yield an empty slice.
func (p *RoutePlan) Links(src, dst int) []int {
	idx := src*p.n + dst
	return p.ids[p.off[idx]:p.off[idx+1]:p.off[idx+1]]
}

// SetRoutePlan attaches a shared route plan to the builder, replacing
// the lazy per-pair route cache: every routeTables lookup then slices
// the plan's precomputed link IDs and a flat per-builder table-pointer
// array materialized here in one allocation. It must be called before
// any probe or commit and the plan must have been computed for the
// builder's ACG.
func (b *Builder) SetRoutePlan(p *RoutePlan) error {
	if p.acg != b.acg {
		return fmt.Errorf("sched: route plan computed for a different ACG")
	}
	if b.nCommitted > 0 || b.journal.Len() > 0 {
		return fmt.Errorf("sched: SetRoutePlan on a builder already in use")
	}
	// One flat allocation holds every pair's table pointers, aligned
	// index-for-index with p.ids; routeTables slices both by the plan's
	// offsets.
	tabs := make([]*schedtable.Table, len(p.ids))
	for i, l := range p.ids {
		tabs[i] = &b.linkTables[l]
	}
	b.plan, b.planTabs = p, tabs
	return nil
}
