package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
)

// jsonSchedule is the exported form of a schedule: placements only (the
// graph and platform are referenced by name, not embedded — a schedule
// is meaningless without the problem instance it was built for, and
// callers re-derive routes from the platform on import).
type jsonSchedule struct {
	Algorithm string            `json:"algorithm"`
	Graph     string            `json:"graph"`
	Platform  string            `json:"platform"`
	Tasks     []jsonPlacement   `json:"tasks"`
	Trans     []jsonTransaction `json:"transactions"`
}

type jsonPlacement struct {
	Task  ctg.TaskID `json:"task"`
	Name  string     `json:"name"`
	PE    int        `json:"pe"`
	Start int64      `json:"start"`
	End   int64      `json:"end"`
}

type jsonTransaction struct {
	Edge  ctg.EdgeID `json:"edge"`
	Src   int        `json:"src_pe"`
	Dst   int        `json:"dst_pe"`
	Start int64      `json:"start"`
	End   int64      `json:"end"`
}

// WriteJSON exports the schedule's placements as indented JSON.
func (s *Schedule) WriteJSON(w io.Writer) error {
	js := jsonSchedule{
		Algorithm: s.Algorithm,
		Graph:     s.Graph.Name,
		Platform:  s.ACG.Platform().Topo.Name(),
	}
	for i := range s.Tasks {
		p := &s.Tasks[i]
		js.Tasks = append(js.Tasks, jsonPlacement{
			Task:  p.Task,
			Name:  s.Graph.Task(p.Task).Name,
			PE:    p.PE,
			Start: p.Start,
			End:   p.Finish,
		})
	}
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		js.Trans = append(js.Trans, jsonTransaction{
			Edge:  tr.Edge,
			Src:   tr.SrcPE,
			Dst:   tr.DstPE,
			Start: tr.Start,
			End:   tr.Finish,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ReadJSON imports a schedule previously exported with WriteJSON,
// re-binding it to the given problem instance: the graph and ACG must
// be the ones the schedule was built for (names are cross-checked, and
// the result is fully re-validated, so a mismatched instance is
// rejected rather than silently misinterpreted). Routes are re-derived
// from the ACG.
func ReadJSON(r io.Reader, g *ctg.Graph, acg *energy.ACG) (*Schedule, error) {
	var js jsonSchedule
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	if js.Graph != g.Name {
		return nil, fmt.Errorf("sched: schedule is for graph %q, not %q", js.Graph, g.Name)
	}
	if name := acg.Platform().Topo.Name(); js.Platform != name {
		return nil, fmt.Errorf("sched: schedule is for platform %q, not %q", js.Platform, name)
	}
	if len(js.Tasks) != g.NumTasks() || len(js.Trans) != g.NumEdges() {
		return nil, fmt.Errorf("sched: schedule shape (%d tasks, %d transactions) does not match graph (%d, %d)",
			len(js.Tasks), len(js.Trans), g.NumTasks(), g.NumEdges())
	}
	full := New(g, acg, js.Algorithm)
	for _, jp := range js.Tasks {
		if jp.Task < 0 || int(jp.Task) >= g.NumTasks() {
			return nil, fmt.Errorf("sched: placement references unknown task %d", jp.Task)
		}
		full.Tasks[jp.Task] = TaskPlacement{Task: jp.Task, PE: jp.PE, Start: jp.Start, Finish: jp.End}
	}
	for _, jt := range js.Trans {
		if jt.Edge < 0 || int(jt.Edge) >= g.NumEdges() {
			return nil, fmt.Errorf("sched: placement references unknown edge %d", jt.Edge)
		}
		if jt.Src < 0 || jt.Src >= acg.NumPEs() || jt.Dst < 0 || jt.Dst >= acg.NumPEs() {
			return nil, fmt.Errorf("sched: transaction %d references unknown PE", jt.Edge)
		}
		tr := TransactionPlacement{Edge: jt.Edge, SrcPE: jt.Src, DstPE: jt.Dst, Start: jt.Start, Finish: jt.End}
		if acg.TransferTime(g.Edge(jt.Edge).Volume, jt.Src, jt.Dst) > 0 {
			tr.Route = acg.Route(jt.Src, jt.Dst)
		}
		full.Transactions[jt.Edge] = tr
	}
	if err := full.Validate(); err != nil {
		return nil, err
	}
	return full, nil
}

// ReadJSONLenient imports a schedule without validating it, for
// verification tooling: a conformance oracle wants to load a possibly
// broken artifact and report every defect as a typed finding, where
// ReadJSON would reject it at the first error. Only JSON syntax and
// the graph/platform name binding are enforced (a schedule for a
// different problem instance is a caller error, not a schedule
// defect). Placements referencing out-of-range tasks, edges, or PEs
// are dropped, leaving their slots zeroed for the oracle to flag;
// routes are re-derived from the ACG for in-range endpoint pairs with
// a positive transfer time, exactly as ReadJSON does.
func ReadJSONLenient(r io.Reader, g *ctg.Graph, acg *energy.ACG) (*Schedule, error) {
	var js jsonSchedule
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	if js.Graph != g.Name {
		return nil, fmt.Errorf("sched: schedule is for graph %q, not %q", js.Graph, g.Name)
	}
	if name := acg.Platform().Topo.Name(); js.Platform != name {
		return nil, fmt.Errorf("sched: schedule is for platform %q, not %q", js.Platform, name)
	}
	full := New(g, acg, js.Algorithm)
	for _, jp := range js.Tasks {
		if jp.Task < 0 || int(jp.Task) >= g.NumTasks() {
			continue
		}
		full.Tasks[jp.Task] = TaskPlacement{Task: jp.Task, PE: jp.PE, Start: jp.Start, Finish: jp.End}
	}
	for _, jt := range js.Trans {
		if jt.Edge < 0 || int(jt.Edge) >= g.NumEdges() {
			continue
		}
		tr := TransactionPlacement{Edge: jt.Edge, SrcPE: jt.Src, DstPE: jt.Dst, Start: jt.Start, Finish: jt.End}
		if jt.Src >= 0 && jt.Src < acg.NumPEs() && jt.Dst >= 0 && jt.Dst < acg.NumPEs() &&
			acg.TransferTime(g.Edge(jt.Edge).Volume, jt.Src, jt.Dst) > 0 {
			tr.Route = acg.Route(jt.Src, jt.Dst)
		}
		full.Transactions[jt.Edge] = tr
	}
	return full, nil
}
