// Package sched defines the output representation shared by all
// schedulers in this repository: a static, non-preemptive schedule
// assigning every task to a PE and a start time, and every communication
// transaction to a time slot on its route (the paper's Sec. 4 problem
// statement). It also provides the energy accounting of Eq. (3), the
// compatibility validation of Definitions 3 and 4, deadline analysis,
// and human-readable rendering.
package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
)

// TaskPlacement fixes where and when one task executes.
type TaskPlacement struct {
	Task   ctg.TaskID
	PE     int
	Start  int64
	Finish int64
}

// TransactionPlacement fixes when one communication transaction occupies
// its route. For intra-tile transfers (SrcPE == DstPE) and pure control
// dependencies the route is empty and Start == Finish == the sender's
// finish time.
type TransactionPlacement struct {
	Edge   ctg.EdgeID
	SrcPE  int
	DstPE  int
	Start  int64
	Finish int64
	Route  []noc.LinkID
}

// Schedule is a complete static schedule of a CTG on a platform.
type Schedule struct {
	Graph *ctg.Graph
	ACG   *energy.ACG

	// Tasks is indexed by TaskID; Transactions by EdgeID.
	Tasks        []TaskPlacement
	Transactions []TransactionPlacement

	// Algorithm names the scheduler that produced the schedule
	// ("eas", "eas-base", "edf").
	Algorithm string
	// Elapsed is the wall-clock scheduling time, reported because the
	// paper compares scheduler run times with and without
	// search-and-repair.
	Elapsed time.Duration
	// Probes counts the F(i,k) feasibility probes evaluated while
	// building the schedule — the unit the performance harness
	// normalizes by (probes/sec is scheduler throughput independent of
	// graph shape).
	Probes int64
}

// New allocates an empty schedule shell for the given problem instance.
func New(g *ctg.Graph, acg *energy.ACG, algorithm string) *Schedule {
	return &Schedule{
		Graph:        g,
		ACG:          acg,
		Tasks:        make([]TaskPlacement, g.NumTasks()),
		Transactions: make([]TransactionPlacement, g.NumEdges()),
		Algorithm:    algorithm,
	}
}

// ComputationEnergy returns the first term of Eq. (3):
// sum over tasks of e_i[M(t_i)].
func (s *Schedule) ComputationEnergy() float64 {
	total := 0.0
	for i := range s.Tasks {
		p := &s.Tasks[i]
		total += s.Graph.Task(p.Task).Energy[p.PE]
	}
	return total
}

// CommunicationEnergy returns the second term of Eq. (3):
// sum over arcs of v(c_ij) * e(r_{M(ti),M(tj)}).
func (s *Schedule) CommunicationEnergy() float64 {
	total := 0.0
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		total += s.ACG.CommEnergy(s.Graph.Edge(tr.Edge).Volume, tr.SrcPE, tr.DstPE)
	}
	return total
}

// TotalEnergy returns Eq. (3), the scheduler's objective.
func (s *Schedule) TotalEnergy() float64 {
	return s.ComputationEnergy() + s.CommunicationEnergy()
}

// Makespan returns the latest task finish time.
func (s *Schedule) Makespan() int64 {
	var m int64
	for i := range s.Tasks {
		if s.Tasks[i].Finish > m {
			m = s.Tasks[i].Finish
		}
	}
	return m
}

// DeadlineMisses returns the tasks whose finish time exceeds their
// specified deadline, in task-ID order.
func (s *Schedule) DeadlineMisses() []ctg.TaskID {
	var misses []ctg.TaskID
	for i := range s.Tasks {
		p := &s.Tasks[i]
		t := s.Graph.Task(p.Task)
		if t.HasDeadline() && p.Finish > t.Deadline {
			misses = append(misses, p.Task)
		}
	}
	return misses
}

// MaxLateness returns the largest (finish - deadline) over
// deadline-constrained tasks; non-positive values mean all deadlines are
// met. Returns math.MinInt64 if the graph has no deadlines.
func (s *Schedule) MaxLateness() int64 {
	lateness := int64(math.MinInt64)
	for i := range s.Tasks {
		p := &s.Tasks[i]
		t := s.Graph.Task(p.Task)
		if !t.HasDeadline() {
			continue
		}
		if l := p.Finish - t.Deadline; l > lateness {
			lateness = l
		}
	}
	return lateness
}

// Feasible reports whether every specified deadline is met.
func (s *Schedule) Feasible() bool { return len(s.DeadlineMisses()) == 0 }

// AvgHopsPerPacket returns the mean n_hops over all data transactions
// (volume > 0), counting intra-tile deliveries as 0 hops — the metric
// the paper reports when explaining where EAS's communication-energy
// savings come from ("decreasing the average hops per packet from 2.55
// to 1.58"). Returns 0 if there are no data transactions.
func (s *Schedule) AvgHopsPerPacket() float64 {
	sum, n := 0.0, 0
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		if s.Graph.Edge(tr.Edge).Volume <= 0 {
			continue
		}
		sum += float64(s.ACG.Hops(tr.SrcPE, tr.DstPE))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PEOrder returns, for each PE, the IDs of the tasks assigned to it in
// ascending start-time order. It is the representation search-and-repair
// manipulates.
func (s *Schedule) PEOrder() [][]ctg.TaskID {
	order := make([][]ctg.TaskID, s.ACG.NumPEs())
	for i := range s.Tasks {
		p := &s.Tasks[i]
		order[p.PE] = append(order[p.PE], p.Task)
	}
	for pe := range order {
		tasks := order[pe]
		sort.Slice(tasks, func(a, b int) bool {
			sa, sb := s.Tasks[tasks[a]].Start, s.Tasks[tasks[b]].Start
			if sa != sb {
				return sa < sb
			}
			return tasks[a] < tasks[b]
		})
	}
	return order
}

// Validate checks that the schedule is a feasible solution of the
// paper's Sec. 4 formulation, except for deadlines (use Feasible /
// DeadlineMisses for those, since the paper's EAS-base legitimately
// produces deadline-missing schedules that are otherwise well-formed):
//
//   - every task placement matches the task's execution time on its PE
//     and the PE can run the task;
//   - tasks on the same PE do not overlap (Definition 4);
//   - every transaction starts at or after its sender's finish, lasts
//     exactly its transfer time, follows the ACG route, and finishes at
//     or before its receiver's start (dependency satisfaction);
//   - transactions whose routes share a link do not overlap in time
//     (Definition 3).
func (s *Schedule) Validate() error {
	g := s.Graph
	if len(s.Tasks) != g.NumTasks() || len(s.Transactions) != g.NumEdges() {
		return fmt.Errorf("sched: incomplete schedule: %d/%d tasks, %d/%d transactions",
			len(s.Tasks), g.NumTasks(), len(s.Transactions), g.NumEdges())
	}
	for i := range s.Tasks {
		p := &s.Tasks[i]
		if p.Task != ctg.TaskID(i) {
			return fmt.Errorf("sched: task slot %d holds task %d", i, p.Task)
		}
		t := g.Task(p.Task)
		if p.PE < 0 || p.PE >= s.ACG.NumPEs() {
			return fmt.Errorf("sched: task %d on invalid PE %d", p.Task, p.PE)
		}
		if !t.RunnableOn(p.PE) {
			return fmt.Errorf("sched: task %d not runnable on PE %d", p.Task, p.PE)
		}
		if p.Start < 0 {
			return fmt.Errorf("sched: task %d starts at negative time %d", p.Task, p.Start)
		}
		if want := p.Start + t.ExecTime[p.PE]; p.Finish != want {
			return fmt.Errorf("sched: task %d finish %d, want %d (start %d + exec %d)",
				p.Task, p.Finish, want, p.Start, t.ExecTime[p.PE])
		}
	}
	// Definition 4: same-PE tasks must not overlap.
	for pe, tasks := range s.PEOrder() {
		for i := 1; i < len(tasks); i++ {
			prev, cur := &s.Tasks[tasks[i-1]], &s.Tasks[tasks[i]]
			if cur.Start < prev.Finish {
				return fmt.Errorf("sched: tasks %d and %d overlap on PE %d ([%d,%d) vs [%d,%d))",
					prev.Task, cur.Task, pe, prev.Start, prev.Finish, cur.Start, cur.Finish)
			}
		}
	}
	// Transactions: dependency, duration, route and placement checks.
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		if tr.Edge != ctg.EdgeID(i) {
			return fmt.Errorf("sched: transaction slot %d holds edge %d", i, tr.Edge)
		}
		e := g.Edge(tr.Edge)
		src, dst := &s.Tasks[e.Src], &s.Tasks[e.Dst]
		if tr.SrcPE != src.PE || tr.DstPE != dst.PE {
			return fmt.Errorf("sched: transaction %d PEs (%d->%d) disagree with task placement (%d->%d)",
				tr.Edge, tr.SrcPE, tr.DstPE, src.PE, dst.PE)
		}
		if tr.Start < src.Finish {
			return fmt.Errorf("sched: transaction %d starts at %d before sender task %d finishes at %d",
				tr.Edge, tr.Start, e.Src, src.Finish)
		}
		wantDur := s.ACG.TransferTime(e.Volume, tr.SrcPE, tr.DstPE)
		if tr.Finish-tr.Start != wantDur {
			return fmt.Errorf("sched: transaction %d duration %d, want %d",
				tr.Edge, tr.Finish-tr.Start, wantDur)
		}
		if tr.Finish > dst.Start {
			return fmt.Errorf("sched: transaction %d finishes at %d after receiver task %d starts at %d",
				tr.Edge, tr.Finish, e.Dst, dst.Start)
		}
		want := s.ACG.Route(tr.SrcPE, tr.DstPE)
		if wantDur == 0 {
			// Intra-tile or control transfer: no network occupancy.
			if len(tr.Route) != 0 {
				return fmt.Errorf("sched: zero-time transaction %d has a route", tr.Edge)
			}
			continue
		}
		if len(tr.Route) != len(want) {
			return fmt.Errorf("sched: transaction %d route length %d, want %d",
				tr.Edge, len(tr.Route), len(want))
		}
		for j := range want {
			if tr.Route[j] != want[j] {
				return fmt.Errorf("sched: transaction %d deviates from the deterministic route at hop %d",
					tr.Edge, j)
			}
		}
	}
	// Definition 3: transactions sharing a link must not overlap in
	// time. Collect per-link occupancies and sort.
	type slot struct {
		edge       ctg.EdgeID
		start, end int64
	}
	perLink := make(map[noc.LinkID][]slot)
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		if tr.Finish == tr.Start {
			continue
		}
		for _, l := range tr.Route {
			perLink[l] = append(perLink[l], slot{edge: tr.Edge, start: tr.Start, end: tr.Finish})
		}
	}
	for link, slots := range perLink {
		sort.Slice(slots, func(a, b int) bool { return slots[a].start < slots[b].start })
		for i := 1; i < len(slots); i++ {
			if slots[i].start < slots[i-1].end {
				return fmt.Errorf("sched: transactions %d and %d overlap on link %d",
					slots[i-1].edge, slots[i].edge, link)
			}
		}
	}
	return nil
}

// EnergyBreakdown summarizes a schedule for reporting.
type EnergyBreakdown struct {
	Computation   float64
	Communication float64
	Total         float64
	AvgHops       float64
	Makespan      int64
	Misses        int
}

// Breakdown returns the schedule's energy and performance summary.
func (s *Schedule) Breakdown() EnergyBreakdown {
	comp := s.ComputationEnergy()
	comm := s.CommunicationEnergy()
	return EnergyBreakdown{
		Computation:   comp,
		Communication: comm,
		Total:         comp + comm,
		AvgHops:       s.AvgHopsPerPacket(),
		Makespan:      s.Makespan(),
		Misses:        len(s.DeadlineMisses()),
	}
}

// Gantt renders a per-PE textual Gantt chart of the schedule, ordered by
// PE then start time. Intended for examples and CLI output, not parsing.
func (s *Schedule) Gantt() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %q: energy=%.1f nJ (comp %.1f + comm %.1f), makespan=%d, misses=%d\n",
		s.Algorithm, s.TotalEnergy(), s.ComputationEnergy(), s.CommunicationEnergy(),
		s.Makespan(), len(s.DeadlineMisses()))
	for pe, tasks := range s.PEOrder() {
		cls := s.ACG.Platform().Classes[pe]
		fmt.Fprintf(&b, "  PE %2d (%s):", pe, cls.Name)
		if len(tasks) == 0 {
			b.WriteString(" idle\n")
			continue
		}
		b.WriteString("\n")
		for _, id := range tasks {
			p := &s.Tasks[id]
			t := s.Graph.Task(id)
			mark := ""
			if t.HasDeadline() {
				mark = fmt.Sprintf(" d=%d", t.Deadline)
				if p.Finish > t.Deadline {
					mark += " MISS"
				}
			}
			fmt.Fprintf(&b, "    [%6d,%6d) %s%s\n", p.Start, p.Finish, t.Name, mark)
		}
	}
	return b.String()
}
