package sched

import (
	"testing"

	"nocsched/internal/ctg"
)

// TestRoutePlanMatchesACGRoutes checks the flattened plan against the
// ACG's own routes, pair by pair.
func TestRoutePlanMatchesACGRoutes(t *testing.T) {
	_, acg := proberRig(t, 51, 10)
	p := NewRoutePlan(acg)
	if p.ACG() != acg || p.NumPEs() != acg.NumPEs() {
		t.Fatalf("plan identity: ACG match %v, PEs %d want %d", p.ACG() == acg, p.NumPEs(), acg.NumPEs())
	}
	for i := 0; i < acg.NumPEs(); i++ {
		for j := 0; j < acg.NumPEs(); j++ {
			route := acg.Route(i, j)
			links := p.Links(i, j)
			if len(links) != len(route) {
				t.Fatalf("pair (%d,%d): plan has %d links, route %d", i, j, len(links), len(route))
			}
			for k, l := range route {
				if links[k] != int(l) {
					t.Fatalf("pair (%d,%d) hop %d: plan link %d, route %d", i, j, k, links[k], l)
				}
			}
		}
	}
}

// TestPlanMatchesLazySchedules is the plan-vs-lazy determinism oracle:
// a builder with a shared plan attached must schedule bit-identically
// to one using its private lazy route cache.
func TestPlanMatchesLazySchedules(t *testing.T) {
	g, acg := proberRig(t, 52, 45)
	var ready []ctg.TaskID
	ref := driveEF(t, NewBuilder(g, acg, "test"), ready)

	b := NewBuilder(g, acg, "test")
	if err := b.SetRoutePlan(NewRoutePlan(acg)); err != nil {
		t.Fatal(err)
	}
	if d := Diff(ref, driveEF(t, b, ready)); d != "" {
		t.Errorf("plan-backed schedule diverges from lazy-cache schedule:\n%s", d)
	}
}

// TestPlanBypassesLazyFill pins the sharing invariant: with a plan
// attached, a full schedule performs no lazy route-cache writes — the
// per-builder routeSet stays untouched, so the only route state in use
// is the immutable shared plan plus the builder's flat table-pointer
// array. This is what makes cross-builder plan sharing race-free.
func TestPlanBypassesLazyFill(t *testing.T) {
	g, acg := proberRig(t, 53, 40)
	b := NewBuilder(g, acg, "test")
	if err := b.SetRoutePlan(NewRoutePlan(acg)); err != nil {
		t.Fatal(err)
	}
	var ready []ctg.TaskID
	driveEF(t, b, ready)
	for idx, set := range b.routeSet {
		if set {
			t.Fatalf("lazy route cache filled for pair %d despite attached plan", idx)
		}
	}
	// Reset on the same ACG must keep the plan attached.
	b.Reset(g, acg)
	if b.plan == nil {
		t.Error("same-ACG Reset dropped the route plan")
	}
}

// TestSetRoutePlanRejectsMisuse covers the two guarded error paths:
// plans for a different ACG and attachment to a builder already in use.
func TestSetRoutePlanRejectsMisuse(t *testing.T) {
	g, acg := proberRig(t, 54, 20)
	_, other := proberRig(t, 55, 20)
	b := NewBuilder(g, acg, "test")
	if err := b.SetRoutePlan(NewRoutePlan(other)); err == nil {
		t.Error("accepted a plan computed for a different ACG")
	}
	var ready []ctg.TaskID
	driveEF(t, b, ready)
	if err := b.SetRoutePlan(NewRoutePlan(acg)); err == nil {
		t.Error("accepted a plan on a builder already in use")
	}
}

// TestPlanProbeSteadyStateAllocs bounds the read-only probe path with a
// shared plan attached: after warm-up, probing allocates nothing — the
// prober's overlay scratch and the plan's flat arrays are all reused,
// and no lazy cache entries are ever materialized.
func TestPlanProbeSteadyStateAllocs(t *testing.T) {
	g, acg := proberRig(t, 56, 40)
	b := NewBuilder(g, acg, "test")
	if err := b.SetRoutePlan(NewRoutePlan(acg)); err != nil {
		t.Fatal(err)
	}
	pr := b.NewProber()
	ready := b.AppendReady(nil)
	if len(ready) == 0 {
		t.Fatal("no ready tasks")
	}
	task := ready[0]
	if _, err := pr.Probe(task, 0); err != nil { // warm the overlay scratch
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		for k := 0; k < b.ACG().NumPEs(); k++ {
			if !g.Task(task).RunnableOn(k) {
				continue
			}
			if _, err := pr.Probe(task, k); err != nil {
				panic(err)
			}
		}
	})
	if avg > 0 {
		t.Errorf("plan-backed read-only probe allocates %.2f objects/run, want 0", avg)
	}
}
