package sched

import (
	"fmt"
	"io"

	"nocsched/internal/noc"
	"nocsched/internal/telemetry"
)

// EmitChromeTrace renders the committed schedule into a Chrome
// trace_event sink as a Gantt chart: one track per PE (task execution
// slices, named by task) and one track per directed link (transaction
// slices, named by edge). Every PE and link track is declared up front
// so idle resources still appear as empty rows; PE tracks sort above
// link tracks. Timestamps are schedule time units rendered in the
// viewer's µs column.
//
// The caller owns the sink: check sink.Err / Close it afterwards (the
// sink records the first write error rather than failing mid-render).
func (s *Schedule) EmitChromeTrace(sink *telemetry.ChromeSink) {
	if sink == nil {
		return
	}
	plat := s.ACG.Platform()
	npes := s.ACG.NumPEs()
	peTrack := make([]string, npes)
	for pe := 0; pe < npes; pe++ {
		peTrack[pe] = fmt.Sprintf("PE %d (%s)", pe, plat.Classes[pe].Name)
		sink.DeclareTrack(peTrack[pe])
	}
	nlinks := plat.Topo.NumLinks()
	linkTrack := make([]string, nlinks)
	for l := 0; l < nlinks; l++ {
		lk := plat.Topo.Link(noc.LinkID(l))
		linkTrack[l] = fmt.Sprintf("link %d->%d", lk.From, lk.To)
		sink.DeclareTrack(linkTrack[l])
	}
	for i := range s.Tasks {
		p := &s.Tasks[i]
		t := s.Graph.Task(p.Task)
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", p.Task)
		}
		sink.Emit(&telemetry.Event{
			Name: name, Track: peTrack[p.PE], Kind: 'X',
			Ts: p.Start, Dur: p.Finish - p.Start,
		})
	}
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		if tr.Finish == tr.Start {
			continue // intra-tile or control: no network occupancy
		}
		name := fmt.Sprintf("e%d t%d->t%d", tr.Edge,
			s.Graph.Edge(tr.Edge).Src, s.Graph.Edge(tr.Edge).Dst)
		for _, l := range tr.Route {
			sink.Emit(&telemetry.Event{
				Name: name, Track: linkTrack[l], Kind: 'X',
				Ts: tr.Start, Dur: tr.Finish - tr.Start,
			})
		}
	}
}

// WriteChromeTrace writes the schedule's Chrome trace_event rendering
// (see EmitChromeTrace) to w and returns the first write error.
func (s *Schedule) WriteChromeTrace(w io.Writer) error {
	sink := telemetry.NewChromeSink(w)
	s.EmitChromeTrace(sink)
	return sink.Close()
}
