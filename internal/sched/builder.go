package sched

import (
	"fmt"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/schedtable"
)

// Builder incrementally constructs a Schedule while maintaining the
// schedule tables of every PE and every link. It implements the
// communication scheduler of the paper's Fig. 3 and the probe/restore
// discipline of the level-based scheduler: Probe computes the earliest
// finish F(i,k) of a task on a PE by actually reserving slots and then
// rolling the tables back; Commit makes the same placement permanent.
type Builder struct {
	g         *ctg.Graph
	acg       *energy.ACG
	algorithm string

	peTables   []schedtable.Table
	linkTables []schedtable.Table
	journal    schedtable.Journal

	placed     []bool
	schedule   *Schedule
	nCommitted int

	// Route cache, per ordered PE pair: the link-table pointer slice and
	// link indices of the ACG route, so neither probes nor commits
	// rebuild them per transaction. Filled lazily (rebuild-heavy callers
	// touch few pairs); warmRoutes pre-fills it so concurrent read-only
	// probers never race on a lazy fill.
	routeTabs [][]*schedtable.Table
	routeIDs  [][]int
	routeSet  []bool

	// plan, when attached via SetRoutePlan, replaces the lazy route
	// cache: pair lookups slice the shared plan's link IDs and the flat
	// planTabs pointer array, and never write builder state (so
	// concurrent probers need no warm-up at all).
	plan     *RoutePlan
	planTabs []*schedtable.Table

	// lct/trans are place()'s per-commit scratch, reused across
	// transactions so the steady-state commit path performs no heap
	// allocations (Placement.Trans aliases trans; see Placement).
	lct   []ctg.EdgeID
	trans []TransactionPlacement

	// contention selects the exact Fig. 3 link-contention model (true,
	// the default) or the naive fixed-delay model most prior work uses
	// (false): every transaction takes volume/bandwidth time starting
	// the moment its sender finishes, with no link reservation. The
	// naive model exists for the ablation that quantifies the paper's
	// claim that modeling contention matters.
	contention bool

	// metrics holds pre-resolved telemetry handles (nil when telemetry
	// is off); probers copy the handles they need at construction.
	metrics *Metrics

	// blocked is the end of the BlockPast prefix reservation (0 when
	// the builder starts from an empty timeline).
	blocked int64
}

// Placement is the outcome of probing or committing one task on one PE.
type Placement struct {
	Task   ctg.TaskID
	PE     int
	Start  int64
	Finish int64
	// DRT is the data-ready time: the latest arrival of the incoming
	// transactions (Eq. 4 context).
	DRT int64
	// CommEnergy is the energy of the incoming transactions under this
	// placement (the footnote-2 term of the paper's E1/E2 metric).
	CommEnergy float64
	// Trans holds the incoming transaction placements, in the order
	// they were scheduled (sender-finish order per Fig. 3). The slice
	// aliases builder scratch and is only valid until the next probe or
	// commit on the same builder; callers that retain it must copy.
	Trans []TransactionPlacement
}

// NewBuilder returns a Builder for one scheduling run.
func NewBuilder(g *ctg.Graph, acg *energy.ACG, algorithm string) *Builder {
	npairs := acg.NumPEs() * acg.NumPEs()
	return &Builder{
		g:          g,
		acg:        acg,
		algorithm:  algorithm,
		peTables:   make([]schedtable.Table, acg.NumPEs()),
		linkTables: make([]schedtable.Table, acg.Platform().Topo.NumLinks()),
		placed:     make([]bool, g.NumTasks()),
		schedule:   New(g, acg, algorithm),
		contention: true,
		routeTabs:  make([][]*schedtable.Table, npairs),
		routeIDs:   make([][]int, npairs),
		routeSet:   make([]bool, npairs),
	}
}

// SetAlgorithm renames the algorithm recorded in schedules the builder
// produces. It takes effect at the next Reset — the schedule shell
// under construction keeps the name it was created with — so reuse
// drivers (Workspace.Prepare) call it immediately before Reset.
func (b *Builder) SetAlgorithm(name string) { b.algorithm = name }

// resetTables resizes ts to n zero-state tables, reusing both the slice
// and each table's interval storage when capacity allows.
func resetTables(ts []schedtable.Table, n int) []schedtable.Table {
	if cap(ts) < n {
		return make([]schedtable.Table, n)
	}
	ts = ts[:n]
	for i := range ts {
		ts[i].Reset()
	}
	return ts
}

// Reset returns the builder to its initial state for a new scheduling
// run of graph g, reusing every table, journal, route-cache and scratch
// allocation it can. With the same ACG the steady-state cost is one
// fresh Schedule shell and nothing else (the allocation-regression test
// pins this); a different ACG forces the table and route-cache storage
// to be rebuilt and detaches any route plan (reattach with
// SetRoutePlan). The contention model is restored to the exact Fig. 3
// default; callers wanting the naive ablation model must call
// SetContentionAware(false) again after Reset.
//
// Reset preserves the builder's identity, so Probers and ProbePools
// created from it remain valid across same-ACG resets — that is what
// lets a batch worker drive thousands of instances through one
// builder/pool pair with zero steady-state allocation.
func (b *Builder) Reset(g *ctg.Graph, acg *energy.ACG) {
	if acg != b.acg {
		npe := acg.NumPEs()
		npairs := npe * npe
		b.acg = acg
		b.peTables = resetTables(b.peTables, npe)
		b.linkTables = resetTables(b.linkTables, acg.Platform().Topo.NumLinks())
		// Route caches describe the old platform; rebuild them. The
		// lazy cache restarts empty, the plan (if any) is dropped
		// because it was computed for the old ACG.
		b.routeTabs = make([][]*schedtable.Table, npairs)
		b.routeIDs = make([][]int, npairs)
		b.routeSet = make([]bool, npairs)
		b.plan, b.planTabs = nil, nil
	} else {
		for i := range b.peTables {
			b.peTables[i].Reset()
		}
		for i := range b.linkTables {
			b.linkTables[i].Reset()
		}
		// Route caches stay valid: they point into the same linkTables
		// backing array and routes are a platform property.
	}
	b.g = g
	n := g.NumTasks()
	if cap(b.placed) < n {
		b.placed = make([]bool, n)
	} else {
		b.placed = b.placed[:n]
		clear(b.placed)
	}
	b.journal.Reset()
	b.schedule = New(g, acg, b.algorithm)
	b.nCommitted = 0
	b.blocked = 0
	b.contention = true
}

// routeTables returns the cached link-table slice and link indices of
// the ACG route from PE src to PE dst. Unroutable pairs of a partial
// (degraded) ACG yield empty slices, mirroring the nil route. With a
// shared RoutePlan attached the lookup is a pure read (two slicings of
// precomputed storage); without one it lazily fills the per-builder
// cache.
func (b *Builder) routeTables(src, dst int) ([]*schedtable.Table, []int) {
	if p := b.plan; p != nil {
		idx := src*p.n + dst
		lo, hi := p.off[idx], p.off[idx+1]
		return b.planTabs[lo:hi], p.ids[lo:hi]
	}
	idx := src*b.acg.NumPEs() + dst
	if !b.routeSet[idx] {
		route := b.acg.Route(src, dst)
		tabs := make([]*schedtable.Table, len(route))
		ids := make([]int, len(route))
		for i, l := range route {
			tabs[i] = &b.linkTables[l]
			ids[i] = int(l)
		}
		b.routeTabs[idx], b.routeIDs[idx] = tabs, ids
		b.routeSet[idx] = true
	}
	return b.routeTabs[idx], b.routeIDs[idx]
}

// warmRoutes fills the route cache for every PE pair. ProbePool calls
// it once at construction so that concurrent probers only ever read the
// cache. With a RoutePlan attached there is nothing to warm: the plan
// is precomputed and read-only.
func (b *Builder) warmRoutes() {
	if b.plan != nil {
		return
	}
	n := b.acg.NumPEs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.routeTables(i, j)
		}
	}
}

// SetContentionAware toggles the exact link-contention model. Schedules
// built with the naive model generally fail Schedule.Validate because
// transactions overlap on links; they are only useful as ablation input.
func (b *Builder) SetContentionAware(on bool) { b.contention = on }

// Graph returns the CTG being scheduled.
func (b *Builder) Graph() *ctg.Graph { return b.g }

// ACG returns the architecture characterization graph in use.
func (b *Builder) ACG() *energy.ACG { return b.acg }

// Placed reports whether the task has been committed.
func (b *Builder) Placed(t ctg.TaskID) bool { return b.placed[t] }

// Committed returns the number of committed tasks.
func (b *Builder) Committed() int { return b.nCommitted }

// TaskPlacement returns the committed placement of task t; it is only
// meaningful when Placed(t) is true.
func (b *Builder) TaskPlacement(t ctg.TaskID) TaskPlacement { return b.schedule.Tasks[t] }

// Ready reports whether every predecessor of t has been committed and t
// itself has not.
func (b *Builder) Ready(t ctg.TaskID) bool {
	if b.placed[t] {
		return false
	}
	for _, eid := range b.g.In(t) {
		if !b.placed[b.g.Edge(eid).Src] {
			return false
		}
	}
	return true
}

// ReadyTasks returns the current Ready Task List (RTL) in task-ID order.
func (b *Builder) ReadyTasks() []ctg.TaskID { return b.AppendReady(nil) }

// AppendReady appends the current Ready Task List to dst in task-ID
// order and returns the extended slice — the allocation-free sibling of
// ReadyTasks for schedulers that poll the RTL every round.
func (b *Builder) AppendReady(dst []ctg.TaskID) []ctg.TaskID {
	for i := 0; i < b.g.NumTasks(); i++ {
		if b.Ready(ctg.TaskID(i)) {
			dst = append(dst, ctg.TaskID(i))
		}
	}
	return dst
}

// place reserves the incoming transactions and the execution slot of
// task t on PE k via the journal, leaving the reservations committed.
// floor constrains the task start (used by timing reconstruction to
// enforce a per-PE execution order); pass 0 to allow gap filling.
//
// Implements Fig. 3: transactions are scheduled in ascending
// sender-finish order; each goes into the earliest slot at or after the
// sender's finish that is simultaneously free on every link of its
// route.
func (b *Builder) place(t ctg.TaskID, k int, floor int64) (Placement, error) {
	task := b.g.Task(t)
	if !task.RunnableOn(k) {
		return Placement{}, fmt.Errorf("sched: task %d not runnable on PE %d", t, k)
	}
	// LCT: incoming transactions sorted by sender finish time
	// (deterministic tie-break on edge ID). Insertion sort over builder
	// scratch — the in-degree is tiny, and both the copy and sort.Slice
	// would allocate on every commit.
	b.lct = append(b.lct[:0], b.g.In(t)...)
	lct := b.lct
	for i := 1; i < len(lct); i++ {
		for j := i; j > 0 && lctLess(b, lct[j], lct[j-1]); j-- {
			lct[j], lct[j-1] = lct[j-1], lct[j]
		}
	}

	b.trans = b.trans[:0]
	p := Placement{Task: t, PE: k}
	for _, eid := range lct {
		e := b.g.Edge(eid)
		src := b.schedule.Tasks[e.Src]
		if !b.placed[e.Src] {
			return Placement{}, fmt.Errorf("sched: task %d probed before predecessor %d committed", t, e.Src)
		}
		dur := b.acg.TransferTime(e.Volume, src.PE, k)
		tr := TransactionPlacement{Edge: eid, SrcPE: src.PE, DstPE: k}
		if dur == 0 {
			// Intra-tile delivery or control dependency: arrives the
			// moment the sender finishes, occupying no network.
			tr.Start, tr.Finish = src.Finish, src.Finish
		} else if b.contention {
			tables, _ := b.routeTables(src.PE, k)
			start := schedtable.FindEarliestAll(tables, src.Finish, dur)
			if err := b.journal.ReserveAll(tables, start, dur); err != nil {
				return Placement{}, fmt.Errorf("sched: reserve transaction %d: %w", eid, err)
			}
			tr.Start, tr.Finish = start, start+dur
			tr.Route = b.acg.Route(src.PE, k) // aliases immutable ACG storage
			p.CommEnergy += b.acg.CommEnergy(e.Volume, src.PE, k)
		} else {
			// Naive model: fixed delay, no link occupancy bookkeeping.
			tr.Start, tr.Finish = src.Finish, src.Finish+dur
			tr.Route = b.acg.Route(src.PE, k)
			p.CommEnergy += b.acg.CommEnergy(e.Volume, src.PE, k)
		}
		if tr.Finish > p.DRT {
			p.DRT = tr.Finish
		}
		b.trans = append(b.trans, tr)
	}
	p.Trans = b.trans
	earliest := p.DRT
	if floor > earliest {
		earliest = floor
	}
	exec := task.ExecTime[k]
	start := b.peTables[k].FindEarliest(earliest, exec)
	if exec == 0 {
		// Zero-length tasks still occupy a point in the order; no
		// reservation needed.
		p.Start, p.Finish = start, start
		return p, nil
	}
	if err := b.journal.Reserve(&b.peTables[k], start, exec); err != nil {
		return Placement{}, fmt.Errorf("sched: reserve task %d on PE %d: %w", t, k, err)
	}
	p.Start, p.Finish = start, start+exec
	return p, nil
}

// BlockPast reserves [0, t) on every PE and every link table, so
// everything committed afterwards can only occupy time at or after t.
// Fault-recovery checkpointing uses it to make the elapsed prefix of an
// interrupted schedule inviolable: when a fault lands mid-run at time
// t, the past cannot be rescheduled — post-fault execution and traffic
// start no earlier than t. It must be called on a fresh builder, before
// any probe or commit.
func (b *Builder) BlockPast(t int64) error {
	if t <= 0 {
		return nil
	}
	if b.nCommitted > 0 || b.journal.Len() > 0 || b.blocked > 0 {
		return fmt.Errorf("sched: BlockPast(%d) on a builder already in use", t)
	}
	for i := range b.peTables {
		if err := b.peTables[i].Reserve(0, t); err != nil {
			return fmt.Errorf("sched: block PE %d prefix: %w", i, err)
		}
	}
	for i := range b.linkTables {
		if err := b.linkTables[i].Reserve(0, t); err != nil {
			return fmt.Errorf("sched: block link %d prefix: %w", i, err)
		}
	}
	b.blocked = t
	return nil
}

// Blocked returns the end of the BlockPast prefix (0 when unblocked).
func (b *Builder) Blocked() int64 { return b.blocked }

// CommitFrozen records a placement checkpointed from an earlier
// schedule without re-deriving its timing: the task keeps its PE, start
// and finish, and the given incoming transactions keep theirs. No link
// slots are reserved — callers must only freeze tasks whose inputs were
// fully delivered before the blocked prefix ended, which holds for any
// task that started before the checkpoint (a transaction finishes no
// later than its consumer starts). The still-running tail of an
// in-flight task (finish past the blocked prefix) is reserved on its PE
// so newly scheduled work cannot overlap the execution already under
// way.
func (b *Builder) CommitFrozen(tp TaskPlacement, trans []TransactionPlacement) error {
	t := tp.Task
	if t < 0 || int(t) >= len(b.placed) {
		return fmt.Errorf("sched: freeze unknown task %d", t)
	}
	if b.placed[t] {
		return fmt.Errorf("sched: task %d committed twice", t)
	}
	if tp.Start >= b.blocked {
		return fmt.Errorf("sched: freezing task %d starting at %d, at or past the blocked prefix %d",
			t, tp.Start, b.blocked)
	}
	if tp.Finish > b.blocked {
		if err := b.peTables[tp.PE].Reserve(b.blocked, tp.Finish-b.blocked); err != nil {
			return fmt.Errorf("sched: reserve in-flight tail of task %d on PE %d: %w", t, tp.PE, err)
		}
	}
	b.schedule.Tasks[t] = tp
	for _, tr := range trans {
		b.schedule.Transactions[tr.Edge] = tr
	}
	b.placed[t] = true
	b.nCommitted++
	b.metrics.commits().Inc()
	return nil
}

// Probe computes F(i,k): the placement task t would get on PE k given
// the current tables, restoring all tables before returning (the paper's
// "schedule tables of both links and the PEs will be restored every time
// a F(i,k) is calculated").
func (b *Builder) Probe(t ctg.TaskID, k int) (Placement, error) {
	mark := b.journal.Mark()
	p, err := b.place(t, k, 0)
	b.journal.RollbackTo(mark)
	return p, err
}

// Commit permanently places task t on PE k with no ordering floor.
func (b *Builder) Commit(t ctg.TaskID, k int) (Placement, error) {
	return b.CommitAfter(t, k, 0)
}

// CommitAfter permanently places task t on PE k, with its start
// constrained to be at or after floor. The placement and its incoming
// transactions are recorded in the schedule under construction.
func (b *Builder) CommitAfter(t ctg.TaskID, k int, floor int64) (Placement, error) {
	if b.placed[t] {
		return Placement{}, fmt.Errorf("sched: task %d committed twice", t)
	}
	p, err := b.place(t, k, floor)
	if err != nil {
		return Placement{}, err
	}
	b.schedule.Tasks[t] = TaskPlacement{Task: t, PE: k, Start: p.Start, Finish: p.Finish}
	for _, tr := range p.Trans {
		b.schedule.Transactions[tr.Edge] = tr
	}
	b.placed[t] = true
	b.nCommitted++
	b.metrics.commits().Inc()
	return p, nil
}

// Finish returns the completed schedule. It fails if any task remains
// uncommitted.
func (b *Builder) Finish() (*Schedule, error) {
	if b.nCommitted != b.g.NumTasks() {
		return nil, fmt.Errorf("sched: schedule incomplete: %d of %d tasks committed",
			b.nCommitted, b.g.NumTasks())
	}
	return b.schedule, nil
}
