package sched

import "fmt"

// Diff compares two schedules of the same problem instance and returns
// a human-readable description of the first discrepancy, or "" when the
// schedules are identical: same task placements (PE, start, finish),
// same transaction placements (PEs, slot, route) and exactly equal
// total energy. It is the oracle of the parallel-vs-sequential
// differential tests: the read-only probe path and the worker pool
// promise bit-identical schedules, not merely equivalent-cost ones.
func Diff(a, b *Schedule) string {
	if len(a.Tasks) != len(b.Tasks) {
		return fmt.Sprintf("task counts differ: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	if len(a.Transactions) != len(b.Transactions) {
		return fmt.Sprintf("transaction counts differ: %d vs %d", len(a.Transactions), len(b.Transactions))
	}
	for i := range a.Tasks {
		ta, tb := &a.Tasks[i], &b.Tasks[i]
		if ta.PE != tb.PE || ta.Start != tb.Start || ta.Finish != tb.Finish {
			return fmt.Sprintf("task %d: PE %d [%d,%d) vs PE %d [%d,%d)",
				i, ta.PE, ta.Start, ta.Finish, tb.PE, tb.Start, tb.Finish)
		}
	}
	for i := range a.Transactions {
		ra, rb := &a.Transactions[i], &b.Transactions[i]
		if ra.SrcPE != rb.SrcPE || ra.DstPE != rb.DstPE ||
			ra.Start != rb.Start || ra.Finish != rb.Finish {
			return fmt.Sprintf("transaction %d: %d->%d [%d,%d) vs %d->%d [%d,%d)",
				i, ra.SrcPE, ra.DstPE, ra.Start, ra.Finish,
				rb.SrcPE, rb.DstPE, rb.Start, rb.Finish)
		}
		if len(ra.Route) != len(rb.Route) {
			return fmt.Sprintf("transaction %d: route lengths %d vs %d", i, len(ra.Route), len(rb.Route))
		}
		for j := range ra.Route {
			if ra.Route[j] != rb.Route[j] {
				return fmt.Sprintf("transaction %d: routes diverge at hop %d", i, j)
			}
		}
	}
	// Exact equality, not a tolerance: both schedules must have summed
	// the same float64 terms in the same order.
	if ea, eb := a.TotalEnergy(), b.TotalEnergy(); ea != eb {
		return fmt.Sprintf("total energy: %v vs %v", ea, eb)
	}
	return ""
}
