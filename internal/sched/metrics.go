package sched

import (
	"nocsched/internal/telemetry"
)

// Metric names published by the scheduler layer (see the README's
// Observability section for the full catalog with units).
const (
	// MetricProbes counts F(i,k) feasibility probes (count).
	MetricProbes = "sched_probes_total"
	// MetricRollbacks counts journal rollbacks on the legacy probe
	// path (count); zero on the read-only overlay path.
	MetricRollbacks = "sched_probe_rollbacks_total"
	// MetricCommits counts committed task placements (count).
	MetricCommits = "sched_commits_total"
	// MetricProbePairs is an NumPEs x NumPEs grid counting probed
	// incoming transactions per (source PE, candidate PE) pair — the
	// "which PE pair dominated probe cost" view (count).
	MetricProbePairs = "sched_probe_pair_total"
	// MetricReadyDepth is the ready-list depth observed at each
	// scheduling round (tasks).
	MetricReadyDepth = "sched_ready_depth"
	// MetricLinkBusy is a 1 x NumLinks grid of per-link busy time in
	// the committed schedule (schedule time units).
	MetricLinkBusy = "sched_link_busy_tu"
	// MetricLinkOccupancy is the per-link occupancy histogram of the
	// committed schedule: busy time over makespan, in percent, one
	// observation per link that carries traffic.
	MetricLinkOccupancy = "sched_link_occupancy_pct"
)

// readyDepthBounds is the fixed bucket layout of MetricReadyDepth.
var readyDepthBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// occupancyBounds is the fixed bucket layout of MetricLinkOccupancy
// (percent of makespan).
var occupancyBounds = []int64{1, 5, 10, 20, 40, 60, 80, 100}

// Metrics is the scheduler's pre-resolved metric handle set. Resolving
// once at builder setup keeps the hot probe path to one nil check and
// one atomic add per update; every handle is nil-safe, so a nil
// *Metrics (telemetry disabled) behaves identically to handles resolved
// from a nil registry. The zero-alloc probe guards cover both states.
type Metrics struct {
	Probes     *telemetry.Counter
	Rollbacks  *telemetry.Counter
	Commits    *telemetry.Counter
	ProbePairs *telemetry.CounterGrid
	ReadyDepth *telemetry.Histogram
}

// NewMetrics resolves the scheduler metric handles from a registry
// (nil registry: nil, disabled). npes sizes the PE-pair grid.
func NewMetrics(r *telemetry.Registry, npes int) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Probes:     r.Counter(MetricProbes),
		Rollbacks:  r.Counter(MetricRollbacks),
		Commits:    r.Counter(MetricCommits),
		ProbePairs: r.Grid(MetricProbePairs, npes, npes),
		ReadyDepth: r.Histogram(MetricReadyDepth, readyDepthBounds),
	}
}

// probes returns the probe counter, nil-safely.
func (m *Metrics) probes() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.Probes
}

// rollbacks returns the rollback counter, nil-safely.
func (m *Metrics) rollbacks() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.Rollbacks
}

// commits returns the commit counter, nil-safely.
func (m *Metrics) commits() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.Commits
}

// probePairs returns the PE-pair grid, nil-safely.
func (m *Metrics) probePairs() *telemetry.CounterGrid {
	if m == nil {
		return nil
	}
	return m.ProbePairs
}

// ObserveReadyDepth records one scheduling round's ready-list depth;
// valid on a nil receiver. Schedulers call it once per round, so it is
// not on the probe hot path.
func (m *Metrics) ObserveReadyDepth(depth int) {
	if m == nil {
		return
	}
	m.ReadyDepth.Observe(int64(depth))
}

// SetMetrics attaches pre-resolved metric handles to the builder; its
// probers pick them up at construction. nil detaches (the default).
func (b *Builder) SetMetrics(m *Metrics) { b.metrics = m }

// Metrics returns the builder's attached metric handles (nil when
// telemetry is off).
func (b *Builder) Metrics() *Metrics { return b.metrics }

// Schedule metric names published by PublishSchedule.
const (
	// MetricEnergyCompute / MetricEnergyComm are Eq. (3)'s two terms
	// (nanojoules).
	MetricEnergyCompute = "energy_compute_nj"
	MetricEnergyComm    = "energy_comm_nj"
	// MetricEnergySwitch / MetricEnergyLink split the communication
	// term into its ESbit (switch fabric) and ELbit (inter-tile wire)
	// components per Eq. (2) (nanojoules).
	MetricEnergySwitch = "energy_comm_switch_nj"
	MetricEnergyLink   = "energy_comm_link_nj"
	// MetricEnergyTotal is Eq. (3), the scheduler objective (nJ).
	MetricEnergyTotal = "energy_total_nj"
	// MetricMakespan is the schedule makespan (schedule time units).
	MetricMakespan = "sched_makespan_tu"
	// MetricDeadlineMisses counts tasks finishing past their deadline.
	MetricDeadlineMisses = "sched_deadline_misses"
)

// CommEnergySplit decomposes the schedule's communication energy into
// the switch-fabric (ESbit) and inter-tile-link (ELbit) components of
// Eq. (2): a transaction over nhops routers spends
// volume*nhops*ESbit in crossbars and volume*(nhops-1)*ELbit on wires.
// The two components sum to CommunicationEnergy for hop-uniform ACGs
// (weighted per-link ACGs fold their length factors into the link
// term's share, so the sum still matches the total).
func (s *Schedule) CommEnergySplit() (switchNJ, linkNJ float64) {
	model := s.ACG.Model()
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		vol := s.Graph.Edge(tr.Edge).Volume
		if vol <= 0 || tr.SrcPE == tr.DstPE {
			continue
		}
		hops := s.ACG.Hops(tr.SrcPE, tr.DstPE)
		if hops <= 0 {
			continue
		}
		total := s.ACG.CommEnergy(vol, tr.SrcPE, tr.DstPE)
		sw := float64(vol) * float64(hops) * model.ESbit
		switchNJ += sw
		linkNJ += total - sw
	}
	return switchNJ, linkNJ
}

// PublishSchedule publishes the committed schedule's summary metrics —
// energy breakdown (compute vs. ESbit vs. ELbit), makespan, deadline
// misses, per-link busy time and the link-occupancy histogram — into a
// registry. It runs once per schedule, after scheduling, so it is free
// to allocate. A nil registry is a no-op.
func PublishSchedule(r *telemetry.Registry, s *Schedule) {
	if r == nil || s == nil {
		return
	}
	comp := s.ComputationEnergy()
	comm := s.CommunicationEnergy()
	sw, lk := s.CommEnergySplit()
	r.Gauge(MetricEnergyCompute).Set(comp)
	r.Gauge(MetricEnergyComm).Set(comm)
	r.Gauge(MetricEnergySwitch).Set(sw)
	r.Gauge(MetricEnergyLink).Set(lk)
	r.Gauge(MetricEnergyTotal).Set(comp + comm)
	makespan := s.Makespan()
	r.Gauge(MetricMakespan).Set(float64(makespan))
	r.Gauge(MetricDeadlineMisses).Set(float64(len(s.DeadlineMisses())))

	numLinks := s.ACG.Platform().Topo.NumLinks()
	busyGrid := r.Grid(MetricLinkBusy, 1, numLinks)
	occ := r.Histogram(MetricLinkOccupancy, occupancyBounds)
	busy := make([]int64, numLinks)
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		dur := tr.Finish - tr.Start
		if dur == 0 {
			continue
		}
		for _, l := range tr.Route {
			busy[l] += dur
		}
	}
	for l, bt := range busy {
		if bt == 0 {
			continue
		}
		busyGrid.Add(0, l, bt)
		if makespan > 0 {
			occ.Observe(100 * bt / makespan)
		}
	}
}
