package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestUtilization(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	pes, links := s.Utilization()

	if len(pes) != 4 {
		t.Fatalf("PE stats count %d", len(pes))
	}
	// PE0 runs task a [0,10); makespan 32.
	if pes[0].Tasks != 1 || pes[0].BusyTime != 10 {
		t.Errorf("PE0 stats %+v", pes[0])
	}
	if got := pes[0].Utilization; got < 0.31 || got > 0.32 {
		t.Errorf("PE0 utilization %v", got)
	}
	// PE1 runs b and c: 20 busy.
	if pes[1].Tasks != 2 || pes[1].BusyTime != 20 {
		t.Errorf("PE1 stats %+v", pes[1])
	}
	if pes[2].Tasks != 0 || pes[3].Tasks != 0 {
		t.Error("idle PEs have tasks")
	}
	// Exactly the links of route PE0->PE1 carry traffic.
	route := acg.Route(0, 1)
	busy := 0
	for _, l := range links {
		if l.BusyTime > 0 {
			busy++
			found := false
			for _, r := range route {
				if r == l.Link {
					found = true
				}
			}
			if !found {
				t.Errorf("unexpected traffic on link %d", l.Link)
			}
			if l.Transactions != 1 || l.BusyTime != 2 || l.Volume != 200 {
				t.Errorf("link stats %+v", l)
			}
		}
	}
	if busy != len(route) {
		t.Errorf("%d busy links, want %d", busy, len(route))
	}
}

func TestRenderUtilization(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	var buf bytes.Buffer
	s.RenderUtilization(&buf, 5)
	out := buf.String()
	for _, want := range []string{"utilization", "cpu-hp", "link"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalTasksNames(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	if crit := s.CriticalTasks(); len(crit) != 0 {
		t.Errorf("feasible schedule has critical tasks %v", crit)
	}
	// Push c past its deadline: a, b, c all become critical.
	s.Tasks[ids[2]].Start = 2000
	s.Tasks[ids[2]].Finish = 2010
	crit := s.CriticalTasks()
	if len(crit) != 3 {
		t.Errorf("critical = %v", crit)
	}
}

func TestSummary(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	if !strings.Contains(s.Summary(), "all deadlines met") {
		t.Errorf("summary: %s", s.Summary())
	}
	s.Tasks[ids[2]].Start = 2000
	s.Tasks[ids[2]].Finish = 2010
	if !strings.Contains(s.Summary(), "DEADLINE MISS") {
		t.Errorf("summary: %s", s.Summary())
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf, g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != s.Algorithm {
		t.Errorf("algorithm %q", back.Algorithm)
	}
	if back.TotalEnergy() != s.TotalEnergy() || back.Makespan() != s.Makespan() {
		t.Error("round trip changed schedule economics")
	}
	for i := range s.Tasks {
		if back.Tasks[i] != s.Tasks[i] {
			t.Errorf("task %d placement changed: %+v vs %+v", i, back.Tasks[i], s.Tasks[i])
		}
	}
	_ = ids
}

func TestScheduleJSONRejectsMismatch(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong graph name.
	other := g.Clone()
	other.Name = "different"
	if _, err := ReadJSON(bytes.NewReader(buf.Bytes()), other, acg); err == nil {
		t.Error("mismatched graph accepted")
	}
	// Corrupted placement: make the schedule invalid.
	corrupted := strings.Replace(buf.String(), `"start": 12`, `"start": 5`, 1)
	if _, err := ReadJSON(strings.NewReader(corrupted), g, acg); err == nil {
		t.Error("invalid schedule accepted on import")
	}
	// Garbage input.
	if _, err := ReadJSON(strings.NewReader("{"), g, acg); err == nil {
		t.Error("garbage accepted")
	}
}
