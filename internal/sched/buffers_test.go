package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestBufferRequirements(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	stats := s.BufferRequirements()
	if len(stats) != 4 {
		t.Fatalf("stats for %d PEs", len(stats))
	}
	// Only edge0 (200 bits into b on PE1) carries data: it arrives at
	// 12 and is held until b finishes at 22.
	if stats[1].Messages != 1 || stats[1].PeakBits != 200 || stats[1].PeakAt != 12 {
		t.Errorf("PE1 buffer stats %+v", stats[1])
	}
	for _, pe := range []int{0, 2, 3} {
		if stats[pe].PeakBits != 0 {
			t.Errorf("PE%d unexpectedly buffers %d bits", pe, stats[pe].PeakBits)
		}
	}
	if s.TotalPeakBufferBits() != 200 {
		t.Errorf("total = %d", s.TotalPeakBufferBits())
	}
}

func TestBufferRequirementsOverlap(t *testing.T) {
	// Two messages into one consumer overlap in storage; peak is their
	// sum.
	g, acg, _ := testRig(t)
	_ = acg
	s := New(g, acg, "x")
	// Rebuild a synthetic scenario on the existing rig graph:
	// a -> b (200 bits), b -> c control. Give b a long execution so
	// the message lingers.
	s.Tasks[0] = TaskPlacement{Task: 0, PE: 0, Start: 0, Finish: 10}
	s.Tasks[1] = TaskPlacement{Task: 1, PE: 1, Start: 12, Finish: 22}
	s.Tasks[2] = TaskPlacement{Task: 2, PE: 1, Start: 22, Finish: 32}
	s.Transactions[0] = TransactionPlacement{Edge: 0, SrcPE: 0, DstPE: 1, Start: 10, Finish: 12, Route: acg.Route(0, 1)}
	s.Transactions[1] = TransactionPlacement{Edge: 1, SrcPE: 1, DstPE: 1, Start: 22, Finish: 22}
	stats := s.BufferRequirements()
	if stats[1].PeakBits != 200 {
		t.Errorf("PE1 peak %d", stats[1].PeakBits)
	}
	var buf bytes.Buffer
	s.RenderBufferRequirements(&buf)
	if !strings.Contains(buf.String(), "total peak: 200 bits") {
		t.Errorf("render:\n%s", buf.String())
	}
}

func TestWriteSVG(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "PE 0", "cpu-hp", `<rect`} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Deadlines far beyond the makespan draw no marker.
	if strings.Contains(out, "stroke-dasharray") {
		t.Error("far-future deadline marker drawn")
	}
	// A missed deadline gets the red outline, and the deadline now
	// falls inside the chart so its marker appears.
	s.Tasks[ids[2]].Start = 995
	s.Tasks[ids[2]].Finish = 1005
	buf.Reset()
	if err := s.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `red" stroke-width=`) {
		t.Error("missed deadline not highlighted")
	}
	if !strings.Contains(buf.String(), "stroke-dasharray") {
		t.Error("deadline marker missing")
	}
}

func TestSVGEscaping(t *testing.T) {
	if got := svgEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("escape = %q", got)
	}
	if truncate("hello", 3) != "hel" || truncate("hi", 10) != "hi" {
		t.Error("truncate wrong")
	}
}
