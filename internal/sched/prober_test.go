package sched

import (
	"math/rand"
	"sync"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/telemetry"
	"nocsched/internal/tgff"
)

// proberRig builds a TGFF graph on a 3x3 mesh, large enough that link
// contention and multi-hop routes actually occur.
func proberRig(t *testing.T, seed int64, tasks int) (*ctg.Graph, *energy.ACG) {
	t.Helper()
	platform, err := noc.NewHeterogeneousMesh(3, 3, noc.RouteXY, 100)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(platform, energy.Model{ESbit: 1, ELbit: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := tgff.SuiteParams(tgff.CategoryI, 0, platform)
	p.Seed = seed
	p.NumTasks = tasks
	g, err := tgff.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return g, acg
}

// TestProberMatchesBuilderProbe drives a random commit sequence and, at
// every step, compares the read-only Prober against the journal-based
// Builder.Probe on every ready task x every PE. This is the
// load-bearing equivalence of the whole read-only probe path.
func TestProberMatchesBuilderProbe(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g, acg := proberRig(t, seed, 60)
		b := NewBuilder(g, acg, "test")
		pr := b.NewProber()
		rng := rand.New(rand.NewSource(seed * 7))
		var ready []ctg.TaskID
		for b.Committed() < g.NumTasks() {
			ready = b.AppendReady(ready[:0])
			if len(ready) == 0 {
				t.Fatal("no ready tasks before completion")
			}
			for _, task := range ready {
				for k := 0; k < acg.NumPEs(); k++ {
					if !g.Task(task).RunnableOn(k) {
						continue
					}
					want, errW := b.Probe(task, k)
					got, errG := pr.Probe(task, k)
					if (errW != nil) != (errG != nil) {
						t.Fatalf("seed %d task %d PE %d: errors disagree: %v vs %v",
							seed, task, k, errW, errG)
					}
					if errW != nil {
						continue
					}
					if got.Start != want.Start || got.Finish != want.Finish ||
						got.DRT != want.DRT || got.CommEnergy != want.CommEnergy {
						t.Fatalf("seed %d task %d PE %d: prober %+v, builder probe Start=%d Finish=%d DRT=%d Comm=%v",
							seed, task, k, got, want.Start, want.Finish, want.DRT, want.CommEnergy)
					}
				}
			}
			// Commit a random ready task on a random capable PE.
			task := ready[rng.Intn(len(ready))]
			k := rng.Intn(acg.NumPEs())
			for !g.Task(task).RunnableOn(k) {
				k = rng.Intn(acg.NumPEs())
			}
			if _, err := b.Commit(task, k); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestProbeZeroAllocs guards the hot path: after warm-up a read-only
// probe must not allocate. Skipped under -race, whose instrumentation
// allocates.
func TestProbeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation guard is meaningless under -race")
	}
	g, acg := proberRig(t, 5, 60)
	b := NewBuilder(g, acg, "test")
	// Commit the first half so probes see busy tables.
	for b.Committed() < g.NumTasks()/2 {
		ready := b.ReadyTasks()
		if _, err := b.Commit(ready[0], int(ready[0])%acg.NumPEs()); err != nil {
			t.Fatal(err)
		}
	}
	pr := b.NewProber()
	b.warmRoutes()
	ready := b.ReadyTasks()
	task := ready[0]
	// Warm-up grows the lct scratch and the overlay's pending slices.
	for k := 0; k < acg.NumPEs(); k++ {
		if _, err := pr.Probe(task, k); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for k := 0; k < acg.NumPEs(); k++ {
			if _, err := pr.Probe(task, k); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("probe allocates: %v allocs per %d-PE sweep, want 0", avg, acg.NumPEs())
	}
}

// TestProbeZeroAllocsWithMetrics is the enabled-telemetry twin of
// TestProbeZeroAllocs: with a live registry attached the probe path
// still must not allocate — handles are pre-resolved at prober
// construction, so each update is one nil check plus one atomic add.
func TestProbeZeroAllocsWithMetrics(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation guard is meaningless under -race")
	}
	g, acg := proberRig(t, 5, 60)
	b := NewBuilder(g, acg, "test")
	b.SetMetrics(NewMetrics(telemetry.NewRegistry(), acg.NumPEs()))
	for b.Committed() < g.NumTasks()/2 {
		ready := b.ReadyTasks()
		if _, err := b.Commit(ready[0], int(ready[0])%acg.NumPEs()); err != nil {
			t.Fatal(err)
		}
	}
	pr := b.NewProber()
	b.warmRoutes()
	ready := b.ReadyTasks()
	task := ready[0]
	for k := 0; k < acg.NumPEs(); k++ {
		if _, err := pr.Probe(task, k); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for k := 0; k < acg.NumPEs(); k++ {
			if _, err := pr.Probe(task, k); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("metered probe allocates: %v allocs per %d-PE sweep, want 0", avg, acg.NumPEs())
	}
}

// TestProbePoolCountersConcurrent runs metered probes from all pool
// workers at once and checks the shared counters add up exactly; under
// -race this is the telemetry layer's concurrency proof on the real
// probe path.
func TestProbePoolCountersConcurrent(t *testing.T) {
	g, acg := proberRig(t, 21, 60)
	b := NewBuilder(g, acg, "test")
	reg := telemetry.NewRegistry()
	b.SetMetrics(NewMetrics(reg, acg.NumPEs()))
	for b.Committed() < g.NumTasks()/3 {
		ready := b.ReadyTasks()
		if _, err := b.Commit(ready[0], int(ready[0])%acg.NumPEs()); err != nil {
			t.Fatal(err)
		}
	}
	base := reg.Counter(MetricProbes).Value()
	pool := NewProbePool(b, 4)
	ready := b.ReadyTasks()
	task := ready[0]
	const n = 500
	pool.Run(n, func(pr *Prober, i int) {
		k := i % acg.NumPEs()
		for !g.Task(task).RunnableOn(k) {
			k = (k + 1) % acg.NumPEs()
		}
		if _, err := pr.Probe(task, k); err != nil {
			t.Error(err)
		}
	})
	if got := reg.Counter(MetricProbes).Value() - base; got != n {
		t.Errorf("%s grew by %d, want %d", MetricProbes, got, n)
	}
	// Every probe charged exactly one pair cell per incoming edge.
	snap := reg.Snapshot()
	var pairTotal int64
	for _, gs := range snap.Grids {
		if gs.Name == MetricProbePairs {
			pairTotal = gs.Total()
		}
	}
	if want := int64(n * len(g.In(task))); pairTotal != want {
		t.Errorf("%s total = %d, want %d (%d probes x %d in-edges)",
			MetricProbePairs, pairTotal, want, n, len(g.In(task)))
	}
}

// TestEarliestFinishPEZeroAllocs guards the pool's reduction scratch.
func TestEarliestFinishPEZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation guard is meaningless under -race")
	}
	g, acg := proberRig(t, 6, 40)
	b := NewBuilder(g, acg, "test")
	pool := NewProbePool(b, 1)
	ready := b.ReadyTasks()
	task := ready[0]
	if _, err := pool.EarliestFinishPE(task); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := pool.EarliestFinishPE(task); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("EarliestFinishPE allocates: %v allocs per call, want 0", avg)
	}
}

// TestConcurrentProbers hammers one builder with many probers at once;
// run under -race this proves the read-only path really is read-only.
func TestConcurrentProbers(t *testing.T) {
	g, acg := proberRig(t, 9, 60)
	b := NewBuilder(g, acg, "test")
	for b.Committed() < g.NumTasks()/2 {
		ready := b.ReadyTasks()
		if _, err := b.Commit(ready[0], int(ready[0])%acg.NumPEs()); err != nil {
			t.Fatal(err)
		}
	}
	b.warmRoutes()
	ready := b.ReadyTasks()
	want := make([]Placement, len(ready))
	for i, task := range ready {
		p, err := b.Probe(task, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr := b.NewProber()
			for rep := 0; rep < 20; rep++ {
				for i, task := range ready {
					got, err := pr.Probe(task, 0)
					if err != nil {
						t.Error(err)
						return
					}
					if got.Finish != want[i].Finish || got.Start != want[i].Start {
						t.Errorf("task %d: concurrent probe [%d,%d), sequential [%d,%d)",
							task, got.Start, got.Finish, want[i].Start, want[i].Finish)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestProbePoolRunCoverage checks Run visits every index exactly once
// at several worker counts.
func TestProbePoolRunCoverage(t *testing.T) {
	g, acg := proberRig(t, 11, 30)
	for _, workers := range []int{1, 2, 5} {
		b := NewBuilder(g, acg, "test")
		pool := NewProbePool(b, workers)
		if pool.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", pool.Workers(), workers)
		}
		const n = 97
		hits := make([]int32, n)
		pool.Run(n, func(pr *Prober, i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d evaluated %d times", workers, i, h)
			}
		}
	}
}

// TestEarliestFinishPEMatchesSequential compares the pool reduction
// against a direct sequential scan over Builder.Probe.
func TestEarliestFinishPEMatchesSequential(t *testing.T) {
	g, acg := proberRig(t, 13, 50)
	for _, workers := range []int{1, 4} {
		b := NewBuilder(g, acg, "test")
		pool := NewProbePool(b, workers)
		for b.Committed() < g.NumTasks() {
			ready := b.ReadyTasks()
			task := ready[0]
			// Sequential oracle: strict earliest finish, lowest PE wins ties.
			bestPE, bestFinish := -1, int64(0)
			for k := 0; k < acg.NumPEs(); k++ {
				if !g.Task(task).RunnableOn(k) {
					continue
				}
				p, err := b.Probe(task, k)
				if err != nil {
					t.Fatal(err)
				}
				if bestPE < 0 || p.Finish < bestFinish {
					bestPE, bestFinish = k, p.Finish
				}
			}
			got, err := pool.EarliestFinishPE(task)
			if err != nil {
				t.Fatal(err)
			}
			if got.PE != bestPE || got.Finish != bestFinish {
				t.Fatalf("workers=%d task %d: pool picked PE %d finish %d, oracle PE %d finish %d",
					workers, task, got.PE, got.Finish, bestPE, bestFinish)
			}
			if _, err := b.Commit(task, got.PE); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDiff covers the schedule differ on equal and perturbed schedules.
func TestDiff(t *testing.T) {
	g, acg := proberRig(t, 17, 30)
	build := func() *Schedule {
		b := NewBuilder(g, acg, "test")
		for b.Committed() < g.NumTasks() {
			ready := b.ReadyTasks()
			if _, err := b.Commit(ready[0], int(ready[0])%acg.NumPEs()); err != nil {
				t.Fatal(err)
			}
		}
		s, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, bsched := build(), build()
	if d := Diff(a, bsched); d != "" {
		t.Fatalf("identical builds differ: %s", d)
	}
	bsched.Tasks[3].Start++
	if d := Diff(a, bsched); d == "" {
		t.Fatal("perturbed task start not detected")
	}
	bsched.Tasks[3].Start--
	if len(bsched.Transactions) > 0 {
		bsched.Transactions[0].Finish++
		if d := Diff(a, bsched); d == "" {
			t.Fatal("perturbed transaction not detected")
		}
	}
}
