package sched

import (
	"nocsched/internal/ctg"
	"nocsched/internal/energy"
)

// Workspace bundles one reusable Builder with its ProbePool so that a
// driver scheduling many instances — a batch worker, a sweep harness, a
// Monte-Carlo campaign — pays the builder's table, route-cache and
// prober allocations once and then amortizes them across every
// subsequent instance on the same platform via Builder.Reset.
//
// A Workspace is single-goroutine state: one scheduling run at a time.
// Concurrency lives one level up (each batch worker owns one
// workspace) or one level down (the pool's probers).
//
// Reuse never changes results: a schedule produced through a prepared
// workspace is bit-identical (sched.Diff) to one produced by a fresh
// builder, which the batch determinism tests assert across worker
// counts and against fresh-builder references.
type Workspace struct {
	builder *Builder
	pool    *ProbePool
	workers int
	legacy  bool
	plan    *RoutePlan
}

// NewWorkspace returns an empty workspace whose pools will use the
// given worker count (<= 0 means GOMAXPROCS) and probe path (legacy
// routes probes through the journal-based reserve/rollback path).
func NewWorkspace(workers int, legacyProbe bool) *Workspace {
	return &Workspace{workers: workers, legacy: legacyProbe}
}

// SetRoutePlan supplies a shared, immutable route plan that Prepare
// attaches to every builder it constructs for the plan's ACG. Batch
// workers receive the plan from the engine's per-ACG cache, so all
// workers on one platform share a single precomputed route table
// instead of lazily filling one cache per builder.
func (w *Workspace) SetRoutePlan(p *RoutePlan) { w.plan = p }

// Builder returns the workspace's current builder (nil before the
// first Prepare).
func (w *Workspace) Builder() *Builder { return w.builder }

// Pool returns the workspace's current probe pool (nil before the
// first Prepare).
func (w *Workspace) Pool() *ProbePool { return w.pool }

// Prepare readies the workspace for one scheduling run of graph g on
// acg: on the same platform as the previous run it resets the existing
// builder in place (zero steady-state allocation beyond the fresh
// Schedule shell) and zeroes the pool's probe counters; on a platform
// change it builds a fresh builder and pool, attaching the workspace's
// route plan when one matches. The returned builder has no metrics
// attached and uses the exact contention model; callers set both after
// Prepare, per run.
func (w *Workspace) Prepare(g *ctg.Graph, acg *energy.ACG, algorithm string) (*Builder, *ProbePool, error) {
	if w.builder != nil && w.builder.ACG() == acg {
		w.builder.SetAlgorithm(algorithm)
		w.builder.SetMetrics(nil)
		w.builder.Reset(g, acg)
		w.pool.ResetProbes()
		return w.builder, w.pool, nil
	}
	b := NewBuilder(g, acg, algorithm)
	if w.plan != nil && w.plan.ACG() == acg {
		if err := b.SetRoutePlan(w.plan); err != nil {
			return nil, nil, err
		}
	}
	w.builder = b
	if w.legacy {
		w.pool = NewLegacyProbePool(b)
	} else {
		w.pool = NewProbePool(b, w.workers)
	}
	return w.builder, w.pool, nil
}
