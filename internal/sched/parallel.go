package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nocsched/internal/ctg"
)

// ProbePool evaluates batches of F(i,k) probes, optionally across a
// fixed set of worker goroutines. Each worker owns one read-only Prober,
// so the shared Builder tables are only read during a batch; commits
// happen between batches on the caller's goroutine.
//
// Determinism: Run assigns work items by index into caller-owned result
// storage, so reducing results in ascending index order on the caller's
// goroutine reproduces the sequential scheduler's tie-breaks exactly —
// schedules are bit-identical at any worker count. The differential
// tests in internal/eas assert this over TGFF and MSB workloads.
type ProbePool struct {
	b       *Builder
	probers []*Prober

	// seqFloor is the auto worker policy: batches carrying fewer than
	// this many probes run on the caller's goroutine even when the pool
	// has idle workers, because goroutine fan-out costs more than it
	// saves at that size (BENCH_sched.json: speedup_par tracks
	// speedup_seq on 100-task/4x4 instances). 0 disables the policy.
	// Purely a performance knob — the sequential and parallel paths are
	// bit-identical by construction.
	seqFloor int

	// Scratch for EarliestFinishPE, sized NumPEs on first use. efEval
	// is built once and reads efTask, so the per-call closure does not
	// escape to the heap (the zero-alloc guard test covers this).
	results []ProbeResult
	errs    []error
	efTask  ctg.TaskID
	efEval  func(pr *Prober, k int)
}

// DefaultSequentialFloor is the probe-count threshold of the auto
// worker policy: Run batches below it stay on the caller's goroutine.
// At ~150ns per warm probe, a batch this small finishes in well under
// the cost of waking the worker set.
const DefaultSequentialFloor = 128

// NewProbePool returns a pool with the given number of workers; workers
// <= 0 selects runtime.GOMAXPROCS(0). The builder's route cache is
// pre-warmed so concurrent probers never race on a lazy fill (a no-op
// when the builder carries a shared RoutePlan). The pool starts with
// the DefaultSequentialFloor auto policy; SetSequentialFloor tunes it.
func NewProbePool(b *Builder, workers int) *ProbePool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b.warmRoutes()
	p := &ProbePool{b: b, probers: make([]*Prober, workers), seqFloor: DefaultSequentialFloor}
	for i := range p.probers {
		p.probers[i] = b.NewProber()
	}
	return p
}

// SetSequentialFloor adjusts the auto worker policy: batches carrying
// fewer than n probes run sequentially on the caller's goroutine. 0
// restores unconditional fan-out (the pre-policy behavior). Schedules
// are bit-identical either way; only wall-clock changes.
func (p *ProbePool) SetSequentialFloor(n int) { p.seqFloor = n }

// NewLegacyProbePool returns a single-worker pool whose probes go
// through the journal-based Builder.Probe reserve/rollback path. It is
// the performance-harness baseline; it cannot be parallel because the
// journal mutates shared tables.
func NewLegacyProbePool(b *Builder) *ProbePool {
	return &ProbePool{b: b, probers: []*Prober{b.NewLegacyProber()}}
}

// Workers returns the pool's worker count.
func (p *ProbePool) Workers() int { return len(p.probers) }

// Probes returns the total F(i,k) probes evaluated by all workers.
func (p *ProbePool) Probes() int64 {
	var n int64
	for _, pr := range p.probers {
		n += pr.Probes()
	}
	return n
}

// ResetProbes zeroes every worker's probe counter. Reuse drivers
// (Workspace.Prepare) call it between instances so Schedule.Probes
// keeps counting only the run that produced the schedule.
func (p *ProbePool) ResetProbes() {
	for _, pr := range p.probers {
		pr.probes = 0
	}
}

// Run evaluates eval(prober, i) for every i in [0, n), fanning out
// across the pool's workers. eval must write its result into storage
// indexed by i (never shared accumulators) so that the caller can
// reduce deterministically afterwards. eval must not touch the Builder
// except through the prober. Each item is assumed to cost one probe for
// the auto worker policy; callers whose items evaluate several probes
// apiece should use RunWeighted.
func (p *ProbePool) Run(n int, eval func(pr *Prober, i int)) {
	p.RunWeighted(n, 1, eval)
}

// RunWeighted is Run for items that each evaluate probesPerItem F(i,k)
// probes: the auto worker policy compares n*probesPerItem — the batch's
// total probe count — against the sequential floor, so a 10-task ready
// list probing 16 PEs per task fans out while a 16-PE single-task scan
// stays sequential.
func (p *ProbePool) RunWeighted(n, probesPerItem int, eval func(pr *Prober, i int)) {
	if len(p.probers) == 1 || n < 2 || n*probesPerItem < p.seqFloor {
		for i := 0; i < n; i++ {
			eval(p.probers[0], i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func(pr *Prober) {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			eval(pr, i)
		}
	}
	for w := 1; w < len(p.probers); w++ {
		wg.Add(1)
		go func(pr *Prober) {
			defer wg.Done()
			work(pr)
		}(p.probers[w])
	}
	work(p.probers[0])
	wg.Wait()
}

// EarliestFinishPE probes task t on every PE and returns the placement
// with the strictly earliest finish, ties broken toward the lowest PE
// index — the EDF/DLS inner loop. PEs that cannot run the task are
// skipped; if none can, an error is returned. With multiple workers the
// per-PE probes run concurrently; the reduction is sequential in PE
// order, so the answer matches the sequential scan bit for bit.
func (p *ProbePool) EarliestFinishPE(t ctg.TaskID) (ProbeResult, error) {
	npe := p.b.acg.NumPEs()
	if len(p.results) < npe {
		p.results = make([]ProbeResult, npe)
		p.errs = make([]error, npe)
	}
	if p.efEval == nil {
		p.efEval = func(pr *Prober, k int) {
			task := p.efTask
			if !p.b.g.Task(task).RunnableOn(k) {
				p.results[k] = ProbeResult{PE: -1}
				return
			}
			p.results[k], p.errs[k] = pr.Probe(task, k)
		}
	}
	p.efTask = t
	p.Run(npe, p.efEval)
	results, errs := p.results, p.errs
	best := ProbeResult{PE: -1}
	for k := 0; k < npe; k++ {
		if errs[k] != nil {
			return ProbeResult{}, errs[k]
		}
		if results[k].PE < 0 {
			continue
		}
		if best.PE < 0 || results[k].Finish < best.Finish {
			best = results[k]
		}
	}
	if best.PE < 0 {
		return ProbeResult{}, fmt.Errorf("sched: task %d runnable on no PE", t)
	}
	return best, nil
}
