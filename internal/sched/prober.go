package sched

import (
	"fmt"

	"nocsched/internal/ctg"
	"nocsched/internal/schedtable"
)

// ProbeResult is the outcome of one F(i,k) feasibility probe: the
// timing and incoming-communication energy the task would get on the
// PE, without the per-transaction detail a Commit records. It is the
// data the paper's Step 2 selection (Eq. 4, footnote 2) consumes.
type ProbeResult struct {
	Task ctg.TaskID
	PE   int
	// Start/Finish bound the task's execution slot.
	Start, Finish int64
	// DRT is the data-ready time: the latest arrival of the incoming
	// transactions under this placement.
	DRT int64
	// CommEnergy is the energy of the incoming transactions.
	CommEnergy float64
}

// Prober answers F(i,k) probes against a Builder's committed state
// without mutating it. Where Builder.Probe reserves slots on the shared
// PE/link tables and rolls them back through the journal, a Prober
// tracks the probe's own tentative reservations in a private overlay
// (transactions of one task can contend with each other on shared
// links) and only reads the shared tables. Results are bit-identical to
// Builder.Probe.
//
// Each Prober owns its scratch, so distinct Probers may probe
// concurrently against one Builder — as long as no Commit runs in
// parallel with them. After warm-up a probe performs no heap
// allocations (guarded by TestProbeZeroAllocs).
//
// A legacy Prober (NewLegacyProber) instead delegates to the
// journal-based Builder.Probe; it exists as the perf-harness baseline
// and is sequential by construction.
type Prober struct {
	b       *Builder
	overlay *schedtable.Overlay
	lct     []ctg.EdgeID
	legacy  bool
	probes  int64
}

// NewProber returns a read-only prober for the builder.
//
// Telemetry handles are read from the builder at probe time (not cached
// here), so SetMetrics calls made after the prober — or a pool reusing
// it across Builder.Reset cycles — was constructed still take effect.
// Every handle is nil-safe, so disabled telemetry costs two nil checks
// per probe; the zero-alloc guards cover both states.
func (b *Builder) NewProber() *Prober {
	return &Prober{
		b:       b,
		overlay: schedtable.NewOverlay(len(b.linkTables)),
	}
}

// NewLegacyProber returns a prober that routes every probe through the
// journal-based Builder.Probe reserve/rollback path.
func (b *Builder) NewLegacyProber() *Prober {
	return &Prober{b: b, legacy: true}
}

// Probes returns the number of probes this prober has evaluated.
func (p *Prober) Probes() int64 { return p.probes }

// Probe computes F(i,k): the placement task t would get on PE k given
// the builder's committed tables. The builder is not mutated (legacy
// probers mutate and restore it, like Builder.Probe).
func (p *Prober) Probe(t ctg.TaskID, k int) (ProbeResult, error) {
	p.probes++
	m := p.b.metrics
	m.probes().Inc()
	if p.legacy {
		pl, err := p.b.Probe(t, k)
		m.rollbacks().Inc() // Builder.Probe always rolls the journal back
		if err != nil {
			return ProbeResult{}, err
		}
		if pairs := m.probePairs(); pairs != nil {
			for _, eid := range p.b.g.In(t) {
				pairs.Add(p.b.schedule.Tasks[p.b.g.Edge(eid).Src].PE, k, 1)
			}
		}
		return ProbeResult{Task: pl.Task, PE: pl.PE, Start: pl.Start,
			Finish: pl.Finish, DRT: pl.DRT, CommEnergy: pl.CommEnergy}, nil
	}
	return p.probeReadOnly(t, k)
}

// lctLess orders incoming edges by sender finish time, ties on edge ID
// — the Fig. 3 LCT order place() uses.
func lctLess(b *Builder, a, c ctg.EdgeID) bool {
	fa := b.schedule.Tasks[b.g.Edge(a).Src].Finish
	fc := b.schedule.Tasks[b.g.Edge(c).Src].Finish
	if fa != fc {
		return fa < fc
	}
	return a < c
}

func (p *Prober) probeReadOnly(t ctg.TaskID, k int) (ProbeResult, error) {
	b := p.b
	task := b.g.Task(t)
	if !task.RunnableOn(k) {
		return ProbeResult{}, fmt.Errorf("sched: task %d not runnable on PE %d", t, k)
	}
	// LCT: incoming transactions in ascending sender-finish order.
	// Insertion sort — the in-degree is tiny and sort.Slice allocates.
	p.lct = append(p.lct[:0], b.g.In(t)...)
	lct := p.lct
	for i := 1; i < len(lct); i++ {
		for j := i; j > 0 && lctLess(b, lct[j], lct[j-1]); j-- {
			lct[j], lct[j-1] = lct[j-1], lct[j]
		}
	}

	res := ProbeResult{Task: t, PE: k}
	pairs := b.metrics.probePairs()
	p.overlay.Reset()
	for _, eid := range lct {
		e := b.g.Edge(eid)
		src := b.schedule.Tasks[e.Src]
		if !b.placed[e.Src] {
			return ProbeResult{}, fmt.Errorf("sched: task %d probed before predecessor %d committed", t, e.Src)
		}
		dur := b.acg.TransferTime(e.Volume, src.PE, k)
		pairs.Add(src.PE, k, 1)
		var finish int64
		switch {
		case dur == 0:
			// Intra-tile delivery or control dependency: arrives the
			// moment the sender finishes, occupying no network.
			finish = src.Finish
		case b.contention:
			tabs, ids := b.routeTables(src.PE, k)
			start := schedtable.FindEarliestAllOverlay(tabs, ids, p.overlay, src.Finish, dur)
			for _, id := range ids {
				p.overlay.Add(id, start, dur)
			}
			finish = start + dur
			res.CommEnergy += b.acg.CommEnergy(e.Volume, src.PE, k)
		default:
			// Naive model: fixed delay, no link occupancy.
			finish = src.Finish + dur
			res.CommEnergy += b.acg.CommEnergy(e.Volume, src.PE, k)
		}
		if finish > res.DRT {
			res.DRT = finish
		}
	}
	exec := task.ExecTime[k]
	start := b.peTables[k].FindEarliest(res.DRT, exec)
	res.Start, res.Finish = start, start+exec
	return res, nil
}
