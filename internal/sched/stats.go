package sched

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"nocsched/internal/noc"
)

// PEStats describes one PE's load under a schedule.
type PEStats struct {
	PE    int
	Class string
	// Tasks assigned to the PE.
	Tasks int
	// BusyTime is the sum of execution times on the PE.
	BusyTime int64
	// Utilization is BusyTime / makespan (0 when the makespan is 0).
	Utilization float64
	// Energy is the computation energy spent on the PE.
	Energy float64
}

// LinkStats describes one directed link's traffic under a schedule.
type LinkStats struct {
	Link noc.LinkID
	From noc.TileID
	To   noc.TileID
	// Transactions crossing the link.
	Transactions int
	// BusyTime is the total occupied time on the link.
	BusyTime int64
	// Utilization is BusyTime / makespan.
	Utilization float64
	// Volume is the total bits carried.
	Volume int64
}

// Utilization computes per-PE and per-link load statistics — the view a
// designer uses to see where EAS parked the work and which links carry
// the traffic.
func (s *Schedule) Utilization() ([]PEStats, []LinkStats) {
	makespan := s.Makespan()
	platform := s.ACG.Platform()

	pes := make([]PEStats, s.ACG.NumPEs())
	for k := range pes {
		pes[k] = PEStats{PE: k, Class: platform.Classes[k].Name}
	}
	for i := range s.Tasks {
		p := &s.Tasks[i]
		st := &pes[p.PE]
		st.Tasks++
		st.BusyTime += p.Finish - p.Start
		st.Energy += s.Graph.Task(p.Task).Energy[p.PE]
	}

	links := make([]LinkStats, platform.Topo.NumLinks())
	for l := range links {
		link := platform.Topo.Link(noc.LinkID(l))
		links[l] = LinkStats{Link: noc.LinkID(l), From: link.From, To: link.To}
	}
	for i := range s.Transactions {
		tr := &s.Transactions[i]
		dur := tr.Finish - tr.Start
		if dur == 0 {
			continue
		}
		vol := s.Graph.Edge(tr.Edge).Volume
		for _, l := range tr.Route {
			links[l].Transactions++
			links[l].BusyTime += dur
			links[l].Volume += vol
		}
	}
	if makespan > 0 {
		for k := range pes {
			pes[k].Utilization = float64(pes[k].BusyTime) / float64(makespan)
		}
		for l := range links {
			links[l].Utilization = float64(links[l].BusyTime) / float64(makespan)
		}
	}
	return pes, links
}

// RenderUtilization prints the utilization report: every PE, then the
// busiest links (topN; 0 means all).
func (s *Schedule) RenderUtilization(w io.Writer, topN int) {
	pes, links := s.Utilization()
	fmt.Fprintf(w, "utilization (%s, makespan %d)\n", s.Algorithm, s.Makespan())
	fmt.Fprintf(w, "%-4s %-8s %6s %10s %7s %12s\n", "PE", "class", "tasks", "busy", "util", "energy (nJ)")
	for _, p := range pes {
		fmt.Fprintf(w, "%-4d %-8s %6d %10d %6.1f%% %12.1f\n",
			p.PE, p.Class, p.Tasks, p.BusyTime, 100*p.Utilization, p.Energy)
	}
	sort.Slice(links, func(a, b int) bool {
		if links[a].BusyTime != links[b].BusyTime {
			return links[a].BusyTime > links[b].BusyTime
		}
		return links[a].Link < links[b].Link
	})
	if topN <= 0 || topN > len(links) {
		topN = len(links)
	}
	fmt.Fprintf(w, "%-6s %-10s %6s %10s %7s %12s\n", "link", "route", "trans", "busy", "util", "volume")
	for _, l := range links[:topN] {
		if l.Transactions == 0 {
			continue
		}
		fmt.Fprintf(w, "%-6d %3d->%-5d %6d %10d %6.1f%% %12d\n",
			l.Link, l.From, l.To, l.Transactions, l.BusyTime, 100*l.Utilization, l.Volume)
	}
}

// CriticalTasks returns the schedule's "critical" set in the paper's
// Step 3 sense: tasks that miss their own deadline plus all their
// ancestors, in start-time order.
func (s *Schedule) CriticalTasks() []string {
	var names []string
	seen := make(map[string]bool)
	for _, id := range s.DeadlineMisses() {
		t := s.Graph.Task(id)
		if !seen[t.Name] {
			seen[t.Name] = true
			names = append(names, t.Name)
		}
		for _, a := range s.Graph.Ancestors(id) {
			n := s.Graph.Task(a).Name
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// Summary renders a one-paragraph textual summary for CLI output.
func (s *Schedule) Summary() string {
	b := s.Breakdown()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %.1f nJ (%.1f comp + %.1f comm), makespan %d, %.2f avg hops/pkt",
		s.Algorithm, b.Total, b.Computation, b.Communication, b.Makespan, b.AvgHops)
	if b.Misses > 0 {
		fmt.Fprintf(&sb, ", %d DEADLINE MISSES", b.Misses)
	} else {
		sb.WriteString(", all deadlines met")
	}
	return sb.String()
}
