package sched

import (
	"strings"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
)

// testRig builds a 2x2 platform ACG and a three-task chain a->b->c with
// data volumes, for hand-constructed schedule tests.
func testRig(t *testing.T) (*ctg.Graph, *energy.ACG, [3]ctg.TaskID) {
	t.Helper()
	platform, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 100)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(platform, energy.Model{ESbit: 1, ELbit: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := ctg.New("chain")
	var ids [3]ctg.TaskID
	for i, name := range []string{"a", "b", "c"} {
		deadline := ctg.NoDeadline
		if name == "c" {
			deadline = 1000
		}
		id, err := g.AddTask(name, []int64{10, 10, 10, 10}, []float64{5, 4, 3, 2}, deadline)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if _, err := g.AddEdge(ids[0], ids[1], 200); err != nil { // 2 time units
		t.Fatal(err)
	}
	if _, err := g.AddEdge(ids[1], ids[2], 0); err != nil { // control edge
		t.Fatal(err)
	}
	return g, acg, ids
}

// handSchedule builds a valid schedule for the testRig chain:
// a on PE0 [0,10), transaction on link PE0->PE1 [10,12), b on PE1
// [12,22), c on PE1 [22,32).
func handSchedule(t *testing.T, g *ctg.Graph, acg *energy.ACG, ids [3]ctg.TaskID) *Schedule {
	t.Helper()
	s := New(g, acg, "hand")
	s.Tasks[ids[0]] = TaskPlacement{Task: ids[0], PE: 0, Start: 0, Finish: 10}
	s.Tasks[ids[1]] = TaskPlacement{Task: ids[1], PE: 1, Start: 12, Finish: 22}
	s.Tasks[ids[2]] = TaskPlacement{Task: ids[2], PE: 1, Start: 22, Finish: 32}
	s.Transactions[0] = TransactionPlacement{
		Edge: 0, SrcPE: 0, DstPE: 1, Start: 10, Finish: 12,
		Route: acg.Route(0, 1),
	}
	s.Transactions[1] = TransactionPlacement{
		Edge: 1, SrcPE: 1, DstPE: 1, Start: 22, Finish: 22,
	}
	return s
}

func TestValidateAcceptsHandSchedule(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if !s.Feasible() {
		t.Error("schedule reported infeasible")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g, acg, ids := testRig(t)

	mutate := map[string]func(*Schedule){
		"wrong finish": func(s *Schedule) { s.Tasks[ids[0]].Finish = 11 },
		"negative start": func(s *Schedule) {
			s.Tasks[ids[0]].Start = -1
			s.Tasks[ids[0]].Finish = 9
		},
		"pe out of range": func(s *Schedule) { s.Tasks[ids[0]].PE = 77 },
		"task overlap on same PE": func(s *Schedule) {
			s.Tasks[ids[2]].Start = 15
			s.Tasks[ids[2]].Finish = 25
		},
		"transaction before sender finishes": func(s *Schedule) {
			s.Transactions[0].Start = 9
			s.Transactions[0].Finish = 11
		},
		"transaction wrong duration": func(s *Schedule) { s.Transactions[0].Finish = 15 },
		"transaction after receiver start": func(s *Schedule) {
			s.Transactions[0].Start = 11
			s.Transactions[0].Finish = 13
		},
		"transaction PE mismatch": func(s *Schedule) { s.Transactions[0].SrcPE = 2 },
		"zero-time transaction with route": func(s *Schedule) {
			s.Transactions[1].Route = acg.Route(0, 1)
		},
		"route deviation": func(s *Schedule) {
			s.Transactions[0].Route = acg.Route(1, 0) // wrong direction's route
		},
	}
	for name, f := range mutate {
		s := handSchedule(t, g, acg, ids)
		f(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: violation not detected", name)
		}
	}
}

func TestValidateCatchesLinkContention(t *testing.T) {
	// Two tasks on PE0 both sending to PE1 with overlapping windows.
	platform, _ := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 100)
	acg, _ := energy.BuildACG(platform, energy.Model{ESbit: 1, ELbit: 1})
	g := ctg.New("contend")
	a, _ := g.AddTask("a", []int64{10, 10, 10, 10}, []float64{1, 1, 1, 1}, ctg.NoDeadline)
	b, _ := g.AddTask("b", []int64{10, 10, 10, 10}, []float64{1, 1, 1, 1}, ctg.NoDeadline)
	c, _ := g.AddTask("c", []int64{10, 10, 10, 10}, []float64{1, 1, 1, 1}, ctg.NoDeadline)
	g.AddEdge(a, c, 500) // 5 time units
	g.AddEdge(b, c, 500)

	s := New(g, acg, "contend")
	s.Tasks[a] = TaskPlacement{Task: a, PE: 0, Start: 0, Finish: 10}
	s.Tasks[b] = TaskPlacement{Task: b, PE: 2, Start: 0, Finish: 10}
	s.Tasks[c] = TaskPlacement{Task: c, PE: 1, Start: 20, Finish: 30}
	// Both routes end on the link into PE1; overlapping [10,15).
	s.Transactions[0] = TransactionPlacement{Edge: 0, SrcPE: 0, DstPE: 1, Start: 10, Finish: 15, Route: acg.Route(0, 1)}
	s.Transactions[1] = TransactionPlacement{Edge: 1, SrcPE: 2, DstPE: 1, Start: 10, Finish: 15, Route: acg.Route(2, 1)}
	err := s.Validate()
	if noc.RouteIntersects(acg.Route(0, 1), acg.Route(2, 1)) {
		if err == nil {
			t.Fatal("overlapping transactions on a shared link not detected")
		}
	} else {
		// Disjoint routes: both can fly simultaneously (Definition 3).
		if err != nil {
			t.Fatalf("compatible transactions rejected: %v", err)
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	// Computation: a on PE0 (5) + b on PE1 (4) + c on PE1 (4).
	if got := s.ComputationEnergy(); got != 13 {
		t.Errorf("ComputationEnergy = %v, want 13", got)
	}
	// Communication: edge0 200 bits over 2 hops (ESbit=ELbit=1:
	// 2*1+1*1=3 per bit) = 600; edge1 intra-tile = 0.
	if got := s.CommunicationEnergy(); got != 600 {
		t.Errorf("CommunicationEnergy = %v, want 600", got)
	}
	if got := s.TotalEnergy(); got != 613 {
		t.Errorf("TotalEnergy = %v", got)
	}
	b := s.Breakdown()
	if b.Total != 613 || b.Makespan != 32 || b.Misses != 0 {
		t.Errorf("Breakdown = %+v", b)
	}
}

func TestDeadlineAnalysis(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	if m := s.DeadlineMisses(); len(m) != 0 {
		t.Errorf("unexpected misses %v", m)
	}
	// Push c past its deadline of 1000.
	s.Tasks[ids[2]].Start = 995
	s.Tasks[ids[2]].Finish = 1005
	if m := s.DeadlineMisses(); len(m) != 1 || m[0] != ids[2] {
		t.Errorf("misses = %v", m)
	}
	if l := s.MaxLateness(); l != 5 {
		t.Errorf("MaxLateness = %d, want 5", l)
	}
	if s.Feasible() {
		t.Error("infeasible schedule reported feasible")
	}
}

func TestAvgHopsPerPacket(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	// One data packet (edge0, PE0->PE1, 2 hops); edge1 is a control
	// edge and must not count.
	if got := s.AvgHopsPerPacket(); got != 2 {
		t.Errorf("AvgHopsPerPacket = %v, want 2", got)
	}
}

func TestPEOrder(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	order := s.PEOrder()
	if len(order[0]) != 1 || order[0][0] != ids[0] {
		t.Errorf("PE0 order = %v", order[0])
	}
	if len(order[1]) != 2 || order[1][0] != ids[1] || order[1][1] != ids[2] {
		t.Errorf("PE1 order = %v", order[1])
	}
}

func TestGanttRendering(t *testing.T) {
	g, acg, ids := testRig(t)
	s := handSchedule(t, g, acg, ids)
	out := s.Gantt()
	for _, want := range []string{"hand", "PE  0", "idle", "a", "b", "c", "d=1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt output missing %q:\n%s", want, out)
		}
	}
}
