//go:build race

package sched

// raceEnabled lets tests skip allocation guards under -race, whose
// instrumentation allocates on paths that are otherwise allocation-free.
const raceEnabled = true
