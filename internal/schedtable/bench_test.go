package schedtable

import (
	"math/rand"
	"testing"
)

// benchTables builds a dense path-merge instance: 4 link tables with
// 512 busy slots each, the shape of a 500-task run's link tables.
func benchTables() ([]*Table, []int64) {
	rng := rand.New(rand.NewSource(11))
	tables := randomTables(rng, 4, 512)
	froms := make([]int64, 256)
	for i := range froms {
		froms[i] = int64(rng.Intn(6000))
	}
	return tables, froms
}

// BenchmarkFindEarliestAll measures the resume-cursor path merge. The
// satellite claim — cursors beat re-searching from zero every round —
// is the delta against BenchmarkFindEarliestAllNaive below.
func BenchmarkFindEarliestAll(b *testing.B) {
	tables, froms := benchTables()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindEarliestAll(tables, froms[i%len(froms)], 7)
	}
}

// BenchmarkFindEarliestAllNaive measures the historical implementation
// (fresh binary search per table per round) on the same instance.
func BenchmarkFindEarliestAllNaive(b *testing.B) {
	tables, froms := benchTables()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findEarliestAllNaive(tables, froms[i%len(froms)], 7)
	}
}

// BenchmarkFindEarliestAllOverlay measures the read-only overlay query
// with a probe-sized pending set layered on the same tables.
func BenchmarkFindEarliestAllOverlay(b *testing.B) {
	tables, froms := benchTables()
	ids := []int{0, 1, 2, 3}
	o := NewOverlay(len(tables))
	for _, id := range ids {
		o.Add(id, 100, 9)
		o.Add(id, 400, 9)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindEarliestAllOverlay(tables, ids, o, froms[i%len(froms)], 7)
	}
}
