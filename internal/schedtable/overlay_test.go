package schedtable

import (
	"math/rand"
	"testing"
)

// findEarliestAllNaive is the pre-cursor reference implementation: every
// round re-runs a fresh binary search per table. Kept as the oracle for
// the resume-cursor rewrite and as the baseline of the micro-benchmark.
func findEarliestAllNaive(tables []*Table, from, dur int64) int64 {
	if dur <= 0 || len(tables) == 0 {
		return from
	}
	s := from
	for {
		moved := false
		for _, t := range tables {
			if iv, clash := t.Conflict(s, dur); clash {
				s = iv.End
				moved = true
			}
		}
		if !moved {
			return s
		}
	}
}

// randomTables builds nt tables with random non-overlapping busy slots.
func randomTables(rng *rand.Rand, nt, slots int) []*Table {
	tables := make([]*Table, nt)
	for i := range tables {
		tables[i] = &Table{}
		at := int64(rng.Intn(5))
		for j := 0; j < slots; j++ {
			dur := int64(1 + rng.Intn(9))
			if err := tables[i].Reserve(at, dur); err != nil {
				panic(err)
			}
			at += dur + int64(rng.Intn(12))
		}
	}
	return tables
}

// TestFindEarliestAllMatchesNaive cross-checks the resume-cursor merge
// against the re-walking reference on random dense tables.
func TestFindEarliestAllMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		tables := randomTables(rng, 1+rng.Intn(5), 1+rng.Intn(40))
		for q := 0; q < 20; q++ {
			from := int64(rng.Intn(300))
			dur := int64(1 + rng.Intn(15))
			want := findEarliestAllNaive(tables, from, dur)
			if got := FindEarliestAll(tables, from, dur); got != want {
				t.Fatalf("trial %d: FindEarliestAll(from=%d, dur=%d) = %d, want %d",
					trial, from, dur, got, want)
			}
		}
	}
}

// TestFindEarliestAllManyTables exercises the heap-fallback path for
// paths longer than the stack cursor buffer.
func TestFindEarliestAllManyTables(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tables := randomTables(rng, mergeStackTables+5, 20)
	for q := 0; q < 50; q++ {
		from := int64(rng.Intn(200))
		dur := int64(1 + rng.Intn(10))
		want := findEarliestAllNaive(tables, from, dur)
		if got := FindEarliestAll(tables, from, dur); got != want {
			t.Fatalf("FindEarliestAll(from=%d, dur=%d) = %d, want %d", from, dur, got, want)
		}
	}
}

// TestOverlayBasics covers Reset/Add/Len bookkeeping.
func TestOverlayBasics(t *testing.T) {
	o := NewOverlay(4)
	if o.Len() != 0 {
		t.Fatalf("fresh overlay Len = %d, want 0", o.Len())
	}
	o.Add(1, 10, 5)
	o.Add(1, 20, 5)
	o.Add(3, 0, 2)
	o.Add(2, 0, 0) // zero duration: no-op
	if o.Len() != 3 {
		t.Fatalf("Len = %d, want 3", o.Len())
	}
	o.Reset()
	if o.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", o.Len())
	}
	// Reuse after reset must behave like a fresh overlay.
	o.Add(1, 0, 4)
	if o.Len() != 1 {
		t.Fatalf("Len after reuse = %d, want 1", o.Len())
	}
}

// TestFindEarliestAllOverlayEquivalence is the load-bearing property of
// the read-only probe path: querying through an overlay must give
// exactly the answer that reserving the pending slots into the tables
// and querying would give.
func TestFindEarliestAllOverlayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 300; trial++ {
		nt := 1 + rng.Intn(4)
		tables := randomTables(rng, nt, 1+rng.Intn(25))
		ids := make([]int, nt)
		for i := range ids {
			ids[i] = i
		}
		o := NewOverlay(nt)

		// Build a random pending set, mirrored into reserved copies.
		reserved := make([]*Table, nt)
		for i := range reserved {
			cp := &Table{}
			for _, iv := range tables[i].Busy() {
				if err := cp.Reserve(iv.Start, iv.Len()); err != nil {
					t.Fatal(err)
				}
			}
			reserved[i] = cp
		}
		for p := 0; p < 3; p++ {
			dur := int64(1 + rng.Intn(8))
			from := int64(rng.Intn(150))
			start := FindEarliestAllOverlay(tables, ids, o, from, dur)
			for i := range tables {
				o.Add(ids[i], start, dur)
				if err := reserved[i].Reserve(start, dur); err != nil {
					t.Fatalf("trial %d: overlay found occupied slot [%d,%d) on table %d: %v",
						trial, start, start+dur, i, err)
				}
			}
		}

		for q := 0; q < 20; q++ {
			from := int64(rng.Intn(250))
			dur := int64(1 + rng.Intn(12))
			want := FindEarliestAll(reserved, from, dur)
			if got := FindEarliestAllOverlay(tables, ids, o, from, dur); got != want {
				t.Fatalf("trial %d: overlay query (from=%d, dur=%d) = %d, reserved tables say %d",
					trial, from, dur, got, want)
			}
		}
	}
}

// TestFindEarliestAllOverlayNil checks the nil-overlay degradation.
func TestFindEarliestAllOverlayNil(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tables := randomTables(rng, 3, 15)
	ids := []int{0, 1, 2}
	for q := 0; q < 30; q++ {
		from := int64(rng.Intn(200))
		dur := int64(1 + rng.Intn(10))
		if got, want := FindEarliestAllOverlay(tables, ids, nil, from, dur), FindEarliestAll(tables, from, dur); got != want {
			t.Fatalf("nil overlay (from=%d, dur=%d): got %d, want %d", from, dur, got, want)
		}
	}
}
