package schedtable

import "testing"

// TestJournalRollbackPanicsOnExternalMutation: the journal's rollback
// contract requires that nobody mutates tables behind its back; doing
// so is a programming error that must fail loudly, not corrupt
// schedules silently.
func TestJournalRollbackPanicsOnExternalMutation(t *testing.T) {
	var tb Table
	var j Journal
	if err := j.Reserve(&tb, 10, 5); err != nil {
		t.Fatal(err)
	}
	// Sabotage: release the journaled slot directly.
	if err := tb.Release(10, 5); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("rollback after external mutation did not panic")
		}
	}()
	j.RollbackTo(0)
}

// TestReserveAllRollbackPanicImpossible: ReserveAll's internal rollback
// releases exactly what it just inserted, so it must never panic even
// under adversarial pre-existing reservations.
func TestReserveAllRollbackPanicImpossible(t *testing.T) {
	var a, b, c Table
	mustReserve(t, &c, 3, 4) // forces failure at the third table
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("ReserveAll panicked: %v", r)
		}
	}()
	if err := ReserveAll([]*Table{&a, &b, &c}, 0, 8); err == nil {
		t.Fatal("expected conflict")
	}
	if a.Len() != 0 || b.Len() != 0 || c.Len() != 1 {
		t.Error("rollback left residue")
	}
}
