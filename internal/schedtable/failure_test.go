package schedtable

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestJournalRollbackPanicsOnExternalMutation: the journal's rollback
// contract requires that nobody mutates tables behind its back; doing
// so is a programming error that must fail loudly, not corrupt
// schedules silently.
func TestJournalRollbackPanicsOnExternalMutation(t *testing.T) {
	var tb Table
	var j Journal
	if err := j.Reserve(&tb, 10, 5); err != nil {
		t.Fatal(err)
	}
	// Sabotage: release the journaled slot directly.
	if err := tb.Release(10, 5); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("rollback after external mutation did not panic")
		}
	}()
	j.RollbackTo(0)
}

// TestReserveAllRollbackPanicImpossible: ReserveAll's internal rollback
// releases exactly what it just inserted, so it must never panic even
// under adversarial pre-existing reservations.
func TestReserveAllRollbackPanicImpossible(t *testing.T) {
	var a, b, c Table
	mustReserve(t, &c, 3, 4) // forces failure at the third table
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("ReserveAll panicked: %v", r)
		}
	}()
	if err := ReserveAll([]*Table{&a, &b, &c}, 0, 8); err == nil {
		t.Fatal("expected conflict")
	}
	if a.Len() != 0 || b.Len() != 0 || c.Len() != 1 {
		t.Error("rollback left residue")
	}
}

// TestReserveAllAliasedTables: the same table appearing twice in the
// slice makes the second Reserve fail; the rollback of the first
// insertion must succeed and leave the table empty.
func TestReserveAllAliasedTables(t *testing.T) {
	var tb, other Table
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("ReserveAll panicked on aliased tables: %v", r)
		}
	}()
	if err := ReserveAll([]*Table{&tb, &other, &tb}, 0, 5); err == nil {
		t.Fatal("aliased reservation succeeded")
	}
	if tb.Len() != 0 || other.Len() != 0 {
		t.Error("rollback left residue in aliased tables")
	}
}

// TestRollbackPanicsUnreachableUnderWellFormedOps drives a randomized
// sequence of well-formed journal operations — reserve, atomic
// multi-table reserve (with aliasing), checkpoint, rollback — and
// asserts the rollback failure paths are never reached and every
// rollback restores the tables to their checkpointed contents exactly.
func TestRollbackPanicsUnreachableUnderWellFormedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 200; trial++ {
		tables := make([]*Table, 1+rng.Intn(4))
		for i := range tables {
			tables[i] = new(Table)
		}
		var j Journal
		snapshot := func() [][]Interval {
			out := make([][]Interval, len(tables))
			for i, tb := range tables {
				out[i] = append([]Interval(nil), tb.Busy()...)
			}
			return out
		}
		type checkpoint struct {
			mark int
			want [][]Interval
		}
		var marks []checkpoint
		for op := 0; op < 50; op++ {
			switch rng.Intn(4) {
			case 0: // single-table reserve (may legitimately conflict)
				tb := tables[rng.Intn(len(tables))]
				j.Reserve(tb, int64(rng.Intn(60)), int64(rng.Intn(10)))
			case 1: // multi-table atomic reserve, duplicates allowed
				k := 1 + rng.Intn(len(tables)+1)
				pick := make([]*Table, k)
				for i := range pick {
					pick[i] = tables[rng.Intn(len(tables))]
				}
				j.ReserveAll(pick, int64(rng.Intn(60)), int64(rng.Intn(10)))
			case 2:
				marks = append(marks, checkpoint{mark: j.Mark(), want: snapshot()})
			case 3:
				if len(marks) > 0 {
					i := rng.Intn(len(marks))
					cp := marks[i]
					j.RollbackTo(cp.mark)
					marks = marks[:i] // later marks are now stale
					if got := snapshot(); !reflect.DeepEqual(got, cp.want) {
						t.Fatalf("trial %d: rollback to mark %d restored %v, want %v",
							trial, cp.mark, got, cp.want)
					}
				}
			}
		}
		// Unwinding the whole journal empties exactly what it committed.
		j.RollbackTo(0)
		if j.Len() != 0 {
			t.Fatalf("trial %d: journal not empty after full rollback", trial)
		}
	}
}
