// Package schedtable implements the schedule tables at the heart of the
// paper's co-scheduler (Fig. 1 right, Fig. 3): one table per shared
// resource — a PE or a directed link — recording the busy time slots
// committed so far.
//
// The communication scheduler of Fig. 3 needs three operations:
//
//   - build the schedule table of a *path* by merging the occupied slots
//     of its comprising links (FindEarliestAll),
//   - find the earliest feasible slot at or after a release time
//     (FindEarliest / FindEarliestAll),
//   - tentatively reserve slots while probing F(i,k) and restore the
//     tables afterwards ("the schedule tables of both links and the PEs
//     will be restored every time a F(i,k) is calculated") — Journal.
//
// Intervals are half-open [Start, End) over int64 abstract time units.
package schedtable

import (
	"fmt"
	"sort"
)

// Interval is a half-open busy slot [Start, End).
type Interval struct {
	Start, End int64
}

// Len returns the interval duration.
func (iv Interval) Len() int64 { return iv.End - iv.Start }

// Overlaps reports whether two half-open intervals intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Table is the schedule table of one shared resource. The zero value is
// an empty (fully free) table. Tables are not safe for concurrent
// mutation.
type Table struct {
	// busy is kept sorted by Start; entries never overlap (merging of
	// adjacent entries is not performed, so Release can remove exactly
	// what Reserve inserted).
	busy []Interval
}

// Busy returns the committed busy slots in start order. The slice
// aliases table storage and must not be mutated.
func (t *Table) Busy() []Interval { return t.busy }

// Len returns the number of busy slots.
func (t *Table) Len() int { return len(t.busy) }

// Reset removes all reservations.
func (t *Table) Reset() { t.busy = t.busy[:0] }

// firstAtOrAfter returns the index of the first busy slot with
// End > start (i.e. the first slot that could conflict with anything at
// or after start).
func (t *Table) firstAtOrAfter(start int64) int {
	return sort.Search(len(t.busy), func(i int) bool { return t.busy[i].End > start })
}

// Conflict returns the first committed slot overlapping [start,
// start+dur) and true, or a zero Interval and false if the window is
// free. Zero-duration windows never conflict.
func (t *Table) Conflict(start, dur int64) (Interval, bool) {
	if dur <= 0 {
		return Interval{}, false
	}
	i := t.firstAtOrAfter(start)
	if i < len(t.busy) && t.busy[i].Start < start+dur {
		return t.busy[i], true
	}
	return Interval{}, false
}

// FindEarliest returns the earliest time s >= from such that [s, s+dur)
// is free. For dur <= 0 it returns from.
func (t *Table) FindEarliest(from, dur int64) int64 {
	if dur <= 0 {
		return from
	}
	s := from
	for i := t.firstAtOrAfter(s); i < len(t.busy); i++ {
		if t.busy[i].Start >= s+dur {
			break // gap before busy[i] is large enough
		}
		s = t.busy[i].End
	}
	return s
}

// Reserve commits the slot [start, start+dur). It fails if the slot
// overlaps an existing reservation; on failure the table is unchanged.
// Zero-duration reservations are no-ops.
func (t *Table) Reserve(start, dur int64) error {
	if dur < 0 {
		return fmt.Errorf("schedtable: negative duration %d", dur)
	}
	if dur == 0 {
		return nil
	}
	if iv, clash := t.Conflict(start, dur); clash {
		return fmt.Errorf("schedtable: slot [%d,%d) conflicts with [%d,%d)",
			start, start+dur, iv.Start, iv.End)
	}
	i := sort.Search(len(t.busy), func(i int) bool { return t.busy[i].Start >= start })
	t.busy = append(t.busy, Interval{})
	copy(t.busy[i+1:], t.busy[i:])
	t.busy[i] = Interval{Start: start, End: start + dur}
	return nil
}

// Release removes the exact slot [start, start+dur) previously committed
// by Reserve. It fails if no such slot exists. Zero-duration releases
// are no-ops.
func (t *Table) Release(start, dur int64) error {
	if dur == 0 {
		return nil
	}
	want := Interval{Start: start, End: start + dur}
	i := sort.Search(len(t.busy), func(i int) bool { return t.busy[i].Start >= start })
	if i < len(t.busy) && t.busy[i] == want {
		t.busy = append(t.busy[:i], t.busy[i+1:]...)
		return nil
	}
	return fmt.Errorf("schedtable: no reservation [%d,%d) to release", want.Start, want.End)
}

// conflictFrom is Conflict with a resume cursor. hint must be a valid
// lower bound on firstAtOrAfter(start) — either -1 (unpositioned: a
// binary search locates the cursor) or the index returned by a previous
// conflictFrom call with a start no larger than this one. The returned
// index is the cursor to pass to the next call. Because the candidate
// start only advances during a path merge, the cursor walks each busy
// list at most once per merge instead of re-searching from scratch on
// every round.
func (t *Table) conflictFrom(start, dur int64, hint int) (Interval, int, bool) {
	i := hint
	if i < 0 {
		i = t.firstAtOrAfter(start)
	} else {
		for i < len(t.busy) && t.busy[i].End <= start {
			i++
		}
	}
	if i < len(t.busy) && t.busy[i].Start < start+dur {
		return t.busy[i], i, true
	}
	return Interval{}, i, false
}

// mergeStackTables bounds the cursor scratch FindEarliestAll keeps on
// the stack; longer paths (very large topologies) fall back to one heap
// allocation per call.
const mergeStackTables = 16

// FindEarliestAll returns the earliest time s >= from such that
// [s, s+dur) is simultaneously free in every table. This is the Fig. 3
// path-table query: the path's schedule table is the union of the busy
// slots of its comprising links, and the transaction goes into the
// earliest hole that fits. The iteration advances s to the end of some
// conflicting slot on every round, so it terminates after at most the
// total number of busy slots across the tables; per-table resume
// cursors (conflictFrom) make each round O(1) amortized instead of a
// fresh binary search.
func FindEarliestAll(tables []*Table, from, dur int64) int64 {
	if dur <= 0 || len(tables) == 0 {
		return from
	}
	if len(tables) == 1 {
		return tables[0].FindEarliest(from, dur)
	}
	var hintBuf [mergeStackTables]int
	var hints []int
	if len(tables) <= mergeStackTables {
		hints = hintBuf[:len(tables)]
	} else {
		hints = make([]int, len(tables))
	}
	for i := range hints {
		hints[i] = -1
	}
	s := from
	for {
		moved := false
		for i, t := range tables {
			iv, hint, clash := t.conflictFrom(s, dur, hints[i])
			hints[i] = hint
			if clash {
				s = iv.End
				moved = true
			}
		}
		if !moved {
			return s
		}
	}
}

// ReserveAll commits [start, start+dur) in every table, rolling back on
// the first failure so the operation is atomic.
//
// The rollback releases exactly the slots the call just inserted into
// the preceding tables, so it cannot fail for any input — including
// aliased tables in the slice (the duplicate's Reserve fails before a
// second insertion happens). The panic below is therefore unreachable;
// it exists so a future regression fails loudly instead of leaving the
// tables half-committed.
func ReserveAll(tables []*Table, start, dur int64) error {
	for i, t := range tables {
		if err := t.Reserve(start, dur); err != nil {
			for _, u := range tables[:i] {
				// The preceding reservations are exactly what we
				// inserted, so releasing them cannot fail.
				if rerr := u.Release(start, dur); rerr != nil {
					panic("schedtable: rollback of fresh reservation failed: " + rerr.Error())
				}
			}
			return err
		}
	}
	return nil
}

// reservation records one committed slot for undo.
type reservation struct {
	table *Table
	iv    Interval
}

// Journal records reservations so that a prefix can be undone — the
// restore step of the F(i,k) probe in the paper's level-based scheduler.
// A zero Journal is ready for use.
//
// Invariant: while a slot is journaled, the owning table must only be
// mutated through the journal. Every journal entry is then an exact
// committed slot, so RollbackTo cannot fail. Releasing or resetting a
// journaled table directly breaks the invariant and makes the next
// rollback panic — loudly, because silently continuing would corrupt
// the schedule tables the co-scheduler trusts. See the failure-path
// tests in failure_test.go, which both demonstrate the panic under
// sabotage and exercise that well-formed operation sequences never
// reach it.
type Journal struct {
	log []reservation
}

// Mark returns a checkpoint token for RollbackTo.
func (j *Journal) Mark() int { return len(j.log) }

// Reserve commits [start, start+dur) in t and records it.
func (j *Journal) Reserve(t *Table, start, dur int64) error {
	if err := t.Reserve(start, dur); err != nil {
		return err
	}
	if dur > 0 {
		j.log = append(j.log, reservation{table: t, iv: Interval{Start: start, End: start + dur}})
	}
	return nil
}

// ReserveAll commits the slot in every table and records each
// reservation; on failure everything since the call began is undone.
func (j *Journal) ReserveAll(tables []*Table, start, dur int64) error {
	mark := j.Mark()
	for _, t := range tables {
		if err := j.Reserve(t, start, dur); err != nil {
			j.RollbackTo(mark)
			return err
		}
	}
	return nil
}

// RollbackTo undoes every reservation made after the given checkpoint,
// in reverse order.
func (j *Journal) RollbackTo(mark int) {
	for i := len(j.log) - 1; i >= mark; i-- {
		r := j.log[i]
		if err := r.table.Release(r.iv.Start, r.iv.Len()); err != nil {
			// A journal entry is by construction an exact committed
			// slot; failure here means the tables were mutated behind
			// the journal's back, which is a programming error.
			panic("schedtable: journal rollback failed: " + err.Error())
		}
	}
	j.log = j.log[:mark]
}

// Len returns the number of recorded reservations.
func (j *Journal) Len() int { return len(j.log) }

// Reset discards every recorded reservation without touching the
// tables, keeping the log's capacity for reuse. It is the bulk
// counterpart of RollbackTo for callers that are about to Reset the
// owning tables themselves (sched.Builder.Reset): once the tables are
// cleared wholesale, releasing each journaled slot individually would
// be wasted work — and would fail, since the slots are already gone.
func (j *Journal) Reset() { j.log = j.log[:0] }
