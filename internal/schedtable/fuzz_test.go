package schedtable

import "testing"

// FuzzTableOps drives a Table with an operation stream decoded from
// fuzz input and checks the core invariants after every step: the busy
// list stays sorted and non-overlapping, FindEarliest returns
// conflict-free slots at or after the release time, and Release only
// succeeds on exact reservations.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 10, 5, 1, 12, 3, 2, 10, 5})
	f.Add([]byte{0, 0, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var tb Table
		type res struct{ s, d int64 }
		var committed []res
		for i := 0; i+2 < len(ops); i += 3 {
			op := ops[i] % 3
			start := int64(ops[i+1])
			dur := int64(ops[i+2]%16) + 1
			switch op {
			case 0: // reserve at an arbitrary point
				if err := tb.Reserve(start, dur); err == nil {
					committed = append(committed, res{start, dur})
				}
			case 1: // find-earliest then reserve there
				s := tb.FindEarliest(start, dur)
				if s < start {
					t.Fatalf("FindEarliest(%d,%d) = %d < from", start, dur, s)
				}
				if _, clash := tb.Conflict(s, dur); clash {
					t.Fatalf("FindEarliest returned a conflicting slot")
				}
				if err := tb.Reserve(s, dur); err != nil {
					t.Fatalf("reserving found slot: %v", err)
				}
				committed = append(committed, res{s, dur})
			case 2: // release a committed slot (if any)
				if len(committed) == 0 {
					continue
				}
				idx := int(ops[i+1]) % len(committed)
				c := committed[idx]
				if err := tb.Release(c.s, c.d); err != nil {
					t.Fatalf("release committed [%d,%d): %v", c.s, c.s+c.d, err)
				}
				committed = append(committed[:idx], committed[idx+1:]...)
			}
			// Invariants on the busy list.
			busy := tb.Busy()
			for j := 1; j < len(busy); j++ {
				if busy[j-1].Start > busy[j].Start {
					t.Fatal("busy list unsorted")
				}
				if busy[j-1].End > busy[j].Start {
					t.Fatalf("busy slots overlap: %v %v", busy[j-1], busy[j])
				}
			}
			if len(busy) != len(committed) {
				t.Fatalf("%d busy slots, %d committed", len(busy), len(committed))
			}
		}
	})
}
