package schedtable

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 10}, Interval{10, 20}, false}, // touching is not overlapping
		{Interval{0, 10}, Interval{9, 20}, true},
		{Interval{5, 6}, Interval{0, 100}, true},
		{Interval{0, 1}, Interval{1, 2}, false},
		{Interval{3, 7}, Interval{3, 7}, true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestReserveAndConflict(t *testing.T) {
	var tb Table
	if err := tb.Reserve(10, 5); err != nil {
		t.Fatal(err)
	}
	if err := tb.Reserve(15, 5); err != nil {
		t.Fatalf("adjacent reservation should succeed: %v", err)
	}
	if err := tb.Reserve(12, 1); err == nil {
		t.Fatal("overlapping reservation should fail")
	}
	if err := tb.Reserve(0, 11); err == nil {
		t.Fatal("reservation overlapping from the left should fail")
	}
	if err := tb.Reserve(0, 10); err != nil {
		t.Fatalf("exactly-fitting gap should succeed: %v", err)
	}
	if got := tb.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	// Zero-duration is a no-op.
	if err := tb.Reserve(12, 0); err != nil {
		t.Fatal(err)
	}
	if got := tb.Len(); got != 3 {
		t.Fatalf("zero-duration reservation changed the table")
	}
	if err := tb.Reserve(5, -1); err == nil {
		t.Fatal("negative duration should fail")
	}
}

func TestFindEarliest(t *testing.T) {
	var tb Table
	mustReserve(t, &tb, 10, 10) // [10,20)
	mustReserve(t, &tb, 30, 10) // [30,40)

	cases := []struct {
		from, dur, want int64
	}{
		{0, 5, 0},     // fits before the first slot
		{0, 10, 0},    // exactly fits the head gap
		{0, 11, 40},   // neither the head gap nor the 10-long middle gap fits
		{20, 10, 20},  // exactly fits the middle gap
		{0, 15, 40},   // both gaps too small
		{12, 5, 20},   // release inside a busy slot
		{25, 5, 25},   // fits in the middle gap
		{25, 6, 40},   // middle gap from 25 is only 5 long
		{100, 7, 100}, // after everything
		{5, 0, 5},     // zero duration returns from
	}
	for _, c := range cases {
		if got := tb.FindEarliest(c.from, c.dur); got != c.want {
			t.Errorf("FindEarliest(%d,%d) = %d, want %d", c.from, c.dur, got, c.want)
		}
	}
}

func TestRelease(t *testing.T) {
	var tb Table
	mustReserve(t, &tb, 10, 10)
	mustReserve(t, &tb, 30, 10)
	if err := tb.Release(10, 5); err == nil {
		t.Fatal("partial release should fail")
	}
	if err := tb.Release(10, 10); err != nil {
		t.Fatal(err)
	}
	if err := tb.Release(10, 10); err == nil {
		t.Fatal("double release should fail")
	}
	if got := tb.FindEarliest(0, 100); got != 0 {
		// only [30,40) left; a 100-long window must start at 40
		if got != 40 {
			t.Fatalf("FindEarliest after release = %d", got)
		}
	}
}

func TestFindEarliestAll(t *testing.T) {
	var a, b, c Table
	mustReserve(t, &a, 0, 10)  // a busy [0,10)
	mustReserve(t, &b, 15, 10) // b busy [15,25)
	mustReserve(t, &c, 28, 4)  // c busy [28,32)

	tables := []*Table{&a, &b, &c}
	// Need 5 free on all: [10,15) works.
	if got := FindEarliestAll(tables, 0, 5); got != 10 {
		t.Errorf("FindEarliestAll dur=5: got %d, want 10", got)
	}
	// Need 6: [10,15) too small (b busy at 15), next candidate 25, but c
	// busy [28,32) -> 32.
	if got := FindEarliestAll(tables, 0, 6); got != 32 {
		t.Errorf("FindEarliestAll dur=6: got %d, want 32", got)
	}
	// Empty table list: returns from.
	if got := FindEarliestAll(nil, 7, 5); got != 7 {
		t.Errorf("FindEarliestAll no tables: got %d, want 7", got)
	}
}

func TestReserveAllAtomic(t *testing.T) {
	var a, b Table
	mustReserve(t, &b, 5, 10)
	if err := ReserveAll([]*Table{&a, &b}, 0, 8); err == nil {
		t.Fatal("ReserveAll should fail when one table conflicts")
	}
	if a.Len() != 0 {
		t.Fatal("failed ReserveAll left a reservation behind in table a")
	}
	if err := ReserveAll([]*Table{&a, &b}, 20, 8); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("ReserveAll lengths: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestJournalRollback(t *testing.T) {
	var a, b Table
	var j Journal
	mustReserve(t, &a, 0, 5)

	m0 := j.Mark()
	if err := j.Reserve(&a, 10, 5); err != nil {
		t.Fatal(err)
	}
	if err := j.ReserveAll([]*Table{&a, &b}, 20, 5); err != nil {
		t.Fatal(err)
	}
	m1 := j.Mark()
	if err := j.Reserve(&b, 40, 5); err != nil {
		t.Fatal(err)
	}
	j.RollbackTo(m1)
	if b.Len() != 1 {
		t.Fatalf("partial rollback: b has %d slots, want 1", b.Len())
	}
	j.RollbackTo(m0)
	if a.Len() != 1 || b.Len() != 0 {
		t.Fatalf("full rollback: a=%d (want 1: pre-journal slot), b=%d (want 0)", a.Len(), b.Len())
	}
	if j.Len() != 0 {
		t.Fatalf("journal not empty after rollback: %d", j.Len())
	}
}

func TestJournalReserveAllRollsBackOnFailure(t *testing.T) {
	var a, b Table
	mustReserve(t, &b, 0, 5)
	var j Journal
	if err := j.ReserveAll([]*Table{&a, &b}, 0, 5); err == nil {
		t.Fatal("expected failure")
	}
	if a.Len() != 0 || j.Len() != 0 {
		t.Fatal("failed ReserveAll left state behind")
	}
}

// refTable is a brute-force oracle: a boolean busy map over time.
type refTable map[int64]bool

func (r refTable) free(start, dur int64) bool {
	for t := start; t < start+dur; t++ {
		if r[t] {
			return false
		}
	}
	return true
}

func (r refTable) findEarliest(from, dur int64) int64 {
	for s := from; ; s++ {
		if r.free(s, dur) {
			return s
		}
	}
}

// TestPropertyAgainstOracle drives a Table and the brute-force oracle
// with the same random operation sequence and checks they always agree.
func TestPropertyAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var tb Table
		ref := refTable{}
		type res struct{ s, d int64 }
		var committed []res
		for op := 0; op < 60; op++ {
			switch rng.Intn(3) {
			case 0: // reserve at the earliest feasible point
				from := int64(rng.Intn(50))
				dur := int64(1 + rng.Intn(8))
				got := tb.FindEarliest(from, dur)
				want := ref.findEarliest(from, dur)
				if got != want {
					t.Fatalf("trial %d op %d: FindEarliest(%d,%d)=%d oracle=%d busy=%v",
						trial, op, from, dur, got, want, tb.Busy())
				}
				if err := tb.Reserve(got, dur); err != nil {
					t.Fatalf("reserving found slot failed: %v", err)
				}
				for x := got; x < got+dur; x++ {
					ref[x] = true
				}
				committed = append(committed, res{got, dur})
			case 1: // attempt a random reservation; must agree with oracle
				s := int64(rng.Intn(60))
				d := int64(1 + rng.Intn(8))
				err := tb.Reserve(s, d)
				if ref.free(s, d) != (err == nil) {
					t.Fatalf("trial %d: Reserve(%d,%d) err=%v disagrees with oracle", trial, s, d, err)
				}
				if err == nil {
					for x := s; x < s+d; x++ {
						ref[x] = true
					}
					committed = append(committed, res{s, d})
				}
			case 2: // release a random committed slot
				if len(committed) == 0 {
					continue
				}
				i := rng.Intn(len(committed))
				c := committed[i]
				if err := tb.Release(c.s, c.d); err != nil {
					t.Fatalf("release of committed slot failed: %v", err)
				}
				for x := c.s; x < c.s+c.d; x++ {
					delete(ref, x)
				}
				committed = append(committed[:i], committed[i+1:]...)
			}
		}
	}
}

// TestQuickFindEarliestInvariants uses testing/quick to check the two
// defining properties of FindEarliest: the returned slot is at or after
// `from` and conflict-free.
func TestQuickFindEarliestInvariants(t *testing.T) {
	f := func(starts []uint16, durs []uint8, from uint16, dur uint8) bool {
		var tb Table
		for i, s := range starts {
			d := int64(1)
			if i < len(durs) {
				d = int64(durs[i]%16) + 1
			}
			tb.Reserve(int64(s), d) // ignore conflicts; table stays consistent
		}
		d := int64(dur%16) + 1
		got := tb.FindEarliest(int64(from), d)
		if got < int64(from) {
			return false
		}
		_, clash := tb.Conflict(got, d)
		return !clash
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFindEarliestAllInvariants checks the path-merge query: result
// is >= from and free in every table, and no earlier feasible point
// exists at interval boundaries.
func TestQuickFindEarliestAllInvariants(t *testing.T) {
	f := func(a, b []uint16, from uint16, dur uint8) bool {
		var ta, tb Table
		for _, s := range a {
			ta.Reserve(int64(s), int64(s%7)+1)
		}
		for _, s := range b {
			tb.Reserve(int64(s), int64(s%5)+1)
		}
		d := int64(dur%12) + 1
		tables := []*Table{&ta, &tb}
		got := FindEarliestAll(tables, int64(from), d)
		if got < int64(from) {
			return false
		}
		for _, x := range tables {
			if _, clash := x.Conflict(got, d); clash {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mustReserve(t *testing.T, tb *Table, start, dur int64) {
	t.Helper()
	if err := tb.Reserve(start, dur); err != nil {
		t.Fatal(err)
	}
}
