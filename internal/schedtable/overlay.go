package schedtable

// Overlay layers tentative reservations over committed tables without
// mutating them. It is the read-only probe path of the F(i,k)
// calculation: where the journal path reserves a transaction's slots on
// the shared link tables and rolls them back after the probe, an
// overlay records the slots privately, so the shared tables stay
// untouched and many probes can run concurrently against them.
//
// Resources are identified by small integer IDs chosen by the caller
// (the scheduler uses link indices). One overlay serves one probe at a
// time: Reset it, then alternate FindEarliestAllOverlay queries with
// Add calls as the probe's transactions are tentatively placed.
//
// An Overlay is not safe for concurrent use; give each concurrent
// prober its own.
type Overlay struct {
	pending [][]Interval
	touched []int
}

// NewOverlay returns an overlay for resources with IDs in [0, n).
func NewOverlay(n int) *Overlay {
	return &Overlay{pending: make([][]Interval, n)}
}

// Reset discards all tentative reservations. It is O(resources touched
// since the last Reset), not O(n).
func (o *Overlay) Reset() {
	for _, id := range o.touched {
		o.pending[id] = o.pending[id][:0]
	}
	o.touched = o.touched[:0]
}

// Add records the tentative reservation [start, start+dur) on resource
// id. Zero-duration reservations are no-ops. The caller is responsible
// for having verified the slot is free (FindEarliestAllOverlay does).
func (o *Overlay) Add(id int, start, dur int64) {
	if dur <= 0 {
		return
	}
	if len(o.pending[id]) == 0 {
		o.touched = append(o.touched, id)
	}
	o.pending[id] = append(o.pending[id], Interval{Start: start, End: start + dur})
}

// Len returns the number of tentative reservations currently recorded.
func (o *Overlay) Len() int {
	n := 0
	for _, id := range o.touched {
		n += len(o.pending[id])
	}
	return n
}

// conflict advances start past every pending interval of resource id
// overlapping [start, start+dur) and reports whether it moved. Pending
// lists are unsorted but tiny (bounded by a task's in-degree), so a
// linear scan wins over keeping them ordered.
func (o *Overlay) conflict(id int, start, dur int64) (int64, bool) {
	moved := false
	for _, iv := range o.pending[id] {
		if iv.Start < start+dur && start < iv.End {
			start = iv.End
			moved = true
		}
	}
	return start, moved
}

// FindEarliestAllOverlay returns the earliest time s >= from such that
// [s, s+dur) is simultaneously free in every table AND in the overlay's
// pending reservations for the corresponding resource IDs. ids[i] names
// the overlay resource of tables[i] (len(ids) must equal len(tables));
// a nil overlay degrades to FindEarliestAll.
//
// This is the side-effect-free form of the reserve-query-rollback
// sequence: the result is identical to reserving the overlay's pending
// slots into the tables and calling FindEarliestAll, because both
// compute the unique earliest point at or after from that conflicts
// with nothing in the union.
func FindEarliestAllOverlay(tables []*Table, ids []int, o *Overlay, from, dur int64) int64 {
	if dur <= 0 || len(tables) == 0 {
		return from
	}
	if o == nil {
		return FindEarliestAll(tables, from, dur)
	}
	var hintBuf [mergeStackTables]int
	var hints []int
	if len(tables) <= mergeStackTables {
		hints = hintBuf[:len(tables)]
	} else {
		hints = make([]int, len(tables))
	}
	for i := range hints {
		hints[i] = -1
	}
	s := from
	for {
		moved := false
		for i, t := range tables {
			iv, hint, clash := t.conflictFrom(s, dur, hints[i])
			hints[i] = hint
			if clash {
				s = iv.End
				moved = true
			}
			if next, clash := o.conflict(ids[i], s, dur); clash {
				s = next
				moved = true
			}
		}
		if !moved {
			return s
		}
	}
}
