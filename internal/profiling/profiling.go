// Package profiling starts and stops the standard Go profilers behind
// one call, so every command in this repository exposes identical
// -cpuprofile/-memprofile/-trace flags without repeating the file and
// lifecycle plumbing.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start enables the requested profilers; empty paths disable the
// corresponding profiler. It returns a stop function that flushes and
// closes everything — call it exactly once, before process exit (defer
// is fine, but note os.Exit skips defers). The heap profile is written
// at stop time, after a GC, so it reflects live memory at the end of
// the run.
func Start(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := trace.Start(traceFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: start trace: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			cpuFile = nil
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil {
				return err
			}
			traceFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
