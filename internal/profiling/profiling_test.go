package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	tr := filepath.Join(dir, "trace.out")
	stop, err := Start(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), "", ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
