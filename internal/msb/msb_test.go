package msb

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
)

func TestClipByName(t *testing.T) {
	for _, c := range Clips {
		got, err := ClipByName(c.Name)
		if err != nil || got.Name != c.Name {
			t.Errorf("ClipByName(%q) = %+v, %v", c.Name, got, err)
		}
	}
	if _, err := ClipByName("nosuchclip"); err == nil {
		t.Error("unknown clip accepted")
	}
}

func TestTaskCountsMatchPaper(t *testing.T) {
	p2, err := DefaultPlatform2x2()
	if err != nil {
		t.Fatal(err)
	}
	p3, err := DefaultPlatform3x3()
	if err != nil {
		t.Fatal(err)
	}
	clip := Clips[1]

	enc, err := Encoder(clip, p2)
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumTasks() != 24 {
		t.Errorf("encoder has %d tasks, paper says 24", enc.NumTasks())
	}
	dec, err := Decoder(clip, p2)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumTasks() != 16 {
		t.Errorf("decoder has %d tasks, paper says 16", dec.NumTasks())
	}
	integ, err := Integrated(clip, p3)
	if err != nil {
		t.Fatal(err)
	}
	if integ.NumTasks() != 40 {
		t.Errorf("integrated has %d tasks, paper says 40", integ.NumTasks())
	}
}

func TestGraphsValidate(t *testing.T) {
	p2, _ := DefaultPlatform2x2()
	p3, _ := DefaultPlatform3x3()
	for _, clip := range Clips {
		for _, build := range []struct {
			name string
			f    func() (*ctg.Graph, error)
		}{
			{"encoder", func() (*ctg.Graph, error) { return Encoder(clip, p2) }},
			{"decoder", func() (*ctg.Graph, error) { return Decoder(clip, p2) }},
			{"integrated", func() (*ctg.Graph, error) { return Integrated(clip, p3) }},
		} {
			g, err := build.f()
			if err != nil {
				t.Fatalf("%s/%s: %v", build.name, clip.Name, err)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s/%s: invalid graph: %v", build.name, clip.Name, err)
			}
			if len(g.DeadlineTasks()) == 0 {
				t.Errorf("%s/%s: no deadlines", build.name, clip.Name)
			}
		}
	}
}

func TestClipScalesLoad(t *testing.T) {
	p2, _ := DefaultPlatform2x2()
	akiyo, err := Encoder(Clips[0], p2)
	if err != nil {
		t.Fatal(err)
	}
	toybox, err := Encoder(Clips[2], p2)
	if err != nil {
		t.Fatal(err)
	}
	// Motion estimation cost must scale with clip motion.
	var meA, meT *ctg.Task
	for i := 0; i < akiyo.NumTasks(); i++ {
		if akiyo.Task(ctg.TaskID(i)).Name == "vme" {
			meA = akiyo.Task(ctg.TaskID(i))
			meT = toybox.Task(ctg.TaskID(i))
		}
	}
	if meA == nil {
		t.Fatal("vme task not found")
	}
	if meT.ExecTime[0] <= meA.ExecTime[0] {
		t.Errorf("high-motion ME not slower: %d vs %d", meT.ExecTime[0], meA.ExecTime[0])
	}
	// Data volumes scale with clip volume factor.
	if toybox.TotalVolume() <= akiyo.TotalVolume() {
		t.Errorf("toybox volume %d <= akiyo %d", toybox.TotalVolume(), akiyo.TotalVolume())
	}
}

func TestDSPAffinity(t *testing.T) {
	// A DSP-kind task must run fastest on the DSP-classed tile
	// relative to the class's nominal speed (affinity < 1), and a
	// control task must be penalized there.
	p2, _ := DefaultPlatform2x2()
	g, err := Encoder(Clips[1], p2)
	if err != nil {
		t.Fatal(err)
	}
	var dct, vlc *ctg.Task
	for i := 0; i < g.NumTasks(); i++ {
		switch g.Task(ctg.TaskID(i)).Name {
		case "vdct":
			dct = g.Task(ctg.TaskID(i))
		case "vvlc":
			vlc = g.Task(ctg.TaskID(i))
		}
	}
	// Tiles: 0=cpu(0.5) 1=dsp(0.7) 2=risc(1.0) 3=arm(1.8).
	// For the DCT the dsp affinity 0.55 makes tile1 time 0.7*0.55=0.385x
	// — faster than the raw CPU at 0.5x.
	if dct.ExecTime[1] >= dct.ExecTime[0] {
		t.Errorf("DCT not fastest on DSP: dsp=%d cpu=%d", dct.ExecTime[1], dct.ExecTime[0])
	}
	// VLC (control) on the DSP is worse than on the RISC despite the
	// DSP's raw speed advantage (0.7*1.4 = 0.98 vs 1.0*0.9 = 0.9).
	if vlc.ExecTime[1] <= vlc.ExecTime[2] {
		t.Errorf("VLC unexpectedly fast on DSP: dsp=%d risc=%d", vlc.ExecTime[1], vlc.ExecTime[2])
	}
}

func TestDeadlinesOnSinks(t *testing.T) {
	p3, _ := DefaultPlatform3x3()
	g, err := Integrated(Clips[1], p3)
	if err != nil {
		t.Fatal(err)
	}
	dl := g.DeadlineTasks()
	if len(dl) != 2 {
		t.Fatalf("integrated system has %d deadline tasks, want 2 (enc writer + dec sync)", len(dl))
	}
	for _, id := range dl {
		task := g.Task(id)
		switch task.Name {
		case "enc.avwrite":
			if task.Deadline != EncoderPeriod {
				t.Errorf("encoder deadline %d, want %d", task.Deadline, EncoderPeriod)
			}
		case "dec.avsync":
			if task.Deadline != DecoderPeriod {
				t.Errorf("decoder deadline %d, want %d", task.Deadline, DecoderPeriod)
			}
		default:
			t.Errorf("unexpected deadline task %q", task.Name)
		}
	}
}

func TestBuildRejectsForeignPlatformClasses(t *testing.T) {
	// A platform with unknown class names still builds (affinity
	// defaults to 1) — the graphs must stay valid.
	topo, err := noc.NewMesh(2, 2, noc.RouteXY)
	if err != nil {
		t.Fatal(err)
	}
	classes := []noc.PEClass{
		{Name: "alien1", SpeedFactor: 1, PowerFactor: 1},
		{Name: "alien2", SpeedFactor: 2, PowerFactor: 0.5},
		{Name: "alien1", SpeedFactor: 1, PowerFactor: 1},
		{Name: "alien2", SpeedFactor: 2, PowerFactor: 0.5},
	}
	p, err := noc.NewPlatform(topo, classes, 256)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Encoder(Clips[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderCrossDeps(t *testing.T) {
	p2, _ := DefaultPlatform2x2()
	g, err := Encoder(Clips[1], p2)
	if err != nil {
		t.Fatal(err)
	}
	deps, err := EncoderCrossDeps(g, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 3 {
		t.Fatalf("deps = %+v", deps)
	}
	names := map[string]bool{}
	for _, d := range deps {
		if d.Volume <= 0 {
			t.Errorf("dep %v has no volume", d)
		}
		names[g.Task(d.From).Name+"->"+g.Task(d.To).Name] = true
	}
	for _, want := range []string{"vrecon->vme", "vrecon->vmc", "vratectl->vquant"} {
		if !names[want] {
			t.Errorf("missing cross dependency %s", want)
		}
	}
	// The prefixed variant works against the integrated graph.
	p3, _ := DefaultPlatform3x3()
	integ, err := Integrated(Clips[1], p3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncoderCrossDeps(integ, "enc."); err != nil {
		t.Errorf("prefixed lookup failed: %v", err)
	}
	// Wrong prefix is rejected.
	if _, err := EncoderCrossDeps(integ, "zzz."); err == nil {
		t.Error("bad prefix accepted")
	}
	// Unrolling with the deps yields a valid pipelined graph.
	u, err := ctg.Unroll(g, 3, EncoderPeriod, deps)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.NumTasks() != 72 {
		t.Errorf("unrolled tasks = %d", u.NumTasks())
	}
}
