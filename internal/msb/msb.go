// Package msb provides the Multimedia System Benchmarks of the paper's
// Sec. 6.2: an MP3/H.263 audio/video encoder pair (24 tasks, scheduled
// on a 2x2 NoC), an MP3/H.263 A/V decoder (16 tasks, 2x2), and the
// integrated encoder+decoder system (40 tasks, 3x3), each profiled for
// three video clips (akiyo, foreman, toybox).
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper partitions real MP3 and
// H.263 C++ codecs and profiles them with inserted monitors on real
// clips. We do not have those codecs or traces, so the graphs here are
// hand-built from the well-known stage structure of the two pipelines
// (polyphase filterbank / MDCT / psychoacoustics / quantization /
// Huffman for MP3; motion estimation / DCT / quantization / VLC and the
// reconstruction loop for H.263), with reference execution times in the
// right proportions and per-clip scaling factors standing in for the
// clip-dependent profile. The experiments only consume the task graphs,
// so the EAS-vs-EDF comparison retains its structure.
package msb

import (
	"fmt"
	"math"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
)

// Clip is one profiled input clip. Motion scales the motion-dependent
// task loads (motion estimation dominates video encoding cost); Volume
// scales the data-dependent communication volumes (residual and
// bitstream sizes).
type Clip struct {
	Name   string
	Motion float64
	Volume float64
}

// Clips are the three clips of the paper's tables, with low / medium /
// high motion content.
var Clips = []Clip{
	{Name: "akiyo", Motion: 0.6, Volume: 0.8},
	{Name: "foreman", Motion: 1.0, Volume: 1.0},
	{Name: "toybox", Motion: 1.4, Volume: 1.2},
}

// ClipByName returns the clip with the given name.
func ClipByName(name string) (Clip, error) {
	for _, c := range Clips {
		if c.Name == name {
			return c, nil
		}
	}
	return Clip{}, fmt.Errorf("msb: unknown clip %q", name)
}

// Frame periods in abstract time units. The paper's Fig. 7 baseline is
// a 40 frames/sec encoding rate and a 67 frames/sec decoding rate; the
// periods below correspond to those rates at this benchmark's reference
// time scale, chosen so that at the baseline the low-power mapping just
// fits (the knee of the Fig. 7 trade-off curve then falls inside the
// paper's 1.0-1.8 sweep, as in the original).
const (
	// EncoderPeriod is one 40 fps frame time.
	EncoderPeriod int64 = 10000
	// DecoderPeriod is one 67 fps frame time.
	DecoderPeriod int64 = 5600
)

// kind captures a task's architectural affinity: how well each PE class
// runs it, as a multiplier on both time and energy over the class
// baseline.
type kind int

const (
	kindControl kind = iota // branchy control/bitstream logic
	kindDSP                 // regular kernels: DCT, filterbanks, ME
	kindStream              // data movement / formatting
)

// affinity returns the time-and-energy multiplier of a kind on a PE
// class.
func (k kind) affinity(class noc.PEClass) float64 {
	type row struct{ cpu, dsp, risc, arm float64 }
	var r row
	switch k {
	case kindControl:
		r = row{cpu: 0.95, dsp: 1.40, risc: 0.90, arm: 1.00}
	case kindDSP:
		r = row{cpu: 1.00, dsp: 0.55, risc: 1.15, arm: 1.25}
	case kindStream:
		r = row{cpu: 1.05, dsp: 1.20, risc: 0.95, arm: 0.85}
	}
	switch class.Name {
	case noc.ClassCPU.Name:
		return r.cpu
	case noc.ClassDSP.Name:
		return r.dsp
	case noc.ClassRISC.Name:
		return r.risc
	case noc.ClassARM.Name:
		return r.arm
	default:
		return 1.0
	}
}

// taskSpec describes one pipeline stage before platform characterization.
type taskSpec struct {
	name string
	ref  int64 // reference execution time, time units
	kind kind
	// motion marks loads that scale with the clip's motion content.
	motion bool
	// deadline, if > 0, is the task's absolute deadline.
	deadline int64
}

// edgeSpec describes one dependency with its communication volume in
// bits. volume scales with the clip's Volume factor when data is true.
type edgeSpec struct {
	src, dst string
	volume   int64
	data     bool // clip-dependent volume
}

// build characterizes the specs for the platform and assembles the CTG.
func build(name string, clip Clip, platform *noc.Platform, tasks []taskSpec, edges []edgeSpec) (*ctg.Graph, error) {
	g := ctg.New(fmt.Sprintf("%s-%s", name, clip.Name))
	ids := make(map[string]ctg.TaskID, len(tasks))
	for _, ts := range tasks {
		ref := float64(ts.ref)
		if ts.motion {
			ref *= clip.Motion
		}
		times := make([]int64, platform.NumPEs())
		energies := make([]float64, platform.NumPEs())
		for k, class := range platform.Classes {
			a := ts.kind.affinity(class)
			t := math.Round(ref * class.SpeedFactor * a)
			if t < 1 {
				t = 1
			}
			times[k] = int64(t)
			energies[k] = ref * class.EnergyFactor() * a
		}
		deadline := ctg.NoDeadline
		if ts.deadline > 0 {
			deadline = ts.deadline
		}
		id, err := g.AddTask(ts.name, times, energies, deadline)
		if err != nil {
			return nil, err
		}
		ids[ts.name] = id
	}
	for _, es := range edges {
		src, ok := ids[es.src]
		if !ok {
			return nil, fmt.Errorf("msb: %s: unknown edge source %q", name, es.src)
		}
		dst, ok := ids[es.dst]
		if !ok {
			return nil, fmt.Errorf("msb: %s: unknown edge destination %q", name, es.dst)
		}
		vol := es.volume
		if es.data {
			vol = int64(math.Round(float64(vol) * clip.Volume))
		}
		if _, err := g.AddEdge(src, dst, vol); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Communication volume building blocks, in bits. QCIF 4:2:0 frames are
// ~38 KB raw; transformed/quantized planes and entropy-coded payloads
// shrink accordingly.
const (
	volRawFrame   = 304128 // 176*144*1.5 bytes
	volPlane      = 101376 // one processed luma plane
	volCoeffs     = 49152  // quantized coefficient blocks
	volResidual   = 32768  // motion-compensated residual
	volBitstream  = 8192   // entropy-coded video payload per frame
	volAudioFrame = 18432  // 1152 samples x 16 bit
	volAudioBand  = 9216   // subband / spectral data
	volAudioBits  = 2048   // coded audio payload
	volSideInfo   = 512    // rate-control and sync metadata
)

// encoderSpecs returns the 24-task A/V encoder (12 H.263 stages, 10 MP3
// stages, a mux and a stream writer). sinkDeadline is applied to the
// stream writer.
func encoderSpecs(sinkDeadline int64, prefix string) ([]taskSpec, []edgeSpec) {
	p := func(s string) string { return prefix + s }
	tasks := []taskSpec{
		// H.263 video encoder.
		{name: p("vcapture"), ref: 400, kind: kindStream},
		{name: p("vpreproc"), ref: 600, kind: kindDSP},
		{name: p("vme"), ref: 4000, kind: kindDSP, motion: true},
		{name: p("vmc"), ref: 900, kind: kindDSP, motion: true},
		{name: p("vdct"), ref: 1200, kind: kindDSP},
		{name: p("vquant"), ref: 500, kind: kindDSP},
		{name: p("vratectl"), ref: 300, kind: kindControl},
		{name: p("vinvq"), ref: 400, kind: kindDSP},
		{name: p("vidct"), ref: 1100, kind: kindDSP},
		{name: p("vrecon"), ref: 500, kind: kindStream},
		{name: p("vvlc"), ref: 900, kind: kindControl},
		{name: p("vpack"), ref: 300, kind: kindStream},
		// MP3 audio encoder.
		{name: p("aframe"), ref: 200, kind: kindStream},
		{name: p("astereo"), ref: 300, kind: kindDSP},
		{name: p("apoly"), ref: 1500, kind: kindDSP},
		{name: p("afft"), ref: 1200, kind: kindDSP},
		{name: p("amdct"), ref: 1000, kind: kindDSP},
		{name: p("apsycho"), ref: 800, kind: kindControl},
		{name: p("abitalloc"), ref: 400, kind: kindControl},
		{name: p("aquantloop"), ref: 1500, kind: kindControl},
		{name: p("ahuff"), ref: 700, kind: kindControl},
		{name: p("aformat"), ref: 300, kind: kindStream},
		// A/V mux and output.
		{name: p("avmux"), ref: 250, kind: kindStream},
		{name: p("avwrite"), ref: 200, kind: kindStream, deadline: sinkDeadline},
	}
	e := func(src, dst string, vol int64, data bool) edgeSpec {
		return edgeSpec{src: p(src), dst: p(dst), volume: vol, data: data}
	}
	edges := []edgeSpec{
		// Video pipeline with the reconstruction loop unrolled into
		// the current frame's DAG.
		e("vcapture", "vpreproc", volRawFrame, false),
		e("vpreproc", "vme", volPlane, false),
		e("vme", "vmc", volSideInfo, true),
		e("vpreproc", "vmc", volPlane, false),
		e("vmc", "vdct", volResidual, true),
		e("vdct", "vquant", volCoeffs, true),
		e("vquant", "vratectl", volSideInfo, false),
		e("vquant", "vvlc", volCoeffs, true),
		e("vquant", "vinvq", volCoeffs, true),
		e("vinvq", "vidct", volCoeffs, true),
		e("vidct", "vrecon", volResidual, true),
		e("vmc", "vrecon", volResidual, true),
		e("vvlc", "vpack", volBitstream, true),
		e("vratectl", "vpack", volSideInfo, false),
		// Audio pipeline.
		e("aframe", "astereo", volAudioFrame, false),
		e("astereo", "apoly", volAudioFrame, false),
		e("astereo", "afft", volAudioFrame, false),
		e("apoly", "amdct", volAudioBand, false),
		e("afft", "apsycho", volAudioBand, false),
		e("amdct", "abitalloc", volAudioBand, false),
		e("apsycho", "abitalloc", volSideInfo, false),
		e("abitalloc", "aquantloop", volAudioBand, false),
		e("aquantloop", "ahuff", volAudioBand, true),
		e("ahuff", "aformat", volAudioBits, true),
		// Mux: the reconstruction result gates the next stage too
		// (control), and both coded streams feed the writer.
		e("vpack", "avmux", volBitstream, true),
		e("aformat", "avmux", volAudioBits, true),
		e("vrecon", "avmux", 0, false),
		e("avmux", "avwrite", volBitstream+volAudioBits, true),
	}
	return tasks, edges
}

// decoderSpecs returns the 16-task A/V decoder (8 H.263 stages, 6 MP3
// stages, a demux source and an A/V-sync sink).
func decoderSpecs(sinkDeadline int64, prefix string) ([]taskSpec, []edgeSpec) {
	p := func(s string) string { return prefix + s }
	tasks := []taskSpec{
		{name: p("demux"), ref: 250, kind: kindStream},
		// H.263 video decoder.
		{name: p("vparse"), ref: 300, kind: kindControl},
		{name: p("vvld"), ref: 800, kind: kindControl},
		{name: p("viq"), ref: 400, kind: kindDSP},
		{name: p("vidct"), ref: 1100, kind: kindDSP},
		{name: p("vmcomp"), ref: 900, kind: kindDSP, motion: true},
		{name: p("vrecon"), ref: 500, kind: kindStream},
		{name: p("vdeblock"), ref: 700, kind: kindDSP},
		{name: p("vdisp"), ref: 300, kind: kindStream},
		// MP3 audio decoder.
		{name: p("async"), ref: 200, kind: kindControl},
		{name: p("ahuffdec"), ref: 600, kind: kindControl},
		{name: p("adequant"), ref: 400, kind: kindDSP},
		{name: p("astereo"), ref: 300, kind: kindDSP},
		{name: p("aimdct"), ref: 900, kind: kindDSP},
		{name: p("asynth"), ref: 1400, kind: kindDSP},
		// Output sync.
		{name: p("avsync"), ref: 250, kind: kindStream, deadline: sinkDeadline},
	}
	e := func(src, dst string, vol int64, data bool) edgeSpec {
		return edgeSpec{src: p(src), dst: p(dst), volume: vol, data: data}
	}
	edges := []edgeSpec{
		e("demux", "vparse", volBitstream, true),
		e("demux", "async", volAudioBits, true),
		// Video.
		e("vparse", "vvld", volBitstream, true),
		e("vvld", "viq", volCoeffs, true),
		e("viq", "vidct", volCoeffs, true),
		e("vvld", "vmcomp", volSideInfo, true),
		e("vidct", "vrecon", volResidual, true),
		e("vmcomp", "vrecon", volResidual, true),
		e("vrecon", "vdeblock", volPlane, false),
		e("vdeblock", "vdisp", volRawFrame, false),
		// Audio.
		e("async", "ahuffdec", volAudioBits, true),
		e("ahuffdec", "adequant", volAudioBand, true),
		e("adequant", "astereo", volAudioBand, false),
		e("astereo", "aimdct", volAudioBand, false),
		e("aimdct", "asynth", volAudioBand, false),
		// Sync.
		e("vdisp", "avsync", volSideInfo, false),
		e("asynth", "avsync", volAudioFrame, false),
	}
	return tasks, edges
}

// Encoder builds the 24-task MP3/H.263 A/V encoder CTG for a clip,
// characterized for the given platform (the paper schedules it on a
// heterogeneous 2x2 NoC).
func Encoder(clip Clip, platform *noc.Platform) (*ctg.Graph, error) {
	tasks, edges := encoderSpecs(EncoderPeriod, "")
	return build("av-encoder", clip, platform, tasks, edges)
}

// Decoder builds the 16-task MP3/H.263 A/V decoder CTG for a clip
// (paper: heterogeneous 2x2 NoC).
func Decoder(clip Clip, platform *noc.Platform) (*ctg.Graph, error) {
	tasks, edges := decoderSpecs(DecoderPeriod, "")
	return build("av-decoder", clip, platform, tasks, edges)
}

// Integrated builds the 40-task system combining the encoder pair and
// the decoder pair (paper: heterogeneous 3x3 NoC). The two subsystems
// are independent subgraphs, as in a terminal that encodes its outgoing
// stream while decoding the incoming one.
func Integrated(clip Clip, platform *noc.Platform) (*ctg.Graph, error) {
	encTasks, encEdges := encoderSpecs(EncoderPeriod, "enc.")
	decTasks, decEdges := decoderSpecs(DecoderPeriod, "dec.")
	return build("av-integrated", clip, platform,
		append(encTasks, decTasks...), append(encEdges, decEdges...))
}

// DefaultPlatform2x2 is the reference 2x2 heterogeneous platform of
// Tables 1 and 2 (CPU / DSP / RISC / ARM tiles, XY routing). The link
// bandwidth of 256 bits per time unit makes frame-sized transfers cost
// on the order of a pipeline stage, as on a real NoC.
func DefaultPlatform2x2() (*noc.Platform, error) {
	return noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 256)
}

// DefaultPlatform3x3 is the reference 3x3 platform of Table 3.
func DefaultPlatform3x3() (*noc.Platform, error) {
	return noc.NewHeterogeneousMesh(3, 3, noc.RouteXY, 256)
}

// EncoderCrossDeps returns the cross-iteration (frame-to-frame)
// dependencies of the A/V encoder, for pipelined multi-frame scheduling
// via ctg.Unroll: the reconstructed reference frame feeds the next
// frame's motion estimation and compensation, and the rate controller's
// state feeds the next frame's quantizer. prefix must match the prefix
// the encoder was built with ("" for Encoder, "enc." inside Integrated).
func EncoderCrossDeps(g *ctg.Graph, prefix string) ([]ctg.CrossDep, error) {
	find := func(name string) (ctg.TaskID, error) {
		full := prefix + name
		for i := 0; i < g.NumTasks(); i++ {
			if g.Task(ctg.TaskID(i)).Name == full {
				return ctg.TaskID(i), nil
			}
		}
		return -1, fmt.Errorf("msb: task %q not found in %q", full, g.Name)
	}
	recon, err := find("vrecon")
	if err != nil {
		return nil, err
	}
	me, err := find("vme")
	if err != nil {
		return nil, err
	}
	mc, err := find("vmc")
	if err != nil {
		return nil, err
	}
	rate, err := find("vratectl")
	if err != nil {
		return nil, err
	}
	quant, err := find("vquant")
	if err != nil {
		return nil, err
	}
	return []ctg.CrossDep{
		{From: recon, To: me, Volume: volPlane},
		{From: recon, To: mc, Volume: volPlane},
		{From: rate, To: quant, Volume: volSideInfo},
	}, nil
}
