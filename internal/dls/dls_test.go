package dls

import (
	"math"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

func rig(t *testing.T) *energy.ACG {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return acg
}

func het(t *testing.T, g *ctg.Graph, name string, ref int64, deadline int64) ctg.TaskID {
	t.Helper()
	id, err := g.AddTask(name,
		[]int64{ref / 2, ref * 7 / 10, ref, ref * 9 / 5},
		[]float64{float64(ref) * 2.0, float64(ref) * 0.91, float64(ref), float64(ref) * 0.63},
		deadline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStaticLevels(t *testing.T) {
	g := ctg.New("sl")
	// Chain a(mean 100) -> b(mean 200) -> c(mean 50).
	mk := func(name string, mean int64) ctg.TaskID {
		id, err := g.AddTask(name, []int64{mean - 10, mean + 10}, []float64{1, 1}, ctg.NoDeadline)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := mk("a", 100)
	b := mk("b", 200)
	c := mk("c", 50)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	sl, err := StaticLevels(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{350, 250, 50}
	for i, w := range want {
		if math.Abs(sl[i]-w) > 1e-9 {
			t.Errorf("SL[%d] = %v, want %v", i, sl[i], w)
		}
	}
}

func TestStaticLevelsCycleRejected(t *testing.T) {
	g := ctg.New("cyc")
	a, _ := g.AddTask("a", []int64{1}, []float64{1}, ctg.NoDeadline)
	b, _ := g.AddTask("b", []int64{1}, []float64{1}, ctg.NoDeadline)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 0)
	if _, err := StaticLevels(g); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestDLSCriticalPathFirst(t *testing.T) {
	// Two ready chains: a long one and a short one, one fast PE. DLS
	// must give the fast PE to the long chain's head (largest static
	// level).
	acg := rig(t)
	g := ctg.New("prio")
	longHead := het(t, g, "long", 100, ctg.NoDeadline)
	longTail := het(t, g, "longTail", 900, ctg.NoDeadline)
	short := het(t, g, "short", 100, ctg.NoDeadline)
	g.AddEdge(longHead, longTail, 0)

	s, err := Schedule(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The long chain's head must start no later than the short task.
	if s.Tasks[longHead].Start > s.Tasks[short].Start {
		t.Errorf("long chain delayed: %+v vs %+v", s.Tasks[longHead], s.Tasks[short])
	}
}

func TestDLSHeterogeneousDelta(t *testing.T) {
	// A single task: Delta favors the PE where it runs fastest, so the
	// CPU (index 0) wins.
	acg := rig(t)
	g := ctg.New("delta")
	id := het(t, g, "only", 100, ctg.NoDeadline)
	s, err := Schedule(g, acg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks[id].PE != 0 {
		t.Errorf("task on PE %d, want 0", s.Tasks[id].PE)
	}
}

func TestDLSValidOnRandomGraphs(t *testing.T) {
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		g, err := tgff.Generate(tgff.Params{
			Name: "dls", Seed: seed, NumTasks: 120, MaxInDegree: 3,
			LocalityWindow: 16, TaskTypes: 10, ExecMin: 20, ExecMax: 200,
			HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 8192,
			ControlEdgeFraction: 0.1, DeadlineLaxity: 1.4, DeadlineFraction: 1,
			Platform: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Schedule(g, acg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		// DLS is the throughput-oriented scheduler: its makespan
		// should not exceed EDF's by much (they optimize the same
		// thing with different priorities); sanity-check it at least
		// produces a competitive makespan.
		ed, err := edf.Schedule(g, acg)
		if err != nil {
			t.Fatal(err)
		}
		if float64(s.Makespan()) > 1.5*float64(ed.Makespan()) {
			t.Errorf("seed %d: DLS makespan %d far above EDF %d",
				seed, s.Makespan(), ed.Makespan())
		}
	}
}

func TestDLSRejectsBadInput(t *testing.T) {
	acg := rig(t)
	g := ctg.New("bad")
	g.AddTask("a", []int64{1}, []float64{1}, ctg.NoDeadline)
	if _, err := Schedule(g, acg); err == nil {
		t.Error("PE mismatch accepted")
	}
}
