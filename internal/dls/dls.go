// Package dls implements Dynamic Level Scheduling, the classic
// communication-aware compile-time list scheduler of Sih and Lee ("A
// compile-time scheduling heuristic for interconnection-constrained
// heterogeneous processor architectures", IEEE TPDS 1993) that the
// paper discusses as related work [10]. Like EDF it optimizes purely
// for performance — it is a second baseline that, unlike EDF, already
// accounts for interprocessor communication in its priority function,
// making it the stronger performance-oriented comparator.
//
// At every step DLS evaluates the dynamic level of every (ready task,
// PE) pair:
//
//	DL(t, p) = SL(t) - max(DA(t, p), TF(p)) + Delta(t, p)
//
// where SL is the static level (longest mean-execution path from t to
// any sink), DA the moment t's data can be available on p (computed
// here with the exact Fig. 3 link-contention model, so DLS competes on
// equal footing), TF the moment p finishes its committed work, and
// Delta(t, p) = meanExec(t) - exec(t, p) the generalization Sih & Lee
// introduce for heterogeneous processors. The pair with the largest
// dynamic level is committed.
package dls

import (
	"fmt"
	"math"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
	"nocsched/internal/stats"
)

// Schedule runs DLS on graph g against architecture acg.
func Schedule(g *ctg.Graph, acg *energy.ACG) (*sched.Schedule, error) {
	return ScheduleWith(sched.NewWorkspace(1, false), g, acg)
}

// ScheduleWith runs DLS through a reusable workspace (see
// eas.ScheduleWith). DLS probes through the builder's journal path
// directly, so only the workspace's builder is reused; its probe pool
// is untouched. Schedules are bit-identical to Schedule's.
func ScheduleWith(ws *sched.Workspace, g *ctg.Graph, acg *energy.ACG) (*sched.Schedule, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumPEs() != acg.NumPEs() {
		return nil, fmt.Errorf("dls: CTG characterized for %d PEs, platform has %d",
			g.NumPEs(), acg.NumPEs())
	}
	sl, err := StaticLevels(g)
	if err != nil {
		return nil, err
	}
	meanExec := make([]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(ctg.TaskID(i))
		var times []int64
		for _, r := range task.ExecTime {
			if r >= 0 {
				times = append(times, r)
			}
		}
		meanExec[i] = stats.MeanInt64(times)
	}

	b, _, err := ws.Prepare(g, acg, "dls")
	if err != nil {
		return nil, err
	}
	npe := acg.NumPEs()
	// peFree[k] tracks TF(p): when PE k's committed work ends.
	peFree := make([]int64, npe)

	for b.Committed() < g.NumTasks() {
		rtl := b.ReadyTasks()
		if len(rtl) == 0 {
			return nil, fmt.Errorf("dls: no ready tasks with %d of %d committed",
				b.Committed(), g.NumTasks())
		}
		bestDL := math.Inf(-1)
		bestTask := ctg.TaskID(-1)
		bestPE := -1
		for _, t := range rtl {
			task := g.Task(t)
			for k := 0; k < npe; k++ {
				if !task.RunnableOn(k) {
					continue
				}
				p, err := b.Probe(t, k)
				if err != nil {
					return nil, err
				}
				// max(DA, TF) is the probe's start time by
				// construction (earliest slot after data-ready on the
				// PE table).
				startCost := float64(p.Start)
				if f := float64(peFree[k]); f > startCost {
					startCost = f
				}
				delta := meanExec[t] - float64(task.ExecTime[k])
				dl := sl[t] - startCost + delta
				if dl > bestDL ||
					(dl == bestDL && (t < bestTask || (t == bestTask && k < bestPE))) {
					bestDL, bestTask, bestPE = dl, t, k
				}
			}
		}
		if bestTask < 0 {
			return nil, fmt.Errorf("dls: no schedulable (task, PE) pair")
		}
		p, err := b.Commit(bestTask, bestPE)
		if err != nil {
			return nil, err
		}
		if p.Finish > peFree[bestPE] {
			peFree[bestPE] = p.Finish
		}
	}
	s, err := b.Finish()
	if err != nil {
		return nil, err
	}
	s.Elapsed = time.Since(started)
	return s, nil
}

// StaticLevels returns SL(t) for every task: the largest sum of mean
// execution times along any path from t to a sink, inclusive of t.
func StaticLevels(g *ctg.Graph) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	sl := make([]float64, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		task := g.Task(t)
		var times []int64
		for _, r := range task.ExecTime {
			if r >= 0 {
				times = append(times, r)
			}
		}
		best := 0.0
		for _, s := range g.Succ(t) {
			if sl[s] > best {
				best = sl[s]
			}
		}
		sl[t] = best + stats.MeanInt64(times)
	}
	return sl, nil
}
