package dls

import (
	"testing"

	"nocsched/internal/tgff"
	"nocsched/internal/verify"
)

// TestScheduleOracleConformance cross-checks DLS output against the
// independent conformance oracle. DLS ignores deadlines by design, so
// deadline findings are allowed — but only the exact set the schedule
// itself reports as missed; every structural check must be clean.
func TestScheduleOracleConformance(t *testing.T) {
	acg := rig(t)
	for _, seed := range []int64{3, 31, 91} {
		g, err := tgff.Generate(tgff.Params{
			Name: "oracle", Seed: seed, NumTasks: 40, MaxInDegree: 3,
			LocalityWindow: 8, TaskTypes: 6, ExecMin: 20, ExecMax: 200,
			HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 4096,
			DeadlineLaxity: 1.2, DeadlineFraction: 1,
			Platform: acg.Platform(),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Schedule(g, acg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := verify.Check(s)
		deadline := rep.ByClass(verify.ClassDeadline)
		if structural := len(rep.Findings) - len(deadline); structural > 0 {
			t.Fatalf("seed %d: oracle flags the DLS schedule:\n%s", seed, rep)
		}
		if misses := s.DeadlineMisses(); len(deadline) != len(misses) {
			t.Fatalf("seed %d: %d deadline findings vs %d reported misses",
				seed, len(deadline), len(misses))
		}
	}
}
