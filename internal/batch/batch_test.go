package batch

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"nocsched/internal/dls"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
	"nocsched/internal/verify"
	"nocsched/internal/verify/workloadgen"
)

// corpusInstances builds a mixed-algorithm instance list from the
// workloadgen corpus: every workload runs under each of the three
// schedulers, which also makes consecutive instances on one worker
// alternate graphs and exercise Builder.Reset across shapes.
func corpusInstances(t *testing.T, seed int64) []Instance {
	t.Helper()
	ws, err := workloadgen.Corpus(seed)
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	var instances []Instance
	for _, w := range ws {
		for _, algo := range []string{AlgoEAS, AlgoEDF, AlgoDLS} {
			instances = append(instances, Instance{
				Name:      w.Name + "/" + algo,
				Graph:     w.Graph,
				ACG:       w.ACG,
				Algorithm: algo,
			})
		}
	}
	return instances
}

// serialReference schedules one instance with a fresh builder through
// the plain serial entry points — the ground truth the engine's
// reuse-everything path must match bit for bit.
func serialReference(t *testing.T, inst Instance) *sched.Schedule {
	t.Helper()
	switch inst.Algorithm {
	case AlgoEAS:
		r, err := eas.Schedule(inst.Graph, inst.ACG, inst.EAS)
		if err != nil {
			t.Fatalf("eas.Schedule(%s): %v", inst.Name, err)
		}
		return r.Schedule
	case AlgoEDF:
		s, err := edf.Schedule(inst.Graph, inst.ACG)
		if err != nil {
			t.Fatalf("edf.Schedule(%s): %v", inst.Name, err)
		}
		return s
	case AlgoDLS:
		s, err := dls.Schedule(inst.Graph, inst.ACG)
		if err != nil {
			t.Fatalf("dls.Schedule(%s): %v", inst.Name, err)
		}
		return s
	}
	t.Fatalf("unknown algorithm %q", inst.Algorithm)
	return nil
}

// TestDeterministicAcrossWorkers is the batch determinism oracle: the
// engine must produce bit-identical schedules (sched.Diff) at worker
// counts 1, 2, and 8, and each must match the fresh-builder serial
// reference — proving that neither instance-level parallelism nor
// builder reuse nor shared route plans changes a single decision.
func TestDeterministicAcrossWorkers(t *testing.T) {
	instances := corpusInstances(t, 42)
	refs := make([]*sched.Schedule, len(instances))
	for i, inst := range instances {
		refs[i] = serialReference(t, inst)
	}
	for _, workers := range []int{1, 2, 8} {
		eng := New(Options{Workers: workers})
		results, err := eng.Run(context.Background(), instances)
		if err != nil {
			t.Fatalf("workers=%d: Run: %v", workers, err)
		}
		if len(results) != len(instances) {
			t.Fatalf("workers=%d: %d results for %d instances", workers, len(results), len(instances))
		}
		for i, r := range results {
			if r.Index != i {
				t.Fatalf("workers=%d: result %d carries index %d", workers, i, r.Index)
			}
			if r.Name != instances[i].Name {
				t.Fatalf("workers=%d: result %d is %q, want %q", workers, i, r.Name, instances[i].Name)
			}
			if r.Err != nil {
				t.Fatalf("workers=%d: %s: %v", workers, r.Name, r.Err)
			}
			if d := sched.Diff(refs[i], r.Schedule); d != "" {
				t.Errorf("workers=%d: %s diverges from serial reference:\n%s", workers, r.Name, d)
			}
			if r.Algorithm == AlgoEAS && r.EAS == nil {
				t.Errorf("workers=%d: %s: missing EAS result", workers, r.Name)
			}
		}
	}
}

// TestReuseMatchesFresh runs the same instance list through one engine
// twice on a single worker. The second pass schedules every instance
// through already-warm builders (pure Reset reuse, shared plans, warm
// scratch); its schedules must be bit-identical to the first pass.
func TestReuseMatchesFresh(t *testing.T) {
	instances := corpusInstances(t, 7)
	eng := New(Options{Workers: 1})
	first, err := eng.Run(context.Background(), instances)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	second, err := eng.Run(context.Background(), instances)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	for i := range instances {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("%s: errs %v / %v", instances[i].Name, first[i].Err, second[i].Err)
		}
		if d := sched.Diff(first[i].Schedule, second[i].Schedule); d != "" {
			t.Errorf("%s: warm pass diverges from cold pass:\n%s", instances[i].Name, d)
		}
	}
}

// TestVerifySpotChecks feeds a seeded sample of batch-produced
// schedules through the structural oracle: batch reuse must not
// produce schedules that merely diff-match but violate the paper's
// invariants. Deadline findings are legitimate on the corpus's
// infeasible workloads (DLS ignores deadlines); everything else gates.
func TestVerifySpotChecks(t *testing.T) {
	instances := corpusInstances(t, 99)
	eng := New(Options{Workers: 2})
	results, err := eng.Run(context.Background(), instances)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Seeded sample: every third result, fixed offset.
	for i := 1; i < len(results); i += 3 {
		r := results[i]
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		rep := verify.Check(r.Schedule)
		if structural := len(rep.Findings) - rep.Count(verify.ClassDeadline); structural > 0 {
			t.Errorf("%s: %d structural oracle findings:\n%s", r.Name, structural, rep.String())
		}
	}
}

// TestRunOrderWithStream drives the Stream API directly with a queue
// much smaller than the instance count, checking backpressure admission
// and strict submission-order delivery.
func TestRunOrderWithStream(t *testing.T) {
	instances := corpusInstances(t, 3)
	eng := New(Options{Workers: 4, QueueDepth: 2})
	st := eng.Stream(context.Background())
	go func() {
		defer st.Close()
		for _, inst := range instances {
			if err := st.Submit(inst); err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
		}
	}()
	next := 0
	for r := range st.Results() {
		if r.Index != next {
			t.Fatalf("result index %d, want %d", r.Index, next)
		}
		next++
	}
	if next != len(instances) {
		t.Fatalf("drained %d results, want %d", next, len(instances))
	}
	if st.Submitted() != len(instances) {
		t.Fatalf("Submitted() = %d, want %d", st.Submitted(), len(instances))
	}
}

// TestSubmitAfterClose gates the single-producer contract.
func TestSubmitAfterClose(t *testing.T) {
	eng := New(Options{Workers: 1})
	st := eng.Stream(context.Background())
	st.Close()
	if err := st.Submit(Instance{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	for range st.Results() {
		t.Fatal("unexpected result")
	}
}

// TestCancellation cancels mid-stream: Submit must fail with the
// context's error, already-admitted instances drain as results (some
// possibly carrying ctx.Err()), and Run surfaces the cancellation.
func TestCancellation(t *testing.T) {
	instances := corpusInstances(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(Options{Workers: 2})
	results, err := eng.Run(ctx, instances)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx: err=%v, want context.Canceled", err)
	}
	// Nothing was admitted after the cancel, so at most a few results
	// exist, and any that do must carry the context's error.
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d: err=%v", r.Index, r.Err)
		}
	}

	// Cancel after admission: every admitted instance still yields a
	// result, preserving result-per-submission accounting.
	ctx2, cancel2 := context.WithCancel(context.Background())
	st := eng.Stream(ctx2)
	// Admit only up to the queue's depth so Submit cannot block while
	// nothing drains Results yet (the producer and consumer share this
	// goroutine).
	admitted := 0
	for _, inst := range instances[:4] {
		if err := st.Submit(inst); err != nil {
			break
		}
		admitted++
	}
	cancel2()
	st.Close()
	drained := 0
	for range st.Results() {
		drained++
	}
	if drained != admitted {
		t.Fatalf("drained %d results for %d admitted instances", drained, admitted)
	}
}

// TestUnknownAlgorithm isolates a bad instance: it errors, its
// neighbors schedule normally, and the error counter ticks.
func TestUnknownAlgorithm(t *testing.T) {
	ws, err := workloadgen.Corpus(13)
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	w := ws[0]
	col := telemetry.NewCollector(nil)
	eng := New(Options{Workers: 2, Telemetry: col})
	instances := []Instance{
		{Name: "ok-1", Graph: w.Graph, ACG: w.ACG, Algorithm: AlgoEDF},
		{Name: "bad", Graph: w.Graph, ACG: w.ACG, Algorithm: "simulated-annealing"},
		{Name: "ok-2", Graph: w.Graph, ACG: w.ACG, Algorithm: AlgoDLS},
	}
	results, err := eng.Run(context.Background(), instances)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("neighbor errs: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || results[1].Schedule != nil {
		t.Fatalf("bad instance: err=%v schedule=%v", results[1].Err, results[1].Schedule)
	}
	snap := col.R().Snapshot()
	if got := metricValue(t, snap, MetricErrors); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricErrors, got)
	}
	if got := metricValue(t, snap, MetricInstances); got != 3 {
		t.Fatalf("%s = %d, want 3", MetricInstances, got)
	}
	if got := metricValue(t, snap, MetricQueueDepth); got != 0 {
		t.Fatalf("%s = %d, want 0 after drain", MetricQueueDepth, got)
	}
}

// TestDefaultAlgorithmIsEAS checks the empty-Algorithm default.
func TestDefaultAlgorithmIsEAS(t *testing.T) {
	ws, err := workloadgen.Corpus(21)
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	w := ws[0]
	eng := New(Options{Workers: 1})
	results, err := eng.Run(context.Background(), []Instance{{Name: "default", Graph: w.Graph, ACG: w.ACG}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatalf("default run: %v", r.Err)
	}
	if r.Algorithm != AlgoEAS || r.EAS == nil {
		t.Fatalf("default algorithm = %q (EAS result %v), want eas", r.Algorithm, r.EAS)
	}
	ref, err := eas.Schedule(w.Graph, w.ACG, eas.Options{})
	if err != nil {
		t.Fatalf("eas.Schedule: %v", err)
	}
	if d := sched.Diff(ref.Schedule, r.Schedule); d != "" {
		t.Fatalf("default run diverges from eas.Schedule:\n%s", d)
	}
}

// TestPlanCacheSharesPerACG pins the per-ACG plan cache: same ACG,
// same plan pointer; distinct ACGs, distinct plans.
func TestPlanCacheSharesPerACG(t *testing.T) {
	ws, err := workloadgen.Corpus(31)
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	eng := New(Options{})
	if p1, p2 := eng.Plan(ws[0].ACG), eng.Plan(ws[0].ACG); p1 != p2 {
		t.Fatal("same ACG produced two distinct plans")
	}
	var other *workloadgen.Workload
	for i := range ws[1:] {
		if ws[i+1].ACG != ws[0].ACG {
			other = &ws[i+1]
			break
		}
	}
	if other != nil && eng.Plan(ws[0].ACG) == eng.Plan(other.ACG) {
		t.Fatal("distinct ACGs share one plan")
	}
}

// TestTrySubmitQueueFull pins the typed backpressure contract: a full
// admission queue yields ErrQueueFull (retryable, 429 territory),
// while a cancelled stream yields the context's error (terminal, 503
// territory) — never the other way around.
func TestTrySubmitQueueFull(t *testing.T) {
	insts := corpusInstances(t, 17)
	ctx, cancel := context.WithCancel(context.Background())
	eng := New(Options{Workers: 1, QueueDepth: 2})
	st := eng.Stream(ctx)
	// Fill the 2-deep queue faster than the single worker drains it:
	// non-blocking submits outpace real scheduling work, so ErrQueueFull
	// must appear within a handful of attempts.
	var sawFull bool
	for i := 0; i < 64; i++ {
		err := st.TrySubmit(insts[i%len(insts)])
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("TrySubmit error = %v, want ErrQueueFull", err)
		}
		sawFull = true
		break
	}
	if !sawFull {
		t.Fatal("never saw ErrQueueFull after 64 non-blocking submits into a 2-deep queue")
	}
	// Cancellation converts rejections to the context's error — even
	// while the queue is still full.
	cancel()
	err := st.TrySubmit(insts[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TrySubmit after cancel = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("cancelled TrySubmit must not report ErrQueueFull")
	}
	st.Close()
	for range st.Results() {
	}
	// And after Close, the error is ErrClosed.
	if err := st.TrySubmit(insts[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrClosed", err)
	}
}

// TestTrySubmitDelivers confirms TrySubmit-admitted instances flow to
// Results exactly like Submit-admitted ones (ordering included).
func TestTrySubmitDelivers(t *testing.T) {
	insts := corpusInstances(t, 19)[:4]
	eng := New(Options{Workers: 2, QueueDepth: 8})
	st := eng.Stream(context.Background())
	admitted := 0
	for _, inst := range insts {
		if err := st.TrySubmit(inst); err != nil {
			t.Fatalf("TrySubmit: %v", err)
		}
		admitted++
	}
	st.Close()
	next := 0
	for r := range st.Results() {
		if r.Index != next {
			t.Fatalf("result index %d, want %d", r.Index, next)
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if d := sched.Diff(serialReference(t, insts[r.Index]), r.Schedule); d != "" {
			t.Fatalf("%s diverged from serial reference:\n%s", r.Name, d)
		}
		next++
	}
	if next != admitted {
		t.Fatalf("delivered %d results for %d admissions", next, admitted)
	}
}

// TestDropPlan pins the daemon-facing eviction hook: dropping an ACG
// releases its plan (a fresh Plan call builds a new one) and dropping
// an unknown ACG is a no-op.
func TestDropPlan(t *testing.T) {
	ws, err := workloadgen.Corpus(37)
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	eng := New(Options{})
	p1 := eng.Plan(ws[0].ACG)
	eng.DropPlan(ws[0].ACG)
	if p2 := eng.Plan(ws[0].ACG); p1 == p2 {
		t.Fatal("DropPlan did not release the cached plan")
	}
	eng.DropPlan(ws[0].ACG)
	eng.DropPlan(ws[0].ACG) // idempotent, unknown-after-drop is fine
}

func metricValue(t *testing.T, snap telemetry.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	for _, g := range snap.Gauges {
		if g.Name == name {
			return int64(g.Value)
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return 0
}

// ExampleEngine_Run demonstrates the batch API end to end.
func ExampleEngine_Run() {
	ws, err := workloadgen.Corpus(1)
	if err != nil {
		panic(err)
	}
	eng := New(Options{Workers: 2})
	results, err := eng.Run(context.Background(), []Instance{
		{Name: "edf", Graph: ws[0].Graph, ACG: ws[0].ACG, Algorithm: AlgoEDF},
		{Name: "dls", Graph: ws[0].Graph, ACG: ws[0].ACG, Algorithm: AlgoDLS},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Println(r.Index, r.Name, r.Err == nil)
	}
	// Output:
	// 0 edf true
	// 1 dls true
}
