// Package batch is the throughput-oriented scheduling engine: it
// accepts a stream of independent scheduling instances (graph +
// platform + algorithm + options), fans them out over a fixed worker
// pool with bounded admission queueing and context cancellation, and
// delivers results in deterministic submission order.
//
// The engine makes the same guarantee one level up that sched.ProbePool
// makes inside a single instance: schedules are bit-identical
// (sched.Diff) at any worker count, and identical to what the serial
// drivers produce with fresh builders. Three mechanisms carry the
// throughput:
//
//   - instance-level parallelism: each worker schedules whole instances
//     end to end, so N workers keep N cores busy without any
//     cross-instance synchronization beyond the queue;
//   - builder reuse: each worker owns one sched.Workspace whose builder
//     is Reset between instances, so the PE/link tables, journal, route
//     cache and probe scratch are allocated once per worker, not once
//     per instance;
//   - shared route plans: the engine precomputes one immutable
//     sched.RoutePlan per distinct ACG and hands it to every worker,
//     replacing one lazily-filled route cache per builder with a single
//     read-only table per platform.
//
// Inside each worker the probe pool defaults to one probe worker with
// the auto sequential-floor policy (sched.DefaultSequentialFloor):
// when instances are fanned out across cores, nested probe-level
// parallelism would only oversubscribe the machine, and the policy
// keeps small instances on the cheap sequential path either way.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/dls"
	"nocsched/internal/eas"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
)

// Algorithm names accepted by Instance.Algorithm.
const (
	AlgoEAS = "eas"
	AlgoEDF = "edf"
	AlgoDLS = "dls"
)

// Instance is one independent scheduling problem submitted to the
// engine. Graph and ACG are read-only while the engine runs; distinct
// instances may share both (the common sweep shape: one platform, many
// graphs).
type Instance struct {
	// Name labels the instance in results; the engine does not
	// interpret it.
	Name string
	// Graph is the communication task graph to schedule.
	Graph *ctg.Graph
	// ACG is the architecture characterization graph of the target
	// platform.
	ACG *energy.ACG
	// Algorithm selects the scheduler: AlgoEAS (the default when
	// empty), AlgoEDF, or AlgoDLS.
	Algorithm string
	// EAS forwards scheduler options to EAS runs. Workers and
	// LegacyProbe are ignored (the engine's worker configuration wins),
	// and Telemetry is overridden by the engine's collector when one is
	// set.
	EAS eas.Options
}

// Result is the outcome of one instance, delivered in submission
// order.
type Result struct {
	// Index is the submission index (0-based); results arrive with
	// strictly ascending indices.
	Index int
	// Name and Algorithm echo the instance.
	Name      string
	Algorithm string
	// Schedule is nil exactly when Err is non-nil.
	Schedule *sched.Schedule
	// EAS carries the full EAS result (budget, repair stats, probe
	// totals) for EAS instances; nil for other algorithms.
	EAS *eas.Result
	// Err is the scheduler's error, or the context's error for
	// instances drained after cancellation.
	Err error
	// Latency is the wall-clock scheduling time of this instance on
	// its worker (queueing time excluded).
	Latency time.Duration
	// Worker identifies the worker that ran the instance — useful in
	// traces, never load-bearing (any assignment yields identical
	// schedules).
	Worker int
}

// Options configures an Engine.
type Options struct {
	// Workers is the instance-level parallelism; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; Submit blocks (or fails
	// with the context's error) once this many instances are waiting.
	// <= 0 selects 2*Workers.
	QueueDepth int
	// InnerWorkers is the probe-level worker count inside each
	// instance; <= 0 selects 1 (the recommended setting: instance-level
	// fan-out already saturates the machine, and the probe pool's
	// sequential floor handles small instances regardless).
	InnerWorkers int
	// Telemetry publishes the engine's metrics (queue depth gauge,
	// per-instance latency histogram, instance/error counters) and is
	// forwarded to every scheduler run. Nil disables collection.
	Telemetry *telemetry.Collector
}

// Batch telemetry metric names (see the README metric catalog).
const (
	// MetricQueueDepth gauges the number of admitted instances not yet
	// picked up by a worker (instances).
	MetricQueueDepth = "batch_queue_depth"
	// MetricInstances counts completed instances, errors included
	// (count) — with a timestamped scrape this is the instances/sec
	// throughput series.
	MetricInstances = "batch_instances_total"
	// MetricErrors counts instances whose scheduler returned an error
	// (count).
	MetricErrors = "batch_errors_total"
	// MetricLatency is the per-instance scheduling latency histogram
	// (microseconds, queueing excluded).
	MetricLatency = "batch_instance_latency_us"
)

// latencyBounds is the fixed bucket layout of MetricLatency (µs).
var latencyBounds = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000}

// LatencyBuckets returns a copy of the fixed MetricLatency bucket
// layout (µs), so consumers that quantize latencies the same way the
// engine does (cmd/batchbench percentiles, dashboards scraping the
// exposition) can build compatible histograms.
func LatencyBuckets() []int64 { return append([]int64(nil), latencyBounds...) }

// Engine schedules batches of instances. One Engine may run any number
// of streams (sequentially or concurrently); the per-ACG route-plan
// cache persists across them.
type Engine struct {
	opts Options

	planMu sync.Mutex
	plans  map[*energy.ACG]*sched.RoutePlan

	mDepth     *telemetry.Gauge
	mInstances *telemetry.Counter
	mErrors    *telemetry.Counter
	mLatency   *telemetry.Histogram
}

// New returns an Engine with the options' defaults resolved.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	if opts.InnerWorkers <= 0 {
		opts.InnerWorkers = 1
	}
	e := &Engine{opts: opts, plans: make(map[*energy.ACG]*sched.RoutePlan)}
	if r := opts.Telemetry.R(); r != nil {
		e.mDepth = r.Gauge(MetricQueueDepth)
		e.mInstances = r.Counter(MetricInstances)
		e.mErrors = r.Counter(MetricErrors)
		e.mLatency = r.Histogram(MetricLatency, latencyBounds)
	}
	return e
}

// Workers returns the engine's resolved instance-level worker count.
func (e *Engine) Workers() int { return e.opts.Workers }

// Plan returns the engine's shared route plan for the ACG, computing
// it on first use. Safe for concurrent use; the returned plan is
// immutable.
func (e *Engine) Plan(acg *energy.ACG) *sched.RoutePlan {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	p := e.plans[acg]
	if p == nil {
		p = sched.NewRoutePlan(acg)
		e.plans[acg] = p
	}
	return p
}

// DropPlan forgets the engine's cached route plan for acg. Long-lived
// engines fed by callers that churn through platforms (the scheduling
// daemon's ACG cache) use it to keep the plan map — which would
// otherwise pin every ACG ever seen — bounded. Dropping an ACG that
// was never planned is a no-op; in-flight workers holding the old plan
// keep working (plans are immutable).
func (e *Engine) DropPlan(acg *energy.ACG) {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	delete(e.plans, acg)
}

// job tags an instance with its submission index.
type job struct {
	idx  int
	inst Instance
}

// Stream is one batch run: instances go in through Submit, results
// come out of Results in submission order. A Stream has a single
// producer (Submit/Close are not safe for concurrent use); results may
// be consumed from any one goroutine. The consumer must drain Results
// until it closes — abandoning the channel would eventually block the
// workers.
type Stream struct {
	e         *Engine
	ctx       context.Context
	in        chan job
	out       chan Result
	submitted int
	closed    bool
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("batch: stream closed")

// ErrQueueFull is returned by TrySubmit when the admission queue
// cannot take another instance without blocking. It is distinct from
// the context errors Submit and TrySubmit return after cancellation,
// so a caller applying backpressure (e.g. an HTTP daemon) can tell
// "retry later" (queue full → 429) from "stop submitting" (canceled →
// 503) without string matching.
var ErrQueueFull = errors.New("batch: admission queue full")

// Stream starts the engine's workers and returns a stream to feed.
// Cancelling the context fails further Submits and makes the workers
// drain remaining queued instances as errored results (so the
// result-per-submission accounting survives cancellation).
func (e *Engine) Stream(ctx context.Context) *Stream {
	s := &Stream{
		e:   e,
		ctx: ctx,
		in:  make(chan job, e.opts.QueueDepth),
		out: make(chan Result, e.opts.QueueDepth),
	}
	done := make(chan Result, e.opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.worker(ctx, id, s.in, done)
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	go reorder(done, s.out)
	return s
}

// Submit admits one instance, blocking while the queue is full. It
// fails with the context's error once the stream's context is
// cancelled, and with ErrClosed after Close.
func (s *Stream) Submit(inst Instance) error {
	if s.closed {
		return ErrClosed
	}
	j := job{idx: s.submitted, inst: inst}
	select {
	case <-s.ctx.Done():
		return s.ctx.Err()
	default:
	}
	select {
	case s.in <- j:
		s.submitted++
		s.e.mDepth.Add(1)
		return nil
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

// TrySubmit admits one instance without blocking: where Submit waits
// for a queue slot, TrySubmit fails fast with ErrQueueFull when the
// admission queue is at capacity. Like Submit it returns the context's
// error once the stream's context is cancelled and ErrClosed after
// Close, so the three rejection causes stay typed and distinguishable.
func (s *Stream) TrySubmit(inst Instance) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.ctx.Err(); err != nil {
		return err
	}
	j := job{idx: s.submitted, inst: inst}
	select {
	case s.in <- j:
		s.submitted++
		s.e.mDepth.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Close ends admission. Results for everything already submitted keep
// flowing; Results closes once the last of them is delivered.
func (s *Stream) Close() {
	if !s.closed {
		s.closed = true
		close(s.in)
	}
}

// Results returns the ordered result channel. It closes after Close
// once every submitted instance has been delivered.
func (s *Stream) Results() <-chan Result { return s.out }

// Submitted returns how many instances have been admitted so far.
func (s *Stream) Submitted() int { return s.submitted }

// reorder restores submission order: workers finish out of order, the
// reorder buffer holds early results until their predecessors arrive.
// Bounded by the number of in-flight instances (queue + workers).
func reorder(done <-chan Result, out chan<- Result) {
	pending := make(map[int]Result)
	next := 0
	for r := range done {
		pending[r.Index] = r
		for {
			nr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			out <- nr
		}
	}
	close(out)
}

// worker owns one Workspace and drains the admission queue through it.
func (e *Engine) worker(ctx context.Context, id int, in <-chan job, done chan<- Result) {
	ws := sched.NewWorkspace(e.opts.InnerWorkers, false)
	var lastACG *energy.ACG
	for j := range in {
		e.mDepth.Add(-1)
		r := Result{Index: j.idx, Name: j.inst.Name, Algorithm: j.inst.Algorithm, Worker: id}
		if r.Algorithm == "" {
			r.Algorithm = AlgoEAS
		}
		if err := ctx.Err(); err != nil {
			r.Err = err
		} else {
			if j.inst.ACG != lastACG {
				ws.SetRoutePlan(e.Plan(j.inst.ACG))
				lastACG = j.inst.ACG
			}
			started := time.Now()
			r.Schedule, r.EAS, r.Err = e.schedule(ws, &j.inst)
			r.Latency = time.Since(started)
			e.mLatency.Observe(r.Latency.Microseconds())
			if r.Err != nil {
				e.mErrors.Inc()
			}
		}
		e.mInstances.Inc()
		done <- r
	}
}

// schedule dispatches one instance through the worker's workspace.
func (e *Engine) schedule(ws *sched.Workspace, inst *Instance) (*sched.Schedule, *eas.Result, error) {
	switch inst.Algorithm {
	case "", AlgoEAS:
		o := inst.EAS
		if e.opts.Telemetry != nil {
			o.Telemetry = e.opts.Telemetry
		}
		r, err := eas.ScheduleWith(ws, inst.Graph, inst.ACG, o)
		if err != nil {
			return nil, nil, err
		}
		return r.Schedule, r, nil
	case AlgoEDF:
		s, err := edf.ScheduleWith(ws, inst.Graph, inst.ACG, edf.Options{Telemetry: e.opts.Telemetry})
		return s, nil, err
	case AlgoDLS:
		s, err := dls.ScheduleWith(ws, inst.Graph, inst.ACG)
		return s, nil, err
	default:
		return nil, nil, fmt.Errorf("batch: unknown algorithm %q", inst.Algorithm)
	}
}

// Run is the convenience wrapper for a known instance list: it streams
// every instance through the engine and collects the ordered results.
// On cancellation it returns the context's error along with whatever
// results were produced (instances drained after the cancel carry the
// context's error in Result.Err).
func (e *Engine) Run(ctx context.Context, instances []Instance) ([]Result, error) {
	st := e.Stream(ctx)
	go func() {
		defer st.Close()
		for _, inst := range instances {
			if st.Submit(inst) != nil {
				return
			}
		}
	}()
	results := make([]Result, 0, len(instances))
	for r := range st.Results() {
		results = append(results, r)
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}
