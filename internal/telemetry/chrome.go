package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeSink writes the Chrome trace_event "JSON array format": one
// top-level array of event objects, loadable in chrome://tracing and
// Perfetto. Each distinct Event.Track becomes one named thread (a
// thread_name metadata record is emitted on first appearance), so a
// schedule rendered with one track per PE and per link shows up as a
// Gantt chart with one row per resource.
//
// The sink follows the surfaced-error contract: the first write error
// is recorded, later Emits are dropped, and Err/Close return it.
type ChromeSink struct {
	w      io.Writer
	err    error
	n      int            // events written, for comma placement
	tracks map[string]int // track name -> tid
	closed bool
}

// chromeEvent is the wire shape of one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromePid is the single process id all tracks live under.
const chromePid = 1

// NewChromeSink starts a trace_event array on w; a nil writer yields a
// nil (no-op) sink.
func NewChromeSink(w io.Writer) *ChromeSink {
	if w == nil {
		return nil
	}
	s := &ChromeSink{w: w, tracks: make(map[string]int)}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		s.err = err
	}
	s.writeRaw(chromeEvent{Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "nocsched"}})
	return s
}

// DeclareTrack assigns (and names) a track before any event lands on
// it, so resources that stay idle still appear in the viewer — the "one
// track per PE and per link" guarantee for empty rows.
func (s *ChromeSink) DeclareTrack(name string) {
	if s == nil {
		return
	}
	s.tid(name)
}

// tid resolves a track name to its thread id, emitting the thread_name
// metadata record on first use. Tids are assigned in first-declared
// order, which the schedule renderer uses to keep PE rows above link
// rows.
func (s *ChromeSink) tid(track string) int {
	if id, ok := s.tracks[track]; ok {
		return id
	}
	id := len(s.tracks) + 1
	s.tracks[track] = id
	s.writeRaw(chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: id,
		Args: map[string]any{"name": track}})
	// thread_sort_index pins the viewer's row order to declaration
	// order instead of first-event time.
	s.writeRaw(chromeEvent{Name: "thread_sort_index", Ph: "M", Pid: chromePid, Tid: id,
		Args: map[string]any{"sort_index": id}})
	return id
}

// Emit writes one tracer event.
func (s *ChromeSink) Emit(e *Event) {
	if s == nil || s.err != nil || s.closed {
		return
	}
	ce := chromeEvent{Name: e.Name, Ts: e.Ts, Pid: chromePid, Tid: s.tid(e.Track)}
	switch e.Kind {
	case 'I':
		ce.Ph = "i"
		ce.Args = map[string]any{"s": "t"}
	default: // 'X' and anything unrecognized render as complete slices
		ce.Ph = "X"
		ce.Dur = e.Dur
		if ce.Dur < 0 {
			ce.Dur = 0
		}
	}
	s.writeRaw(ce)
}

// writeRaw marshals and appends one record to the array.
func (s *ChromeSink) writeRaw(ce chromeEvent) {
	if s.err != nil || s.closed {
		return
	}
	b, err := json.Marshal(ce)
	if err != nil {
		s.err = fmt.Errorf("telemetry: chrome event marshal: %w", err)
		return
	}
	sep := ",\n"
	if s.n == 0 {
		sep = ""
	}
	if _, err := fmt.Fprintf(s.w, "%s%s", sep, b); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Err returns the first write error, nil for a healthy or nil sink.
func (s *ChromeSink) Err() error {
	if s == nil {
		return nil
	}
	return s.err
}

// Close terminates the JSON array and returns the first error. The
// underlying writer is the caller's to close. Closing twice is safe.
func (s *ChromeSink) Close() error {
	if s == nil {
		return nil
	}
	if !s.closed {
		s.closed = true
		if s.err == nil {
			if _, err := io.WriteString(s.w, "\n]\n"); err != nil {
				s.err = err
			}
		}
	}
	return s.err
}
