package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// errWriter fails every write after the first n bytes succeeded.
type errWriter struct {
	n       int
	written int
	err     error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, w.err
	}
	w.written += len(p)
	return len(p), nil
}

func TestJSONLSinkEmitsLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(&Event{Name: "a", Track: "t", Kind: 'X', Ts: 1, Dur: 2})
	s.EmitValue(map[string]int{"x": 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Errorf("line is not valid JSON: %q", l)
		}
	}
}

func TestJSONLSinkSurfacesFirstError(t *testing.T) {
	wantErr := errors.New("pipe broke")
	s := NewJSONLSink(&errWriter{n: 0, err: wantErr})
	s.Emit(&Event{Name: "a"})
	s.Emit(&Event{Name: "b"}) // dropped, must not overwrite the error
	if !errors.Is(s.Err(), wantErr) {
		t.Errorf("Err = %v, want %v", s.Err(), wantErr)
	}
	if !errors.Is(s.Close(), wantErr) {
		t.Errorf("Close = %v, want %v", s.Close(), wantErr)
	}
}

func TestJSONLSinkNil(t *testing.T) {
	s := NewJSONLSink(nil)
	if s != nil {
		t.Fatal("nil writer should yield a nil sink")
	}
	s.Emit(&Event{}) // no panic
	s.EmitValue(1)
	if s.Err() != nil || s.Close() != nil {
		t.Error("nil sink reported an error")
	}
}

func TestChromeSinkValidTrace(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.DeclareTrack("PE 0 (RISC)")
	s.DeclareTrack("link 0->1") // stays idle: must still be named
	s.Emit(&Event{Name: "t0", Track: "PE 0 (RISC)", Kind: 'X', Ts: 0, Dur: 10})
	s.Emit(&Event{Name: "mark", Track: "PE 0 (RISC)", Kind: 'I', Ts: 5})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}
	if n != 2 {
		t.Errorf("non-metadata events = %d, want 2", n)
	}
	// The idle declared track still has its thread_name record.
	if !strings.Contains(buf.String(), "link 0-\\u003e1") && !strings.Contains(buf.String(), "link 0->1") {
		t.Errorf("idle track missing from trace:\n%s", buf.String())
	}
}

// TestChromeSinkTrackOrder pins tid assignment to declaration order:
// the schedule renderer relies on it to keep PE rows above link rows.
func TestChromeSinkTrackOrder(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.DeclareTrack("PE 0")
	s.DeclareTrack("PE 1")
	s.DeclareTrack("link 0->1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string         `json:"name"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"PE 0": 1, "PE 1": 2, "link 0->1": 3}
	for _, e := range events {
		if e.Name != "thread_name" {
			continue
		}
		name, _ := e.Args["name"].(string)
		if want[name] != 0 && e.Tid != want[name] {
			t.Errorf("track %q got tid %d, want %d", name, e.Tid, want[name])
		}
	}
}

func TestChromeSinkNegativeDurClamped(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(&Event{Name: "bad", Track: "t", Kind: 'X', Ts: 1, Dur: -5})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("clamped trace fails validation: %v", err)
	}
}

func TestChromeSinkSurfacesWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	s := NewChromeSink(&errWriter{n: 2, err: wantErr}) // the opening "[\n" fits, nothing else
	s.Emit(&Event{Name: "a", Track: "t", Kind: 'X'})
	if !errors.Is(s.Err(), wantErr) {
		t.Errorf("Err = %v, want %v", s.Err(), wantErr)
	}
	if !errors.Is(s.Close(), wantErr) {
		t.Errorf("Close = %v, want %v", s.Close(), wantErr)
	}
}

func TestChromeSinkCloseTwice(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Error("second Close wrote more bytes")
	}
	s.Emit(&Event{Name: "late", Track: "t"}) // after Close: dropped, no panic
	if buf.Len() != n {
		t.Error("Emit after Close wrote bytes")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	bad := []struct {
		name, doc string
	}{
		{"not an array", `{"name":"x"}`},
		{"trailing data", `[] []`},
		{"missing name", `[{"ph":"X","ts":0,"pid":1,"tid":1}]`},
		{"unknown phase", `[{"name":"a","ph":"Q","pid":1,"tid":1}]`},
		{"negative ts", `[{"name":"tn","ph":"M","pid":1,"tid":1,"args":{"name":"t"}},{"name":"a","ph":"X","ts":-1,"pid":1,"tid":1}]`},
		{"unnamed tid", `[{"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":7}]`},
	}
	for _, c := range bad {
		if _, err := ValidateChromeTrace(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTracerSpanAndInstant(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	end := tr.Span("phase", "track")
	tr.Instant("mark", "track")
	end()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d events, want 2: %q", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Name != "phase" || ev.Kind != 'X' || ev.Dur < 0 {
		t.Errorf("span event: %+v", ev)
	}
}

func TestNilTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer claims enabled")
	}
	// Span and Instant are the calls on scheduler hot paths; Emit takes
	// its Event by value whose address escapes into the sink call, so it
	// is excluded from the zero-alloc guarantee.
	allocs := testing.AllocsPerRun(100, func() {
		end := tr.Span("x", "y")
		end()
		tr.Instant("x", "y")
	})
	if allocs != 0 {
		t.Errorf("nil tracer allocates %.1f per run, want 0", allocs)
	}
}

func TestNilCollector(t *testing.T) {
	var c *Collector
	if c.R() != nil || c.T() != nil {
		t.Error("nil collector handed out non-nil halves")
	}
}
