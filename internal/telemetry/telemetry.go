// Package telemetry is the unified observability layer of this
// repository: a zero-dependency, allocation-conscious metrics registry
// (counters, gauges, histograms with fixed bucket layouts, dense counter
// grids for per-PE-pair and per-link data) plus a structured event
// tracer with pluggable sinks (JSONL and the Chrome trace_event format
// loadable in chrome://tracing and Perfetto).
//
// Two properties shape the design:
//
//   - Disabled telemetry must cost (almost) nothing on hot paths. Every
//     metric handle and the tracer are nil-safe: calling Add/Observe/
//     Emit on a nil receiver is a no-op, so instrumented code stores
//     pre-resolved handles and pays one nil check per update — no map
//     lookups, no interface boxing, no allocation. The scheduler's
//     zero-alloc probe guard (internal/sched TestProbeZeroAllocs*)
//     covers both the nil and the enabled path.
//
//   - Errors must surface, not vanish. Sinks record the first write
//     error and return it from Err/Close; emitting after a failure is a
//     cheap no-op. Callers report that error (the simulator exposes it
//     as Result.TraceErr; the CLI diag session returns it from Close).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric, safe for
// concurrent use. A nil *Counter is a valid no-op handle.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (no-op on a nil receiver).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding a last-written value, safe for
// concurrent use. A nil *Gauge is a valid no-op handle.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on a nil receiver).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add atomically adds d to the gauge (no-op on a nil receiver).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Histogram is a fixed-layout histogram over int64 observations: bucket
// i counts values v with v <= Bounds[i] (and > Bounds[i-1]); one extra
// overflow bucket counts values above the last bound. The layout is
// fixed at registration so Observe is a binary search plus two atomic
// adds — no allocation. A nil *Histogram is a valid no-op handle.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	n      atomic.Int64
	sum    atomic.Int64
}

// NewHistogram builds a standalone histogram with the given ascending
// upper bounds (useful outside a Registry, e.g. in tests).
func NewHistogram(bounds []int64) (*Histogram, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("telemetry: histogram bounds not ascending at %d: %v", i, bounds)
		}
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bound")
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}, nil
}

// Observe records one value (no-op on a nil receiver).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 for a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// CounterGrid is a dense rows x cols matrix of counters — the shape of
// per-PE-pair and per-link metrics — updated with one atomic add and no
// per-update lookup or allocation. A nil *CounterGrid is a valid no-op
// handle; out-of-range indices are ignored rather than panicking, so a
// degraded platform's stray index cannot crash an instrumented run.
type CounterGrid struct {
	rows, cols int
	cells      []atomic.Int64
}

// Add increments cell (r, c) by d.
func (g *CounterGrid) Add(r, c int, d int64) {
	if g == nil || r < 0 || r >= g.rows || c < 0 || c >= g.cols {
		return
	}
	g.cells[r*g.cols+c].Add(d)
}

// Value returns cell (r, c), 0 when nil or out of range.
func (g *CounterGrid) Value(r, c int) int64 {
	if g == nil || r < 0 || r >= g.rows || c < 0 || c >= g.cols {
		return 0
	}
	return g.cells[r*g.cols+c].Load()
}

// Registry is a concurrency-safe collection of named metrics. Metric
// accessors get-or-create: repeated registration under one name returns
// the same handle (with the first registration's layout), so library
// code can resolve handles without coordinating ownership. All methods
// are valid on a nil *Registry and return nil handles, which makes "no
// telemetry configured" the zero-cost default everywhere.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	grids    map[string]*CounterGrid
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		grids:    make(map[string]*CounterGrid),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use. Later registrations under
// the same name ignore their bounds argument and return the existing
// layout. Invalid bounds on first registration return a nil (no-op)
// handle rather than an error: a misconfigured metric must not take the
// scheduler down.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h, err := NewHistogram(bounds)
	if err != nil {
		return nil
	}
	r.hists[name] = h
	return h
}

// Grid returns the named rows x cols counter grid, creating it on first
// use. Later registrations return the existing grid regardless of the
// requested shape; non-positive dimensions yield a nil (no-op) handle.
func (r *Registry) Grid(name string, rows, cols int) *CounterGrid {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.grids[name]; ok {
		return g
	}
	if rows <= 0 || cols <= 0 {
		return nil
	}
	g := &CounterGrid{rows: rows, cols: cols, cells: make([]atomic.Int64, rows*cols)}
	r.grids[name] = g
	return g
}

// ---------------------------------------------------------------------
// Snapshots.

// CounterSample is one counter in a snapshot.
type CounterSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSample is one gauge in a snapshot.
type GaugeSample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSample is one histogram in a snapshot: Counts[i] pairs with
// Bounds[i] (observations <= Bounds[i]); the final Counts entry is the
// overflow bucket (observations above the last bound).
type HistogramSample struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// Sample captures the histogram's current state under the given name
// (what Registry.Snapshot does for registered histograms, usable on a
// standalone histogram too). A nil receiver yields an empty sample.
func (h *Histogram) Sample(name string) HistogramSample {
	hs := HistogramSample{Name: name}
	if h == nil {
		return hs
	}
	hs.Count = h.Count()
	hs.Sum = h.Sum()
	hs.Bounds = append([]int64(nil), h.bounds...)
	hs.Counts = make([]int64, len(h.counts))
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the sampled
// distribution by nearest rank over the bucket counts: it returns the
// upper bound of the bucket holding the ceil(q*count)-th observation —
// an upper bound on the true quantile, exact when observations sit on
// bucket bounds. Observations that landed in the overflow bucket are
// clamped to the last finite bound (a lower bound on the true value,
// like Prometheus's histogram_quantile). An empty sample returns 0; q
// is clamped to [0, 1].
func (h HistogramSample) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.Counts {
		cum += n
		if cum >= rank {
			if i >= len(h.Bounds) {
				break // overflow bucket: clamp below
			}
			return float64(h.Bounds[i])
		}
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// GridCell is one non-zero cell of a grid snapshot.
type GridCell struct {
	Row   int   `json:"row"`
	Col   int   `json:"col"`
	Value int64 `json:"value"`
}

// GridSample is one counter grid in a snapshot; only non-zero cells are
// materialized (NoC grids are sparse: most PE pairs never talk).
type GridSample struct {
	Name  string     `json:"name"`
	Rows  int        `json:"rows"`
	Cols  int        `json:"cols"`
	Cells []GridCell `json:"cells"`
}

// Total sums the grid's cells.
func (g *GridSample) Total() int64 {
	var t int64
	for _, c := range g.Cells {
		t += c.Value
	}
	return t
}

// Snapshot is a point-in-time copy of a registry's metrics — the unit
// the run reports, the JSON export, and the Prometheus exposition
// (internal/obs) are built from.
//
// Ordering is a guarantee, not an accident: within each kind the
// samples are sorted ascending by name, and a histogram's buckets and a
// grid's non-zero cells appear in their natural (bound, row-major)
// order. Two snapshots of the same registry state therefore encode to
// identical bytes, which makes /metrics scrapes and JSONL time-series
// diffable. TestSnapshotOrderingDeterministic pins this down.
type Snapshot struct {
	Counters   []CounterSample   `json:"counters"`
	Gauges     []GaugeSample     `json:"gauges"`
	Histograms []HistogramSample `json:"histograms"`
	Grids      []GridSample      `json:"grids"`
}

// Snapshot captures the registry's current values. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSample{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.Sample(name))
	}
	for name, g := range r.grids {
		gs := GridSample{Name: name, Rows: g.rows, Cols: g.cols}
		for i := range g.cells {
			if v := g.cells[i].Load(); v != 0 {
				gs.Cells = append(gs.Cells, GridCell{Row: i / g.cols, Col: i % g.cols, Value: v})
			}
		}
		s.Grids = append(s.Grids, gs)
	}
	sort.Slice(s.Counters, func(a, b int) bool { return s.Counters[a].Name < s.Counters[b].Name })
	sort.Slice(s.Gauges, func(a, b int) bool { return s.Gauges[a].Name < s.Gauges[b].Name })
	sort.Slice(s.Histograms, func(a, b int) bool { return s.Histograms[a].Name < s.Histograms[b].Name })
	sort.Slice(s.Grids, func(a, b int) bool { return s.Grids[a].Name < s.Grids[b].Name })
	return s
}

// WriteJSON writes the snapshot as one indented JSON document (the
// -metrics-out format; ValidateSnapshot checks it).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the human-readable run report appended to CLI
// output: counters and gauges one per line, histograms with their
// bucket layout, grids as their top cells by value.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "  %-36s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "  %-36s %.3f\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		if _, err := fmt.Fprintf(w, "  %-36s count=%d sum=%d mean=%.2f\n", h.Name, h.Count, h.Sum, mean); err != nil {
			return err
		}
		for i, n := range h.Counts {
			if n == 0 {
				continue
			}
			label := "+inf"
			if i < len(h.Bounds) {
				label = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "    le %-8s %d\n", label, n); err != nil {
				return err
			}
		}
	}
	for _, g := range s.Grids {
		if _, err := fmt.Fprintf(w, "  %-36s %dx%d, total %d\n", g.Name, g.Rows, g.Cols, g.Total()); err != nil {
			return err
		}
		for _, cell := range topCells(g.Cells, 5) {
			if _, err := fmt.Fprintf(w, "    [%d,%d] %d\n", cell.Row, cell.Col, cell.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// topCells returns the n largest cells by value (ties to the lower
// row/col), without mutating the input.
func topCells(cells []GridCell, n int) []GridCell {
	out := append([]GridCell(nil), cells...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value > out[b].Value
		}
		if out[a].Row != out[b].Row {
			return out[a].Row < out[b].Row
		}
		return out[a].Col < out[b].Col
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
