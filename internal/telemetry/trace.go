package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// Event is one structured tracer record. Ts and Dur are in the
// tracer's timebase: microseconds since the tracer epoch for wall-clock
// spans, schedule time units for schedule renderings (Chrome viewers
// display both as "µs" — only the unit label differs).
type Event struct {
	// Name labels the slice or instant ("step2:level", "t17", "e5").
	Name string `json:"name"`
	// Track is the logical row the event renders on ("PE 3 (DSP)",
	// "link 2->5", "phases"). The Chrome sink maps each distinct track
	// to one named thread.
	Track string `json:"track"`
	// Kind is the Chrome phase: 'X' complete slice, 'I' instant.
	Kind byte `json:"kind"`
	// Ts is the event start; Dur the slice length ('X' only).
	Ts  int64 `json:"ts"`
	Dur int64 `json:"dur,omitempty"`
}

// Sink consumes tracer events. Implementations follow the
// surfaced-error contract: the first write error is recorded, later
// Emits become no-ops, and Err/Close return that first error — nothing
// is silently dropped without a way to find out.
type Sink interface {
	Emit(e *Event)
	// Err returns the first write error, or nil.
	Err() error
	// Close flushes and returns the first error (write or close).
	Close() error
}

// Tracer emits spans and instants into a sink. A nil *Tracer is the
// no-op default: every method returns immediately after one nil check,
// so un-traced hot paths cost nothing and allocate nothing (guarded by
// the zero-alloc tests).
type Tracer struct {
	sink  Sink
	epoch time.Time
}

// NewTracer wraps a sink; a nil sink yields a nil (no-op) tracer.
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, epoch: time.Now()}
}

// Enabled reports whether events reach a sink.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit forwards one pre-built event (no-op on a nil tracer).
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.sink.Emit(&e)
}

// now returns microseconds since the tracer epoch.
func (t *Tracer) now() int64 { return time.Since(t.epoch).Microseconds() }

// noopEnd is the shared closure Span returns on a nil tracer, so
// disabled spans do not allocate.
var noopEnd = func() {}

// Span starts a wall-clock slice on a track and returns the function
// that ends it; call it exactly once (defer is the usual shape). On a
// nil tracer it returns a shared no-op.
func (t *Tracer) Span(name, track string) func() {
	if t == nil {
		return noopEnd
	}
	start := t.now()
	return func() {
		t.sink.Emit(&Event{Name: name, Track: track, Kind: 'X', Ts: start, Dur: t.now() - start})
	}
}

// Instant emits a zero-duration wall-clock marker on a track.
func (t *Tracer) Instant(name, track string) {
	if t == nil {
		return
	}
	t.sink.Emit(&Event{Name: name, Track: track, Kind: 'I', Ts: t.now()})
}

// Collector bundles the two halves of the telemetry layer — a metrics
// registry and a tracer — into the single optional handle the
// schedulers, the fault-recovery path and the simulator accept. A nil
// *Collector disables everything.
type Collector struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewCollector returns a collector with a fresh registry and a tracer
// over the given sink (nil sink: metrics only).
func NewCollector(sink Sink) *Collector {
	return &Collector{Registry: NewRegistry(), Tracer: NewTracer(sink)}
}

// R returns the registry, nil when the collector is nil.
func (c *Collector) R() *Registry {
	if c == nil {
		return nil
	}
	return c.Registry
}

// T returns the tracer, nil when the collector is nil.
func (c *Collector) T() *Tracer {
	if c == nil {
		return nil
	}
	return c.Tracer
}

// JSONLSink writes events as JSON lines. EmitValue accepts arbitrary
// values, which lets callers with a pre-existing line schema (the
// wormhole simulator's flit trace) reuse the sink byte-compatibly. A
// nil *JSONLSink is a valid no-op.
type JSONLSink struct {
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps a writer; a nil writer yields a nil (no-op) sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	if w == nil {
		return nil
	}
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes one tracer event as a JSON line.
func (s *JSONLSink) Emit(e *Event) { s.EmitValue(e) }

// EmitValue writes an arbitrary value as one JSON line, recording the
// first encode error and dropping everything after it (surfaced via
// Err/Close per the sink contract).
func (s *JSONLSink) EmitValue(v any) {
	if s == nil || s.err != nil {
		return
	}
	s.err = s.enc.Encode(v)
}

// Err returns the first write error, nil for a healthy or nil sink.
func (s *JSONLSink) Err() error {
	if s == nil {
		return nil
	}
	return s.err
}

// Close surfaces the first write error; the underlying writer is the
// caller's to close.
func (s *JSONLSink) Close() error { return s.Err() }
