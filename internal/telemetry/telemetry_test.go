package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("get-or-create returned a different handle")
	}
	var nilC *Counter
	nilC.Inc() // must not panic
	nilC.Add(5)
	if nilC.Value() != 0 {
		t.Error("nil counter Value != 0")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(2.0)
	if got := g.Value(); got != 3.5 {
		t.Errorf("Value = %g, want 3.5", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Error("nil gauge Value != 0")
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics: an observation
// equal to a bound lands in that bound's bucket, one above it lands in
// the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h, err := NewHistogram([]int64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	// (bucket index) expectations per value:
	//   v <= 10 -> 0, 10 < v <= 20 -> 1, 20 < v <= 40 -> 2, v > 40 -> 3.
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {10, 0}, {11, 1}, {20, 1}, {21, 2}, {40, 2}, {41, 3}, {1 << 40, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := make([]int64, 4)
	for _, c := range cases {
		want[c.want]++
	}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
	var sum int64
	for _, c := range cases {
		sum += c.v
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %d, want %d", h.Sum(), sum)
	}
}

func TestHistogramOverflowOnly(t *testing.T) {
	h, err := NewHistogram([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(100)
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("overflow bucket = %d, want 1", got)
	}
	if got := h.counts[0].Load(); got != 0 {
		t.Errorf("first bucket = %d, want 0", got)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]int64{5, 5}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	// The registry degrades invalid bounds to a nil no-op handle.
	r := NewRegistry()
	h := r.Histogram("bad", []int64{3, 2, 1})
	if h != nil {
		t.Error("registry returned a handle for invalid bounds")
	}
	h.Observe(1) // nil handle must not panic
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Error("nil histogram not zero")
	}
}

func TestCounterGrid(t *testing.T) {
	r := NewRegistry()
	g := r.Grid("grid", 2, 3)
	g.Add(1, 2, 7)
	g.Add(0, 0, 1)
	if got := g.Value(1, 2); got != 7 {
		t.Errorf("Value(1,2) = %d, want 7", got)
	}
	// Out-of-range updates are ignored, not panics.
	g.Add(-1, 0, 1)
	g.Add(2, 0, 1)
	g.Add(0, 3, 1)
	if got := g.Value(5, 5); got != 0 {
		t.Errorf("out-of-range Value = %d, want 0", got)
	}
	if r.Grid("grid", 9, 9) != g {
		t.Error("get-or-create returned a different grid")
	}
	if r.Grid("degenerate", 0, 4) != nil {
		t.Error("non-positive shape produced a handle")
	}
	var nilG *CounterGrid
	nilG.Add(0, 0, 1)
	if nilG.Value(0, 0) != 0 {
		t.Error("nil grid not zero")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil ||
		r.Histogram("x", []int64{1}) != nil || r.Grid("x", 1, 1) != nil {
		t.Error("nil registry handed out non-nil handles")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Grids) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestEmptySnapshotValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateSnapshot(&buf); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
}

// TestSnapshotRoundTrip writes a populated snapshot and validates it,
// checking the values survive the JSON round trip.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_counter").Add(3)
	r.Counter("a_counter").Add(1)
	r.Gauge("g").Set(2.25)
	h := r.Histogram("h", []int64{1, 2})
	h.Observe(1)
	h.Observe(5)
	r.Grid("grid", 2, 2).Add(1, 1, 9)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ValidateSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Counters are sorted by name.
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_counter" || s.Counters[1].Value != 3 {
		t.Errorf("counters: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 2.25 {
		t.Errorf("gauges: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 2 || s.Histograms[0].Sum != 6 {
		t.Errorf("histograms: %+v", s.Histograms)
	}
	if len(s.Grids) != 1 || s.Grids[0].Total() != 9 {
		t.Errorf("grids: %+v", s.Grids)
	}
}

func TestValidateSnapshotRejects(t *testing.T) {
	bad := []struct {
		name, doc string
	}{
		{"garbage", `{nope`},
		{"unknown field", `{"bogus": 1}`},
		{"negative counter", `{"counters":[{"name":"c","value":-1}]}`},
		{"duplicate name", `{"counters":[{"name":"c","value":1},{"name":"c","value":2}]}`},
		{"empty name", `{"gauges":[{"name":"","value":0}]}`},
		{"count mismatch", `{"histograms":[{"name":"h","count":5,"sum":0,"bounds":[1],"counts":[1,1]}]}`},
		{"bad bucket arity", `{"histograms":[{"name":"h","count":1,"sum":0,"bounds":[1,2],"counts":[1]}]}`},
		{"descending bounds", `{"histograms":[{"name":"h","count":0,"sum":0,"bounds":[2,1],"counts":[0,0,0]}]}`},
		{"cell out of range", `{"grids":[{"name":"g","rows":1,"cols":1,"cells":[{"row":1,"col":0,"value":1}]}]}`},
		{"bad grid shape", `{"grids":[{"name":"g","rows":0,"cols":1,"cells":[]}]}`},
	}
	for _, c := range bad {
		if _, err := ValidateSnapshot(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestConcurrentUpdates hammers one counter, histogram and grid from
// many goroutines; run under -race this is the registry's concurrency
// guarantee.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve through the registry concurrently as well: the
			// get-or-create path must be safe, not just the updates.
			c := r.Counter("shared")
			h := r.Histogram("lat", []int64{10, 100})
			g := r.Grid("pairs", workers, workers)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 200))
				g.Add(w, i%workers, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	snap := r.Snapshot()
	for _, gs := range snap.Grids {
		if gs.Total() != workers*per {
			t.Errorf("grid total = %d, want %d", gs.Total(), workers*per)
		}
	}
}

func TestWriteTextMentionsEveryMetric(t *testing.T) {
	r := NewRegistry()
	r.Counter("my_counter").Inc()
	r.Gauge("my_gauge").Set(1)
	r.Histogram("my_hist", []int64{1}).Observe(1)
	r.Grid("my_grid", 1, 1).Add(0, 0, 1)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"my_counter", "my_gauge", "my_hist", "my_grid"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("report omits %s:\n%s", name, buf.String())
		}
	}
}

// TestHistogramSampleQuantile pins the nearest-rank estimator's
// boundary behaviour: quantiles resolve to bucket upper bounds, the
// rank at an exact bucket edge stays in that bucket, and overflow
// observations clamp to the last finite bound.
func TestHistogramSampleQuantile(t *testing.T) {
	h, err := NewHistogram([]int64{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	// 4 observations in le=10, 4 in le=20, 2 in le=40.
	for i := 0; i < 4; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	h.Observe(30)
	h.Observe(40)
	s := h.Sample("lat")
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10},    // rank clamps to 1 -> first bucket
		{0.1, 10},  // rank 1
		{0.4, 10},  // rank 4: last observation of the first bucket
		{0.41, 20}, // rank 5 crosses into the second bucket
		{0.5, 20},
		{0.8, 20},
		{0.81, 40},
		{0.99, 40},
		{1, 40},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Out-of-range q clamps rather than misbehaving.
	if got := s.Quantile(-1); got != 10 {
		t.Errorf("Quantile(-1) = %g, want 10", got)
	}
	if got := s.Quantile(2); got != 40 {
		t.Errorf("Quantile(2) = %g, want 40", got)
	}
}

// TestHistogramSampleQuantileOverflow: when the nearest rank lands in
// the overflow bucket the estimate clamps to the last finite bound —
// the value stays finite (JSON-encodable) and is a documented lower
// bound on the true quantile.
func TestHistogramSampleQuantileOverflow(t *testing.T) {
	h, err := NewHistogram([]int64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(5)
	h.Observe(1000) // overflow
	h.Observe(2000) // overflow
	s := h.Sample("x")
	if got := s.Quantile(0.34); got != 20 {
		t.Errorf("overflow Quantile(0.34) = %g, want clamp to 20", got)
	}
	if got := s.Quantile(1); got != 20 {
		t.Errorf("overflow Quantile(1) = %g, want clamp to 20", got)
	}
	// Only-overflow distribution still clamps.
	h2, _ := NewHistogram([]int64{10})
	h2.Observe(99)
	if got := h2.Sample("y").Quantile(0.5); got != 10 {
		t.Errorf("all-overflow Quantile = %g, want 10", got)
	}
	// Empty and zero-value samples return 0.
	if got := (HistogramSample{}).Quantile(0.5); got != 0 {
		t.Errorf("empty sample Quantile = %g, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Sample("nil").Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %g, want 0", got)
	}
}

// TestSnapshotOrderingDeterministic pins the documented Snapshot
// ordering guarantee: samples sorted ascending by name within each
// kind regardless of registration or update order, and two snapshots
// of the same state encoding to identical bytes.
func TestSnapshotOrderingDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of order, interleaving kinds.
	r.Counter("zz_last").Add(1)
	r.Gauge("m_gauge").Set(2)
	r.Histogram("z_hist", []int64{1, 2}).Observe(1)
	r.Grid("b_grid", 2, 2).Add(1, 1, 5)
	r.Counter("aa_first").Add(2)
	r.Gauge("a_gauge").Set(1)
	r.Histogram("a_hist", []int64{1}).Observe(9)
	r.Grid("a_grid", 2, 2).Add(0, 1, 3)
	r.Grid("a_grid", 2, 2).Add(1, 0, 4)

	s := r.Snapshot()
	wantCounters := []string{"aa_first", "zz_last"}
	for i, c := range s.Counters {
		if c.Name != wantCounters[i] {
			t.Fatalf("counter %d = %q, want %q", i, c.Name, wantCounters[i])
		}
	}
	wantGauges := []string{"a_gauge", "m_gauge"}
	for i, g := range s.Gauges {
		if g.Name != wantGauges[i] {
			t.Fatalf("gauge %d = %q, want %q", i, g.Name, wantGauges[i])
		}
	}
	wantHists := []string{"a_hist", "z_hist"}
	for i, h := range s.Histograms {
		if h.Name != wantHists[i] {
			t.Fatalf("histogram %d = %q, want %q", i, h.Name, wantHists[i])
		}
	}
	wantGrids := []string{"a_grid", "b_grid"}
	for i, g := range s.Grids {
		if g.Name != wantGrids[i] {
			t.Fatalf("grid %d = %q, want %q", i, g.Name, wantGrids[i])
		}
	}
	// Grid cells in row-major order.
	cells := s.Grids[0].Cells
	if len(cells) != 2 || cells[0].Row != 0 || cells[0].Col != 1 || cells[1].Row != 1 || cells[1].Col != 0 {
		t.Fatalf("grid cells not row-major: %+v", cells)
	}

	// Byte determinism: two snapshots of unchanged state are identical.
	var b1, b2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two snapshots of unchanged registry state differ byte-wise")
	}
}
