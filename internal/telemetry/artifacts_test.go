package telemetry

import (
	"os"
	"testing"
)

// TestArtifactsValidate is the CI telemetry lane's validation hook: the
// workflow runs easched with -trace-out/-metrics-out on a real TGFF
// benchmark, exports the artifact paths via these environment
// variables, and re-runs this test. Locally (variables unset) it skips.
func TestArtifactsValidate(t *testing.T) {
	tracePath := os.Getenv("NOCSCHED_TRACE_FILE")
	metricsPath := os.Getenv("NOCSCHED_METRICS_FILE")
	if tracePath == "" && metricsPath == "" {
		t.Skip("NOCSCHED_TRACE_FILE / NOCSCHED_METRICS_FILE not set")
	}
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		n, err := ValidateChromeTrace(f)
		if err != nil {
			t.Errorf("%s: %v", tracePath, err)
		}
		if n == 0 {
			t.Errorf("%s: no non-metadata events — the schedule rendered empty", tracePath)
		}
		t.Logf("%s: %d events", tracePath, n)
	}
	if metricsPath != "" {
		f, err := os.Open(metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		s, err := ValidateSnapshot(f)
		if err != nil {
			t.Fatalf("%s: %v", metricsPath, err)
		}
		// A real easched run must have counted probes and published the
		// energy breakdown.
		var probes int64 = -1
		for _, c := range s.Counters {
			if c.Name == "sched_probes_total" {
				probes = c.Value
			}
		}
		if probes <= 0 {
			t.Errorf("%s: sched_probes_total = %d, want > 0", metricsPath, probes)
		}
		found := false
		for _, g := range s.Gauges {
			if g.Name == "energy_total_nj" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: energy_total_nj gauge missing", metricsPath)
		}
	}
}
