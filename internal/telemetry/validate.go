package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// ValidateChromeTrace checks that r holds a well-formed Chrome
// trace_event JSON array as emitted by ChromeSink: a single array whose
// elements all carry a name, a known phase, a pid and a tid; complete
// events ("X") must have non-negative ts and dur, and every non-metadata
// event must land on a thread that was named by a thread_name metadata
// record. It returns the number of non-metadata events. The CI telemetry
// lane runs this against a real easched artifact so a malformed trace
// fails the build.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var events []map[string]json.RawMessage
	dec := json.NewDecoder(r)
	if err := dec.Decode(&events); err != nil {
		return 0, fmt.Errorf("telemetry: trace is not a JSON array: %w", err)
	}
	if dec.More() {
		return 0, fmt.Errorf("telemetry: trailing data after the trace array")
	}
	named := make(map[int64]bool) // tids with a thread_name record
	n := 0
	for i, ev := range events {
		var name, ph string
		if err := field(ev, "name", &name); err != nil {
			return 0, fmt.Errorf("telemetry: event %d: %w", i, err)
		}
		if err := field(ev, "ph", &ph); err != nil {
			return 0, fmt.Errorf("telemetry: event %d (%q): %w", i, name, err)
		}
		var pid, tid int64
		if err := field(ev, "pid", &pid); err != nil {
			return 0, fmt.Errorf("telemetry: event %d (%q): %w", i, name, err)
		}
		switch ph {
		case "M":
			if name == "thread_name" {
				if err := field(ev, "tid", &tid); err != nil {
					return 0, fmt.Errorf("telemetry: event %d (%q): %w", i, name, err)
				}
				named[tid] = true
			}
		case "X":
			var ts, dur int64
			if err := field(ev, "ts", &ts); err != nil {
				return 0, fmt.Errorf("telemetry: event %d (%q): %w", i, name, err)
			}
			if raw, ok := ev["dur"]; ok {
				if err := json.Unmarshal(raw, &dur); err != nil {
					return 0, fmt.Errorf("telemetry: event %d (%q): bad dur: %w", i, name, err)
				}
			}
			if ts < 0 || dur < 0 {
				return 0, fmt.Errorf("telemetry: event %d (%q): negative ts/dur (%d/%d)", i, name, ts, dur)
			}
			fallthrough
		case "i", "I":
			if err := field(ev, "tid", &tid); err != nil {
				return 0, fmt.Errorf("telemetry: event %d (%q): %w", i, name, err)
			}
			if !named[tid] {
				return 0, fmt.Errorf("telemetry: event %d (%q): tid %d has no thread_name record", i, name, tid)
			}
			n++
		default:
			return 0, fmt.Errorf("telemetry: event %d (%q): unknown phase %q", i, name, ph)
		}
	}
	return n, nil
}

// field unmarshals a required member of a raw event object.
func field(ev map[string]json.RawMessage, key string, dst any) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("bad %q: %w", key, err)
	}
	return nil
}

// ValidateSnapshot decodes and checks a metrics snapshot JSON document
// (the -metrics-out format): names must be non-empty and unique per
// kind, counters non-negative, histogram bounds strictly ascending with
// len(counts) == len(bounds)+1 and bucket counts summing to count, and
// grid cells in range. It returns the decoded snapshot.
func ValidateSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("telemetry: snapshot decode: %w", err)
	}
	seen := make(map[string]bool)
	uniq := func(kind, name string) error {
		if name == "" {
			return fmt.Errorf("telemetry: %s with empty name", kind)
		}
		key := kind + "\x00" + name
		if seen[key] {
			return fmt.Errorf("telemetry: duplicate %s %q", kind, name)
		}
		seen[key] = true
		return nil
	}
	for _, c := range s.Counters {
		if err := uniq("counter", c.Name); err != nil {
			return nil, err
		}
		if c.Value < 0 {
			return nil, fmt.Errorf("telemetry: counter %q negative (%d)", c.Name, c.Value)
		}
	}
	for _, g := range s.Gauges {
		if err := uniq("gauge", g.Name); err != nil {
			return nil, err
		}
	}
	for _, h := range s.Histograms {
		if err := uniq("histogram", h.Name); err != nil {
			return nil, err
		}
		if len(h.Counts) != len(h.Bounds)+1 {
			return nil, fmt.Errorf("telemetry: histogram %q: %d counts for %d bounds",
				h.Name, len(h.Counts), len(h.Bounds))
		}
		for i := 1; i < len(h.Bounds); i++ {
			if h.Bounds[i] <= h.Bounds[i-1] {
				return nil, fmt.Errorf("telemetry: histogram %q: bounds not ascending", h.Name)
			}
		}
		var total int64
		for _, n := range h.Counts {
			if n < 0 {
				return nil, fmt.Errorf("telemetry: histogram %q: negative bucket count", h.Name)
			}
			total += n
		}
		if total != h.Count {
			return nil, fmt.Errorf("telemetry: histogram %q: buckets sum to %d, count is %d",
				h.Name, total, h.Count)
		}
	}
	for _, g := range s.Grids {
		if err := uniq("grid", g.Name); err != nil {
			return nil, err
		}
		if g.Rows <= 0 || g.Cols <= 0 {
			return nil, fmt.Errorf("telemetry: grid %q: bad shape %dx%d", g.Name, g.Rows, g.Cols)
		}
		for _, c := range g.Cells {
			if c.Row < 0 || c.Row >= g.Rows || c.Col < 0 || c.Col >= g.Cols {
				return nil, fmt.Errorf("telemetry: grid %q: cell (%d,%d) outside %dx%d",
					g.Name, c.Row, c.Col, g.Rows, g.Cols)
			}
		}
	}
	return &s, nil
}
