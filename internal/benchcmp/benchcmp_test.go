package benchcmp

import (
	"encoding/json"

	"os"
	"path/filepath"
	"strings"
	"testing"
)

// batchDoc builds a minimal batch report with the given cell fields.
func batchDoc(t *testing.T, cells ...map[string]any) []byte {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"gomaxprocs": 1, "cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func batchCell(mesh string, tasks, workers int, serialMS, ips float64, identical bool) map[string]any {
	return map[string]any{
		"mesh": mesh, "tasks": tasks, "workers": workers,
		"serial_ms": serialMS, "batch_ms": serialMS / 1.3,
		"instances_per_sec": ips, "speedup": 1.3,
		"p50_latency_us": 1000.0, "p99_latency_us": 7500.0,
		"identical": identical,
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	doc := batchDoc(t, batchCell("3x3", 100, 1, 70, 430, true), batchCell("3x3", 100, 2, 70, 460, true))
	rep, err := Compare(KindBatch, doc, doc, Options{TimingThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || rep.Regressions != 0 {
		t.Fatalf("self-compare failed: %s", rep.Summary())
	}
	if rep.Cells != 2 {
		t.Errorf("cells = %d, want 2", rep.Cells)
	}
	if !strings.Contains(rep.Summary(), "PASS") {
		t.Errorf("summary %q lacks PASS", rep.Summary())
	}
}

// TestCompareDeterministicRegression: an identical-bit flip is a
// regression regardless of thresholds.
func TestCompareDeterministicRegression(t *testing.T) {
	base := batchDoc(t, batchCell("3x3", 100, 1, 70, 430, true))
	cand := batchDoc(t, batchCell("3x3", 100, 1, 70, 430, false))
	rep, err := Compare(KindBatch, base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("identical=false not flagged")
	}
	found := false
	for _, d := range rep.Deltas {
		if d.Metric == "identical" && d.Regressed && d.Class == ClassDeterministic {
			found = true
		}
	}
	if !found {
		t.Errorf("no regressed identical delta in %+v", rep.Deltas)
	}
	// Regressions sort first.
	if !rep.Deltas[0].Regressed {
		t.Error("regressed delta not sorted first")
	}
}

// TestCompareTimingGate: timing metrics gate only when a threshold is
// set, and only past it.
func TestCompareTimingGate(t *testing.T) {
	base := batchDoc(t, batchCell("3x3", 100, 1, 70, 430, true))
	slower := batchDoc(t, batchCell("3x3", 100, 1, 70, 300, true)) // throughput -30%

	// Ungated: informational only.
	rep, err := Compare(KindBatch, base, slower, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("timing regression gated without a threshold: %s", rep.Summary())
	}

	// Gated at 10%: fails.
	rep, err = Compare(KindBatch, base, slower, Options{TimingThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("30% throughput drop passed a 10% gate")
	}

	// Gated at 50%: passes.
	rep, err = Compare(KindBatch, base, slower, Options{TimingThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("30%% drop failed a 50%% gate: %s", rep.Summary())
	}

	// Improvements never gate.
	faster := batchDoc(t, batchCell("3x3", 100, 1, 70, 900, true))
	rep, err = Compare(KindBatch, base, faster, Options{TimingThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("improvement gated: %s", rep.Summary())
	}
}

// TestCompareMissingCell: shrinking coverage is a regression.
func TestCompareMissingCell(t *testing.T) {
	base := batchDoc(t, batchCell("3x3", 100, 1, 70, 430, true), batchCell("4x4", 100, 1, 90, 300, true))
	cand := batchDoc(t, batchCell("3x3", 100, 1, 70, 430, true))
	rep, err := Compare(KindBatch, base, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || len(rep.MissingCells) != 1 {
		t.Fatalf("missing cell not flagged: %s", rep.Summary())
	}
	// Extra candidate cells are informational.
	rep, err = Compare(KindBatch, cand, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || len(rep.ExtraCells) != 1 {
		t.Fatalf("extra cell handling wrong: %s", rep.Summary())
	}
}

// TestCompareCommittedBaselines: every committed repo-root baseline
// self-compares clean under its detected kind, with timing gates on.
func TestCompareCommittedBaselines(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, name := range []string{"BENCH_sched.json", "BENCH_batch.json", "BENCH_resilience.json", "BENCH_serve.json"} {
		raw, err := os.ReadFile(filepath.Join(root, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		kind, err := DetectKind(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := Compare(kind, raw, raw, Options{TimingThreshold: 0.01})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Failed() {
			t.Errorf("%s self-compare failed: %s", name, rep.Summary())
		}
		if rep.Cells == 0 || len(rep.Deltas) == 0 {
			t.Errorf("%s: nothing compared (cells=%d deltas=%d)", name, rep.Cells, len(rep.Deltas))
		}
	}
}

func TestDetectKind(t *testing.T) {
	cases := []struct {
		doc  string
		want Kind
	}{
		{`{"configs":[{"mesh":"4x4"}]}`, KindSched},
		{`{"cells":[{"rate":0.1,"retries":2}]}`, KindResilience},
		{`{"cells":[{"mesh":"3x3","serial_ms":70}]}`, KindBatch},
	}
	for _, c := range cases {
		got, err := DetectKind([]byte(c.doc))
		if err != nil || got != c.want {
			t.Errorf("DetectKind(%s) = %q, %v; want %q", c.doc, got, err, c.want)
		}
	}
	for _, bad := range []string{`[]`, `{}`, `{"cells":[]}`, `{"cells":[{"x":1}]}`} {
		if _, err := DetectKind([]byte(bad)); err == nil {
			t.Errorf("DetectKind(%s) accepted", bad)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	good := batchDoc(t, batchCell("3x3", 100, 1, 70, 430, true))
	if _, err := Compare("nope", good, good, Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Compare(KindBatch, []byte("x"), good, Options{}); err == nil {
		t.Error("bad baseline accepted")
	}
	if _, err := Compare(KindBatch, good, []byte("x"), Options{}); err == nil {
		t.Error("bad candidate accepted")
	}
	empty, _ := json.Marshal(map[string]any{"cells": []any{}})
	if _, err := Compare(KindBatch, empty, good, Options{}); err == nil {
		t.Error("empty baseline accepted")
	}
	// A candidate cell losing a metric field is a regression, not an
	// error.
	cell := batchCell("3x3", 100, 1, 70, 430, true)
	delete(cell, "instances_per_sec")
	rep, err := Compare(KindBatch, good, batchDoc(t, cell), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Error("dropped metric field not flagged")
	}
	var noted bool
	for _, d := range rep.Deltas {
		if d.Metric == "instances_per_sec" && d.Regressed && d.Note != "" {
			noted = true
		}
	}
	if !noted {
		t.Error("dropped metric delta carries no note")
	}
	// The report must stay JSON-encodable even with schema drift.
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report not JSON-encodable: %v", err)
	}
}

// serveDoc builds a minimal serve report with the given cell fields.
func serveDoc(t *testing.T, cells ...map[string]any) []byte {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"gomaxprocs": 1, "cells": cells})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func serveCell(mesh string, tasks, solves int, hitRatio, rps float64, identical bool) map[string]any {
	return map[string]any{
		"mesh": mesh, "tasks": tasks,
		"requests": 216, "workloads": 8,
		"status_2xx": 216, "status_429_retries": 0, "status_5xx": 0,
		"solves": solves, "hit_ratio": hitRatio,
		"throughput_rps": rps, "p50_ms": 3.0, "p99_ms": 20.0,
		"cold_ms": 5.0, "warm_ms": 3.0, "warm_speedup": 1.7,
		"identical": identical, "verified": true,
	}
}

// TestCompareServeKind pins the serve schema's gating split: solves
// and hit_ratio are deterministic (any drift fails regardless of
// thresholds), throughput gates only when timing is opted in.
func TestCompareServeKind(t *testing.T) {
	base := serveDoc(t, serveCell("4x4", 60, 8, 0.96, 380, true))

	if kind, err := DetectKind(base); err != nil || kind != KindServe {
		t.Fatalf("DetectKind = %q, %v; want serve", kind, err)
	}
	rep, err := Compare(KindServe, base, base, Options{TimingThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("self-compare failed: %s", rep.Summary())
	}

	// More solves under the identical request mix = cache keying broke.
	moreSolves := serveDoc(t, serveCell("4x4", 60, 16, 0.92, 380, true))
	rep, err = Compare(KindServe, base, moreSolves, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Error("solves/hit_ratio drift not flagged")
	}

	// Slower throughput is informational without a timing threshold...
	slower := serveDoc(t, serveCell("4x4", 60, 8, 0.96, 100, true))
	rep, err = Compare(KindServe, base, slower, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Errorf("ungated timing drift failed the build: %s", rep.Summary())
	}
	// ...and a regression once the caller opts in.
	rep, err = Compare(KindServe, base, slower, Options{TimingThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Error("gated throughput regression not flagged")
	}
}
