// Package benchcmp is the bench-regression watchdog behind
// cmd/benchdiff: it compares a freshly generated benchmark report
// (BENCH_sched.json, BENCH_batch.json, BENCH_resilience.json,
// BENCH_serve.json) against a committed baseline, metric by metric,
// and produces a typed machine-readable report.
//
// Metrics fall into two classes with different gating rules:
//
//   - deterministic metrics (probe counts, energy, deadline misses,
//     hit ratios, bit-identity flags) are reproducible from the seed
//     and must match the baseline within a tiny tolerance — any drift
//     is a behaviour change, not noise;
//   - timing metrics (milliseconds, instances/sec, latency
//     percentiles) vary with the host, so they gate only when the
//     caller sets a relative threshold (CI compares like-for-like
//     hardware; a developer laptop usually should not gate timing).
//
// Every delta is oriented so that positive RelDelta means "worse"
// regardless of whether the metric is lower-better or higher-better.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind identifies which benchmark schema a report follows.
type Kind string

// The supported benchmark kinds.
const (
	KindSched      Kind = "sched"      // cmd/schedbench: probe-path performance
	KindBatch      Kind = "batch"      // cmd/batchbench: batch-engine throughput
	KindResilience Kind = "resilience" // cmd/resilbench: transient-fault campaigns
	KindServe      Kind = "serve"      // cmd/schedload: scheduling-daemon service load
)

// Class separates reproducible metrics from host-dependent ones.
type Class string

// The metric classes.
const (
	ClassDeterministic Class = "deterministic"
	ClassTiming        Class = "timing"
)

// Direction says which way "better" points for a metric.
type Direction int

// The directions.
const (
	LowerBetter Direction = iota
	HigherBetter
)

// metricSpec describes one gated metric of a benchmark schema.
type metricSpec struct {
	name  string
	dir   Direction
	class Class
}

// kindSpec describes one benchmark schema: where its cells live, what
// identifies a cell, and which metrics to compare.
type kindSpec struct {
	cellsField string
	keyFields  []string
	metrics    []metricSpec
}

var kindSpecs = map[Kind]kindSpec{
	KindSched: {
		cellsField: "configs",
		keyFields:  []string{"mesh", "tasks", "algorithm", "workers"},
		metrics: []metricSpec{
			{"edges", LowerBetter, ClassDeterministic},
			{"probes", LowerBetter, ClassDeterministic},
			{"energy_nj", LowerBetter, ClassDeterministic},
			{"deadline_misses", LowerBetter, ClassDeterministic},
			{"identical", HigherBetter, ClassDeterministic},
			{"legacy_probe_ms", LowerBetter, ClassTiming},
			{"readonly_seq_ms", LowerBetter, ClassTiming},
			{"readonly_par_ms", LowerBetter, ClassTiming},
			{"probes_per_sec", HigherBetter, ClassTiming},
		},
	},
	KindBatch: {
		cellsField: "cells",
		keyFields:  []string{"mesh", "tasks", "workers"},
		metrics: []metricSpec{
			{"identical", HigherBetter, ClassDeterministic},
			{"serial_ms", LowerBetter, ClassTiming},
			{"batch_ms", LowerBetter, ClassTiming},
			{"instances_per_sec", HigherBetter, ClassTiming},
			{"speedup", HigherBetter, ClassTiming},
			{"p50_latency_us", LowerBetter, ClassTiming},
			{"p99_latency_us", LowerBetter, ClassTiming},
		},
	},
	KindResilience: {
		cellsField: "cells",
		keyFields:  []string{"rate", "retries"},
		metrics: []metricSpec{
			{"mean_hit_ratio", HigherBetter, ClassDeterministic},
			{"mean_dropped", LowerBetter, ClassDeterministic},
			{"mean_retransmitted", LowerBetter, ClassDeterministic},
			{"mean_retry_energy_frac", LowerBetter, ClassDeterministic},
			{"mean_added_latency", LowerBetter, ClassDeterministic},
		},
	},
	KindServe: {
		cellsField: "cells",
		keyFields:  []string{"mesh", "tasks"},
		metrics: []metricSpec{
			// Under the fixed request mix, solves and the hit ratio are
			// functions of the daemon's cache keying — drift means the
			// digest or cache behaviour changed, not noise.
			{"solves", LowerBetter, ClassDeterministic},
			{"status_5xx", LowerBetter, ClassDeterministic},
			{"hit_ratio", HigherBetter, ClassDeterministic},
			{"identical", HigherBetter, ClassDeterministic},
			{"verified", HigherBetter, ClassDeterministic},
			{"throughput_rps", HigherBetter, ClassTiming},
			{"p50_ms", LowerBetter, ClassTiming},
			{"p99_ms", LowerBetter, ClassTiming},
			{"cold_ms", LowerBetter, ClassTiming},
			{"warm_ms", LowerBetter, ClassTiming},
			{"warm_speedup", HigherBetter, ClassTiming},
		},
	},
}

// Options tunes the gates.
type Options struct {
	// DeterministicThreshold is the relative drift tolerated on
	// deterministic metrics; <= 0 selects 1e-9 (bit-exactness modulo
	// float printing).
	DeterministicThreshold float64
	// TimingThreshold is the relative worsening tolerated on timing
	// metrics; <= 0 leaves timing metrics ungated (reported as
	// informational deltas only).
	TimingThreshold float64
}

// Delta is one compared metric of one cell.
type Delta struct {
	// Key identifies the cell, e.g. "mesh=4x4/tasks=100/algorithm=eas/workers=1".
	Key string `json:"key"`
	// Metric is the JSON field name compared.
	Metric string `json:"metric"`
	// Class is deterministic or timing.
	Class Class `json:"class"`
	// Base and New are the baseline and candidate values.
	Base float64 `json:"base"`
	New  float64 `json:"new"`
	// RelDelta is the relative change oriented so positive is worse.
	RelDelta float64 `json:"rel_delta"`
	// Threshold is the gate applied (0 = informational only).
	Threshold float64 `json:"threshold"`
	// Regressed is true when the delta worsened past the threshold.
	Regressed bool `json:"regressed"`
	// Note carries a non-numeric reason (e.g. schema drift) when set.
	Note string `json:"note,omitempty"`
}

// Report is the typed outcome of one comparison.
type Report struct {
	// Kind echoes the benchmark schema compared.
	Kind Kind `json:"kind"`
	// Cells is the number of baseline cells examined.
	Cells int `json:"cells"`
	// MissingCells lists baseline cell keys absent from the candidate
	// (each counts as a regression: coverage must not silently shrink).
	MissingCells []string `json:"missing_cells,omitempty"`
	// ExtraCells lists candidate cells absent from the baseline
	// (informational; new coverage is fine).
	ExtraCells []string `json:"extra_cells,omitempty"`
	// Deltas holds every compared metric, regressions first, then by
	// key and metric name.
	Deltas []Delta `json:"deltas"`
	// Regressions counts gated deltas that worsened past their
	// threshold, plus missing cells.
	Regressions int `json:"regressions"`
}

// Failed reports whether the comparison should fail the build.
func (r *Report) Failed() bool { return r.Regressions > 0 }

// Summary renders a short human-readable verdict.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchdiff %s: %d cells, %d metrics compared", r.Kind, r.Cells, len(r.Deltas))
	if len(r.MissingCells) > 0 {
		fmt.Fprintf(&b, ", %d baseline cells missing", len(r.MissingCells))
	}
	if r.Regressions == 0 {
		b.WriteString(": PASS")
		return b.String()
	}
	fmt.Fprintf(&b, ": FAIL (%d regressions)", r.Regressions)
	for _, d := range r.Deltas {
		if !d.Regressed {
			continue
		}
		fmt.Fprintf(&b, "\n  %s %s: %g -> %g (%.2f%% worse, threshold %.2f%%)",
			d.Key, d.Metric, d.Base, d.New, 100*d.RelDelta, 100*d.Threshold)
	}
	for _, k := range r.MissingCells {
		fmt.Fprintf(&b, "\n  missing cell %s", k)
	}
	return b.String()
}

// DetectKind infers the benchmark kind from a report's shape: sched
// reports keep cells under "configs", resilience cells carry "rate",
// batch cells carry "serial_ms", serve cells carry "hit_ratio".
func DetectKind(raw []byte) (Kind, error) {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return "", fmt.Errorf("benchcmp: not a JSON object: %w", err)
	}
	if _, ok := doc["configs"]; ok {
		return KindSched, nil
	}
	var cells []map[string]json.RawMessage
	if err := json.Unmarshal(doc["cells"], &cells); err != nil || len(cells) == 0 {
		return "", fmt.Errorf("benchcmp: report has neither configs nor cells")
	}
	if _, ok := cells[0]["rate"]; ok {
		return KindResilience, nil
	}
	if _, ok := cells[0]["serial_ms"]; ok {
		return KindBatch, nil
	}
	if _, ok := cells[0]["hit_ratio"]; ok {
		return KindServe, nil
	}
	return "", fmt.Errorf("benchcmp: unrecognized cell shape")
}

// Compare gates a candidate benchmark report against a baseline of the
// same kind. It never mutates its inputs; the baseline defines the
// cell set (candidate-only cells are informational).
func Compare(kind Kind, baseline, candidate []byte, opts Options) (*Report, error) {
	spec, ok := kindSpecs[kind]
	if !ok {
		return nil, fmt.Errorf("benchcmp: unknown kind %q", kind)
	}
	if opts.DeterministicThreshold <= 0 {
		opts.DeterministicThreshold = 1e-9
	}
	baseCells, err := loadCells(baseline, spec)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: baseline: %w", err)
	}
	candCells, err := loadCells(candidate, spec)
	if err != nil {
		return nil, fmt.Errorf("benchcmp: candidate: %w", err)
	}
	if len(baseCells.order) == 0 {
		return nil, fmt.Errorf("benchcmp: baseline has no cells")
	}

	rep := &Report{Kind: kind, Cells: len(baseCells.order)}
	for _, key := range baseCells.order {
		b := baseCells.byKey[key]
		c, ok := candCells.byKey[key]
		if !ok {
			rep.MissingCells = append(rep.MissingCells, key)
			rep.Regressions++
			continue
		}
		for _, m := range spec.metrics {
			bv, bok := numField(b, m.name)
			cv, cok := numField(c, m.name)
			if !bok && !cok {
				continue // metric absent on both sides (schema drift is fine if symmetric)
			}
			if bok != cok {
				// A metric present on one side only is schema drift —
				// always a regression, kept finite so the report stays
				// JSON-encodable.
				note := "metric missing in candidate"
				if cok {
					note = "metric missing in baseline"
				}
				rep.Deltas = append(rep.Deltas, Delta{
					Key: key, Metric: m.name, Class: m.class,
					Base: bv, New: cv, Note: note,
					Threshold: threshold(m.class, opts), Regressed: true,
				})
				rep.Regressions++
				continue
			}
			d := Delta{
				Key: key, Metric: m.name, Class: m.class,
				Base: bv, New: cv,
				RelDelta:  relDelta(bv, cv, m.dir),
				Threshold: threshold(m.class, opts),
			}
			if d.Threshold > 0 && d.RelDelta > d.Threshold {
				d.Regressed = true
				rep.Regressions++
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	for _, key := range candCells.order {
		if _, ok := baseCells.byKey[key]; !ok {
			rep.ExtraCells = append(rep.ExtraCells, key)
		}
	}
	sort.SliceStable(rep.Deltas, func(a, b int) bool {
		if rep.Deltas[a].Regressed != rep.Deltas[b].Regressed {
			return rep.Deltas[a].Regressed
		}
		return false
	})
	return rep, nil
}

// threshold selects the gate for a metric class; timing gates only
// when the caller opted in.
func threshold(c Class, opts Options) float64 {
	if c == ClassDeterministic {
		return opts.DeterministicThreshold
	}
	if opts.TimingThreshold > 0 {
		return opts.TimingThreshold
	}
	return 0
}

// relDelta computes the worseness-oriented relative change.
func relDelta(base, cand float64, dir Direction) float64 {
	worse := cand - base // positive = grew
	if dir == HigherBetter {
		worse = base - cand // positive = shrank
	}
	den := math.Abs(base)
	if den == 0 {
		den = math.Abs(cand)
	}
	if den == 0 {
		return 0
	}
	return worse / den
}

// cellSet is a keyed view of one report's cells in file order.
type cellSet struct {
	order []string
	byKey map[string]map[string]json.RawMessage
}

// loadCells decodes a report and indexes its cells by identity key.
func loadCells(raw []byte, spec kindSpec) (*cellSet, error) {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("not a JSON object: %w", err)
	}
	cellsRaw, ok := doc[spec.cellsField]
	if !ok {
		return nil, fmt.Errorf("no %q field", spec.cellsField)
	}
	var cells []map[string]json.RawMessage
	if err := json.Unmarshal(cellsRaw, &cells); err != nil {
		return nil, fmt.Errorf("bad %q field: %w", spec.cellsField, err)
	}
	set := &cellSet{byKey: make(map[string]map[string]json.RawMessage, len(cells))}
	for i, cell := range cells {
		key, err := cellKey(cell, spec.keyFields)
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		if _, dup := set.byKey[key]; dup {
			return nil, fmt.Errorf("duplicate cell %s", key)
		}
		set.byKey[key] = cell
		set.order = append(set.order, key)
	}
	return set, nil
}

// cellKey renders a cell's identity fields as "f=v/f=v/...".
func cellKey(cell map[string]json.RawMessage, fields []string) (string, error) {
	parts := make([]string, 0, len(fields))
	for _, f := range fields {
		raw, ok := cell[f]
		if !ok {
			return "", fmt.Errorf("missing key field %q", f)
		}
		parts = append(parts, f+"="+strings.Trim(string(raw), `"`))
	}
	return strings.Join(parts, "/"), nil
}

// numField reads a numeric (or boolean, mapped to 0/1) cell field.
func numField(cell map[string]json.RawMessage, name string) (float64, bool) {
	raw, ok := cell[name]
	if !ok {
		return 0, false
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err == nil {
		return v, true
	}
	var b bool
	if err := json.Unmarshal(raw, &b); err == nil {
		if b {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
