package serve

import (
	"container/list"

	"nocsched/internal/energy"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
)

// cacheEntry is one immutable cached solve: the schedule itself (for
// spot checks and sched.Diff-based tests) plus the pre-rendered
// response prototype (Cache field left empty; each response stamps its
// own provenance), so a hit re-serializes nothing schedule-shaped and
// two responses for one digest are bit-identical in every field the
// cache owns. Entries are never mutated after insertion.
type cacheEntry struct {
	digest   string
	core     Response
	schedule *sched.Schedule
	size     int64
}

// entryOverhead is the accounted fixed cost of one entry beyond its
// rendered schedule bytes (digest string, struct, list bookkeeping) —
// an estimate, but a stable one, so the byte bound is deterministic.
const entryOverhead = 512

// schedCache is the content-addressed schedule cache: digest →
// cacheEntry under LRU eviction with both an entry-count and a byte
// bound. Not safe for concurrent use — the Server's mutex guards it.
type schedCache struct {
	maxEntries int
	maxBytes   int64

	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
	bytes int64

	hits, misses, evictions *telemetry.Counter
	entriesG, bytesG        *telemetry.Gauge
}

func newSchedCache(maxEntries int, maxBytes int64, r *telemetry.Registry) *schedCache {
	c := &schedCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		byKey:      make(map[string]*list.Element),
	}
	if r != nil {
		c.hits = r.Counter(MetricCacheHits)
		c.misses = r.Counter(MetricCacheMisses)
		c.evictions = r.Counter(MetricCacheEvictions)
		c.entriesG = r.Gauge(MetricCacheEntries)
		c.bytesG = r.Gauge(MetricCacheBytes)
	}
	return c
}

// get returns the entry for digest (refreshing its recency) or nil,
// counting the hit or miss.
func (c *schedCache) get(digest string) *cacheEntry {
	el := c.byKey[digest]
	if el == nil {
		c.misses.Inc()
		return nil
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// put inserts an entry (replacing any same-digest predecessor) and
// evicts from the cold end until the bounds hold again. The newest
// entry itself is never evicted, even when it alone exceeds the byte
// bound — it will age out normally once something else lands.
func (c *schedCache) put(e *cacheEntry) {
	if old := c.byKey[e.digest]; old != nil {
		c.bytes -= old.Value.(*cacheEntry).size
		c.ll.Remove(old)
		delete(c.byKey, e.digest)
	}
	c.byKey[e.digest] = c.ll.PushFront(e)
	c.bytes += e.size
	for c.ll.Len() > 1 && (c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes) {
		c.evictOldest()
	}
	c.publish()
}

func (c *schedCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	old := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.byKey, old.digest)
	c.bytes -= old.size
	c.evictions.Inc()
}

func (c *schedCache) len() int { return c.ll.Len() }

func (c *schedCache) publish() {
	c.entriesG.Set(float64(c.ll.Len()))
	c.bytesG.Set(float64(c.bytes))
}

// acgCache content-addresses built platforms: platform key → the
// shared *energy.ACG every same-platform request schedules against.
// Sharing the pointer is what makes the batch engine's per-ACG route
// plan actually shared across requests; the eviction hook lets the
// Server drop the engine's plan alongside, so neither map pins dead
// platforms. Not safe for concurrent use — the Server's mutex guards
// it.
type acgCache struct {
	max     int
	ll      *list.List // values are *acgEntry
	byKey   map[string]*list.Element
	onEvict func(*energy.ACG)
}

type acgEntry struct {
	key string
	acg *energy.ACG
}

func newACGCache(max int, onEvict func(*energy.ACG)) *acgCache {
	return &acgCache{max: max, ll: list.New(), byKey: make(map[string]*list.Element), onEvict: onEvict}
}

func (c *acgCache) get(key string) *energy.ACG {
	el := c.byKey[key]
	if el == nil {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*acgEntry).acg
}

func (c *acgCache) put(key string, acg *energy.ACG) {
	if el := c.byKey[key]; el != nil {
		c.ll.MoveToFront(el)
		el.Value.(*acgEntry).acg = acg
		return
	}
	c.byKey[key] = c.ll.PushFront(&acgEntry{key: key, acg: acg})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		old := el.Value.(*acgEntry)
		c.ll.Remove(el)
		delete(c.byKey, old.key)
		if c.onEvict != nil {
			c.onEvict(old.acg)
		}
	}
}
