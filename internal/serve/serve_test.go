package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nocsched/internal/batch"
	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
	"nocsched/internal/tgff"
	"nocsched/internal/verify"
)

// testSpec is the platform every server test schedules onto.
var testSpec = noc.PlatformSpec{Topology: "mesh", Width: 3, Height: 3, Routing: "xy", Bandwidth: 256}

// testWorkload builds one deterministic workload: the request body
// plus the graph/ACG pair needed to re-load and re-verify responses.
func testWorkload(t *testing.T, seed int64, ntasks int, algo string) ([]byte, *ctg.Graph, *energy.ACG) {
	t.Helper()
	platform, err := testSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := tgff.SuiteParams(tgff.CategoryI, int(seed)%tgff.SuiteSize, platform)
	p.Name = fmt.Sprintf("serve-test-%d-%d", seed, ntasks)
	p.Seed = seed
	p.NumTasks = ntasks
	g, err := tgff.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec
	body, err := json.Marshal(Request{Graph: g, Platform: &spec, Algorithm: algo})
	if err != nil {
		t.Fatal(err)
	}
	return body, g, acg
}

// testServer starts a Server (already marked ready) plus its HTTP
// front; both are torn down with the test.
func testServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.NewCollector(nil)
	}
	s := New(opts)
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// post submits one request body and decodes the response.
func post(t *testing.T, url string, body []byte) (int, *Response, *ErrorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		var r Response
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("decode 200 body: %v\n%s", err, raw)
		}
		return resp.StatusCode, &r, nil
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("decode %d body: %v\n%s", resp.StatusCode, err, raw)
	}
	return resp.StatusCode, nil, &e
}

func counterOf(s *Server, name string) int64 {
	for _, c := range s.opts.Telemetry.R().Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestServeSolveHitBitIdentical is the cache-correctness core: a cold
// solve followed by a repeat submission returns byte-identical
// schedule documents, the decoded schedules are bit-identical under
// sched.Diff, and both pass the conformance oracle.
func TestServeSolveHitBitIdentical(t *testing.T) {
	body, g, acg := testWorkload(t, 3, 24, "eas")
	s, ts := testServer(t, Options{Workers: 2})

	code1, r1, _ := post(t, ts.URL, body)
	if code1 != http.StatusOK {
		t.Fatalf("cold POST = %d", code1)
	}
	if r1.Cache != CacheMiss {
		t.Fatalf("cold response cache = %q, want %q", r1.Cache, CacheMiss)
	}
	code2, r2, _ := post(t, ts.URL, body)
	if code2 != http.StatusOK {
		t.Fatalf("warm POST = %d", code2)
	}
	if r2.Cache != CacheHit {
		t.Fatalf("warm response cache = %q, want %q", r2.Cache, CacheHit)
	}
	if r1.Digest != r2.Digest {
		t.Fatalf("digest changed between submissions: %s vs %s", r1.Digest, r2.Digest)
	}
	if !bytes.Equal(r1.Schedule, r2.Schedule) {
		t.Error("hit returned different schedule bytes than the miss")
	}
	s1, err := sched.ReadJSON(bytes.NewReader(r1.Schedule), g, acg)
	if err != nil {
		t.Fatalf("re-load miss schedule: %v", err)
	}
	s2, err := sched.ReadJSON(bytes.NewReader(r2.Schedule), g, acg)
	if err != nil {
		t.Fatalf("re-load hit schedule: %v", err)
	}
	if d := sched.Diff(s1, s2); d != "" {
		t.Errorf("hit diverged from miss:\n%s", d)
	}
	if rep := verify.Check(s1); structuralFindings(rep) != 0 {
		t.Errorf("served schedule fails the oracle: %+v", rep.Findings)
	}
	// The energy split must re-derive bit-exactly from the schedule.
	b := s1.Breakdown()
	if r1.Energy.TotalNJ != b.Total || r1.Energy.ComputeNJ != b.Computation || r1.Energy.CommNJ != b.Communication {
		t.Errorf("energy split %+v does not match re-derived breakdown %+v", r1.Energy, b)
	}
	sw, lk := s1.CommEnergySplit()
	if r1.Energy.SwitchNJ != sw || r1.Energy.LinkNJ != lk {
		t.Errorf("switch/link split (%g,%g) != re-derived (%g,%g)", r1.Energy.SwitchNJ, r1.Energy.LinkNJ, sw, lk)
	}
	if solves := counterOf(s, MetricSolves); solves != 1 {
		t.Errorf("solves = %d, want 1 (hit must not re-solve)", solves)
	}
	if hits := counterOf(s, MetricCacheHits); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

// TestServeAlgorithms covers the three schedulers plus eas-base
// through the service path.
func TestServeAlgorithms(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 2})
	for _, algo := range []string{"eas", "eas-base", "edf", "dls"} {
		body, g, acg := testWorkload(t, 11, 18, algo)
		code, r, e := post(t, ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("%s: POST = %d (%+v)", algo, code, e)
		}
		s, err := sched.ReadJSON(bytes.NewReader(r.Schedule), g, acg)
		if err != nil {
			t.Fatalf("%s: re-load: %v", algo, err)
		}
		if rep := verify.Check(s); structuralFindings(rep) != 0 {
			t.Errorf("%s: served schedule fails the oracle", algo)
		}
	}
}

// TestServeSingleflight: a thundering herd of identical cold
// submissions costs exactly one engine solve; every request gets a
// complete, identical answer.
func TestServeSingleflight(t *testing.T) {
	body, _, _ := testWorkload(t, 5, 60, "eas")
	s, ts := testServer(t, Options{Workers: 2, QueueDepth: 64})

	const herd = 12
	var wg sync.WaitGroup
	responses := make([]*Response, herd)
	codes := make([]int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], responses[i], _ = post(t, ts.URL, body)
		}(i)
	}
	wg.Wait()
	for i := 0; i < herd; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(responses[i].Schedule, responses[0].Schedule) {
			t.Errorf("request %d: schedule bytes diverge", i)
		}
	}
	if solves := counterOf(s, MetricSolves); solves != 1 {
		t.Errorf("herd of %d cost %d solves, want 1", herd, solves)
	}
	// Every non-solving request either joined the flight or hit the
	// cache after it landed.
	shared := counterOf(s, MetricShared)
	hits := counterOf(s, MetricCacheHits)
	if shared+hits != herd-1 {
		t.Errorf("shared(%d)+hits(%d) = %d, want %d", shared, hits, shared+hits, herd-1)
	}
}

// TestServeEvictionUnderPressure: a 2-entry cache serving 3 distinct
// workloads evicts LRU; the evicted workload re-solves on return.
func TestServeEvictionUnderPressure(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 1, CacheEntries: 2})
	bodies := make([][]byte, 3)
	for i := range bodies {
		bodies[i], _, _ = testWorkload(t, int64(20+i), 14, "edf")
	}
	for _, b := range bodies {
		if code, _, _ := post(t, ts.URL, b); code != http.StatusOK {
			t.Fatalf("POST = %d", code)
		}
	}
	if n := s.CacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	if ev := counterOf(s, MetricCacheEvictions); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// Workload 0 was evicted: serving it again is a fresh solve.
	code, r, _ := post(t, ts.URL, bodies[0])
	if code != http.StatusOK {
		t.Fatalf("re-POST = %d", code)
	}
	if r.Cache != CacheMiss {
		t.Errorf("evicted workload came back as %q, want %q", r.Cache, CacheMiss)
	}
	if solves := counterOf(s, MetricSolves); solves != 4 {
		t.Errorf("solves = %d, want 4 (3 cold + 1 re-solve)", solves)
	}
}

// TestServeBadRequests: malformed bodies and semantic mismatches are
// 400s with the typed code, never 5xx.
func TestServeBadRequests(t *testing.T) {
	_, ts := testServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"not json", "{"},
		{"missing graph", `{"algorithm":"eas"}`},
		{"unknown algorithm", `{"graph":{"name":"g","tasks":[],"edges":[]},"algorithm":"sa"}`},
		{"cyclic graph", `{"graph":{"name":"g","tasks":[
			{"name":"a","exec_time":[1,1,1,1,1,1,1,1,1],"energy":[1,1,1,1,1,1,1,1,1]},
			{"name":"b","exec_time":[1,1,1,1,1,1,1,1,1],"energy":[1,1,1,1,1,1,1,1,1]}],
			"edges":[{"src":0,"dst":1,"volume":1},{"src":1,"dst":0,"volume":1}]}}`},
	}
	for _, c := range cases {
		code, _, e := post(t, ts.URL, []byte(c.body))
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
			continue
		}
		if e.Error != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", c.name, e.Error)
		}
	}
	// PE-count mismatch: a 9-PE graph on a 4x4 platform.
	body, _, _ := testWorkload(t, 3, 10, "eas")
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	req.Platform = &noc.PlatformSpec{Topology: "mesh", Width: 4, Height: 4, Bandwidth: 256}
	mismatch, _ := json.Marshal(req)
	if code, _, e := post(t, ts.URL, mismatch); code != http.StatusBadRequest || e.Error != "bad_request" {
		t.Errorf("PE mismatch: status %d code %v, want 400 bad_request", code, e)
	}
}

// TestServeQueueFull429: with a single busy worker and a 1-deep queue,
// surplus distinct submissions are rejected 429 queue_full (retryable)
// — not 503, which is reserved for drain. The engine's queue-depth
// gauge sequences the test: blocker A provably occupies the worker and
// blocker B provably fills the one queue slot before the probe fires.
func TestServeQueueFull429(t *testing.T) {
	// The long default timeout keeps the deliberately huge blockers from
	// tripping the per-request deadline under the race detector's
	// slowdown — this test is about admission, not deadlines.
	s, ts := testServer(t, Options{Workers: 1, QueueDepth: 1, DefaultTimeout: 10 * time.Minute})
	// Every body is pre-built: workload generation must not eat into
	// the window during which the worker is provably busy. Blocker A is
	// sized for a multi-second solve so the saturated state survives
	// scheduler jitter when the whole suite shares the CPU.
	blockerA, _, _ := testWorkload(t, 40, 3000, "eas")
	blockerB, _, _ := testWorkload(t, 41, 2000, "eas")
	probes := make([][]byte, 8)
	for i := range probes {
		probes[i], _, _ = testWorkload(t, int64(100+i), 12, "edf")
	}
	blockerDone := make(chan int, 2)
	go func() {
		code, _, _ := post(t, ts.URL, blockerA)
		blockerDone <- code
	}()
	waitFor(t, 30*time.Second, func() bool {
		s.mu.Lock()
		inflight := len(s.flights)
		s.mu.Unlock()
		return inflight == 1 && gaugeOf(s, batch.MetricQueueDepth) == 0
	})
	go func() {
		code, _, _ := post(t, ts.URL, blockerB)
		blockerDone <- code
	}()
	waitFor(t, 30*time.Second, func() bool { return gaugeOf(s, batch.MetricQueueDepth) == 1 })
	// Worker solving A, queue holding B: distinct submissions bounce.
	saw429 := false
	for _, body := range probes {
		code, _, e := post(t, ts.URL, body)
		if code == http.StatusTooManyRequests {
			saw429 = true
			if e.Error != "queue_full" {
				t.Errorf("429 code = %q, want queue_full", e.Error)
			}
			break
		}
		if code >= 500 {
			t.Fatalf("unexpected %d while the queue was full", code)
		}
	}
	if !saw429 {
		t.Error("never saw a 429 with a saturated 1-worker/1-slot engine")
	}
	if counterOf(s, MetricRejectedFull) == 0 {
		t.Error("serve_rejected_full_total stayed 0")
	}
	for i := 0; i < 2; i++ {
		if code := <-blockerDone; code != http.StatusOK {
			t.Fatalf("blocker finished %d", code)
		}
	}
}

func gaugeOf(s *Server, name string) float64 {
	for _, g := range s.opts.Telemetry.R().Snapshot().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// TestServeRequestDeadline: an expired per-request deadline answers
// 504 deadline_exceeded, the solve still completes and lands in the
// cache, and the retry hits it.
func TestServeRequestDeadline(t *testing.T) {
	s, ts := testServer(t, Options{Workers: 1})
	body, _, _ := testWorkload(t, 6, 200, "eas")
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	req.TimeoutMS = 1
	impatient, _ := json.Marshal(req)
	code, _, e := post(t, ts.URL, impatient)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("impatient POST = %d, want 504", code)
	}
	if e.Error != "deadline_exceeded" {
		t.Errorf("504 code = %q, want deadline_exceeded", e.Error)
	}
	// The abandoned solve finishes in the background and is cached.
	waitFor(t, 30*time.Second, func() bool { return s.CacheLen() == 1 })
	code, r, _ := post(t, ts.URL, body)
	if code != http.StatusOK || r.Cache != CacheHit {
		t.Fatalf("retry after deadline: %d %q, want 200 hit", code, r.Cache)
	}
}

// TestServeDrain is the shutdown contract: after Drain begins,
// readiness flips to not-ready immediately and new submissions are
// 503 draining, while the in-flight request completes with 200.
func TestServeDrain(t *testing.T) {
	col := telemetry.NewCollector(nil)
	s := New(Options{Workers: 1, Telemetry: col})
	s.MarkReady()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow, _, _ := testWorkload(t, 50, 400, "eas")
	inflight := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts.URL, slow)
		inflight <- code
	}()
	// The slow solve is normally still in flight here; if the scheduler
	// starves this goroutine past its completion, the cached result is
	// the stable evidence it ran — the drain contract below holds either
	// way.
	waitFor(t, 30*time.Second, func() bool {
		s.mu.Lock()
		n := len(s.flights)
		s.mu.Unlock()
		return n == 1 || s.CacheLen() == 1
	})
	if !s.Ready() {
		t.Fatal("server not ready before drain")
	}

	drainCtx, drainCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer drainCancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(drainCtx) }()
	waitFor(t, 30*time.Second, func() bool { return s.draining.Load() })

	// Readiness flips immediately — before the in-flight solve is done.
	if s.Ready() {
		t.Error("Ready() true while draining")
	}
	if code := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d during drain, want 503", code)
	}
	// New submissions are rejected 503 with the typed code.
	fresh, _, _ := testWorkload(t, 51, 12, "edf")
	code, _, e := post(t, ts.URL, fresh)
	if code != http.StatusServiceUnavailable {
		t.Errorf("new submission during drain = %d, want 503", code)
	} else if e.Error != "draining" {
		t.Errorf("503 code = %q, want draining", e.Error)
	}
	// The in-flight request still completes successfully.
	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight request finished %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after drain: %v", err)
	}
}

// TestServeWarmupFlipsReadiness: a fresh server is not ready; Warmup
// solves its built-in workload and flips readiness.
func TestServeWarmupFlipsReadiness(t *testing.T) {
	s := New(Options{Workers: 1, Telemetry: telemetry.NewCollector(nil)})
	defer func() { _ = s.Close() }()
	if s.Ready() {
		t.Fatal("fresh server claims ready before warmup")
	}
	if err := s.Warmup(); err != nil {
		t.Fatalf("Warmup: %v", err)
	}
	if !s.Ready() {
		t.Fatal("server not ready after warmup")
	}
	if s.CacheLen() != 1 {
		t.Errorf("warmup left %d cache entries, want 1", s.CacheLen())
	}
}

// TestServerACGSharing: equivalent platform specs resolve to one
// shared ACG, so the engine's route plan is computed once.
func TestServerACGSharing(t *testing.T) {
	s, _ := testServer(t, Options{Workers: 1})
	specA := noc.PlatformSpec{Topology: "mesh", Width: 3, Height: 3, Routing: "xy", Bandwidth: 256}
	specB := noc.PlatformSpec{Width: 3, Height: 3, Bandwidth: 256} // defaults spelled differently
	keyA, err := platformKey(specA)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := platformKey(specB)
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatalf("equivalent specs got distinct platform keys")
	}
	a1, err := s.acgFor(keyA, specA)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.acgFor(keyB, specB)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("equivalent platforms built two ACGs")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}
