// Package serve is the scheduling-as-a-service layer: a long-running
// JSON-over-HTTP daemon front for the internal/batch engine. It turns
// the one-shot CLI flow (parse workload, build routes, run EAS/EDF/DLS,
// print) into an online service that answers repeated mapping/
// scheduling requests over stable platforms, the shape run-time NoC
// mapping work assumes.
//
// Three mechanisms make repeated traffic cheap and safe:
//
//   - a content-addressed schedule cache: every workload canonicalizes
//     to a digest (see WorkloadDigest), and a digest that has been
//     solved before is answered from an immutable cached entry —
//     bit-identical schedule bytes, no engine time — under LRU
//     eviction with entry-count and byte bounds;
//   - singleflight collapse: concurrent identical submissions join the
//     one in-flight solve instead of queueing duplicates, so a
//     thundering herd of one hot workload costs one solve;
//   - typed backpressure: admission is bounded by the batch engine's
//     queue. A full queue rejects with 429 (retryable), a draining
//     server with 503 (terminal), and an expired per-request deadline
//     with 504 — the three causes are distinguishable both by status
//     and by the machine-readable "error" code in the body.
//
// Every cold solve is spot-checked by the internal/verify oracle
// before it is cached or returned: a schedule with structural findings
// (anything beyond deadline misses, which are a legitimate reported
// outcome) is a 500, never a cache entry.
//
// Lifecycle: New starts the engine, Warmup runs a built-in miniature
// workload end to end and then flips readiness, Drain stops admission
// (immediately flipping /readyz to not-ready and answering new
// submissions 503) while in-flight solves finish and their waiters get
// 200s. The ops surface (/metrics with the serve_* series, /healthz,
// /readyz, /snapshot, pprof) is the internal/obs handler mounted next
// to /v1/schedule.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nocsched/internal/batch"
	"nocsched/internal/ctg"
	"nocsched/internal/eas"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/obs"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
	"nocsched/internal/tgff"
	"nocsched/internal/verify"
)

// Options configures a Server.
type Options struct {
	// Workers is the batch engine's instance-level parallelism; <= 0
	// selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; a request arriving while
	// the queue is full is rejected with 429. <= 0 selects 2*Workers.
	QueueDepth int
	// CacheEntries bounds the schedule cache's entry count; <= 0
	// selects 1024.
	CacheEntries int
	// CacheBytes bounds the schedule cache's accounted bytes; <= 0
	// selects 64 MiB.
	CacheBytes int64
	// ACGEntries bounds the platform→ACG cache; <= 0 selects 64.
	// Evicting an ACG also drops its route plan from the engine.
	ACGEntries int
	// DefaultTimeout is the per-request deadline applied when a
	// request carries no timeout_ms; <= 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds request bodies; <= 0 selects 8 MiB.
	MaxBodyBytes int64
	// Telemetry publishes the serve_* series (and is forwarded to the
	// engine and schedulers). Nil disables collection.
	Telemetry *telemetry.Collector
}

// The serve_* telemetry series (see the README metric catalog).
const (
	// MetricRequests counts /v1/schedule requests (count).
	MetricRequests = "serve_requests_total"
	// MetricInflight gauges requests currently being handled.
	MetricInflight = "serve_inflight"
	// MetricLatency is the end-to-end request latency histogram (µs),
	// queueing and solving included.
	MetricLatency = "serve_request_latency_us"
	// MetricSolves counts cold solves completed and cached (count).
	MetricSolves = "serve_solves_total"
	// MetricSolveErrors counts scheduler-failed solves (count).
	MetricSolveErrors = "serve_solve_errors_total"
	// MetricVerifyFailures counts solves rejected by the conformance
	// oracle before caching (count); anything above zero is a bug.
	MetricVerifyFailures = "serve_verify_failures_total"
	// MetricRejectedFull counts 429s from a full admission queue.
	MetricRejectedFull = "serve_rejected_full_total"
	// MetricRejectedDrain counts 503s from a draining server.
	MetricRejectedDrain = "serve_rejected_drain_total"
	// MetricDeadlineExpired counts 504s from expired request deadlines.
	MetricDeadlineExpired = "serve_deadline_expired_total"
	// MetricShared counts requests that joined an in-flight identical
	// solve instead of submitting their own (singleflight collapse).
	MetricShared = "serve_singleflight_shared_total"
	// MetricCacheHits / MetricCacheMisses / MetricCacheEvictions are
	// the schedule-cache counters; MetricCacheEntries and
	// MetricCacheBytes gauge its current occupancy.
	MetricCacheHits      = "serve_cache_hits_total"
	MetricCacheMisses    = "serve_cache_misses_total"
	MetricCacheEvictions = "serve_cache_evictions_total"
	MetricCacheEntries   = "serve_cache_entries"
	MetricCacheBytes     = "serve_cache_bytes"
)

// latencyBounds is the fixed bucket layout of MetricLatency (µs).
var latencyBounds = []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000,
	25000, 50000, 100000, 250000, 1000000, 5000000}

// Cache provenance values of Response.Cache.
const (
	CacheHit    = "hit"    // answered from the schedule cache
	CacheMiss   = "miss"   // this request ran the solve
	CacheShared = "shared" // joined another request's in-flight solve
)

// EnergySplit is the response's Eq. 2/3 energy decomposition: total =
// compute + comm, and comm further splits into the switch-fabric
// (ESbit) and inter-tile-link (ELbit) terms.
type EnergySplit struct {
	TotalNJ   float64 `json:"total_nj"`
	ComputeNJ float64 `json:"compute_nj"`
	CommNJ    float64 `json:"comm_nj"`
	SwitchNJ  float64 `json:"switch_nj"`
	LinkNJ    float64 `json:"link_nj"`
}

// Response is the 200 body of POST /v1/schedule. Every field except
// Cache is digest-addressed and cached immutably, so repeated
// identical submissions receive bit-identical values (Schedule
// included, byte for byte).
type Response struct {
	// Digest is the workload's content address.
	Digest string `json:"digest"`
	// Cache is the response's provenance: CacheHit, CacheMiss or
	// CacheShared.
	Cache string `json:"cache"`
	// Algorithm is the algorithm that produced the schedule, as the
	// schedule itself records it.
	Algorithm string `json:"algorithm"`
	// Schedule is the sched.Schedule JSON export (sched.WriteJSON
	// format), re-loadable with sched.ReadJSON against the request's
	// graph and platform and re-checkable with cmd/schedverify.
	Schedule json.RawMessage `json:"schedule"`
	// Energy is the Eq. 2/3 split.
	Energy EnergySplit `json:"energy"`
	// Makespan is the schedule length in time units.
	Makespan int64 `json:"makespan"`
	// DeadlineMisses counts tasks finishing past their hard deadline —
	// a reported outcome, not an error.
	DeadlineMisses int `json:"deadline_misses"`
	// VerifyFindings is the conformance oracle's finding count for
	// this schedule. Structural findings are never served (they 500
	// instead), so any count here is deadline findings and equals
	// DeadlineMisses.
	VerifyFindings int `json:"verify_findings"`
	// SolveUS is the cold solve's scheduling latency in microseconds
	// (cached along with the schedule: hits echo the original solve).
	SolveUS int64 `json:"solve_us"`
}

// ErrorResponse is the non-200 body: a stable machine-readable code
// plus a human detail.
type ErrorResponse struct {
	// Error is one of "bad_request", "queue_full", "draining",
	// "deadline_exceeded", "solve_failed", "verify_failed".
	Error string `json:"error"`
	// Detail explains the specific failure.
	Detail string `json:"detail,omitempty"`
}

// flight is one in-progress solve; concurrent identical submissions
// share it. entry/err are written once, before done is closed.
type flight struct {
	digest string
	done   chan struct{}
	entry  *cacheEntry
	err    error
}

// workload is a resolved request: parsed, validated, digested, and
// bound to a (possibly shared) ACG.
type workload struct {
	digest    string
	algorithm string
	graph     *ctg.Graph
	acg       *energy.ACG
	timeout   time.Duration
}

// Server is the scheduling daemon core: one long-lived batch engine
// stream behind a content-addressed cache, with HTTP in front.
type Server struct {
	opts   Options
	engine *batch.Engine
	stream *batch.Stream
	cancel context.CancelFunc

	mu      sync.Mutex // guards cache, flights, acgs
	cache   *schedCache
	flights map[string]*flight
	acgs    *acgCache

	submitMu sync.Mutex // serializes stream admission + pending map
	pending  map[int]*flight

	ready    atomic.Bool
	draining atomic.Bool

	collectorDone chan struct{}

	mRequests, mSolves, mSolveErrors, mVerifyFailures *telemetry.Counter
	mRejectedFull, mRejectedDrain, mDeadlineExpired   *telemetry.Counter
	mShared                                           *telemetry.Counter
	mInflight                                         *telemetry.Gauge
	mLatency                                          *telemetry.Histogram
}

// New starts a Server: the engine's workers spin up immediately, but
// /readyz stays not-ready until Warmup (or MarkReady) flips it.
func New(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		w := opts.Workers
		if w <= 0 {
			w = 2
		}
		opts.QueueDepth = 2 * w
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 1024
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 64 << 20
	}
	if opts.ACGEntries <= 0 {
		opts.ACGEntries = 64
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = 30 * time.Second
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		opts: opts,
		engine: batch.New(batch.Options{
			Workers:    opts.Workers,
			QueueDepth: opts.QueueDepth,
			Telemetry:  opts.Telemetry,
		}),
		flights:       make(map[string]*flight),
		pending:       make(map[int]*flight),
		collectorDone: make(chan struct{}),
	}
	r := opts.Telemetry.R()
	s.cache = newSchedCache(opts.CacheEntries, opts.CacheBytes, r)
	s.acgs = newACGCache(opts.ACGEntries, s.engine.DropPlan)
	if r != nil {
		s.mRequests = r.Counter(MetricRequests)
		s.mSolves = r.Counter(MetricSolves)
		s.mSolveErrors = r.Counter(MetricSolveErrors)
		s.mVerifyFailures = r.Counter(MetricVerifyFailures)
		s.mRejectedFull = r.Counter(MetricRejectedFull)
		s.mRejectedDrain = r.Counter(MetricRejectedDrain)
		s.mDeadlineExpired = r.Counter(MetricDeadlineExpired)
		s.mShared = r.Counter(MetricShared)
		s.mInflight = r.Gauge(MetricInflight)
		s.mLatency = r.Histogram(MetricLatency, latencyBounds)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.stream = s.engine.Stream(ctx)
	go s.collect()
	return s
}

// Ready reports whether the server should receive traffic: warmed up
// and not draining. Wire it into obs.Options.Ready (Handler does).
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// MarkReady flips readiness without a warmup run (tests, callers that
// warmed up on their own).
func (s *Server) MarkReady() { s.ready.Store(true) }

// Warmup pushes a built-in miniature workload through the entire cold
// path — canonicalize, admit, solve, verify, cache — so the first real
// request pays no first-use costs (worker workspaces, route plan,
// code paths), then flips readiness. Errors leave the server
// not-ready.
func (s *Server) Warmup() error {
	spec := noc.PlatformSpec{Topology: "mesh", Width: 3, Height: 3, Routing: "xy", Bandwidth: 256}
	platform, err := spec.Build()
	if err != nil {
		return fmt.Errorf("serve: warmup platform: %w", err)
	}
	p := tgff.SuiteParams(tgff.CategoryI, 0, platform)
	p.Name = "serve-warmup"
	p.Seed = 1
	p.NumTasks = 16
	g, err := tgff.Generate(p)
	if err != nil {
		return fmt.Errorf("serve: warmup graph: %w", err)
	}
	body, err := json.Marshal(Request{Graph: g, Platform: &spec})
	if err != nil {
		return fmt.Errorf("serve: warmup request: %w", err)
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return fmt.Errorf("serve: warmup request: %w", err)
	}
	wl, err := s.resolve(&req)
	if err != nil {
		return fmt.Errorf("serve: warmup: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), wl.timeout)
	defer cancel()
	if _, _, serr := s.schedule(ctx, wl); serr != nil {
		return fmt.Errorf("serve: warmup solve: %w", serr.cause)
	}
	s.ready.Store(true)
	return nil
}

// Handler returns the daemon's HTTP surface: POST /v1/schedule plus
// the internal/obs ops endpoints (/metrics, /healthz, /readyz,
// /snapshot, /debug/pprof/) with readiness wired to Ready.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.NewHandler(obs.Options{Registry: s.opts.Telemetry.R(), Ready: s.Ready}))
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	return mux
}

// Drain ends admission gracefully: readiness flips to not-ready
// immediately, new submissions are answered 503, and Drain returns
// once every in-flight solve has completed and delivered (or ctx
// expires). Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.Swap(true) {
		s.ready.Store(false)
		s.submitMu.Lock()
		s.stream.Close()
		s.submitMu.Unlock()
	}
	select {
	case <-s.collectorDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts down hard: queued-but-unstarted solves are abandoned
// with the context's error (their waiters get 503s) and Close returns
// when the engine has drained. Prefer Drain for graceful shutdown.
func (s *Server) Close() error {
	s.cancel()
	return s.Drain(context.Background())
}

// serveError pairs an HTTP status with a typed body.
type serveError struct {
	status int
	code   string
	cause  error
}

func (e *serveError) Error() string { return e.cause.Error() }

// resolve parses and canonicalizes one request into a workload,
// binding it to the shared ACG for its platform.
func (s *Server) resolve(req *Request) (*workload, error) {
	if req.Graph == nil {
		return nil, errors.New("missing graph")
	}
	algorithm, err := normalizeAlgorithm(req.Algorithm)
	if err != nil {
		return nil, err
	}
	spec := DefaultPlatform()
	if req.Platform != nil {
		spec = *req.Platform
	}
	digest, err := WorkloadDigest(algorithm, spec, req.Graph)
	if err != nil {
		return nil, err
	}
	pkey, err := platformKey(spec)
	if err != nil {
		return nil, err
	}
	acg, err := s.acgFor(pkey, spec)
	if err != nil {
		return nil, err
	}
	if req.Graph.NumPEs() != acg.NumPEs() {
		return nil, fmt.Errorf("graph %q is characterized for %d PEs but the platform has %d",
			req.Graph.Name, req.Graph.NumPEs(), acg.NumPEs())
	}
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	return &workload{digest: digest, algorithm: algorithm, graph: req.Graph, acg: acg, timeout: timeout}, nil
}

// acgFor returns the shared ACG for a platform key, building (and
// caching) it on first use.
func (s *Server) acgFor(key string, spec noc.PlatformSpec) (*energy.ACG, error) {
	s.mu.Lock()
	if acg := s.acgs.get(key); acg != nil {
		s.mu.Unlock()
		return acg, nil
	}
	s.mu.Unlock()
	// Build outside the lock: platform+ACG construction is pure, and a
	// racing duplicate build just loses the put.
	platform, err := spec.Build()
	if err != nil {
		return nil, err
	}
	acg, err := energy.BuildACG(platform, energy.DefaultModel())
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached := s.acgs.get(key); cached != nil {
		return cached, nil
	}
	s.acgs.put(key, acg)
	return acg, nil
}

// instance maps a workload onto the batch engine's vocabulary.
func (wl *workload) instance() batch.Instance {
	inst := batch.Instance{Name: shortDigest(wl.digest) + "/" + wl.algorithm, Graph: wl.graph, ACG: wl.acg}
	switch wl.algorithm {
	case AlgoEAS:
		inst.Algorithm = batch.AlgoEAS
	case AlgoEASBase:
		inst.Algorithm = batch.AlgoEAS
		inst.EAS = eas.Options{DisableRepair: true}
	case AlgoEDF:
		inst.Algorithm = batch.AlgoEDF
	case AlgoDLS:
		inst.Algorithm = batch.AlgoDLS
	}
	return inst
}

func shortDigest(d string) string {
	if i := strings.IndexByte(d, ':'); i >= 0 && len(d) > i+13 {
		return d[i+1 : i+13]
	}
	return d
}

// schedule answers one resolved workload: cache hit, joined flight, or
// fresh submission. The returned entry is immutable and shared.
func (s *Server) schedule(ctx context.Context, wl *workload) (*cacheEntry, string, *serveError) {
	s.mu.Lock()
	if e := s.cache.get(wl.digest); e != nil {
		s.mu.Unlock()
		return e, CacheHit, nil
	}
	if f := s.flights[wl.digest]; f != nil {
		s.mu.Unlock()
		s.mShared.Inc()
		return s.await(ctx, f, CacheShared)
	}
	f := &flight{digest: wl.digest, done: make(chan struct{})}
	s.flights[wl.digest] = f
	s.mu.Unlock()

	s.submitMu.Lock()
	idx := s.stream.Submitted()
	err := s.stream.TrySubmit(wl.instance())
	if err == nil {
		s.pending[idx] = f
	}
	s.submitMu.Unlock()
	if err != nil {
		// Wake any joiners, then forget the flight.
		f.err = err
		close(f.done)
		s.mu.Lock()
		delete(s.flights, wl.digest)
		s.mu.Unlock()
		return nil, "", s.mapSubmitErr(err)
	}
	return s.await(ctx, f, CacheMiss)
}

// mapSubmitErr converts an admission error to its typed HTTP shape:
// ErrQueueFull is retryable (429), everything else means the stream is
// closed or cancelled — the server is going away (503).
func (s *Server) mapSubmitErr(err error) *serveError {
	if errors.Is(err, batch.ErrQueueFull) {
		s.mRejectedFull.Inc()
		return &serveError{status: http.StatusTooManyRequests, code: "queue_full", cause: err}
	}
	s.mRejectedDrain.Inc()
	return &serveError{status: http.StatusServiceUnavailable, code: "draining", cause: err}
}

// await blocks until the flight completes or the request's deadline
// expires. An expired deadline abandons only the wait: the solve runs
// to completion and lands in the cache for the retry. Expiry wins ties
// — when the result and the deadline become ready together, the
// response is deterministically 504, never a coin flip on select order.
func (s *Server) await(ctx context.Context, f *flight, src string) (*cacheEntry, string, *serveError) {
	expired := func() (*cacheEntry, string, *serveError) {
		s.mDeadlineExpired.Inc()
		cause := ctx.Err()
		if cause == nil {
			cause = context.DeadlineExceeded
		}
		return nil, "", &serveError{status: http.StatusGatewayTimeout, code: "deadline_exceeded", cause: cause}
	}
	// The wall clock, not ctx.Err(), decides expiry: the context's timer
	// can fire late, and a coin-flip select between a ready result and
	// an elapsed deadline would make 504s nondeterministic.
	pastDeadline := func() bool {
		dl, ok := ctx.Deadline()
		return (ok && !time.Now().Before(dl)) || ctx.Err() != nil
	}
	select {
	case <-f.done:
		if pastDeadline() {
			return expired()
		}
		if f.err != nil {
			return nil, "", s.mapFlightErr(f.err)
		}
		return f.entry, src, nil
	case <-ctx.Done():
		return expired()
	}
}

// mapFlightErr types a completed-with-error flight: cancellation means
// drain/shutdown (503), a verification rejection is verify_failed, and
// anything else is the scheduler's own failure (500).
func (s *Server) mapFlightErr(err error) *serveError {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, batch.ErrClosed), errors.Is(err, batch.ErrQueueFull):
		s.mRejectedDrain.Inc()
		return &serveError{status: http.StatusServiceUnavailable, code: "draining", cause: err}
	case errors.Is(err, errVerifyFailed):
		return &serveError{status: http.StatusInternalServerError, code: "verify_failed", cause: err}
	default:
		return &serveError{status: http.StatusInternalServerError, code: "solve_failed", cause: err}
	}
}

// errVerifyFailed marks solves rejected by the conformance oracle.
var errVerifyFailed = errors.New("serve: schedule failed verification")

// collect is the single consumer of the engine's ordered results: it
// verifies, renders and caches each solve, then wakes its flight.
func (s *Server) collect() {
	defer close(s.collectorDone)
	for r := range s.stream.Results() {
		s.submitMu.Lock()
		f := s.pending[r.Index]
		delete(s.pending, r.Index)
		s.submitMu.Unlock()
		if f == nil {
			continue
		}
		s.finish(f, &r)
	}
}

// finish completes one flight from its engine result. The cache
// insert and the flight removal happen under one lock acquisition, so
// a concurrent identical request either joins the flight or hits the
// cache — never both misses.
func (s *Server) finish(f *flight, r *batch.Result) {
	switch {
	case r.Err != nil:
		s.mSolveErrors.Inc()
		f.err = r.Err
	default:
		rep := verify.Check(r.Schedule)
		if structural := structuralFindings(rep); structural > 0 {
			s.mVerifyFailures.Inc()
			f.err = fmt.Errorf("%w: %d structural findings (first: %s)",
				errVerifyFailed, structural, firstStructural(rep))
		} else if entry, err := renderEntry(f.digest, r, rep); err != nil {
			s.mSolveErrors.Inc()
			f.err = err
		} else {
			f.entry = entry
			s.mSolves.Inc()
		}
	}
	s.mu.Lock()
	if f.entry != nil {
		s.cache.put(f.entry)
	}
	delete(s.flights, f.digest)
	s.mu.Unlock()
	close(f.done)
}

// structuralFindings counts oracle findings that make a schedule
// unservable. Deadline findings are excluded: a deadline miss is a
// legitimate, reported outcome of a feasibility-constrained workload,
// exactly as the CLIs treat it (exit 1, not an error).
func structuralFindings(rep *verify.Report) int {
	n := 0
	for i := range rep.Findings {
		if rep.Findings[i].Class != verify.ClassDeadline {
			n++
		}
	}
	return n
}

func firstStructural(rep *verify.Report) string {
	for i := range rep.Findings {
		if rep.Findings[i].Class != verify.ClassDeadline {
			return rep.Findings[i].String()
		}
	}
	return ""
}

// renderEntry builds the immutable cached response prototype for one
// verified solve.
func renderEntry(digest string, r *batch.Result, rep *verify.Report) (*cacheEntry, error) {
	var buf strings.Builder
	if err := r.Schedule.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("serve: render schedule: %w", err)
	}
	raw := json.RawMessage(strings.TrimRight(buf.String(), "\n"))
	b := r.Schedule.Breakdown()
	sw, lk := r.Schedule.CommEnergySplit()
	core := Response{
		Digest:         digest,
		Algorithm:      r.Schedule.Algorithm,
		Schedule:       raw,
		Energy:         EnergySplit{TotalNJ: b.Total, ComputeNJ: b.Computation, CommNJ: b.Communication, SwitchNJ: sw, LinkNJ: lk},
		Makespan:       b.Makespan,
		DeadlineMisses: b.Misses,
		VerifyFindings: len(rep.Findings),
		SolveUS:        r.Latency.Microseconds(),
	}
	return &cacheEntry{
		digest:   digest,
		core:     core,
		schedule: r.Schedule,
		size:     int64(len(raw)) + entryOverhead,
	}, nil
}

// handleSchedule is POST /v1/schedule.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST only")
		return
	}
	s.mRequests.Inc()
	s.mInflight.Add(1)
	started := time.Now()
	defer func() {
		s.mInflight.Add(-1)
		s.mLatency.Observe(time.Since(started).Microseconds())
	}()

	if s.draining.Load() {
		s.mRejectedDrain.Inc()
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; submit elsewhere")
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	wl, err := s.resolve(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), wl.timeout)
	defer cancel()
	entry, src, serr := s.schedule(ctx, wl)
	if serr != nil {
		if serr.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, serr.status, serr.code, serr.cause.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Nocsched-Digest", entry.digest)
	w.Header().Set("X-Nocsched-Cache", src)
	resp := entry.core
	resp.Cache = src
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func writeError(w http.ResponseWriter, status int, code, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ErrorResponse{Error: code, Detail: detail})
}

// cachedSchedule exposes a cached schedule for spot checks and tests
// (nil when the digest is absent). The returned schedule is shared and
// must be treated as read-only.
func (s *Server) cachedSchedule(digest string) *sched.Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.cache.byKey[digest]
	if el == nil {
		return nil
	}
	return el.Value.(*cacheEntry).schedule
}

// CacheLen returns the schedule cache's current entry count.
func (s *Server) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}
