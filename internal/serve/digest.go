package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
)

// Request is the JSON body of POST /v1/schedule: one workload — a
// communication task graph, the platform to schedule it on, and the
// algorithm to use. Execution parameters (TimeoutMS) ride along but
// are not part of the workload's identity.
type Request struct {
	// Graph is the communication task graph (the cmd/tgffgen /
	// ctg.Graph.WriteJSON format). Required; malformed or cyclic
	// graphs are rejected at decode time by ctg's validation.
	Graph *ctg.Graph `json:"graph"`
	// Platform describes the target NoC (the noc.PlatformSpec format,
	// same as easched -platform). Omitted selects the default 4x4
	// heterogeneous XY mesh with bandwidth 256.
	Platform *noc.PlatformSpec `json:"platform,omitempty"`
	// Algorithm selects the scheduler: "eas" (default), "eas-base"
	// (EAS without search-and-repair), "edf", or "dls".
	Algorithm string `json:"algorithm,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds, covering
	// queueing and solving; <= 0 selects the server's default. The
	// solve itself is not abandoned when the deadline expires — the
	// result still lands in the cache for the retry to hit.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// The accepted Request.Algorithm values.
const (
	AlgoEAS     = "eas"
	AlgoEASBase = "eas-base"
	AlgoEDF     = "edf"
	AlgoDLS     = "dls"
)

// DefaultPlatform is the platform spec selected when a request omits
// one: the repository's standard 4x4 heterogeneous XY mesh.
func DefaultPlatform() noc.PlatformSpec {
	return noc.PlatformSpec{Topology: "mesh", Width: 4, Height: 4, Routing: "xy", Bandwidth: 256}
}

// canonicalWorkload is the digest input: the request's semantic
// content re-marshaled into one fixed field order with every default
// made explicit. Two request bodies that differ only in JSON key
// order, whitespace, or spelled-out defaults (e.g. "routing":"xy" on
// a mesh vs omitting it) canonicalize to identical bytes and so hash
// equal; anything that changes the scheduling problem changes the
// digest. The version field ties digests to this schema so a future
// format change cannot alias an old cache entry.
type canonicalWorkload struct {
	V         int              `json:"v"`
	Algorithm string           `json:"algorithm"`
	Platform  noc.PlatformSpec `json:"platform"`
	Graph     *ctg.Graph       `json:"graph"`
}

// digestVersion is bumped whenever the canonical form changes shape.
const digestVersion = 1

// normalizeAlgorithm maps the request's algorithm to its canonical
// name, defaulting to EAS.
func normalizeAlgorithm(a string) (string, error) {
	switch a {
	case "", AlgoEAS:
		return AlgoEAS, nil
	case AlgoEASBase, AlgoEDF, AlgoDLS:
		return a, nil
	default:
		return "", fmt.Errorf("serve: unknown algorithm %q (want eas, eas-base, edf or dls)", a)
	}
}

// normalizeSpec fills a platform spec's defaults so equivalent specs
// marshal identically: topology defaults to mesh, mesh routing
// defaults to xy, and non-mesh topologies (which have exactly one
// routing function) carry no routing field at all. An empty class
// list (= the standard heterogeneous library) stays empty rather than
// being expanded, so "default classes" and a future library change
// keep distinct digests from spelled-out class tables.
func normalizeSpec(spec noc.PlatformSpec) noc.PlatformSpec {
	if spec.Topology == "" {
		spec.Topology = "mesh"
	}
	if spec.Topology == "mesh" {
		if spec.Routing == "" {
			spec.Routing = "xy"
		}
	} else {
		spec.Routing = ""
	}
	if len(spec.Classes) == 0 {
		spec.Classes = nil
	}
	return spec
}

// WorkloadDigest computes the content address of a workload:
// sha256 over the canonical form, rendered "sha256:<hex>". The graph
// is marshaled through ctg's deterministic exporter (tasks and edges
// in insertion order), so the digest is stable across processes.
func WorkloadDigest(algorithm string, spec noc.PlatformSpec, g *ctg.Graph) (string, error) {
	raw, err := json.Marshal(canonicalWorkload{
		V:         digestVersion,
		Algorithm: algorithm,
		Platform:  normalizeSpec(spec),
		Graph:     g,
	})
	if err != nil {
		return "", fmt.Errorf("serve: canonicalize workload: %w", err)
	}
	sum := sha256.Sum256(raw)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// platformKey content-addresses a platform spec alone, for the ACG
// cache: requests naming equivalent platforms share one ACG (and so
// one route plan inside the batch engine).
func platformKey(spec noc.PlatformSpec) (string, error) {
	raw, err := json.Marshal(normalizeSpec(spec))
	if err != nil {
		return "", fmt.Errorf("serve: canonicalize platform: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
