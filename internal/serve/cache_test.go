package serve

import (
	"fmt"
	"testing"

	"nocsched/internal/energy"
	"nocsched/internal/telemetry"
)

func testEntry(digest string, size int64) *cacheEntry {
	return &cacheEntry{digest: digest, size: size}
}

// TestCacheEntryBound evicts strictly LRU once the entry bound is hit.
func TestCacheEntryBound(t *testing.T) {
	r := telemetry.NewRegistry()
	c := newSchedCache(3, 1<<30, r)
	for i := 0; i < 4; i++ {
		c.put(testEntry(fmt.Sprintf("d%d", i), 100))
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if c.get("d0") != nil {
		t.Error("oldest entry d0 survived the entry bound")
	}
	for _, d := range []string{"d1", "d2", "d3"} {
		if c.get(d) == nil {
			t.Errorf("entry %s evicted out of LRU order", d)
		}
	}
	if got := counterValue(t, r, MetricCacheEvictions); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

// TestCacheByteBound evicts under byte pressure even with entry
// headroom, and recency protects the hot entry.
func TestCacheByteBound(t *testing.T) {
	r := telemetry.NewRegistry()
	c := newSchedCache(1024, 1000, r)
	c.put(testEntry("a", 400))
	c.put(testEntry("b", 400))
	// Touch a so b is the LRU victim.
	if c.get("a") == nil {
		t.Fatal("a missing")
	}
	c.put(testEntry("c", 400)) // 1200 > 1000: one eviction needed
	if c.get("b") != nil {
		t.Error("byte pressure should have evicted LRU entry b")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Error("recently-used a or fresh c evicted instead of b")
	}
	if c.bytes != 800 {
		t.Errorf("accounted bytes = %d, want 800", c.bytes)
	}
}

// TestCacheOversizeEntrySurvivesAlone: a single entry larger than the
// byte bound is kept (serving it beats thrashing) and ages out once a
// successor lands.
func TestCacheOversizeEntrySurvivesAlone(t *testing.T) {
	c := newSchedCache(1024, 500, telemetry.NewRegistry())
	c.put(testEntry("big", 900))
	if c.get("big") == nil {
		t.Fatal("oversize sole entry evicted immediately")
	}
	c.put(testEntry("small", 100))
	if c.get("big") != nil {
		t.Error("oversize entry survived past its successor")
	}
	if c.get("small") == nil {
		t.Error("successor evicted with the oversize entry")
	}
}

// TestCacheReplaceSameDigest re-putting a digest replaces, not
// duplicates.
func TestCacheReplaceSameDigest(t *testing.T) {
	c := newSchedCache(8, 1<<20, telemetry.NewRegistry())
	c.put(testEntry("d", 100))
	c.put(testEntry("d", 200))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if c.bytes != 200 {
		t.Errorf("bytes = %d, want 200 (replacement, not accumulation)", c.bytes)
	}
}

// TestCacheHitMissCounters pin the telemetry counters' semantics.
func TestCacheHitMissCounters(t *testing.T) {
	r := telemetry.NewRegistry()
	c := newSchedCache(8, 1<<20, r)
	c.get("absent")
	c.put(testEntry("d", 10))
	c.get("d")
	c.get("d")
	if got := counterValue(t, r, MetricCacheHits); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := counterValue(t, r, MetricCacheMisses); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

// TestACGCacheEviction: the ACG cache is LRU-bounded and calls the
// eviction hook (the server wires it to Engine.DropPlan) exactly for
// the platforms that fall out. Distinct zero-value ACGs stand in for
// real ones — the cache never dereferences them.
func TestACGCacheEviction(t *testing.T) {
	var evicted []*energy.ACG
	c := newACGCache(2, func(a *energy.ACG) { evicted = append(evicted, a) })
	acgs := []*energy.ACG{new(energy.ACG), new(energy.ACG), new(energy.ACG)}
	c.put("p0", acgs[0])
	c.put("p1", acgs[1])
	if c.get("p0") == nil {
		t.Fatal("p0 missing")
	}
	c.put("p2", acgs[2]) // p1 is now LRU
	if c.get("p1") != nil {
		t.Error("p1 survived past the bound")
	}
	if len(evicted) != 1 || evicted[0] != acgs[1] {
		t.Errorf("eviction hook saw %v, want exactly acgs[1]", evicted)
	}
	if c.get("p0") != acgs[0] || c.get("p2") != acgs[2] {
		t.Error("survivors lost their ACGs")
	}
}

func counterValue(t *testing.T, r *telemetry.Registry, name string) int64 {
	t.Helper()
	for _, c := range r.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
