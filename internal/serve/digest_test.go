package serve

import (
	"encoding/json"
	"testing"

	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

// testGraphJSON renders a small deterministic graph as JSON.
func testGraphJSON(t *testing.T, seed int64, ntasks int) []byte {
	t.Helper()
	spec := noc.PlatformSpec{Topology: "mesh", Width: 3, Height: 3, Routing: "xy", Bandwidth: 256}
	platform, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := tgff.SuiteParams(tgff.CategoryI, 0, platform)
	p.Name = "digest-test"
	p.Seed = seed
	p.NumTasks = ntasks
	g, err := tgff.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// digestOf decodes a raw request body exactly like the handler does
// and returns its workload digest.
func digestOf(t *testing.T, body []byte) string {
	t.Helper()
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatalf("decode request: %v", err)
	}
	algorithm, err := normalizeAlgorithm(req.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultPlatform()
	if req.Platform != nil {
		spec = *req.Platform
	}
	d, err := WorkloadDigest(algorithm, spec, req.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDigestCanonicalization is the cache-keying core invariant: two
// request bodies that differ only in JSON key order, whitespace, and
// spelled-out defaults digest identically, because the digest is taken
// over the decoded, canonicalized workload, not the wire bytes.
func TestDigestCanonicalization(t *testing.T) {
	graph := testGraphJSON(t, 7, 12)

	// Body A: graph first, algorithm spelled out, platform with every
	// default explicit, compact whitespace.
	bodyA := []byte(`{"graph":` + string(graph) +
		`,"algorithm":"eas","platform":{"topology":"mesh","width":4,"height":4,"routing":"xy","bandwidth":256}}`)
	// Body B: fields permuted, defaults omitted (algorithm "" = eas,
	// platform omitted = the default 4x4 mesh), airy whitespace.
	bodyB := []byte("{\n  \"platform\": {\"bandwidth\": 256, \"height\": 4, \"width\": 4},\n  \"graph\": " +
		string(graph) + "\n}")
	// Body C: no platform at all — the documented default.
	bodyC := []byte(`{"graph":` + string(graph) + `}`)

	dA, dB, dC := digestOf(t, bodyA), digestOf(t, bodyB), digestOf(t, bodyC)
	if dA != dB {
		t.Errorf("key order / spelled-out defaults changed the digest:\nA %s\nB %s", dA, dB)
	}
	if dA != dC {
		t.Errorf("omitted platform digests differently from the explicit default:\nA %s\nC %s", dA, dC)
	}

	// Execution parameters are not workload identity.
	bodyTimeout := []byte(`{"graph":` + string(graph) + `,"timeout_ms":1500}`)
	if d := digestOf(t, bodyTimeout); d != dA {
		t.Errorf("timeout_ms changed the digest: %s vs %s", d, dA)
	}
}

// TestDigestSeparatesWorkloads: anything that changes the scheduling
// problem must change the digest.
func TestDigestSeparatesWorkloads(t *testing.T) {
	graph := testGraphJSON(t, 7, 12)
	base := digestOf(t, []byte(`{"graph":`+string(graph)+`}`))

	// Different algorithm.
	if d := digestOf(t, []byte(`{"graph":`+string(graph)+`,"algorithm":"edf"}`)); d == base {
		t.Error("algorithm change kept the digest")
	}
	// Different platform.
	if d := digestOf(t, []byte(`{"graph":`+string(graph)+
		`,"platform":{"topology":"mesh","width":4,"height":4,"bandwidth":128}}`)); d == base {
		t.Error("bandwidth change kept the digest")
	}
	// Different graph.
	other := testGraphJSON(t, 8, 12)
	if d := digestOf(t, []byte(`{"graph":`+string(other)+`}`)); d == base {
		t.Error("graph change kept the digest")
	}
}

// TestDigestAlgorithmValidation rejects unknown algorithms.
func TestDigestAlgorithmValidation(t *testing.T) {
	if _, err := normalizeAlgorithm("sa"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	for _, a := range []string{"", AlgoEAS, AlgoEASBase, AlgoEDF, AlgoDLS} {
		if _, err := normalizeAlgorithm(a); err != nil {
			t.Errorf("normalizeAlgorithm(%q): %v", a, err)
		}
	}
}
