package ctg

import "fmt"

// CrossDep declares a dependency from one iteration of a periodic
// application to the next: task From of iteration i must finish (and
// ship Volume bits) before task To of iteration i+1 starts. The
// canonical example is a video encoder's reconstructed reference frame
// feeding the next frame's motion estimation.
type CrossDep struct {
	From   TaskID
	To     TaskID
	Volume int64
}

// Unroll builds the CTG of n successive iterations of the periodic
// application g: tasks and intra-iteration arcs are replicated n times,
// every specified deadline of iteration i is offset by i*period, and
// the cross-iteration dependencies are wired between consecutive
// copies. Scheduling the unrolled graph lets the static scheduler
// overlap iterations across PEs (software pipelining), which a
// one-iteration schedule cannot express.
//
// Task j of iteration i has ID i*g.NumTasks()+j and name
// "<name>#<i>".
func Unroll(g *Graph, n int, period int64, cross []CrossDep) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("ctg: unroll count %d < 1", n)
	}
	if period < 0 {
		return nil, fmt.Errorf("ctg: negative period %d", period)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for _, c := range cross {
		if int(c.From) >= g.NumTasks() || c.From < 0 || int(c.To) >= g.NumTasks() || c.To < 0 {
			return nil, fmt.Errorf("ctg: cross dependency %d->%d references unknown task", c.From, c.To)
		}
		if c.Volume < 0 {
			return nil, fmt.Errorf("ctg: cross dependency %d->%d has negative volume", c.From, c.To)
		}
	}

	out := New(fmt.Sprintf("%s-x%d", g.Name, n))
	base := g.NumTasks()
	for i := 0; i < n; i++ {
		offset := int64(i) * period
		for j := 0; j < base; j++ {
			t := g.Task(TaskID(j))
			deadline := t.Deadline
			if t.HasDeadline() {
				deadline = t.Deadline + offset
			}
			if _, err := out.AddTask(fmt.Sprintf("%s#%d", t.Name, i), t.ExecTime, t.Energy, deadline); err != nil {
				return nil, err
			}
		}
		for _, e := range g.Edges() {
			src := TaskID(i*base) + e.Src
			dst := TaskID(i*base) + e.Dst
			if _, err := out.AddEdge(src, dst, e.Volume); err != nil {
				return nil, err
			}
		}
		if i > 0 {
			for _, c := range cross {
				src := TaskID((i-1)*base) + c.From
				dst := TaskID(i*base) + c.To
				if _, err := out.AddEdge(src, dst, c.Volume); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// IterationOf returns which unrolled iteration a task of an
// Unroll-produced graph belongs to, given the original task count.
func IterationOf(t TaskID, baseTasks int) int {
	if baseTasks <= 0 {
		return 0
	}
	return int(t) / baseTasks
}
