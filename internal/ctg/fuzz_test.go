package ctg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON: arbitrary input must never panic the decoder, and any
// accepted graph must satisfy every structural invariant and round-trip
// losslessly.
func FuzzReadJSON(f *testing.F) {
	// Seed corpus: a valid graph, plus near-miss mutations.
	g := New("seed")
	a, _ := g.AddTask("a", []int64{10, 20}, []float64{1, 2}, NoDeadline)
	b, _ := g.AddTask("b", []int64{30, 40}, []float64{3, 4}, 500)
	g.AddEdge(a, b, 128)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"name":"x","tasks":[],"edges":[]}`)
	f.Add(`{"name":"x","tasks":[{"name":"t","exec_time":[1],"energy":[1],"deadline":-1}],"edges":[]}`)
	f.Add(`{"tasks":[{"exec_time":[1,2],"energy":[1]}]}`)
	f.Add(`garbage`)

	f.Fuzz(func(t *testing.T, data string) {
		decoded, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return // rejected is fine; panics are not
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := decoded.WriteJSON(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.NumTasks() != decoded.NumTasks() || again.NumEdges() != decoded.NumEdges() {
			t.Fatal("round trip changed structure")
		}
	})
}
