package ctg

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := New("roundtrip")
	a, _ := g.AddTask("a", []int64{10, 20}, []float64{1.5, 2.5}, NoDeadline)
	b, _ := g.AddTask("b", []int64{30, -1}, []float64{3, 0}, 5000)
	if _, err := g.AddEdge(a, b, 4096); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != g.Name || got.NumTasks() != 2 || got.NumEdges() != 1 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	ta := got.Task(a)
	if ta.Name != "a" || ta.ExecTime[1] != 20 || ta.Energy[0] != 1.5 || ta.HasDeadline() {
		t.Errorf("task a mismatch: %+v", ta)
	}
	tb := got.Task(b)
	if tb.Deadline != 5000 || tb.ExecTime[1] != -1 {
		t.Errorf("task b mismatch: %+v", tb)
	}
	if e := got.Edge(0); e.Src != a || e.Dst != b || e.Volume != 4096 {
		t.Errorf("edge mismatch: %+v", e)
	}
}

func TestJSONOmitsInfiniteDeadline(t *testing.T) {
	g := New("omit")
	g.AddTask("a", []int64{1}, []float64{1}, NoDeadline)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "deadline") {
		t.Errorf("deadline key serialized for unconstrained task:\n%s", buf.String())
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":   `{"name":`,
		"cycle":      `{"name":"c","tasks":[{"name":"a","exec_time":[1],"energy":[1]},{"name":"b","exec_time":[1],"energy":[1]}],"edges":[{"src":0,"dst":1,"volume":0},{"src":1,"dst":0,"volume":0}]}`,
		"bad edge":   `{"name":"c","tasks":[{"name":"a","exec_time":[1],"energy":[1]}],"edges":[{"src":0,"dst":5,"volume":0}]}`,
		"ragged":     `{"name":"c","tasks":[{"name":"a","exec_time":[1],"energy":[1]},{"name":"b","exec_time":[1,2],"energy":[1,2]}],"edges":[]}`,
		"neg volume": `{"name":"c","tasks":[{"name":"a","exec_time":[1],"energy":[1]},{"name":"b","exec_time":[1],"energy":[1]}],"edges":[{"src":0,"dst":1,"volume":-4}]}`,
		"no tasks":   `{"name":"c","tasks":[],"edges":[]}`,
		"bad arrays": `{"name":"c","tasks":[{"name":"a","exec_time":[1,2],"energy":[1]}],"edges":[]}`,
	}
	for name, payload := range cases {
		if _, err := ReadJSON(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
}
