// Package ctg implements the Communication Task Graph (CTG) of the paper
// (Definition 1): a directed acyclic graph whose vertices are computation
// tasks and whose arcs are control or data dependencies.
//
// Each task t_i carries an array R_i of execution times and an array E_i
// of energy consumptions, one entry per processing element (PE) of the
// target architecture, plus an optional hard deadline d(t_i). Each arc
// c_{i,j} carries a communication volume v(c_{i,j}) in bits; a volume of
// zero denotes a pure control dependency.
package ctg

import (
	"fmt"
	"math"
)

// TaskID identifies a task within a Graph. IDs are dense, starting at 0,
// in order of AddTask calls.
type TaskID int

// EdgeID identifies an arc within a Graph. IDs are dense, starting at 0,
// in order of AddEdge calls.
type EdgeID int

// NoDeadline is the deadline value of a task for which the designer did
// not specify a deadline; per the paper it is "taken equal to infinity".
const NoDeadline int64 = math.MaxInt64

// Task is one computational module of the application (a CTG vertex).
type Task struct {
	ID   TaskID
	Name string

	// ExecTime is the array R_i: ExecTime[k] is the execution time of
	// the task on the k-th PE of the architecture, in abstract time
	// units. A negative entry marks the PE as incapable of executing
	// the task (e.g. a pure-DSP kernel on a tiny control core).
	ExecTime []int64

	// Energy is the array E_i: Energy[k] is the energy consumed when
	// the task executes on the k-th PE, in nanojoules.
	Energy []float64

	// Deadline is the absolute time by which the task must finish, or
	// NoDeadline if unconstrained.
	Deadline int64
}

// HasDeadline reports whether the task carries a designer-specified
// deadline.
func (t *Task) HasDeadline() bool { return t.Deadline != NoDeadline }

// RunnableOn reports whether the task may execute on PE k.
func (t *Task) RunnableOn(k int) bool {
	return k >= 0 && k < len(t.ExecTime) && t.ExecTime[k] >= 0
}

// Edge is a CTG arc c_{src,dst}: task dst cannot start before task src
// has finished and (if Volume > 0) transferred Volume bits to it.
type Edge struct {
	ID     EdgeID
	Src    TaskID
	Dst    TaskID
	Volume int64 // bits; 0 means a pure control dependency
}

// Graph is a Communication Task Graph. The zero value is an empty graph
// ready for use; tasks and edges are added with AddTask and AddEdge.
type Graph struct {
	Name string

	tasks []Task
	edges []Edge

	// succ[i] / pred[i] list the edge IDs leaving / entering task i.
	succ [][]EdgeID
	pred [][]EdgeID
}

// New returns an empty graph with the given name.
func New(name string) *Graph { return &Graph{Name: name} }

// AddTask appends a task and returns its ID. The execTime and energy
// slices are copied; they must have equal length (one entry per PE).
// deadline may be NoDeadline.
func (g *Graph) AddTask(name string, execTime []int64, energy []float64, deadline int64) (TaskID, error) {
	if len(execTime) != len(energy) {
		return -1, fmt.Errorf("ctg: task %q: exec-time array has %d entries but energy array has %d",
			name, len(execTime), len(energy))
	}
	if len(execTime) == 0 {
		return -1, fmt.Errorf("ctg: task %q: empty per-PE arrays", name)
	}
	if deadline <= 0 && deadline != NoDeadline {
		return -1, fmt.Errorf("ctg: task %q: non-positive deadline %d", name, deadline)
	}
	runnable := false
	for k, r := range execTime {
		if r >= 0 {
			runnable = true
			if energy[k] < 0 {
				return -1, fmt.Errorf("ctg: task %q: negative energy %g on PE %d", name, energy[k], k)
			}
		}
	}
	if !runnable {
		return -1, fmt.Errorf("ctg: task %q: not runnable on any PE", name)
	}
	id := TaskID(len(g.tasks))
	g.tasks = append(g.tasks, Task{
		ID:       id,
		Name:     name,
		ExecTime: append([]int64(nil), execTime...),
		Energy:   append([]float64(nil), energy...),
		Deadline: deadline,
	})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id, nil
}

// AddEdge appends the arc src -> dst with the given communication volume
// in bits and returns its ID. Parallel edges between the same pair are
// permitted (they model independent messages); self-loops are not.
func (g *Graph) AddEdge(src, dst TaskID, volume int64) (EdgeID, error) {
	if !g.validTask(src) || !g.validTask(dst) {
		return -1, fmt.Errorf("ctg: edge %d->%d references unknown task", src, dst)
	}
	if src == dst {
		return -1, fmt.Errorf("ctg: self-loop on task %d", src)
	}
	if volume < 0 {
		return -1, fmt.Errorf("ctg: edge %d->%d: negative volume %d", src, dst, volume)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, Src: src, Dst: dst, Volume: volume})
	g.succ[src] = append(g.succ[src], id)
	g.pred[dst] = append(g.pred[dst], id)
	return id, nil
}

func (g *Graph) validTask(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// NumTasks returns the number of tasks in the graph.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of arcs in the graph.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumPEs returns the length of the per-PE arrays of the graph's tasks
// (the number of PEs the graph is characterized for), or 0 for an empty
// graph.
func (g *Graph) NumPEs() int {
	if len(g.tasks) == 0 {
		return 0
	}
	return len(g.tasks[0].ExecTime)
}

// Task returns the task with the given ID. The returned pointer aliases
// graph storage and must not be mutated by callers.
func (g *Graph) Task(id TaskID) *Task { return &g.tasks[id] }

// Edge returns the arc with the given ID. The returned pointer aliases
// graph storage and must not be mutated by callers.
func (g *Graph) Edge(id EdgeID) *Edge { return &g.edges[id] }

// Tasks returns all tasks in ID order. The slice aliases graph storage.
func (g *Graph) Tasks() []Task { return g.tasks }

// Edges returns all arcs in ID order. The slice aliases graph storage.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the IDs of the arcs leaving task id.
func (g *Graph) Out(id TaskID) []EdgeID { return g.succ[id] }

// In returns the IDs of the arcs entering task id.
func (g *Graph) In(id TaskID) []EdgeID { return g.pred[id] }

// Succ returns the distinct successor task IDs of task id, in edge order.
func (g *Graph) Succ(id TaskID) []TaskID {
	return g.neighbors(g.succ[id], func(e *Edge) TaskID { return e.Dst })
}

// Pred returns the distinct predecessor task IDs of task id, in edge order.
func (g *Graph) Pred(id TaskID) []TaskID {
	return g.neighbors(g.pred[id], func(e *Edge) TaskID { return e.Src })
}

func (g *Graph) neighbors(edges []EdgeID, pick func(*Edge) TaskID) []TaskID {
	out := make([]TaskID, 0, len(edges))
	seen := make(map[TaskID]bool, len(edges))
	for _, eid := range edges {
		t := pick(&g.edges[eid])
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Sources returns the tasks with no predecessors, in ID order.
func (g *Graph) Sources() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Sinks returns the tasks with no successors, in ID order.
func (g *Graph) Sinks() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// TopoOrder returns the task IDs in a topological order (dependencies
// first). It returns an error if the graph contains a cycle, which makes
// it the canonical DAG check.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	indeg := make([]int, len(g.tasks))
	for i := range g.tasks {
		indeg[i] = len(g.pred[i])
	}
	// Kahn's algorithm with a FIFO over task IDs keeps the order
	// deterministic for a given graph.
	queue := make([]TaskID, 0, len(g.tasks))
	for i := range g.tasks {
		if indeg[i] == 0 {
			queue = append(queue, TaskID(i))
		}
	}
	order := make([]TaskID, 0, len(g.tasks))
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, eid := range g.succ[t] {
			d := g.edges[eid].Dst
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("ctg: graph %q contains a cycle (%d of %d tasks ordered)",
			g.Name, len(order), len(g.tasks))
	}
	return order, nil
}

// Levels returns, for every task, its level: the length (in task count)
// of the longest chain of predecessors ending at the task. Sources have
// level 0. It returns an error if the graph is cyclic.
func (g *Graph) Levels() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	levels := make([]int, len(g.tasks))
	for _, t := range order {
		for _, eid := range g.succ[t] {
			d := g.edges[eid].Dst
			if levels[t]+1 > levels[d] {
				levels[d] = levels[t] + 1
			}
		}
	}
	return levels, nil
}

// Validate checks structural invariants: the graph is a non-empty DAG,
// every task's per-PE arrays have the same length, and every task can run
// on at least one PE. It returns the first violation found.
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return fmt.Errorf("ctg: graph %q has no tasks", g.Name)
	}
	npe := len(g.tasks[0].ExecTime)
	for i := range g.tasks {
		t := &g.tasks[i]
		if len(t.ExecTime) != npe || len(t.Energy) != npe {
			return fmt.Errorf("ctg: task %d (%q) characterized for %d/%d PEs, want %d",
				t.ID, t.Name, len(t.ExecTime), len(t.Energy), npe)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TotalVolume returns the sum of all edge volumes in bits.
func (g *Graph) TotalVolume() int64 {
	var sum int64
	for i := range g.edges {
		sum += g.edges[i].Volume
	}
	return sum
}

// DeadlineTasks returns the IDs of all tasks with designer-specified
// deadlines, in ID order.
func (g *Graph) DeadlineTasks() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if g.tasks[i].HasDeadline() {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	cp := &Graph{Name: g.Name}
	cp.tasks = make([]Task, len(g.tasks))
	for i, t := range g.tasks {
		t.ExecTime = append([]int64(nil), t.ExecTime...)
		t.Energy = append([]float64(nil), t.Energy...)
		cp.tasks[i] = t
	}
	cp.edges = append([]Edge(nil), g.edges...)
	cp.succ = make([][]EdgeID, len(g.succ))
	cp.pred = make([][]EdgeID, len(g.pred))
	for i := range g.succ {
		cp.succ[i] = append([]EdgeID(nil), g.succ[i]...)
		cp.pred[i] = append([]EdgeID(nil), g.pred[i]...)
	}
	return cp
}

// ScaleDeadlines returns a copy of the graph with every specified
// deadline multiplied by factor (rounded to the nearest time unit).
// It is the primitive behind the paper's Fig. 7 performance sweep, where
// required frame rates are scaled up and deadlines correspondingly
// shrink (factor = 1/performanceRatio).
func (g *Graph) ScaleDeadlines(factor float64) *Graph {
	cp := g.Clone()
	for i := range cp.tasks {
		t := &cp.tasks[i]
		if t.HasDeadline() {
			d := int64(math.Round(float64(t.Deadline) * factor))
			if d < 1 {
				d = 1
			}
			t.Deadline = d
		}
	}
	return cp
}
