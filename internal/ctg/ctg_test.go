package ctg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildDiamond returns the four-task diamond a->{b,c}->d used by several
// tests.
func buildDiamond(t *testing.T) (*Graph, [4]TaskID) {
	t.Helper()
	g := New("diamond")
	var ids [4]TaskID
	for i, name := range []string{"a", "b", "c", "d"} {
		id, err := g.AddTask(name, []int64{10, 20}, []float64{1, 2}, NoDeadline)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if _, err := g.AddEdge(ids[e[0]], ids[e[1]], 100); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestAddTaskValidation(t *testing.T) {
	g := New("v")
	if _, err := g.AddTask("bad", []int64{10}, []float64{1, 2}, NoDeadline); err == nil {
		t.Error("mismatched array lengths should fail")
	}
	if _, err := g.AddTask("bad", nil, nil, NoDeadline); err == nil {
		t.Error("empty arrays should fail")
	}
	if _, err := g.AddTask("bad", []int64{10}, []float64{1}, 0); err == nil {
		t.Error("zero deadline should fail")
	}
	if _, err := g.AddTask("bad", []int64{10}, []float64{1}, -5); err == nil {
		t.Error("negative deadline should fail")
	}
	if _, err := g.AddTask("bad", []int64{-1, -1}, []float64{1, 1}, NoDeadline); err == nil {
		t.Error("task runnable nowhere should fail")
	}
	if _, err := g.AddTask("bad", []int64{10, -1}, []float64{-3, 1}, NoDeadline); err == nil {
		t.Error("negative energy on a runnable PE should fail")
	}
	// Negative energy on an *incapable* PE is tolerated (don't-care).
	if _, err := g.AddTask("ok", []int64{10, -1}, []float64{1, -1}, NoDeadline); err != nil {
		t.Errorf("don't-care energy rejected: %v", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New("e")
	a, _ := g.AddTask("a", []int64{1}, []float64{1}, NoDeadline)
	b, _ := g.AddTask("b", []int64{1}, []float64{1}, NoDeadline)
	if _, err := g.AddEdge(a, a, 1); err == nil {
		t.Error("self-loop should fail")
	}
	if _, err := g.AddEdge(a, 99, 1); err == nil {
		t.Error("unknown endpoint should fail")
	}
	if _, err := g.AddEdge(a, b, -1); err == nil {
		t.Error("negative volume should fail")
	}
	if _, err := g.AddEdge(a, b, 0); err != nil {
		t.Errorf("control edge should be allowed: %v", err)
	}
	// Parallel edges model independent messages.
	if _, err := g.AddEdge(a, b, 5); err != nil {
		t.Errorf("parallel edge rejected: %v", err)
	}
}

func TestTopoOrderAndLevels(t *testing.T) {
	g, ids := buildDiamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Src] >= pos[e.Dst] {
			t.Errorf("edge %d->%d violates topological order", e.Src, e.Dst)
		}
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i, id := range ids {
		if levels[id] != want[i] {
			t.Errorf("level[%d] = %d, want %d", id, levels[id], want[i])
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("cyc")
	a, _ := g.AddTask("a", []int64{1}, []float64{1}, NoDeadline)
	b, _ := g.AddTask("b", []int64{1}, []float64{1}, NoDeadline)
	c, _ := g.AddTask("c", []int64{1}, []float64{1}, NoDeadline)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(c, a, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed the cycle")
	}
}

func TestSourcesSinksDegrees(t *testing.T) {
	g, ids := buildDiamond(t)
	if src := g.Sources(); len(src) != 1 || src[0] != ids[0] {
		t.Errorf("Sources = %v", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != ids[3] {
		t.Errorf("Sinks = %v", snk)
	}
	if succ := g.Succ(ids[0]); len(succ) != 2 {
		t.Errorf("Succ(a) = %v", succ)
	}
	if pred := g.Pred(ids[3]); len(pred) != 2 {
		t.Errorf("Pred(d) = %v", pred)
	}
	if g.NumPEs() != 2 {
		t.Errorf("NumPEs = %d", g.NumPEs())
	}
	if g.TotalVolume() != 400 {
		t.Errorf("TotalVolume = %d", g.TotalVolume())
	}
}

func TestSuccDedup(t *testing.T) {
	g := New("dup")
	a, _ := g.AddTask("a", []int64{1}, []float64{1}, NoDeadline)
	b, _ := g.AddTask("b", []int64{1}, []float64{1}, NoDeadline)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, b, 2)
	if succ := g.Succ(a); len(succ) != 1 {
		t.Errorf("Succ should deduplicate parallel edges: %v", succ)
	}
	if out := g.Out(a); len(out) != 2 {
		t.Errorf("Out should list both parallel edges: %v", out)
	}
}

func TestCloneIndependence(t *testing.T) {
	g, ids := buildDiamond(t)
	cp := g.Clone()
	cp.Task(ids[0]).ExecTime[0] = 999
	cp.Task(ids[0]).Deadline = 123
	if g.Task(ids[0]).ExecTime[0] == 999 {
		t.Error("clone shares ExecTime storage")
	}
	if g.Task(ids[0]).Deadline == 123 {
		t.Error("clone shares task metadata")
	}
	if _, err := cp.AddEdge(ids[0], ids[3], 1); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == cp.NumEdges() {
		t.Error("clone shares edge storage")
	}
}

func TestScaleDeadlines(t *testing.T) {
	g := New("sd")
	a, _ := g.AddTask("a", []int64{10}, []float64{1}, 1000)
	b, _ := g.AddTask("b", []int64{10}, []float64{1}, NoDeadline)
	g.AddEdge(a, b, 0)

	half := g.ScaleDeadlines(0.5)
	if d := half.Task(a).Deadline; d != 500 {
		t.Errorf("scaled deadline = %d, want 500", d)
	}
	if half.Task(b).Deadline != NoDeadline {
		t.Error("unconstrained task acquired a deadline")
	}
	// Scaling to nothing clamps at 1, never 0 or negative.
	tiny := g.ScaleDeadlines(1e-9)
	if d := tiny.Task(a).Deadline; d != 1 {
		t.Errorf("clamped deadline = %d, want 1", d)
	}
	// The original graph is untouched.
	if g.Task(a).Deadline != 1000 {
		t.Error("ScaleDeadlines mutated the receiver")
	}
}

func TestDeadlineTasks(t *testing.T) {
	g, ids := buildDiamond(t)
	if dl := g.DeadlineTasks(); len(dl) != 0 {
		t.Errorf("unexpected deadline tasks %v", dl)
	}
	g.Task(ids[3]).Deadline = 400
	if dl := g.DeadlineTasks(); len(dl) != 1 || dl[0] != ids[3] {
		t.Errorf("DeadlineTasks = %v", dl)
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New("prop")
	ids := make([]TaskID, n)
	for i := 0; i < n; i++ {
		ids[i], _ = g.AddTask("t", []int64{int64(1 + rng.Intn(50))}, []float64{rng.Float64() * 10}, NoDeadline)
	}
	for i := 1; i < n; i++ {
		for k := 0; k < 1+rng.Intn(2); k++ {
			g.AddEdge(ids[rng.Intn(i)], ids[i], int64(rng.Intn(1000)))
		}
	}
	return g
}

// Property: topological order exists for edge-forward random graphs and
// respects every edge; levels are consistent with predecessor levels.
func TestQuickTopoProperties(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%40) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		order, err := g.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := make(map[TaskID]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.Src] >= pos[e.Dst] {
				return false
			}
		}
		levels, err := g.Levels()
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if levels[e.Dst] <= levels[e.Src] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
