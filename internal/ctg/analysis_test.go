package ctg

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func analysisGraph(t *testing.T) (*Graph, [5]TaskID) {
	t.Helper()
	// a(10) -> b(30) -> d(20)
	//   \-> c(5) ---/     \-> e(1, d=100)
	g := New("an")
	var ids [5]TaskID
	for i, spec := range []struct {
		name string
		exec int64
		dl   int64
	}{
		{"a", 10, NoDeadline},
		{"b", 30, NoDeadline},
		{"c", 5, NoDeadline},
		{"d", 20, NoDeadline},
		{"e", 1, 100},
	} {
		id, err := g.AddTask(spec.name, []int64{spec.exec}, []float64{1}, spec.dl)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, e := range [][3]int64{{0, 1, 100}, {0, 2, 0}, {1, 3, 50}, {2, 3, 10}, {3, 4, 0}} {
		if _, err := g.AddEdge(ids[e[0]], ids[e[1]], e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return g, ids
}

func TestCriticalPath(t *testing.T) {
	g, ids := analysisGraph(t)
	path, length, err := g.MeanExecCriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	// Longest: a(10) b(30) d(20) e(1) = 61.
	if length != 61 {
		t.Errorf("critical path length = %v, want 61", length)
	}
	want := []TaskID{ids[0], ids[1], ids[3], ids[4]}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestCriticalPathWithEdgeWeights(t *testing.T) {
	g, _ := analysisGraph(t)
	// Giving arcs weight = volume/10 shifts nothing here (the heavy
	// arcs lie on the already-critical path) but must increase length:
	// 61 + (100+50)/10 = 76.
	_, length, err := g.CriticalPath(
		func(task *Task) float64 { return float64(task.ExecTime[0]) },
		func(e *Edge) float64 { return float64(e.Volume) / 10 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if length != 76 {
		t.Errorf("weighted critical path = %v, want 76", length)
	}
}

func TestComputeStats(t *testing.T) {
	g, _ := analysisGraph(t)
	s, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks != 5 || s.Edges != 5 || s.ControlEdges != 2 || s.DataEdges != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalVolume != 160 || s.Sources != 1 || s.Sinks != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.DeadlineTasks != 1 || s.MaxLevel != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.MeanExecCP != 61 {
		t.Errorf("MeanExecCP = %v", s.MeanExecCP)
	}
	// Laxity: deadline 100 / longest-to-e 61.
	if math.Abs(s.MinLaxity-100.0/61.0) > 1e-9 {
		t.Errorf("MinLaxity = %v", s.MinLaxity)
	}
}

func TestComputeStatsNoDeadline(t *testing.T) {
	g := New("nd")
	if _, err := g.AddTask("a", []int64{5}, []float64{1}, NoDeadline); err != nil {
		t.Fatal(err)
	}
	s, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(s.MinLaxity, 1) {
		t.Errorf("MinLaxity = %v, want +Inf", s.MinLaxity)
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := analysisGraph(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph", "t0 ->", "label=\"100\"", "style=dashed",
		"d=100", "peripheries=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g, ids := analysisGraph(t)
	anc := g.Ancestors(ids[3]) // d: a, b, c
	if len(anc) != 3 {
		t.Errorf("Ancestors(d) = %v", anc)
	}
	if got := g.Ancestors(ids[0]); len(got) != 0 {
		t.Errorf("Ancestors(source) = %v", got)
	}
	desc := g.Descendants(ids[0]) // a: everyone else
	if len(desc) != 4 {
		t.Errorf("Descendants(a) = %v", desc)
	}
	if got := g.Descendants(ids[4]); len(got) != 0 {
		t.Errorf("Descendants(sink) = %v", got)
	}
}
