package ctg

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation of a Graph. Deadlines are
// omitted (not serialized as MaxInt64) for unconstrained tasks.
type jsonGraph struct {
	Name  string     `json:"name"`
	Tasks []jsonTask `json:"tasks"`
	Edges []jsonEdge `json:"edges"`
}

type jsonTask struct {
	Name     string    `json:"name"`
	ExecTime []int64   `json:"exec_time"`
	Energy   []float64 `json:"energy"`
	Deadline *int64    `json:"deadline,omitempty"`
}

type jsonEdge struct {
	Src    TaskID `json:"src"`
	Dst    TaskID `json:"dst"`
	Volume int64  `json:"volume"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name}
	for i := range g.tasks {
		t := &g.tasks[i]
		jt := jsonTask{Name: t.Name, ExecTime: t.ExecTime, Energy: t.Energy}
		if t.HasDeadline() {
			d := t.Deadline
			jt.Deadline = &d
		}
		jg.Tasks = append(jg.Tasks, jt)
	}
	for i := range g.edges {
		e := &g.edges[i]
		jg.Edges = append(jg.Edges, jsonEdge{Src: e.Src, Dst: e.Dst, Volume: e.Volume})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded graph is
// validated; malformed graphs (cycles, ragged per-PE arrays, dangling
// edge endpoints) are rejected.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("ctg: decode: %w", err)
	}
	fresh := New(jg.Name)
	for _, jt := range jg.Tasks {
		deadline := NoDeadline
		if jt.Deadline != nil {
			deadline = *jt.Deadline
		}
		if _, err := fresh.AddTask(jt.Name, jt.ExecTime, jt.Energy, deadline); err != nil {
			return err
		}
	}
	for _, je := range jg.Edges {
		if _, err := fresh.AddEdge(je.Src, je.Dst, je.Volume); err != nil {
			return err
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	*g = *fresh
	return nil
}

// WriteJSON writes the graph to w as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON decodes a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
