package ctg

import (
	"strings"
	"testing"
)

func unrollBase(t *testing.T) (*Graph, [3]TaskID) {
	t.Helper()
	g := New("period")
	var ids [3]TaskID
	for i, spec := range []struct {
		name string
		dl   int64
	}{{"in", NoDeadline}, {"work", NoDeadline}, {"out", 1000}} {
		id, err := g.AddTask(spec.name, []int64{10, 20}, []float64{1, 2}, spec.dl)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	g.AddEdge(ids[0], ids[1], 100)
	g.AddEdge(ids[1], ids[2], 100)
	return g, ids
}

func TestUnrollStructure(t *testing.T) {
	g, ids := unrollBase(t)
	u, err := Unroll(g, 3, 500, []CrossDep{{From: ids[1], To: ids[1], Volume: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.NumTasks() != 9 {
		t.Errorf("tasks = %d, want 9", u.NumTasks())
	}
	// 2 intra edges x 3 iterations + 2 cross edges.
	if u.NumEdges() != 8 {
		t.Errorf("edges = %d, want 8", u.NumEdges())
	}
	// Deadlines offset by i*period.
	for i, want := range []int64{1000, 1500, 2000} {
		id := TaskID(i*3) + ids[2]
		if u.Task(id).Deadline != want {
			t.Errorf("iteration %d deadline = %d, want %d", i, u.Task(id).Deadline, want)
		}
	}
	// Unconstrained tasks stay unconstrained.
	if u.Task(ids[0]).HasDeadline() || u.Task(TaskID(3)+ids[0]).HasDeadline() {
		t.Error("unconstrained task acquired a deadline")
	}
	// Naming and iteration recovery.
	if u.Task(TaskID(3)+ids[1]).Name != "work#1" {
		t.Errorf("name = %q", u.Task(TaskID(3)+ids[1]).Name)
	}
	if IterationOf(TaskID(7), 3) != 2 {
		t.Error("IterationOf wrong")
	}
	// The cross dependency links work#0 -> work#1.
	found := false
	for _, e := range u.Edges() {
		if u.Task(e.Src).Name == "work#0" && u.Task(e.Dst).Name == "work#1" {
			found = true
			if e.Volume != 64 {
				t.Errorf("cross volume = %d", e.Volume)
			}
		}
	}
	if !found {
		t.Error("cross dependency missing")
	}
}

func TestUnrollValidation(t *testing.T) {
	g, ids := unrollBase(t)
	if _, err := Unroll(g, 0, 100, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Unroll(g, 2, -1, nil); err == nil {
		t.Error("negative period accepted")
	}
	if _, err := Unroll(g, 2, 100, []CrossDep{{From: 99, To: ids[0]}}); err == nil {
		t.Error("bad cross source accepted")
	}
	if _, err := Unroll(g, 2, 100, []CrossDep{{From: ids[0], To: ids[1], Volume: -1}}); err == nil {
		t.Error("negative cross volume accepted")
	}
	// Cyclic base graph rejected via Validate.
	cyc := New("cyc")
	a, _ := cyc.AddTask("a", []int64{1}, []float64{1}, NoDeadline)
	b, _ := cyc.AddTask("b", []int64{1}, []float64{1}, NoDeadline)
	cyc.AddEdge(a, b, 0)
	cyc.AddEdge(b, a, 0)
	if _, err := Unroll(cyc, 2, 100, nil); err == nil {
		t.Error("cyclic base accepted")
	}
}

func TestUnrollSingleIterationIsCopy(t *testing.T) {
	g, _ := unrollBase(t)
	u, err := Unroll(g, 1, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumTasks() != g.NumTasks() || u.NumEdges() != g.NumEdges() {
		t.Error("single unroll changed structure")
	}
	if !strings.HasSuffix(u.Name, "-x1") {
		t.Errorf("name = %q", u.Name)
	}
}
