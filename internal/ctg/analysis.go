package ctg

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// CriticalPath returns the longest source-to-sink path through the
// graph when each task is weighted by weight(task) and each arc by
// edgeWeight(edge), together with its total length. Typical uses:
// mean-execution critical path (weight = mean exec, edgeWeight = 0) or
// communication-aware critical path (edgeWeight = transfer time).
// It returns an error for cyclic graphs.
func (g *Graph) CriticalPath(weight func(*Task) float64, edgeWeight func(*Edge) float64) ([]TaskID, float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := make([]float64, g.NumTasks())
	// via[t] records the arc that realizes dist[t], or -1 for sources.
	via := make([]EdgeID, g.NumTasks())
	for i := range via {
		via[i] = -1
	}
	for _, t := range order {
		best, bestVia := 0.0, EdgeID(-1)
		for _, eid := range g.In(t) {
			e := g.Edge(eid)
			cand := dist[e.Src] + edgeWeight(e)
			if cand > best || (cand == best && bestVia < 0) {
				best, bestVia = cand, eid
			}
		}
		dist[t] = best + weight(g.Task(t))
		via[t] = bestVia
	}
	// Locate the global maximum and walk back.
	end := TaskID(0)
	for i := 1; i < g.NumTasks(); i++ {
		if dist[i] > dist[end] {
			end = TaskID(i)
		}
	}
	var path []TaskID
	for t := end; ; {
		path = append(path, t)
		if via[t] < 0 {
			break
		}
		t = g.Edge(via[t]).Src
	}
	// Reverse into source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[end], nil
}

// MeanExecCriticalPath is CriticalPath weighted by each task's mean
// execution time over its runnable PEs, ignoring communication — the
// quantity the paper's slack budgeting reasons about.
func (g *Graph) MeanExecCriticalPath() ([]TaskID, float64, error) {
	return g.CriticalPath(func(t *Task) float64 {
		sum, n := 0.0, 0
		for k, r := range t.ExecTime {
			if r >= 0 {
				sum += float64(t.ExecTime[k])
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}, func(*Edge) float64 { return 0 })
}

// Stats summarizes a graph for reports and generators.
type Stats struct {
	Tasks         int
	Edges         int
	ControlEdges  int
	DataEdges     int
	TotalVolume   int64
	Sources       int
	Sinks         int
	DeadlineTasks int
	MaxLevel      int
	// MeanExecCP is the mean-execution critical path length.
	MeanExecCP float64
	// MinLaxity is the tightest deadline / critical-path-to-it ratio
	// over deadline tasks (+Inf when no deadline exists).
	MinLaxity float64
}

// ComputeStats returns the graph's summary statistics.
func (g *Graph) ComputeStats() (Stats, error) {
	s := Stats{
		Tasks:       g.NumTasks(),
		Edges:       g.NumEdges(),
		TotalVolume: g.TotalVolume(),
		Sources:     len(g.Sources()),
		Sinks:       len(g.Sinks()),
		MinLaxity:   math.Inf(1),
	}
	for _, e := range g.Edges() {
		if e.Volume == 0 {
			s.ControlEdges++
		} else {
			s.DataEdges++
		}
	}
	levels, err := g.Levels()
	if err != nil {
		return s, err
	}
	for _, l := range levels {
		if l > s.MaxLevel {
			s.MaxLevel = l
		}
	}
	_, cp, err := g.MeanExecCriticalPath()
	if err != nil {
		return s, err
	}
	s.MeanExecCP = cp

	// Per-deadline laxity: deadline / longest mean path to that task.
	order, _ := g.TopoOrder()
	longest := make([]float64, g.NumTasks())
	for _, t := range order {
		task := g.Task(t)
		mean, n := 0.0, 0
		for k, r := range task.ExecTime {
			if r >= 0 {
				mean += float64(task.ExecTime[k])
				n++
			}
		}
		mean /= float64(n)
		best := 0.0
		for _, p := range g.Pred(t) {
			if longest[p] > best {
				best = longest[p]
			}
		}
		longest[t] = best + mean
	}
	for _, d := range g.DeadlineTasks() {
		s.DeadlineTasks++
		if longest[d] > 0 {
			if lax := float64(g.Task(d).Deadline) / longest[d]; lax < s.MinLaxity {
				s.MinLaxity = lax
			}
		}
	}
	return s, nil
}

// WriteDOT renders the graph in Graphviz DOT format: tasks as nodes
// (deadline tasks doubled-outlined, annotated with their deadline),
// arcs labeled with volumes. Intended for documentation and debugging.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	for i := range g.tasks {
		t := &g.tasks[i]
		label := t.Name
		attrs := ""
		if t.HasDeadline() {
			label = fmt.Sprintf("%s\\nd=%d", t.Name, t.Deadline)
			attrs = ", peripheries=2"
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\"%s];\n", t.ID, label, attrs)
	}
	for i := range g.edges {
		e := &g.edges[i]
		if e.Volume > 0 {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%d\"];\n", e.Src, e.Dst, e.Volume)
		} else {
			fmt.Fprintf(&b, "  t%d -> t%d [style=dashed];\n", e.Src, e.Dst)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Ancestors returns the set of tasks from which t is reachable
// (excluding t itself), in ascending ID order.
func (g *Graph) Ancestors(t TaskID) []TaskID {
	seen := make(map[TaskID]bool)
	stack := []TaskID{t}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Pred(cur) {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	out := make([]TaskID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Descendants returns the set of tasks reachable from t (excluding t
// itself), in ascending ID order.
func (g *Graph) Descendants(t TaskID) []TaskID {
	seen := make(map[TaskID]bool)
	stack := []TaskID{t}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succ(cur) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	out := make([]TaskID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
