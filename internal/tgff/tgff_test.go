package tgff

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
)

func platform(t *testing.T) *noc.Platform {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func baseParams(p *noc.Platform) Params {
	return Params{
		Name: "t", Seed: 1, NumTasks: 100, MaxInDegree: 3,
		LocalityWindow: 16, TaskTypes: 10, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 8192,
		ControlEdgeFraction: 0.1, DeadlineLaxity: 1.3, DeadlineFraction: 1,
		Platform: p,
	}
}

func TestParamsValidation(t *testing.T) {
	p := platform(t)
	good := baseParams(p)
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	mutations := map[string]func(*Params){
		"tasks":    func(q *Params) { q.NumTasks = 0 },
		"indeg":    func(q *Params) { q.MaxInDegree = 0 },
		"types":    func(q *Params) { q.TaskTypes = 0 },
		"exec":     func(q *Params) { q.ExecMin = 0 },
		"execswap": func(q *Params) { q.ExecMax = q.ExecMin - 1 },
		"vol":      func(q *Params) { q.VolumeMin = -1 },
		"laxity":   func(q *Params) { q.DeadlineLaxity = 0 },
		"dfrac":    func(q *Params) { q.DeadlineFraction = 1.5 },
		"cfrac":    func(q *Params) { q.ControlEdgeFraction = -0.1 },
		"spread":   func(q *Params) { q.HeteroSpread = -1 },
		"platform": func(q *Params) { q.Platform = nil },
	}
	for name, f := range mutations {
		bad := baseParams(p)
		f(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid params accepted", name)
		}
		if _, err := Generate(bad); err == nil {
			t.Errorf("%s: Generate accepted invalid params", name)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	p := platform(t)
	g1, err := Generate(baseParams(p))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(baseParams(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Tasks(), g2.Tasks()) || !reflect.DeepEqual(g1.Edges(), g2.Edges()) {
		t.Error("same seed produced different graphs")
	}
	alt := baseParams(p)
	alt.Seed = 2
	g3, err := Generate(alt)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(g1.Edges(), g3.Edges()) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateInjectedRand(t *testing.T) {
	p := platform(t)
	// An injected stream seeded like Params.Seed reproduces the
	// Seed-driven graph exactly, and takes precedence over Seed.
	params := baseParams(p)
	seeded, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	params.Rand = rand.New(rand.NewSource(params.Seed))
	params.Seed = 999 // must be ignored
	injected, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seeded.Tasks(), injected.Tasks()) ||
		!reflect.DeepEqual(seeded.Edges(), injected.Edges()) {
		t.Error("injected stream diverged from the equivalent seed")
	}

	// One shared stream across consecutive calls keeps advancing: the
	// second draw differs from the first.
	shared := rand.New(rand.NewSource(5))
	params = baseParams(p)
	params.Rand = shared
	g1, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(g1.Edges(), g2.Edges()) {
		t.Error("shared stream did not advance between calls")
	}

	// Concurrent generation is race-free when each goroutine owns its
	// stream (exercised under -race in CI).
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			pp := baseParams(p)
			pp.Rand = rand.New(rand.NewSource(seed))
			if _, err := Generate(pp); err != nil {
				t.Error(err)
			}
		}(int64(i))
	}
	wg.Wait()
}

func TestGenerateStructure(t *testing.T) {
	p := platform(t)
	params := baseParams(p)
	g, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if g.NumTasks() != params.NumTasks {
		t.Errorf("NumTasks = %d, want %d", g.NumTasks(), params.NumTasks)
	}
	if g.NumPEs() != p.NumPEs() {
		t.Errorf("NumPEs = %d", g.NumPEs())
	}
	// Edge count: each non-source task draws 1..3 preds, so between
	// n-1 and 3(n-1).
	if g.NumEdges() < params.NumTasks-1 || g.NumEdges() > 3*(params.NumTasks-1) {
		t.Errorf("NumEdges = %d out of expected range", g.NumEdges())
	}
	// With DeadlineFraction 1, every sink has a deadline.
	for _, sink := range g.Sinks() {
		if !g.Task(sink).HasDeadline() {
			t.Errorf("sink %d has no deadline", sink)
		}
	}
	// The locality window bounds predecessor distance.
	for _, e := range g.Edges() {
		if int(e.Dst)-int(e.Src) > params.LocalityWindow {
			t.Errorf("edge %d->%d violates locality window %d", e.Src, e.Dst, params.LocalityWindow)
		}
	}
}

func TestVolumesAndControlEdges(t *testing.T) {
	p := platform(t)
	params := baseParams(p)
	params.ControlEdgeFraction = 0.5
	params.NumTasks = 400
	g, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	zero, nonzero := 0, 0
	for _, e := range g.Edges() {
		switch {
		case e.Volume == 0:
			zero++
		case e.Volume >= params.VolumeMin && e.Volume <= params.VolumeMax:
			nonzero++
		default:
			t.Fatalf("edge volume %d outside [%d,%d]", e.Volume, params.VolumeMin, params.VolumeMax)
		}
	}
	if zero == 0 || nonzero == 0 {
		t.Errorf("edge mix degenerate: %d control, %d data", zero, nonzero)
	}
	// Roughly half control edges (generous tolerance).
	frac := float64(zero) / float64(zero+nonzero)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("control fraction %.2f far from 0.5", frac)
	}
}

func TestSuiteShapes(t *testing.T) {
	p := platform(t)
	for _, c := range []Category{CategoryI, CategoryII} {
		for i := 0; i < SuiteSize; i += 3 { // sample the suite
			g, err := Generate(SuiteParams(c, i, p))
			if err != nil {
				t.Fatalf("cat %s idx %d: %v", c, i, err)
			}
			if g.NumTasks() < 450 || g.NumTasks() > 550 {
				t.Errorf("cat %s idx %d: %d tasks, want ~500", c, i, g.NumTasks())
			}
			if g.NumEdges() < 800 || g.NumEdges() > 1200 {
				t.Errorf("cat %s idx %d: %d edges, want ~1000", c, i, g.NumEdges())
			}
		}
	}
	// Category II must be strictly tighter than category I at the same
	// index.
	if SuiteParams(CategoryII, 0, p).DeadlineLaxity >= SuiteParams(CategoryI, 0, p).DeadlineLaxity {
		t.Error("category II not tighter than category I")
	}
}

func TestCategoryString(t *testing.T) {
	if CategoryI.String() != "I" || CategoryII.String() != "II" {
		t.Error("category names wrong")
	}
}

// Property: generated graphs are always valid DAGs with deadlines only
// on sinks and per-PE arrays matching the platform.
func TestQuickGeneratedGraphsValid(t *testing.T) {
	p := platform(t)
	f := func(seed int64, n8 uint8, lax8 uint8) bool {
		params := baseParams(p)
		params.Seed = seed
		params.NumTasks = int(n8%100) + 2
		params.DeadlineLaxity = 0.5 + float64(lax8%30)/10
		g, err := Generate(params)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		for i := 0; i < g.NumTasks(); i++ {
			task := g.Task(ctg.TaskID(i))
			if len(task.ExecTime) != p.NumPEs() {
				return false
			}
			if task.HasDeadline() && len(g.Out(task.ID)) != 0 {
				return false // deadline on a non-sink
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
