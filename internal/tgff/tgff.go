// Package tgff generates pseudo-random Communication Task Graphs in the
// spirit of the TGFF tool (Dick, Rhodes, Wolf — "TGFF: task graphs for
// free") that the paper uses for its random benchmarks (Sec. 6.1).
//
// This is a from-scratch reimplementation of the parts of TGFF the
// experiments rely on: seeded, reproducible series-parallel-ish DAGs
// with controllable size, fan-in/fan-out, task-type attribute tables,
// communication volumes, and deadline laxity. The paper's two benchmark
// categories (10 graphs each, ~500 tasks, ~1000 transactions, scheduled
// on a 4x4 heterogeneous NoC; category II with tighter deadlines) are
// provided as ready-made suites.
package tgff

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/noc"
)

// Params controls graph generation. All randomness derives from Seed.
type Params struct {
	// Name becomes the graph name.
	Name string
	// Seed drives the deterministic RNG.
	Seed int64
	// Rand, when non-nil, supplies the random stream directly and Seed
	// is ignored. Injecting a stream lets a driver interleave graph
	// generation with other draws from one reproducible source. Each
	// concurrent Generate call needs its own *rand.Rand: the generator
	// never locks the stream.
	Rand *rand.Rand

	// NumTasks is the exact number of tasks to generate.
	NumTasks int
	// Shape selects the structural family (layered by default, or
	// series-parallel fork/join blocks).
	Shape Shape
	// MaxInDegree bounds how many predecessors a task draws (>= 1;
	// layered shape). For the series-parallel shape it bounds the
	// fan-out of parallel blocks instead.
	MaxInDegree int
	// LocalityWindow restricts predecessors of task i to tasks in
	// [i-LocalityWindow, i), which yields the layered, pipeline-like
	// structure TGFF's fan-out expansion produces. 0 means no
	// restriction.
	LocalityWindow int

	// TaskTypes is the number of distinct task types; tasks of the
	// same type share execution/energy characteristics, as in TGFF's
	// attribute tables.
	TaskTypes int
	// ExecMin/ExecMax bound the reference execution time of a type.
	ExecMin, ExecMax int64
	// HeteroSpread widens per-type per-class affinity: a type's
	// execution time on a PE class is scaled by a factor drawn from
	// [1/(1+HeteroSpread), 1+HeteroSpread]. 0 leaves only the class
	// speed/power factors as the source of heterogeneity.
	HeteroSpread float64

	// VolumeMin/VolumeMax bound edge communication volumes in bits.
	// A fraction ControlEdgeFraction of edges carry no data.
	VolumeMin, VolumeMax int64
	ControlEdgeFraction  float64

	// DeadlineLaxity sets sink deadlines to laxity * (longest
	// mean-execution path to the sink). Values near 1 are tight;
	// values >= 2 are loose.
	DeadlineLaxity float64
	// DeadlineFraction is the fraction of sink tasks that receive a
	// deadline (TGFF-style graphs put deadlines on sinks).
	DeadlineFraction float64

	// Platform provides the PE classes the per-PE tables are built
	// for.
	Platform *noc.Platform
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	switch {
	case p.NumTasks < 1:
		return fmt.Errorf("tgff: NumTasks %d < 1", p.NumTasks)
	case p.MaxInDegree < 1:
		return fmt.Errorf("tgff: MaxInDegree %d < 1", p.MaxInDegree)
	case p.TaskTypes < 1:
		return fmt.Errorf("tgff: TaskTypes %d < 1", p.TaskTypes)
	case p.ExecMin < 1 || p.ExecMax < p.ExecMin:
		return fmt.Errorf("tgff: bad exec range [%d,%d]", p.ExecMin, p.ExecMax)
	case p.VolumeMin < 0 || p.VolumeMax < p.VolumeMin:
		return fmt.Errorf("tgff: bad volume range [%d,%d]", p.VolumeMin, p.VolumeMax)
	case p.DeadlineLaxity <= 0:
		return fmt.Errorf("tgff: non-positive deadline laxity %g", p.DeadlineLaxity)
	case p.DeadlineFraction < 0 || p.DeadlineFraction > 1:
		return fmt.Errorf("tgff: deadline fraction %g outside [0,1]", p.DeadlineFraction)
	case p.ControlEdgeFraction < 0 || p.ControlEdgeFraction > 1:
		return fmt.Errorf("tgff: control edge fraction %g outside [0,1]", p.ControlEdgeFraction)
	case p.HeteroSpread < 0:
		return fmt.Errorf("tgff: negative hetero spread %g", p.HeteroSpread)
	case p.Shape != ShapeLayered && p.Shape != ShapeSeriesParallel:
		return fmt.Errorf("tgff: unknown shape %v", p.Shape)
	case p.Platform == nil:
		return fmt.Errorf("tgff: nil platform")
	}
	return nil
}

// taskType is one row of the TGFF-style attribute table.
type taskType struct {
	refExec int64
	// perPE execution times and energies, one entry per platform PE.
	exec   []int64
	energy []float64
}

// Generate builds a random CTG according to the parameters.
func Generate(p Params) (*ctg.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := p.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	classes := p.Platform.Classes

	// Attribute table: per type, per PE-class affinity jitter, then
	// concrete per-PE arrays.
	types := make([]taskType, p.TaskTypes)
	classAffinity := func() float64 {
		if p.HeteroSpread == 0 {
			return 1
		}
		lo := 1 / (1 + p.HeteroSpread)
		hi := 1 + p.HeteroSpread
		return lo + rng.Float64()*(hi-lo)
	}
	for i := range types {
		ref := p.ExecMin + rng.Int63n(p.ExecMax-p.ExecMin+1)
		tt := taskType{
			refExec: ref,
			exec:    make([]int64, len(classes)),
			energy:  make([]float64, len(classes)),
		}
		// One affinity per distinct class name so that identical
		// classes on different tiles stay identical, as on a real
		// platform.
		aff := make(map[string]float64)
		for k, c := range classes {
			a, ok := aff[c.Name]
			if !ok {
				a = classAffinity()
				aff[c.Name] = a
			}
			t := float64(ref) * c.SpeedFactor * a
			if t < 1 {
				t = 1
			}
			tt.exec[k] = int64(math.Round(t))
			tt.energy[k] = float64(ref) * c.EnergyFactor() * a
		}
		types[i] = tt
	}

	g := ctg.New(p.Name)
	ids := make([]ctg.TaskID, p.NumTasks)
	typeOf := make([]int, p.NumTasks)
	for i := 0; i < p.NumTasks; i++ {
		ti := rng.Intn(p.TaskTypes)
		typeOf[i] = ti
		id, err := g.AddTask(fmt.Sprintf("t%d", i), types[ti].exec, types[ti].energy, ctg.NoDeadline)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}

	drawVolume := func() int64 {
		if rng.Float64() >= p.ControlEdgeFraction && p.VolumeMax > 0 {
			return p.VolumeMin + rng.Int63n(p.VolumeMax-p.VolumeMin+1)
		}
		return 0
	}
	switch p.Shape {
	case ShapeSeriesParallel:
		for _, e := range spEdges(rng, p.NumTasks, p.MaxInDegree+1) {
			if _, err := g.AddEdge(ids[e[0]], ids[e[1]], drawVolume()); err != nil {
				return nil, err
			}
		}
	default:
		// Layered: every task after the first draws 1..MaxInDegree
		// distinct predecessors from its locality window, keeping the
		// graph connected and acyclic by construction.
		for i := 1; i < p.NumTasks; i++ {
			lo := 0
			if p.LocalityWindow > 0 && i-p.LocalityWindow > 0 {
				lo = i - p.LocalityWindow
			}
			window := i - lo
			indeg := 1 + rng.Intn(p.MaxInDegree)
			if indeg > window {
				indeg = window
			}
			seen := make(map[int]bool, indeg)
			for len(seen) < indeg {
				seen[lo+rng.Intn(window)] = true
			}
			// Sorted source order keeps edge numbering deterministic
			// (map iteration order is randomized).
			srcs := make([]int, 0, indeg)
			for src := range seen {
				srcs = append(srcs, src)
			}
			sort.Ints(srcs)
			for _, src := range srcs {
				if _, err := g.AddEdge(ids[src], ids[i], drawVolume()); err != nil {
					return nil, err
				}
			}
		}
	}

	if err := assignDeadlines(g, rng, p); err != nil {
		return nil, err
	}
	return g, nil
}

// assignDeadlines gives (a fraction of) the sinks deadlines of
// laxity * longest mean-execution path, the standard TGFF "period/
// deadline from graph depth" recipe.
func assignDeadlines(g *ctg.Graph, rng *rand.Rand, p Params) error {
	order, err := g.TopoOrder()
	if err != nil {
		return err
	}
	// Longest mean path (execution only; communication adds slack
	// pressure on top, which is what distinguishes the two categories'
	// effective tightness).
	longest := make([]float64, g.NumTasks())
	for _, t := range order {
		task := g.Task(t)
		mean := 0.0
		n := 0
		for k, r := range task.ExecTime {
			if r >= 0 {
				mean += float64(task.ExecTime[k])
				n++
			}
		}
		mean /= float64(n)
		best := 0.0
		for _, pr := range g.Pred(t) {
			if longest[pr] > best {
				best = longest[pr]
			}
		}
		longest[t] = best + mean
	}
	for _, sink := range g.Sinks() {
		if rng.Float64() >= p.DeadlineFraction {
			continue
		}
		d := int64(math.Round(longest[sink] * p.DeadlineLaxity))
		if d < 1 {
			d = 1
		}
		// Deadlines are data, not structure, so poking the task
		// in place is safe here inside the generator.
		g.Task(sink).Deadline = d
	}
	return nil
}

// Category identifies one of the paper's two random benchmark suites.
type Category int

const (
	// CategoryI has the looser deadlines of the paper's first suite.
	CategoryI Category = iota + 1
	// CategoryII has "tighter deadlines" (paper Sec. 6.1).
	CategoryII
)

// String returns "I" or "II".
func (c Category) String() string {
	switch c {
	case CategoryI:
		return "I"
	case CategoryII:
		return "II"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// SuiteSize is the number of benchmarks per category in the paper.
const SuiteSize = 10

// SuiteParams returns the generation parameters for benchmark index
// (0-based) of the given category, targeting ~500 tasks and ~1000
// transactions on the given platform. "Various parameters are used ...
// to generate benchmarks with different topologies and task/
// communication distributions" — the locality window, fan-in, volumes
// and type count all vary across the suite.
func SuiteParams(c Category, index int, platform *noc.Platform) Params {
	// The laxities put the suites at the paper's operating points:
	// category I schedules comfortably but EAS-base occasionally
	// misses a deadline; category II is tight enough that several
	// benchmarks need search-and-repair. (Laxity is relative to the
	// longest mean-execution path; fast PEs run well below the mean,
	// so values near 1 still leave room.)
	laxity := 1.30 - 0.02*float64(index) // category I: loose
	if c == CategoryII {
		laxity = 1.05 - 0.005*float64(index) // category II: tight
	}
	return Params{
		Name:                fmt.Sprintf("tgff-cat%s-%02d", c, index),
		Seed:                int64(c)*10_000 + int64(index)*101 + 7,
		NumTasks:            480 + 5*index, // "around 500 tasks"
		MaxInDegree:         3,             // ~1000 transactions
		LocalityWindow:      24 + 8*(index%4),
		TaskTypes:           16 + 2*(index%5),
		ExecMin:             40,
		ExecMax:             400,
		HeteroSpread:        0.5,
		VolumeMin:           512,
		VolumeMax:           16384,
		ControlEdgeFraction: 0.1,
		DeadlineLaxity:      laxity,
		DeadlineFraction:    1.0,
		Platform:            platform,
	}
}

// Suite generates the full 10-benchmark suite of a category.
func Suite(c Category, platform *noc.Platform) ([]*ctg.Graph, error) {
	graphs := make([]*ctg.Graph, 0, SuiteSize)
	for i := 0; i < SuiteSize; i++ {
		g, err := Generate(SuiteParams(c, i, platform))
		if err != nil {
			return nil, fmt.Errorf("tgff: category %s benchmark %d: %w", c, i, err)
		}
		graphs = append(graphs, g)
	}
	return graphs, nil
}
