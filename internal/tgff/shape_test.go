package tgff

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nocsched/internal/ctg"
)

func TestSPEdgesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		edges := spEdges(rand.New(rand.NewSource(int64(trial))), n, 4)
		// IDs must cover exactly 0..n-1 and all arcs go forward.
		maxID := 0
		for _, e := range edges {
			if e[0] >= e[1] {
				t.Fatalf("n=%d: backward arc %v", n, e)
			}
			if e[1] > maxID {
				maxID = e[1]
			}
		}
		if n > 1 && maxID != n-1 {
			t.Fatalf("n=%d: max ID %d", n, maxID)
		}
		// Connectivity: every non-zero task has an incoming arc, every
		// non-last task an outgoing one (series-parallel blocks have a
		// single entry/exit).
		hasIn := make([]bool, n)
		hasOut := make([]bool, n)
		for _, e := range edges {
			hasOut[e[0]] = true
			hasIn[e[1]] = true
		}
		for i := 1; i < n; i++ {
			if !hasIn[i] {
				t.Fatalf("n=%d: task %d has no predecessor", n, i)
			}
		}
		for i := 0; i < n-1; i++ {
			if !hasOut[i] {
				t.Fatalf("n=%d: task %d has no successor", n, i)
			}
		}
	}
}

func TestGenerateSeriesParallel(t *testing.T) {
	p := platform(t)
	params := baseParams(p)
	params.Shape = ShapeSeriesParallel
	params.NumTasks = 300
	g, err := Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("SP graph invalid: %v", err)
	}
	if g.NumTasks() != 300 {
		t.Errorf("tasks = %d", g.NumTasks())
	}
	// Series-parallel blocks have one source and one sink.
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Errorf("sources=%d sinks=%d, want 1/1", len(g.Sources()), len(g.Sinks()))
	}
	// The sink carries the deadline.
	if !g.Task(g.Sinks()[0]).HasDeadline() {
		t.Error("SP sink has no deadline")
	}
}

func TestGenerateRejectsUnknownShape(t *testing.T) {
	p := platform(t)
	params := baseParams(p)
	params.Shape = Shape(99)
	if _, err := Generate(params); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestShapeString(t *testing.T) {
	if ShapeLayered.String() != "layered" || ShapeSeriesParallel.String() != "series-parallel" {
		t.Error("shape names wrong")
	}
}

// Property: SP generation is deterministic per seed and yields valid
// schedulable DAGs.
func TestQuickSPGraphsValid(t *testing.T) {
	p := platform(t)
	f := func(seed int64, n8 uint8) bool {
		params := baseParams(p)
		params.Shape = ShapeSeriesParallel
		params.Seed = seed
		params.NumTasks = int(n8%120) + 1
		g1, err := Generate(params)
		if err != nil || g1.Validate() != nil {
			return false
		}
		g2, err := Generate(params)
		if err != nil {
			return false
		}
		if g1.NumEdges() != g2.NumEdges() {
			return false
		}
		for i := 0; i < g1.NumEdges(); i++ {
			if *g1.Edge(ctg.EdgeID(i)) != *g2.Edge(ctg.EdgeID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
