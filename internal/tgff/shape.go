package tgff

import (
	"fmt"
	"math/rand"
)

// Shape selects the structural family of generated graphs.
type Shape int

const (
	// ShapeLayered (the default) draws each task's predecessors from a
	// sliding window — pipeline-like graphs with controlled fan-in.
	ShapeLayered Shape = iota
	// ShapeSeriesParallel builds a recursive series-parallel graph of
	// fork/join blocks, the structure TGFF's fan-out/fan-in expansion
	// produces for "task graphs for free"-style benchmarks.
	ShapeSeriesParallel
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeLayered:
		return "layered"
	case ShapeSeriesParallel:
		return "series-parallel"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// spEdges generates the arc list of a random series-parallel DAG over
// exactly n tasks with IDs 0..n-1 assigned in topological order (every
// arc satisfies src < dst). maxBranch bounds the fan-out of parallel
// blocks.
func spEdges(rng *rand.Rand, n, maxBranch int) [][2]int {
	if maxBranch < 2 {
		maxBranch = 2
	}
	var edges [][2]int
	next := 0
	alloc := func() int {
		id := next
		next++
		return id
	}
	// build constructs a block of exactly count tasks and returns its
	// entry and exit task IDs. Blocks allocate IDs strictly in
	// topological order.
	var build func(count int) (in, out int)
	build = func(count int) (int, int) {
		switch {
		case count <= 1:
			id := alloc()
			return id, id
		case count == 2:
			a := alloc()
			b := alloc()
			edges = append(edges, [2]int{a, b})
			return a, b
		}
		if count >= 4 && rng.Intn(2) == 0 {
			// Parallel block: fork, 2..maxBranch branches, join.
			inner := count - 2
			branches := 2 + rng.Intn(maxBranch-1)
			if branches > inner {
				branches = inner
			}
			fork := alloc()
			// Partition inner tasks over the branches, each >= 1.
			sizes := make([]int, branches)
			for i := range sizes {
				sizes[i] = 1
			}
			for left := inner - branches; left > 0; left-- {
				sizes[rng.Intn(branches)]++
			}
			outs := make([]int, branches)
			for i, sz := range sizes {
				bin, bout := build(sz)
				edges = append(edges, [2]int{fork, bin})
				outs[i] = bout
			}
			join := alloc()
			for _, o := range outs {
				edges = append(edges, [2]int{o, join})
			}
			return fork, join
		}
		// Series block.
		n1 := 1 + rng.Intn(count-1)
		aIn, aOut := build(n1)
		bIn, bOut := build(count - n1)
		edges = append(edges, [2]int{aOut, bIn})
		return aIn, bOut
	}
	build(n)
	return edges
}
