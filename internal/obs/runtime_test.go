package obs

import (
	"runtime"
	"testing"
	"time"

	"nocsched/internal/telemetry"
)

func TestRuntimeCollectorSamples(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := StartRuntime(reg, time.Hour) // ticker effectively off; Sample drives it
	defer c.Close()

	s := reg.Snapshot()
	byName := map[string]float64{}
	for _, g := range s.Gauges {
		byName[g.Name] = g.Value
	}
	if byName[MetricGoroutines] < 1 {
		t.Errorf("%s = %g, want >= 1", MetricGoroutines, byName[MetricGoroutines])
	}
	if byName[MetricHeapAllocBytes] <= 0 {
		t.Errorf("%s = %g, want > 0", MetricHeapAllocBytes, byName[MetricHeapAllocBytes])
	}
	if byName[MetricSysBytes] <= 0 {
		t.Errorf("%s = %g, want > 0", MetricSysBytes, byName[MetricSysBytes])
	}
	if _, ok := byName[MetricUptime]; !ok {
		t.Errorf("%s missing", MetricUptime)
	}

	// Force GC cycles; the next sample must count them and observe
	// pauses.
	runtime.GC()
	runtime.GC()
	c.Sample()
	s = reg.Snapshot()
	var cycles int64
	for _, cs := range s.Counters {
		if cs.Name == MetricGCCycles {
			cycles = cs.Value
		}
	}
	if cycles < 2 {
		t.Errorf("%s = %d after two runtime.GC(), want >= 2", MetricGCCycles, cycles)
	}
	var pauseCount int64
	for _, h := range s.Histograms {
		if h.Name == MetricGCPauseUS {
			pauseCount = h.Count
		}
	}
	if pauseCount < 2 {
		t.Errorf("%s count = %d, want >= 2", MetricGCPauseUS, pauseCount)
	}
}

func TestRuntimeCollectorTicker(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := StartRuntime(reg, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	c.Close()
	c.Close() // idempotent
	var uptime float64
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == MetricUptime {
			uptime = g.Value
		}
	}
	if uptime <= 0 {
		t.Errorf("uptime = %g after ticking collector, want > 0", uptime)
	}
	var nilC *RuntimeCollector
	nilC.Sample()
	nilC.Close()
}

// TestRuntimeCollectorNilRegistry: no-op handles, no panic.
func TestRuntimeCollectorNilRegistry(t *testing.T) {
	c := StartRuntime(nil, time.Hour)
	c.Sample()
	c.Close()
}
