package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"nocsched/internal/telemetry"
)

// get fetches a path from the server, returning status and body.
func get(t *testing.T, s *Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(s.URL() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestServerEndpoints(t *testing.T) {
	reg := goldenRegistry()
	var ready atomic.Bool
	s, err := Serve("127.0.0.1:0", Options{Registry: reg, Ready: ready.Load})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if code, body := get(t, s, "/healthz"); code != 200 || string(body) != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, s, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", code)
	}
	ready.Store(true)
	if code, body := get(t, s, "/readyz"); code != 200 || string(body) != "ready\n" {
		t.Errorf("/readyz after ready = %d %q", code, body)
	}

	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if n, err := ValidateExposition(bytes.NewReader(body)); err != nil || n == 0 {
		t.Errorf("/metrics invalid: n=%d err=%v", n, err)
	}
	if !strings.Contains(string(body), "sched_probes_total 10864") {
		t.Errorf("/metrics missing counter sample:\n%s", body)
	}
	// Two consecutive scrapes with no traffic are byte-identical.
	_, body2 := get(t, s, "/metrics")
	if !bytes.Equal(body, body2) {
		t.Error("two /metrics scrapes with no traffic differ")
	}

	code, body = get(t, s, "/snapshot")
	if code != 200 {
		t.Fatalf("/snapshot = %d", code)
	}
	snap, err := telemetry.ValidateSnapshot(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/snapshot invalid: %v", err)
	}
	if len(snap.Counters) != 2 || len(snap.Histograms) != 1 {
		t.Errorf("/snapshot shape: %d counters, %d histograms", len(snap.Counters), len(snap.Histograms))
	}

	if code, body := get(t, s, "/debug/pprof/"); code != 200 || !bytes.Contains(body, []byte("profiles")) {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// TestServerNilRegistryAndReady: a bare server (no registry, no
// readiness gate) still serves valid empty documents and reports
// ready.
func TestServerNilRegistryAndReady(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _ := get(t, s, "/readyz"); code != 200 {
		t.Errorf("/readyz with nil Ready = %d, want 200", code)
	}
	code, body := get(t, s, "/metrics")
	if code != 200 || len(body) != 0 {
		t.Errorf("/metrics on empty registry = %d %q", code, body)
	}
	if code, _ := get(t, s, "/snapshot"); code != 200 {
		t.Errorf("/snapshot = %d", code)
	}
}

func TestServerClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.URL()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get(addr + "/healthz"); err == nil {
		t.Error("server still answering after Close")
	}
	var nilS *Server
	if nilS.Close() != nil || nilS.Addr() != "" || nilS.URL() != "" {
		t.Error("nil server accessors misbehave")
	}
}
