package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"nocsched/internal/telemetry"
)

// Options configures the ops server.
type Options struct {
	// Registry is the metric source behind /metrics and /snapshot. A
	// nil registry serves empty (but valid) documents.
	Registry *telemetry.Registry
	// Ready gates /readyz: the endpoint answers 200 while Ready
	// returns true and 503 otherwise. A nil Ready means always ready.
	// The function is called on every probe, so it may flip in either
	// direction (e.g. "the batch engine's admission queue is
	// accepting").
	Ready func() bool
}

// NewHandler builds the ops HTTP handler:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       liveness (200 while the process serves)
//	/readyz        readiness per Options.Ready (200 or 503)
//	/snapshot      the telemetry.Snapshot as indented JSON
//	/debug/pprof/  the standard Go profiling endpoints
//
// The handler is stateless over the registry; every scrape takes a
// fresh snapshot, so scrapes are linearizable with metric updates and
// two scrapes of an unchanged registry return identical bytes.
func NewHandler(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, opts.Registry.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Ready != nil && !opts.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = opts.Registry.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running ops server (see Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; ":0" picks a free port) and serves the
// ops handler on it until Close. The listener is bound synchronously —
// when Serve returns, Addr is scrapeable — while request serving runs
// on a background goroutine.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           NewHandler(opts),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL, http://host:port.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the listener and terminates in-flight requests. Closing
// a nil or already-closed server is a no-op.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
