package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsched/internal/telemetry"
)

// goldenRegistry builds a registry exercising all four metric kinds
// with deliberately unsorted registration order.
func goldenRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	r.Gauge("sched_makespan_tu").Set(412)
	r.Counter("sched_probes_total").Add(10864)
	r.Histogram("batch_instance_latency_us", []int64{100, 1000, 10000}).Observe(50)
	h := r.Histogram("batch_instance_latency_us", nil) // get-or-create keeps the layout
	h.Observe(400)
	h.Observe(400)
	h.Observe(99999) // overflow
	r.Grid("sim_link_flits", 3, 3).Add(0, 1, 7)
	r.Grid("sim_link_flits", 3, 3).Add(2, 0, 3)
	r.Counter("batch_instances_total").Add(96)
	r.Gauge("energy_total_nj").Set(28965.228010542852)
	return r
}

// TestPromGolden pins the exact exposition bytes for a registry with
// all four metric kinds against testdata/metrics.golden.
func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate by hand if the format changed): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestPromDeterministic: two scrapes of an unchanged registry are
// byte-identical (the acceptance criterion behind /metrics caching and
// diffable time-series).
func TestPromDeterministic(t *testing.T) {
	r := goldenRegistry()
	var b1, b2 bytes.Buffer
	if err := WritePrometheus(&b1, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

// TestPromValidates: the encoder's own output passes the in-repo
// exposition validator, and the validator counts every sample line.
func TestPromValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(&buf)
	if err != nil {
		t.Fatalf("own output rejected: %v", err)
	}
	// 2 counters + 2 gauges + (3 buckets + +Inf + sum + count) + 2 grid
	// cells = 12 samples.
	if n != 12 {
		t.Errorf("validator counted %d samples, want 12", n)
	}
}

// TestPromEmptySnapshot: a nil registry serves an empty but valid
// document.
func TestPromEmptySnapshot(t *testing.T) {
	var nilReg *telemetry.Registry
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nilReg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty snapshot produced output: %q", buf.String())
	}
	if n, err := ValidateExposition(&buf); err != nil || n != 0 {
		t.Errorf("empty exposition: n=%d err=%v", n, err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"sched_probes_total", "sched_probes_total"},
		{"", "_"},
		{"9lives", "_9lives"},
		{"a-b.c d", "a_b_c_d"},
		{"ns:metric", "ns:metric"},
		{"é⚡x", "__x"}, // one underscore per rune, not per byte
	}
	for _, c := range cases {
		got := SanitizeMetricName(c.in)
		if got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
		if !validMetricName(got) {
			t.Errorf("SanitizeMetricName(%q) = %q is not a valid metric name", c.in, got)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestValidateExpositionRejects: one malformed document per violation
// class.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no type", "foo 1\n", "no TYPE"},
		{"bad type", "# TYPE foo widget\nfoo 1\n", "unknown type"},
		{"dup type", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n", "duplicate TYPE"},
		{"bad name", "# TYPE 9foo counter\n", "invalid metric name"},
		{"bad value", "# TYPE foo counter\nfoo x\n", "bad value"},
		{"unquoted label", "# TYPE foo counter\nfoo{a=b} 1\n", "not quoted"},
		{"unterminated label", "# TYPE foo counter\nfoo{a=\"b} 1\n", "unterminated"},
		{"bad escape", "# TYPE foo counter\nfoo{a=\"\\t\"} 1\n", "bad escape"},
		{"hist not cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "not cumulative"},
		{"hist no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"hist missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "_sum"},
		{"hist count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "!= count"},
		{"hist stray series", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\nh_extra 1\n", "no TYPE"},
	}
	for _, c := range cases {
		_, err := ValidateExposition(strings.NewReader(c.doc))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestValidateExpositionAccepts covers shapes beyond what
// WritePrometheus emits: HELP comments, label sets with escapes,
// non-finite values, timestamps.
func TestValidateExpositionAccepts(t *testing.T) {
	doc := "# HELP foo a counter with spaces in help\n" +
		"# TYPE foo counter\n" +
		"foo{path=\"a\\\\b\",msg=\"say \\\"hi\\\"\\n\"} 3 1700000000\n" +
		"# TYPE bar gauge\n" +
		"bar NaN\n" +
		"# TYPE baz gauge\n" +
		"baz +Inf\n"
	n, err := ValidateExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("counted %d samples, want 3", n)
	}
}
