package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"nocsched/internal/telemetry"
)

// TimedSnapshot is one line of the JSONL snapshot time-series: a full
// telemetry.Snapshot stamped with a wall-clock time. Because Snapshot
// ordering is a documented guarantee, lines differ only where metric
// values (or the timestamp) changed — the series diffs and plots
// cleanly offline.
type TimedSnapshot struct {
	// TimeMS is the sample's wall-clock time, milliseconds since the
	// Unix epoch.
	TimeMS int64 `json:"ts_ms"`
	telemetry.Snapshot
}

// SnapshotStream periodically appends TimedSnapshot lines for a
// registry to a writer — the offline companion to /metrics scraping:
// point it at a file during a sweep and plot the queue-depth, latency
// and energy series afterwards. Writes follow the telemetry sink
// error contract: the first write error sticks, later samples are
// dropped, and Close returns it.
type SnapshotStream struct {
	reg  *telemetry.Registry
	stop chan struct{}

	mu     sync.Mutex
	w      io.Writer
	enc    *json.Encoder
	err    error
	closed bool
}

// StartSnapshotStream begins appending a snapshot line every interval
// (<= 0 selects one second). Close stops the ticker, appends one final
// sample, and returns the stream's first write error.
func StartSnapshotStream(w io.Writer, reg *telemetry.Registry, interval time.Duration) *SnapshotStream {
	if interval <= 0 {
		interval = time.Second
	}
	s := &SnapshotStream{reg: reg, w: w, enc: json.NewEncoder(w), stop: make(chan struct{})}
	s.Sample()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Sample()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Sample appends one timestamped snapshot line now (also called by the
// ticker). No-op after a write error or Close.
func (s *SnapshotStream) Sample() {
	if s == nil {
		return
	}
	// Snapshot outside the lock: registry reads must not wait on file
	// writes.
	ts := TimedSnapshot{TimeMS: time.Now().UnixMilli(), Snapshot: s.reg.Snapshot()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.closed {
		return
	}
	if err := s.enc.Encode(ts); err != nil {
		s.err = err
	}
}

// Err returns the stream's first write error, if any.
func (s *SnapshotStream) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close stops the ticker after one final sample and returns the first
// write error. Safe to call more than once; nil closes cleanly.
func (s *SnapshotStream) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		defer s.mu.Unlock()
		return s.err
	}
	s.mu.Unlock()
	close(s.stop)
	s.Sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.err
}

// ValidateSnapshotStream checks a JSONL snapshot time-series: every
// line must decode as a TimedSnapshot with non-decreasing timestamps,
// and each embedded snapshot must satisfy the same structural rules
// telemetry.ValidateSnapshot enforces (it is re-encoded through that
// validator). Returns the number of lines.
func ValidateSnapshotStream(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	lastTS := int64(-1 << 62)
	for dec.More() {
		var ts TimedSnapshot
		if err := dec.Decode(&ts); err != nil {
			return 0, err
		}
		if ts.TimeMS < lastTS {
			return 0, fmt.Errorf("obs: snapshot stream timestamps regress at line %d", n)
		}
		lastTS = ts.TimeMS
		if err := revalidate(ts.Snapshot); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

// revalidate round-trips a snapshot through telemetry.ValidateSnapshot.
func revalidate(s telemetry.Snapshot) error {
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(s.WriteJSON(pw))
	}()
	_, err := telemetry.ValidateSnapshot(pr)
	return err
}
