package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks that r holds well-formed Prometheus text
// exposition as emitted by WritePrometheus: every sample belongs to a
// `# TYPE` family declared exactly once, names are in the Prometheus
// charset, label pairs are properly quoted and escaped, values parse,
// and histogram families are structurally sound (cumulative
// non-decreasing `_bucket` series per label set ending in `le="+Inf"`,
// with the +Inf bucket equal to `_count`, and both `_sum` and `_count`
// present). It returns the number of sample lines. The CI live
// observability lane runs this against a real scrape of a running
// batchbench sweep so a malformed exposition fails the build.
func ValidateExposition(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	families := make(map[string]string) // name -> type
	hists := make(map[string]*histCheck)
	samples := 0
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return 0, fmt.Errorf("obs: line %d: malformed comment %q", line, text)
			}
			name, typ := fields[2], fields[3]
			if !validMetricName(name) {
				return 0, fmt.Errorf("obs: line %d: invalid metric name %q", line, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return 0, fmt.Errorf("obs: line %d: unknown type %q", line, typ)
			}
			if prev, dup := families[name]; dup {
				return 0, fmt.Errorf("obs: line %d: duplicate TYPE for %q (already %s)", line, name, prev)
			}
			families[name] = typ
			if typ == "histogram" {
				hists[name] = &histCheck{buckets: make(map[string][]bucketSample)}
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return 0, fmt.Errorf("obs: line %d: %w", line, err)
		}
		samples++
		fam, suffix := familyOf(name, families)
		if fam == "" {
			return 0, fmt.Errorf("obs: line %d: sample %q has no TYPE declaration", line, name)
		}
		if families[fam] == "histogram" {
			h := hists[fam]
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return 0, fmt.Errorf("obs: line %d: %s without le label", line, name)
				}
				rest := labelsMinus(labels, "le")
				h.buckets[rest] = append(h.buckets[rest], bucketSample{le: le, v: value, line: line})
			case "_sum":
				h.sum, h.haveSum = value, true
			case "_count":
				h.count, h.haveCount = value, true
			default:
				return 0, fmt.Errorf("obs: line %d: histogram sample %q is not _bucket/_sum/_count", line, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("obs: read: %w", err)
	}
	for name, h := range hists {
		if err := h.check(name); err != nil {
			return 0, err
		}
	}
	return samples, nil
}

// bucketSample is one _bucket line awaiting the per-family check.
type bucketSample struct {
	le   string
	v    float64
	line int
}

// histCheck accumulates one histogram family's structural state.
type histCheck struct {
	buckets            map[string][]bucketSample // extra-label set -> buckets in file order
	sum, count         float64
	haveSum, haveCount bool
}

// check enforces the histogram contract once the whole family is read.
func (h *histCheck) check(name string) error {
	if !h.haveSum || !h.haveCount {
		return fmt.Errorf("obs: histogram %q missing _sum or _count", name)
	}
	if len(h.buckets) == 0 {
		return fmt.Errorf("obs: histogram %q has no _bucket samples", name)
	}
	for rest, bs := range h.buckets {
		lastLE := ""
		prev := -1.0
		prevBound := 0.0
		for i, b := range bs {
			if b.v < prev {
				return fmt.Errorf("obs: line %d: histogram %q buckets not cumulative", b.line, name)
			}
			bound, err := parseLE(b.le)
			if err != nil {
				return fmt.Errorf("obs: line %d: histogram %q: %w", b.line, name, err)
			}
			if i > 0 && bound <= prevBound {
				return fmt.Errorf("obs: line %d: histogram %q le bounds not ascending", b.line, name)
			}
			prev, prevBound, lastLE = b.v, bound, b.le
		}
		if lastLE != "+Inf" {
			return fmt.Errorf("obs: histogram %q{%s} does not end in le=\"+Inf\"", name, rest)
		}
		// The single-series (no extra labels) shape WritePrometheus
		// emits must agree with _count.
		if rest == "" && bs[len(bs)-1].v != h.count {
			return fmt.Errorf("obs: histogram %q +Inf bucket %g != count %g", name, bs[len(bs)-1].v, h.count)
		}
	}
	return nil
}

// parseLE parses an le label value, mapping +Inf onto math.Inf.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q", s)
	}
	return v, nil
}

// familyOf resolves a sample name to its declared family: the exact
// name, or for histogram sub-series the name minus a known suffix.
// Returns the family and the matched suffix ("" for an exact match).
func familyOf(name string, families map[string]string) (string, string) {
	if _, ok := families[name]; ok {
		return name, ""
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if families[base] == "histogram" || families[base] == "summary" {
				return base, suffix
			}
		}
	}
	return "", ""
}

// parseSample splits one sample line into name, labels and value.
func parseSample(text string) (string, map[string]string, float64, error) {
	rest := text
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", text)
	}
	name := rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	labels := map[string]string{}
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed value in %q", text)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	return name, labels, v, nil
}

// parseLabels consumes `name="value",...}` returning the remainder
// after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		s = strings.TrimLeft(s, " \t")
		if len(s) == 0 {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		s = strings.TrimLeft(s[eq+1:], " \t")
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", lname)
		}
		val, rest, err := unquoteLabelValue(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", lname, err)
		}
		if _, dup := labels[lname]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", lname)
		}
		labels[lname] = val
		s = strings.TrimLeft(rest, " \t")
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

// unquoteLabelValue reads an escaped label value up to its closing
// quote, undoing the \\ \" \n escapes EscapeLabelValue applies.
func unquoteLabelValue(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("trailing backslash")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// parsePromValue parses a sample value including the +Inf/-Inf/NaN
// spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "Nan", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelsMinus renders all labels except skip as a canonical sorted
// string (the per-label-set bucket key).
func labelsMinus(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}
