package obs

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"nocsched/internal/batch"
	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
	"nocsched/internal/tgff"
)

// obsRig generates a mid-size TGFF benchmark stream on a 4x4 mesh.
func obsRig(t *testing.T, n int) ([]*ctg.Graph, *energy.ACG) {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	graphs := make([]*ctg.Graph, n)
	for i := range graphs {
		params := tgff.SuiteParams(tgff.CategoryI, i%tgff.SuiteSize, p)
		params.Seed = int64(i + 1)
		params.NumTasks = 60
		graphs[i], err = tgff.Generate(params)
		if err != nil {
			t.Fatal(err)
		}
	}
	return graphs, acg
}

// TestServeDoesNotChangeSchedule extends the telemetry-on/off
// bit-identity guarantee to the live plane: schedules computed by a
// batch engine whose registry is concurrently scraped by an ops server
// (and fed by a runtime collector) are bit-identical (sched.Diff) to
// an unobserved serial run.
func TestServeDoesNotChangeSchedule(t *testing.T) {
	graphs, acg := obsRig(t, 6)
	insts := make([]batch.Instance, len(graphs))
	algos := []string{batch.AlgoEAS, batch.AlgoEDF, batch.AlgoDLS}
	for i, g := range graphs {
		insts[i] = batch.Instance{Name: g.Name, Graph: g, ACG: acg, Algorithm: algos[i%len(algos)]}
	}

	plain := batch.New(batch.Options{Workers: 2})
	refs, err := plain.Run(context.Background(), insts)
	if err != nil {
		t.Fatal(err)
	}

	col := telemetry.NewCollector(nil)
	rc := StartRuntime(col.Registry, time.Millisecond)
	defer rc.Close()
	srv, err := Serve("127.0.0.1:0", Options{Registry: col.Registry})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Scrape aggressively while the observed engine runs.
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			resp, err := http.Get(srv.URL() + "/metrics")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	observed := batch.New(batch.Options{Workers: 2, Telemetry: col})
	results, err := observed.Run(context.Background(), insts)
	close(stopScrape)
	<-scrapeDone
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("%s: %v", results[i].Name, results[i].Err)
		}
		if d := sched.Diff(refs[i].Schedule, results[i].Schedule); d != "" {
			t.Fatalf("%s: observed schedule diverged: %s", results[i].Name, d)
		}
	}

	// The final scrape exposes the full expected series set.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("final scrape invalid: %v", err)
	}
	for _, want := range []string{
		batch.MetricQueueDepth, batch.MetricInstances, batch.MetricLatency + "_bucket",
		sched.MetricProbes, "energy_comm_switch_nj", "energy_comm_link_nj",
		MetricGoroutines, MetricUptime,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("scrape missing %s", want)
		}
	}
}

// TestScrapedArtifactsValidate is the CI live-observability hook: when
// NOCSCHED_PROM_FILE points at a /metrics scrape of a running
// batchbench sweep it must be valid exposition containing the batch
// queue/latency, sched probe, energy-split and runtime collector
// series; NOCSCHED_OBS_SNAPSHOT (optional) must be a valid /snapshot
// document; NOCSCHED_OBS_STREAM (optional) must be a valid JSONL
// snapshot time-series. Skips without the env hook.
func TestScrapedArtifactsValidate(t *testing.T) {
	promFile := os.Getenv("NOCSCHED_PROM_FILE")
	if promFile == "" {
		t.Skip("NOCSCHED_PROM_FILE not set (CI hook)")
	}
	raw, err := os.ReadFile(promFile)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("scrape invalid: %v", err)
	}
	t.Logf("scrape: %d samples", n)
	for _, want := range []string{
		"batch_queue_depth", "batch_instances_total", "batch_instance_latency_us_bucket",
		"sched_probes_total", "energy_comm_switch_nj", "energy_comm_link_nj",
		"runtime_goroutines", "runtime_heap_alloc_bytes", "process_uptime_seconds",
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("scrape missing %s", want)
		}
	}
	if snapFile := os.Getenv("NOCSCHED_OBS_SNAPSHOT"); snapFile != "" {
		f, err := os.Open(snapFile)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := telemetry.ValidateSnapshot(f); err != nil {
			t.Errorf("/snapshot artifact invalid: %v", err)
		}
	}
	if streamFile := os.Getenv("NOCSCHED_OBS_STREAM"); streamFile != "" {
		f, err := os.Open(streamFile)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		lines, err := ValidateSnapshotStream(f)
		if err != nil {
			t.Errorf("snapshot stream invalid: %v", err)
		}
		t.Logf("stream: %d lines", lines)
	}
}
