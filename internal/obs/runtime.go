package obs

import (
	"runtime"
	"sync"
	"time"

	"nocsched/internal/telemetry"
)

// Runtime collector metric names (see the README metric catalog).
const (
	// MetricGoroutines gauges the live goroutine count.
	MetricGoroutines = "runtime_goroutines"
	// MetricHeapAllocBytes gauges bytes of allocated heap objects.
	MetricHeapAllocBytes = "runtime_heap_alloc_bytes"
	// MetricHeapObjects gauges the number of allocated heap objects.
	MetricHeapObjects = "runtime_heap_objects"
	// MetricSysBytes gauges total bytes obtained from the OS.
	MetricSysBytes = "runtime_sys_bytes"
	// MetricNextGCBytes gauges the heap size that triggers the next GC.
	MetricNextGCBytes = "runtime_next_gc_bytes"
	// MetricGCCycles counts completed GC cycles.
	MetricGCCycles = "runtime_gc_cycles_total"
	// MetricGCPauseTotal counts cumulative stop-the-world pause time (ns).
	MetricGCPauseTotal = "runtime_gc_pause_ns_total"
	// MetricGCPauseUS is the per-cycle stop-the-world pause histogram (µs).
	MetricGCPauseUS = "runtime_gc_pause_us"
	// MetricUptime gauges seconds since the collector started.
	MetricUptime = "process_uptime_seconds"
)

// gcPauseBounds is the fixed bucket layout of MetricGCPauseUS (µs).
var gcPauseBounds = []int64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000}

// RuntimeCollector samples Go runtime health — memstats, GC activity,
// goroutine count, process uptime — into a telemetry registry on a
// ticker, making the process itself one more instrumented subsystem on
// /metrics. Handles are resolved once at start; each sample is a
// runtime.ReadMemStats plus a handful of atomic stores.
type RuntimeCollector struct {
	mGoroutines *telemetry.Gauge
	mHeapAlloc  *telemetry.Gauge
	mHeapObj    *telemetry.Gauge
	mSys        *telemetry.Gauge
	mNextGC     *telemetry.Gauge
	mGCCycles   *telemetry.Counter
	mGCPauseNS  *telemetry.Counter
	mGCPauseUS  *telemetry.Histogram
	mUptime     *telemetry.Gauge

	start time.Time

	mu          sync.Mutex
	lastNumGC   uint32
	lastPauseNS uint64
	stop        chan struct{}
	closed      bool
}

// StartRuntime begins sampling into reg every interval (<= 0 selects
// one second). Close the collector to stop the ticker; Close takes a
// final sample so short-lived processes still report. A nil registry
// yields a collector whose samples are no-ops.
func StartRuntime(reg *telemetry.Registry, interval time.Duration) *RuntimeCollector {
	if interval <= 0 {
		interval = time.Second
	}
	c := &RuntimeCollector{
		mGoroutines: reg.Gauge(MetricGoroutines),
		mHeapAlloc:  reg.Gauge(MetricHeapAllocBytes),
		mHeapObj:    reg.Gauge(MetricHeapObjects),
		mSys:        reg.Gauge(MetricSysBytes),
		mNextGC:     reg.Gauge(MetricNextGCBytes),
		mGCCycles:   reg.Counter(MetricGCCycles),
		mGCPauseNS:  reg.Counter(MetricGCPauseTotal),
		mGCPauseUS:  reg.Histogram(MetricGCPauseUS, gcPauseBounds),
		mUptime:     reg.Gauge(MetricUptime),
		start:       time.Now(),
		stop:        make(chan struct{}),
	}
	// Seed the GC cursors so pre-existing cycles are not re-counted.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.lastNumGC, c.lastPauseNS = ms.NumGC, ms.PauseTotalNs
	c.Sample()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Sample()
			case <-c.stop:
				return
			}
		}
	}()
	return c
}

// Sample takes one sample immediately (also called by the ticker).
func (c *RuntimeCollector) Sample() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.mGoroutines.Set(float64(runtime.NumGoroutine()))
	c.mHeapAlloc.Set(float64(ms.HeapAlloc))
	c.mHeapObj.Set(float64(ms.HeapObjects))
	c.mSys.Set(float64(ms.Sys))
	c.mNextGC.Set(float64(ms.NextGC))
	c.mUptime.Set(time.Since(c.start).Seconds())

	c.mu.Lock()
	defer c.mu.Unlock()
	if d := ms.NumGC - c.lastNumGC; d > 0 {
		c.mGCCycles.Add(int64(d))
		// Observe each newly completed cycle's pause from the runtime's
		// 256-entry circular buffer (older cycles beyond it are only in
		// the cumulative counter).
		n := d
		if n > 256 {
			n = 256
		}
		for i := uint32(0); i < n; i++ {
			idx := (ms.NumGC - i + 255) % 256
			c.mGCPauseUS.Observe(int64(ms.PauseNs[idx] / 1000))
		}
		c.lastNumGC = ms.NumGC
	}
	if d := ms.PauseTotalNs - c.lastPauseNS; d > 0 {
		c.mGCPauseNS.Add(int64(d))
		c.lastPauseNS = ms.PauseTotalNs
	}
}

// Close stops the ticker after one final sample. Safe to call more
// than once; a nil collector closes cleanly.
func (c *RuntimeCollector) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.Sample()
}
