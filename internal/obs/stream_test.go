package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"nocsched/internal/telemetry"
)

func TestSnapshotStream(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("work_total").Add(1)
	var buf bytes.Buffer
	s := StartSnapshotStream(&buf, reg, time.Hour)
	reg.Counter("work_total").Add(41)
	s.Sample()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateSnapshotStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Start sample + explicit sample + Close's final sample.
	if n != 3 {
		t.Errorf("stream has %d lines, want 3", n)
	}
	// The last line carries the final counter value.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var last TimedSnapshot
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if len(last.Counters) != 1 || last.Counters[0].Value != 42 {
		t.Errorf("final line counters = %+v, want work_total=42", last.Counters)
	}
}

// errAfter fails every write after the first n bytes.
type errAfter struct {
	n       int
	written int
}

var errSink = errors.New("sink failed")

func (w *errAfter) Write(p []byte) (int, error) {
	if w.written >= w.n {
		return 0, errSink
	}
	w.written += len(p)
	return len(p), nil
}

// TestSnapshotStreamErrorSticks: the first write error is recorded,
// later samples are dropped, Close returns it.
func TestSnapshotStreamErrorSticks(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("c").Inc()
	s := StartSnapshotStream(&errAfter{n: 1 << 20}, reg, time.Hour)
	if s.Err() != nil {
		t.Fatalf("unexpected early error: %v", s.Err())
	}
	s2 := StartSnapshotStream(&errAfter{n: 0}, reg, time.Hour)
	if s2.Err() == nil {
		t.Fatal("write error not recorded")
	}
	s2.Sample() // must not panic or overwrite
	if err := s2.Close(); !errors.Is(err, errSink) {
		t.Errorf("Close = %v, want the sink error", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("healthy stream Close = %v", err)
	}
}

func TestValidateSnapshotStreamRejects(t *testing.T) {
	// Timestamp regression.
	doc := `{"ts_ms":5,"counters":null,"gauges":null,"histograms":null,"grids":null}
{"ts_ms":4,"counters":null,"gauges":null,"histograms":null,"grids":null}
`
	if _, err := ValidateSnapshotStream(strings.NewReader(doc)); err == nil {
		t.Error("timestamp regression accepted")
	}
	// Structurally invalid embedded snapshot (negative counter).
	doc = `{"ts_ms":5,"counters":[{"name":"c","value":-1}],"gauges":null,"histograms":null,"grids":null}
`
	if _, err := ValidateSnapshotStream(strings.NewReader(doc)); err == nil {
		t.Error("negative counter accepted")
	}
	// Not JSON at all.
	if _, err := ValidateSnapshotStream(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
	var nilS *SnapshotStream
	nilS.Sample()
	if nilS.Close() != nil || nilS.Err() != nil {
		t.Error("nil stream misbehaves")
	}
}
