// Package obs is the live observability plane over the telemetry
// layer: a Prometheus text-exposition encoder for every registry kind,
// an HTTP ops server (/metrics, /healthz, /readyz, /snapshot,
// /debug/pprof/), a Go runtime collector that samples memstats and
// goroutine counts into the registry on a ticker, and a periodic
// snapshot streamer that appends timestamped registry snapshots as a
// JSONL time-series.
//
// Where internal/telemetry answers "what happened in this run" as
// post-mortem artifacts, obs answers "what is happening right now" for
// a long-lived scheduling service. Everything here is a read-only
// consumer of telemetry.Snapshot: attaching the plane never perturbs
// scheduling (the telemetry-on/off bit-identity guarantee keeps
// holding with an ops server scraping, pinned by
// TestServeDoesNotChangeSchedule).
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"nocsched/internal/telemetry"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). The mapping per registry kind:
//
//   - counters    -> `# TYPE n counter` + one unlabeled sample;
//   - gauges      -> `# TYPE n gauge` + one unlabeled sample;
//   - histograms  -> `# TYPE n histogram` + cumulative `n_bucket`
//     series with `le` labels (the registry's int64 bounds plus the
//     `+Inf` overflow bucket), then `n_sum` and `n_count`;
//   - grids       -> `# TYPE n counter` + one `{row="r",col="c"}`
//     labeled sample per non-zero cell, row-major.
//
// Metric names are sanitized to the Prometheus charset and label
// values escaped per the format rules. Because Snapshot ordering is a
// documented guarantee (sorted by name within each kind), the output
// is byte-deterministic: two scrapes of an unchanged registry are
// identical.
func WritePrometheus(w io.Writer, s telemetry.Snapshot) error {
	var b strings.Builder
	for _, c := range s.Counters {
		n := SanitizeMetricName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := SanitizeMetricName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, formatValue(g.Value))
	}
	for _, h := range s.Histograms {
		n := SanitizeMetricName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", n, bound, cum)
		}
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Counts)-1]
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	for _, g := range s.Grids {
		n := SanitizeMetricName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", n)
		for _, cell := range g.Cells {
			fmt.Fprintf(&b, "%s{row=\"%d\",col=\"%d\"} %d\n", n, cell.Row, cell.Col, cell.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SanitizeMetricName maps an arbitrary string onto the Prometheus
// metric-name charset [a-zA-Z_:][a-zA-Z0-9_:]*: invalid runes become
// '_', a leading digit gets a '_' prefix, and the empty string becomes
// "_". The registry's own metric names are already clean; this guards
// user-registered names reaching /metrics.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline become \\, \" and \n. Every
// other byte passes through unchanged (the format is UTF-8 clean).
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// formatValue renders a float64 sample value; Prometheus accepts
// +Inf/-Inf/NaN spellings for the non-finite cases.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
