package obs

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzPromEscape drives arbitrary metric names and label values through
// the sanitizer/escaper and requires that the resulting exposition
// always satisfies the in-repo validator and that escaping round-trips
// (the validator's unquoter recovers the original value). This is the
// escape-correctness guarantee behind /metrics: no user-registered
// metric name or label value can produce an unscrapeable document.
func FuzzPromEscape(f *testing.F) {
	f.Add("sched_probes_total", "plain")
	f.Add("", "")
	f.Add("9 weird-name\n", "quote\" backslash\\ newline\n mix")
	f.Add("é⚡", "\\\\\"\"\n\n")
	f.Add("a{b}c", "le=\"+Inf\"}")
	f.Fuzz(func(t *testing.T, name, label string) {
		n := SanitizeMetricName(name)
		if !validMetricName(n) {
			t.Fatalf("SanitizeMetricName(%q) = %q not in the metric charset", name, n)
		}
		esc := EscapeLabelValue(label)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("EscapeLabelValue(%q) = %q contains a raw newline", label, esc)
		}
		// Build the quoted value by hand (%q would double-escape).
		doc := fmt.Sprintf("# TYPE %s counter\n%s{k=\"%s\"} 1\n", n, n, esc)
		if _, err := ValidateExposition(strings.NewReader(doc)); err != nil {
			t.Fatalf("escaped exposition rejected: %v\ndoc: %q", err, doc)
		}
		// Round-trip: the validator's unquoter must recover the input.
		got, rest, err := unquoteLabelValue(esc + `"`)
		if err != nil {
			t.Fatalf("unquote(%q): %v", esc, err)
		}
		if got != label || rest != "" {
			t.Fatalf("escape round-trip: %q -> %q -> %q (rest %q)", label, esc, got, rest)
		}
	})
}
