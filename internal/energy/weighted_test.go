package energy

import (
	"testing"

	"nocsched/internal/noc"
)

func TestBuildACGWeightedUniformMatchesPlain(t *testing.T) {
	p, err := noc.NewHeterogeneousMesh(3, 3, noc.RouteXY, 64)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel()
	plain, err := BuildACG(p, m)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := BuildACGWeighted(p, m, UniformLinkScale(p.Topo))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumPEs(); i++ {
		for j := 0; j < p.NumPEs(); j++ {
			if !almostEq(plain.BitEnergy(i, j), weighted.BitEnergy(i, j)) {
				t.Fatalf("pair (%d,%d): %v vs %v", i, j,
					plain.BitEnergy(i, j), weighted.BitEnergy(i, j))
			}
		}
	}
}

func TestBuildACGWeightedScalesLinks(t *testing.T) {
	p, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 64)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel() // ESbit 2, ELbit 3
	scale := UniformLinkScale(p.Topo)
	// Double the cost of the route's single link for pair (0,1).
	route, err := p.Topo.Route(0, 1)
	if err != nil || len(route) != 1 {
		t.Fatalf("unexpected route %v, %v", route, err)
	}
	scale[route[0]] = 2
	a, err := BuildACGWeighted(p, m, scale)
	if err != nil {
		t.Fatal(err)
	}
	// 2 switches + one double-length link: 2*2 + 2*3 = 10 (uniform
	// would be 7).
	if got := a.BitEnergy(0, 1); !almostEq(got, 10) {
		t.Errorf("BitEnergy(0,1) = %v, want 10", got)
	}
	// Energy is no longer symmetric: (1,0) uses a different link.
	if got := a.BitEnergy(1, 0); !almostEq(got, 7) {
		t.Errorf("BitEnergy(1,0) = %v, want 7", got)
	}
}

func TestBuildACGWeightedValidation(t *testing.T) {
	p, _ := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 64)
	if _, err := BuildACGWeighted(nil, testModel(), nil); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := BuildACGWeighted(p, Model{}, UniformLinkScale(p.Topo)); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := BuildACGWeighted(p, testModel(), []float64{1}); err == nil {
		t.Error("wrong scale length accepted")
	}
	bad := UniformLinkScale(p.Topo)
	bad[0] = 0
	if _, err := BuildACGWeighted(p, testModel(), bad); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestWeightedACGSchedulable(t *testing.T) {
	// The honeycomb with per-link geometry factors must remain fully
	// usable by the scheduler machinery (routes and hops unchanged).
	topo, err := noc.NewHoneycomb(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]noc.PEClass, topo.NumTiles())
	for i := range classes {
		classes[i] = noc.StandardClasses[i%len(noc.StandardClasses)]
	}
	p, err := noc.NewPlatform(topo, classes, 64)
	if err != nil {
		t.Fatal(err)
	}
	scale := UniformLinkScale(topo)
	for i := range scale {
		scale[i] = 1 + 0.5*float64(i%3) // 1.0 / 1.5 / 2.0 length mix
	}
	a, err := BuildACGWeighted(p, DefaultModel(), scale)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumPEs(); i++ {
		for j := 0; j < a.NumPEs(); j++ {
			if i != j && a.BitEnergy(i, j) <= 0 {
				t.Fatalf("pair (%d,%d) has no energy", i, j)
			}
			if len(a.Route(i, j))+1 != a.Hops(i, j) && i != j {
				t.Fatalf("pair (%d,%d) route/hops mismatch", i, j)
			}
		}
	}
}
