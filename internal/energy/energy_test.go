package energy

import (
	"math"
	"testing"
	"testing/quick"

	"nocsched/internal/noc"
)

func testModel() Model { return Model{ESbit: 2, ELbit: 3} }

func TestModelValidate(t *testing.T) {
	if err := (Model{ESbit: -1, ELbit: 1}).Validate(); err == nil {
		t.Error("negative ESbit accepted")
	}
	if err := (Model{}).Validate(); err == nil {
		t.Error("zero model accepted")
	}
	if err := DefaultModel().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
}

func TestBitEnergyEq2(t *testing.T) {
	m := testModel()
	// Eq. (2): nhops*ESbit + (nhops-1)*ELbit.
	cases := []struct {
		hops int
		want float64
	}{
		{0, 0},
		{-1, 0},
		{1, 2},       // one router, no link (degenerate)
		{2, 2*2 + 3}, // adjacent tiles: 2 switches, 1 link
		{4, 4*2 + 3*3},
	}
	for _, c := range cases {
		if got := m.BitEnergy(c.hops); !almostEq(got, c.want) {
			t.Errorf("BitEnergy(%d) = %v, want %v", c.hops, got, c.want)
		}
	}
	if got := m.VolumeEnergy(10, 2); !almostEq(got, 70) {
		t.Errorf("VolumeEnergy = %v, want 70", got)
	}
	if got := m.VolumeEnergy(0, 2); got != 0 {
		t.Errorf("VolumeEnergy(0 bits) = %v", got)
	}
}

func buildTestACG(t *testing.T) *ACG {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 64)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildACG(p, testModel())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildACGValidation(t *testing.T) {
	if _, err := BuildACG(nil, testModel()); err == nil {
		t.Error("nil platform accepted")
	}
	p, _ := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 64)
	if _, err := BuildACG(p, Model{}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestACGConsistency(t *testing.T) {
	a := buildTestACG(t)
	m := testModel()
	topo := a.Platform().Topo
	for i := 0; i < a.NumPEs(); i++ {
		for j := 0; j < a.NumPEs(); j++ {
			route := a.Route(i, j)
			hops := a.Hops(i, j)
			if i == j {
				if len(route) != 0 || hops != 0 || a.BitEnergy(i, j) != 0 {
					t.Fatalf("self pair (%d) has network cost", i)
				}
				continue
			}
			if len(route)+1 != hops {
				t.Errorf("pair (%d,%d): route len %d, hops %d", i, j, len(route), hops)
			}
			if want := m.BitEnergy(hops); !almostEq(a.BitEnergy(i, j), want) {
				t.Errorf("pair (%d,%d): BitEnergy %v, want %v", i, j, a.BitEnergy(i, j), want)
			}
			if got := topo.Hops(noc.TileID(i), noc.TileID(j)); got != hops {
				t.Errorf("pair (%d,%d): ACG hops %d, topology hops %d", i, j, hops, got)
			}
		}
	}
}

func TestACGEnergySymmetricOnMesh(t *testing.T) {
	// XY and YX routes differ, but hop counts (and therefore energies)
	// are symmetric on a mesh with minimal routing.
	a := buildTestACG(t)
	for i := 0; i < a.NumPEs(); i++ {
		for j := 0; j < a.NumPEs(); j++ {
			if !almostEq(a.BitEnergy(i, j), a.BitEnergy(j, i)) {
				t.Errorf("asymmetric energy (%d,%d)", i, j)
			}
		}
	}
}

func TestCommEnergyAndTransferTime(t *testing.T) {
	a := buildTestACG(t)
	if a.CommEnergy(1000, 3, 3) != 0 {
		t.Error("intra-tile communication costs energy")
	}
	if a.CommEnergy(0, 0, 5) != 0 {
		t.Error("control edge costs energy")
	}
	if a.CommEnergy(-10, 0, 5) != 0 {
		t.Error("negative volume costs energy")
	}
	// Adjacent pair (0,1): 2 hops -> bit energy 2*2+3 = 7.
	if got := a.CommEnergy(10, 0, 1); !almostEq(got, 70) {
		t.Errorf("CommEnergy = %v, want 70", got)
	}
	if got := a.TransferTime(100, 2, 2); got != 0 {
		t.Errorf("intra-tile transfer time = %d", got)
	}
	if got := a.TransferTime(100, 0, 1); got != 2 { // ceil(100/64)
		t.Errorf("transfer time = %d, want 2", got)
	}
	if got := a.Bandwidth(0, 1); got != 64 {
		t.Errorf("bandwidth = %d", got)
	}
}

// Property: bit energy is monotone in hop count and strictly positive
// for any inter-tile pair.
func TestQuickBitEnergyMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(h8 uint8) bool {
		h := int(h8%62) + 1
		return m.BitEnergy(h+1) > m.BitEnergy(h) && m.BitEnergy(h) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func almostEq(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b))
}
