// Package energy implements the paper's NoC communication energy model
// (Sec. 3.2) and the Architecture Characterization Graph (Definition 2).
//
// The model is the bit-energy metric of Ye et al. [12] in the
// register-buffered form suggested by Hu et al. [13] and Ye et al. [14]:
//
//	Ebit = ESbit + ELbit                          (Eq. 1)
//	E(ti->tj) = nhops*ESbit + (nhops-1)*ELbit     (Eq. 2)
//
// where ESbit / ELbit are the energies to move one bit through a switch
// and over an inter-tile link, and nhops is the number of routers on the
// route. The buffering term EBbit is deliberately dropped (register
// buffers), which is what makes the model analytically tractable during
// scheduling.
package energy

import (
	"fmt"
	"math"

	"nocsched/internal/noc"
)

// Model holds the per-bit energy coefficients in nanojoules per bit.
type Model struct {
	// ESbit is the energy to move one bit through one router's switch
	// fabric (5x5 crossbar in the reference platform).
	ESbit float64
	// ELbit is the energy to move one bit over one inter-tile link.
	ELbit float64
}

// DefaultModel returns representative 0.18um-era coefficients in the
// ballpark reported by the switch-fabric power analyses the paper cites
// (Ye et al., DAC'02): a few picojoules per bit through a crossbar and
// over a millimeter-scale inter-tile wire. At this scale communication
// is a meaningful fraction of application energy (as in the paper, where
// EAS visibly reduces both terms), so the scheduler's energy-regret
// decisions trade computation against communication rather than ignoring
// the network.
func DefaultModel() Model {
	return Model{
		ESbit: 2.84e-3, // nJ/bit through one switch (2.84 pJ)
		ELbit: 4.49e-3, // nJ/bit over one link (4.49 pJ)
	}
}

// Validate reports whether the coefficients are usable.
func (m Model) Validate() error {
	if m.ESbit < 0 || m.ELbit < 0 {
		return fmt.Errorf("energy: negative coefficients %+v", m)
	}
	if m.ESbit == 0 && m.ELbit == 0 {
		return fmt.Errorf("energy: all-zero model")
	}
	return nil
}

// BitEnergy returns Eq. (2): the average energy to move one bit across
// nhops routers. It is 0 for nhops <= 0 (intra-tile communication never
// enters the network).
func (m Model) BitEnergy(nhops int) float64 {
	if nhops <= 0 {
		return 0
	}
	return float64(nhops)*m.ESbit + float64(nhops-1)*m.ELbit
}

// VolumeEnergy returns the energy to move volume bits across nhops
// routers.
func (m Model) VolumeEnergy(volume int64, nhops int) float64 {
	if volume <= 0 {
		return 0
	}
	return float64(volume) * m.BitEnergy(nhops)
}

// ACG is the Architecture Characterization Graph of Definition 2: for
// every ordered PE pair (pi, pj) it stores the route r_ij, its per-bit
// energy e(r_ij) and its bandwidth b(r_ij). Routes are precomputed once
// so the scheduler's inner loop never re-runs the routing function.
type ACG struct {
	platform *noc.Platform
	model    Model

	n      int
	routes [][]noc.LinkID // routes[i*n+j]
	hops   []int          // hops[i*n+j]
	ebit   []float64      // ebit[i*n+j], nJ per bit
}

// BuildACG precomputes the ACG for a platform under an energy model.
// Every PE pair must be routable; use BuildACGPartial for degraded
// platforms with out-of-service tiles.
func BuildACG(p *noc.Platform, m Model) (*ACG, error) {
	return buildACG(p, m, false)
}

// BuildACGPartial precomputes an ACG for a platform whose topology may
// leave some PE pairs unroutable (a fault-degraded platform with dead
// routers). Unroutable pairs get no route, Hops -1 and an infinite
// per-bit energy so any accidental use is glaring; callers must keep
// tasks off the affected PEs (the fault package does this by marking
// them incapable in the degraded CTG) and can test pairs with
// Reachable.
func BuildACGPartial(p *noc.Platform, m Model) (*ACG, error) {
	return buildACG(p, m, true)
}

func buildACG(p *noc.Platform, m Model, partial bool) (*ACG, error) {
	if p == nil {
		return nil, fmt.Errorf("energy: nil platform")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := p.NumPEs()
	a := &ACG{
		platform: p,
		model:    m,
		n:        n,
		routes:   make([][]noc.LinkID, n*n),
		hops:     make([]int, n*n),
		ebit:     make([]float64, n*n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			idx := i*n + j
			route, err := p.Topo.Route(noc.TileID(i), noc.TileID(j))
			if err != nil {
				if !partial {
					return nil, fmt.Errorf("energy: ACG route %d->%d: %w", i, j, err)
				}
				a.routes[idx] = nil
				a.hops[idx] = -1
				a.ebit[idx] = math.Inf(1)
				continue
			}
			a.routes[idx] = route
			a.hops[idx] = p.Topo.Hops(noc.TileID(i), noc.TileID(j))
			a.ebit[idx] = m.BitEnergy(a.hops[idx])
		}
	}
	return a, nil
}

// Reachable reports whether PE j can be reached from PE i on the ACG's
// platform. It is true for every pair of a fully-connected ACG and
// false exactly for the unroutable pairs of a partial (degraded) ACG.
func (a *ACG) Reachable(i, j int) bool {
	return i == j || a.hops[i*a.n+j] >= 0
}

// Platform returns the platform the ACG was built for.
func (a *ACG) Platform() *noc.Platform { return a.platform }

// Model returns the energy model the ACG was built with.
func (a *ACG) Model() Model { return a.model }

// NumPEs returns the number of PEs.
func (a *ACG) NumPEs() int { return a.n }

// Route returns r_ij, the precomputed route from PE i to PE j. The
// returned slice aliases ACG storage and must not be mutated.
func (a *ACG) Route(i, j int) []noc.LinkID { return a.routes[i*a.n+j] }

// Hops returns n_hops from PE i to PE j.
func (a *ACG) Hops(i, j int) int { return a.hops[i*a.n+j] }

// BitEnergy returns e(r_ij) in nJ per bit.
func (a *ACG) BitEnergy(i, j int) float64 { return a.ebit[i*a.n+j] }

// CommEnergy returns the energy to ship volume bits from PE i to PE j:
// v(c) * e(r_ij). Zero for intra-tile transfers and control edges.
func (a *ACG) CommEnergy(volume int64, i, j int) float64 {
	if volume <= 0 || i == j {
		return 0
	}
	return float64(volume) * a.ebit[i*a.n+j]
}

// Bandwidth returns b(r_ij) in bits per time unit. Wormhole routing
// pipelines flits, so a route's sustained bandwidth equals the uniform
// link bandwidth.
func (a *ACG) Bandwidth(i, j int) int64 { return a.platform.LinkBandwidth }

// TransferTime returns the network occupancy time of a volume-bit
// transaction from PE i to PE j (zero when i == j or volume == 0).
func (a *ACG) TransferTime(volume int64, i, j int) int64 {
	if i == j {
		return 0
	}
	return a.platform.TransferTime(volume)
}
