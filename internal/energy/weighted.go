package energy

import (
	"fmt"

	"nocsched/internal/noc"
)

// BuildACGWeighted builds an ACG whose per-pair bit energy is summed
// along the actual route with per-link length factors:
//
//	e(r_ij) = (len(route)+1) * ESbit + sum over links l of scale[l] * ELbit
//
// This implements the paper's conclusion remark that on irregular
// layouts (e.g. the honeycomb of [3]) "we can still use Eq. (2) to
// calculate the E_bit metric for each sending and receiving PE pair,
// although this metric may no longer be determined by the Manhattan
// distance between them": links of different physical length carry
// different ELbit, so the route's energy follows its geometry rather
// than a pure hop count.
//
// scale must have one entry per topology link; 1.0 reproduces BuildACG
// exactly. Non-positive entries are rejected.
func BuildACGWeighted(p *noc.Platform, m Model, scale []float64) (*ACG, error) {
	if p == nil {
		return nil, fmt.Errorf("energy: nil platform")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(scale) != p.Topo.NumLinks() {
		return nil, fmt.Errorf("energy: %d link scales for %d links", len(scale), p.Topo.NumLinks())
	}
	for l, s := range scale {
		if s <= 0 {
			return nil, fmt.Errorf("energy: non-positive scale %g for link %d", s, l)
		}
	}
	n := p.NumPEs()
	a := &ACG{
		platform: p,
		model:    m,
		n:        n,
		routes:   make([][]noc.LinkID, n*n),
		hops:     make([]int, n*n),
		ebit:     make([]float64, n*n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			idx := i*n + j
			route, err := p.Topo.Route(noc.TileID(i), noc.TileID(j))
			if err != nil {
				return nil, fmt.Errorf("energy: ACG route %d->%d: %w", i, j, err)
			}
			a.routes[idx] = route
			a.hops[idx] = p.Topo.Hops(noc.TileID(i), noc.TileID(j))
			if i == j {
				continue
			}
			e := float64(len(route)+1) * m.ESbit
			for _, l := range route {
				e += scale[l] * m.ELbit
			}
			a.ebit[idx] = e
		}
	}
	return a, nil
}

// UniformLinkScale returns an all-ones scale slice for a topology,
// convenient as a starting point for custom geometries.
func UniformLinkScale(topo noc.Topology) []float64 {
	scale := make([]float64, topo.NumLinks())
	for i := range scale {
		scale[i] = 1
	}
	return scale
}
