package eas

import (
	"testing"

	"nocsched/internal/energy"
	"nocsched/internal/msb"
)

func TestDebugScaleSweep(t *testing.T) {
	p3, _ := msb.DefaultPlatform3x3()
	acg, _ := energy.BuildACG(p3, energy.DefaultModel())
	clip, _ := msb.ClipByName("foreman")
	base, _ := msb.Integrated(clip, p3)
	g := base.ScaleDeadlines(1 / 1.8)
	for _, p := range []struct {
		scale float64
		bw    int64
	}{{1, 0}, {1, 256}, {0.5, 256}, {0, 256}} {
		budget, err := ComputeBudgetCommAware(g, nil, p.scale, p.bw)
		if err != nil {
			t.Fatal(err)
		}
		s, err := levelSchedule(newWorkspace(Options{}), g, acg, budget, "eas", Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, stats, err := Repair(s, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("scale=%.1f bw=%d: level miss=%d lat=%d E=%.0f | repaired miss=%d lat=%d E=%.0f (tried %d)",
			p.scale, p.bw, len(s.DeadlineMisses()), s.MaxLateness(), s.TotalEnergy(),
			len(rep.DeadlineMisses()), rep.MaxLateness(), rep.TotalEnergy(), stats.MovesTried)
	}
}
