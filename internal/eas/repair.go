package eas

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
)

// RepairStats reports what Step 3 did.
type RepairStats struct {
	// Ran is true when the procedure executed (the input had misses).
	Ran bool
	// SwapsAccepted / MigrationsAccepted count accepted LTS / GTM moves.
	SwapsAccepted      int
	MigrationsAccepted int
	// MovesTried counts all attempted moves, accepted or not.
	MovesTried int
	// InitialMisses / FinalMisses are deadline-miss counts before and
	// after.
	InitialMisses int
	FinalMisses   int
}

// layout is the degree of freedom search-and-repair manipulates: which
// PE each task runs on and in which order each PE executes its tasks.
// Timing is derived from a layout by rebuild.
type layout struct {
	assign []int
	order  [][]ctg.TaskID
}

func layoutOf(s *sched.Schedule) *layout {
	l := &layout{
		assign: make([]int, s.Graph.NumTasks()),
		order:  s.PEOrder(),
	}
	for i := range s.Tasks {
		l.assign[i] = s.Tasks[i].PE
	}
	return l
}

func (l *layout) clone() *layout {
	cp := &layout{
		assign: append([]int(nil), l.assign...),
		order:  make([][]ctg.TaskID, len(l.order)),
	}
	for i := range l.order {
		cp.order[i] = append([]ctg.TaskID(nil), l.order[i]...)
	}
	return cp
}

// errOrderCycle marks a layout whose per-PE order contradicts the task
// graph (a swap created a cross-PE ordering cycle); such moves are
// rejected.
var errOrderCycle = errors.New("eas: per-PE order conflicts with task dependencies")

// rebuild derives a complete schedule from a layout: tasks are committed
// PE-order-respecting (each task may not start before its PE
// predecessor finishes), with incoming transactions placed by the Fig. 3
// communication scheduler. Commit order across PEs follows ascending
// data-ready estimates so link contention resolves the way it would at
// run time.
func rebuild(g *ctg.Graph, acg *energy.ACG, l *layout, algorithm string, naive bool) (*sched.Schedule, error) {
	b := sched.NewBuilder(g, acg, algorithm)
	if naive {
		b.SetContentionAware(false)
	}
	pos := make([]int, len(l.order))
	lastFinish := make([]int64, len(l.order))
	for b.Committed() < g.NumTasks() {
		// Eligible: head-of-queue tasks whose predecessors are all
		// committed. Among them, commit the one with the smallest
		// max-predecessor-finish (earliest plausible start).
		best := ctg.TaskID(-1)
		bestPE := -1
		bestKey := int64(math.MaxInt64)
		for pe := range l.order {
			if pos[pe] >= len(l.order[pe]) {
				continue
			}
			t := l.order[pe][pos[pe]]
			if !b.Ready(t) {
				continue
			}
			key := int64(0)
			for _, p := range g.Pred(t) {
				if f := b.TaskPlacement(p).Finish; f > key {
					key = f
				}
			}
			if key < bestKey || (key == bestKey && t < best) {
				best, bestPE, bestKey = t, pe, key
			}
		}
		if best < 0 {
			return nil, errOrderCycle
		}
		if _, err := b.CommitAfter(best, bestPE, lastFinish[bestPE]); err != nil {
			return nil, err
		}
		lastFinish[bestPE] = b.TaskPlacement(best).Finish
		pos[bestPE]++
	}
	return b.Finish()
}

// metric is the lexicographic objective search-and-repair minimizes:
// deadline-miss count first, total lateness second. Every accepted move
// strictly decreases it, so the procedure converges (the paper: "because
// of the greedy nature of this algorithm, the search and repair
// procedure will always converge").
type metric struct {
	misses   int
	lateness int64
}

func metricOf(s *sched.Schedule) metric {
	var m metric
	for i := range s.Tasks {
		t := s.Graph.Task(s.Tasks[i].Task)
		if !t.HasDeadline() {
			continue
		}
		if late := s.Tasks[i].Finish - t.Deadline; late > 0 {
			m.misses++
			m.lateness += late
		}
	}
	return m
}

func (m metric) better(o metric) bool {
	if m.misses != o.misses {
		return m.misses < o.misses
	}
	return m.lateness < o.lateness
}

// criticalTasks returns the tasks that miss their own deadline plus all
// their ancestors, in descending-lateness-then-start order of usefulness
// for repair (latest offenders first). Per the paper, a critical task
// "may not necessarily have a specified deadline, but it causes one of
// its descendant tasks to miss its deadline".
func criticalTasks(s *sched.Schedule) []ctg.TaskID {
	g := s.Graph
	critical := make([]bool, g.NumTasks())
	var frontier []ctg.TaskID
	for i := range s.Tasks {
		t := g.Task(s.Tasks[i].Task)
		if t.HasDeadline() && s.Tasks[i].Finish > t.Deadline {
			critical[i] = true
			frontier = append(frontier, ctg.TaskID(i))
		}
	}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, p := range g.Pred(cur) {
			if !critical[p] {
				critical[p] = true
				frontier = append(frontier, p)
			}
		}
	}
	var out []ctg.TaskID
	for i, c := range critical {
		if c {
			out = append(out, ctg.TaskID(i))
		}
	}
	sort.Slice(out, func(a, b int) bool {
		sa, sb := s.Tasks[out[a]].Start, s.Tasks[out[b]].Start
		if sa != sb {
			return sa > sb // latest-starting critical tasks first
		}
		return out[a] < out[b]
	})
	return out
}

// Search-bound defaults. Each attempted move costs one full timing
// reconstruction, so the neighborhood is kept local: a critical task
// only tries swapping past its few nearest earlier neighbors, and only
// the most critical tasks are considered per round.
const (
	// DefaultRepairBudget caps attempted moves per Repair call.
	DefaultRepairBudget = 4000
	// ltsLookback is how many earlier same-PE tasks an LTS swap may
	// jump over.
	ltsLookback = 8
	// gtmCandidates is how many critical tasks a GTM round considers.
	gtmCandidates = 48
)

// Repair runs the paper's Step 3 (Fig. 4) on a schedule with deadline
// misses: alternate Local Task Swapping passes (energy-neutral
// reordering on a single PE) with single Global Task Migration moves
// (reassigning a critical task to another PE, destinations in increasing
// energy order) until no misses remain, no move helps, or the attempt
// budget is exhausted. moveBudget caps attempted moves (0 selects
// DefaultRepairBudget).
func Repair(s *sched.Schedule, moveBudget int, naive bool) (*sched.Schedule, RepairStats, error) {
	stats := RepairStats{InitialMisses: len(s.DeadlineMisses())}
	if stats.InitialMisses == 0 {
		stats.FinalMisses = 0
		return s, stats, nil
	}
	stats.Ran = true
	g, acg := s.Graph, s.ACG

	// The search space is layouts evaluated under rebuild's timing
	// discipline (strict per-PE order). rebuild of the input layout is
	// the search baseline — candidates must be compared against it,
	// not against the original gap-filled schedule, or systematic
	// timing differences would mask genuine improvements. The best
	// schedule seen overall (original included) is what we return.
	cur := layoutOf(s)
	curSched, err := rebuild(g, acg, cur, s.Algorithm, naive)
	if err != nil {
		return s, stats, nil // cannot even reconstruct: keep the input
	}
	curMetric := metricOf(curSched)
	bestSched, bestMetric := s, metricOf(s)
	if curMetric.better(bestMetric) {
		bestSched, bestMetric = curSched, curMetric
	}
	if moveBudget <= 0 {
		moveBudget = DefaultRepairBudget
	}

	// try evaluates a candidate layout; on improvement it becomes the
	// current solution.
	try := func(cand *layout) bool {
		stats.MovesTried++
		candSched, err := rebuild(g, acg, cand, s.Algorithm, naive)
		if err != nil {
			return false // ordering cycle or infeasible: reject
		}
		if m := metricOf(candSched); m.better(curMetric) {
			cur, curSched, curMetric = cand, candSched, m
			if m.better(bestMetric) {
				bestSched, bestMetric = candSched, m
			}
			return true
		}
		return false
	}
	budgetLeft := func() bool { return stats.MovesTried < moveBudget }

	for curMetric.misses > 0 && budgetLeft() {
		// --- Local task swapping to a fixpoint ---------------------
		for budgetLeft() {
			improved := false
			crit := criticalTasks(curSched)
			isCritical := make(map[ctg.TaskID]bool, len(crit))
			for _, t := range crit {
				isCritical[t] = true
			}
		swapSearch:
			for _, t1 := range crit {
				pe := cur.assign[t1]
				idx1 := indexOf(cur.order[pe], t1)
				// Swap t1 with earlier non-critical tasks on the same
				// PE so the critical task executes sooner.
				lo := idx1 - ltsLookback
				if lo < 0 {
					lo = 0
				}
				for idx2 := idx1 - 1; idx2 >= lo; idx2-- {
					t2 := cur.order[pe][idx2]
					if isCritical[t2] {
						continue
					}
					if !budgetLeft() {
						break swapSearch
					}
					cand := cur.clone()
					cand.order[pe][idx1], cand.order[pe][idx2] =
						cand.order[pe][idx2], cand.order[pe][idx1]
					if try(cand) {
						stats.SwapsAccepted++
						improved = true
						break swapSearch
					}
				}
			}
			if !improved {
				break
			}
		}
		if curMetric.misses == 0 || !budgetLeft() {
			break
		}

		// --- One global task migration -----------------------------
		// First the paper's move: migrate a critical task itself,
		// destinations in increasing energy order. If no critical
		// task can move profitably, unload the critical tasks'
		// PEs instead: migrate the non-critical tasks scheduled
		// before them (they are what delays the critical work).
		migrated := false
		crit := criticalTasks(curSched)
		if len(crit) > gtmCandidates {
			crit = crit[:gtmCandidates]
		}
		tryMigrate := func(t1 ctg.TaskID) bool {
			task := g.Task(t1)
			srcPE := cur.assign[t1]
			for _, dstPE := range destinationsByEnergy(g, acg, cur, t1) {
				if dstPE == srcPE || !task.RunnableOn(dstPE) {
					continue
				}
				if !budgetLeft() {
					return false
				}
				cand := cur.clone()
				migrate(cand, curSched, t1, srcPE, dstPE)
				if try(cand) {
					stats.MigrationsAccepted++
					return true
				}
			}
			return false
		}
	migrationSearch:
		for _, t1 := range crit {
			if tryMigrate(t1) {
				migrated = true
				break migrationSearch
			}
			if !budgetLeft() {
				break migrationSearch
			}
		}
		if !migrated && budgetLeft() {
			isCritical := make(map[ctg.TaskID]bool, len(crit))
			for _, t := range criticalTasks(curSched) {
				isCritical[t] = true
			}
		unloadSearch:
			for _, t1 := range crit {
				pe := cur.assign[t1]
				idx1 := indexOf(cur.order[pe], t1)
				lo := idx1 - ltsLookback
				if lo < 0 {
					lo = 0
				}
				for idx2 := idx1 - 1; idx2 >= lo; idx2-- {
					t2 := cur.order[pe][idx2]
					if isCritical[t2] {
						continue
					}
					if tryMigrate(t2) {
						migrated = true
						break unloadSearch
					}
					if !budgetLeft() {
						break unloadSearch
					}
				}
			}
		}
		if !migrated {
			break // nothing helps: output the best schedule found
		}
	}

	stats.FinalMisses = bestMetric.misses
	return bestSched, stats, nil
}

// destinationsByEnergy orders candidate PEs for migrating task t by
// increasing execution-plus-communication energy, the order the paper
// prescribes for GTM ("the destination PEs are tried in the increasing
// order of the execution and communication energy").
func destinationsByEnergy(g *ctg.Graph, acg *energy.ACG, l *layout, t ctg.TaskID) []int {
	task := g.Task(t)
	npe := acg.NumPEs()
	type cand struct {
		pe   int
		cost float64
	}
	cands := make([]cand, 0, npe)
	for k := 0; k < npe; k++ {
		if !task.RunnableOn(k) {
			continue
		}
		cost := task.Energy[k]
		for _, eid := range g.In(t) {
			e := g.Edge(eid)
			cost += acg.CommEnergy(e.Volume, l.assign[e.Src], k)
		}
		for _, eid := range g.Out(t) {
			e := g.Edge(eid)
			cost += acg.CommEnergy(e.Volume, k, l.assign[e.Dst])
		}
		cands = append(cands, cand{pe: k, cost: cost})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].pe < cands[j].pe
	})
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.pe
	}
	return out
}

// migrate moves task t from srcPE to dstPE in the layout, inserting it
// into the destination order at the position matching its current start
// time so the local execution order stays plausible.
func migrate(l *layout, s *sched.Schedule, t ctg.TaskID, srcPE, dstPE int) {
	idx := indexOf(l.order[srcPE], t)
	l.order[srcPE] = append(l.order[srcPE][:idx], l.order[srcPE][idx+1:]...)
	start := s.Tasks[t].Start
	insert := len(l.order[dstPE])
	for i, other := range l.order[dstPE] {
		if s.Tasks[other].Start > start {
			insert = i
			break
		}
	}
	l.order[dstPE] = append(l.order[dstPE], 0)
	copy(l.order[dstPE][insert+1:], l.order[dstPE][insert:])
	l.order[dstPE][insert] = t
	l.assign[t] = dstPE
}

func indexOf(order []ctg.TaskID, t ctg.TaskID) int {
	for i, o := range order {
		if o == t {
			return i
		}
	}
	panic(fmt.Sprintf("eas: task %d missing from its PE order", t))
}
