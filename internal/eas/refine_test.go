package eas

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/sched"
)

// buildWastefulSchedule places two independent tasks with loose
// deadlines on the most expensive PE; refinement should walk them to
// cheaper tiles.
func buildWastefulSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	acg := rig2x2(t)
	g := ctg.New("wasteful")
	a := hetTask(t, g, "a", 100, 100000)
	b := hetTask(t, g, "b", 100, 100000)
	bld := sched.NewBuilder(g, acg, "eas")
	if _, err := bld.Commit(a, 0); err != nil { // cpu-hp: expensive
		t.Fatal(err)
	}
	if _, err := bld.Commit(b, 0); err != nil {
		t.Fatal(err)
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRefineEnergyLowersEnergy(t *testing.T) {
	s := buildWastefulSchedule(t)
	refined, stats, err := RefineEnergy(s, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MovesAccepted == 0 {
		t.Fatal("no refinement move accepted on an obviously wasteful schedule")
	}
	if refined.TotalEnergy() >= s.TotalEnergy() {
		t.Errorf("energy not reduced: %.1f -> %.1f", s.TotalEnergy(), refined.TotalEnergy())
	}
	if err := refined.Validate(); err != nil {
		t.Fatalf("refined schedule invalid: %v", err)
	}
	if len(refined.DeadlineMisses()) != 0 {
		t.Error("refinement introduced deadline misses")
	}
	// The cheapest PE for these tasks is the ARM (index 3).
	for i := range refined.Tasks {
		if refined.Tasks[i].PE == 0 {
			t.Errorf("task %d still on the expensive CPU", i)
		}
	}
}

func TestRefineEnergyPreservesFeasibility(t *testing.T) {
	// Tight deadlines: both tasks need the CPU; refinement must not
	// move them even though cheaper PEs exist.
	acg := rig2x2(t)
	g := ctg.New("tight")
	a := hetTask(t, g, "a", 100, 51)
	b := hetTask(t, g, "b", 100, 102)
	bld := sched.NewBuilder(g, acg, "eas")
	if _, err := bld.Commit(a, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := bld.Commit(b, 0); err != nil {
		t.Fatal(err)
	}
	s, err := bld.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DeadlineMisses()) != 0 {
		t.Fatalf("setup: schedule misses deadlines:\n%s", s.Gantt())
	}
	refined, _, err := RefineEnergy(s, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined.DeadlineMisses()) != 0 {
		t.Errorf("refinement broke feasibility:\n%s", refined.Gantt())
	}
}

func TestRefineEnergyRespectsBudget(t *testing.T) {
	s := buildWastefulSchedule(t)
	_, stats, err := RefineEnergy(s, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MovesTried > 1 {
		t.Errorf("budget exceeded: %d", stats.MovesTried)
	}
}

func TestFallbackPassActivates(t *testing.T) {
	// An instance where the level scheduler's placement misses a
	// deadline that the deadline-first fallback meets: verify the
	// driver returns a feasible schedule and reports refinement stats.
	// The Fig. 7 ratio-1.8 integrated workload is exactly such a case;
	// reuse a scaled MSB-like structure via a chain with heavy
	// communication.
	acg := rig2x2(t)
	g := ctg.New("fallback")
	// Chain of four heavy-communication stages with a deadline that
	// requires fast PEs and co-location.
	prev := ctg.TaskID(-1)
	for i := 0; i < 4; i++ {
		deadline := ctg.NoDeadline
		if i == 3 {
			deadline = 900
		}
		id := hetTask(t, g, "s", 300, deadline)
		if prev >= 0 {
			if _, err := g.AddEdge(prev, id, 64*1024); err != nil { // 256 cycles on the NoC
				t.Fatal(err)
			}
		}
		prev = id
	}
	res, err := Schedule(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Feasible() {
		t.Fatalf("driver left a feasible instance infeasible:\n%s", res.Schedule.Gantt())
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineFirstSchedule(t *testing.T) {
	acg := rig2x2(t)
	g := ctg.New("df")
	hetTask(t, g, "a", 100, 500)
	hetTask(t, g, "b", 100, 200)
	s, err := deadlineFirstSchedule(newWorkspace(Options{}), g, acg, "eas", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Feasible() {
		t.Errorf("deadline-first missed feasible deadlines:\n%s", s.Gantt())
	}
}
