package eas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nocsched/internal/ctg"
	"nocsched/internal/sched"
	"nocsched/internal/tgff"
)

// randomInstance builds a small random problem and an intentionally
// arbitrary (often bad) initial schedule by committing tasks to random
// capable PEs in topological order.
func randomInstance(t *testing.T, seed int64) *sched.Schedule {
	t.Helper()
	acg := rig2x2(t)
	rng := rand.New(rand.NewSource(seed))
	g, err := tgff.Generate(tgff.Params{
		Name:                "prop",
		Seed:                seed,
		NumTasks:            8 + rng.Intn(25),
		MaxInDegree:         1 + rng.Intn(3),
		LocalityWindow:      6,
		TaskTypes:           4,
		ExecMin:             10,
		ExecMax:             150,
		HeteroSpread:        0.5,
		VolumeMin:           128,
		VolumeMax:           4096,
		ControlEdgeFraction: 0.2,
		DeadlineLaxity:      0.7 + rng.Float64(),
		DeadlineFraction:    1,
		Platform:            acg.Platform(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := sched.NewBuilder(g, acg, "eas")
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range order {
		task := g.Task(id)
		var pes []int
		for k := range task.ExecTime {
			if task.RunnableOn(k) {
				pes = append(pes, k)
			}
		}
		if _, err := b.Commit(id, pes[rng.Intn(len(pes))]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestQuickRepairInvariants: starting from arbitrary random schedules,
// repair must always return a valid schedule that is no worse on the
// (misses, lateness) metric.
func TestQuickRepairInvariants(t *testing.T) {
	f := func(seed int64) bool {
		s := randomInstance(t, seed)
		before := metricOf(s)
		repaired, stats, err := Repair(s, 400, false)
		if err != nil {
			return false
		}
		if err := repaired.Validate(); err != nil {
			t.Logf("seed %d: invalid repaired schedule: %v", seed, err)
			return false
		}
		after := metricOf(repaired)
		if after.misses > before.misses {
			t.Logf("seed %d: misses %d -> %d", seed, before.misses, after.misses)
			return false
		}
		if after.misses == before.misses && after.lateness > before.lateness {
			t.Logf("seed %d: lateness worsened", seed)
			return false
		}
		_ = stats
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRefineInvariants: refinement must never raise energy and
// never degrade the deadline metric, and always returns a valid
// schedule.
func TestQuickRefineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		s := randomInstance(t, seed)
		before := metricOf(s)
		beforeE := s.TotalEnergy()
		refined, _, err := RefineEnergy(s, 300, false)
		if err != nil {
			return false
		}
		if err := refined.Validate(); err != nil {
			t.Logf("seed %d: invalid refined schedule: %v", seed, err)
			return false
		}
		after := metricOf(refined)
		if after.misses > before.misses ||
			(after.misses == before.misses && after.lateness > before.lateness) {
			t.Logf("seed %d: metric degraded %+v -> %+v", seed, before, after)
			return false
		}
		if refined.TotalEnergy() > beforeE+1e-9 {
			t.Logf("seed %d: energy raised %.1f -> %.1f", seed, beforeE, refined.TotalEnergy())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBudgetMonotoneInScale: shrinking the slack scale never
// loosens any budgeted deadline.
func TestQuickBudgetMonotoneInScale(t *testing.T) {
	acg := rig2x2(t)
	f := func(seed int64, a, b uint8) bool {
		s1 := float64(a%101) / 100
		s2 := float64(b%101) / 100
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		g, err := tgff.Generate(tgff.Params{
			Name: "mono", Seed: seed, NumTasks: 20, MaxInDegree: 2,
			LocalityWindow: 6, TaskTypes: 4, ExecMin: 10, ExecMax: 100,
			HeteroSpread: 0.5, VolumeMin: 128, VolumeMax: 1024,
			ControlEdgeFraction: 0.2, DeadlineLaxity: 1.5, DeadlineFraction: 1,
			Platform: acg.Platform(),
		})
		if err != nil {
			return false
		}
		lo, err := ComputeBudgetScaled(g, nil, s1)
		if err != nil {
			return false
		}
		hi, err := ComputeBudgetScaled(g, nil, s2)
		if err != nil {
			return false
		}
		for i := range lo.BD {
			if lo.BD[i] == ctg.NoDeadline || hi.BD[i] == ctg.NoDeadline {
				if lo.BD[i] != hi.BD[i] {
					return false // constrainedness must not depend on scale
				}
				continue
			}
			if lo.BD[i] > hi.BD[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
