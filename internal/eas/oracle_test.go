package eas

import (
	"testing"

	"nocsched/internal/tgff"
	"nocsched/internal/verify"
)

// TestScheduleOracleConformance cross-checks EAS output against the
// independent conformance oracle in internal/verify: precedence with
// communication delays, Definition 3/4 exclusivity, route validity,
// and bit-exact Eq. (2)/(3) energy re-derivation. Validate() shares
// code with the builder; the oracle does not, which is the point.
func TestScheduleOracleConformance(t *testing.T) {
	acg := rig4x4(t)
	for _, seed := range []int64{1, 17, 42} {
		g, err := tgff.Generate(tgff.Params{
			Name: "oracle", Seed: seed, NumTasks: 60, MaxInDegree: 3,
			LocalityWindow: 16, TaskTypes: 8, ExecMin: 20, ExecMax: 200,
			HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 8192,
			ControlEdgeFraction: 0.1, DeadlineLaxity: 1.4, DeadlineFraction: 1,
			Platform: acg.Platform(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Schedule(g, acg, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := verify.Check(res.Schedule)
		deadline := rep.ByClass(verify.ClassDeadline)
		if structural := len(rep.Findings) - len(deadline); structural > 0 {
			t.Fatalf("seed %d: oracle flags the EAS schedule:\n%s", seed, rep)
		}
		if misses := res.Schedule.DeadlineMisses(); len(deadline) != len(misses) {
			t.Fatalf("seed %d: %d deadline findings vs %d reported misses",
				seed, len(deadline), len(misses))
		}
	}
}
