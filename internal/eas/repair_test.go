package eas

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/sched"
)

// buildMissSchedule constructs a deliberately bad schedule on the 2x2
// platform: two independent tasks on the same PE with the urgent one
// second, so it misses its deadline. LTS alone can fix it by swapping
// the order (energy-neutral).
func buildMissSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	acg := rig2x2(t)
	g := ctg.New("miss")
	slack := hetTask(t, g, "slack", 100, ctg.NoDeadline) // no deadline
	urgent := hetTask(t, g, "urgent", 100, 120)          // needs to go first

	b := sched.NewBuilder(g, acg, "eas")
	// Both on PE2 (risc, exec 100): slack at [0,100), urgent at
	// [100,200) -> urgent misses its 120 deadline.
	if _, err := b.Commit(slack, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(urgent, 2); err != nil {
		t.Fatal(err)
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DeadlineMisses()) != 1 {
		t.Fatalf("setup: expected 1 miss, got %d", len(s.DeadlineMisses()))
	}
	return s
}

func TestRepairFixesWithLocalSwap(t *testing.T) {
	s := buildMissSchedule(t)
	repaired, stats, err := Repair(s, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Ran {
		t.Error("repair did not run")
	}
	if len(repaired.DeadlineMisses()) != 0 {
		t.Fatalf("miss not repaired: %v\n%s", repaired.DeadlineMisses(), repaired.Gantt())
	}
	if stats.SwapsAccepted+stats.MigrationsAccepted == 0 {
		t.Error("repair succeeded without accepting any move")
	}
	if err := repaired.Validate(); err != nil {
		t.Fatalf("repaired schedule invalid: %v", err)
	}
	// LTS swaps on one PE never change energy; if only swaps were
	// used the energy must match exactly.
	if stats.MigrationsAccepted == 0 && repaired.TotalEnergy() != s.TotalEnergy() {
		t.Errorf("pure-swap repair changed energy: %v -> %v",
			s.TotalEnergy(), repaired.TotalEnergy())
	}
}

func TestRepairNoopOnFeasible(t *testing.T) {
	acg := rig2x2(t)
	g := ctg.New("fine")
	id := hetTask(t, g, "a", 100, 100000)
	b := sched.NewBuilder(g, acg, "eas")
	if _, err := b.Commit(id, 3); err != nil {
		t.Fatal(err)
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	repaired, stats, err := Repair(s, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran || repaired != s {
		t.Error("repair touched a feasible schedule")
	}
}

// TestRepairMigrationNeeded: one PE is overloaded with two
// deadline-critical tasks; reordering cannot satisfy both, so GTM must
// move one elsewhere.
func TestRepairMigrationNeeded(t *testing.T) {
	acg := rig2x2(t)
	g := ctg.New("overload")
	// Two independent tasks, each 100 units on the RISC (PE2), both
	// with deadline 150: impossible on one PE, trivial on two.
	t1 := hetTask(t, g, "t1", 100, 150)
	t2 := hetTask(t, g, "t2", 100, 150)

	b := sched.NewBuilder(g, acg, "eas")
	if _, err := b.Commit(t1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(t2, 2); err != nil {
		t.Fatal(err)
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DeadlineMisses()) == 0 {
		t.Fatal("setup: expected misses")
	}
	repaired, stats, err := Repair(s, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired.DeadlineMisses()) != 0 {
		t.Fatalf("migration repair failed:\n%s", repaired.Gantt())
	}
	if stats.MigrationsAccepted == 0 {
		t.Error("expected at least one migration")
	}
	if err := repaired.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairRespectsBudget(t *testing.T) {
	s := buildMissSchedule(t)
	// Budget of 1 attempted move: repair can try exactly one candidate.
	_, stats, err := Repair(s, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MovesTried > 1 {
		t.Errorf("budget exceeded: %d moves tried", stats.MovesTried)
	}
}

func TestRepairNeverWorsens(t *testing.T) {
	// Even when repair cannot fully fix the schedule, the result must
	// be no worse than the input by the (misses, lateness) metric.
	acg := rig2x2(t)
	g := ctg.New("hopeless")
	// Impossible deadline: nothing helps, output must equal input
	// metric-wise.
	id := hetTask(t, g, "a", 1000, 10)
	b := sched.NewBuilder(g, acg, "eas")
	if _, err := b.Commit(id, 0); err != nil {
		t.Fatal(err)
	}
	s, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	repaired, _, err := Repair(s, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	mIn, mOut := metricOf(s), metricOf(repaired)
	if mOut.misses > mIn.misses || (mOut.misses == mIn.misses && mOut.lateness > mIn.lateness) {
		t.Errorf("repair worsened the schedule: %+v -> %+v", mIn, mOut)
	}
}

func TestRebuildPreservesAssignmentAndOrder(t *testing.T) {
	s := buildMissSchedule(t)
	l := layoutOf(s)
	re, err := rebuild(s.Graph, s.ACG, l, s.Algorithm, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatalf("rebuilt schedule invalid: %v", err)
	}
	for i := range re.Tasks {
		if re.Tasks[i].PE != l.assign[i] {
			t.Errorf("task %d moved to PE %d", i, re.Tasks[i].PE)
		}
	}
	order := re.PEOrder()
	for pe := range order {
		if len(order[pe]) != len(l.order[pe]) {
			t.Fatalf("PE %d order length changed", pe)
		}
		for i := range order[pe] {
			if order[pe][i] != l.order[pe][i] {
				t.Errorf("PE %d execution order changed: %v vs %v", pe, order[pe], l.order[pe])
				break
			}
		}
	}
}

func TestRebuildDetectsOrderCycle(t *testing.T) {
	// a -> b with a and b on different PEs; force b before a's
	// PE-neighbor c, where c -> a. Construct: PE0 order [b], PE1 order
	// [a]; edge a->b means b cannot be head-committed before a — that
	// still works. A true cycle needs two PEs each holding the other's
	// prerequisite *behind* a blocker:
	// PE0: [y, x'], PE1: [x, y'] with x->x' and y->y' cross edges is
	// fine; cycle: PE0 [b1, a2], PE1 [b2, a1] with a1->b1 and a2->b2.
	acg := rig2x2(t)
	g := ctg.New("cycle")
	a1 := hetTask(t, g, "a1", 10, ctg.NoDeadline)
	b1 := hetTask(t, g, "b1", 10, ctg.NoDeadline)
	a2 := hetTask(t, g, "a2", 10, ctg.NoDeadline)
	b2 := hetTask(t, g, "b2", 10, ctg.NoDeadline)
	g.AddEdge(a1, b1, 0)
	g.AddEdge(a2, b2, 0)

	l := &layout{
		assign: make([]int, 4),
		order:  make([][]ctg.TaskID, 4),
	}
	l.assign[b1], l.assign[a2] = 0, 0
	l.assign[b2], l.assign[a1] = 1, 1
	l.order[0] = []ctg.TaskID{b1, a2} // b1 blocks a2, but b1 needs a1
	l.order[1] = []ctg.TaskID{b2, a1} // b2 blocks a1, but b2 needs a2
	if _, err := rebuild(g, acg, l, "eas", false); err == nil {
		t.Fatal("ordering cycle not detected")
	}
}
