package eas

import (
	"testing"

	"nocsched/internal/ctg"
)

// TestCommAwareBudgetTightens: charging communication time to the slack
// paths must shrink (or preserve) every budgeted deadline relative to
// the execution-only budget.
func TestCommAwareBudgetTightens(t *testing.T) {
	g := ctg.New("comm")
	a := addWeighted(t, g, "a", 100, 1, ctg.NoDeadline)
	b := addWeighted(t, g, "b", 100, 1, 1000)
	// Heavy edge: 25600 bits at bandwidth 256 = 100 extra time units.
	if _, err := g.AddEdge(a, b, 25600); err != nil {
		t.Fatal(err)
	}

	plain, err := ComputeBudgetCommAware(g, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := ComputeBudgetCommAware(g, nil, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if aware.BD[a] >= plain.BD[a] {
		t.Errorf("comm-aware BD[a] = %d, plain %d: not tighter", aware.BD[a], plain.BD[a])
	}
	// Equal weights: plain path 200, slack 800, a's share 400 -> 500.
	if plain.BD[a] != 500 {
		t.Errorf("plain BD[a] = %d, want 500", plain.BD[a])
	}
	// Comm-aware: path 300, slack 700, a's share 350 -> 450.
	if aware.BD[a] != 450 {
		t.Errorf("aware BD[a] = %d, want 450", aware.BD[a])
	}
	// The deadline task itself keeps its deadline either way.
	if plain.BD[b] != 1000 || aware.BD[b] != 1000 {
		t.Errorf("BD[b]: plain %d aware %d", plain.BD[b], aware.BD[b])
	}
}

// TestScaleZeroRemovesSlack: scale 0 pins every BD to the forward path
// length.
func TestScaleZeroRemovesSlack(t *testing.T) {
	g := ctg.New("scale0")
	a := addWeighted(t, g, "a", 100, 1, ctg.NoDeadline)
	b := addWeighted(t, g, "b", 100, 1, 1000)
	g.AddEdge(a, b, 0)
	budget, err := ComputeBudgetScaled(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if budget.BD[a] != 100 || budget.BD[b] != 200 {
		t.Errorf("BDs = %d, %d; want forward path lengths 100, 200",
			budget.BD[a], budget.BD[b])
	}
}

// TestScaleValidation rejects out-of-range scales.
func TestScaleValidation(t *testing.T) {
	g := ctg.New("v")
	addWeighted(t, g, "a", 100, 1, 500)
	for _, bad := range []float64{-0.1, 1.5} {
		if _, err := ComputeBudgetScaled(g, nil, bad); err == nil {
			t.Errorf("scale %v accepted", bad)
		}
	}
}

// TestControlEdgesAddNoCommTime: zero-volume arcs contribute no
// communication time to the comm-aware budget.
func TestControlEdgesAddNoCommTime(t *testing.T) {
	g := ctg.New("ctrl")
	a := addWeighted(t, g, "a", 100, 1, ctg.NoDeadline)
	b := addWeighted(t, g, "b", 100, 1, 1000)
	g.AddEdge(a, b, 0)
	plain, _ := ComputeBudgetCommAware(g, nil, 1, 0)
	aware, err := ComputeBudgetCommAware(g, nil, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BD[a] != aware.BD[a] {
		t.Errorf("control edge changed the budget: %d vs %d", plain.BD[a], aware.BD[a])
	}
}
