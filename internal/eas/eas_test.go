package eas

import (
	"reflect"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/tgff"
)

// rig2x2 returns a 2x2 heterogeneous platform ACG.
func rig2x2(t *testing.T) *energy.ACG {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return acg
}

// rig4x4 returns a 4x4 heterogeneous platform ACG.
func rig4x4(t *testing.T) *energy.ACG {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return acg
}

// hetTask adds a task whose times/energies follow the standard class
// trade-off (fast+hungry vs slow+frugal).
func hetTask(t *testing.T, g *ctg.Graph, name string, ref int64, deadline int64) ctg.TaskID {
	t.Helper()
	id, err := g.AddTask(name,
		[]int64{ref / 2, ref * 7 / 10, ref, ref * 9 / 5},
		[]float64{float64(ref) * 2.0, float64(ref) * 0.91, float64(ref), float64(ref) * 0.63},
		deadline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestChoosesLowPowerWhenSlackAllows(t *testing.T) {
	// A single task with a very loose deadline must land on the
	// cheapest PE (the ARM at index 3).
	acg := rig2x2(t)
	g := ctg.New("loose")
	id := hetTask(t, g, "only", 100, 100000)
	res, err := Schedule(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pe := res.Schedule.Tasks[id].PE; pe != 3 {
		t.Errorf("task on PE %d, want 3 (arm-lp)", pe)
	}
}

func TestChoosesFastPEUnderTightDeadline(t *testing.T) {
	// Deadline only achievable on the CPU (exec 50): the over-budget
	// branch (Step 2.3) must fire and pick the fastest PE.
	acg := rig2x2(t)
	g := ctg.New("tight")
	id := hetTask(t, g, "only", 100, 55)
	res, err := Schedule(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pe := res.Schedule.Tasks[id].PE; pe != 0 {
		t.Errorf("task on PE %d, want 0 (cpu-hp)", pe)
	}
	if !res.Schedule.Feasible() {
		t.Error("achievable deadline missed")
	}
}

func TestValidatesInputs(t *testing.T) {
	acg := rig2x2(t)
	// PE-count mismatch.
	g := ctg.New("mismatch")
	if _, err := g.AddTask("a", []int64{1}, []float64{1}, ctg.NoDeadline); err != nil {
		t.Fatal(err)
	}
	if _, err := Schedule(g, acg, Options{}); err == nil {
		t.Error("PE-count mismatch accepted")
	}
	// Cyclic graph.
	g2 := ctg.New("cyc")
	a := hetTask(t, g2, "a", 10, ctg.NoDeadline)
	b := hetTask(t, g2, "b", 10, ctg.NoDeadline)
	g2.AddEdge(a, b, 0)
	g2.AddEdge(b, a, 0)
	if _, err := Schedule(g2, acg, Options{}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestDeterminism(t *testing.T) {
	acg := rig4x4(t)
	g, err := tgff.Generate(tgff.Params{
		Name: "det", Seed: 99, NumTasks: 80, MaxInDegree: 3,
		LocalityWindow: 16, TaskTypes: 8, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 8192,
		ControlEdgeFraction: 0.1, DeadlineLaxity: 1.2, DeadlineFraction: 1,
		Platform: acg.Platform(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Schedule(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Schedule(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Schedule.Tasks, r2.Schedule.Tasks) {
		t.Error("scheduler is not deterministic")
	}
	if r1.Schedule.TotalEnergy() != r2.Schedule.TotalEnergy() {
		t.Error("energies differ between runs")
	}
}

func TestEASBeatsEDFOnLooseDeadlines(t *testing.T) {
	acg := rig4x4(t)
	for seed := int64(1); seed <= 3; seed++ {
		g, err := tgff.Generate(tgff.Params{
			Name: "cmp", Seed: seed, NumTasks: 100, MaxInDegree: 3,
			LocalityWindow: 16, TaskTypes: 10, ExecMin: 20, ExecMax: 200,
			HeteroSpread: 0.5, VolumeMin: 256, VolumeMax: 8192,
			ControlEdgeFraction: 0.1, DeadlineLaxity: 1.5, DeadlineFraction: 1,
			Platform: acg.Platform(),
		})
		if err != nil {
			t.Fatal(err)
		}
		eas, err := Schedule(g, acg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ed, err := edf.Schedule(g, acg)
		if err != nil {
			t.Fatal(err)
		}
		if err := eas.Schedule.Validate(); err != nil {
			t.Fatalf("seed %d: invalid EAS schedule: %v", seed, err)
		}
		if !eas.Schedule.Feasible() {
			t.Errorf("seed %d: EAS missed deadlines at laxity 1.5", seed)
		}
		if eas.Schedule.TotalEnergy() >= ed.TotalEnergy() {
			t.Errorf("seed %d: EAS %.1f >= EDF %.1f", seed,
				eas.Schedule.TotalEnergy(), ed.TotalEnergy())
		}
	}
}

func TestWeightOptionChangesNothingStructural(t *testing.T) {
	// All weight functions must yield valid, feasible schedules; they
	// may differ in energy.
	acg := rig4x4(t)
	g, err := tgff.Generate(tgff.SuiteParams(tgff.CategoryI, 0, acg.Platform()))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []WeightFunc{WeightVarEVarR, WeightVarE, WeightUniform} {
		res, err := Schedule(g, acg, Options{Weight: w})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("weight variant produced invalid schedule: %v", err)
		}
	}
}

func TestNaiveContentionProducesOptimisticSchedules(t *testing.T) {
	// The naive model never delays transactions, so its makespan can
	// only be <= the exact model's on the same assignment — globally we
	// just check it runs and both models return complete schedules.
	acg := rig4x4(t)
	g, err := tgff.Generate(tgff.Params{
		Name: "naive", Seed: 5, NumTasks: 60, MaxInDegree: 3,
		LocalityWindow: 12, TaskTypes: 8, ExecMin: 20, ExecMax: 200,
		HeteroSpread: 0.5, VolumeMin: 4096, VolumeMax: 32768,
		ControlEdgeFraction: 0, DeadlineLaxity: 1.3, DeadlineFraction: 1,
		Platform: acg.Platform(),
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Schedule(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Schedule(g, acg, Options{NaiveContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Schedule.Validate(); err != nil {
		t.Fatalf("exact schedule invalid: %v", err)
	}
	// The naive schedule is generally *invalid* under Definition 3 —
	// that is the point of the ablation.
	if naive.Schedule.Makespan() <= 0 || exact.Schedule.Makespan() <= 0 {
		t.Error("degenerate makespans")
	}
}

func TestEASBaseVersusEASNaming(t *testing.T) {
	acg := rig2x2(t)
	g := ctg.New("names")
	hetTask(t, g, "a", 100, ctg.NoDeadline)
	base, err := Schedule(g, acg, Options{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Schedule.Algorithm != "eas-base" {
		t.Errorf("algorithm = %q", base.Schedule.Algorithm)
	}
	full, err := Schedule(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Schedule.Algorithm != "eas" {
		t.Errorf("algorithm = %q", full.Schedule.Algorithm)
	}
	if full.RepairStats.Ran {
		t.Error("repair ran on a feasible schedule")
	}
}
