package eas

import (
	"fmt"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/msb"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/tgff"
)

// diffCase is one problem instance of the differential suite.
type diffCase struct {
	name string
	g    *ctg.Graph
	acg  *energy.ACG
}

// differentialCases builds the suite: 20 TGFF graphs (10 Category I +
// 10 Category II, shrunk from the paper's ~500 tasks to keep the test
// fast) and the three MSB multimedia workloads.
func differentialCases(t *testing.T) []diffCase {
	t.Helper()
	var cases []diffCase

	platform, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 100)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(platform, energy.Model{ESbit: 1, ELbit: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range []tgff.Category{tgff.CategoryI, tgff.CategoryII} {
		for i := 0; i < 10; i++ {
			p := tgff.SuiteParams(cat, i, platform)
			p.NumTasks = 70 + i
			g, err := tgff.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, diffCase{
				name: fmt.Sprintf("%s-%02d", cat, i), g: g, acg: acg,
			})
		}
	}

	clip, err := msb.ClipByName("akiyo")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []struct {
		name  string
		build func() (*ctg.Graph, *noc.Platform, error)
	}{
		{"msb-encoder", func() (*ctg.Graph, *noc.Platform, error) {
			p, err := msb.DefaultPlatform2x2()
			if err != nil {
				return nil, nil, err
			}
			g, err := msb.Encoder(clip, p)
			return g, p, err
		}},
		{"msb-decoder", func() (*ctg.Graph, *noc.Platform, error) {
			p, err := msb.DefaultPlatform2x2()
			if err != nil {
				return nil, nil, err
			}
			g, err := msb.Decoder(clip, p)
			return g, p, err
		}},
		{"msb-integrated", func() (*ctg.Graph, *noc.Platform, error) {
			p, err := msb.DefaultPlatform3x3()
			if err != nil {
				return nil, nil, err
			}
			g, err := msb.Integrated(clip, p)
			return g, p, err
		}},
	} {
		g, p, err := w.build()
		if err != nil {
			t.Fatal(err)
		}
		macg, err := energy.BuildACG(p, energy.Model{ESbit: 1, ELbit: 1})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, diffCase{name: w.name, g: g, acg: macg})
	}
	return cases
}

// TestEASDifferential is the acceptance gate of the read-only probe
// path and the worker pool: on every suite instance, the legacy
// journal-based scheduler, the read-only sequential scheduler and the
// read-only 4-worker scheduler must produce bit-identical schedules —
// same placements, same transaction slots, exactly equal total energy.
// Run under -race in CI, this also proves the concurrent probers never
// write shared state.
func TestEASDifferential(t *testing.T) {
	for _, tc := range differentialCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := Schedule(tc.g, tc.acg, Options{LegacyProbe: true})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Schedule(tc.g, tc.acg, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Schedule(tc.g, tc.acg, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if d := sched.Diff(legacy.Schedule, seq.Schedule); d != "" {
				t.Errorf("legacy vs read-only sequential: %s", d)
			}
			if d := sched.Diff(legacy.Schedule, par.Schedule); d != "" {
				t.Errorf("legacy vs read-only 4-worker: %s", d)
			}
			if legacy.Probes != seq.Probes || legacy.Probes != par.Probes {
				t.Errorf("probe counts diverge: legacy %d, seq %d, par %d",
					legacy.Probes, seq.Probes, par.Probes)
			}
		})
	}
}

// TestEDFDifferential covers the same property for the EDF baseline.
func TestEDFDifferential(t *testing.T) {
	for _, tc := range differentialCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := edf.ScheduleOpts(tc.g, tc.acg, edf.Options{LegacyProbe: true})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := edf.ScheduleOpts(tc.g, tc.acg, edf.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := edf.ScheduleOpts(tc.g, tc.acg, edf.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if d := sched.Diff(legacy, seq); d != "" {
				t.Errorf("legacy vs read-only sequential: %s", d)
			}
			if d := sched.Diff(legacy, par); d != "" {
				t.Errorf("legacy vs read-only 4-worker: %s", d)
			}
		})
	}
}
