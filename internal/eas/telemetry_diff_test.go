package eas

import (
	"bytes"
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
	"nocsched/internal/tgff"
)

// telemetryRig generates a mid-size TGFF benchmark on a 4x4 mesh.
func telemetryRig(t *testing.T, seed int64) (*ctg.Graph, *energy.ACG) {
	t.Helper()
	p, err := noc.NewHeterogeneousMesh(4, 4, noc.RouteXY, 256)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	params := tgff.SuiteParams(tgff.CategoryI, 0, p)
	params.Seed = seed
	params.NumTasks = 80
	g, err := tgff.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	return g, acg
}

// TestTelemetryDoesNotChangeSchedule is the differential guarantee:
// attaching a collector (metrics AND an active trace sink) must leave
// the committed schedule bit-identical to an untelemetered run.
func TestTelemetryDoesNotChangeSchedule(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g, acg := telemetryRig(t, seed)

		plain, err := Schedule(g, acg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var trace bytes.Buffer
		col := telemetry.NewCollector(telemetry.NewChromeSink(&trace))
		metered, err := Schedule(g, acg, Options{Telemetry: col})
		if err != nil {
			t.Fatal(err)
		}
		if d := sched.Diff(plain.Schedule, metered.Schedule); d != "" {
			t.Fatalf("seed %d: telemetry changed the schedule: %s", seed, d)
		}
		if plain.Probes != metered.Probes {
			t.Fatalf("seed %d: telemetry changed the probe count: %d vs %d",
				seed, plain.Probes, metered.Probes)
		}

		// The registry's probe counter is the same quantity the result
		// reports (the repair pass's interior builders are not metered,
		// and do not count toward Result.Probes either).
		if got := col.Registry.Counter(sched.MetricProbes).Value(); got != metered.Probes {
			t.Errorf("seed %d: %s = %d, Result.Probes = %d",
				seed, sched.MetricProbes, got, metered.Probes)
		}
		if got := col.Registry.Counter(sched.MetricCommits).Value(); got < int64(g.NumTasks()) {
			t.Errorf("seed %d: %s = %d, want >= %d", seed, sched.MetricCommits, got, g.NumTasks())
		}

		if !col.Tracer.Enabled() {
			t.Fatal("tracer not enabled")
		}
	}
}

// TestTelemetryTraceValidates closes the sink and validates the phases
// trace easched would write for -trace-out.
func TestTelemetryTraceValidates(t *testing.T) {
	g, acg := telemetryRig(t, 3)
	var trace bytes.Buffer
	sink := telemetry.NewChromeSink(&trace)
	col := telemetry.NewCollector(sink)
	res, err := Schedule(g, acg, Options{Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	res.Schedule.EmitChromeTrace(sink)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := telemetry.ValidateChromeTrace(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	// At least one phase span per pass plus one slice per task.
	if n < g.NumTasks() {
		t.Errorf("only %d events for %d tasks", n, g.NumTasks())
	}
	// Published schedule gauges are consistent with the result.
	snap := col.Registry.Snapshot()
	var total, comp, comm float64
	for _, gs := range snap.Gauges {
		switch gs.Name {
		case sched.MetricEnergyTotal:
			total = gs.Value
		case sched.MetricEnergyCompute:
			comp = gs.Value
		case sched.MetricEnergyComm:
			comm = gs.Value
		}
	}
	if want := res.Schedule.TotalEnergy(); !close64(total, want) {
		t.Errorf("%s = %g, want %g", sched.MetricEnergyTotal, total, want)
	}
	if !close64(comp+comm, total) {
		t.Errorf("compute %g + comm %g != total %g", comp, comm, total)
	}
}

// TestTelemetryDoesNotChangeEDF is the EDF-path differential twin.
func TestTelemetryDoesNotChangeEDF(t *testing.T) {
	g, acg := telemetryRig(t, 5)
	plain, err := edf.ScheduleOpts(g, acg, edf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(nil)
	metered, err := edf.ScheduleOpts(g, acg, edf.Options{Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	if d := sched.Diff(plain, metered); d != "" {
		t.Fatalf("telemetry changed the EDF schedule: %s", d)
	}
	if got := col.Registry.Counter(sched.MetricProbes).Value(); got != metered.Probes {
		t.Errorf("%s = %d, Result.Probes = %d", sched.MetricProbes, got, metered.Probes)
	}
}

// close64 compares floats to a relative 1e-9.
func close64(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	}
	if -b > m {
		m = -b
	}
	return d <= 1e-9*m || d == 0
}
