// Package eas implements the paper's primary contribution: the
// Energy-Aware Scheduling (EAS) algorithm that statically co-schedules
// computation tasks and communication transactions onto a heterogeneous
// NoC under real-time constraints (Sec. 5).
//
// The algorithm has three steps:
//
//  1. Budget slack allocation (budget.go) — every task receives a
//     Budgeted Deadline (BD) by distributing path slack proportionally
//     to the task weights W_t = VAR_e(t) * VAR_r(t).
//  2. Level-based scheduling (eas.go) — list scheduling over the Ready
//     Task List, probing F(i,k) with the exact link-contention model of
//     Fig. 3 and choosing tasks/PEs by budget pressure or energy regret.
//  3. Search and repair (repair.go) — Local Task Swapping and Global
//     Task Migration fix residual deadline misses (Fig. 4).
//
// EAS-base is steps 1–2; EAS is all three.
package eas

import (
	"fmt"
	"math"

	"nocsched/internal/ctg"
	"nocsched/internal/stats"
)

// WeightFunc computes a task's slack-allocation weight from its per-PE
// execution-time and energy arrays (restricted to runnable PEs).
// Intuitively (paper Step 1.2): the higher the weight, the higher the
// priority of the task in selecting its PE, because its mapping has a
// larger impact on energy and performance.
type WeightFunc func(execTimes []int64, energies []float64) float64

// WeightVarEVarR is the paper's weight, W_t = VAR_e * VAR_r.
func WeightVarEVarR(execTimes []int64, energies []float64) float64 {
	return stats.Variance(energies) * stats.VarianceInt64(execTimes)
}

// WeightVarE uses only the energy variance (ablation).
func WeightVarE(execTimes []int64, energies []float64) float64 {
	return stats.Variance(energies)
}

// WeightUniform gives every task the same weight, i.e. slack is split
// evenly along each path (ablation).
func WeightUniform([]int64, []float64) float64 { return 1 }

// Budget is the result of Step 1: per-task mean execution times, weights
// and budgeted deadlines.
type Budget struct {
	// Mean[t] is M_t, the mean execution time of task t over the PEs
	// that can run it.
	Mean []float64
	// Weight[t] is W_t.
	Weight []float64
	// BD[t] is the budgeted deadline of task t, or ctg.NoDeadline when
	// no deadline constrains the task (no deadline-carrying task is
	// reachable from it).
	BD []int64
}

// Constrained reports whether task t has a finite budgeted deadline.
func (b *Budget) Constrained(t ctg.TaskID) bool { return b.BD[t] != ctg.NoDeadline }

// ComputeBudget runs Step 1 of EAS on graph g with the given weight
// function (nil selects the paper's WeightVarEVarR). It is
// ComputeBudgetScaled with the paper's full slack (scale 1).
//
// For every deadline-carrying task d and every task t on a path to d,
// the slack of the longest (mean-execution-time) source-to-d path
// through t is distributed over that path's tasks proportionally to
// their weights; t's budgeted deadline toward d is the end of its share.
// BD(t) is the minimum over all reachable deadline tasks, so the
// tightest downstream constraint wins. This reproduces the paper's
// Fig. 2 example exactly (weights 100/200/100 over a 400-unit slack give
// budgeted deadlines 400/800/1300).
func ComputeBudget(g *ctg.Graph, weight WeightFunc) (*Budget, error) {
	return ComputeBudgetScaled(g, weight, 1.0)
}

// ComputeBudgetScaled is ComputeBudget with the distributed slack
// multiplied by scale in [0, 1]. Scale 1 is the paper's Step 1; smaller
// scales tighten every budgeted deadline uniformly, pushing the level
// scheduler toward faster (hungrier) placements. Scale 0 makes every
// task maximally urgent (BD = its longest mean path), approaching a
// performance-greedy schedule. The EAS driver retries with shrinking
// scales when search-and-repair cannot eliminate all deadline misses.
func ComputeBudgetScaled(g *ctg.Graph, weight WeightFunc, scale float64) (*Budget, error) {
	return ComputeBudgetCommAware(g, weight, scale, 0)
}

// ComputeBudgetCommAware extends the slack budgeting with expected
// communication time: when commBandwidth > 0, every arc contributes
// volume/commBandwidth time units to the path lengths used for slack
// computation (the paper's Step 1 budgets over mean execution times
// only, which overestimates slack on communication-heavy paths — frame-
// sized transfers on a NoC take hundreds of cycles). The EAS driver
// falls back to this variant when the paper-faithful budget leaves
// unrepairable deadline misses. commBandwidth <= 0 disables the term.
func ComputeBudgetCommAware(g *ctg.Graph, weight WeightFunc, scale float64, commBandwidth int64) (*Budget, error) {
	if weight == nil {
		weight = WeightVarEVarR
	}
	if scale < 0 || scale > 1 || math.IsNaN(scale) {
		return nil, fmt.Errorf("eas: slack scale %g outside [0,1]", scale)
	}
	commTime := func(eid ctg.EdgeID) float64 {
		if commBandwidth <= 0 {
			return 0
		}
		v := g.Edge(eid).Volume
		if v <= 0 {
			return 0
		}
		return float64((v + commBandwidth - 1) / commBandwidth)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	b := &Budget{
		Mean:   make([]float64, n),
		Weight: make([]float64, n),
		BD:     make([]int64, n),
	}
	for i := 0; i < n; i++ {
		t := g.Task(ctg.TaskID(i))
		times, energies := runnableArrays(t)
		b.Mean[i] = stats.Mean(times2f(times))
		b.Weight[i] = weight(times, energies)
		if b.Weight[i] < 0 || math.IsNaN(b.Weight[i]) {
			return nil, fmt.Errorf("eas: task %d: invalid weight %g", i, b.Weight[i])
		}
		b.BD[i] = ctg.NoDeadline
	}

	// Forward pass: fwd[t] = longest mean path ending at t (inclusive,
	// with expected communication time on the arcs when enabled);
	// fwdW[t] = weight sum along that arg-max path. Ties break toward
	// the heavier path for determinism.
	fwd := make([]float64, n)
	fwdW := make([]float64, n)
	for _, t := range order {
		bestLen, bestW := 0.0, 0.0
		for _, eid := range g.In(t) {
			p := g.Edge(eid).Src
			cand := fwd[p] + commTime(eid)
			if cand > bestLen || (cand == bestLen && fwdW[p] > bestW) {
				bestLen, bestW = cand, fwdW[p]
			}
		}
		fwd[t] = bestLen + b.Mean[t]
		fwdW[t] = bestW + b.Weight[t]
	}

	// Per deadline task d: backward pass over the ancestors of d.
	bwd := make([]float64, n)
	bwdW := make([]float64, n)
	reaches := make([]bool, n)
	for _, d := range g.DeadlineTasks() {
		deadline := float64(g.Task(d).Deadline)
		for i := range reaches {
			reaches[i] = false
			bwd[i], bwdW[i] = 0, 0
		}
		reaches[d] = true
		// Reverse topological order guarantees successors are final
		// before their predecessors.
		for i := len(order) - 1; i >= 0; i-- {
			t := order[i]
			if t == d {
				bwd[t] = b.Mean[t]
				bwdW[t] = b.Weight[t]
				continue
			}
			bestLen, bestW := -1.0, 0.0
			for _, eid := range g.Out(t) {
				s := g.Edge(eid).Dst
				if !reaches[s] {
					continue
				}
				cand := bwd[s] + commTime(eid)
				if cand > bestLen || (cand == bestLen && bwdW[s] > bestW) {
					bestLen, bestW = cand, bwdW[s]
				}
			}
			if bestLen < 0 {
				continue // t cannot reach d
			}
			reaches[t] = true
			bwd[t] = bestLen + b.Mean[t]
			bwdW[t] = bestW + b.Weight[t]
		}
		for i := 0; i < n; i++ {
			t := ctg.TaskID(i)
			if !reaches[t] {
				continue
			}
			pathLen := fwd[t] + bwd[t] - b.Mean[t]
			slack := deadline - pathLen
			if slack < 0 {
				slack = 0 // infeasible-by-means path: no slack to hand out
			}
			totalW := fwdW[t] + bwdW[t] - b.Weight[t]
			var share float64
			switch {
			case totalW > 0:
				share = slack * fwdW[t] / totalW
			case pathLen > 0:
				// All-zero weights (e.g. a fully homogeneous platform):
				// fall back to time-proportional distribution.
				share = slack * fwd[t] / pathLen
			default:
				share = slack
			}
			bd := int64(math.Round(fwd[t] + share*scale))
			if bd < b.BD[t] {
				b.BD[t] = bd
			}
		}
	}
	return b, nil
}

// runnableArrays filters a task's per-PE arrays down to the PEs that can
// run it, so incapable PEs (negative exec time) do not pollute the
// statistics.
func runnableArrays(t *ctg.Task) ([]int64, []float64) {
	times := make([]int64, 0, len(t.ExecTime))
	energies := make([]float64, 0, len(t.Energy))
	for k, r := range t.ExecTime {
		if r >= 0 {
			times = append(times, r)
			energies = append(energies, t.Energy[k])
		}
	}
	return times, energies
}

func times2f(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
