package eas

import (
	"testing"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/noc"
)

// TestBudgetFig2 reproduces the paper's Fig. 2 worked example: a chain
// t1 -> t2 -> t3 with mean execution times 300/200/400, weights
// 100/200/100 and d(t3) = 1300 must yield budgeted deadlines
// 400/800/1300.
func TestBudgetFig2(t *testing.T) {
	g := ctg.New("fig2")
	// Arrays engineered so that the means and VAR_e*VAR_r weights come
	// out as in the figure. With two PEs, mean m and weight w need
	// times m-a, m+a and energies e-b, e+b with a^2*b^2 = w.
	// t1: times 290/310 (mean 300, VAR_r=100), energies x-1/x+1 (VAR_e=1) -> W=100.
	// t2: times 190/210 (VAR_r=100), energies y-sqrt2/y+sqrt2 (VAR_e=2) -> W=200.
	// t3: times 390/410 (VAR_r=100), energies z-1/z+1 (VAR_e=1) -> W=100.
	sqrt2 := 1.4142135623730951
	t1, err := g.AddTask("t1", []int64{290, 310}, []float64{9, 11}, ctg.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := g.AddTask("t2", []int64{190, 210}, []float64{10 - sqrt2, 10 + sqrt2}, ctg.NoDeadline)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := g.AddTask("t3", []int64{390, 410}, []float64{9, 11}, 1300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(t1, t2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(t2, t3, 0); err != nil {
		t.Fatal(err)
	}

	b, err := ComputeBudget(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range map[ctg.TaskID]int64{t1: 400, t2: 800, t3: 1300} {
		if b.BD[i] != want {
			t.Errorf("BD[%d] = %d, want %d (mean=%v weight=%v)", i, b.BD[i], want, b.Mean[i], b.Weight[i])
		}
	}
}

// TestScheduleSmoke runs EAS and checks the schedule validates.
func TestScheduleSmoke(t *testing.T) {
	g := ctg.New("smoke")
	mk := func(name string, base int64, deadline int64) ctg.TaskID {
		// Heterogeneous 2x2 platform: 4 PEs.
		times := []int64{base / 2, base * 7 / 10, base, base * 9 / 5}
		en := []float64{float64(base) * 2, float64(base) * 0.91, float64(base), float64(base) * 0.63}
		id, err := g.AddTask(name, times, en, deadline)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := mk("a", 100, ctg.NoDeadline)
	b1 := mk("b1", 200, ctg.NoDeadline)
	b2 := mk("b2", 150, ctg.NoDeadline)
	c := mk("c", 120, 2000)
	for _, e := range [][2]ctg.TaskID{{a, b1}, {a, b2}, {b1, c}, {b2, c}} {
		if _, err := g.AddEdge(e[0], e[1], 4096); err != nil {
			t.Fatal(err)
		}
	}
	p, err := noc.NewHeterogeneousMesh(2, 2, noc.RouteXY, 64)
	if err != nil {
		t.Fatal(err)
	}
	acg, err := energy.BuildACG(p, energy.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(g, acg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v\n%s", err, res.Schedule.Gantt())
	}
	if !res.Schedule.Feasible() {
		t.Errorf("deadline missed:\n%s", res.Schedule.Gantt())
	}
	if res.Schedule.TotalEnergy() <= 0 {
		t.Errorf("non-positive energy %v", res.Schedule.TotalEnergy())
	}
}
