package eas

import (
	"fmt"
	"math"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
)

// Options configures the EAS scheduler. The zero value is the paper's
// configuration (weight VAR_e*VAR_r, exact contention model, repair on).
type Options struct {
	// Weight selects the slack-allocation weight; nil means the
	// paper's WeightVarEVarR.
	Weight WeightFunc
	// DisableRepair turns off Step 3 (search and repair), yielding the
	// paper's "EAS-base" configuration.
	DisableRepair bool
	// NaiveContention replaces the exact Fig. 3 contention model with
	// a fixed-delay communication model (ablation only; resulting
	// schedules may be physically infeasible).
	NaiveContention bool
	// DisableTightenRetry turns off the slack-tightening fallback:
	// when search-and-repair cannot eliminate every deadline miss, the
	// driver normally re-runs Steps 1-3 with uniformly reduced slack
	// shares (ComputeBudgetScaled), trading energy for feasibility,
	// and returns the best schedule found. Disable to get the paper's
	// single-pass behavior exactly.
	DisableTightenRetry bool
	// RepairBudget caps the number of *attempted* repair moves (each
	// attempt costs one full timing reconstruction); 0 selects
	// DefaultRepairBudget. Bounding attempts keeps Step 3 cheap even
	// on hopelessly infeasible instances, where pure greedy search
	// would otherwise grind through an enormous neighborhood.
	RepairBudget int
}

// Result bundles a schedule with the intermediate artifacts the
// experiments report on.
type Result struct {
	Schedule *sched.Schedule
	Budget   *Budget
	// RepairStats is zero-valued when repair was disabled or never ran.
	RepairStats RepairStats
	// RefineStats is non-zero only when the feasibility fallback ran
	// and its energy-refinement pass produced the returned schedule.
	RefineStats RefineStats
}

// Schedule runs the full EAS algorithm (Steps 1-3, or 1-2 when repair is
// disabled) on graph g against the architecture acg.
func Schedule(g *ctg.Graph, acg *energy.ACG, opts Options) (*Result, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumPEs() != acg.NumPEs() {
		return nil, fmt.Errorf("eas: CTG characterized for %d PEs, platform has %d",
			g.NumPEs(), acg.NumPEs())
	}
	algorithm := "eas"
	if opts.DisableRepair {
		algorithm = "eas-base"
	}
	// Budgeting passes tried in order. The first is the paper's Step 1
	// (execution-only path lengths, full slack); later passes — run
	// only when deadline misses survive search-and-repair — charge
	// expected communication time to the paths and then shrink the
	// slack shares, trading energy for feasibility.
	type pass struct {
		scale  float64
		commBW int64
	}
	bw := acg.Platform().LinkBandwidth
	passes := []pass{{1, 0}, {1, bw}, {0.5, bw}, {0, bw}}
	if opts.DisableRepair || opts.DisableTightenRetry {
		passes = passes[:1]
	}

	var best *Result
	better := func(a, b *Result) bool { // is a better than b?
		am, bm := metricOf(a.Schedule), metricOf(b.Schedule)
		if am != bm {
			return am.better(bm)
		}
		return a.Schedule.TotalEnergy() < b.Schedule.TotalEnergy()
	}
	for _, p := range passes {
		budget, err := ComputeBudgetCommAware(g, opts.Weight, p.scale, p.commBW)
		if err != nil {
			return nil, err
		}
		s, err := levelSchedule(g, acg, budget, algorithm, opts.NaiveContention)
		if err != nil {
			return nil, err
		}
		cand := &Result{Schedule: s, Budget: budget}
		if !opts.DisableRepair && !s.Feasible() {
			repaired, stats, err := Repair(s, opts.RepairBudget, opts.NaiveContention)
			if err != nil {
				return nil, err
			}
			cand.Schedule = repaired
			cand.RepairStats = stats
		}
		if best == nil || better(cand, best) {
			best = cand
		}
		if best.Schedule.Feasible() {
			break
		}
	}

	// Feasibility fallback: when even the tightened budgets leave
	// misses, schedule deadline-first (the most feasibility-friendly
	// ordering) and then claw the energy back with the refinement
	// pass, which migrates tasks to cheaper PEs while preserving the
	// deadline behavior. Runs only when needed, so the paper-faithful
	// path is untouched on instances EAS handles natively.
	if !best.Schedule.Feasible() && !opts.DisableRepair && !opts.DisableTightenRetry {
		if fb, err := deadlineFirstSchedule(g, acg, algorithm, opts.NaiveContention); err == nil {
			refined, stats, err := RefineEnergy(fb, 0, opts.NaiveContention)
			if err == nil {
				cand := &Result{Schedule: refined, Budget: best.Budget, RefineStats: stats}
				cand.RepairStats = best.RepairStats
				if better(cand, best) {
					best = cand
				}
			}
		}
	}
	best.Schedule.Elapsed = time.Since(started)
	return best, nil
}

// deadlineFirstSchedule builds a schedule that prioritizes feasibility:
// ready tasks are committed in ascending effective-deadline order, each
// on its earliest-finish PE. It is the seed of the fallback pass; its
// energy is then reduced by RefineEnergy.
func deadlineFirstSchedule(g *ctg.Graph, acg *energy.ACG, algorithm string, naive bool) (*sched.Schedule, error) {
	dEff, err := edf.EffectiveDeadlines(g)
	if err != nil {
		return nil, err
	}
	b := sched.NewBuilder(g, acg, algorithm)
	if naive {
		b.SetContentionAware(false)
	}
	npe := acg.NumPEs()
	for b.Committed() < g.NumTasks() {
		rtl := b.ReadyTasks()
		if len(rtl) == 0 {
			return nil, fmt.Errorf("eas: fallback: no ready tasks")
		}
		pick := rtl[0]
		for _, t := range rtl[1:] {
			if dEff[t] < dEff[pick] {
				pick = t
			}
		}
		task := g.Task(pick)
		bestPE, bestFinish := -1, int64(math.MaxInt64)
		for k := 0; k < npe; k++ {
			if !task.RunnableOn(k) {
				continue
			}
			p, err := b.Probe(pick, k)
			if err != nil {
				return nil, err
			}
			if p.Finish < bestFinish {
				bestFinish, bestPE = p.Finish, k
			}
		}
		if bestPE < 0 {
			return nil, fmt.Errorf("eas: fallback: task %d runnable nowhere", pick)
		}
		if _, err := b.Commit(pick, bestPE); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// levelSchedule is Step 2: level-based list scheduling over the Ready
// Task List.
func levelSchedule(g *ctg.Graph, acg *energy.ACG, budget *Budget, algorithm string, naive bool) (*sched.Schedule, error) {
	b := sched.NewBuilder(g, acg, algorithm)
	if naive {
		b.SetContentionAware(false)
	}
	npe := acg.NumPEs()

	// probe holds F(i,k) and per-PE cost for the current RTL.
	type candidate struct {
		placement sched.Placement
		ok        bool
	}
	probes := make([]candidate, npe)

	for b.Committed() < g.NumTasks() {
		rtl := b.ReadyTasks()
		if len(rtl) == 0 {
			return nil, fmt.Errorf("eas: no ready tasks with %d of %d committed (graph inconsistency)",
				b.Committed(), g.NumTasks())
		}

		// Decision state across the RTL scan.
		var (
			overTask  ctg.TaskID = -1 // most over-budget task
			overBy    int64      = math.MinInt64
			overPE    int
			bestTask  ctg.TaskID = -1 // largest energy-regret task
			bestDelta            = math.Inf(-1)
			bestE1               = math.Inf(1)
			bestPE    int
		)

		for _, ti := range rtl {
			task := g.Task(ti)
			// Probe F(i,k) for every capable PE (Eq. 4 via Fig. 3).
			minF := int64(math.MaxInt64)
			minFPE := -1
			for k := 0; k < npe; k++ {
				probes[k].ok = false
				if !task.RunnableOn(k) {
					continue
				}
				p, err := b.Probe(ti, k)
				if err != nil {
					return nil, err
				}
				probes[k] = candidate{placement: p, ok: true}
				if p.Finish < minF {
					minF, minFPE = p.Finish, k
				}
			}
			if minFPE < 0 {
				return nil, fmt.Errorf("eas: task %d runnable on no PE", ti)
			}

			bd := budget.BD[ti]
			if bd != ctg.NoDeadline && minF >= bd {
				// Paper Step 2.3: over budget even on its best PE —
				// urgency beats energy. Track the worst offender.
				if by := minF - bd; by > overBy || (by == overBy && ti < overTask) {
					overBy, overTask, overPE = by, ti, minFPE
				}
				continue
			}

			// Paper Step 2.4: the task meets its budget somewhere.
			// L_i = PEs with F(i,k) <= BD_i; E1/E2 = two cheapest
			// placements in L_i (execution + incoming communication
			// energy, per footnote 2); regret dE = E2 - E1.
			e1, e2 := math.Inf(1), math.Inf(1)
			e1PE := -1
			for k := 0; k < npe; k++ {
				if !probes[k].ok {
					continue
				}
				if bd != ctg.NoDeadline && probes[k].placement.Finish > bd {
					continue
				}
				cost := task.Energy[k] + probes[k].placement.CommEnergy
				switch {
				case cost < e1:
					e2 = e1
					e1, e1PE = cost, k
				case cost < e2:
					e2 = cost
				}
			}
			if e1PE < 0 {
				// minF < bd guarantees at least minFPE qualifies;
				// reaching here means bd == NoDeadline path had no
				// candidates, which cannot happen. Guard anyway.
				e1PE = minFPE
				e1 = task.Energy[minFPE] + probes[minFPE].placement.CommEnergy
				e2 = e1
			}
			if math.IsInf(e2, 1) {
				e2 = e1 // single feasible PE: zero regret
			}
			delta := e2 - e1
			if delta > bestDelta ||
				(delta == bestDelta && (e1 < bestE1 || (e1 == bestE1 && ti < bestTask))) {
				bestDelta, bestE1, bestTask, bestPE = delta, e1, ti, e1PE
			}
		}

		// Over-budget tasks take precedence (Step 2.3); otherwise the
		// largest-regret task goes to its cheapest feasible PE (2.4).
		var commitTask ctg.TaskID
		var commitPE int
		if overTask >= 0 {
			commitTask, commitPE = overTask, overPE
		} else {
			commitTask, commitPE = bestTask, bestPE
		}
		if _, err := b.Commit(commitTask, commitPE); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}
