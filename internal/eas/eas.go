package eas

import (
	"fmt"
	"math"
	"time"

	"nocsched/internal/ctg"
	"nocsched/internal/edf"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
	"nocsched/internal/telemetry"
)

// Options configures the EAS scheduler. The zero value is the paper's
// configuration (weight VAR_e*VAR_r, exact contention model, repair on).
type Options struct {
	// Weight selects the slack-allocation weight; nil means the
	// paper's WeightVarEVarR.
	Weight WeightFunc
	// DisableRepair turns off Step 3 (search and repair), yielding the
	// paper's "EAS-base" configuration.
	DisableRepair bool
	// NaiveContention replaces the exact Fig. 3 contention model with
	// a fixed-delay communication model (ablation only; resulting
	// schedules may be physically infeasible).
	NaiveContention bool
	// DisableTightenRetry turns off the slack-tightening fallback:
	// when search-and-repair cannot eliminate every deadline miss, the
	// driver normally re-runs Steps 1-3 with uniformly reduced slack
	// shares (ComputeBudgetScaled), trading energy for feasibility,
	// and returns the best schedule found. Disable to get the paper's
	// single-pass behavior exactly.
	DisableTightenRetry bool
	// RepairBudget caps the number of *attempted* repair moves (each
	// attempt costs one full timing reconstruction); 0 selects
	// DefaultRepairBudget. Bounding attempts keeps Step 3 cheap even
	// on hopelessly infeasible instances, where pure greedy search
	// would otherwise grind through an enormous neighborhood.
	RepairBudget int
	// Workers caps the F(i,k) probe worker pool of Step 2; <= 0 means
	// GOMAXPROCS. Any worker count produces bit-identical schedules:
	// probes are evaluated per ready task into index-addressed rows and
	// reduced sequentially in RTL order, reproducing the sequential
	// tie-breaks exactly (the differential tests assert this). Ignored
	// by ScheduleWith, where the workspace's pool configuration wins.
	Workers int
	// LegacyProbe routes every probe through the journal-based
	// reserve/rollback path instead of the read-only overlay path,
	// forcing sequential evaluation. Schedules are identical; the
	// option exists as the performance baseline of cmd/schedbench.
	// Ignored by ScheduleWith, like Workers.
	LegacyProbe bool
	// Telemetry collects scheduler metrics (probe counts, ready-list
	// depth, energy breakdown) and phase spans; nil (the default)
	// disables all collection at zero cost. Telemetry never influences
	// scheduling decisions — schedules are bit-identical with it on or
	// off (asserted by the differential tests).
	Telemetry *telemetry.Collector
}

// newWorkspace builds the single-run workspace Schedule wraps around
// ScheduleWith, honoring the options' probe-path configuration.
func newWorkspace(opts Options) *sched.Workspace {
	return sched.NewWorkspace(opts.Workers, opts.LegacyProbe)
}

// Result bundles a schedule with the intermediate artifacts the
// experiments report on.
type Result struct {
	Schedule *sched.Schedule
	Budget   *Budget
	// RepairStats is zero-valued when repair was disabled or never ran.
	RepairStats RepairStats
	// RefineStats is non-zero only when the feasibility fallback ran
	// and its energy-refinement pass produced the returned schedule.
	RefineStats RefineStats
	// Probes is the total number of F(i,k) probes evaluated across all
	// budgeting passes and the fallback (the returned Schedule's own
	// Probes field counts only the pass that produced it).
	Probes int64
}

// Schedule runs the full EAS algorithm (Steps 1-3, or 1-2 when repair is
// disabled) on graph g against the architecture acg.
func Schedule(g *ctg.Graph, acg *energy.ACG, opts Options) (*Result, error) {
	return ScheduleWith(newWorkspace(opts), g, acg, opts)
}

// ScheduleWith runs EAS through a reusable workspace: every budgeting
// pass and the feasibility fallback share the workspace's builder and
// probe pool (reset between passes), and a driver scheduling many
// instances — the batch engine's workers — reuses the same workspace
// across calls, amortizing all table and route-cache allocation.
// Schedules are bit-identical to Schedule's. The workspace's pool
// configuration overrides opts.Workers/opts.LegacyProbe.
func ScheduleWith(ws *sched.Workspace, g *ctg.Graph, acg *energy.ACG, opts Options) (*Result, error) {
	started := time.Now()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumPEs() != acg.NumPEs() {
		return nil, fmt.Errorf("eas: CTG characterized for %d PEs, platform has %d",
			g.NumPEs(), acg.NumPEs())
	}
	algorithm := "eas"
	if opts.DisableRepair {
		algorithm = "eas-base"
	}
	// Budgeting passes tried in order. The first is the paper's Step 1
	// (execution-only path lengths, full slack); later passes — run
	// only when deadline misses survive search-and-repair — charge
	// expected communication time to the paths and then shrink the
	// slack shares, trading energy for feasibility.
	type pass struct {
		scale  float64
		commBW int64
	}
	bw := acg.Platform().LinkBandwidth
	passes := []pass{{1, 0}, {1, bw}, {0.5, bw}, {0, bw}}
	if opts.DisableRepair || opts.DisableTightenRetry {
		passes = passes[:1]
	}

	var best *Result
	var totalProbes int64
	better := func(a, b *Result) bool { // is a better than b?
		am, bm := metricOf(a.Schedule), metricOf(b.Schedule)
		if am != bm {
			return am.better(bm)
		}
		return a.Schedule.TotalEnergy() < b.Schedule.TotalEnergy()
	}
	tr := opts.Telemetry.T()
	for passNo, p := range passes {
		endPass := tr.Span(fmt.Sprintf("pass %d (scale=%g bw=%d)", passNo, p.scale, p.commBW), "eas")
		endStep := tr.Span("step1:budget", "eas phases")
		budget, err := ComputeBudgetCommAware(g, opts.Weight, p.scale, p.commBW)
		endStep()
		if err != nil {
			endPass()
			return nil, err
		}
		endStep = tr.Span("step2:level-schedule", "eas phases")
		s, err := levelSchedule(ws, g, acg, budget, algorithm, opts)
		endStep()
		if err != nil {
			endPass()
			return nil, err
		}
		totalProbes += s.Probes
		cand := &Result{Schedule: s, Budget: budget}
		if !opts.DisableRepair && !s.Feasible() {
			endStep = tr.Span("step3:repair", "eas phases")
			repaired, stats, err := Repair(s, opts.RepairBudget, opts.NaiveContention)
			endStep()
			if err != nil {
				endPass()
				return nil, err
			}
			cand.Schedule = repaired
			cand.RepairStats = stats
		}
		endPass()
		if best == nil || better(cand, best) {
			best = cand
		}
		if best.Schedule.Feasible() {
			break
		}
	}

	// Feasibility fallback: when even the tightened budgets leave
	// misses, schedule deadline-first (the most feasibility-friendly
	// ordering) and then claw the energy back with the refinement
	// pass, which migrates tasks to cheaper PEs while preserving the
	// deadline behavior. Runs only when needed, so the paper-faithful
	// path is untouched on instances EAS handles natively.
	if !best.Schedule.Feasible() && !opts.DisableRepair && !opts.DisableTightenRetry {
		endFB := tr.Span("fallback:deadline-first+refine", "eas phases")
		if fb, err := deadlineFirstSchedule(ws, g, acg, algorithm, opts); err == nil {
			totalProbes += fb.Probes
			refined, stats, err := RefineEnergy(fb, 0, opts.NaiveContention)
			if err == nil {
				cand := &Result{Schedule: refined, Budget: best.Budget, RefineStats: stats}
				cand.RepairStats = best.RepairStats
				if better(cand, best) {
					best = cand
				}
			}
		}
		endFB()
	}
	best.Schedule.Elapsed = time.Since(started)
	best.Probes = totalProbes
	sched.PublishSchedule(opts.Telemetry.R(), best.Schedule)
	return best, nil
}

// deadlineFirstSchedule builds a schedule that prioritizes feasibility:
// ready tasks are committed in ascending effective-deadline order, each
// on its earliest-finish PE — exactly the EDF decision loop, so it
// delegates to edf.Drive rather than duplicating the selection logic.
// It is the seed of the fallback pass; its energy is then reduced by
// RefineEnergy.
func deadlineFirstSchedule(ws *sched.Workspace, g *ctg.Graph, acg *energy.ACG, algorithm string, opts Options) (*sched.Schedule, error) {
	dEff, err := edf.EffectiveDeadlines(g)
	if err != nil {
		return nil, err
	}
	b, pool, err := ws.Prepare(g, acg, algorithm)
	if err != nil {
		return nil, err
	}
	b.SetMetrics(sched.NewMetrics(opts.Telemetry.R(), acg.NumPEs()))
	if opts.NaiveContention {
		b.SetContentionAware(false)
	}
	if err := edf.Drive(b, pool, dEff); err != nil {
		return nil, fmt.Errorf("eas: fallback: %w", err)
	}
	s, err := b.Finish()
	if err != nil {
		return nil, err
	}
	s.Probes = pool.Probes()
	return s, nil
}

// rowEval is the outcome of probing one ready task on every PE: the
// per-task half of the Step 2 decision, computed independently per RTL
// row so rows can be evaluated concurrently. All cross-task comparisons
// (which task commits) happen later, in the sequential reduction.
type rowEval struct {
	// minF/minFPE: Eq. 4, the earliest finish over capable PEs (ties to
	// the lower PE) and where it occurs; minFComm is that placement's
	// communication energy (for the degenerate-e1 guard).
	minF     int64
	minFPE   int
	minFComm float64
	// e1/e2: the two cheapest budget-respecting placements (footnote 2);
	// e1PE is where e1 occurs, -1 if no PE met the budget.
	e1, e2 float64
	e1PE   int
	err    error
}

// levelSchedule is Step 2: level-based list scheduling over the Ready
// Task List. Every round, the RTL x PE probe matrix is evaluated row-
// per-task across the pool's workers; the rows are then reduced in
// ascending RTL order on this goroutine, which reproduces the original
// sequential scan's tie-breaks exactly (first-wins under ascending task
// IDs is equivalent to the historical "ti < best" tie conditions), so
// the schedule is bit-identical at any worker count.
func levelSchedule(ws *sched.Workspace, g *ctg.Graph, acg *energy.ACG, budget *Budget, algorithm string, opts Options) (*sched.Schedule, error) {
	b, pool, err := ws.Prepare(g, acg, algorithm)
	if err != nil {
		return nil, err
	}
	metrics := sched.NewMetrics(opts.Telemetry.R(), acg.NumPEs())
	b.SetMetrics(metrics)
	if opts.NaiveContention {
		b.SetContentionAware(false)
	}
	npe := acg.NumPEs()

	var rtl []ctg.TaskID
	var rows []rowEval
	// evalRow computes rowEval for rtl[i]. Built once — it reads rtl and
	// rows through the captured variables, which are only reassigned
	// between pool.Run calls.
	evalRow := func(pr *sched.Prober, i int) {
		ti := rtl[i]
		task := g.Task(ti)
		bd := budget.BD[ti]
		row := rowEval{minF: math.MaxInt64, minFPE: -1,
			e1: math.Inf(1), e2: math.Inf(1), e1PE: -1}
		for k := 0; k < npe; k++ {
			if !task.RunnableOn(k) {
				continue
			}
			p, err := pr.Probe(ti, k)
			if err != nil {
				row.err = err
				rows[i] = row
				return
			}
			if p.Finish < row.minF {
				row.minF, row.minFPE, row.minFComm = p.Finish, k, p.CommEnergy
			}
			// L_i membership (F(i,k) <= BD_i) and the E1/E2 running
			// minima; independent of minF, so one pass suffices.
			if bd != ctg.NoDeadline && p.Finish > bd {
				continue
			}
			cost := task.Energy[k] + p.CommEnergy
			switch {
			case cost < row.e1:
				row.e2 = row.e1
				row.e1, row.e1PE = cost, k
			case cost < row.e2:
				row.e2 = cost
			}
		}
		if row.minFPE < 0 {
			row.err = fmt.Errorf("eas: task %d runnable on no PE", ti)
		}
		rows[i] = row
	}

	for b.Committed() < g.NumTasks() {
		rtl = b.AppendReady(rtl[:0])
		if len(rtl) == 0 {
			return nil, fmt.Errorf("eas: no ready tasks with %d of %d committed (graph inconsistency)",
				b.Committed(), g.NumTasks())
		}
		metrics.ObserveReadyDepth(len(rtl))
		if cap(rows) < len(rtl) {
			rows = make([]rowEval, len(rtl))
		}
		rows = rows[:len(rtl)]
		pool.RunWeighted(len(rtl), npe, evalRow)

		// Sequential reduction in ascending RTL order.
		var (
			overTask  ctg.TaskID = -1 // most over-budget task (Step 2.3)
			overBy    int64      = math.MinInt64
			overPE    int
			bestTask  ctg.TaskID = -1 // largest energy-regret task (Step 2.4)
			bestDelta            = math.Inf(-1)
			bestE1               = math.Inf(1)
			bestPE    int
		)
		for i, ti := range rtl {
			row := &rows[i]
			if row.err != nil {
				return nil, row.err
			}
			bd := budget.BD[ti]
			if bd != ctg.NoDeadline && row.minF >= bd {
				// Paper Step 2.3: over budget even on its best PE —
				// urgency beats energy. Track the worst offender.
				if row.minF-bd > overBy {
					overBy, overTask, overPE = row.minF-bd, ti, row.minFPE
				}
				continue
			}
			e1, e2, e1PE := row.e1, row.e2, row.e1PE
			if e1PE < 0 {
				// minF < bd guarantees at least minFPE qualifies;
				// reaching here means bd == NoDeadline path had no
				// candidates, which cannot happen. Guard anyway.
				e1PE = row.minFPE
				e1 = g.Task(ti).Energy[row.minFPE] + row.minFComm
				e2 = e1
			}
			if math.IsInf(e2, 1) {
				e2 = e1 // single feasible PE: zero regret
			}
			delta := e2 - e1
			if delta > bestDelta || (delta == bestDelta && e1 < bestE1) {
				bestDelta, bestE1, bestTask, bestPE = delta, e1, ti, e1PE
			}
		}

		// Over-budget tasks take precedence (Step 2.3); otherwise the
		// largest-regret task goes to its cheapest feasible PE (2.4).
		var commitTask ctg.TaskID
		var commitPE int
		if overTask >= 0 {
			commitTask, commitPE = overTask, overPE
		} else {
			commitTask, commitPE = bestTask, bestPE
		}
		if _, err := b.Commit(commitTask, commitPE); err != nil {
			return nil, err
		}
	}
	s, err := b.Finish()
	if err != nil {
		return nil, err
	}
	s.Probes = pool.Probes()
	return s, nil
}
