package eas

import (
	"testing"

	"nocsched/internal/ctg"
)

// twoPE adds a task with the given mean exec time and weight to g.
// Using two PEs with symmetric spreads: times m-10/m+10 give VAR_r=100;
// energies e-s/e+s give VAR_e=s^2, so weight = 100*s^2.
func addWeighted(t *testing.T, g *ctg.Graph, name string, mean int64, energySpread float64, deadline int64) ctg.TaskID {
	t.Helper()
	id, err := g.AddTask(name,
		[]int64{mean - 10, mean + 10},
		[]float64{100 - energySpread, 100 + energySpread},
		deadline)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestBudgetMinOverDeadlines(t *testing.T) {
	// a -> b -> c(d=600) and b -> d(d=450): b's BD must honor the
	// tighter path. All tasks have mean 100 and equal weights.
	g := ctg.New("multi")
	a := addWeighted(t, g, "a", 100, 1, ctg.NoDeadline)
	b := addWeighted(t, g, "b", 100, 1, ctg.NoDeadline)
	c := addWeighted(t, g, "c", 100, 1, 600)
	d := addWeighted(t, g, "d", 100, 1, 450)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, c, 0)
	g.AddEdge(b, d, 0)

	budget, err := ComputeBudget(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Toward c: path a,b,c len 300, slack 300, equal weights -> b's BD
	// = 200+100 = 300... wait shares: slack*[W(a)+W(b)]/[3W] = 200; BD_c(b)
	// = fwd(b) + share = 200 + 200 = 400.
	// Toward d: path a,b,d len 300, slack 150, share 100 -> BD_d(b) =
	// 200+100 = 300. Min = 300.
	if budget.BD[b] != 300 {
		t.Errorf("BD[b] = %d, want 300", budget.BD[b])
	}
	// Deadline tasks keep their own deadline as BD.
	if budget.BD[c] != 600 || budget.BD[d] != 450 {
		t.Errorf("BD[c]=%d BD[d]=%d", budget.BD[c], budget.BD[d])
	}
	// a takes the tighter path too: BD_d(a) = 100 + 50 = 150.
	if budget.BD[a] != 150 {
		t.Errorf("BD[a] = %d, want 150", budget.BD[a])
	}
}

func TestBudgetUnconstrainedTask(t *testing.T) {
	// A task with no deadline-carrying descendant keeps BD = NoDeadline.
	g := ctg.New("free")
	a := addWeighted(t, g, "a", 100, 1, ctg.NoDeadline)
	b := addWeighted(t, g, "b", 100, 1, 500)
	free := addWeighted(t, g, "free", 100, 1, ctg.NoDeadline)
	g.AddEdge(a, b, 0)
	g.AddEdge(a, free, 0)

	budget, err := ComputeBudget(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if budget.Constrained(free) {
		t.Errorf("free task constrained: BD=%d", budget.BD[free])
	}
	if !budget.Constrained(a) || !budget.Constrained(b) {
		t.Error("constrained tasks not marked")
	}
}

func TestBudgetZeroWeightFallback(t *testing.T) {
	// A homogeneous platform gives all-zero weights; slack must then be
	// split proportionally to time.
	g := ctg.New("homog")
	mk := func(name string, exec int64, deadline int64) ctg.TaskID {
		id, err := g.AddTask(name, []int64{exec, exec}, []float64{1, 1}, deadline)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := mk("a", 100, ctg.NoDeadline)
	b := mk("b", 300, 800)
	g.AddEdge(a, b, 0)

	budget, err := ComputeBudget(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Path len 400, slack 400, time-proportional: a gets 100*(400/400)
	// = share slack*fwd/pathLen = 400*100/400 = 100 -> BD[a] = 200.
	if budget.BD[a] != 200 {
		t.Errorf("BD[a] = %d, want 200", budget.BD[a])
	}
	if budget.BD[b] != 800 {
		t.Errorf("BD[b] = %d, want 800", budget.BD[b])
	}
}

func TestBudgetInfeasiblePathClampsSlack(t *testing.T) {
	// Deadline shorter than the mean path: slack clamps to zero and
	// every BD equals the forward mean path time (maximally urgent).
	g := ctg.New("tight")
	a := addWeighted(t, g, "a", 200, 1, ctg.NoDeadline)
	b := addWeighted(t, g, "b", 200, 1, 300)
	g.AddEdge(a, b, 0)

	budget, err := ComputeBudget(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if budget.BD[a] != 200 {
		t.Errorf("BD[a] = %d, want 200 (zero slack)", budget.BD[a])
	}
	// The deadline task keeps its (infeasible) deadline... no: with
	// zero slack BD[b] = fwd(b) = 400, which exceeds the deadline 300;
	// the paper's scheduler then treats b as over-budget immediately.
	if budget.BD[b] != 400 {
		t.Errorf("BD[b] = %d, want 400", budget.BD[b])
	}
}

func TestBudgetWeightsRespectIncapablePEs(t *testing.T) {
	g := ctg.New("partial")
	// Runnable only on PE1: statistics must come from that single PE
	// (zero variance, mean = its time).
	id, err := g.AddTask("only1", []int64{-1, 40}, []float64{0, 7}, 100)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := ComputeBudget(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if budget.Mean[id] != 40 {
		t.Errorf("Mean = %v, want 40", budget.Mean[id])
	}
	if budget.Weight[id] != 0 {
		t.Errorf("Weight = %v, want 0 (single sample)", budget.Weight[id])
	}
}

func TestBudgetCycleRejected(t *testing.T) {
	g := ctg.New("cyc")
	a := addWeighted(t, g, "a", 100, 1, ctg.NoDeadline)
	b := addWeighted(t, g, "b", 100, 1, ctg.NoDeadline)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, a, 0)
	if _, err := ComputeBudget(g, nil); err == nil {
		t.Fatal("cycle not rejected")
	}
}

func TestWeightFunctions(t *testing.T) {
	times := []int64{290, 310}
	energies := []float64{9.0, 11.0}
	// VAR_r = 100, VAR_e = 1.
	if got := WeightVarEVarR(times, energies); got != 100 {
		t.Errorf("WeightVarEVarR = %v, want 100", got)
	}
	if got := WeightVarE(times, energies); got != 1 {
		t.Errorf("WeightVarE = %v, want 1", got)
	}
	if got := WeightUniform(times, energies); got != 1 {
		t.Errorf("WeightUniform = %v", got)
	}
}
