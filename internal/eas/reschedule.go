package eas

import (
	"fmt"

	"nocsched/internal/ctg"
	"nocsched/internal/energy"
	"nocsched/internal/sched"
)

// RescheduleLayout re-times an existing task-to-PE assignment and per-PE
// execution order against a (possibly different) graph/ACG pair, then
// runs Step-3 search-and-repair if deadlines are missed. It is the
// fault-recovery entry point: the layout of a fault-free schedule —
// with stranded tasks reassigned by the caller — is rebuilt on the
// degraded platform, and the same LTS/GTM repair moves that fix
// deadline misses in the nominal flow now fix the misses the fault
// introduced.
//
// assign[t] gives the PE of task t; order[pe] lists the tasks of pe in
// execution order. Every task must appear exactly once, on a PE it can
// run on. The assignment/order pair must be consistent with the graph's
// dependencies under the strict per-PE ordering discipline; a
// contradictory layout is an error.
func RescheduleLayout(g *ctg.Graph, acg *energy.ACG, assign []int, order [][]ctg.TaskID, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumPEs() != acg.NumPEs() {
		return nil, fmt.Errorf("eas: CTG characterized for %d PEs, platform has %d",
			g.NumPEs(), acg.NumPEs())
	}
	if len(assign) != g.NumTasks() {
		return nil, fmt.Errorf("eas: assignment covers %d of %d tasks", len(assign), g.NumTasks())
	}
	if len(order) != acg.NumPEs() {
		return nil, fmt.Errorf("eas: order covers %d of %d PEs", len(order), acg.NumPEs())
	}
	seen := make([]bool, g.NumTasks())
	for pe := range order {
		for _, t := range order[pe] {
			if t < 0 || int(t) >= g.NumTasks() {
				return nil, fmt.Errorf("eas: order names unknown task %d", t)
			}
			if seen[t] {
				return nil, fmt.Errorf("eas: task %d listed twice in the PE order", t)
			}
			seen[t] = true
			if assign[t] != pe {
				return nil, fmt.Errorf("eas: task %d ordered on PE %d but assigned to PE %d", t, pe, assign[t])
			}
			if !g.Task(t).RunnableOn(pe) {
				return nil, fmt.Errorf("eas: task %d not runnable on assigned PE %d", t, pe)
			}
		}
	}
	for t, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("eas: task %d missing from the PE order", t)
		}
	}

	l := &layout{assign: append([]int(nil), assign...), order: make([][]ctg.TaskID, len(order))}
	for pe := range order {
		l.order[pe] = append([]ctg.TaskID(nil), order[pe]...)
	}
	s, err := rebuild(g, acg, l, "eas-remap", opts.NaiveContention)
	if err != nil {
		return nil, fmt.Errorf("eas: layout inconsistent with task dependencies: %w", err)
	}
	res := &Result{Schedule: s}
	if !opts.DisableRepair && !s.Feasible() {
		repaired, stats, err := Repair(s, opts.RepairBudget, opts.NaiveContention)
		if err != nil {
			return nil, err
		}
		res.Schedule = repaired
		res.RepairStats = stats
	}
	return res, nil
}

// MetricBetter reports whether schedule a beats schedule b under the
// repair objective (fewer deadline misses, then less total lateness),
// breaking ties toward lower total energy. Exported for drivers that
// must pick between independently produced recovery candidates.
func MetricBetter(a, b *sched.Schedule) bool {
	am, bm := metricOf(a), metricOf(b)
	if am != bm {
		return am.better(bm)
	}
	return a.TotalEnergy() < b.TotalEnergy()
}
