package eas

import (
	"sort"

	"nocsched/internal/ctg"
	"nocsched/internal/sched"
)

// RefineStats reports what the energy-refinement pass did.
type RefineStats struct {
	MovesTried    int
	MovesAccepted int
	EnergyBefore  float64
	EnergyAfter   float64
}

// DefaultRefineBudget caps attempted refinement moves.
const DefaultRefineBudget = 2500

// RefineEnergy greedily lowers the energy of a schedule without
// sacrificing its deadline behavior: tasks are migrated one at a time to
// cheaper PEs (cheapest candidate first), each candidate evaluated by a
// full timing reconstruction, and a move is kept only when the
// (miss-count, lateness) metric does not degrade and the total energy
// strictly drops.
//
// It is the dual of search-and-repair: repair trades energy for
// feasibility, refinement trades (excess) speed for energy. The EAS
// driver uses it on its feasibility fallback pass, which starts from a
// deadline-ordered schedule that tends to over-use fast, hungry PEs.
func RefineEnergy(s *sched.Schedule, moveBudget int, naive bool) (*sched.Schedule, RefineStats, error) {
	stats := RefineStats{EnergyBefore: s.TotalEnergy(), EnergyAfter: s.TotalEnergy()}
	if moveBudget <= 0 {
		moveBudget = DefaultRefineBudget
	}
	g, acg := s.Graph, s.ACG

	cur := layoutOf(s)
	curSched, err := rebuild(g, acg, cur, s.Algorithm, naive)
	if err != nil {
		return s, stats, nil
	}
	curMetric := metricOf(curSched)
	curEnergy := curSched.TotalEnergy()
	// Never degrade the input's deadline behavior.
	if in := metricOf(s); in.better(curMetric) {
		return s, stats, nil
	}

	type move struct {
		task ctg.TaskID
		dst  int
		gain float64 // optimistic computation-energy gain
	}
	for {
		// Candidate moves, most promising first. The gain estimate is
		// the computation-energy delta; communication effects are
		// captured by the rebuild evaluation.
		var moves []move
		for i := 0; i < g.NumTasks(); i++ {
			t := ctg.TaskID(i)
			task := g.Task(t)
			curPE := cur.assign[t]
			for k := range task.ExecTime {
				if k == curPE || !task.RunnableOn(k) {
					continue
				}
				if gain := task.Energy[curPE] - task.Energy[k]; gain > 0 {
					moves = append(moves, move{task: t, dst: k, gain: gain})
				}
			}
		}
		sort.Slice(moves, func(a, b int) bool {
			if moves[a].gain != moves[b].gain {
				return moves[a].gain > moves[b].gain
			}
			if moves[a].task != moves[b].task {
				return moves[a].task < moves[b].task
			}
			return moves[a].dst < moves[b].dst
		})

		improved := false
		for _, mv := range moves {
			if stats.MovesTried >= moveBudget {
				break
			}
			stats.MovesTried++
			cand := cur.clone()
			migrate(cand, curSched, mv.task, cand.assign[mv.task], mv.dst)
			candSched, err := rebuild(g, acg, cand, s.Algorithm, naive)
			if err != nil {
				continue
			}
			m := metricOf(candSched)
			e := candSched.TotalEnergy()
			if (m.better(curMetric) && e <= curEnergy) ||
				(m == curMetric && e < curEnergy) {
				cur, curSched, curMetric, curEnergy = cand, candSched, m, e
				stats.MovesAccepted++
				improved = true
				break // re-rank moves against the new placement
			}
		}
		if !improved || stats.MovesTried >= moveBudget {
			break
		}
	}

	// Return whichever of {input, refined} wins on (metric, energy).
	inMetric, inEnergy := metricOf(s), s.TotalEnergy()
	if curMetric.better(inMetric) || (curMetric == inMetric && curEnergy < inEnergy) {
		stats.EnergyAfter = curEnergy
		return curSched, stats, nil
	}
	return s, stats, nil
}
