package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); !almostEq(got, 4) {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := Mean([]float64{-1, 1}); !almostEq(got, 0) {
		t.Errorf("Mean = %v, want 0", got)
	}
}

func TestVariance(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance(single) = %v", got)
	}
	// Population variance of {2,4,6} is ((-2)^2+0+2^2)/3 = 8/3.
	if got := Variance([]float64{2, 4, 6}); !almostEq(got, 8.0/3.0) {
		t.Errorf("Variance = %v, want %v", got, 8.0/3.0)
	}
	if got := StdDev([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("StdDev of constant = %v", got)
	}
}

func TestInt64Variants(t *testing.T) {
	if got := MeanInt64([]int64{290, 310}); !almostEq(got, 300) {
		t.Errorf("MeanInt64 = %v", got)
	}
	// Population variance of {290,310} is 100 — the Fig. 2 task weight
	// building block.
	if got := VarianceInt64([]int64{290, 310}); !almostEq(got, 100) {
		t.Errorf("VarianceInt64 = %v, want 100", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	m, err := Min([]float64{3, -2, 7})
	if err != nil || m != -2 {
		t.Errorf("Min = %v, %v", m, err)
	}
	x, err := Max([]float64{3, -2, 7})
	if err != nil || x != 7 {
		t.Errorf("Max = %v, %v", x, err)
	}
}

func TestTwoSmallest(t *testing.T) {
	if _, _, err := TwoSmallest(nil); err == nil {
		t.Error("TwoSmallest(nil) should error")
	}
	a, b, err := TwoSmallest([]float64{5})
	if err != nil || a != 5 || b != 5 {
		t.Errorf("single element: %v %v %v", a, b, err)
	}
	a, b, err = TwoSmallest([]float64{9, 3, 7, 3})
	if err != nil || a != 3 || b != 3 {
		t.Errorf("duplicates: got %v, %v", a, b)
	}
	a, b, err = TwoSmallest([]float64{9, 4, 7})
	if err != nil || a != 4 || b != 7 {
		t.Errorf("got %v, %v", a, b)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	s = Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !almostEq(s.Median, 2.5) || !almostEq(s.Mean, 2.5) {
		t.Errorf("summary = %+v", s)
	}
	s = Summarize([]float64{5, 1, 3})
	if !almostEq(s.Median, 3) {
		t.Errorf("odd median = %v", s.Median)
	}
}

func TestGeoMeanRatio(t *testing.T) {
	if _, err := GeoMeanRatio([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := GeoMeanRatio([]float64{1}, []float64{0}); err == nil {
		t.Error("no valid pairs should error")
	}
	g, err := GeoMeanRatio([]float64{2, 8}, []float64{1, 2})
	if err != nil || !almostEq(g, math.Sqrt(8)) {
		t.Errorf("GeoMeanRatio = %v, %v", g, err)
	}
}

// Property: variance is non-negative and translation-invariant.
func TestQuickVarianceProperties(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		v := Variance(xs)
		if v < 0 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		return math.Abs(Variance(shifted)-v) < 1e-6*(1+v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean lies between Min and Max.
func TestQuickMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true
			}
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
