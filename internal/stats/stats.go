// Package stats provides the small statistical helpers used by the
// slack-budgeting step of the EAS scheduler and by the experiment
// reporting code: population mean, variance, and simple series summaries.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by N, not N-1).
// The paper's task weights W = VAR_e * VAR_r are population variances over
// the finite set of PEs, so the population form is the right one.
// It returns 0 for inputs with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MeanInt64 returns the arithmetic mean of xs as a float64.
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// VarianceInt64 returns the population variance of xs as a float64.
func VarianceInt64(xs []int64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := MeanInt64(xs)
	sum := 0.0
	for _, x := range xs {
		d := float64(x) - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Min returns the smallest element of xs. It returns an error for empty
// input so that callers cannot silently treat "no data" as zero.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// TwoSmallest returns the smallest and second-smallest values of xs.
// If xs has exactly one element, both return values equal that element;
// the EAS step-2 energy regret dE = E2-E1 is then zero, which matches the
// paper's intent (a task with a single feasible PE has no regret).
func TwoSmallest(xs []float64) (min1, min2 float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min1 = math.Inf(1)
	min2 = math.Inf(1)
	for _, x := range xs {
		switch {
		case x < min1:
			min2 = min1
			min1 = x
		case x < min2:
			min2 = x
		}
	}
	if math.IsInf(min2, 1) {
		min2 = min1
	}
	return min1, min2, nil
}

// Summary describes a numeric series for experiment reporting.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var median float64
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		median = sorted[mid]
	} else {
		median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: median,
	}
}

// GeoMeanRatio returns the geometric mean of pairwise ratios num[i]/den[i].
// It is the standard way to average speedup- or savings-style ratios
// across a benchmark suite. Pairs where den[i] <= 0 are skipped; if no
// valid pair remains it returns an error.
func GeoMeanRatio(num, den []float64) (float64, error) {
	if len(num) != len(den) {
		return 0, errors.New("stats: mismatched series lengths")
	}
	logSum := 0.0
	n := 0
	for i := range num {
		if den[i] <= 0 || num[i] <= 0 {
			continue
		}
		logSum += math.Log(num[i] / den[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return math.Exp(logSum / float64(n)), nil
}
