package diag

import (
	"net/http"

	"bytes"
	"flag"
	"io"
	"nocsched/internal/obs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsched/internal/telemetry"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSessionOff(t *testing.T) {
	sess, err := parse(t).Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Collector() != nil {
		t.Error("collector allocated with no telemetry flag")
	}
	if sess.ChromeSink() != nil {
		t.Error("chrome sink allocated with no -trace-out")
	}
	var buf bytes.Buffer
	if err := sess.WriteReport(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("WriteReport without -metrics wrote %q (%v)", buf.String(), err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestSessionArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	sess, err := parse(t, "-metrics", "-trace-out", tracePath, "-metrics-out", metricsPath).Start()
	if err != nil {
		t.Fatal(err)
	}
	col := sess.Collector()
	if col == nil || !col.Tracer.Enabled() {
		t.Fatal("collector/tracer not live with telemetry flags set")
	}
	col.Registry.Counter("test_counter").Add(3)
	end := col.Tracer.Span("phase", "test")
	end()
	if sess.ChromeSink() == nil {
		t.Fatal("no chrome sink for -trace-out")
	}

	var report bytes.Buffer
	if err := sess.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "run metrics:") ||
		!strings.Contains(report.String(), "test_counter") {
		t.Errorf("report content:\n%s", report.String())
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if _, err := telemetry.ValidateChromeTrace(tf); err != nil {
		t.Errorf("trace artifact: %v", err)
	}
	mf, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	snap, err := telemetry.ValidateSnapshot(mf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Errorf("snapshot counters: %+v", snap.Counters)
	}
}

func TestMetricsOnlyNoTraceFile(t *testing.T) {
	// -metrics alone enables collection without creating any file.
	sess, err := parse(t, "-metrics").Start()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Collector() == nil {
		t.Fatal("no collector for -metrics")
	}
	if sess.Collector().Tracer.Enabled() {
		t.Error("tracer enabled with no sink — the typed-nil guard regressed")
	}
}

func TestNilSession(t *testing.T) {
	var sess *Session
	if sess.Collector() != nil || sess.ChromeSink() != nil {
		t.Error("nil session handed out handles")
	}
	if err := sess.WriteReport(io.Discard); err != nil {
		t.Error(err)
	}
	if err := sess.Close(); err != nil {
		t.Error(err)
	}
}

func TestStartFailsOnBadTracePath(t *testing.T) {
	f := parse(t, "-trace-out", filepath.Join(t.TempDir(), "no", "such", "dir", "t.json"))
	if _, err := f.Start(); err == nil {
		t.Error("unwritable -trace-out accepted")
	}
}

// TestSessionServe: -serve stands up the live ops plane — collector
// implied on, /metrics scrapeable, /readyz flipping on MarkReady — and
// -metrics-stream leaves a valid JSONL time-series behind.
func TestSessionServe(t *testing.T) {
	streamPath := filepath.Join(t.TempDir(), "stream.jsonl")
	sess, err := parse(t, "-serve", "127.0.0.1:0", "-metrics-stream", streamPath).Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Collector() == nil {
		t.Fatal("-serve did not imply telemetry collection")
	}
	base := sess.ObsURL()
	if base == "" {
		t.Fatal("no ops URL with -serve set")
	}
	sess.Collector().Registry.Counter("diag_test_total").Add(7)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before MarkReady = %d, want 503", code)
	}
	sess.MarkReady()
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after MarkReady = %d, want 200", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "diag_test_total 7") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if !strings.Contains(body, "runtime_goroutines") {
		t.Error("/metrics lacks the runtime collector series")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// The server is down after Close.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("ops server still answering after Close")
	}
	// The stream artifact validates and saw the counter.
	raw, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateSnapshotStream(bytes.NewReader(raw)); err != nil {
		t.Errorf("stream artifact: %v", err)
	}
	if !strings.Contains(string(raw), "diag_test_total") {
		t.Error("stream artifact missing the test counter")
	}

	// MarkReady and ObsURL are nil-safe.
	var nilSess *Session
	nilSess.MarkReady()
	if nilSess.ObsURL() != "" {
		t.Error("nil session has an ops URL")
	}
}

// TestStartFailsOnBadServeAddr: an unusable -serve address fails Start
// instead of leaving a half-started session behind.
func TestStartFailsOnBadServeAddr(t *testing.T) {
	if _, err := parse(t, "-serve", "256.0.0.1:bad").Start(); err == nil {
		t.Error("unusable -serve address accepted")
	}
	if _, err := parse(t, "-metrics-stream", filepath.Join(t.TempDir(), "no", "dir", "s.jsonl")).Start(); err == nil {
		t.Error("unwritable -metrics-stream accepted")
	}
}
