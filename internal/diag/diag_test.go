package diag

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsched/internal/telemetry"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSessionOff(t *testing.T) {
	sess, err := parse(t).Start()
	if err != nil {
		t.Fatal(err)
	}
	if sess.Collector() != nil {
		t.Error("collector allocated with no telemetry flag")
	}
	if sess.ChromeSink() != nil {
		t.Error("chrome sink allocated with no -trace-out")
	}
	var buf bytes.Buffer
	if err := sess.WriteReport(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("WriteReport without -metrics wrote %q (%v)", buf.String(), err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestSessionArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	sess, err := parse(t, "-metrics", "-trace-out", tracePath, "-metrics-out", metricsPath).Start()
	if err != nil {
		t.Fatal(err)
	}
	col := sess.Collector()
	if col == nil || !col.Tracer.Enabled() {
		t.Fatal("collector/tracer not live with telemetry flags set")
	}
	col.Registry.Counter("test_counter").Add(3)
	end := col.Tracer.Span("phase", "test")
	end()
	if sess.ChromeSink() == nil {
		t.Fatal("no chrome sink for -trace-out")
	}

	var report bytes.Buffer
	if err := sess.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "run metrics:") ||
		!strings.Contains(report.String(), "test_counter") {
		t.Errorf("report content:\n%s", report.String())
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if _, err := telemetry.ValidateChromeTrace(tf); err != nil {
		t.Errorf("trace artifact: %v", err)
	}
	mf, err := os.Open(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	snap, err := telemetry.ValidateSnapshot(mf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Errorf("snapshot counters: %+v", snap.Counters)
	}
}

func TestMetricsOnlyNoTraceFile(t *testing.T) {
	// -metrics alone enables collection without creating any file.
	sess, err := parse(t, "-metrics").Start()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Collector() == nil {
		t.Fatal("no collector for -metrics")
	}
	if sess.Collector().Tracer.Enabled() {
		t.Error("tracer enabled with no sink — the typed-nil guard regressed")
	}
}

func TestNilSession(t *testing.T) {
	var sess *Session
	if sess.Collector() != nil || sess.ChromeSink() != nil {
		t.Error("nil session handed out handles")
	}
	if err := sess.WriteReport(io.Discard); err != nil {
		t.Error(err)
	}
	if err := sess.Close(); err != nil {
		t.Error(err)
	}
}

func TestStartFailsOnBadTracePath(t *testing.T) {
	f := parse(t, "-trace-out", filepath.Join(t.TempDir(), "no", "such", "dir", "t.json"))
	if _, err := f.Start(); err == nil {
		t.Error("unwritable -trace-out accepted")
	}
}
